// Warehouse evolution under a long stream of random capability changes.
//
// Builds a redundant information space (several mirrored departments of an
// enterprise warehouse), defines a handful of materialized views with mixed
// evolution preferences, and then fires randomized capability changes.
//
// Two policies are compared head to head:
//   * QC-guided EVE  -- adopts the QC-Model's top-ranked legal rewriting
//     (this library's default);
//   * first-found    -- adopts whatever legal rewriting the synchronizer
//     generated first, emulating the pre-QC EVE prototype the paper
//     describes in §8 ("had previously simply picked the first legal view
//     rewriting it discovered").
//
// The summary reports view survival and mean divergence per policy --
// Experiment 1's "life span" story at system scale.
//
// Build & run:  ./build/examples/warehouse_evolution

#include <cstdio>
#include <vector>

#include "common/random.h"
#include "esql/printer.h"
#include "eve/eve_system.h"
#include "qc/quality.h"
#include "storage/generator.h"

using namespace eve;

namespace {

struct AdoptionStats {
  int changes_survived = 0;
  int deaths = 0;
  double divergence_sum = 0.0;   // DD of the adopted rewriting.
  double rank_sum = 0.0;         // QC rank of the adopted rewriting.
  double cost_sum = 0.0;         // Normalized cost of the adopted rewriting.
  int divergence_samples = 0;
};

// One replicated "department": a base relation plus two mirrors with PC
// constraints, so deletions are survivable.
void AddDepartment(EveSystem* eve, const std::string& dept, Random* rng) {
  GeneratorOptions gen;
  gen.cardinality = 150 + static_cast<int64_t>(rng->Uniform(150));
  gen.num_attributes = 3;
  gen.attribute_names = {"Key", "Val", "Extra"};
  gen.key_domain = 1 << 20;
  gen.value_domain = 1 << 20;
  auto chain = GenerateContainmentChain(
      {dept, dept + "Mirror", dept + "Archive"},
      {gen.cardinality, gen.cardinality * 3 / 2, gen.cardinality * 2}, gen, rng);
  if (!chain.ok()) return;
  (void)eve->RegisterRelation("Src_" + dept, chain.value()[0], 0.5);
  (void)eve->RegisterRelation("Src_" + dept + "M", chain.value()[1], 0.5);
  (void)eve->RegisterRelation("Src_" + dept + "A", chain.value()[2], 0.5);
  (void)eve->AddPcConstraint(MakeProjectionPc(
      RelationId{"Src_" + dept, dept}, RelationId{"Src_" + dept + "M", dept + "Mirror"},
      {"Key", "Val", "Extra"}, PcRelationType::kSubset));
  (void)eve->AddPcConstraint(MakeProjectionPc(
      RelationId{"Src_" + dept + "M", dept + "Mirror"},
      RelationId{"Src_" + dept + "A", dept + "Archive"}, {"Key", "Val", "Extra"},
      PcRelationType::kSubset));
}

void DefineViews(EveSystem* eve) {
  const char* views[] = {
      "CREATE VIEW SalesBoard AS SELECT Sales.Key (AR=true), "
      "Sales.Val (AD=true, AR=true) FROM Sales (RR=true)",
      "CREATE VIEW OpsBoard AS SELECT Ops.Key (AR=true), "
      "Ops.Val (AD=true, AR=true), Ops.Extra (AD=true) FROM Ops (RR=true)",
      "CREATE VIEW CrossBoard AS SELECT s.Key (AR=true), o.Val (AD=true, AR=true) "
      "FROM Sales s (RR=true), Ops o (RR=true) "
      "WHERE (s.Key = o.Key) (CR=true)",
      "CREATE VIEW HrBoard (VE = subset) AS SELECT Hr.Key (AR=true) "
      "FROM Hr (RR=true)",
  };
  for (const char* text : views) {
    const Status status = eve->DefineView(text);
    if (!status.ok()) {
      std::fprintf(stderr, "define failed: %s\n", status.ToString().c_str());
    }
  }
}

// Picks a random deletion among currently registered relations.
SchemaChange RandomChange(const EveSystem& eve, Random* rng) {
  std::vector<RelationId> ids = eve.mkb().Relations();
  const RelationId target = ids[rng->Uniform(ids.size())];
  if (rng->Bernoulli(0.5)) {
    return SchemaChange(DeleteRelation{target});
  }
  const auto schema = eve.mkb().GetSchema(target);
  if (!schema.ok() || schema->size() <= 1) {
    return SchemaChange(DeleteRelation{target});
  }
  const std::string attr =
      schema->attribute(static_cast<int>(rng->Uniform(schema->size()))).name;
  return SchemaChange(DeleteAttribute{target, attr});
}

AdoptionStats RunPolicy(bool qc_guided, uint64_t seed, int num_changes) {
  Random rng(seed);
  EveSystem eve;
  eve.options().materialize = false;  // Pure synchronization study.
  // The pre-QC EVE prototype simply adopted the first legal rewriting it
  // discovered (paper §8); the QC policy adopts the top-ranked one.
  eve.options().adopt_first_legal = !qc_guided;
  AddDepartment(&eve, "Sales", &rng);
  AddDepartment(&eve, "Ops", &rng);
  AddDepartment(&eve, "Hr", &rng);
  DefineViews(&eve);

  AdoptionStats stats;
  for (int step = 0; step < num_changes; ++step) {
    const SchemaChange change = RandomChange(eve, &rng);
    const auto report = eve.NotifySchemaChange(change);
    if (!report.ok()) continue;
    for (const ViewSynchronizationReport& vr : report->views) {
      if (!vr.affected) continue;
      if (vr.resulting_state == ViewState::kDead) {
        stats.deaths += 1;
      } else {
        stats.changes_survived += 1;
        // Score the rewriting this policy actually adopted.
        for (const RankedRewriting& ranked : vr.ranking) {
          if (PrintViewCompact(ranked.rewriting.definition) == vr.adopted) {
            stats.divergence_sum += ranked.quality.dd;
            stats.rank_sum += ranked.rank;
            stats.cost_sum += ranked.normalized_cost;
            stats.divergence_samples += 1;
            break;
          }
        }
      }
    }
    if (eve.mkb().Relations().size() <= 2) break;  // Space exhausted.
  }
  return stats;
}

}  // namespace

int main() {
  const int kChanges = 12;
  const int kTrials = 20;

  AdoptionStats qc_total;
  AdoptionStats ff_total;
  auto accumulate = [](AdoptionStats* total, const AdoptionStats& s) {
    total->changes_survived += s.changes_survived;
    total->deaths += s.deaths;
    total->divergence_sum += s.divergence_sum;
    total->rank_sum += s.rank_sum;
    total->cost_sum += s.cost_sum;
    total->divergence_samples += s.divergence_samples;
  };
  for (uint64_t seed = 1; seed <= kTrials; ++seed) {
    accumulate(&qc_total, RunPolicy(/*qc_guided=*/true, seed, kChanges));
    accumulate(&ff_total, RunPolicy(/*qc_guided=*/false, seed, kChanges));
  }

  std::printf("warehouse evolution: %d random capability changes x %d trials\n\n",
              kChanges, kTrials);
  std::printf("%-22s %9s %6s %10s %10s %10s\n", "policy", "survived", "died",
              "mean DD", "mean rank", "mean Cost*");
  auto print_row = [](const char* name, const AdoptionStats& s) {
    const int n = s.divergence_samples > 0 ? s.divergence_samples : 1;
    std::printf("%-22s %9d %6d %10.4f %10.2f %10.4f\n", name,
                s.changes_survived, s.deaths, s.divergence_sum / n,
                s.rank_sum / n, s.cost_sum / n);
  };
  print_row("QC-guided (this work)", qc_total);
  print_row("first legal rewriting", ff_total);
  std::printf(
      "\nBoth policies survive the same changes (the legal-rewriting set is\n"
      "identical); the QC-Model's contribution is WHICH rewriting gets\n"
      "adopted: lower divergence from the original view at lower projected\n"
      "maintenance cost (mean rank 1 = always the best of the candidates).\n");
  return 0;
}
