// The paper's motivating scenario (§1): a web service assembling flight and
// hotel information from several autonomous travel providers.  Providers
// change their capabilities over time; EVE keeps the materialized views
// alive and the QC-Model decides which of the many legal rewritings to
// adopt.
//
// The script walks through three capability changes:
//   (a) the airline renames a column               -> transparent rewrite;
//   (b) the agency withdraws its customer list     -> replaced via a PC
//       constraint by a partner agency's list (superset, VE permits);
//   (c) the hotel chain stops publishing prices    -> dispensable attribute
//       dropped from the view.
//
// Build & run:  ./build/examples/travel_agency

#include <cstdio>

#include "esql/printer.h"
#include "eve/eve_system.h"

using namespace eve;

namespace {

Relation MakeCustomer() {
  // Customer(Name, Address, Phone) -- integers stand in for strings to keep
  // the demo data compact; the machinery is type-agnostic.
  Relation rel("Customer", Schema({Attribute::Make("Name", DataType::kInt64, 20),
                                   Attribute::Make("Address", DataType::kInt64, 40),
                                   Attribute::Make("Phone", DataType::kInt64, 15)}));
  for (int64_t n = 1; n <= 30; ++n) {
    rel.InsertUnchecked(Tuple{Value(n), Value(n * 100), Value(n * 7)});
  }
  return rel;
}

Relation MakePartnerCustomer() {
  Relation rel("PartnerCustomer",
               Schema({Attribute::Make("Name", DataType::kInt64, 20),
                       Attribute::Make("Address", DataType::kInt64, 40),
                       Attribute::Make("Phone", DataType::kInt64, 15)}));
  for (int64_t n = 1; n <= 45; ++n) {  // Superset of the agency's list.
    rel.InsertUnchecked(Tuple{Value(n), Value(n * 100), Value(n * 7)});
  }
  return rel;
}

Relation MakeFlightRes() {
  Relation rel("FlightRes", Schema({Attribute::Make("PName", DataType::kInt64, 20),
                                    Attribute::Make("Dest", DataType::kInt64, 10)}));
  for (int64_t n = 1; n <= 30; n += 2) {
    rel.InsertUnchecked(Tuple{Value(n), Value(n % 3)});  // Dest 0..2.
  }
  return rel;
}

Relation MakeHotelRes() {
  Relation rel("HotelRes", Schema({Attribute::Make("Guest", DataType::kInt64, 20),
                                   Attribute::Make("City", DataType::kInt64, 10),
                                   Attribute::Make("Price", DataType::kInt64, 8)}));
  for (int64_t n = 1; n <= 30; n += 3) {
    rel.InsertUnchecked(Tuple{Value(n), Value(n % 4), Value(80 + n)});
  }
  return rel;
}

void Show(const EveSystem& eve, const char* view) {
  const auto def = eve.GetViewDefinition(view);
  const auto state = eve.GetViewState(view);
  if (!def.ok() || !state.ok()) return;
  std::printf("  [%s] %s\n", std::string(ViewStateToString(*state)).c_str(),
              PrintViewCompact(*def).c_str());
  const auto extent = eve.GetViewExtent(view);
  if (extent.ok()) {
    std::printf("  extent: %lld tuples\n",
                static_cast<long long>(extent->cardinality()));
  }
}

bool Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    return false;
  }
  return true;
}

}  // namespace

int main() {
  EveSystem eve;
  // Favor quality strongly; costs still break ties.
  eve.options().qc.rho_quality = 0.9;
  eve.options().qc.rho_cost = 0.1;

  if (!Check(eve.RegisterRelation("Agency", MakeCustomer(), 1.0), "register") ||
      !Check(eve.RegisterRelation("Partner", MakePartnerCustomer(), 1.0),
             "register") ||
      !Check(eve.RegisterRelation("Airline", MakeFlightRes(), 0.5), "register") ||
      !Check(eve.RegisterRelation("HotelChain", MakeHotelRes(), 0.5),
             "register")) {
    return 1;
  }

  // The agency's list is contained in the partner's list.
  if (!Check(eve.AddPcConstraint(MakeProjectionPc(
                 RelationId{"Agency", "Customer"},
                 RelationId{"Partner", "PartnerCustomer"},
                 {"Name", "Address", "Phone"}, PcRelationType::kSubset)),
             "pc")) {
    return 1;
  }

  // The paper's Asia-Customer view (destination 2 plays "Asia"), plus a
  // hotel-package view exercising a three-way join.
  if (!Check(eve.DefineView(
                 "CREATE VIEW AsiaCustomer AS "
                 "SELECT C.Name (AR=true), C.Address (AD=true, AR=true), "
                 "C.Phone (AD=true, AR=true) "
                 "FROM Customer C (RR=true), FlightRes F "
                 "WHERE (C.Name = F.PName) (CR=true) "
                 "AND (F.Dest = 2) (CD=true)"),
             "define AsiaCustomer")) {
    return 1;
  }
  if (!Check(eve.DefineView(
                 "CREATE VIEW TravelPackage AS "
                 "SELECT C.Name (AR=true), F.Dest (AD=true), "
                 "H.Price (AD=true) "
                 "FROM Customer C (RR=true), FlightRes F, HotelRes H "
                 "WHERE (C.Name = F.PName) (CR=true) "
                 "AND (C.Name = H.Guest) (CR=true)"),
             "define TravelPackage")) {
    return 1;
  }

  std::printf("== initial views ==\n");
  Show(eve, "AsiaCustomer");
  Show(eve, "TravelPackage");

  // (a) The airline renames Dest -> Destination.
  std::printf("\n== change (a): airline renames Dest ==\n");
  auto report = eve.NotifySchemaChange(SchemaChange(
      RenameAttribute{RelationId{"Airline", "FlightRes"}, "Dest", "Destination"}));
  if (!Check(report.status(), "rename")) return 1;
  std::printf("%s\n", report->ToString().c_str());
  Show(eve, "AsiaCustomer");
  Show(eve, "TravelPackage");

  // (b) The agency withdraws its customer list.
  std::printf("\n== change (b): agency deletes Customer ==\n");
  report = eve.NotifySchemaChange(
      SchemaChange(DeleteRelation{RelationId{"Agency", "Customer"}}));
  if (!Check(report.status(), "delete customer")) return 1;
  std::printf("%s\n", report->ToString().c_str());
  Show(eve, "AsiaCustomer");
  Show(eve, "TravelPackage");

  // (c) The hotel chain stops publishing prices.
  std::printf("\n== change (c): hotel chain deletes Price ==\n");
  report = eve.NotifySchemaChange(SchemaChange(
      DeleteAttribute{RelationId{"HotelChain", "HotelRes"}, "Price"}));
  if (!Check(report.status(), "delete price")) return 1;
  std::printf("%s\n", report->ToString().c_str());
  Show(eve, "TravelPackage");

  // Data keeps flowing: a new reservation for customer 2 to "Asia".
  std::printf("\n== data update: new Asia reservation ==\n");
  const auto counters = eve.NotifyDataUpdate(
      DataUpdate{UpdateKind::kInsert, RelationId{"Airline", "FlightRes"},
                 Tuple{Value(2), Value(2)}});
  if (!Check(counters.status(), "data update")) return 1;
  std::printf("maintenance: %s\n", counters->ToString().c_str());
  Show(eve, "AsiaCustomer");
  return 0;
}
