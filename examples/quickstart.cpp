// Quickstart: the smallest end-to-end EVE + QC-Model session.
//
//  1. Register two information sources with data and statistics.
//  2. Declare a PC constraint relating them.
//  3. Define an E-SQL view with evolution preferences.
//  4. Delete the relation the view is built on.
//  5. Watch EVE synchronize the view, rank the legal rewritings with the
//     QC-Model, adopt the best one, and rematerialize the extent.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "eve/eve_system.h"

using namespace eve;

namespace {

Relation MakeCustomers(const std::string& name, int64_t first, int64_t last) {
  Relation rel(name, Schema({Attribute::Make("Id", DataType::kInt64, 8),
                             Attribute::Make("City", DataType::kInt64, 8)}));
  for (int64_t id = first; id <= last; ++id) {
    rel.InsertUnchecked(Tuple{Value(id), Value(id % 5)});
  }
  return rel;
}

}  // namespace

int main() {
  EveSystem eve;

  // 1. Two sources: the primary customer list and a larger mirror.
  if (!eve.RegisterRelation("Primary", MakeCustomers("Customer", 1, 40)).ok() ||
      !eve.RegisterRelation("Mirror", MakeCustomers("CustomerMirror", 1, 60))
           .ok()) {
    std::fprintf(stderr, "registration failed\n");
    return 1;
  }

  // 2. MKB knowledge: Customer is contained in CustomerMirror (declared
  //    textually; MakeProjectionPc offers the same programmatically).
  Status status = eve.DeclareConstraint(
      "PC CONSTRAINT Customer (Id, City) SUBSET CustomerMirror (Id, City)");
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  // 3. An E-SQL view: both attributes replaceable, city dispensable.
  // Note the evolution preferences: every component that may need to move
  // to another source is marked replaceable (AR / RR / CR).
  status = eve.DefineView(
      "CREATE VIEW CityCustomers AS "
      "SELECT C.Id (AR = true), C.City (AD = true, AR = true) "
      "FROM Customer C (RR = true) "
      "WHERE (C.City = 2) (CR = true)");
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("view defined; extent has %lld tuples\n",
              static_cast<long long>(
                  eve.GetViewExtent("CityCustomers")->cardinality()));

  // 4-5. The primary source withdraws the Customer relation.
  const auto report = eve.NotifySchemaChange(
      SchemaChange(DeleteRelation{RelationId{"Primary", "Customer"}}));
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("\n%s\n", report->ToString().c_str());

  const auto def = eve.GetViewDefinition("CityCustomers");
  const auto extent = eve.GetViewExtent("CityCustomers");
  if (!def.ok() || !extent.ok()) return 1;
  std::printf("view survived via %s; new extent has %lld tuples\n",
              def->from_items[0].relation.c_str(),
              static_cast<long long>(extent->cardinality()));
  return 0;
}
