// Interactive-style exploration of the analytic maintenance-cost model
// (paper §6): prints how the three cost factors react to each system
// parameter of Table 1, one sweep at a time.  Useful for building intuition
// about the trade-off surface the QC-Model optimizes over.
//
// Build & run:  ./build/examples/cost_explorer

#include <cstdio>
#include <vector>

#include "bench_util/experiment_common.h"
#include "bench_util/table_printer.h"
#include "bench_util/distributions.h"
#include "common/str_util.h"
#include "qc/parameters.h"

using namespace eve;

namespace {

void SweepSites() {
  std::printf("%s", Banner("sweep: number of sites (6 relations, Table 1)").c_str());
  TablePrinter table({"sites", "CF_M", "CF_T (bytes)", "CF_IO"});
  const UniformParams params;
  const CostModelOptions options = MakeUniformOptions(params);
  for (int m = 1; m <= 6; ++m) {
    // Even distribution (as even as possible).
    std::vector<int> dist(m, 6 / m);
    for (int i = 0; i < 6 % m; ++i) dist[i] += 1;
    const auto cf =
        SiteAveragedUpdateCost(MakeUniformInput(dist, params), options);
    if (!cf.ok()) continue;
    table.AddRow({FormatDouble(m), FormatDouble(cf->messages, 2),
                  FormatDouble(cf->bytes, 1), FormatDouble(cf->ios, 1)});
  }
  std::printf("%s\n", table.Render().c_str());
}

void SweepJoinSelectivity() {
  std::printf("%s", Banner("sweep: join selectivity js (2 sites, 3+3)").c_str());
  TablePrinter table({"js", "js*|R|", "CF_T (bytes)", "CF_IO"});
  UniformParams params;
  const CostModelOptions options = MakeUniformOptions(params);
  for (double js : {0.0005, 0.001, 0.0022, 0.005, 0.01, 0.02}) {
    params.join_selectivity = js;
    ViewCostInput input = MakeUniformInput({3, 3}, params);
    const auto cf = SiteAveragedUpdateCost(input, options);
    if (!cf.ok()) continue;
    table.AddRow({FormatDouble(js, 4), FormatDouble(js * 400, 2),
                  FormatDouble(cf->bytes, 1), FormatDouble(cf->ios, 1)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "js*|R| < 1 shrinks the delta as it travels; js*|R| > 1 amplifies it\n"
      "exponentially along the site chain (why Fig. 14's panels differ).\n\n");
}

void SweepCardinality() {
  std::printf("%s", Banner("sweep: relation cardinality (2 sites, 3+3)").c_str());
  TablePrinter table({"|R|", "CF_T (bytes)", "CF_IO"});
  UniformParams params;
  const CostModelOptions options = MakeUniformOptions(params);
  for (int64_t card : {100, 200, 400, 800, 1600}) {
    params.cardinality = card;
    const auto cf =
        SiteAveragedUpdateCost(MakeUniformInput({3, 3}, params), options);
    if (!cf.ok()) continue;
    table.AddRow({FormatDouble(static_cast<double>(card)),
                  FormatDouble(cf->bytes, 1), FormatDouble(cf->ios, 1)});
  }
  std::printf("%s\n", table.Render().c_str());
}

void SweepSelectivity() {
  std::printf("%s", Banner("sweep: local selectivity sigma (2 sites, 3+3)").c_str());
  TablePrinter table({"sigma", "CF_T (bytes)"});
  UniformParams params;
  const CostModelOptions options = MakeUniformOptions(params);
  for (double sigma : {0.1, 0.25, 0.5, 0.75, 1.0}) {
    params.local_selectivity = sigma;
    const auto cf =
        SiteAveragedUpdateCost(MakeUniformInput({3, 3}, params), options);
    if (!cf.ok()) continue;
    table.AddRow({FormatDouble(sigma, 2), FormatDouble(cf->bytes, 1)});
  }
  std::printf("%s\n", table.Render().c_str());
}

void ShowWeightedCost() {
  std::printf("%s", Banner("weighted cost (Eq. 24) at the paper's unit prices").c_str());
  const UniformParams params;
  const CostModelOptions options = MakeUniformOptions(params);
  QcParameters qc;  // cost_M = 0.1, cost_T = 0.7, cost_IO = 0.2.
  TablePrinter table({"distribution", "CF_M", "CF_T", "CF_IO", "Cost (Eq. 24)"});
  for (const std::vector<int>& dist :
       {std::vector<int>{6}, {3, 3}, {2, 2, 2}, {1, 1, 1, 1, 1, 1}}) {
    const auto cf =
        SiteAveragedUpdateCost(MakeUniformInput(dist, params), options);
    if (!cf.ok()) continue;
    table.AddRow({DistributionLabel(dist), FormatDouble(cf->messages, 2),
                  FormatDouble(cf->bytes, 1), FormatDouble(cf->ios, 1),
                  FormatDouble(cf->Weighted(qc), 1)});
  }
  std::printf("%s\n", table.Render().c_str());
}

}  // namespace

int main() {
  SweepSites();
  SweepJoinSelectivity();
  SweepCardinality();
  SweepSelectivity();
  ShowWeightedCost();
  return 0;
}
