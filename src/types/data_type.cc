#include "types/data_type.h"

namespace eve {

std::string_view DataTypeName(DataType type) {
  switch (type) {
    case DataType::kNull:
      return "NULL";
    case DataType::kInt64:
      return "INT";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

int DefaultTypeSize(DataType type) {
  switch (type) {
    case DataType::kNull:
      return 0;
    case DataType::kInt64:
      return 8;
    case DataType::kDouble:
      return 8;
    case DataType::kString:
      return 20;
  }
  return 0;
}

bool AreComparable(DataType a, DataType b) {
  if (a == DataType::kNull || b == DataType::kNull) return false;
  const bool a_num = a == DataType::kInt64 || a == DataType::kDouble;
  const bool b_num = b == DataType::kInt64 || b == DataType::kDouble;
  if (a_num && b_num) return true;
  return a == DataType::kString && b == DataType::kString;
}

}  // namespace eve
