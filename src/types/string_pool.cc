#include "types/string_pool.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace eve {

namespace {

// Process-wide pool registry.  Reads are plain atomic loads, so resolving a
// Value's pool index is lock-free on the compare/render hot paths; slots of
// destroyed pools are recycled through a free list so constructing pools in
// a loop (every EveSystem owns one) never exhausts the registry.  Reusing a
// slot means a Value that outlives its pool -- already a documented
// programming error -- may resolve to the successor pool instead of a null
// pointer; the id-based fast paths stay correct because equality falls back
// to content whenever pool indexes differ.
constexpr uint32_t kMaxPools = 1u << 16;
std::atomic<StringPool*> g_pools[kMaxPools];
std::atomic<uint32_t> g_next_pool{0};
std::mutex g_free_mu;
std::vector<uint32_t> g_free_slots;

uint32_t AcquirePoolSlot() {
  {
    std::lock_guard<std::mutex> lock(g_free_mu);
    if (!g_free_slots.empty()) {
      const uint32_t slot = g_free_slots.back();
      g_free_slots.pop_back();
      return slot;
    }
  }
  return g_next_pool.fetch_add(1, std::memory_order_relaxed);
}

void ReleasePoolSlot(uint32_t slot) {
  std::lock_guard<std::mutex> lock(g_free_mu);
  g_free_slots.push_back(slot);
}

// FNV-1a over the bytes: deterministic across runs and independent of the
// interning order, which is what keeps Value::Hash stable (see header).
uint64_t HashBytes(std::string_view text) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

StringPool::StringPool() {
  index_ = AcquirePoolSlot();
  if (index_ >= kMaxPools) {
    std::fprintf(stderr, "StringPool: %u pools live concurrently\n",
                 kMaxPools);
    std::abort();
  }
  g_pools[index_].store(this, std::memory_order_release);
}

StringPool::~StringPool() {
  g_pools[index_].store(nullptr, std::memory_order_release);
  ReleasePoolSlot(index_);
  for (std::atomic<Entry*>& seg : segments_) {
    delete[] seg.load(std::memory_order_acquire);
  }
}

uint32_t StringPool::Intern(std::string_view text) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = ids_.find(text);
  if (it != ids_.end()) return it->second;
  const uint32_t id =
      static_cast<uint32_t>(count_.load(std::memory_order_relaxed));
  const uint32_t k = SegmentOf(id);
  Entry* seg = segments_[k].load(std::memory_order_relaxed);
  if (seg == nullptr) {
    // First entry of this segment: allocate and publish.  Readers only
    // dereference ids they received from a completed Intern, so the
    // release store paired with their acquire load suffices.
    seg = new Entry[SegmentSize(k)];
    segments_[k].store(seg, std::memory_order_release);
  }
  Entry& entry = seg[id - SegmentStart(k)];
  entry.text = std::string(text);
  entry.hash = HashBytes(text);
  ids_.emplace(std::string_view(entry.text), id);
  // Publish the count last: an id becomes visible to size() only after its
  // entry is fully constructed.
  count_.store(static_cast<int64_t>(id) + 1, std::memory_order_release);
  return id;
}

const StringPool::Entry& StringPool::EntryOf(uint32_t id) const {
  const uint32_t k = SegmentOf(id);
  const Entry* seg = segments_[k].load(std::memory_order_acquire);
  return seg[id - SegmentStart(k)];
}

const std::string& StringPool::Get(uint32_t id) const {
  return EntryOf(id).text;
}

uint64_t StringPool::ContentHash(uint32_t id) const {
  return EntryOf(id).hash;
}

int64_t StringPool::size() const {
  return count_.load(std::memory_order_acquire);
}

StringPool& StringPool::Default() {
  // Leaked on purpose: the default pool must outlive every static-duration
  // Value, so it is immortal.
  static StringPool* pool = new StringPool();
  return *pool;
}

StringPool* StringPool::FromIndex(uint32_t index) {
  if (index >= kMaxPools) return nullptr;
  return g_pools[index].load(std::memory_order_acquire);
}

}  // namespace eve
