#include "types/value.h"

#include <bit>
#include <cmath>

#include "common/str_util.h"

namespace eve {

namespace {

// Order doubles by std::weak_order: -NaN < reals (with -0.0 == +0.0) < NaN.
inline std::strong_ordering OrderDoubles(double a, double b) {
  const std::weak_ordering w = std::weak_order(a, b);
  if (w == std::weak_ordering::less) return std::strong_ordering::less;
  if (w == std::weak_ordering::greater) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

}  // namespace

std::strong_ordering Value::Compare(const Value& other) const {
  const bool a_null = is_null();
  const bool b_null = other.is_null();
  if (a_null || b_null) {
    if (a_null && b_null) return std::strong_ordering::equal;
    return a_null ? std::strong_ordering::less : std::strong_ordering::greater;
  }
  const bool a_str = tag_ == DataType::kString;
  const bool b_str = other.tag_ == DataType::kString;
  if (a_str != b_str) {
    // Heterogeneous (number vs string): order numbers first, deterministically.
    return a_str ? std::strong_ordering::greater : std::strong_ordering::less;
  }
  if (a_str) {
    // Same interned entry: equal without touching the pool.
    if (payload_.s.pool == other.payload_.s.pool &&
        payload_.s.id == other.payload_.s.id) {
      return std::strong_ordering::equal;
    }
    const int c = AsString().compare(other.AsString());
    if (c < 0) return std::strong_ordering::less;
    if (c > 0) return std::strong_ordering::greater;
    return std::strong_ordering::equal;
  }
  if (tag_ == DataType::kInt64 && other.tag_ == DataType::kInt64) {
    const int64_t a = payload_.i;
    const int64_t b = other.payload_.i;
    if (a < b) return std::strong_ordering::less;
    if (a > b) return std::strong_ordering::greater;
    return std::strong_ordering::equal;
  }
  return OrderDoubles(AsDouble(), other.AsDouble());
}

bool Value::operator==(const Value& other) const {
  if (tag_ == DataType::kString && other.tag_ == DataType::kString) {
    if (payload_.s.pool == other.payload_.s.pool) {
      return payload_.s.id == other.payload_.s.id;
    }
    // Cross-pool: content hash filters mismatches before the byte compare.
    if (shash_ != other.shash_) return false;
    return AsString() == other.AsString();
  }
  return Compare(other) == std::strong_ordering::equal;
}

size_t Value::Hash() const {
  switch (tag_) {
    case DataType::kNull:
      return static_cast<size_t>(value_hash::kNullHashSeed);
    case DataType::kInt64:
      // Through double, matching Compare's cross-type promotion, so INT 3
      // and DOUBLE 3.0 land in the same bucket.
      return value_hash::HashInt64(payload_.i);
    case DataType::kDouble:
      return static_cast<size_t>(
          value_hash::Mix64(value_hash::NumericBits(payload_.d)));
    case DataType::kString:
      // Content-hash based: stable across pools and interning orders.
      return value_hash::HashStringContent(shash_);
  }
  return 0;
}

std::string Value::ToString() const {
  switch (tag_) {
    case DataType::kNull:
      return "NULL";
    case DataType::kInt64:
      return StrFormat("%lld", static_cast<long long>(AsInt()));
    case DataType::kDouble:
      return FormatDouble(AsDouble());
    case DataType::kString:
      return "'" + AsString() + "'";
  }
  return "?";
}

}  // namespace eve
