#include "types/value.h"

#include <bit>
#include <cmath>

#include "common/str_util.h"

namespace eve {

namespace {

// splitmix64 finalizer: a full-avalanche 64-bit mix, cheap and branchless.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

// Canonical hash bits of a numeric value.  Everything is canonicalized
// through its double representation, because Compare promotes INT/DOUBLE
// comparisons to double: values that compare equal across types therefore
// share bits, and ±0.0 / NaN classes are collapsed to one representative
// per weak_order equivalence class.
inline uint64_t NumericBits(double d) {
  if (std::isnan(d)) {
    return std::signbit(d) ? 0xFFF8000000000001ULL : 0x7FF8000000000000ULL;
  }
  if (d == 0.0) return 0;  // Collapses -0.0 onto +0.0.
  return std::bit_cast<uint64_t>(d);
}

// Order doubles by std::weak_order: -NaN < reals (with -0.0 == +0.0) < NaN.
inline std::strong_ordering OrderDoubles(double a, double b) {
  const std::weak_ordering w = std::weak_order(a, b);
  if (w == std::weak_ordering::less) return std::strong_ordering::less;
  if (w == std::weak_ordering::greater) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

constexpr uint64_t kNullHashSeed = 0x9E3779B97F4A7C15ULL;
constexpr uint64_t kStringHashSeed = 0xA24BAED4963EE407ULL;

}  // namespace

std::strong_ordering Value::Compare(const Value& other) const {
  const bool a_null = is_null();
  const bool b_null = other.is_null();
  if (a_null || b_null) {
    if (a_null && b_null) return std::strong_ordering::equal;
    return a_null ? std::strong_ordering::less : std::strong_ordering::greater;
  }
  const bool a_str = tag_ == DataType::kString;
  const bool b_str = other.tag_ == DataType::kString;
  if (a_str != b_str) {
    // Heterogeneous (number vs string): order numbers first, deterministically.
    return a_str ? std::strong_ordering::greater : std::strong_ordering::less;
  }
  if (a_str) {
    // Same interned entry: equal without touching the pool.
    if (payload_.s.pool == other.payload_.s.pool &&
        payload_.s.id == other.payload_.s.id) {
      return std::strong_ordering::equal;
    }
    const int c = AsString().compare(other.AsString());
    if (c < 0) return std::strong_ordering::less;
    if (c > 0) return std::strong_ordering::greater;
    return std::strong_ordering::equal;
  }
  if (tag_ == DataType::kInt64 && other.tag_ == DataType::kInt64) {
    const int64_t a = payload_.i;
    const int64_t b = other.payload_.i;
    if (a < b) return std::strong_ordering::less;
    if (a > b) return std::strong_ordering::greater;
    return std::strong_ordering::equal;
  }
  return OrderDoubles(AsDouble(), other.AsDouble());
}

bool Value::operator==(const Value& other) const {
  if (tag_ == DataType::kString && other.tag_ == DataType::kString) {
    if (payload_.s.pool == other.payload_.s.pool) {
      return payload_.s.id == other.payload_.s.id;
    }
    // Cross-pool: content hash filters mismatches before the byte compare.
    if (shash_ != other.shash_) return false;
    return AsString() == other.AsString();
  }
  return Compare(other) == std::strong_ordering::equal;
}

size_t Value::Hash() const {
  switch (tag_) {
    case DataType::kNull:
      return static_cast<size_t>(kNullHashSeed);
    case DataType::kInt64:
      // Through double, matching Compare's cross-type promotion, so INT 3
      // and DOUBLE 3.0 land in the same bucket.
      return static_cast<size_t>(
          Mix64(NumericBits(static_cast<double>(payload_.i))));
    case DataType::kDouble:
      return static_cast<size_t>(Mix64(NumericBits(payload_.d)));
    case DataType::kString:
      // Content-hash based: stable across pools and interning orders.
      return static_cast<size_t>(Mix64(shash_ ^ kStringHashSeed));
  }
  return 0;
}

std::string Value::ToString() const {
  switch (tag_) {
    case DataType::kNull:
      return "NULL";
    case DataType::kInt64:
      return StrFormat("%lld", static_cast<long long>(AsInt()));
    case DataType::kDouble:
      return FormatDouble(AsDouble());
    case DataType::kString:
      return "'" + AsString() + "'";
  }
  return "?";
}

}  // namespace eve
