#include "types/value.h"

#include <cmath>
#include <functional>

#include "common/str_util.h"

namespace eve {

DataType Value::type() const {
  switch (rep_.index()) {
    case 0:
      return DataType::kNull;
    case 1:
      return DataType::kInt64;
    case 2:
      return DataType::kDouble;
    default:
      return DataType::kString;
  }
}

double Value::AsDouble() const {
  if (std::holds_alternative<int64_t>(rep_)) {
    return static_cast<double>(std::get<int64_t>(rep_));
  }
  return std::get<double>(rep_);
}

bool Value::ComparableWith(const Value& other) const {
  return AreComparable(type(), other.type());
}

std::strong_ordering Value::Compare(const Value& other) const {
  const bool a_null = is_null();
  const bool b_null = other.is_null();
  if (a_null || b_null) {
    if (a_null && b_null) return std::strong_ordering::equal;
    return a_null ? std::strong_ordering::less : std::strong_ordering::greater;
  }
  const DataType ta = type();
  const DataType tb = other.type();
  const bool a_num = ta != DataType::kString;
  const bool b_num = tb != DataType::kString;
  if (a_num != b_num) {
    // Heterogeneous (number vs string): order numbers first, deterministically.
    return a_num ? std::strong_ordering::less : std::strong_ordering::greater;
  }
  if (!a_num) {
    const int c = AsString().compare(other.AsString());
    if (c < 0) return std::strong_ordering::less;
    if (c > 0) return std::strong_ordering::greater;
    return std::strong_ordering::equal;
  }
  if (ta == DataType::kInt64 && tb == DataType::kInt64) {
    const int64_t a = AsInt();
    const int64_t b = other.AsInt();
    if (a < b) return std::strong_ordering::less;
    if (a > b) return std::strong_ordering::greater;
    return std::strong_ordering::equal;
  }
  const double a = AsDouble();
  const double b = other.AsDouble();
  if (a < b) return std::strong_ordering::less;
  if (a > b) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

size_t Value::Hash() const {
  switch (type()) {
    case DataType::kNull:
      return 0x9E3779B97F4A7C15ULL;
    case DataType::kInt64: {
      // Hash ints through double so 3 and 3.0 collide (they compare equal).
      const double d = static_cast<double>(AsInt());
      if (static_cast<int64_t>(d) == AsInt()) {
        return std::hash<double>{}(d);
      }
      return std::hash<int64_t>{}(AsInt());
    }
    case DataType::kDouble:
      return std::hash<double>{}(AsDouble());
    case DataType::kString:
      return std::hash<std::string>{}(AsString());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case DataType::kNull:
      return "NULL";
    case DataType::kInt64:
      return StrFormat("%lld", static_cast<long long>(AsInt()));
    case DataType::kDouble:
      return FormatDouble(AsDouble());
    case DataType::kString:
      return "'" + AsString() + "'";
  }
  return "?";
}

}  // namespace eve
