// StringPool: a hash-consed, append-only store of interned strings.
//
// Every STRING Value holds a (pool index, string id) pair instead of an
// owned std::string, shrinking Value to a 16-byte POD-like payload and
// turning same-pool string equality into an integer comparison.  Interning
// is idempotent: a pool returns the existing id when the same text is
// interned again, so two Values interned from equal text in the same pool
// always carry the same id.
//
// Pools are registered in a process-wide lock-free registry so a Value can
// resolve its text from the 32-bit pool index it carries.  `Default()` is
// the immortal process-wide pool every plain `Value(std::string)` uses; an
// `EveSystem` additionally owns a pool of its own for bulk data loading so
// unrelated systems do not contend on one intern table.
//
// Thread safety: Intern / Get / ContentHash / size may be called from any
// number of threads concurrently.  Entries are never removed or mutated, so
// the `const std::string&` returned by Get stays valid for the pool's
// lifetime.  A pool must outlive every Value interned into it (trivially
// true for Default()).
//
// Reads are lock-free: entries live in append-only exponentially-growing
// segments published through atomic pointers, so Get / ContentHash resolve
// an id with two loads and no mutex.  Only Intern takes the writer mutex.
// This matters on sort paths -- lexicographic Value compares resolve both
// strings through Get, and a mutex there serialized every multi-threaded
// sort and merge over string columns behind one lock (ROADMAP).
//
// Hash discipline: ContentHash depends only on the string's bytes -- never
// on the id or interning order -- so Value::Hash is stable across pools and
// across runs that intern the same strings in different orders.

#ifndef EVE_TYPES_STRING_POOL_H_
#define EVE_TYPES_STRING_POOL_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace eve {

/// An append-only intern table for string Values.
class StringPool {
 public:
  StringPool();
  ~StringPool();

  StringPool(const StringPool&) = delete;
  StringPool& operator=(const StringPool&) = delete;

  /// Id of `text`, interning it on first sight.  Equal texts always map to
  /// the same id within one pool.
  uint32_t Intern(std::string_view text);

  /// The interned text.  The reference stays valid for the pool's lifetime
  /// (entries are append-only).
  const std::string& Get(uint32_t id) const;

  /// 64-bit hash of the interned text's bytes (precomputed at intern time;
  /// independent of id and interning order).
  uint64_t ContentHash(uint32_t id) const;

  /// Number of distinct strings interned so far.
  int64_t size() const;

  /// This pool's slot in the process-wide registry (what a Value stores).
  uint32_t index() const { return index_; }

  /// The immortal process-wide pool used by plain Value construction.
  static StringPool& Default();

  /// Resolves a registry index back to its pool.  Destroyed pools release
  /// their slot for reuse, so an index may resolve to null or to a
  /// successor pool -- either way, a live Value referencing a destroyed
  /// pool is a programming error (see class comment).
  static StringPool* FromIndex(uint32_t index);

 private:
  struct Entry {
    std::string text;
    uint64_t hash = 0;
  };

  /// Segment k holds kSegment0Size << k entries starting at id
  /// kSegment0Size * (2^k - 1); 26 segments cover > 2 billion strings.
  /// Segments are allocated under the writer mutex and published with a
  /// release store; readers locate (segment, offset) from the id with bit
  /// arithmetic and an acquire load -- entries never move.
  static constexpr uint32_t kSegment0Shift = 5;  // 32 entries in segment 0.
  static constexpr uint32_t kSegmentCount = 26;

  static uint32_t SegmentOf(uint32_t id) {
    uint32_t q = (id >> kSegment0Shift) + 1;
    uint32_t k = 0;
    while (q > 1) {
      q >>= 1;
      ++k;
    }
    return k;
  }
  static uint32_t SegmentStart(uint32_t k) {
    return ((1u << k) - 1u) << kSegment0Shift;
  }
  static uint32_t SegmentSize(uint32_t k) { return 1u << (kSegment0Shift + k); }

  const Entry& EntryOf(uint32_t id) const;

  mutable std::mutex mu_;  ///< Guards interning (ids_, segment allocation).
  std::atomic<Entry*> segments_[kSegmentCount] = {};
  std::atomic<int64_t> count_{0};
  /// Keys are views into segment entry texts (stable, see above).
  std::unordered_map<std::string_view, uint32_t> ids_;
  uint32_t index_;
};

}  // namespace eve

#endif  // EVE_TYPES_STRING_POOL_H_
