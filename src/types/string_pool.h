// StringPool: a hash-consed, append-only store of interned strings.
//
// Every STRING Value holds a (pool index, string id) pair instead of an
// owned std::string, shrinking Value to a 16-byte POD-like payload and
// turning same-pool string equality into an integer comparison.  Interning
// is idempotent: a pool returns the existing id when the same text is
// interned again, so two Values interned from equal text in the same pool
// always carry the same id.
//
// Pools are registered in a process-wide lock-free registry so a Value can
// resolve its text from the 32-bit pool index it carries.  `Default()` is
// the immortal process-wide pool every plain `Value(std::string)` uses; an
// `EveSystem` additionally owns a pool of its own for bulk data loading so
// unrelated systems do not contend on one intern table.
//
// Thread safety: Intern / Get / ContentHash / size may be called from any
// number of threads concurrently.  Entries are never removed or mutated, so
// the `const std::string&` returned by Get stays valid for the pool's
// lifetime.  A pool must outlive every Value interned into it (trivially
// true for Default()).
//
// Hash discipline: ContentHash depends only on the string's bytes -- never
// on the id or interning order -- so Value::Hash is stable across pools and
// across runs that intern the same strings in different orders.

#ifndef EVE_TYPES_STRING_POOL_H_
#define EVE_TYPES_STRING_POOL_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace eve {

/// An append-only intern table for string Values.
class StringPool {
 public:
  StringPool();
  ~StringPool();

  StringPool(const StringPool&) = delete;
  StringPool& operator=(const StringPool&) = delete;

  /// Id of `text`, interning it on first sight.  Equal texts always map to
  /// the same id within one pool.
  uint32_t Intern(std::string_view text);

  /// The interned text.  The reference stays valid for the pool's lifetime
  /// (entries are append-only).
  const std::string& Get(uint32_t id) const;

  /// 64-bit hash of the interned text's bytes (precomputed at intern time;
  /// independent of id and interning order).
  uint64_t ContentHash(uint32_t id) const;

  /// Number of distinct strings interned so far.
  int64_t size() const;

  /// This pool's slot in the process-wide registry (what a Value stores).
  uint32_t index() const { return index_; }

  /// The immortal process-wide pool used by plain Value construction.
  static StringPool& Default();

  /// Resolves a registry index back to its pool.  Destroyed pools release
  /// their slot for reuse, so an index may resolve to null or to a
  /// successor pool -- either way, a live Value referencing a destroyed
  /// pool is a programming error (see class comment).
  static StringPool* FromIndex(uint32_t index);

 private:
  struct Entry {
    std::string text;
    uint64_t hash;
  };

  mutable std::mutex mu_;
  /// Append-only store; deque keeps element references stable across growth.
  std::deque<Entry> entries_;
  /// Keys are views into entries_ texts (stable, see above).
  std::unordered_map<std::string_view, uint32_t> ids_;
  uint32_t index_;
};

}  // namespace eve

#endif  // EVE_TYPES_STRING_POOL_H_
