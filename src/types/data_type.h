// The scalar type system of the relational substrate.  MISD type-integrity
// constraints (paper Fig. 4) are expressed over these types.

#ifndef EVE_TYPES_DATA_TYPE_H_
#define EVE_TYPES_DATA_TYPE_H_

#include <cstdint>
#include <string_view>

namespace eve {

/// Scalar attribute types.  kNull is the type of the SQL NULL literal only;
/// attributes are always declared with one of the three concrete types.
enum class DataType : uint8_t {
  kNull = 0,
  kInt64,
  kDouble,
  kString,
};

/// Canonical name ("INT", "DOUBLE", "STRING", "NULL").
std::string_view DataTypeName(DataType type);

/// Default on-the-wire width in bytes, used by the cost model when a
/// relation does not declare explicit attribute sizes.  Strings default to
/// a fixed-width encoding, mirroring the paper's constant tuple sizes.
int DefaultTypeSize(DataType type);

/// True iff values of the two types may be compared by a primitive clause
/// (numeric types are mutually comparable; strings only with strings).
bool AreComparable(DataType a, DataType b);

}  // namespace eve

#endif  // EVE_TYPES_DATA_TYPE_H_
