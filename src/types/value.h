// Value: a dynamically typed scalar (NULL, INT, DOUBLE, or STRING).
// Tuples are vectors of Values; primitive clauses compare Values.

#ifndef EVE_TYPES_VALUE_H_
#define EVE_TYPES_VALUE_H_

#include <compare>
#include <cstdint>
#include <string>
#include <variant>

#include "types/data_type.h"

namespace eve {

/// A scalar value.  Comparison across INT and DOUBLE promotes to double;
/// NULL compares equal to NULL and less than everything else (total order,
/// used for sorting / set semantics; primitive-clause evaluation treats
/// comparisons involving NULL as false, as in SQL).
class Value {
 public:
  /// NULL value.
  Value() : rep_(std::monostate{}) {}
  /// INT value.
  explicit Value(int64_t v) : rep_(v) {}
  /// Convenience for literals: Value(5).
  explicit Value(int v) : rep_(static_cast<int64_t>(v)) {}
  /// DOUBLE value.
  explicit Value(double v) : rep_(v) {}
  /// STRING value.
  explicit Value(std::string v) : rep_(std::move(v)) {}
  explicit Value(const char* v) : rep_(std::string(v)) {}

  DataType type() const;

  bool is_null() const { return std::holds_alternative<std::monostate>(rep_); }

  /// Typed accessors; calling the wrong one is a programming error.
  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  double AsDouble() const;
  const std::string& AsString() const { return std::get<std::string>(rep_); }

  /// True iff the values are comparable (see AreComparable).
  bool ComparableWith(const Value& other) const;

  /// Total order used for set semantics; see class comment.
  std::strong_ordering Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == std::strong_ordering::equal; }
  bool operator<(const Value& other) const { return Compare(other) == std::strong_ordering::less; }

  /// Stable hash consistent with operator== (INT 3 and DOUBLE 3.0 hash alike).
  size_t Hash() const;

  /// Rendering for debugging and table output; strings are quoted.
  std::string ToString() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> rep_;
};

/// Hash functor for Value containers (consistent with operator==).
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace eve

#endif  // EVE_TYPES_VALUE_H_
