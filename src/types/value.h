// Value: a dynamically typed scalar (NULL, INT, DOUBLE, or STRING) in a
// compact 16-byte tagged representation.  Tuples are vectors of Values;
// primitive clauses compare Values.
//
// Strings are not stored inline: a STRING Value carries the (pool index,
// string id) of an entry interned in a StringPool plus a 32-bit content
// hash, so tuples stay POD-sized on string workloads, same-pool equality is
// an integer comparison, and Value::Hash never touches the pool.

#ifndef EVE_TYPES_VALUE_H_
#define EVE_TYPES_VALUE_H_

#include <bit>
#include <cassert>
#include <cmath>
#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "types/data_type.h"
#include "types/string_pool.h"

namespace eve {

/// The hash primitives behind Value::Hash, exposed so the packed column
/// segments (storage/column_segment.h) can hash int64 words and interned
/// string ids branch-free without materializing a Value per row.  Any
/// change here changes every stored tuple hash.
namespace value_hash {

/// splitmix64 finalizer: a full-avalanche 64-bit mix, cheap and branchless.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Canonical hash bits of a numeric value.  Everything is canonicalized
/// through its double representation, because Value::Compare promotes
/// INT/DOUBLE comparisons to double: values that compare equal across types
/// therefore share bits, and ±0.0 / NaN classes are collapsed to one
/// representative per weak_order equivalence class.
inline uint64_t NumericBits(double d) {
  if (std::isnan(d)) {
    return std::signbit(d) ? 0xFFF8000000000001ULL : 0x7FF8000000000000ULL;
  }
  if (d == 0.0) return 0;  // Collapses -0.0 onto +0.0.
  return std::bit_cast<uint64_t>(d);
}

inline constexpr uint64_t kNullHashSeed = 0x9E3779B97F4A7C15ULL;
inline constexpr uint64_t kStringHashSeed = 0xA24BAED4963EE407ULL;

/// Value(i).Hash() without the Value.
inline size_t HashInt64(int64_t i) {
  return static_cast<size_t>(Mix64(NumericBits(static_cast<double>(i))));
}

/// The hash of a STRING value from its 32-bit content hash alone.
inline size_t HashStringContent(uint32_t content_hash) {
  return static_cast<size_t>(Mix64(content_hash ^ kStringHashSeed));
}

}  // namespace value_hash

/// A scalar value.  Comparison across INT and DOUBLE promotes to double;
/// NULL compares equal to NULL and less than everything else (total order,
/// used for sorting / set semantics; primitive-clause evaluation treats
/// comparisons involving NULL -- and likewise NaN -- as false, as in
/// SQL).  Doubles are ordered by std::weak_order, so -0.0 and +0.0 stay
/// equal while NaNs get a defined place at the ends of the number line
/// instead of the unordered-compares-equal behavior a raw `<` would give.
class Value {
 public:
  /// NULL value.
  Value() : tag_(DataType::kNull), shash_(0) { payload_.bits = 0; }
  /// INT value.
  explicit Value(int64_t v) : tag_(DataType::kInt64), shash_(0) {
    payload_.i = v;
  }
  /// Convenience for literals: Value(5).
  explicit Value(int v) : Value(static_cast<int64_t>(v)) {}
  /// DOUBLE value.
  explicit Value(double v) : tag_(DataType::kDouble), shash_(0) {
    payload_.d = v;
  }
  /// STRING value, interned in `pool` (the process-wide default pool when
  /// omitted).  The pool must outlive the Value.
  explicit Value(std::string_view v, StringPool& pool = StringPool::Default())
      : tag_(DataType::kString) {
    payload_.s.id = pool.Intern(v);
    payload_.s.pool = pool.index();
    shash_ = static_cast<uint32_t>(pool.ContentHash(payload_.s.id));
  }
  explicit Value(const std::string& v,
                 StringPool& pool = StringPool::Default())
      : Value(std::string_view(v), pool) {}
  explicit Value(const char* v, StringPool& pool = StringPool::Default())
      : Value(std::string_view(v), pool) {}

  DataType type() const { return tag_; }

  bool is_null() const { return tag_ == DataType::kNull; }

  /// Typed accessors; calling the wrong one is a programming error.
  int64_t AsInt() const { return payload_.i; }
  double AsDouble() const {
    return tag_ == DataType::kInt64 ? static_cast<double>(payload_.i)
                                    : payload_.d;
  }
  /// The interned text; valid for the owning pool's lifetime.
  const std::string& AsString() const {
    assert(tag_ == DataType::kString);
    return StringPool::FromIndex(payload_.s.pool)->Get(payload_.s.id);
  }

  /// Interning coordinates of a STRING value (for tests and diagnostics).
  uint32_t string_id() const { return payload_.s.id; }
  uint32_t string_pool_index() const { return payload_.s.pool; }
  /// Low 32 bits of a STRING's content hash (0 for non-strings).
  uint32_t string_content_hash() const { return shash_; }

  /// Reconstructs an already-interned STRING value from its interning
  /// coordinates without touching the pool.  Storage-internal: packed
  /// string segments store (content hash, id) words plus the pool index
  /// once per column and rebuild Values on demand.  The coordinates must
  /// come from a live Value of the same pool.
  static Value FromInterned(uint32_t id, uint32_t pool_index,
                            uint32_t content_hash) {
    Value v;
    v.tag_ = DataType::kString;
    v.payload_.s.id = id;
    v.payload_.s.pool = pool_index;
    v.shash_ = content_hash;
    return v;
  }

  /// True iff the values are comparable (see AreComparable).
  bool ComparableWith(const Value& other) const {
    return AreComparable(tag_, other.tag_);
  }

  /// Total order used for set semantics; see class comment.
  std::strong_ordering Compare(const Value& other) const;

  bool operator==(const Value& other) const;
  bool operator<(const Value& other) const {
    return Compare(other) == std::strong_ordering::less;
  }
  bool operator>(const Value& other) const {
    return Compare(other) == std::strong_ordering::greater;
  }
  bool operator<=(const Value& other) const { return !(*this > other); }
  bool operator>=(const Value& other) const { return !(*this < other); }

  /// Stable hash consistent with operator== (INT 3 and DOUBLE 3.0 hash
  /// alike; equal strings hash alike across pools and interning orders).
  /// Branch-light: one canonicalization plus a 64-bit mix, no pool access.
  size_t Hash() const;

  /// Rendering for debugging and table output; strings are quoted.
  std::string ToString() const;

 private:
  union Payload {
    int64_t i;
    double d;
    uint64_t bits;
    struct {
      uint32_t id;
      uint32_t pool;
    } s;
  };

  Payload payload_;  ///< 8 bytes: int, double bits, or (id, pool).
  DataType tag_;     ///< Discriminator (1 byte + padding).
  /// Low 32 bits of the string's content hash; 0 for non-strings.  Lets
  /// Hash() and equality fast paths skip the pool entirely.
  uint32_t shash_;
};

static_assert(sizeof(Value) <= 16, "Value must stay a compact 16-byte scalar");

/// Hash functor for Value containers (consistent with operator==).
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace eve

#endif  // EVE_TYPES_VALUE_H_
