// RelationProvider: the executor's view of the information space.  It
// resolves a FROM item (site-qualified or bare relation name) to a concrete
// Relation.  space::InformationSpace implements it; tests may implement it
// with a simple map.

#ifndef EVE_ALGEBRA_PROVIDER_H_
#define EVE_ALGEBRA_PROVIDER_H_

#include <map>
#include <string>

#include "common/result.h"
#include "storage/relation.h"

namespace eve {

/// Resolves relation names to relation instances.
class RelationProvider {
 public:
  virtual ~RelationProvider() = default;

  /// Returns the relation named `relation` (at `site` if non-empty; when
  /// `site` is empty the name must be unambiguous across sites).
  virtual Result<const Relation*> Resolve(const std::string& site,
                                          const std::string& relation) const = 0;

  /// Non-zero iff this provider is an immutable published snapshot (see
  /// serve/snapshot.h), in which case the value is the process-unique
  /// epoch id.  PlanCache uses it to skip per-relation revalidation on
  /// same-epoch hits: an immutable epoch cannot invalidate a plan built
  /// from it.  The default (0) means "live, mutable space" -- always
  /// revalidate.
  virtual uint64_t SnapshotEpoch() const { return 0; }
};

/// A provider backed by an in-memory map, keyed by bare relation name.
class MapProvider : public RelationProvider {
 public:
  /// Registers a relation under its own name.  Fails on duplicates.
  Status Add(const Relation& relation);

  Result<const Relation*> Resolve(const std::string& site,
                                  const std::string& relation) const override;

 private:
  std::map<std::string, Relation> relations_;
};

}  // namespace eve

#endif  // EVE_ALGEBRA_PROVIDER_H_
