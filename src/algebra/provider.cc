#include "algebra/provider.h"

namespace eve {

Status MapProvider::Add(const Relation& relation) {
  const auto [it, inserted] = relations_.emplace(relation.name(), relation);
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("relation " + relation.name() +
                                 " already registered");
  }
  return Status::OK();
}

Result<const Relation*> MapProvider::Resolve(const std::string& site,
                                             const std::string& relation) const {
  (void)site;  // MapProvider is site-agnostic.
  const auto it = relations_.find(relation);
  if (it == relations_.end()) {
    return Status::NotFound("relation " + relation + " not registered");
  }
  return &it->second;
}

}  // namespace eve
