// Set operators on the common subset of attributes (paper Def. 1-2 and
// Fig. 7).  Given two view extents V and Vi with overlapping interfaces,
// every comparison is performed after projecting both onto
// Attr(V) ∩ Attr(Vi) and removing duplicates.
//
// These operators power the *actual* (data-driven) extent-divergence
// computation, which complements the estimated one (misd/overlap_estimator).

#ifndef EVE_ALGEBRA_COMMON_SUBSET_H_
#define EVE_ALGEBRA_COMMON_SUBSET_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "storage/relation.h"

namespace eve {

/// Attribute names common to both schemas, in `a`'s order.
std::vector<std::string> CommonAttributes(const Relation& a, const Relation& b);

/// V^(Vi): projection of `a` onto the common attributes of `a` and `b`,
/// duplicates removed (paper Def. 1).
Result<Relation> ProjectToCommon(const Relation& a, const Relation& b);

/// The four Fig.-7 operators.  All fail if the relations share no
/// attributes.

/// V =~ Vi : equal on the common subset of attributes (paper Def. 2).
Result<bool> CommonSubsetEqual(const Relation& a, const Relation& b);

/// Vi ⊆~ V : every tuple of `a` (projected) appears in `b` (projected).
Result<bool> CommonSubsetContained(const Relation& a, const Relation& b);

/// V ∩~ Vi : tuples (on the common attributes) present in both.
Result<Relation> CommonSubsetIntersect(const Relation& a, const Relation& b);

/// V \~ Vi : tuples (on the common attributes) of `a` absent from `b`.
Result<Relation> CommonSubsetDifference(const Relation& a, const Relation& b);

/// Cardinality counters used by the quality model:
/// |V^(Vi)|, |Vi^(V)|, |V ∩~ Vi| in one pass.
struct CommonSubsetCounts {
  int64_t a_projected = 0;    ///< |a| projected to common attrs, distinct.
  int64_t b_projected = 0;    ///< |b| projected to common attrs, distinct.
  int64_t intersection = 0;   ///< |a ∩~ b|.
};
Result<CommonSubsetCounts> CountCommonSubset(const Relation& a,
                                             const Relation& b);

}  // namespace eve

#endif  // EVE_ALGEBRA_COMMON_SUBSET_H_
