#include "algebra/common_subset.h"

namespace eve {

std::vector<std::string> CommonAttributes(const Relation& a, const Relation& b) {
  std::vector<std::string> out;
  for (const Attribute& attr : a.schema().attributes()) {
    if (b.schema().Contains(attr.name)) out.push_back(attr.name);
  }
  return out;
}

namespace {

Status RequireCommon(const std::vector<std::string>& common) {
  if (common.empty()) {
    return Status::FailedPrecondition(
        "relations share no attributes; common-subset operators are undefined");
  }
  return Status::OK();
}

// Projects both relations onto the shared attribute list in a SINGLE order
// (a's schema order) so that tuples are positionally comparable even when
// the two schemas list the common attributes differently.
struct ProjectedPair {
  Relation a;
  Relation b;
};

Result<ProjectedPair> ProjectBoth(const Relation& a, const Relation& b) {
  const std::vector<std::string> common = CommonAttributes(a, b);
  EVE_RETURN_IF_ERROR(RequireCommon(common));
  EVE_ASSIGN_OR_RETURN(Relation pa, a.ProjectByName(common));
  EVE_ASSIGN_OR_RETURN(Relation pb, b.ProjectByName(common));
  return ProjectedPair{pa.Distinct(), pb.Distinct()};
}

}  // namespace

Result<Relation> ProjectToCommon(const Relation& a, const Relation& b) {
  const std::vector<std::string> common = CommonAttributes(a, b);
  EVE_RETURN_IF_ERROR(RequireCommon(common));
  EVE_ASSIGN_OR_RETURN(Relation projected, a.ProjectByName(common));
  return projected.Distinct();
}

Result<bool> CommonSubsetEqual(const Relation& a, const Relation& b) {
  EVE_ASSIGN_OR_RETURN(ProjectedPair p, ProjectBoth(a, b));
  return SetEquals(p.a, p.b);
}

Result<bool> CommonSubsetContained(const Relation& a, const Relation& b) {
  EVE_ASSIGN_OR_RETURN(ProjectedPair p, ProjectBoth(a, b));
  EVE_ASSIGN_OR_RETURN(Relation diff, SetDifference(p.a, p.b));
  return diff.empty();
}

Result<Relation> CommonSubsetIntersect(const Relation& a, const Relation& b) {
  EVE_ASSIGN_OR_RETURN(ProjectedPair p, ProjectBoth(a, b));
  return SetIntersect(p.a, p.b);
}

Result<Relation> CommonSubsetDifference(const Relation& a, const Relation& b) {
  EVE_ASSIGN_OR_RETURN(ProjectedPair p, ProjectBoth(a, b));
  return SetDifference(p.a, p.b);
}

Result<CommonSubsetCounts> CountCommonSubset(const Relation& a,
                                             const Relation& b) {
  EVE_ASSIGN_OR_RETURN(ProjectedPair p, ProjectBoth(a, b));
  EVE_ASSIGN_OR_RETURN(Relation inter, SetIntersect(p.a, p.b));
  CommonSubsetCounts counts;
  counts.a_projected = p.a.cardinality();
  counts.b_projected = p.b.cardinality();
  counts.intersection = inter.cardinality();
  return counts;
}

}  // namespace eve
