#include "algebra/executor.h"

#include <set>

#include "common/str_util.h"
#include "storage/hash_index.h"

namespace eve {

namespace {

// One FROM item resolved against the provider with its column offset in the
// concatenated join layout.
struct ResolvedFrom {
  const FromItem* item;
  const Relation* relation;
  int offset;  // First column of this relation in the joined tuple.
};

Result<std::vector<ResolvedFrom>> ResolveAll(const ViewDefinition& view,
                                             const RelationProvider& provider) {
  std::vector<ResolvedFrom> out;
  int offset = 0;
  for (const FromItem& f : view.from_items) {
    EVE_ASSIGN_OR_RETURN(const Relation* rel,
                         provider.Resolve(f.site, f.relation));
    out.push_back(ResolvedFrom{&f, rel, offset});
    offset += rel->schema().size();
  }
  return out;
}

Result<Binding> MakeBinding(const std::vector<ResolvedFrom>& resolved) {
  Binding binding;
  for (const ResolvedFrom& rf : resolved) {
    const Schema& schema = rf.relation->schema();
    for (int i = 0; i < schema.size(); ++i) {
      EVE_RETURN_IF_ERROR(binding.Register(
          RelAttr{rf.item->name(), schema.attribute(i).name}, rf.offset + i));
    }
  }
  return binding;
}

// Clauses that only reference FROM items [0..k] can be applied as soon as
// item k has been joined.
int LastReferencedFrom(const PrimitiveClause& clause,
                       const std::vector<ResolvedFrom>& resolved) {
  int last = -1;
  for (const RelAttr& a : clause.Attributes()) {
    for (size_t i = 0; i < resolved.size(); ++i) {
      if (resolved[i].item->name() == a.relation) {
        last = std::max(last, static_cast<int>(i));
      }
    }
  }
  return last;
}

// An equality clause usable as a hash-join key between the accumulated
// prefix (items < k) and item k.
struct JoinKey {
  int left_column;   // Column in the accumulated tuple.
  int right_column;  // Column within relation k (0-based inside relation).
};

}  // namespace

Result<Binding> MakeJoinBinding(const ViewDefinition& view,
                                const RelationProvider& provider) {
  EVE_ASSIGN_OR_RETURN(std::vector<ResolvedFrom> resolved,
                       ResolveAll(view, provider));
  return MakeBinding(resolved);
}

Result<Relation> ExecuteView(const ViewDefinition& view,
                             const RelationProvider& provider,
                             const ExecOptions& options) {
  EVE_RETURN_IF_ERROR(view.Validate());
  EVE_ASSIGN_OR_RETURN(std::vector<ResolvedFrom> resolved,
                       ResolveAll(view, provider));
  EVE_ASSIGN_OR_RETURN(Binding binding, MakeBinding(resolved));

  // Partition clauses by the join step at which they become evaluable.
  const int n = static_cast<int>(resolved.size());
  std::vector<std::vector<PrimitiveClause>> step_clauses(n);
  for (const ConditionItem& c : view.where) {
    const int last = LastReferencedFrom(c.clause, resolved);
    if (last < 0) {
      return Status::Internal("clause references no FROM item: " +
                              c.clause.ToString());
    }
    step_clauses[last].push_back(c.clause);
  }

  // Working set: joined tuples over FROM items [0..k].
  std::vector<Tuple> current;
  for (int k = 0; k < n; ++k) {
    const Relation& rel = *resolved[k].relation;
    EVE_ASSIGN_OR_RETURN(std::vector<BoundClause> bound,
                         BindAll(Conjunction(step_clauses[k]), binding));

    // Split this step's clauses into a hash-joinable equality (if any,
    // for k > 0) and residual predicates.
    std::optional<JoinKey> key;
    std::vector<BoundClause> residual;
    for (size_t ci = 0; ci < bound.size(); ++ci) {
      const BoundClause& bc = bound[ci];
      const int lo = resolved[k].offset;
      const int hi = lo + rel.schema().size();
      const bool lhs_in_k = bc.lhs_column >= lo && bc.lhs_column < hi;
      const bool rhs_is_col = bc.rhs_column >= 0;
      const bool rhs_in_k =
          rhs_is_col && bc.rhs_column >= lo && bc.rhs_column < hi;
      if (k > 0 && !key.has_value() && bc.op == CompOp::kEqual && rhs_is_col &&
          lhs_in_k != rhs_in_k) {
        key = lhs_in_k ? JoinKey{bc.rhs_column, bc.lhs_column - lo}
                       : JoinKey{bc.lhs_column, bc.rhs_column - lo};
      } else {
        residual.push_back(bc);
      }
    }

    std::vector<Tuple> next;
    if (k == 0) {
      // Base scan with local selection.
      for (const Tuple& t : rel.tuples()) {
        if (EvalAll(bound, t)) next.push_back(t);
      }
    } else if (key.has_value()) {
      HashIndex index(rel, key->right_column);
      for (const Tuple& acc : current) {
        for (int64_t row : index.Lookup(acc.at(key->left_column))) {
          Tuple joined = acc.Concat(rel.tuple(row));
          if (EvalAll(residual, joined)) next.push_back(std::move(joined));
        }
      }
    } else {
      // Nested-loop join (cross product + residual predicates).
      for (const Tuple& acc : current) {
        for (const Tuple& t : rel.tuples()) {
          Tuple joined = acc.Concat(t);
          if (EvalAll(residual, joined)) next.push_back(std::move(joined));
        }
      }
    }
    current = std::move(next);
    if (current.empty() && k + 1 < n) {
      // Still continue to validate bindings of later steps via BindAll above;
      // but no tuples will be produced.
    }
  }

  // Projection onto the SELECT list.
  std::vector<int> out_columns;
  std::vector<Attribute> out_attrs;
  for (const SelectItem& s : view.select_items) {
    EVE_ASSIGN_OR_RETURN(const int col, binding.Resolve(s.source));
    out_columns.push_back(col);
    // Find the source attribute to copy its type/size.
    const FromItem* f = view.FindFrom(s.source.relation);
    EVE_ASSIGN_OR_RETURN(const Relation* rel,
                         provider.Resolve(f->site, f->relation));
    const auto idx = rel->schema().IndexOf(s.source.attribute);
    if (!idx.has_value()) {
      return Status::NotFound("attribute " + s.source.ToString() +
                              " not in relation " + rel->name());
    }
    Attribute a = rel->schema().attribute(*idx);
    a.name = s.name();
    out_attrs.push_back(std::move(a));
  }

  Relation result(view.name, Schema(std::move(out_attrs)));
  for (const Tuple& t : current) {
    result.InsertUnchecked(t.Project(out_columns));
  }
  return options.distinct ? result.Distinct() : result;
}

}  // namespace eve
