#include "algebra/executor.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <numeric>
#include <optional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/str_util.h"
#include "expr/selectivity.h"
#include "storage/hash_index.h"

namespace eve {

namespace {

// One FROM item resolved against the provider with its column offset in the
// concatenated join layout.
struct ResolvedFrom {
  const FromItem* item;
  const Relation* relation;
  int offset;  // First column of this relation in the joined tuple.
};

Result<std::vector<ResolvedFrom>> ResolveAll(const ViewDefinition& view,
                                             const RelationProvider& provider) {
  std::vector<ResolvedFrom> out;
  int offset = 0;
  for (const FromItem& f : view.from_items) {
    EVE_ASSIGN_OR_RETURN(const Relation* rel,
                         provider.Resolve(f.site, f.relation));
    out.push_back(ResolvedFrom{&f, rel, offset});
    offset += rel->schema().size();
  }
  return out;
}

Result<Binding> MakeBinding(const std::vector<ResolvedFrom>& resolved) {
  Binding binding;
  for (const ResolvedFrom& rf : resolved) {
    const Schema& schema = rf.relation->schema();
    for (int i = 0; i < schema.size(); ++i) {
      EVE_RETURN_IF_ERROR(binding.Register(
          RelAttr{rf.item->name(), schema.attribute(i).name}, rf.offset + i));
    }
  }
  return binding;
}

// Global column -> owning FROM item, precomputed for O(1) lookups on the
// join hot path.
std::vector<int> OwnerTable(const std::vector<ResolvedFrom>& resolved) {
  std::vector<int> owner;
  for (size_t i = 0; i < resolved.size(); ++i) {
    owner.insert(owner.end(), resolved[i].relation->schema().size(),
                 static_cast<int>(i));
  }
  return owner;
}

// A bound cross-item WHERE clause annotated with the FROM items it
// references; applied at the first join step where all of them are joined.
struct AnnotatedClause {
  BoundClause bound;
  std::vector<int> items;  // Sorted, unique owner item indexes (size 2).
  bool applied = false;
};

// Greedy cost-ordered join selection: start from the smallest filtered
// relation, then repeatedly add the item with the smallest estimated
// intermediate result, preferring items connected to the joined prefix by
// an evaluable clause (equi-join selectivity estimated as 1/V(join column)
// through `estimator`).  Ties break toward FROM order, so plans are
// deterministic.
template <typename SelectivityEstimator>
std::vector<int> GreedyJoinOrder(const std::vector<ResolvedFrom>& resolved,
                                 const std::vector<int>& owner_of_col,
                                 const std::vector<AnnotatedClause>& cross,
                                 const std::vector<int64_t>& live,
                                 SelectivityEstimator&& estimator) {
  const int n = static_cast<int>(resolved.size());
  std::vector<int> order;
  std::vector<bool> joined(n, false);

  std::map<std::pair<int, int>, double> sel_cache;
  auto eq_sel = [&](int item, int local_col) {
    const auto key = std::make_pair(item, local_col);
    auto it = sel_cache.find(key);
    if (it == sel_cache.end()) {
      it = sel_cache.emplace(key, estimator(item, local_col)).first;
    }
    return it->second;
  };

  int first = 0;
  for (int k = 1; k < n; ++k) {
    if (live[k] < live[first]) first = k;
  }
  order.push_back(first);
  joined[first] = true;
  double est_rows = static_cast<double>(live[first]);

  while (static_cast<int>(order.size()) < n) {
    int best = -1;
    double best_cost = std::numeric_limits<double>::infinity();
    double best_est = 0.0;
    for (int cand = 0; cand < n; ++cand) {
      if (joined[cand]) continue;
      double sel = 1.0;
      bool connected = false;
      for (const AnnotatedClause& c : cross) {
        bool refs_cand = false;
        bool rest_joined = true;
        for (int item : c.items) {
          if (item == cand) {
            refs_cand = true;
          } else if (!joined[item]) {
            rest_joined = false;
          }
        }
        if (!refs_cand || !rest_joined) continue;
        connected = true;
        if (c.bound.op == CompOp::kEqual && c.bound.rhs_column >= 0) {
          const int cand_col = owner_of_col[c.bound.lhs_column] == cand
                                   ? c.bound.lhs_column
                                   : c.bound.rhs_column;
          sel = std::min(sel, eq_sel(cand, cand_col - resolved[cand].offset));
        } else {
          sel = std::min(sel, 0.5);  // Conservative theta-join guess.
        }
      }
      const double est = est_rows * static_cast<double>(live[cand]) * sel;
      // Cross products only when nothing connects; the penalty keeps any
      // connected item ahead of any unconnected one.
      const double cost = connected ? est : (est + 1.0) * 1e12;
      if (cost < best_cost) {
        best_cost = cost;
        best_est = est;
        best = cand;
      }
    }
    joined[best] = true;
    order.push_back(best);
    est_rows = std::max(1.0, best_est);
  }
  return order;
}

// An equality clause usable as a hash-join key between the accumulated
// prefix and the relation being joined (reference executor).
struct JoinKey {
  int left_column;   // Column in the accumulated tuple.
  int right_column;  // Column within relation k (0-based inside relation).
};

}  // namespace

Result<Binding> MakeJoinBinding(const ViewDefinition& view,
                                const RelationProvider& provider) {
  EVE_ASSIGN_OR_RETURN(std::vector<ResolvedFrom> resolved,
                       ResolveAll(view, provider));
  return MakeBinding(resolved);
}

Result<Relation> ExecuteView(const ViewDefinition& view,
                             const RelationProvider& provider,
                             const ExecOptions& options) {
  EVE_RETURN_IF_ERROR(view.Validate());
  EVE_ASSIGN_OR_RETURN(std::vector<ResolvedFrom> resolved,
                       ResolveAll(view, provider));
  EVE_ASSIGN_OR_RETURN(Binding binding, MakeBinding(resolved));
  const int n = static_cast<int>(resolved.size());
  const std::vector<int> owner_of_col = OwnerTable(resolved);

  // Bind every WHERE clause up front so reference errors surface regardless
  // of join order or early termination, splitting local (single-item)
  // selections from cross-item join predicates.
  std::vector<std::vector<BoundClause>> local(n);  // Columns rebased to item.
  std::vector<AnnotatedClause> cross;
  for (const ConditionItem& c : view.where) {
    EVE_ASSIGN_OR_RETURN(BoundClause bc, Bind(c.clause, binding));
    std::vector<int> items{owner_of_col[bc.lhs_column]};
    if (bc.rhs_column >= 0) items.push_back(owner_of_col[bc.rhs_column]);
    std::sort(items.begin(), items.end());
    items.erase(std::unique(items.begin(), items.end()), items.end());
    if (items.size() == 1) {
      const int k = items[0];
      BoundClause rebased = bc;
      rebased.lhs_column -= resolved[k].offset;
      if (rebased.rhs_column >= 0) rebased.rhs_column -= resolved[k].offset;
      local[k].push_back(std::move(rebased));
    } else {
      cross.push_back(AnnotatedClause{std::move(bc), std::move(items), false});
    }
  }

  // Selection pushdown: per-item filtered row-id lists plus a membership
  // mask for probing index lookups.  Relations without local predicates
  // keep empty lists/masks ("every row passes") so unfiltered base tables
  // cost nothing to prepare, regardless of cardinality.
  std::vector<std::vector<int64_t>> filtered(n);  // Empty when all pass.
  std::vector<std::vector<uint8_t>> passes(n);    // Empty when all pass.
  std::vector<int64_t> live(n);                   // Passing-row counts.
  for (int k = 0; k < n; ++k) {
    const Relation& rel = *resolved[k].relation;
    if (local[k].empty()) {
      live[k] = rel.cardinality();
      continue;
    }
    passes[k].assign(rel.cardinality(), 0);
    for (int64_t row = 0; row < rel.cardinality(); ++row) {
      if (EvalAll(local[k], rel.tuple(row))) {
        passes[k][row] = 1;
        filtered[k].push_back(row);
      }
    }
    live[k] = static_cast<int64_t>(filtered[k].size());
  }

  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  if (options.reorder_joins && n > 1) {
    // With the index cache on, distinct-count estimates come from the
    // cached per-column indexes (amortized across calls, and the join will
    // reuse the same index); otherwise measure over the filtered rows.
    auto estimator = [&](int item, int local_col) -> double {
      if (options.use_index_cache) {
        const int64_t keys =
            resolved[item].relation->Index(local_col).DistinctKeys();
        return keys > 0 ? 1.0 / static_cast<double>(keys) : 1.0;
      }
      return EstimateEqJoinSelectivity(
          *resolved[item].relation, local_col,
          local[item].empty() ? nullptr : &filtered[item]);
    };
    order = GreedyJoinOrder(resolved, owner_of_col, cross, live, estimator);
  }

  // Working set: flat vector of row-id combinations, `width` ids per combo,
  // combo position s holding the row of FROM item order[s].  Base tuples
  // are dereferenced only for predicate columns; nothing is materialized
  // until the final projection.
  std::vector<int> pos_of_item(n, -1);
  std::vector<int64_t> current;
  int width = 0;

  auto value_at = [&](const int64_t* combo, int col) -> const Value& {
    const int owner = owner_of_col[col];
    return resolved[owner].relation->tuple(combo[pos_of_item[owner]])
        .at(col - resolved[owner].offset);
  };

  for (int s = 0; s < n; ++s) {
    const int k = order[s];
    const Relation& rel = *resolved[k].relation;
    pos_of_item[k] = s;

    if (s == 0) {
      if (local[k].empty()) {
        current.resize(rel.cardinality());
        std::iota(current.begin(), current.end(), int64_t{0});
      } else {
        current = filtered[k];
      }
      width = 1;
      if (current.empty()) break;
      continue;
    }

    // Clauses that become evaluable once `k` joins the prefix.
    std::vector<AnnotatedClause*> applicable;
    for (AnnotatedClause& c : cross) {
      if (c.applied) continue;
      const bool ready = std::all_of(c.items.begin(), c.items.end(),
                                     [&](int i) { return pos_of_item[i] >= 0; });
      if (ready) {
        c.applied = true;
        applicable.push_back(&c);
      }
    }

    // Pick one equality clause as the hash-join key (prefix column vs a
    // column of `k`); the rest are residual predicates.
    const AnnotatedClause* key = nullptr;
    int key_left_global = -1;
    int key_right_local = -1;
    std::vector<const AnnotatedClause*> residual;
    for (const AnnotatedClause* c : applicable) {
      const bool lhs_in_k = owner_of_col[c->bound.lhs_column] == k;
      const bool rhs_is_col = c->bound.rhs_column >= 0;
      const bool rhs_in_k = rhs_is_col && owner_of_col[c->bound.rhs_column] == k;
      if (key == nullptr && c->bound.op == CompOp::kEqual && rhs_is_col &&
          lhs_in_k != rhs_in_k) {
        key = c;
        key_left_global = lhs_in_k ? c->bound.rhs_column : c->bound.lhs_column;
        key_right_local = (lhs_in_k ? c->bound.lhs_column : c->bound.rhs_column) -
                          resolved[k].offset;
      } else {
        residual.push_back(c);
      }
    }

    std::vector<int64_t> next;
    std::vector<int64_t> scratch(width + 1);
    auto emit = [&](const int64_t* prefix, int64_t row) {
      std::copy(prefix, prefix + width, scratch.begin());
      scratch[width] = row;
      for (const AnnotatedClause* c : residual) {
        const Value& lhs = value_at(scratch.data(), c->bound.lhs_column);
        const Value& rhs = c->bound.rhs_column >= 0
                               ? value_at(scratch.data(), c->bound.rhs_column)
                               : c->bound.rhs_value;
        if (!EvalCompOp(c->bound.op, lhs, rhs)) return;
      }
      next.insert(next.end(), scratch.begin(), scratch.end());
    };

    if (key != nullptr) {
      std::optional<HashIndex> scoped_index;
      const HashIndex* index;
      if (options.use_index_cache) {
        index = &rel.Index(key_right_local);
      } else {
        scoped_index.emplace(rel, key_right_local);
        index = &*scoped_index;
      }
      for (size_t base = 0; base < current.size(); base += width) {
        const int64_t* prefix = &current[base];
        for (int64_t row : index->Lookup(value_at(prefix, key_left_global))) {
          if (!passes[k].empty() && !passes[k][row]) continue;
          emit(prefix, row);
        }
      }
    } else {
      // Nested loop over the prefiltered rows (cross product + residuals).
      for (size_t base = 0; base < current.size(); base += width) {
        if (local[k].empty()) {
          for (int64_t row = 0; row < rel.cardinality(); ++row) {
            emit(&current[base], row);
          }
        } else {
          for (int64_t row : filtered[k]) emit(&current[base], row);
        }
      }
    }
    current = std::move(next);
    width += 1;
    if (current.empty()) break;  // Later joins cannot resurrect tuples.
  }

  // Projection onto the SELECT list, reusing the already-resolved FROM
  // vector and binding (no per-item provider lookups or schema scans).
  struct OutCol {
    int item;
    int local;
  };
  std::vector<OutCol> out_cols;
  std::vector<Attribute> out_attrs;
  for (const SelectItem& s : view.select_items) {
    EVE_ASSIGN_OR_RETURN(const int col, binding.Resolve(s.source));
    const int owner = owner_of_col[col];
    Attribute a =
        resolved[owner].relation->schema().attribute(col - resolved[owner].offset);
    a.name = s.name();
    out_attrs.push_back(std::move(a));
    out_cols.push_back(OutCol{owner, col - resolved[owner].offset});
  }

  // Materialize, fusing the distinct pass into the projection so duplicate
  // rows are never copied into the result.
  Relation result(view.name, Schema(std::move(out_attrs)));
  std::unordered_set<Tuple, TupleHash> seen;
  if (!current.empty() && width == n) {
    for (size_t base = 0; base < current.size(); base += n) {
      std::vector<Value> values;
      values.reserve(out_cols.size());
      for (const OutCol& oc : out_cols) {
        values.push_back(resolved[oc.item]
                             .relation->tuple(current[base + pos_of_item[oc.item]])
                             .at(oc.local));
      }
      Tuple t(std::move(values));
      if (options.distinct && !seen.insert(t).second) continue;
      result.InsertUnchecked(std::move(t));
    }
  }
  return result;
}

// The seed's executor, kept verbatim as the equivalence oracle and the
// benchmark baseline: fixed FROM-order left-deep joins, per-call index
// builds, and full materialization of every intermediate tuple.
Result<Relation> ExecuteViewReference(const ViewDefinition& view,
                                      const RelationProvider& provider,
                                      const ExecOptions& options) {
  EVE_RETURN_IF_ERROR(view.Validate());
  EVE_ASSIGN_OR_RETURN(std::vector<ResolvedFrom> resolved,
                       ResolveAll(view, provider));
  EVE_ASSIGN_OR_RETURN(Binding binding, MakeBinding(resolved));

  // Partition clauses by the join step at which they become evaluable.
  const int n = static_cast<int>(resolved.size());
  std::vector<std::vector<PrimitiveClause>> step_clauses(n);
  for (const ConditionItem& c : view.where) {
    int last = -1;
    for (const RelAttr& a : c.clause.Attributes()) {
      for (size_t i = 0; i < resolved.size(); ++i) {
        if (resolved[i].item->name() == a.relation) {
          last = std::max(last, static_cast<int>(i));
        }
      }
    }
    if (last < 0) {
      return Status::Internal("clause references no FROM item: " +
                              c.clause.ToString());
    }
    step_clauses[last].push_back(c.clause);
  }

  // Working set: joined tuples over FROM items [0..k].
  std::vector<Tuple> current;
  for (int k = 0; k < n; ++k) {
    const Relation& rel = *resolved[k].relation;
    EVE_ASSIGN_OR_RETURN(std::vector<BoundClause> bound,
                         BindAll(Conjunction(step_clauses[k]), binding));

    // Split this step's clauses into a hash-joinable equality (if any,
    // for k > 0) and residual predicates.
    std::optional<JoinKey> key;
    std::vector<BoundClause> residual;
    for (size_t ci = 0; ci < bound.size(); ++ci) {
      const BoundClause& bc = bound[ci];
      const int lo = resolved[k].offset;
      const int hi = lo + rel.schema().size();
      const bool lhs_in_k = bc.lhs_column >= lo && bc.lhs_column < hi;
      const bool rhs_is_col = bc.rhs_column >= 0;
      const bool rhs_in_k =
          rhs_is_col && bc.rhs_column >= lo && bc.rhs_column < hi;
      if (k > 0 && !key.has_value() && bc.op == CompOp::kEqual && rhs_is_col &&
          lhs_in_k != rhs_in_k) {
        key = lhs_in_k ? JoinKey{bc.rhs_column, bc.lhs_column - lo}
                       : JoinKey{bc.lhs_column, bc.rhs_column - lo};
      } else {
        residual.push_back(bc);
      }
    }

    std::vector<Tuple> next;
    if (k == 0) {
      // Base scan with local selection.
      for (const Tuple& t : rel.tuples()) {
        if (EvalAll(bound, t)) next.push_back(t);
      }
    } else if (key.has_value()) {
      HashIndex index(rel, key->right_column);
      for (const Tuple& acc : current) {
        for (int64_t row : index.Lookup(acc.at(key->left_column))) {
          Tuple joined = acc.Concat(rel.tuple(row));
          if (EvalAll(residual, joined)) next.push_back(std::move(joined));
        }
      }
    } else {
      // Nested-loop join (cross product + residual predicates).
      for (const Tuple& acc : current) {
        for (const Tuple& t : rel.tuples()) {
          Tuple joined = acc.Concat(t);
          if (EvalAll(residual, joined)) next.push_back(std::move(joined));
        }
      }
    }
    current = std::move(next);
  }

  // Projection onto the SELECT list.
  std::vector<int> out_columns;
  std::vector<Attribute> out_attrs;
  for (const SelectItem& s : view.select_items) {
    EVE_ASSIGN_OR_RETURN(const int col, binding.Resolve(s.source));
    out_columns.push_back(col);
    // Find the source attribute to copy its type/size.
    const FromItem* f = view.FindFrom(s.source.relation);
    EVE_ASSIGN_OR_RETURN(const Relation* rel,
                         provider.Resolve(f->site, f->relation));
    const auto idx = rel->schema().IndexOf(s.source.attribute);
    if (!idx.has_value()) {
      return Status::NotFound("attribute " + s.source.ToString() +
                              " not in relation " + rel->name());
    }
    Attribute a = rel->schema().attribute(*idx);
    a.name = s.name();
    out_attrs.push_back(std::move(a));
  }

  Relation result(view.name, Schema(std::move(out_attrs)));
  for (const Tuple& t : current) {
    result.InsertUnchecked(t.Project(out_columns));
  }
  return options.distinct ? result.Distinct() : result;
}

}  // namespace eve
