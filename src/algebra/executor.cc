#include "algebra/executor.h"

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <optional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "expr/comp_op.h"
#include "storage/hash_index.h"

namespace eve {

Result<Relation> ExecutePrepared(const PreparedView& plan) {
  const int n = static_cast<int>(plan.from.size());
  const std::vector<int>& owner_of_col = plan.owner_of_col;
  const std::vector<int>& pos_of_item = plan.pos_of_item;

  // Working set: flat vector of row-id combinations, `width` ids per combo,
  // combo position pos_of_item[k] holding the row of FROM item k.  Base
  // tuples are dereferenced only for predicate columns; nothing is
  // materialized until the final projection.
  std::vector<int64_t> current;
  int width = 0;

  auto value_at = [&](const int64_t* combo, int col) -> const Value& {
    const int owner = owner_of_col[col];
    return plan.from[owner].rel->tuple(combo[pos_of_item[owner]])
        .at(col - plan.from[owner].offset);
  };

  for (int s = 0; s < n; ++s) {
    const PlannedJoinStep& step = plan.steps[s];
    const int k = step.item;
    const Relation& rel = *plan.from[k].rel;

    if (s == 0) {
      if (plan.filtered[k].empty() && plan.passes[k].empty()) {
        current.resize(rel.cardinality());
        std::iota(current.begin(), current.end(), int64_t{0});
      } else {
        current = plan.filtered[k];
      }
      width = 1;
      if (current.empty()) break;
      continue;
    }

    std::vector<int64_t> next;
    std::vector<int64_t> scratch(width + 1);
    auto emit = [&](const int64_t* prefix, int64_t row) {
      std::copy(prefix, prefix + width, scratch.begin());
      scratch[width] = row;
      for (const BoundClause& c : step.residual) {
        const Value& lhs = value_at(scratch.data(), c.lhs_column);
        const Value& rhs = c.rhs_column >= 0
                               ? value_at(scratch.data(), c.rhs_column)
                               : c.rhs_value;
        if (!EvalCompOp(c.op, lhs, rhs)) return;
      }
      next.insert(next.end(), scratch.begin(), scratch.end());
    };

    if (step.key_right_local >= 0) {
      std::optional<HashIndex> scoped_index;
      const HashIndex* index;
      if (plan.options.use_index_cache) {
        index = &rel.Index(step.key_right_local);
      } else {
        scoped_index.emplace(rel, step.key_right_local);
        index = &*scoped_index;
      }
      for (size_t base = 0; base < current.size();
           base += static_cast<size_t>(width)) {
        const int64_t* prefix = &current[base];
        for (int64_t row :
             index->Lookup(value_at(prefix, step.key_left_global))) {
          if (!plan.passes[k].empty() && !plan.passes[k][row]) continue;
          emit(prefix, row);
        }
      }
    } else {
      // Nested loop over the prefiltered rows (cross product + residuals).
      const bool unfiltered =
          plan.filtered[k].empty() && plan.passes[k].empty();
      for (size_t base = 0; base < current.size();
           base += static_cast<size_t>(width)) {
        if (unfiltered) {
          for (int64_t row = 0; row < rel.cardinality(); ++row) {
            emit(&current[base], row);
          }
        } else {
          for (int64_t row : plan.filtered[k]) emit(&current[base], row);
        }
      }
    }
    current = std::move(next);
    width += 1;
    if (current.empty()) break;  // Later joins cannot resurrect tuples.
  }

  // Materialize, fusing the distinct pass into the projection so duplicate
  // rows are never copied into the result.
  Relation result(plan.view_name, plan.out_schema);
  std::unordered_set<Tuple, TupleHash> seen;
  if (!current.empty() && width == n) {
    for (size_t base = 0; base < current.size();
         base += static_cast<size_t>(n)) {
      std::vector<Value> values;
      values.reserve(plan.out_cols.size());
      for (const PreparedView::OutCol& oc : plan.out_cols) {
        values.push_back(plan.from[oc.item]
                             .rel->tuple(current[base + pos_of_item[oc.item]])
                             .at(oc.local));
      }
      Tuple t(std::move(values));
      if (plan.options.distinct && !seen.insert(t).second) continue;
      result.InsertUnchecked(std::move(t));
    }
  }
  return result;
}

Result<Relation> ExecuteView(const ViewDefinition& view,
                             const RelationProvider& provider,
                             const ExecOptions& options) {
  EVE_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedView> plan,
                       PrepareView(view, provider, options));
  return ExecutePrepared(*plan);
}

namespace {

// The reference executor is the seed's implementation kept frozen as an
// oracle, so it carries its own FROM resolution and binding construction
// instead of sharing the planner's.
struct ResolvedFrom {
  const FromItem* item;
  const Relation* relation;
  int offset;  // First column of this relation in the joined tuple.
};

Result<std::vector<ResolvedFrom>> ResolveAll(const ViewDefinition& view,
                                             const RelationProvider& provider) {
  std::vector<ResolvedFrom> out;
  int offset = 0;
  for (const FromItem& f : view.from_items) {
    EVE_ASSIGN_OR_RETURN(const Relation* rel,
                         provider.Resolve(f.site, f.relation));
    out.push_back(ResolvedFrom{&f, rel, offset});
    offset += rel->schema().size();
  }
  return out;
}

Result<Binding> MakeBinding(const std::vector<ResolvedFrom>& resolved) {
  Binding binding;
  for (const ResolvedFrom& rf : resolved) {
    const Schema& schema = rf.relation->schema();
    for (int i = 0; i < schema.size(); ++i) {
      EVE_RETURN_IF_ERROR(binding.Register(
          RelAttr{rf.item->name(), schema.attribute(i).name}, rf.offset + i));
    }
  }
  return binding;
}

// An equality clause usable as a hash-join key between the accumulated
// prefix and the relation being joined (reference executor).
struct JoinKey {
  int left_column;   // Column in the accumulated tuple.
  int right_column;  // Column within relation k (0-based inside relation).
};

}  // namespace

// The seed's executor, kept verbatim as the equivalence oracle and the
// benchmark baseline: fixed FROM-order left-deep joins, per-call index
// builds, and full materialization of every intermediate tuple.
Result<Relation> ExecuteViewReference(const ViewDefinition& view,
                                      const RelationProvider& provider,
                                      const ExecOptions& options) {
  EVE_RETURN_IF_ERROR(view.Validate());
  EVE_ASSIGN_OR_RETURN(std::vector<ResolvedFrom> resolved,
                       ResolveAll(view, provider));
  EVE_ASSIGN_OR_RETURN(Binding binding, MakeBinding(resolved));

  // Partition clauses by the join step at which they become evaluable.
  const int n = static_cast<int>(resolved.size());
  std::vector<std::vector<PrimitiveClause>> step_clauses(n);
  for (const ConditionItem& c : view.where) {
    int last = -1;
    for (const RelAttr& a : c.clause.Attributes()) {
      for (size_t i = 0; i < resolved.size(); ++i) {
        if (resolved[i].item->name() == a.relation) {
          last = std::max(last, static_cast<int>(i));
        }
      }
    }
    if (last < 0) {
      return Status::Internal("clause references no FROM item: " +
                              c.clause.ToString());
    }
    step_clauses[last].push_back(c.clause);
  }

  // Working set: joined tuples over FROM items [0..k].
  std::vector<Tuple> current;
  for (int k = 0; k < n; ++k) {
    const Relation& rel = *resolved[k].relation;
    EVE_ASSIGN_OR_RETURN(std::vector<BoundClause> bound,
                         BindAll(Conjunction(step_clauses[k]), binding));

    // Split this step's clauses into a hash-joinable equality (if any,
    // for k > 0) and residual predicates.
    std::optional<JoinKey> key;
    std::vector<BoundClause> residual;
    for (size_t ci = 0; ci < bound.size(); ++ci) {
      const BoundClause& bc = bound[ci];
      const int lo = resolved[k].offset;
      const int hi = lo + rel.schema().size();
      const bool lhs_in_k = bc.lhs_column >= lo && bc.lhs_column < hi;
      const bool rhs_is_col = bc.rhs_column >= 0;
      const bool rhs_in_k =
          rhs_is_col && bc.rhs_column >= lo && bc.rhs_column < hi;
      if (k > 0 && !key.has_value() && bc.op == CompOp::kEqual && rhs_is_col &&
          lhs_in_k != rhs_in_k) {
        key = lhs_in_k ? JoinKey{bc.rhs_column, bc.lhs_column - lo}
                       : JoinKey{bc.lhs_column, bc.rhs_column - lo};
      } else {
        residual.push_back(bc);
      }
    }

    std::vector<Tuple> next;
    if (k == 0) {
      // Base scan with local selection.
      for (const Tuple& t : rel.tuples()) {
        if (EvalAll(bound, t)) next.push_back(t);
      }
    } else if (key.has_value()) {
      HashIndex index(rel, key->right_column);
      for (const Tuple& acc : current) {
        for (int64_t row : index.Lookup(acc.at(key->left_column))) {
          Tuple joined = acc.Concat(rel.tuple(row));
          if (EvalAll(residual, joined)) next.push_back(std::move(joined));
        }
      }
    } else {
      // Nested-loop join (cross product + residual predicates).
      for (const Tuple& acc : current) {
        for (const Tuple& t : rel.tuples()) {
          Tuple joined = acc.Concat(t);
          if (EvalAll(residual, joined)) next.push_back(std::move(joined));
        }
      }
    }
    current = std::move(next);
  }

  // Projection onto the SELECT list.
  std::vector<int> out_columns;
  std::vector<Attribute> out_attrs;
  for (const SelectItem& s : view.select_items) {
    EVE_ASSIGN_OR_RETURN(const int col, binding.Resolve(s.source));
    out_columns.push_back(col);
    // Find the source attribute to copy its type/size.
    const FromItem* f = view.FindFrom(s.source.relation);
    EVE_ASSIGN_OR_RETURN(const Relation* rel,
                         provider.Resolve(f->site, f->relation));
    const auto idx = rel->schema().IndexOf(s.source.attribute);
    if (!idx.has_value()) {
      return Status::NotFound("attribute " + s.source.ToString() +
                              " not in relation " + rel->name());
    }
    Attribute a = rel->schema().attribute(*idx);
    a.name = s.name();
    out_attrs.push_back(std::move(a));
  }

  Relation result(view.name, Schema(std::move(out_attrs)));
  for (const Tuple& t : current) {
    result.InsertUnchecked(t.Project(out_columns));
  }
  return options.distinct ? result.Distinct() : result;
}

}  // namespace eve
