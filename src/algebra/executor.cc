#include "algebra/executor.h"

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <optional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "expr/comp_op.h"
#include "storage/column_kernel.h"
#include "storage/hash_index.h"
#include "storage/row_dedup.h"

namespace eve {

Result<Relation> ExecutePrepared(const PreparedView& plan,
                                 const ExecContext& ctx) {
  ExecGovernor gov(ctx);
  const int n = static_cast<int>(plan.from.size());
  const std::vector<int>& pos_of_item = plan.pos_of_item;

  // Struct-of-arrays working set (see JoinWorkingSet): one row-id column
  // per joined FROM item.  Base tuples are dereferenced only for predicate
  // columns; nothing is materialized until the final projection.
  JoinWorkingSet ws;
  ws.columns.reserve(n);

  // Per-step candidate buffers: candidate i is the pair (parents[i] =
  // combo index in the current working set, rows[i] = row id of the
  // step's relation).  `parents` is thread-local so its capacity (sized
  // from index statistics below) stays warm across executions -- repeated
  // sweep queries neither re-allocate it nor bounce a large buffer off
  // the allocator's mmap threshold.  `rows` stays function-local: it is
  // moved into the working set as the step's column, so a persistent
  // buffer could never keep its capacity anyway.
  static thread_local std::vector<int64_t> parents;
  std::vector<int64_t> rows;

  for (int s = 0; s < n; ++s) {
    const PlannedJoinStep& step = plan.steps[s];
    const int k = step.item;
    const Relation& rel = *plan.from[k].rel;

    if (s == 0) {
      std::vector<int64_t> driving;
      if (plan.filtered[k].empty() && plan.passes[k].empty()) {
        driving.resize(rel.cardinality());
        std::iota(driving.begin(), driving.end(), int64_t{0});
      } else {
        driving = plan.filtered[k];
      }
      ws.combos = driving.size();
      ws.columns.push_back(std::move(driving));
      EVE_RETURN_IF_ERROR(gov.Charge(static_cast<int64_t>(ws.combos)));
      if (ws.combos == 0) break;
      continue;
    }

    EVE_FAULT_POINT("executor.probe");
    parents.clear();
    rows.clear();

    if (step.key_right_local >= 0) {
      std::optional<HashIndex> scoped_index;
      const HashIndex* index;
      if (step.index != nullptr) {
        // Plan-captured index (plan/planner.cc): zero locks per execution.
        index = step.index.get();
      } else if (plan.options.use_index_cache) {
        index = &rel.Index(step.key_right_local);
      } else {
        scoped_index.emplace(rel, step.key_right_local);
        index = &*scoped_index;
      }
      // Size the candidate buffers from index statistics (expected fanout =
      // |R| / V(key)), so high-fanout joins append without growth
      // reallocations.  The estimate assumes every probe key matches, so
      // it is bounded -- relatively (16x the probe count) and absolutely
      // (8 MB per buffer) -- to keep selective joins from speculatively
      // allocating far beyond their real output and pinning it in the
      // thread-local buffer.
      const int64_t keys = index->DistinctKeys();
      if (keys > 0) {
        const size_t expected =
            static_cast<size_t>(static_cast<double>(ws.combos) *
                                static_cast<double>(rel.cardinality()) /
                                static_cast<double>(keys)) +
            ws.combos;
        const size_t bounded = std::min(
            {expected, ws.combos * 16 + 1024, size_t{1} << 20});
        parents.reserve(bounded);
        rows.reserve(bounded);
      }
      // Batch probe: the key source is one contiguous column segment of one
      // relation addressed through one row-id column, so everything
      // loop-invariant is hoisted and the scan touches memory sequentially.
      const ColumnSegment& key_vals =
          plan.from[step.key_left_item].rel->Segment(step.key_left_local);
      const std::vector<int64_t>& key_col =
          ws.columns[pos_of_item[step.key_left_item]];
      const std::vector<uint8_t>& passes = plan.passes[k];
      // The governed variant charges each probed combo plus its emitted
      // candidates, so a pathological fan-out trips the budget/deadline
      // mid-probe instead of after materializing the whole cross product.
      const bool governed = gov.active();
      size_t charged = 0;
      for (size_t i = 0; i < ws.combos; ++i) {
        const Value key = key_vals.ValueAt(key_col[i]);
        for (int64_t row : index->Lookup(key)) {
          if (!passes.empty() && !passes[row]) continue;
          parents.push_back(static_cast<int64_t>(i));
          rows.push_back(row);
        }
        if (governed) {
          EVE_RETURN_IF_ERROR(
              gov.Charge(static_cast<int64_t>(rows.size() - charged) + 1));
          charged = rows.size();
        }
      }
    } else {
      // Nested loop over the prefiltered rows (cross product + residuals).
      const bool unfiltered =
          plan.filtered[k].empty() && plan.passes[k].empty();
      const bool governed = gov.active();
      size_t charged = 0;
      for (size_t i = 0; i < ws.combos; ++i) {
        if (unfiltered) {
          for (int64_t row = 0; row < rel.cardinality(); ++row) {
            parents.push_back(static_cast<int64_t>(i));
            rows.push_back(row);
          }
        } else {
          for (int64_t row : plan.filtered[k]) {
            parents.push_back(static_cast<int64_t>(i));
            rows.push_back(row);
          }
        }
        if (governed) {
          EVE_RETURN_IF_ERROR(
              gov.Charge(static_cast<int64_t>(rows.size() - charged) + 1));
          charged = rows.size();
        }
      }
    }

    // Residual predicates filter the candidate pairs clause by clause
    // through a byte mask: each clause is one kernel pass over contiguous
    // row-id arrays against contiguous value columns (the operator dispatch
    // and column pointers hoisted out of the candidate loop), then the
    // survivors compact once.
    if (!step.residual.empty() && !parents.empty()) {
      static thread_local std::vector<uint8_t> res_mask;
      static thread_local std::vector<std::vector<int64_t>> side_buffers;
      const size_t m = parents.size();
      // One work unit per (candidate, clause) kernel evaluation.
      EVE_RETURN_IF_ERROR(
          gov.Charge(static_cast<int64_t>(m * step.residual.size())));
      res_mask.assign(m, 1);
      // Row ids of `item` per candidate: the step's own rows directly, or
      // the item's working-set column gathered through the parent ids.
      // Gathers are memoized per item for the duration of this step, so
      // several clauses over one item (or one clause comparing two of its
      // columns) pay a single O(m) pass.
      std::vector<std::pair<int, const int64_t*>> gathered;
      const auto side_rows = [&](int item) -> const int64_t* {
        if (item == k) return rows.data();
        for (const auto& [done, ptr] : gathered) {
          if (done == item) return ptr;
        }
        if (side_buffers.size() <= gathered.size()) side_buffers.emplace_back();
        std::vector<int64_t>& scratch = side_buffers[gathered.size()];
        const std::vector<int64_t>& col = ws.columns[pos_of_item[item]];
        scratch.resize(m);
        for (size_t i = 0; i < m; ++i) scratch[i] = col[parents[i]];
        gathered.emplace_back(item, scratch.data());
        return scratch.data();
      };
      for (const PlannedResidual& c : step.residual) {
        const Relation& lhs_rel = *plan.from[c.lhs_item].rel;
        const int64_t* lrows = side_rows(c.lhs_item);
        if (c.rhs_item >= 0) {
          const Relation& rhs_rel = *plan.from[c.rhs_item].rel;
          AndCompareGather(c.op, lhs_rel.Segment(c.lhs_local), lrows,
                           &rhs_rel.Segment(c.rhs_local),
                           side_rows(c.rhs_item),
                           /*rhs_const=*/nullptr, static_cast<int64_t>(m),
                           res_mask.data());
        } else {
          AndCompareGather(c.op, lhs_rel.Segment(c.lhs_local), lrows,
                           /*rcol=*/nullptr, /*rrows=*/nullptr, &c.rhs_value,
                           static_cast<int64_t>(m), res_mask.data());
        }
      }
      size_t kept = 0;
      for (size_t i = 0; i < m; ++i) {
        if (!res_mask[i]) continue;
        parents[kept] = parents[i];
        rows[kept] = rows[i];
        ++kept;
      }
      parents.resize(kept);
      rows.resize(kept);
    }

    // Gather the surviving parents through every existing column -- one
    // sequential batch copy per column instead of a scratch copy per
    // candidate -- then append the new item's rows as its own column.
    // Double-buffered: the gather target is the recycled scratch buffer,
    // and the swapped-out column becomes the scratch for the next gather.
    EVE_FAULT_POINT("executor.gather");
    EVE_RETURN_IF_ERROR(gov.Charge(
        static_cast<int64_t>(parents.size() * ws.columns.size())));
    if (ctx.limited()) {
      // The step's working set: one int64 per (column, candidate).
      EVE_RETURN_IF_ERROR(ctx.ConsumeMemory(static_cast<int64_t>(
          parents.size() * (ws.columns.size() + 1) * sizeof(int64_t))));
    }
    for (std::vector<int64_t>& column : ws.columns) {
      ws.scratch.clear();
      ws.scratch.reserve(parents.size());
      for (const int64_t p : parents) ws.scratch.push_back(column[p]);
      std::swap(column, ws.scratch);
    }
    ws.columns.push_back(std::move(rows));
    ws.combos = parents.size();
    if (ws.combos == 0) break;  // Later joins cannot resurrect tuples.
  }

  // Materialize column by column.  Each output column is one contiguous
  // gather from its base relation's value column through the row-id column;
  // no Tuple is ever constructed.  The distinct pass dedups combo ids
  // first (hashing and equality run against the base columns), so only
  // surviving combos are gathered at all.
  EVE_RETURN_IF_ERROR(gov.Flush());  // Charge the tail before materializing.
  if (ws.combos == 0 || static_cast<int>(ws.columns.size()) != n) {
    return Relation(plan.view_name, plan.out_schema);
  }
  EVE_FAULT_POINT("executor.materialize");
  struct OutSrc {
    const ColumnSegment* col;           ///< Base relation's column segment.
    const std::vector<int64_t>* rows;   ///< Its row-id working-set column.
  };
  std::vector<OutSrc> src;
  src.reserve(plan.out_cols.size());
  for (const PreparedView::OutCol& oc : plan.out_cols) {
    src.push_back(OutSrc{&plan.from[oc.item].rel->Segment(oc.local),
                         &ws.columns[pos_of_item[oc.item]]});
  }
  const auto value_of = [&](const OutSrc& s, int64_t combo) -> Value {
    return s.col->ValueAt((*s.rows)[combo]);
  };

  // Output cells: one gathered Value per (output column, combo).
  EVE_RETURN_IF_ERROR(
      gov.Charge(static_cast<int64_t>(ws.combos * src.size())));
  EVE_RETURN_IF_ERROR(gov.Flush());
  if (ctx.limited()) {
    EVE_RETURN_IF_ERROR(ctx.ConsumeMemory(
        static_cast<int64_t>(ws.combos * src.size() * sizeof(Value))));
  }

  if (!plan.options.distinct) {
    // Every combo survives: each output column is one segment gather, so a
    // packed source column materializes as a packed output column.
    std::vector<ColumnSegment> out_columns(src.size());
    for (size_t c = 0; c < src.size(); ++c) {
      out_columns[c].AppendGathered(*src[c].col, src[c].rows->data(),
                                    ws.combos);
    }
    return Relation::FromSegments(plan.view_name, plan.out_schema,
                                  std::move(out_columns));
  }

  std::vector<int64_t> keep;  // Surviving combo ids, in combo order.
  {
    // Per-combo output hash, one gather-and-mix pass per output column
    // (matches Tuple::Hash of the projected row).
    std::vector<size_t> hashes(ws.combos, kTupleHashBasis);
    for (const OutSrc& s : src) {
      MixHashColumnGather(*s.col, s.rows->data(),
                          static_cast<int64_t>(ws.combos), hashes.data());
    }
    RowDedupTable seen(ws.combos);
    for (size_t i = 0; i < ws.combos; ++i) {
      const int64_t combo = static_cast<int64_t>(i);
      const int64_t dup = seen.InsertIfAbsent(hashes[i], combo, [&](int64_t j) {
        for (const OutSrc& s : src) {
          if (!(value_of(s, j) == value_of(s, combo))) return false;
        }
        return true;
      });
      if (dup < 0) keep.push_back(combo);
    }
  }

  std::vector<ColumnSegment> out_columns(src.size());
  std::vector<int64_t> gather_rows(keep.size());
  for (size_t c = 0; c < src.size(); ++c) {
    const std::vector<int64_t>& combo_rows = *src[c].rows;
    for (size_t i = 0; i < keep.size(); ++i) {
      gather_rows[i] = combo_rows[static_cast<size_t>(keep[i])];
    }
    out_columns[c].AppendGathered(*src[c].col, gather_rows.data(),
                                  keep.size());
  }
  return Relation::FromSegments(plan.view_name, plan.out_schema,
                                std::move(out_columns));
}

Result<Relation> ExecuteView(const ViewDefinition& view,
                             const RelationProvider& provider,
                             const ExecOptions& options,
                             const ExecContext& ctx) {
  EVE_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedView> plan,
                       PrepareView(view, provider, options, ctx));
  return ExecutePrepared(*plan, ctx);
}

namespace {

// The reference executor is the seed's implementation kept frozen as an
// oracle, so it carries its own FROM resolution and binding construction
// instead of sharing the planner's.
struct ResolvedFrom {
  const FromItem* item;
  const Relation* relation;
  int offset;  // First column of this relation in the joined tuple.
};

Result<std::vector<ResolvedFrom>> ResolveAll(const ViewDefinition& view,
                                             const RelationProvider& provider) {
  std::vector<ResolvedFrom> out;
  int offset = 0;
  for (const FromItem& f : view.from_items) {
    EVE_ASSIGN_OR_RETURN(const Relation* rel,
                         provider.Resolve(f.site, f.relation));
    out.push_back(ResolvedFrom{&f, rel, offset});
    offset += rel->schema().size();
  }
  return out;
}

Result<Binding> MakeBinding(const std::vector<ResolvedFrom>& resolved) {
  Binding binding;
  for (const ResolvedFrom& rf : resolved) {
    const Schema& schema = rf.relation->schema();
    for (int i = 0; i < schema.size(); ++i) {
      EVE_RETURN_IF_ERROR(binding.Register(
          RelAttr{rf.item->name(), schema.attribute(i).name}, rf.offset + i));
    }
  }
  return binding;
}

// An equality clause usable as a hash-join key between the accumulated
// prefix and the relation being joined (reference executor).
struct JoinKey {
  int left_column;   // Column in the accumulated tuple.
  int right_column;  // Column within relation k (0-based inside relation).
};

}  // namespace

// The seed's executor, kept verbatim as the equivalence oracle and the
// benchmark baseline: fixed FROM-order left-deep joins, per-call index
// builds, and full materialization of every intermediate tuple.
Result<Relation> ExecuteViewReference(const ViewDefinition& view,
                                      const RelationProvider& provider,
                                      const ExecOptions& options,
                                      const ExecContext& ctx) {
  EVE_FAULT_POINT("executor.reference");
  ExecGovernor gov(ctx);
  EVE_RETURN_IF_ERROR(view.Validate());
  EVE_ASSIGN_OR_RETURN(std::vector<ResolvedFrom> resolved,
                       ResolveAll(view, provider));
  EVE_ASSIGN_OR_RETURN(Binding binding, MakeBinding(resolved));

  // Partition clauses by the join step at which they become evaluable.
  const int n = static_cast<int>(resolved.size());
  std::vector<std::vector<PrimitiveClause>> step_clauses(n);
  for (const ConditionItem& c : view.where) {
    int last = -1;
    for (const RelAttr& a : c.clause.Attributes()) {
      for (size_t i = 0; i < resolved.size(); ++i) {
        if (resolved[i].item->name() == a.relation) {
          last = std::max(last, static_cast<int>(i));
        }
      }
    }
    if (last < 0) {
      return Status::Internal("clause references no FROM item: " +
                              c.clause.ToString());
    }
    step_clauses[last].push_back(c.clause);
  }

  // Working set: joined tuples over FROM items [0..k].
  std::vector<Tuple> current;
  for (int k = 0; k < n; ++k) {
    const Relation& rel = *resolved[k].relation;
    EVE_ASSIGN_OR_RETURN(std::vector<BoundClause> bound,
                         BindAll(Conjunction(step_clauses[k]), binding));

    // Split this step's clauses into a hash-joinable equality (if any,
    // for k > 0) and residual predicates.
    std::optional<JoinKey> key;
    std::vector<BoundClause> residual;
    for (size_t ci = 0; ci < bound.size(); ++ci) {
      const BoundClause& bc = bound[ci];
      const int lo = resolved[k].offset;
      const int hi = lo + rel.schema().size();
      const bool lhs_in_k = bc.lhs_column >= lo && bc.lhs_column < hi;
      const bool rhs_is_col = bc.rhs_column >= 0;
      const bool rhs_in_k =
          rhs_is_col && bc.rhs_column >= lo && bc.rhs_column < hi;
      if (k > 0 && !key.has_value() && bc.op == CompOp::kEqual && rhs_is_col &&
          lhs_in_k != rhs_in_k) {
        key = lhs_in_k ? JoinKey{bc.rhs_column, bc.lhs_column - lo}
                       : JoinKey{bc.lhs_column, bc.rhs_column - lo};
      } else {
        residual.push_back(bc);
      }
    }

    std::vector<Tuple> next;
    if (k == 0) {
      // Base scan with local selection.
      for (int64_t row = 0; row < rel.cardinality(); ++row) {
        EVE_RETURN_IF_ERROR(gov.Charge());
        Tuple t = rel.TupleAt(row);
        if (EvalAll(bound, t)) next.push_back(std::move(t));
      }
    } else if (key.has_value()) {
      HashIndex index(rel, key->right_column);
      for (const Tuple& acc : current) {
        for (int64_t row : index.Lookup(acc.at(key->left_column))) {
          EVE_RETURN_IF_ERROR(gov.Charge());
          Tuple joined = rel.ConcatRow(acc, row);
          if (EvalAll(residual, joined)) next.push_back(std::move(joined));
        }
      }
    } else {
      // Nested-loop join (cross product + residual predicates).
      for (const Tuple& acc : current) {
        for (int64_t row = 0; row < rel.cardinality(); ++row) {
          EVE_RETURN_IF_ERROR(gov.Charge());
          Tuple joined = rel.ConcatRow(acc, row);
          if (EvalAll(residual, joined)) next.push_back(std::move(joined));
        }
      }
    }
    current = std::move(next);
  }
  // Charge the sub-stride tail so a small input still honors its
  // deadline/budget before results materialize.
  EVE_RETURN_IF_ERROR(gov.Flush());

  // Projection onto the SELECT list.
  std::vector<int> out_columns;
  std::vector<Attribute> out_attrs;
  for (const SelectItem& s : view.select_items) {
    EVE_ASSIGN_OR_RETURN(const int col, binding.Resolve(s.source));
    out_columns.push_back(col);
    // Find the source attribute to copy its type/size.
    const FromItem* f = view.FindFrom(s.source.relation);
    EVE_ASSIGN_OR_RETURN(const Relation* rel,
                         provider.Resolve(f->site, f->relation));
    const auto idx = rel->schema().IndexOf(s.source.attribute);
    if (!idx.has_value()) {
      return Status::NotFound("attribute " + s.source.ToString() +
                              " not in relation " + rel->name());
    }
    Attribute a = rel->schema().attribute(*idx);
    a.name = s.name();
    out_attrs.push_back(std::move(a));
  }

  Relation result(view.name, Schema(std::move(out_attrs)));
  for (const Tuple& t : current) {
    result.InsertUnchecked(t.Project(out_columns));
  }
  return options.distinct ? result.Distinct() : result;
}

}  // namespace eve
