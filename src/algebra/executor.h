// Executor: evaluates an E-SQL view definition over an information space,
// producing the view extent.
//
// Plan shape: resolve each FROM relation, push its local selection down to a
// prefiltered row-id set, pick a greedy cost-ordered join order (driven by
// filtered cardinalities and equi-join selectivity estimates), then join
// over row-id vectors against the base relations (hash join on equality
// clauses through per-Relation cached indexes, nested-loop otherwise), and
// materialize tuples only for the final projection.  Data volumes in this
// library are experiment-scale, but exp1-exp5 replay thousands of
// synchronize+execute rounds, so the hot path avoids per-step tuple
// materialization entirely.

#ifndef EVE_ALGEBRA_EXECUTOR_H_
#define EVE_ALGEBRA_EXECUTOR_H_

#include "algebra/provider.h"
#include "common/result.h"
#include "esql/ast.h"
#include "expr/eval.h"
#include "storage/relation.h"

namespace eve {

/// Execution options.
struct ExecOptions {
  /// Deduplicate the result (set semantics).  The paper's extent
  /// comparisons assume duplicates are removed (§5.3).
  bool distinct = true;
  /// Greedy cost-ordered join selection (smallest estimated intermediate
  /// first).  Off: join in FROM order, as the reference executor does.
  bool reorder_joins = true;
  /// Reuse per-Relation cached hash indexes for equi joins instead of
  /// rebuilding an index on every call.
  bool use_index_cache = true;
};

/// Evaluates `view` against `provider`; the result relation's schema is the
/// view interface (output names, source attribute types).  Result tuple
/// *sets* are independent of the options; only row order may differ.
Result<Relation> ExecuteView(const ViewDefinition& view,
                             const RelationProvider& provider,
                             const ExecOptions& options = {});

/// The pre-optimization reference executor: fixed FROM-order left-deep
/// joins materializing every intermediate tuple.  Kept as the equivalence
/// oracle for tests and as the benchmark baseline.
Result<Relation> ExecuteViewReference(const ViewDefinition& view,
                                      const RelationProvider& provider,
                                      const ExecOptions& options = {});

/// Builds the Binding that maps "fromName.attr" references to columns of
/// the concatenated tuple layout of `view`'s FROM items, in FROM order.
/// Exposed for the maintenance simulator, which evaluates partial joins.
Result<Binding> MakeJoinBinding(const ViewDefinition& view,
                                const RelationProvider& provider);

}  // namespace eve

#endif  // EVE_ALGEBRA_EXECUTOR_H_
