// Executor: evaluates an E-SQL view definition over an information space,
// producing the view extent.
//
// Plan shape: scan each FROM relation, apply its local selection, then join
// left-to-right (hash join on equality clauses, nested-loop otherwise),
// finally project onto the SELECT list.  Data volumes in this library are
// experiment-scale, so the planner is deliberately simple; the hash-join
// fast path keeps multi-thousand-tuple joins cheap.

#ifndef EVE_ALGEBRA_EXECUTOR_H_
#define EVE_ALGEBRA_EXECUTOR_H_

#include "algebra/provider.h"
#include "common/result.h"
#include "esql/ast.h"
#include "expr/eval.h"
#include "storage/relation.h"

namespace eve {

/// Execution options.
struct ExecOptions {
  /// Deduplicate the result (set semantics).  The paper's extent
  /// comparisons assume duplicates are removed (§5.3).
  bool distinct = true;
};

/// Evaluates `view` against `provider`; the result relation's schema is the
/// view interface (output names, source attribute types).
Result<Relation> ExecuteView(const ViewDefinition& view,
                             const RelationProvider& provider,
                             const ExecOptions& options = {});

/// Builds the Binding that maps "fromName.attr" references to columns of
/// the concatenated tuple layout of `view`'s FROM items, in FROM order.
/// Exposed for the maintenance simulator, which evaluates partial joins.
Result<Binding> MakeJoinBinding(const ViewDefinition& view,
                                const RelationProvider& provider);

}  // namespace eve

#endif  // EVE_ALGEBRA_EXECUTOR_H_
