// Executor: evaluates an E-SQL view definition over an information space,
// producing the view extent.
//
// Since the plan/execute split, this header holds only the execution half:
// ExecutePrepared replays a PreparedView (resolved FROM items, bound
// clauses, pushdown sets, cost-ordered join order -- see plan/planner.h),
// joining over row-id vectors against the base relations (hash join on
// equality clauses through per-Relation cached indexes, nested-loop
// otherwise) and materializing tuples only for the final projection.
// ExecuteView is the one-shot convenience wrapper (prepare + execute);
// replay loops should prepare once -- directly or through a PlanCache --
// and execute per round.
//
// ExecutePrepared is const over the plan and the relations (per-Relation
// caches are internally synchronized), so one plan may be executed from
// many threads concurrently as long as nothing mutates the base data.

#ifndef EVE_ALGEBRA_EXECUTOR_H_
#define EVE_ALGEBRA_EXECUTOR_H_

#include "algebra/provider.h"
#include "common/exec_context.h"
#include "common/result.h"
#include "esql/ast.h"
#include "expr/eval.h"
#include "plan/planner.h"
#include "plan/prepared_view.h"
#include "storage/relation.h"

namespace eve {

/// Executes a prepared plan (see plan/planner.h).  The caller is
/// responsible for plan freshness: a plan over mutated relations must be
/// re-prepared first (PreparedView::Validate, or use PlanCache which
/// revalidates automatically).  Result tuple *sets* are independent of the
/// plan's options; only row order may differ.
///
/// Governance: a limited `ctx` bounds the execution -- row-level work
/// (combos scanned, candidates emitted, residual evaluations, gathers) is
/// charged against the row budget with amortized deadline/cancellation
/// checks, and working-set/materialization footprints are charged against
/// the memory budget.  Violations surface as
/// DeadlineExceeded/Cancelled/ResourceExhausted; the default unlimited
/// context adds no per-row work.
Result<Relation> ExecutePrepared(
    const PreparedView& plan,
    const ExecContext& ctx = ExecContext::Unlimited());

/// Evaluates `view` against `provider`; the result relation's schema is the
/// view interface (output names, source attribute types).  Equivalent to
/// PrepareView + ExecutePrepared (both governed by `ctx`).
Result<Relation> ExecuteView(const ViewDefinition& view,
                             const RelationProvider& provider,
                             const ExecOptions& options = {},
                             const ExecContext& ctx = ExecContext::Unlimited());

/// The pre-optimization reference executor: fixed FROM-order left-deep
/// joins materializing every intermediate tuple.  Kept as the equivalence
/// oracle for tests and as the benchmark baseline.  Governed per scanned /
/// joined tuple.
Result<Relation> ExecuteViewReference(
    const ViewDefinition& view, const RelationProvider& provider,
    const ExecOptions& options = {},
    const ExecContext& ctx = ExecContext::Unlimited());

}  // namespace eve

#endif  // EVE_ALGEBRA_EXECUTOR_H_
