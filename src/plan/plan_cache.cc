#include "plan/plan_cache.h"

#include <utility>

#include "algebra/executor.h"
#include "common/fault_injection.h"
#include "common/hashing.h"

namespace eve {

namespace {

uint64_t CacheKey(const ViewDefinition& view, const ExecOptions& options) {
  // Structural AST hash instead of a rendered E-SQL string: no per-call
  // allocation, and the same normalization StructuralHash guarantees.
  size_t key = StructuralHash(view);
  const uint64_t option_bits = (options.distinct ? 1u : 0u) |
                               (options.reorder_joins ? 2u : 0u) |
                               (options.use_index_cache ? 4u : 0u);
  return HashCombine(key, static_cast<size_t>(option_bits));
}

}  // namespace

PlanCache::PlanCache(int64_t capacity)
    : capacity_(capacity > 0 ? capacity : 1) {}

void PlanCache::PutLocked(uint64_t key,
                          std::shared_ptr<const PreparedView> plan,
                          uint64_t epoch) {
  const auto it = plans_.find(key);
  if (it != plans_.end()) {
    it->second.plan = std::move(plan);
    it->second.epoch = epoch;
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return;
  }
  if (static_cast<int64_t>(plans_.size()) >= capacity_) {
    plans_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(key);
  plans_.emplace(key, Entry{std::move(plan), lru_.begin(), epoch});
}

Result<std::shared_ptr<const PreparedView>> PlanCache::Get(
    const ViewDefinition& view, const RelationProvider& provider,
    const ExecOptions& options, const ExecContext& ctx) {
  EVE_FAULT_POINT("plan_cache.get");
  const uint64_t key = CacheKey(view, options);
  const uint64_t epoch = provider.SnapshotEpoch();
  bool stale = false;
  bool epoch_swap = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = plans_.find(key);
    if (it != plans_.end()) {
      // Epoch fast path: an entry validated against this exact immutable
      // snapshot cannot have gone stale -- skip per-relation Validate.
      if (epoch != 0 && it->second.epoch == epoch) {
        ++stats_.hits;
        ++stats_.snapshot_hits;
        lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
        return it->second.plan;
      }
      if (it->second.plan->Validate(provider)) {
        ++stats_.hits;
        it->second.epoch = epoch;
        lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
        return it->second.plan;
      }
      stale = true;
      epoch_swap = epoch != 0 && it->second.epoch != 0 &&
                   it->second.epoch != epoch;
    }
  }
  // Plan outside the lock: planning walks relations and builds indexes, and
  // concurrent misses on distinct views should not serialize.  If two
  // threads race on the same key, both plans are equivalent; last wins.
  EVE_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedView> plan,
                       PrepareView(view, provider, options, ctx));
  std::lock_guard<std::mutex> lock(mu_);
  if (stale) {
    ++stats_.replans;
    if (epoch_swap) ++stats_.epoch_replans;
  } else {
    ++stats_.misses;
  }
  PutLocked(key, plan, epoch);
  return plan;
}

Result<Relation> PlanCache::Execute(const ViewDefinition& view,
                                    const RelationProvider& provider,
                                    const ExecOptions& options,
                                    const ExecContext& ctx) {
  EVE_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedView> plan,
                       Get(view, provider, options, ctx));
  Result<Relation> result = ExecutePrepared(*plan, ctx);
  if (result.ok() || result.status().code() != StatusCode::kInternal) {
    return result;
  }
  // Quarantine: an Internal execution failure may implicate the cached
  // plan itself (stale snapshot the validator missed, planner bug), so
  // evict it and replan exactly once.  A second failure propagates.
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = plans_.find(CacheKey(view, options));
    if (it != plans_.end()) {
      lru_.erase(it->second.lru_pos);
      plans_.erase(it);
    }
    ++stats_.quarantines;
  }
  EVE_ASSIGN_OR_RETURN(plan, Get(view, provider, options, ctx));
  return ExecutePrepared(*plan, ctx);
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  plans_.clear();
  lru_.clear();
}

int64_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(plans_.size());
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace eve
