#include "plan/plan_cache.h"

#include <utility>

#include "algebra/executor.h"
#include "esql/printer.h"

namespace eve {

namespace {

std::string CacheKey(const ViewDefinition& view, const ExecOptions& options) {
  std::string key = PrintViewCompact(view);
  key += options.distinct ? "|d1" : "|d0";
  key += options.reorder_joins ? "r1" : "r0";
  key += options.use_index_cache ? "c1" : "c0";
  return key;
}

}  // namespace

Result<std::shared_ptr<const PreparedView>> PlanCache::Get(
    const ViewDefinition& view, const RelationProvider& provider,
    const ExecOptions& options) {
  const std::string key = CacheKey(view, options);
  bool stale = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = plans_.find(key);
    if (it != plans_.end()) {
      if (it->second->Validate(provider)) {
        ++stats_.hits;
        return it->second;
      }
      stale = true;
    }
  }
  // Plan outside the lock: planning walks relations and builds indexes, and
  // concurrent misses on distinct views should not serialize.  If two
  // threads race on the same key, both plans are equivalent; last wins.
  EVE_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedView> plan,
                       PrepareView(view, provider, options));
  std::lock_guard<std::mutex> lock(mu_);
  if (stale) {
    ++stats_.replans;
  } else {
    ++stats_.misses;
  }
  plans_[key] = plan;
  return plan;
}

Result<Relation> PlanCache::Execute(const ViewDefinition& view,
                                    const RelationProvider& provider,
                                    const ExecOptions& options) {
  EVE_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedView> plan,
                       Get(view, provider, options));
  return ExecutePrepared(*plan);
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  plans_.clear();
}

int64_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(plans_.size());
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace eve
