// PreparedView: the immutable artifact of planning a view once so that
// executing it many times costs only the join work.
//
// The planner (plan/planner.h) resolves the FROM items, binds every WHERE
// clause, pushes single-relation selections down to row-id lists, picks the
// greedy cost-ordered join order, and fixes the per-step join strategy
// (hash key vs residual predicates).  All of that is captured here; the
// executor half (algebra/executor.h, ExecutePrepared) only replays it.
//
// A plan snapshots the (pointer, identity, version) triple of every base
// relation it was built against (see Relation::identity()/version()).
// Validate() re-resolves the names through the provider and compares all
// three, so a plan over mutated or replaced relations -- even one rebuilt
// at the same address -- is detected as stale instead of silently reading
// outdated pushdown sets.  Plans are immutable after construction and safe
// to execute from many threads concurrently.

#ifndef EVE_PLAN_PREPARED_VIEW_H_
#define EVE_PLAN_PREPARED_VIEW_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "algebra/provider.h"
#include "catalog/schema.h"
#include "expr/eval.h"
#include "storage/relation.h"

namespace eve {

/// Execution options.
struct ExecOptions {
  /// Deduplicate the result (set semantics).  The paper's extent
  /// comparisons assume duplicates are removed (§5.3).
  bool distinct = true;
  /// Greedy cost-ordered join selection (smallest estimated intermediate
  /// first).  Off: join in FROM order, as the reference executor does.
  bool reorder_joins = true;
  /// Reuse per-Relation cached hash indexes for equi joins instead of
  /// rebuilding an index on every call.  Prepare() additionally pre-builds
  /// (warms) the indexes its join steps need, so concurrent executions of
  /// one plan never contend on first-use index builds.
  bool use_index_cache = true;
};

/// One FROM item resolved against the provider, with the snapshot the plan
/// was built from.
struct PlannedFrom {
  std::string site;      ///< FROM item's site qualifier (may be empty).
  std::string relation;  ///< FROM item's relation name.
  const Relation* rel = nullptr;
  uint64_t identity = 0;  ///< rel->identity() at plan time.
  uint64_t version = 0;   ///< rel->version() at plan time.
  int offset = 0;         ///< First column in the concatenated join layout.
};

/// A residual cross-item predicate with both sides resolved to (FROM item,
/// local column) coordinates at plan time, so the executor reads base
/// tuples directly from the struct-of-arrays row-id columns without any
/// global-layout indirection per candidate.
struct PlannedResidual {
  int lhs_item = 0;
  int lhs_local = 0;
  CompOp op = CompOp::kEqual;
  /// Column side when rhs_item >= 0; rhs_item < 0 means the constant
  /// `rhs_value` is compared instead.
  int rhs_item = -1;
  int rhs_local = -1;
  Value rhs_value;
};

/// One join step of the fixed execution order.
struct PlannedJoinStep {
  int item = 0;  ///< FROM item index joined at this step.
  /// Hash-join key when key_right_local >= 0 (only for steps after the
  /// first): an equality clause connecting the joined prefix to `item`,
  /// with the prefix side resolved to (FROM item, local column).
  int key_left_item = -1;     ///< Prefix-side FROM item.
  int key_left_local = -1;    ///< Column within that item's relation.
  int key_right_local = -1;   ///< Column within `item`'s relation.
  /// The build-side hash index on (item, key_right_local), captured at
  /// plan time when options.use_index_cache is set.  Executions probe this
  /// directly -- no per-execution lock on the relation's index cache, so
  /// the read path is lock-free end to end.  Consistency is the plan's
  /// own staleness contract: the index was built from the exact (identity,
  /// version) the plan snapshotted, and Validate() rejects the plan before
  /// the index could go stale.  The shared_ptr keeps the index alive even
  /// after a mutation drops the relation's own cache.
  std::shared_ptr<const HashIndex> index;
  /// Residual cross-item predicates that first become evaluable at this
  /// step.
  std::vector<PlannedResidual> residual;
};

/// The immutable prepared plan.  Produced by PrepareView (plan/planner.h),
/// consumed by ExecutePrepared (algebra/executor.h) and cached by PlanCache
/// (plan/plan_cache.h).
struct PreparedView {
  std::string view_name;
  ExecOptions options;  ///< Options the plan was built under.

  std::vector<PlannedFrom> from;
  std::vector<int> owner_of_col;  ///< Global column -> owning FROM item.

  // Selection pushdown snapshot (content-dependent; guarded by versions).
  // Items without local predicates keep empty lists/masks ("every row
  // passes"), so unfiltered base tables cost nothing to prepare.
  std::vector<std::vector<int64_t>> filtered;  ///< Per item; empty = all pass.
  std::vector<std::vector<uint8_t>> passes;    ///< Row mask; empty = all pass.

  std::vector<PlannedJoinStep> steps;  ///< steps[0] is the driving scan.
  std::vector<int> pos_of_item;        ///< FROM item -> position in order.

  struct OutCol {
    int item = 0;   ///< FROM item owning the projected column.
    int local = 0;  ///< Column index within that relation.
  };
  std::vector<OutCol> out_cols;
  Schema out_schema;

  /// True iff every planned relation still resolves to the same instance
  /// with the same version through `provider`.  A false result means the
  /// plan must be rebuilt (relation mutated, replaced, or dropped).
  bool Validate(const RelationProvider& provider) const;
};

/// The executor's join working set in struct-of-arrays layout: one row-id
/// column per already-joined FROM item, in join-step order, all columns of
/// equal length.  columns[p][i] is the row of FROM item steps[p].item in
/// combo i (so a column is addressed via pos_of_item).  Each join step
/// appends candidates as (parent combo, new row) pairs and then gathers the
/// surviving parents through every existing column -- sequential batch
/// copies instead of the per-combo scratch copy an array-of-combos layout
/// pays on every emitted candidate.
///
/// Gathers are double-buffered through `scratch`: the gathered rows are
/// built in the scratch buffer and swapped with the column, so the
/// displaced column's storage becomes the scratch for the next gather and
/// steady-state joins recycle two buffers per column instead of allocating
/// a fresh vector per step.
struct JoinWorkingSet {
  std::vector<std::vector<int64_t>> columns;
  std::vector<int64_t> scratch;
  size_t combos = 0;
};

}  // namespace eve

#endif  // EVE_PLAN_PREPARED_VIEW_H_
