#include "plan/planner.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <tuple>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "expr/selectivity.h"
#include "storage/hash_index.h"

namespace eve {

namespace {

// One FROM item resolved against the provider with its column offset in the
// concatenated join layout.
struct ResolvedFrom {
  const FromItem* item;
  const Relation* relation;
  int offset;  // First column of this relation in the joined tuple.
};

Result<std::vector<ResolvedFrom>> ResolveAll(const ViewDefinition& view,
                                             const RelationProvider& provider) {
  std::vector<ResolvedFrom> out;
  int offset = 0;
  for (const FromItem& f : view.from_items) {
    EVE_ASSIGN_OR_RETURN(const Relation* rel,
                         provider.Resolve(f.site, f.relation));
    out.push_back(ResolvedFrom{&f, rel, offset});
    offset += rel->schema().size();
  }
  return out;
}

Result<Binding> MakeBinding(const std::vector<ResolvedFrom>& resolved) {
  Binding binding;
  for (const ResolvedFrom& rf : resolved) {
    const Schema& schema = rf.relation->schema();
    for (int i = 0; i < schema.size(); ++i) {
      EVE_RETURN_IF_ERROR(binding.Register(
          RelAttr{rf.item->name(), schema.attribute(i).name}, rf.offset + i));
    }
  }
  return binding;
}

// Global column -> owning FROM item, precomputed for O(1) lookups on the
// join hot path.
std::vector<int> OwnerTable(const std::vector<ResolvedFrom>& resolved) {
  std::vector<int> owner;
  for (size_t i = 0; i < resolved.size(); ++i) {
    owner.insert(owner.end(), resolved[i].relation->schema().size(),
                 static_cast<int>(i));
  }
  return owner;
}

// A bound cross-item WHERE clause annotated with the FROM items it
// references; assigned to the first join step where all of them are joined.
struct AnnotatedClause {
  BoundClause bound;
  std::vector<int> items;  // Sorted, unique owner item indexes (size 2).
  bool applied = false;
};

// Greedy cost-ordered join selection: start from the smallest filtered
// relation, then repeatedly add the item with the smallest estimated
// intermediate result, preferring items connected to the joined prefix by
// an evaluable clause (equi-join selectivity estimated as 1/V(join column)
// through `estimator`).  Ties break toward FROM order, so plans are
// deterministic.
template <typename SelectivityEstimator>
std::vector<int> GreedyJoinOrder(const std::vector<ResolvedFrom>& resolved,
                                 const std::vector<int>& owner_of_col,
                                 const std::vector<AnnotatedClause>& cross,
                                 const std::vector<int64_t>& live,
                                 SelectivityEstimator&& estimator) {
  const int n = static_cast<int>(resolved.size());
  std::vector<int> order;
  std::vector<bool> joined(n, false);

  std::map<std::pair<int, int>, double> sel_cache;
  auto eq_sel = [&](int item, int local_col) {
    const auto key = std::make_pair(item, local_col);
    auto it = sel_cache.find(key);
    if (it == sel_cache.end()) {
      it = sel_cache.emplace(key, estimator(item, local_col)).first;
    }
    return it->second;
  };

  int first = 0;
  for (int k = 1; k < n; ++k) {
    if (live[k] < live[first]) first = k;
  }
  order.push_back(first);
  joined[first] = true;
  double est_rows = static_cast<double>(live[first]);

  while (static_cast<int>(order.size()) < n) {
    int best = -1;
    double best_cost = std::numeric_limits<double>::infinity();
    double best_est = 0.0;
    for (int cand = 0; cand < n; ++cand) {
      if (joined[cand]) continue;
      double sel = 1.0;
      bool connected = false;
      for (const AnnotatedClause& c : cross) {
        bool refs_cand = false;
        bool rest_joined = true;
        for (int item : c.items) {
          if (item == cand) {
            refs_cand = true;
          } else if (!joined[item]) {
            rest_joined = false;
          }
        }
        if (!refs_cand || !rest_joined) continue;
        connected = true;
        if (c.bound.op == CompOp::kEqual && c.bound.rhs_column >= 0) {
          const int cand_col = owner_of_col[c.bound.lhs_column] == cand
                                   ? c.bound.lhs_column
                                   : c.bound.rhs_column;
          sel = std::min(sel, eq_sel(cand, cand_col - resolved[cand].offset));
        } else {
          sel = std::min(sel, 0.5);  // Conservative theta-join guess.
        }
      }
      const double est = est_rows * static_cast<double>(live[cand]) * sel;
      // Cross products only when nothing connects; the penalty keeps any
      // connected item ahead of any unconnected one.
      const double cost = connected ? est : (est + 1.0) * 1e12;
      if (cost < best_cost) {
        best_cost = cost;
        best_est = est;
        best = cand;
      }
    }
    joined[best] = true;
    order.push_back(best);
    est_rows = std::max(1.0, best_est);
  }
  return order;
}

}  // namespace

bool PreparedView::Validate(const RelationProvider& provider) const {
  for (const PlannedFrom& pf : from) {
    const auto resolved = provider.Resolve(pf.site, pf.relation);
    if (!resolved.ok()) return false;
    // Pointer first (a replaced relation must not be dereferenced through
    // the stale plan pointer), then identity (same address may be a
    // rebuilt object), then the mutation counter.
    if (resolved.value() != pf.rel) return false;
    if (resolved.value()->identity() != pf.identity) return false;
    if (resolved.value()->version() != pf.version) return false;
  }
  return true;
}

Result<std::shared_ptr<const PreparedView>> PrepareView(
    const ViewDefinition& view, const RelationProvider& provider,
    const ExecOptions& options, const ExecContext& ctx) {
  EVE_FAULT_POINT("planner.prepare");
  ExecGovernor gov(ctx);
  EVE_RETURN_IF_ERROR(view.Validate());
  EVE_ASSIGN_OR_RETURN(std::vector<ResolvedFrom> resolved,
                       ResolveAll(view, provider));
  EVE_ASSIGN_OR_RETURN(Binding binding, MakeBinding(resolved));
  const int n = static_cast<int>(resolved.size());

  auto plan = std::make_shared<PreparedView>();
  plan->view_name = view.name;
  plan->options = options;
  plan->owner_of_col = OwnerTable(resolved);
  const std::vector<int>& owner_of_col = plan->owner_of_col;
  for (const ResolvedFrom& rf : resolved) {
    plan->from.push_back(PlannedFrom{rf.item->site, rf.item->relation,
                                     rf.relation, rf.relation->identity(),
                                     rf.relation->version(), rf.offset});
  }

  // Bind every WHERE clause up front so reference errors surface regardless
  // of join order or early termination, splitting local (single-item)
  // selections from cross-item join predicates.
  std::vector<std::vector<BoundClause>> local(n);  // Columns rebased to item.
  std::vector<AnnotatedClause> cross;
  for (const ConditionItem& c : view.where) {
    EVE_ASSIGN_OR_RETURN(BoundClause bc, Bind(c.clause, binding));
    std::vector<int> items{owner_of_col[bc.lhs_column]};
    if (bc.rhs_column >= 0) items.push_back(owner_of_col[bc.rhs_column]);
    std::sort(items.begin(), items.end());
    items.erase(std::unique(items.begin(), items.end()), items.end());
    if (items.size() == 1) {
      const int k = items[0];
      BoundClause rebased = bc;
      rebased.lhs_column -= resolved[k].offset;
      if (rebased.rhs_column >= 0) rebased.rhs_column -= resolved[k].offset;
      local[k].push_back(std::move(rebased));
    } else {
      cross.push_back(AnnotatedClause{std::move(bc), std::move(items), false});
    }
  }

  // Selection pushdown: per-item filtered row-id lists plus a membership
  // mask for probing index lookups.  Relations without local predicates
  // keep empty lists/masks ("every row passes") so unfiltered base tables
  // cost nothing to prepare, regardless of cardinality.  `live` (passing-
  // row counts) only drives the join-order heuristic below, so it stays
  // local instead of bloating the cached plan.
  plan->filtered.resize(n);
  plan->passes.resize(n);
  std::vector<int64_t> live(n);
  EVE_FAULT_POINT("planner.pushdown");
  for (int k = 0; k < n; ++k) {
    const Relation& rel = *resolved[k].relation;
    if (local[k].empty()) {
      live[k] = rel.cardinality();
      continue;
    }
    // (clauses + mask-to-list) passes over the relation.
    EVE_RETURN_IF_ERROR(
        gov.Charge(rel.cardinality() * (local[k].size() + 1)));
    // Each local clause is one mask kernel pass over the relation's
    // contiguous value column(s); the surviving mask doubles as the plan's
    // membership mask.
    std::vector<uint8_t> mask(static_cast<size_t>(rel.cardinality()), 1);
    for (const BoundClause& bc : local[k]) AndClauseMask(bc, rel, mask.data());
    for (int64_t row = 0; row < rel.cardinality(); ++row) {
      if (mask[row]) plan->filtered[k].push_back(row);
    }
    plan->passes[k] = std::move(mask);
    live[k] = static_cast<int64_t>(plan->filtered[k].size());
  }

  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  if (options.reorder_joins && n > 1) {
    // With the index cache on, distinct-count estimates come from the
    // cached per-column indexes (amortized across calls, and the join will
    // reuse the same index); otherwise measure over the filtered rows.
    auto estimator = [&](int item, int local_col) -> double {
      if (options.use_index_cache) {
        const int64_t keys =
            resolved[item].relation->Index(local_col).DistinctKeys();
        return keys > 0 ? 1.0 / static_cast<double>(keys) : 1.0;
      }
      return EstimateEqJoinSelectivity(
          *resolved[item].relation, local_col,
          local[item].empty() ? nullptr : &plan->filtered[item]);
    };
    order = GreedyJoinOrder(resolved, owner_of_col, cross, live, estimator);
  }

  // Fix the per-step join strategy along the chosen order: which clauses
  // first become evaluable at each step, and which of them serves as the
  // hash-join key (prefix column vs a column of the step's relation).
  // Clause sides are resolved to (FROM item, local column) coordinates here
  // so the executor's struct-of-arrays working set never maps through the
  // global column layout per candidate.
  const auto to_local = [&](int global_col) -> std::pair<int, int> {
    const int item = owner_of_col[global_col];
    return {item, global_col - resolved[item].offset};
  };
  plan->pos_of_item.assign(n, -1);
  for (int s = 0; s < n; ++s) {
    const int k = order[s];
    plan->pos_of_item[k] = s;
    PlannedJoinStep step;
    step.item = k;
    if (s > 0) {
      for (AnnotatedClause& c : cross) {
        if (c.applied) continue;
        const bool ready =
            std::all_of(c.items.begin(), c.items.end(), [&](int i) {
              return plan->pos_of_item[i] >= 0;
            });
        if (!ready) continue;
        c.applied = true;
        const bool lhs_in_k = owner_of_col[c.bound.lhs_column] == k;
        const bool rhs_is_col = c.bound.rhs_column >= 0;
        const bool rhs_in_k =
            rhs_is_col && owner_of_col[c.bound.rhs_column] == k;
        if (step.key_right_local < 0 && c.bound.op == CompOp::kEqual &&
            rhs_is_col && lhs_in_k != rhs_in_k) {
          std::tie(step.key_left_item, step.key_left_local) =
              to_local(lhs_in_k ? c.bound.rhs_column : c.bound.lhs_column);
          step.key_right_local =
              (lhs_in_k ? c.bound.lhs_column : c.bound.rhs_column) -
              resolved[k].offset;
        } else {
          PlannedResidual r;
          std::tie(r.lhs_item, r.lhs_local) = to_local(c.bound.lhs_column);
          r.op = c.bound.op;
          if (rhs_is_col) {
            std::tie(r.rhs_item, r.rhs_local) = to_local(c.bound.rhs_column);
          } else {
            r.rhs_value = c.bound.rhs_value;
          }
          step.residual.push_back(std::move(r));
        }
      }
    }
    plan->steps.push_back(std::move(step));
  }

  // Projection onto the SELECT list, reusing the already-resolved FROM
  // vector and binding (no per-item provider lookups or schema scans).
  std::vector<Attribute> out_attrs;
  for (const SelectItem& s : view.select_items) {
    EVE_ASSIGN_OR_RETURN(const int col, binding.Resolve(s.source));
    const int owner = owner_of_col[col];
    Attribute a = resolved[owner].relation->schema().attribute(
        col - resolved[owner].offset);
    a.name = s.name();
    out_attrs.push_back(std::move(a));
    plan->out_cols.push_back(
        PreparedView::OutCol{owner, col - resolved[owner].offset});
  }
  plan->out_schema = Schema(std::move(out_attrs));

  if (options.use_index_cache) {
    // Capture the hash-join indexes the plan will probe directly into the
    // steps: executions then touch no per-relation cache lock at all, and
    // the captured indexes stay consistent for exactly as long as the
    // plan itself validates (same identity+version snapshot).
    for (PlannedJoinStep& step : plan->steps) {
      if (step.key_right_local >= 0) {
        step.index =
            resolved[step.item].relation->IndexShared(step.key_right_local);
      }
    }
  }
  EVE_RETURN_IF_ERROR(gov.Flush());
  return std::shared_ptr<const PreparedView>(std::move(plan));
}

}  // namespace eve
