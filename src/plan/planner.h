// Planner: builds a PreparedView from a view definition and a relation
// provider.  This is the plan-building half of the former monolithic
// executor (algebra/executor.cc); the execution half consumes the plan via
// ExecutePrepared.
//
// Plan shape: resolve each FROM relation, push its local selection down to
// a prefiltered row-id set, pick a greedy cost-ordered join order (driven
// by filtered cardinalities and equi-join selectivity estimates), and fix
// the per-step join strategy (hash-join key through per-Relation cached
// indexes, nested-loop otherwise).  Data volumes in this library are
// experiment-scale, but exp1-exp5 replay thousands of synchronize+execute
// rounds, so planning work is meant to be amortized: prepare once, execute
// per scenario (see plan/plan_cache.h for the cached entry point).

#ifndef EVE_PLAN_PLANNER_H_
#define EVE_PLAN_PLANNER_H_

#include <memory>

#include "algebra/provider.h"
#include "common/exec_context.h"
#include "common/result.h"
#include "esql/ast.h"
#include "expr/eval.h"
#include "plan/prepared_view.h"

namespace eve {

/// Plans `view` against `provider`.  The returned plan is immutable, safe
/// to execute concurrently, and valid until any referenced relation
/// mutates (PreparedView::Validate).  With options.use_index_cache the
/// hash-join indexes the plan needs are pre-built here (WarmIndexes), so
/// parallel first executions never race on index construction.
///
/// A limited `ctx` governs the row-level planning work (selection-pushdown
/// scans) against its deadline/cancellation/row budget.  ExecContext is a
/// per-call parameter, never part of the plan: cached plans are shared by
/// callers with different budgets.
Result<std::shared_ptr<const PreparedView>> PrepareView(
    const ViewDefinition& view, const RelationProvider& provider,
    const ExecOptions& options = {},
    const ExecContext& ctx = ExecContext::Unlimited());

}  // namespace eve

#endif  // EVE_PLAN_PLANNER_H_
