// PlanCache: memoizes PreparedView plans per (view definition, execution
// options) so replay loops -- exp1-exp5 sweep thousands of
// synchronize+execute rounds -- pay for planning once per schema epoch.
//
// Keying: the 64-bit structural hash of the definition (esql/ast.h,
// StructuralHash) combined with the option bits.  Hashing the AST replaces
// the seed's full compact E-SQL rendering, so very hot replay loops no
// longer build a key string per call.  The hash captures everything
// plan-relevant (FROM items, WHERE clauses, SELECT list), so an evolved
// view that keeps its name still gets a fresh entry; a 64-bit collision
// between live views would alias two entries, which at the bounded cache
// size is vanishingly unlikely (and caught by Validate whenever the views
// resolve different relations).
//
// Bounding: the cache holds at most `capacity` plans and evicts the least
// recently used entry on overflow (stats().evictions counts these), so
// production-scale view counts cannot grow the cache without bound.
//
// Invalidation: Get() revalidates the cached plan against the provider
// (PreparedView::Validate compares relation identity + version), so
// relation mutations replan lazily on the next use.  Schema changes
// restructure the space wholesale; EveSystem::NotifySchemaChange calls
// Clear() after applying one.
//
// Thread-safe: all members may be called concurrently (the returned
// shared_ptr keeps a plan alive even if another thread replaces or evicts
// it), with the same single-writer caveat as Relation: mutating a base
// relation concurrently with Get/Execute over it requires external
// synchronization -- the stamps read by revalidation are atomic, but the
// tuple store a racing execution would scan is not.

#ifndef EVE_PLAN_PLAN_CACHE_H_
#define EVE_PLAN_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/result.h"
#include "esql/ast.h"
#include "plan/planner.h"
#include "plan/prepared_view.h"
#include "storage/relation.h"

namespace eve {

/// Monotonic counters of a PlanCache (for tests and telemetry).
struct PlanCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;     ///< No entry for the key.
  int64_t replans = 0;    ///< Entry found but stale (failed validation).
  int64_t evictions = 0;  ///< Entries dropped by the LRU capacity bound.
  /// Plans evicted because executing them failed with an Internal error
  /// (possible plan poisoning); Execute replans once after a quarantine.
  int64_t quarantines = 0;
  /// Hits served on the epoch fast path: the provider is an immutable
  /// snapshot (RelationProvider::SnapshotEpoch() != 0) whose epoch equals
  /// the one the entry was planned/validated against, so per-relation
  /// revalidation was skipped entirely.  Subset of `hits`.
  int64_t snapshot_hits = 0;
  /// Replans whose staleness was an epoch swap: the entry was planned
  /// against one published snapshot and requested against a different one
  /// (reader moved to a newer epoch).  Subset of `replans`.
  int64_t epoch_replans = 0;
};

/// A concurrent, capacity-bounded LRU cache of prepared view plans.
class PlanCache {
 public:
  /// Default capacity: enough for every live view of the experiment sweeps
  /// while keeping a production system's footprint bounded.
  static constexpr int64_t kDefaultCapacity = 256;

  explicit PlanCache(int64_t capacity = kDefaultCapacity);

  /// Returns a valid plan for (view, options), reusing the cached one when
  /// its relation snapshot still matches and replanning otherwise.
  /// Planning work on a miss is governed by `ctx`.
  Result<std::shared_ptr<const PreparedView>> Get(
      const ViewDefinition& view, const RelationProvider& provider,
      const ExecOptions& options = {},
      const ExecContext& ctx = ExecContext::Unlimited());

  /// Plans (or reuses) and executes in one call; the cached counterpart of
  /// ExecuteView.  When execution fails with an Internal error, the cached
  /// plan is quarantined -- evicted and replanned once -- before the error
  /// is propagated (stats().quarantines counts these).  Governance errors
  /// (deadline/cancel/budget) never quarantine: they implicate the caller's
  /// limits, not the plan.
  Result<Relation> Execute(const ViewDefinition& view,
                           const RelationProvider& provider,
                           const ExecOptions& options = {},
                           const ExecContext& ctx = ExecContext::Unlimited());

  /// Drops every cached plan (schema epoch change).  Does not count as
  /// eviction.
  void Clear();

  /// Number of cached plans.
  int64_t size() const;

  int64_t capacity() const { return capacity_; }

  PlanCacheStats stats() const;

 private:
  struct Entry {
    std::shared_ptr<const PreparedView> plan;
    /// Position in lru_ (front = most recently used).
    std::list<uint64_t>::iterator lru_pos;
    /// SnapshotEpoch() of the provider this plan was last planned or
    /// validated against; 0 for the live space.  A same-epoch request
    /// skips Validate (the snapshot is immutable).
    uint64_t epoch = 0;
  };

  /// Inserts or replaces `key`, evicting the LRU entry on overflow.
  /// Requires mu_ held.
  void PutLocked(uint64_t key, std::shared_ptr<const PreparedView> plan,
                 uint64_t epoch);

  const int64_t capacity_;
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, Entry> plans_;
  /// Recency order of the keys in plans_; front = most recently used.
  std::list<uint64_t> lru_;
  PlanCacheStats stats_;
};

}  // namespace eve

#endif  // EVE_PLAN_PLAN_CACHE_H_
