// PlanCache: memoizes PreparedView plans per (view definition, execution
// options) so replay loops -- exp1-exp5 sweep thousands of
// synchronize+execute rounds -- pay for planning once per schema epoch.
//
// Keying: the compact E-SQL rendering of the definition plus the option
// bits.  The rendering captures everything plan-relevant (FROM items,
// WHERE clauses, SELECT list), so an evolved view that keeps its name still
// gets a fresh entry.
//
// Invalidation: Get() revalidates the cached plan against the provider
// (PreparedView::Validate compares relation identity + version), so
// relation mutations replan lazily on the next use.  Schema changes
// restructure the space wholesale; EveSystem::NotifySchemaChange calls
// Clear() after applying one.
//
// Thread-safe: all members may be called concurrently (the returned
// shared_ptr keeps a plan alive even if another thread replaces it), with
// the same single-writer caveat as Relation: mutating a base relation
// concurrently with Get/Execute over it requires external synchronization
// -- the stamps read by revalidation are atomic, but the tuple store a
// racing execution would scan is not.

#ifndef EVE_PLAN_PLAN_CACHE_H_
#define EVE_PLAN_PLAN_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/result.h"
#include "esql/ast.h"
#include "plan/planner.h"
#include "plan/prepared_view.h"
#include "storage/relation.h"

namespace eve {

/// Hit/miss counters of a PlanCache (monotonic; for tests and telemetry).
struct PlanCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;    ///< No entry for the key.
  int64_t replans = 0;   ///< Entry found but stale (failed validation).
};

/// A concurrent cache of prepared view plans.
class PlanCache {
 public:
  /// Returns a valid plan for (view, options), reusing the cached one when
  /// its relation snapshot still matches and replanning otherwise.
  Result<std::shared_ptr<const PreparedView>> Get(
      const ViewDefinition& view, const RelationProvider& provider,
      const ExecOptions& options = {});

  /// Plans (or reuses) and executes in one call; the cached counterpart of
  /// ExecuteView.
  Result<Relation> Execute(const ViewDefinition& view,
                           const RelationProvider& provider,
                           const ExecOptions& options = {});

  /// Drops every cached plan (schema epoch change).
  void Clear();

  /// Number of cached plans.
  int64_t size() const;

  PlanCacheStats stats() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const PreparedView>> plans_;
  PlanCacheStats stats_;
};

}  // namespace eve

#endif  // EVE_PLAN_PLAN_CACHE_H_
