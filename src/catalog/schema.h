// Attribute and Schema: the shape of a relation.

#ifndef EVE_CATALOG_SCHEMA_H_
#define EVE_CATALOG_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "types/data_type.h"

namespace eve {

/// A named, typed attribute.  `size_bytes` is the width used by the
/// transfer-cost model (paper §6.1, statistic s_{R.A}); it defaults to the
/// type's default width.
struct Attribute {
  std::string name;
  DataType type = DataType::kInt64;
  int size_bytes = 8;

  /// Makes an attribute with the type's default width.
  static Attribute Make(std::string name, DataType type);
  /// Makes an attribute with an explicit width.
  static Attribute Make(std::string name, DataType type, int size_bytes);

  bool operator==(const Attribute& o) const = default;
};

/// An ordered list of uniquely named attributes.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Attribute> attributes);

  /// Builds a schema, rejecting duplicate attribute names.
  static Result<Schema> Create(std::vector<Attribute> attributes);

  int size() const { return static_cast<int>(attributes_.size()); }
  const Attribute& attribute(int i) const { return attributes_[i]; }
  const std::vector<Attribute>& attributes() const { return attributes_; }

  /// Index of the attribute with the given name, or nullopt.
  std::optional<int> IndexOf(const std::string& name) const;

  bool Contains(const std::string& name) const { return IndexOf(name).has_value(); }

  /// Sum of attribute widths: the tuple size s_R of the cost model.
  int TupleBytes() const;

  /// Appends another schema's attributes (names may repeat across schemas in
  /// intermediate join results only; final view schemas must be unique).
  Schema Concat(const Schema& other) const;

  /// "R(A INT, B STRING)" without the relation name.
  std::string ToString() const;

  bool operator==(const Schema& o) const = default;

 private:
  std::vector<Attribute> attributes_;
};

}  // namespace eve

#endif  // EVE_CATALOG_SCHEMA_H_
