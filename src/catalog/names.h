// Qualified names for the entities of the information space:
//   site  (information source)           "IS1"
//   relation within a site               "IS1.R"
//   attribute of a relation              "IS1.R.A"  /  "R.A" inside queries
//
// Inside E-SQL queries attributes are referenced by RelAttr (relation name
// or alias + attribute); the space-level identity is QualifiedAttr.

#ifndef EVE_CATALOG_NAMES_H_
#define EVE_CATALOG_NAMES_H_

#include <functional>
#include <string>

namespace eve {

/// A relation-qualified attribute reference as written in a query, e.g.
/// "R.A" or "C.Name" (C an alias).  Relation part may be empty when the
/// query leaves the attribute unqualified and resolution is deferred.
struct RelAttr {
  std::string relation;  ///< Relation name or alias; may be empty.
  std::string attribute;

  bool operator==(const RelAttr& o) const = default;
  bool operator<(const RelAttr& o) const {
    return relation != o.relation ? relation < o.relation
                                  : attribute < o.attribute;
  }

  /// "R.A", or just "A" when unqualified.
  std::string ToString() const {
    return relation.empty() ? attribute : relation + "." + attribute;
  }
};

/// A globally unique relation identity: site + relation name.
struct RelationId {
  std::string site;
  std::string relation;

  bool operator==(const RelationId& o) const = default;
  bool operator<(const RelationId& o) const {
    return site != o.site ? site < o.site : relation < o.relation;
  }

  /// "IS.R".
  std::string ToString() const { return site + "." + relation; }
};

struct RelAttrHash {
  size_t operator()(const RelAttr& ra) const {
    return std::hash<std::string>{}(ra.relation) * 1000003 ^
           std::hash<std::string>{}(ra.attribute);
  }
};

struct RelationIdHash {
  size_t operator()(const RelationId& id) const {
    return std::hash<std::string>{}(id.site) * 1000003 ^
           std::hash<std::string>{}(id.relation);
  }
};

}  // namespace eve

#endif  // EVE_CATALOG_NAMES_H_
