#include "catalog/schema.h"

#include <unordered_set>

#include "common/str_util.h"

namespace eve {

Attribute Attribute::Make(std::string name, DataType type) {
  return Attribute{std::move(name), type, DefaultTypeSize(type)};
}

Attribute Attribute::Make(std::string name, DataType type, int size_bytes) {
  return Attribute{std::move(name), type, size_bytes};
}

Schema::Schema(std::vector<Attribute> attributes)
    : attributes_(std::move(attributes)) {}

Result<Schema> Schema::Create(std::vector<Attribute> attributes) {
  std::unordered_set<std::string> seen;
  for (const Attribute& a : attributes) {
    if (!seen.insert(a.name).second) {
      return Status::InvalidArgument("duplicate attribute name: " + a.name);
    }
    if (a.size_bytes <= 0) {
      return Status::InvalidArgument("attribute " + a.name +
                                     " must have positive size");
    }
  }
  return Schema(std::move(attributes));
}

std::optional<int> Schema::IndexOf(const std::string& name) const {
  for (int i = 0; i < size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return std::nullopt;
}

int Schema::TupleBytes() const {
  int total = 0;
  for (const Attribute& a : attributes_) total += a.size_bytes;
  return total;
}

Schema Schema::Concat(const Schema& other) const {
  std::vector<Attribute> all = attributes_;
  all.insert(all.end(), other.attributes_.begin(), other.attributes_.end());
  return Schema(std::move(all));
}

std::string Schema::ToString() const {
  return "(" +
         JoinMapped(attributes_, ", ",
                    [](const Attribute& a) {
                      return a.name + " " + std::string(DataTypeName(a.type));
                    }) +
         ")";
}

}  // namespace eve
