// ExponentialBackoff: the retry-delay schedule used by the serving front
// end's bounded kInternal retries (serve/frontend.h) and available to any
// other retry loop.  Deterministic (no jitter): delays double from
// `initial` up to `max`, so tests can assert the exact schedule and the
// fault-injection walks stay reproducible.

#ifndef EVE_COMMON_BACKOFF_H_
#define EVE_COMMON_BACKOFF_H_

#include <chrono>

namespace eve {

class ExponentialBackoff {
 public:
  ExponentialBackoff(std::chrono::nanoseconds initial,
                     std::chrono::nanoseconds max)
      : next_(initial), max_(max) {}

  /// The delay to wait before the next attempt; each call doubles the
  /// following one, saturating at the configured maximum.
  std::chrono::nanoseconds Next() {
    const std::chrono::nanoseconds current = next_;
    next_ = next_ * 2 > max_ ? max_ : next_ * 2;
    return current;
  }

 private:
  std::chrono::nanoseconds next_;
  const std::chrono::nanoseconds max_;
};

}  // namespace eve

#endif  // EVE_COMMON_BACKOFF_H_
