// Small string helpers used across the library: printf-style formatting
// (GCC 12 lacks std::format), joining, splitting, and case utilities.

#ifndef EVE_COMMON_STR_UTIL_H_
#define EVE_COMMON_STR_UTIL_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace eve {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Joins the elements of `parts` with `sep` between them.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Joins arbitrary streamable elements with `sep`, applying `fn` to each.
template <typename Container, typename Fn>
std::string JoinMapped(const Container& items, std::string_view sep, Fn fn) {
  std::ostringstream out;
  bool first = true;
  for (const auto& item : items) {
    if (!first) out << sep;
    first = false;
    out << fn(item);
  }
  return out.str();
}

/// Splits `text` on `sep`, keeping empty pieces.
std::vector<std::string> Split(std::string_view text, char sep);

/// ASCII lower-casing.
std::string ToLower(std::string_view text);

/// Case-insensitive ASCII comparison.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// True iff `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Strips ASCII whitespace from both ends.
std::string_view StripWhitespace(std::string_view text);

/// Formats a double with up to `digits` significant fractional digits,
/// trimming trailing zeros ("1.5", "0.0375", "3").
std::string FormatDouble(double value, int digits = 6);

}  // namespace eve

#endif  // EVE_COMMON_STR_UTIL_H_
