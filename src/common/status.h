// Status: the error model used across the library.
//
// Following the database-systems idiom (RocksDB, LevelDB), no exceptions
// cross any public API boundary.  Every fallible operation returns either a
// Status or a Result<T> (see common/result.h).  A Status is cheap to copy in
// the OK case (no allocation) and carries a code plus a human-readable
// message otherwise.

#ifndef EVE_COMMON_STATUS_H_
#define EVE_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace eve {

/// Error categories used throughout the library.
enum class StatusCode {
  kOk = 0,
  /// The caller passed an argument that violates the API contract.
  kInvalidArgument,
  /// A named entity (relation, attribute, view, site, ...) does not exist.
  kNotFound,
  /// A named entity already exists and may not be redefined.
  kAlreadyExists,
  /// The operation is valid in principle but not in the current state
  /// (e.g., synchronizing a view that is already dead).
  kFailedPrecondition,
  /// A numeric argument or index is outside its permitted range.
  kOutOfRange,
  /// E-SQL text could not be parsed; the message carries line/column info.
  kParseError,
  /// An internal invariant was violated; indicates a library bug.
  kInternal,
  /// The requested feature is recognized but not implemented.
  kUnimplemented,
  /// An ExecContext deadline expired before the operation finished.
  kDeadlineExceeded,
  /// The operation was cancelled cooperatively through a CancelToken.
  kCancelled,
  /// An ExecContext row/candidate/memory budget was exhausted.
  kResourceExhausted,
  /// The service is temporarily unable to take the request (admission
  /// queue past high-water, snapshot pinned too far behind the publisher,
  /// shutdown in progress).  Retryable by the client after backing off;
  /// never the plan's fault, so it must not quarantine a cached plan.
  kUnavailable,
};

/// Returns the canonical spelling of a status code, e.g. "NotFound".
std::string_view StatusCodeToString(StatusCode code);

/// A success-or-error value.  Statuses are immutable once constructed.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message.  `code` must not
  /// be StatusCode::kOk; use the default constructor for success.
  Status(StatusCode code, std::string message);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg);
  static Status NotFound(std::string msg);
  static Status AlreadyExists(std::string msg);
  static Status FailedPrecondition(std::string msg);
  static Status OutOfRange(std::string msg);
  static Status ParseError(std::string msg);
  static Status Internal(std::string msg);
  static Status Unimplemented(std::string msg);
  static Status DeadlineExceeded(std::string msg);
  static Status Cancelled(std::string msg);
  static Status ResourceExhausted(std::string msg);
  static Status Unavailable(std::string msg);

  /// True iff this status represents success.
  bool ok() const { return rep_ == nullptr; }

  StatusCode code() const { return rep_ == nullptr ? StatusCode::kOk : rep_->code; }

  /// The error message; empty for OK statuses.
  const std::string& message() const;

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  // nullptr means OK; this keeps the success path allocation-free.
  std::unique_ptr<Rep> rep_;
};

}  // namespace eve

/// Propagates an error status out of the enclosing function.
///
/// Expands to a complete if/else statement, so it is safe as the body of a
/// brace-less `if`/`else`/loop and a trailing user `else` cannot bind into
/// it (the classic dangling-else hazard of `do { } while (false)`-free
/// multi-statement macros).
#define EVE_RETURN_IF_ERROR(expr)                                    \
  if (::eve::Status _eve_status__ = (expr); _eve_status__.ok()) {    \
  } else /* NOLINT(readability/braces) */                            \
    return _eve_status__

#endif  // EVE_COMMON_STATUS_H_
