#include "common/random.h"

namespace eve {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Random::Random(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Random::Next() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

uint64_t Random::Uniform(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  while (true) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Random::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(Uniform(span));
}

double Random::UniformDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Random::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

}  // namespace eve
