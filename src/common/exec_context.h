// ExecContext: cooperative resource governance for long-running operations.
//
// Every potentially unbounded path in the library (planning, prepared
// execution, the reference executor, rewriting enumeration, the MKB
// transitive closure, maintenance recomputation, parallel sweeps) accepts a
// `const ExecContext&` and periodically consults it.  A context carries
//
//   * a steady-clock deadline             -> Status::DeadlineExceeded,
//   * a cooperative CancelToken           -> Status::Cancelled,
//   * row / candidate / memory budgets    -> Status::ResourceExhausted.
//
// The default `ExecContext::Unlimited()` never fails and costs one branch
// per (amortized) check, so ungoverned callers pay essentially nothing.
//
// Checking discipline: hot row loops do not consult the clock per row.
// They charge an ExecGovernor, which accumulates counts locally and only
// every ~kCheckStride rows (tightened to the remaining row budget) consumes
// the context and reads the clock.  This keeps governance overhead on the
// prepared executor inside the bench regression gate while still bounding
// overshoot to one stride.
//
// Semantics by site (see docs/ERROR_MODEL.md):
//   * cancellation is always a hard error;
//   * deadline / budget exhaustion during *execution* is a hard error;
//   * deadline / candidate-budget exhaustion during rewriting *enumeration*
//     degrades to a truncated best-so-far result instead of failing.

#ifndef EVE_COMMON_EXEC_CONTEXT_H_
#define EVE_COMMON_EXEC_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "common/status.h"

namespace eve {

/// A shared cooperative cancellation flag.  One token may govern many
/// contexts / operations; `Cancel()` is safe from any thread, including
/// concurrently with governed execution.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Deadline, cancellation, and budgets for one governed operation tree.
///
/// Configure with the With* setters (chainable; call before handing the
/// context to governed code), then pass by const reference -- consumption
/// accounting is internally atomic, so one context may be shared by
/// concurrent shards of the same operation.  Non-copyable; contexts are
/// cheap to construct per operation.
class ExecContext {
 public:
  using Clock = std::chrono::steady_clock;

  /// Sentinel for "no budget".
  static constexpr int64_t kUnlimited = INT64_MAX;
  /// Amortization stride of governed row loops: at most this many rows are
  /// processed between deadline/cancellation checks.
  static constexpr int64_t kCheckStride = 4096;

  ExecContext() = default;
  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  /// The process-wide ungoverned context: no deadline, no budgets, never
  /// cancelled.  Used as the default argument of every governed API.
  static const ExecContext& Unlimited();

  ExecContext& WithDeadline(Clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
    return *this;
  }
  ExecContext& WithDeadlineAfter(std::chrono::nanoseconds timeout) {
    return WithDeadline(Clock::now() + timeout);
  }
  /// Budget on row-level work units (rows scanned/emitted/gathered,
  /// closure edges expanded).
  ExecContext& WithRowBudget(int64_t rows) {
    row_budget_ = rows;
    return *this;
  }
  /// Budget on rewriting candidates admitted during enumeration.
  ExecContext& WithCandidateBudget(int64_t candidates) {
    candidate_budget_ = candidates;
    return *this;
  }
  /// Budget on bytes of transient working-set memory.
  ExecContext& WithMemoryBudget(int64_t bytes) {
    memory_budget_ = bytes;
    return *this;
  }
  /// `token` must outlive every operation governed by this context.
  ExecContext& WithCancelToken(const CancelToken* token) {
    cancel_ = token;
    return *this;
  }

  /// True when any governance knob is set -- callers may skip per-row
  /// accounting entirely when false.
  bool limited() const {
    return has_deadline_ || cancel_ != nullptr || row_budget_ != kUnlimited ||
           candidate_budget_ != kUnlimited || memory_budget_ != kUnlimited;
  }

  bool has_deadline() const { return has_deadline_; }
  Clock::time_point deadline() const { return deadline_; }

  /// Point check of cancellation then deadline (reads the clock).
  Status CheckNow() const;

  /// Charges `n` work units against the corresponding budget.  Returns
  /// ResourceExhausted once the cumulative consumption exceeds the budget;
  /// counters keep counting past exhaustion so the message reports the true
  /// overshoot.  Thread-safe; callable on a const shared context.
  Status ConsumeRows(int64_t n) const;
  Status ConsumeCandidates(int64_t n) const;
  Status ConsumeMemory(int64_t bytes) const;

  int64_t rows_used() const { return rows_used_.load(std::memory_order_relaxed); }
  int64_t candidates_used() const {
    return candidates_used_.load(std::memory_order_relaxed);
  }
  int64_t memory_used() const {
    return memory_used_.load(std::memory_order_relaxed);
  }
  int64_t row_budget() const { return row_budget_; }
  int64_t candidate_budget() const { return candidate_budget_; }
  int64_t memory_budget() const { return memory_budget_; }

  /// Rows still chargeable before ConsumeRows fails (kUnlimited when no row
  /// budget is set, 0 once exhausted).
  int64_t RowsRemaining() const;

 private:
  Clock::time_point deadline_{};
  bool has_deadline_ = false;
  const CancelToken* cancel_ = nullptr;
  int64_t row_budget_ = kUnlimited;
  int64_t candidate_budget_ = kUnlimited;
  int64_t memory_budget_ = kUnlimited;
  // Mutable: consumption accounting must work through the const reference
  // that governed code receives; atomics make it safe for shared contexts.
  mutable std::atomic<int64_t> rows_used_{0};
  mutable std::atomic<int64_t> candidates_used_{0};
  mutable std::atomic<int64_t> memory_used_{0};
};

/// Amortized per-loop charging front end for an ExecContext.
///
/// One governor per governed loop nest (NOT shared between threads; each
/// shard builds its own over the shared context).  `Charge(n)` is the
/// per-row/per-batch hot call: it only bumps a local counter until a stride
/// boundary, then flushes -- consuming the context's row budget and
/// checking cancellation + deadline.  The stride starts at
/// ExecContext::kCheckStride and tightens to the remaining row budget so
/// small budgets trip within one flush.  Call `Flush()` once after the loop
/// so the tail is charged before results are returned.
class ExecGovernor {
 public:
  explicit ExecGovernor(const ExecContext& ctx)
      : ctx_(&ctx), active_(ctx.limited()) {
    if (active_) stride_ = NextStride();
  }

  bool active() const { return active_; }

  Status Charge(int64_t n = 1) {
    if (!active_) return Status::OK();
    pending_ += n;
    if (pending_ < stride_) return Status::OK();
    return Flush();
  }

  /// Consumes the pending charge and performs a point check.
  Status Flush();

 private:
  int64_t NextStride() const;

  const ExecContext* ctx_;
  bool active_;
  int64_t pending_ = 0;
  int64_t stride_ = ExecContext::kCheckStride;
};

}  // namespace eve

#endif  // EVE_COMMON_EXEC_CONTEXT_H_
