#include "common/fault_injection.h"

#include <cstdio>
#include <cstdlib>

#include "common/result.h"
#include "common/str_util.h"

namespace eve {
namespace {

// SplitMix64: a deterministic 64-bit mixer; good enough to turn (seed,
// site, hit) into an unbiased coin.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double DeterministicCoin(uint64_t seed, const std::string& site, int64_t hit) {
  uint64_t h = seed;
  for (char c : site) h = Mix64(h ^ static_cast<unsigned char>(c));
  h = Mix64(h ^ static_cast<uint64_t>(hit));
  // 53 mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

Result<StatusCode> ParseCode(const std::string& name) {
  if (name == "internal") return StatusCode::kInternal;
  if (name == "deadline") return StatusCode::kDeadlineExceeded;
  if (name == "cancelled") return StatusCode::kCancelled;
  if (name == "resource") return StatusCode::kResourceExhausted;
  if (name == "failed") return StatusCode::kFailedPrecondition;
  if (name == "notfound") return StatusCode::kNotFound;
  if (name == "unavailable") return StatusCode::kUnavailable;
  return Status::InvalidArgument("unknown fault code '" + name + "'");
}

}  // namespace

FaultInjection& FaultInjection::Instance() {
  static FaultInjection* instance = new FaultInjection();
  return *instance;
}

FaultInjection::FaultInjection() {
  const char* env = std::getenv("EVE_FAULT_SPEC");
  if (env != nullptr && *env != '\0') {
    // Constructor context: nothing to return an error to; a malformed env
    // spec must not silently disable chaos, so fail loudly.
    const Status s = ArmFromString(env);
    if (!s.ok()) {
      std::fprintf(stderr, "EVE_FAULT_SPEC invalid: %s\n", s.ToString().c_str());
      std::abort();
    }
  }
}

void FaultInjection::Arm(const std::string& site, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = sites_.insert_or_assign(site, SiteState{spec, 0, 0});
  (void)it;
  if (inserted) armed_sites_.fetch_add(1, std::memory_order_relaxed);
}

Status FaultInjection::ArmFromString(const std::string& spec_text) {
  for (const std::string& raw : Split(spec_text, ';')) {
    const std::string entry(StripWhitespace(raw));
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("fault spec entry '" + entry +
                                     "' is not site=rule");
    }
    const std::string site = entry.substr(0, eq);
    std::string rule = entry.substr(eq + 1);
    FaultSpec spec;
    const size_t colon = rule.rfind(':');
    if (colon != std::string::npos) {
      EVE_ASSIGN_OR_RETURN(spec.code, ParseCode(rule.substr(colon + 1)));
      rule = rule.substr(0, colon);
    }
    if (rule.empty()) {
      return Status::InvalidArgument("fault spec entry '" + entry +
                                     "' has an empty rule");
    }
    if (rule[0] == 'p') {
      // Probabilistic: p<prob>@<seed>
      const size_t at = rule.find('@');
      if (at == std::string::npos) {
        return Status::InvalidArgument("probabilistic fault rule '" + rule +
                                       "' needs @<seed>");
      }
      char* end = nullptr;
      spec.probability = std::strtod(rule.c_str() + 1, &end);
      if (end != rule.c_str() + at || spec.probability < 0.0 ||
          spec.probability > 1.0) {
        return Status::InvalidArgument("bad fault probability in '" + rule + "'");
      }
      spec.seed = std::strtoull(rule.c_str() + at + 1, &end, 10);
      if (*end != '\0') {
        return Status::InvalidArgument("bad fault seed in '" + rule + "'");
      }
    } else {
      // Count window: <after>[+<count>], '*' count = unlimited.
      char* end = nullptr;
      spec.after = std::strtoll(rule.c_str(), &end, 10);
      if (end == rule.c_str() || spec.after < 0) {
        return Status::InvalidArgument("bad fault offset in '" + rule + "'");
      }
      if (*end == '+') {
        const char* count_text = end + 1;
        if (std::string(count_text) == "*") {
          spec.count = -1;
        } else {
          spec.count = std::strtoll(count_text, &end, 10);
          if (end == count_text || *end != '\0' || spec.count < 1) {
            return Status::InvalidArgument("bad fault count in '" + rule + "'");
          }
        }
      } else if (*end != '\0') {
        return Status::InvalidArgument("trailing junk in fault rule '" + rule +
                                       "'");
      }
    }
    Arm(site, spec);
  }
  return Status::OK();
}

void FaultInjection::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sites_.erase(site) > 0) {
    armed_sites_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultInjection::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
  armed_sites_.store(0, std::memory_order_relaxed);
}

Status FaultInjection::OnHit(const char* site) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sites_.find(site);
  if (it == sites_.end()) return Status::OK();
  SiteState& state = it->second;
  const int64_t hit = state.hits++;
  bool fire;
  if (state.spec.probability < 1.0) {
    fire = DeterministicCoin(state.spec.seed, it->first, hit) <
           state.spec.probability;
  } else {
    fire = hit >= state.spec.after &&
           (state.spec.count < 0 || hit < state.spec.after + state.spec.count);
  }
  if (!fire) return Status::OK();
  ++state.fired;
  return Status(state.spec.code,
                StrFormat("injected fault at %s (hit %lld)", site,
                          static_cast<long long>(hit + 1)));
}

int64_t FaultInjection::HitCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

int64_t FaultInjection::FiredCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fired;
}

std::vector<std::string> FaultInjection::ArmedSites() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(sites_.size());
  for (const auto& [site, state] : sites_) out.push_back(site);
  return out;
}

}  // namespace eve
