// Result<T>: a value-or-Status, the return type of fallible functions that
// produce a value.  Mirrors absl::StatusOr / arrow::Result.

#ifndef EVE_COMMON_RESULT_H_
#define EVE_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace eve {

/// Holds either a T or a non-OK Status.  Accessing the value of an errored
/// Result is a programming error (checked by assert in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error Status.  `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  /// Returns the contained value; requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` if this Result holds an error.
  T value_or(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }
  /// Rvalue overload: moves the contained value out instead of copying it,
  /// so `std::move(result).value_or(fb)` is cheap for heavy payloads.
  T value_or(T fallback) && {
    return ok() ? std::move(*value_) : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ has a value.
  std::optional<T> value_;
};

}  // namespace eve

/// Evaluates a Result<T> expression; on error returns the Status, otherwise
/// assigns the value to `lhs` (which may be a declaration).
///
/// Because `lhs` may be a declaration, the expansion is necessarily more
/// than one statement and REQUIRES an enclosing block.  Using it as the
/// body of a brace-less `if`/`else`/loop is a compile error (the temporary
/// named eve_assign_or_return_requires_block_scope_<line> goes out of scope
/// before its use) rather than a silent misbehavior, and the internal error
/// check is a complete if/else so a trailing user `else` can never bind
/// into the macro.
#define EVE_ASSIGN_OR_RETURN(lhs, expr)           \
  EVE_ASSIGN_OR_RETURN_IMPL_(                     \
      EVE_RESULT_CONCAT_(                         \
          eve_assign_or_return_requires_block_scope_, __LINE__), \
      lhs, expr)

#define EVE_RESULT_CONCAT_INNER_(a, b) a##b
#define EVE_RESULT_CONCAT_(a, b) EVE_RESULT_CONCAT_INNER_(a, b)

#define EVE_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (tmp.ok()) {                                  \
  } else /* NOLINT(readability/braces) */          \
    return tmp.status();                           \
  lhs = std::move(tmp).value()

#endif  // EVE_COMMON_RESULT_H_
