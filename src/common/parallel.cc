#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

namespace eve {

namespace {

// Set for every thread (workers and the caller) while it runs bodies of a
// multi-threaded ParallelFor; see InParallelRegion().
thread_local bool in_parallel_region = false;

}  // namespace

bool InParallelRegion() { return in_parallel_region; }

void ParallelFor(int64_t n, int threads,
                 const std::function<void(int64_t)>& body) {
  if (n <= 0) return;
  const int workers =
      static_cast<int>(std::min<int64_t>(std::max(threads, 1), n));
  if (workers == 1) {
    // Inline execution is not a parallel region: a nested section under a
    // serial outer loop may still fan out.
    for (int64_t i = 0; i < n; ++i) body(i);
    return;
  }

  std::atomic<int64_t> cursor{0};
  auto drain = [&] {
    const bool was_parallel = in_parallel_region;
    in_parallel_region = true;
    for (int64_t i = cursor.fetch_add(1, std::memory_order_relaxed); i < n;
         i = cursor.fetch_add(1, std::memory_order_relaxed)) {
      body(i);
    }
    in_parallel_region = was_parallel;  // Restore for the calling thread.
  };
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (int t = 0; t < workers - 1; ++t) pool.emplace_back(drain);
  drain();  // The calling thread is the last worker.
  for (std::thread& t : pool) t.join();
}

int DefaultThreadCount() {
  if (const char* env = std::getenv("EVE_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace eve
