#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace eve {

namespace {

// Set for every thread (workers and the caller) while it runs bodies of a
// multi-threaded ParallelFor; see InParallelRegion().
thread_local bool in_parallel_region = false;

}  // namespace

bool InParallelRegion() { return in_parallel_region; }

void ParallelFor(int64_t n, int threads,
                 const std::function<void(int64_t)>& body) {
  if (n <= 0) return;
  const int workers =
      static_cast<int>(std::min<int64_t>(std::max(threads, 1), n));
  if (workers == 1) {
    // Inline execution is not a parallel region: a nested section under a
    // serial outer loop may still fan out.
    for (int64_t i = 0; i < n; ++i) body(i);
    return;
  }

  std::atomic<int64_t> cursor{0};
  auto drain = [&] {
    const bool was_parallel = in_parallel_region;
    in_parallel_region = true;
    for (int64_t i = cursor.fetch_add(1, std::memory_order_relaxed); i < n;
         i = cursor.fetch_add(1, std::memory_order_relaxed)) {
      body(i);
    }
    in_parallel_region = was_parallel;  // Restore for the calling thread.
  };
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (int t = 0; t < workers - 1; ++t) pool.emplace_back(drain);
  drain();  // The calling thread is the last worker.
  for (std::thread& t : pool) t.join();
}

Status ParallelForStatus(int64_t n, int threads,
                         const std::function<Status(int64_t)>& body,
                         const ExecContext& ctx) {
  if (n <= 0) return Status::OK();
  const int workers =
      static_cast<int>(std::min<int64_t>(std::max(threads, 1), n));

  std::atomic<bool> stop{false};
  std::mutex error_mu;
  int64_t error_index = -1;
  Status first_error;
  auto record_error = [&](int64_t i, Status s) {
    stop.store(true, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(error_mu);
    if (error_index < 0 || i < error_index) {
      error_index = i;
      first_error = std::move(s);
    }
  };
  auto run_one = [&](int64_t i) {
    if (ctx.limited()) {
      Status s = ctx.CheckNow();
      if (!s.ok()) {
        record_error(i, std::move(s));
        return;
      }
    }
    Status s = body(i);
    if (!s.ok()) record_error(i, std::move(s));
  };

  if (workers == 1) {
    for (int64_t i = 0; i < n && !stop.load(std::memory_order_relaxed); ++i) {
      run_one(i);
    }
    return first_error;
  }

  std::atomic<int64_t> cursor{0};
  auto drain = [&] {
    const bool was_parallel = in_parallel_region;
    in_parallel_region = true;
    for (int64_t i = cursor.fetch_add(1, std::memory_order_relaxed);
         i < n && !stop.load(std::memory_order_relaxed);
         i = cursor.fetch_add(1, std::memory_order_relaxed)) {
      run_one(i);
    }
    in_parallel_region = was_parallel;  // Restore for the calling thread.
  };
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (int t = 0; t < workers - 1; ++t) pool.emplace_back(drain);
  drain();
  for (std::thread& t : pool) t.join();
  return first_error;
}

int DefaultThreadCount() {
  if (const char* env = std::getenv("EVE_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace eve
