#include "common/exec_context.h"

#include <algorithm>

#include "common/str_util.h"

namespace eve {

const ExecContext& ExecContext::Unlimited() {
  // Leaked singleton: immune to destruction-order issues from governed
  // static fixtures.
  static const ExecContext* unlimited = new ExecContext();
  return *unlimited;
}

Status ExecContext::CheckNow() const {
  if (cancel_ != nullptr && cancel_->cancelled()) {
    return Status::Cancelled("operation cancelled via CancelToken");
  }
  if (has_deadline_ && Clock::now() >= deadline_) {
    return Status::DeadlineExceeded("operation deadline exceeded");
  }
  return Status::OK();
}

namespace {

Status Exhausted(const char* what, int64_t used, int64_t budget) {
  return Status::ResourceExhausted(StrFormat(
      "%s budget exhausted: %lld used of %lld", what,
      static_cast<long long>(used), static_cast<long long>(budget)));
}

}  // namespace

Status ExecContext::ConsumeRows(int64_t n) const {
  const int64_t used = rows_used_.fetch_add(n, std::memory_order_relaxed) + n;
  if (used > row_budget_) return Exhausted("row", used, row_budget_);
  return Status::OK();
}

Status ExecContext::ConsumeCandidates(int64_t n) const {
  const int64_t used =
      candidates_used_.fetch_add(n, std::memory_order_relaxed) + n;
  if (used > candidate_budget_) {
    return Exhausted("candidate", used, candidate_budget_);
  }
  return Status::OK();
}

Status ExecContext::ConsumeMemory(int64_t bytes) const {
  const int64_t used =
      memory_used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (used > memory_budget_) return Exhausted("memory", used, memory_budget_);
  return Status::OK();
}

int64_t ExecContext::RowsRemaining() const {
  if (row_budget_ == kUnlimited) return kUnlimited;
  return std::max<int64_t>(0, row_budget_ - rows_used());
}

Status ExecGovernor::Flush() {
  if (!active_) return Status::OK();
  const int64_t n = pending_;
  pending_ = 0;
  if (n > 0) {
    EVE_RETURN_IF_ERROR(ctx_->ConsumeRows(n));
  }
  EVE_RETURN_IF_ERROR(ctx_->CheckNow());
  stride_ = NextStride();
  return Status::OK();
}

int64_t ExecGovernor::NextStride() const {
  const int64_t remaining = ctx_->RowsRemaining();
  if (remaining >= ExecContext::kCheckStride) return ExecContext::kCheckStride;
  // Trip on the first charge past the budget (never a zero stride).
  return remaining + 1;
}

}  // namespace eve
