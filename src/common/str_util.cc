#include "common/str_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace eve {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    // +1 for the terminating NUL vsnprintf always writes.
    std::vsnprintf(out.data(), static_cast<size_t>(needed) + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  return JoinMapped(parts, sep, [](const std::string& s) -> const std::string& { return s; });
}

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string FormatDouble(double value, int digits) {
  std::string out = StrFormat("%.*f", digits, value);
  // Trim trailing zeros, then a trailing '.'.
  const size_t dot = out.find('.');
  if (dot != std::string::npos) {
    size_t last = out.find_last_not_of('0');
    if (last == dot) last -= 1;
    out.erase(last + 1);
  }
  return out;
}

}  // namespace eve
