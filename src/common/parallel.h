// ParallelFor: a minimal fork-join loop for embarrassingly parallel index
// spaces (scenario sweeps over distribution grids, parallel view
// executions).  No work stealing, no task graph: an atomic cursor hands out
// indexes to `threads` workers until the range is drained.
//
// Determinism contract: the body receives each index exactly once, so a
// caller that writes result[i] from body(i) gets output independent of the
// thread count -- the property the experiment drivers rely on to keep
// multi-threaded stdout identical to the single-threaded run.

#ifndef EVE_COMMON_PARALLEL_H_
#define EVE_COMMON_PARALLEL_H_

#include <cstdint>
#include <functional>

#include "common/exec_context.h"
#include "common/status.h"

namespace eve {

/// Invokes `body(i)` for every i in [0, n) across up to `threads` worker
/// threads (the calling thread included).  `threads <= 1` runs the loop
/// inline with no thread creation.  `body` must be safe to call
/// concurrently for distinct indexes and must not throw.
void ParallelFor(int64_t n, int threads,
                 const std::function<void(int64_t)>& body);

/// Status-propagating ParallelFor: the first failure cancels the sibling
/// shards -- workers finish the body they are in, un-started indexes are
/// skipped -- and is returned (among concurrent failures, the one with the
/// lowest index wins, so single-threaded and multi-threaded runs report the
/// same error for deterministic bodies).  A limited `ctx` is re-checked
/// before each body, so cancellation and deadlines stop the sweep the same
/// way.  Determinism contract for OK runs: identical to ParallelFor.
Status ParallelForStatus(int64_t n, int threads,
                         const std::function<Status(int64_t)>& body,
                         const ExecContext& ctx = ExecContext::Unlimited());

/// Thread count for parallel sections: the EVE_THREADS environment variable
/// when set to a positive integer, else std::thread::hardware_concurrency()
/// (at least 1).
int DefaultThreadCount();

/// True while the calling thread is executing a body inside a
/// multi-threaded ParallelFor.  Nested parallel sections use this to stay
/// serial instead of oversubscribing the machine with
/// outer-threads x hardware-concurrency workers.
bool InParallelRegion();

}  // namespace eve

#endif  // EVE_COMMON_PARALLEL_H_
