// Deterministic pseudo-random number generation.  All stochastic behavior in
// the library (data generators, experiment sweeps) flows through Xoshiro256ss
// seeded explicitly, so every experiment and test is exactly reproducible.

#ifndef EVE_COMMON_RANDOM_H_
#define EVE_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace eve {

/// xoshiro256** by Blackman & Vigna: fast, high-quality, and tiny.
class Random {
 public:
  /// Seeds the generator deterministically from `seed` via SplitMix64.
  explicit Random(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound).  `bound` must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// True with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      const size_t j = static_cast<size_t>(Uniform(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

 private:
  uint64_t state_[4];
};

}  // namespace eve

#endif  // EVE_COMMON_RANDOM_H_
