// Hash-combining helpers for structural hashing of AST and constraint
// values.  Used by the executor's dedup paths and the synchronizer's
// rewriting dedup, replacing string-rendering keys on hot paths.

#ifndef EVE_COMMON_HASHING_H_
#define EVE_COMMON_HASHING_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

namespace eve {

/// Mixes `value` into `seed` (boost-style golden-ratio mix).
inline size_t HashCombine(size_t seed, size_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

inline size_t HashOf(const std::string& s) {
  return std::hash<std::string>{}(s);
}

inline size_t HashOf(int64_t v) { return std::hash<int64_t>{}(v); }

inline size_t HashOf(bool v) { return v ? 0x9e3779b9u : 0x85ebca6bu; }

}  // namespace eve

#endif  // EVE_COMMON_HASHING_H_
