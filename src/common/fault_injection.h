// Deterministic fault injection for chaos testing.
//
// Long-running paths declare named fault points:
//
//   Status Execute(...) {
//     EVE_FAULT_POINT("executor.probe");   // may `return` an injected error
//     ...
//   }
//
// With nothing armed the macro costs one relaxed atomic load and a
// predictable branch -- effectively free in release builds.  Tests (or an
// operator, via the EVE_FAULT_SPEC environment variable) arm specific sites
// with either count-window triggering ("fail the 3rd hit") or seeded
// probabilistic triggering ("fail 10% of hits, deterministically derived
// from a seed"), so every chaos run is reproducible.
//
// Spec grammar (EVE_FAULT_SPEC, ';'-separated entries):
//   site=<after>[+<count>][:<code>]   count window: skip <after> hits, then
//                                     fail <count> hits (default 1, '*' =
//                                     every later hit)
//   site=p<prob>@<seed>[:<code>]      probabilistic: fail with probability
//                                     <prob>, coin derived from (seed, site,
//                                     hit index)
// Codes: internal (default), deadline, cancelled, resource, failed,
// notfound.  Example:
//   EVE_FAULT_SPEC="executor.gather=0;mkb.closure=p0.25@42:resource"
//
// Fault points sit *before* the state mutations of their site, so an
// injected failure never leaves torn state -- re-running the operation
// after disarming must succeed byte-identically (asserted by the chaos
// suite).

#ifndef EVE_COMMON_FAULT_INJECTION_H_
#define EVE_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace eve {

/// Triggering rule for one armed site.
struct FaultSpec {
  /// Hits to let pass before firing (count-window mode).
  int64_t after = 0;
  /// Consecutive hits to fail once triggered; -1 = every hit from `after`.
  int64_t count = 1;
  /// Error category of the injected Status.
  StatusCode code = StatusCode::kInternal;
  /// When < 1.0, probabilistic mode: each hit fails with this probability,
  /// decided by a deterministic hash of (seed, site, hit index); `after`
  /// and `count` are ignored.
  double probability = 1.0;
  uint64_t seed = 0;
};

/// Process-wide fault-point registry.  All methods are thread-safe.
class FaultInjection {
 public:
  static FaultInjection& Instance();

  /// Convenience for call sites that cannot use EVE_FAULT_POINT (e.g.
  /// inside retry loops where returning is wrong): the enabled()-gated
  /// probe, returning the injected Status or OK.
  static Status Probe(const char* site) {
    FaultInjection& fi = Instance();
    if (!fi.enabled()) return Status::OK();
    return fi.OnHit(site);
  }

  /// True when at least one site is armed (relaxed load; the macro's fast
  /// path).
  bool enabled() const {
    return armed_sites_.load(std::memory_order_relaxed) > 0;
  }

  /// Arms `site` with `spec` (re-arming replaces the spec and resets the
  /// site's hit counters).
  void Arm(const std::string& site, FaultSpec spec);

  /// Parses and arms an EVE_FAULT_SPEC-grammar string (see file comment).
  Status ArmFromString(const std::string& spec_text);

  void Disarm(const std::string& site);

  /// Disarms every site and clears all counters.
  void Reset();

  /// Records a hit on `site`; returns the injected Status when the site is
  /// armed and its rule fires, OK otherwise.
  Status OnHit(const char* site);

  /// Total hits observed on `site` while armed (0 when never armed).
  int64_t HitCount(const std::string& site) const;
  /// Hits on `site` that actually injected a failure.
  int64_t FiredCount(const std::string& site) const;

  std::vector<std::string> ArmedSites() const;

 private:
  FaultInjection();  // Arms from EVE_FAULT_SPEC when set.

  struct SiteState {
    FaultSpec spec;
    int64_t hits = 0;
    int64_t fired = 0;
  };

  mutable std::mutex mu_;
  std::map<std::string, SiteState> sites_;
  std::atomic<int64_t> armed_sites_{0};
};

}  // namespace eve

/// Declares a named fault point: when armed and triggered, returns the
/// injected error Status from the enclosing function.  Expands to a
/// complete if/else chain (single-statement-safe, no dangling else).
#define EVE_FAULT_POINT(site)                                        \
  if (!::eve::FaultInjection::Instance().enabled()) {                \
  } else if (::eve::Status _eve_fault_status__ =                     \
                 ::eve::FaultInjection::Instance().OnHit(site);      \
             _eve_fault_status__.ok()) {                             \
  } else /* NOLINT(readability/braces) */                            \
    return _eve_fault_status__

#endif  // EVE_COMMON_FAULT_INJECTION_H_
