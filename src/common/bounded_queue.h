// BoundedQueue: a small MPMC FIFO with a hard capacity bound and explicit
// close semantics, used as the serving front end's admission queue
// (serve/frontend.h).
//
// Admission never blocks: TryPush rejects immediately when the queue is
// full or closed, so overload turns into a load-shedding decision at the
// caller instead of unbounded queueing.  Consumers block in Pop until an
// item arrives or the queue is closed AND drained -- close-then-drain lets
// a shutting-down worker pool finish the requests it already admitted.
//
// This is deliberately a mutex+condvar queue, not a lock-free ring: the
// queue sits on the admission path (thousands of ops/sec), not the
// execution path (the lock-free epoch snapshots own that), and the simple
// form is easy to prove correct.

#ifndef EVE_COMMON_BOUNDED_QUEUE_H_
#define EVE_COMMON_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace eve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}
  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueues `item` unless the queue is full or closed; never blocks.
  /// Returns whether the item was admitted; on false the item is NOT
  /// moved from, so the caller can still complete/reroute it (the
  /// load-shedding path needs the rejected request back).
  bool TryPush(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// Dequeues the oldest item, blocking while the queue is open but empty.
  /// Returns nullopt once the queue is closed and fully drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    ready_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Rejects all future pushes and wakes every blocked consumer; already
  /// queued items remain poppable (drain-then-exit shutdown).
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace eve

#endif  // EVE_COMMON_BOUNDED_QUEUE_H_
