// Internal invariant checks.  EVE_CHECK aborts with a message on violation;
// it is for programming errors only -- user-facing failures use Status.

#ifndef EVE_COMMON_CHECK_H_
#define EVE_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define EVE_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "EVE_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (false)

#define EVE_CHECK_MSG(cond, msg)                                            \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "EVE_CHECK failed at %s:%d: %s (%s)\n", __FILE__, \
                   __LINE__, #cond, msg);                                   \
      std::abort();                                                         \
    }                                                                       \
  } while (false)

#endif  // EVE_COMMON_CHECK_H_
