#include "common/status.h"

namespace eve {

namespace {
const std::string kEmptyString;  // Returned for OK statuses.
}  // namespace

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    rep_ = std::make_unique<Rep>(Rep{code, std::move(message)});
  }
}

Status::Status(const Status& other) {
  if (other.rep_ != nullptr) rep_ = std::make_unique<Rep>(*other.rep_);
}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    rep_ = other.rep_ == nullptr ? nullptr : std::make_unique<Rep>(*other.rep_);
  }
  return *this;
}

Status Status::InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
Status Status::NotFound(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
Status Status::AlreadyExists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
Status Status::FailedPrecondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
Status Status::OutOfRange(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
Status Status::ParseError(std::string msg) {
  return Status(StatusCode::kParseError, std::move(msg));
}
Status Status::Internal(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}
Status Status::Unimplemented(std::string msg) {
  return Status(StatusCode::kUnimplemented, std::move(msg));
}
Status Status::DeadlineExceeded(std::string msg) {
  return Status(StatusCode::kDeadlineExceeded, std::move(msg));
}
Status Status::Cancelled(std::string msg) {
  return Status(StatusCode::kCancelled, std::move(msg));
}
Status Status::ResourceExhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
Status Status::Unavailable(std::string msg) {
  return Status(StatusCode::kUnavailable, std::move(msg));
}

const std::string& Status::message() const {
  return rep_ == nullptr ? kEmptyString : rep_->message;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

}  // namespace eve
