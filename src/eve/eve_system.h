// EveSystem: the end-to-end Evolvable View Environment (paper Fig. 1).
//
// It owns the information space, the Meta Knowledge Base, and the View
// Knowledge Base, and wires together the view synchronizer, the QC-Model,
// the query executor, and the incremental view maintainer.
//
// Lifecycle of a capability change (NotifySchemaChange):
//   1. identify the affected views (VKB lookup);
//   2. synchronize each against the PRE-change MKB (the constraints about
//      the disappearing capability license its replacement);
//   3. rank the legal rewritings with the QC-Model and adopt the best one
//      (or mark the view dead when none exists);
//   4. apply the change to the information space and evolve the MKB;
//   5. rematerialize the adopted rewritings.

#ifndef EVE_EVE_EVE_SYSTEM_H_
#define EVE_EVE_EVE_SYSTEM_H_

#include <memory>
#include <string>
#include <vector>

#include "common/exec_context.h"
#include "common/result.h"
#include "esql/ast.h"
#include "maintenance/maintainer.h"
#include "misd/mkb.h"
#include "plan/plan_cache.h"
#include "policy/policy.h"
#include "policy/ranker.h"
#include "qc/ranking.h"
#include "serve/snapshot.h"
#include "space/information_space.h"
#include "synch/synchronizer.h"
#include "types/string_pool.h"
#include "vkb/view_knowledge_base.h"

namespace eve {

/// Per-view outcome of one capability change.
struct ViewSynchronizationReport {
  std::string view_name;
  bool affected = false;
  /// True when the governed rewriting enumeration stopped early (deadline /
  /// candidate budget): the ranking covers the best-so-far legal rewritings
  /// only.  Never set when the system runs ungoverned.
  bool truncated = false;
  ViewState resulting_state = ViewState::kAlive;
  /// Ranked legal rewritings (best first); empty when unaffected or dead.
  std::vector<RankedRewriting> ranking;
  /// Compact E-SQL of the adopted rewriting (empty when none).
  std::string adopted;
  /// What the policy layer decided for this (change, view) pair.  Always
  /// kFull under PolicyMode::kExhaustive, so exhaustive reports render
  /// byte-identically to the seed's (the annotation only prints for the
  /// selective actions).
  PolicyAction policy_action = PolicyAction::kFull;

  std::string ToString() const;
};

/// Outcome of NotifySchemaChange across all views.
struct ChangeReport {
  std::string change;
  std::vector<ViewSynchronizationReport> views;
  int mkb_constraints_dropped = 0;

  std::string ToString() const;
};

/// Configuration of an EveSystem.
struct EveOptions {
  SynchronizerOptions synchronizer;
  QcParameters qc;
  CostModelOptions cost;
  WorkloadOptions workload;
  MaintainerOptions maintainer;
  /// Materialize view extents on definition and after synchronization.
  bool materialize = true;
  /// Adopt the first legal rewriting the synchronizer generates instead of
  /// the QC-Model's top pick.  This reproduces the behavior of the original
  /// EVE prototype (paper §8) and exists for head-to-head comparisons; the
  /// ranking is still computed for reporting.
  bool adopt_first_legal = false;
  /// The selective rewriting policy (policy/policy.h).  The default
  /// (PolicyMode::kExhaustive) bypasses the decision layer entirely and is
  /// byte-identical to the seed's always-enumerate behavior.
  PolicyConfig policy;
  /// Optional adoption ranker plugin (policy/ranker.h).  Null adopts the
  /// QC-Model's top pick (the paper's behavior).  When set, the QC ranking
  /// is still computed and reported, but the adopted rewriting is the
  /// ranker's stable argmax.  Requires the delta enumeration pipeline.
  std::shared_ptr<const CandidateRanker> ranker;
  /// Worker threads for the per-view enumerate+rank loop of
  /// NotifySchemaChange (the views are independent: each synchronizes
  /// against the same PRE-change MKB, whose memos are mutex-populated).
  /// 0 picks DefaultThreadCount(); 1 forces the serial loop.  Parallelism
  /// only engages for ungoverned runs with no armed fault sites and when
  /// not already inside a parallel region -- in every such case the
  /// ChangeReport is byte-identical to the serial loop's (reports are
  /// collected in deterministic candidate order and the lowest-index hard
  /// error wins), so the serial path stays the equivalence oracle.
  int synchronize_threads = 0;
  /// Optional resource governance for every long-running path the system
  /// drives (synchronization, materialization, maintenance).  Borrowed, not
  /// owned -- must outlive the system.  Null runs ungoverned.
  ///
  /// Degradation semantics: a deadline or candidate-budget stop during
  /// rewriting enumeration adopts the best rewriting found in time and
  /// marks the report truncated; it never falsely declares a view dead (a
  /// truncated enumeration with NO rewriting found is an error, since
  /// neither adoption nor death can be decided).  Stops during execution /
  /// materialization are hard errors, raised before any state mutation.
  const ExecContext* exec = nullptr;
};

/// The EVE system facade.
class EveSystem {
 public:
  explicit EveSystem(EveOptions options = {});

  // --- Registration ---------------------------------------------------------

  /// Registers a relation (schema + data) at `site`; records capabilities
  /// and statistics in the MKB.
  Status RegisterRelation(const std::string& site, Relation relation,
                          double local_selectivity = 1.0);

  Status AddJoinConstraint(JoinConstraint jc);
  Status AddPcConstraint(PcConstraint pc);
  /// Parses and installs a constraint declaration ("JOIN CONSTRAINT ..." /
  /// "PC CONSTRAINT ..."; see esql/constraint_parser.h).
  Status DeclareConstraint(const std::string& text);
  void SetJoinSelectivity(double js);

  // --- Views -----------------------------------------------------------------

  /// Parses and registers an E-SQL view; materializes it when configured.
  Status DefineView(const std::string& esql_text);
  Status DefineView(ViewDefinition definition);

  /// The current (possibly evolved) definition of a view.
  Result<ViewDefinition> GetViewDefinition(const std::string& name) const;
  Result<ViewState> GetViewState(const std::string& name) const;
  Result<Relation> GetViewExtent(const std::string& name) const;
  Result<const ViewEntry*> GetViewEntry(const std::string& name) const;

  // --- Evolution --------------------------------------------------------------

  /// Processes a capability change end to end (see class comment).
  Result<ChangeReport> NotifySchemaChange(const SchemaChange& change);

  /// Processes a data update: applies it to the space and incrementally
  /// maintains every materialized view.  Returns per-view counters summed.
  Result<MaintenanceCounters> NotifyDataUpdate(const DataUpdate& update);

  // --- Access to the underlying components ------------------------------------

  const InformationSpace& space() const { return space_; }
  InformationSpace& space() { return space_; }
  const MetaKnowledgeBase& mkb() const { return mkb_; }
  MetaKnowledgeBase& mkb() { return mkb_; }
  const ViewKnowledgeBase& vkb() const { return vkb_; }
  const EveOptions& options() const { return options_; }
  EveOptions& options() { return options_; }
  /// Cumulative per-decision counters of the policy layer across every
  /// NotifySchemaChange since construction (or the last reset).
  const PolicyStats& policy_stats() const { return policy_stats_; }
  void ResetPolicyStats() { policy_stats_ = PolicyStats{}; }
  /// Prepared plans for (re)materialization.  Cleared on every schema
  /// change; stale entries from data updates revalidate lazily against
  /// relation versions.
  const PlanCache& plan_cache() const { return plan_cache_; }
  /// This system's string intern pool.  Bulk loaders should intern string
  /// Values here (`Value(text, system.string_pool())`) so unrelated systems
  /// never contend on the process-wide default pool; cross-pool Values
  /// still compare equal by content (see types/string_pool.h).
  StringPool& string_pool() { return string_pool_; }
  const StringPool& string_pool() const { return string_pool_; }

  // --- Snapshot publication (serve/snapshot.h) ---------------------------------

  /// The epoch publisher: every successful registration, view definition,
  /// schema change, and data update captures and atomically publishes a
  /// fresh immutable SystemSnapshot here.  Concurrent readers (the serving
  /// front end, serve/frontend.h) pin epochs with snapshots().Current()
  /// and never touch the live space.
  const SnapshotPublisher& snapshots() const { return publisher_; }

  /// Re-attempts snapshot publication (recovery after a failed swap left
  /// snapshots() stale).  Idempotent; fails only when capture/swap fails
  /// again, in which case the old epoch keeps serving.
  Status RefreshSnapshot();

  /// RAII suppression of per-mutation snapshot publication for bulk loads.
  /// Capture is O(columns across the whole space), so registering N
  /// relations publishes O(N^2) column handles; a batch defers to ONE
  /// publish when the scope closes (only if any suppressed publish was
  /// requested).  Committed mutations are never deferred -- only their
  /// epoch publication is.  Single-writer, like every mutating entry point.
  class SnapshotBatch {
   public:
    explicit SnapshotBatch(EveSystem& system) : system_(system) {
      ++system_.snapshot_batch_depth_;
    }
    ~SnapshotBatch() {
      if (--system_.snapshot_batch_depth_ == 0 &&
          system_.snapshot_batch_dirty_) {
        system_.snapshot_batch_dirty_ = false;
        (void)system_.PublishSnapshot();
      }
    }
    SnapshotBatch(const SnapshotBatch&) = delete;
    SnapshotBatch& operator=(const SnapshotBatch&) = delete;

   private:
    EveSystem& system_;
  };

 private:
  Status Materialize(const std::string& view_name);

  /// Captures and publishes the current space + alive views as a new
  /// epoch.  On failure (fault site `eve.snapshot_swap`) the triggering
  /// mutation STAYS COMMITTED: the publisher is marked stale, the old
  /// epoch keeps serving, and the next successful publish recovers --
  /// graceful degradation instead of a torn mutation.
  Status PublishSnapshot();

  /// The governing context (Unlimited when options_.exec is null).
  const ExecContext& ExecCtx() const {
    return options_.exec != nullptr ? *options_.exec : ExecContext::Unlimited();
  }

  EveOptions options_;
  InformationSpace space_;
  MetaKnowledgeBase mkb_;
  ViewKnowledgeBase vkb_;
  PlanCache plan_cache_;
  SnapshotPublisher publisher_;
  PolicyStats policy_stats_;
  int snapshot_batch_depth_ = 0;
  bool snapshot_batch_dirty_ = false;
  /// Owned intern pool for this system's string data.  Values are trivially
  /// destructible, so teardown order does not matter; the pool only has to
  /// outlive reads of the Values interned into it, which it does because
  /// both live exactly as long as this system.
  StringPool string_pool_;
};

}  // namespace eve

#endif  // EVE_EVE_EVE_SYSTEM_H_
