#include "eve/eve_system.h"

#include "common/fault_injection.h"
#include "common/parallel.h"
#include "common/str_util.h"
#include "esql/constraint_parser.h"
#include "esql/parser.h"
#include "esql/printer.h"

namespace eve {

std::string ViewSynchronizationReport::ToString() const {
  std::string out = "view " + view_name + ": ";
  if (!affected) {
    out += "unaffected";
    // The annotation prints only for selective policy decisions, so
    // exhaustive-mode reports stay byte-identical to the seed's.
    if (policy_action == PolicyAction::kSkipUnaffected) {
      out += " [policy: skip-unaffected]";
    }
    return out;
  }
  out += std::string(ViewStateToString(resulting_state));
  // Only governed runs can truncate, so ungoverned reports are unchanged.
  if (truncated) out += " [truncated]";
  if (policy_action == PolicyAction::kSkipDead) {
    out += " [policy: skip-dead]";
  } else if (policy_action == PolicyAction::kCap) {
    out += " [policy: cap]";
  }
  if (!ranking.empty()) {
    out += StrFormat(" (%d legal rewritings)\n",
                     static_cast<int>(ranking.size()));
    out += QcModel::FormatRanking(ranking);
    out += "adopted: " + adopted;
  }
  return out;
}

std::string ChangeReport::ToString() const {
  std::string out = "=== " + change + " ===\n";
  for (const ViewSynchronizationReport& r : views) out += r.ToString() + "\n";
  if (mkb_constraints_dropped > 0) {
    out += StrFormat("(MKB dropped %d constraints)\n", mkb_constraints_dropped);
  }
  return out;
}

EveSystem::EveSystem(EveOptions options) : options_(std::move(options)) {
  // Epoch 1 exists from birth so snapshots().Current() is never null; an
  // empty space is a perfectly valid (empty) snapshot.  Fault injection is
  // per-site armed state, so this cannot fail outside armed tests; a
  // failure here simply leaves the publisher stale until the first
  // successful mutation publish.
  (void)PublishSnapshot();
}

Status EveSystem::PublishSnapshot() {
  if (snapshot_batch_depth_ > 0) {
    // Bulk load in progress: remember that an epoch is owed and let the
    // closing SnapshotBatch publish once for the whole batch.
    snapshot_batch_dirty_ = true;
    return Status::OK();
  }
  // The fault point sits BEFORE the capture/swap: an injected failure
  // leaves the previous epoch fully intact (nothing half-swapped), the
  // triggering mutation committed, and the publisher marked stale so
  // callers know Current() lags the live space.
  const Status faulted = [&]() -> Status {
    EVE_FAULT_POINT("eve.snapshot_swap");
    return Status::OK();
  }();
  if (!faulted.ok()) {
    publisher_.MarkStale();
    return faulted;
  }
  publisher_.Publish(SystemSnapshot::Capture(space_, &vkb_));
  return Status::OK();
}

Status EveSystem::RefreshSnapshot() { return PublishSnapshot(); }

Status EveSystem::RegisterRelation(const std::string& site, Relation relation,
                                   double local_selectivity) {
  EVE_RETURN_IF_ERROR(space_.AddRelation(site, std::move(relation), &mkb_,
                                         local_selectivity));
  (void)PublishSnapshot();  // Failure degrades to a stale epoch, not an error.
  return Status::OK();
}

Status EveSystem::AddJoinConstraint(JoinConstraint jc) {
  return mkb_.AddJoinConstraint(std::move(jc));
}

Status EveSystem::AddPcConstraint(PcConstraint pc) {
  return mkb_.AddPcConstraint(std::move(pc));
}

Status EveSystem::DeclareConstraint(const std::string& text) {
  return eve::DeclareConstraint(text, &mkb_);
}

void EveSystem::SetJoinSelectivity(double js) {
  mkb_.stats().set_join_selectivity(js);
}

Status EveSystem::DefineView(const std::string& esql_text) {
  EVE_ASSIGN_OR_RETURN(ViewDefinition def, ParseViewDefinition(esql_text));
  return DefineView(std::move(def));
}

Status EveSystem::DefineView(ViewDefinition definition) {
  const std::string name = definition.name;
  EVE_RETURN_IF_ERROR(vkb_.Define(std::move(definition)));
  if (options_.materialize) {
    const Status status = Materialize(name);
    if (!status.ok()) {
      // Roll back the registration so a failed definition leaves no trace.
      (void)vkb_.Drop(name);
      return status;
    }
  }
  (void)PublishSnapshot();
  return Status::OK();
}

Status EveSystem::Materialize(const std::string& view_name) {
  // Before the recompute: a fault here leaves the previous extent intact.
  EVE_FAULT_POINT("eve.materialize");
  EVE_ASSIGN_OR_RETURN(const ViewEntry* entry, vkb_.Get(view_name));
  ViewMaintainer maintainer(space_, options_.maintainer, &plan_cache_);
  EVE_ASSIGN_OR_RETURN(Relation extent,
                       maintainer.Recompute(entry->definition, ExecCtx()));
  return vkb_.SetExtent(view_name, std::move(extent));
}

Result<ViewDefinition> EveSystem::GetViewDefinition(
    const std::string& name) const {
  EVE_ASSIGN_OR_RETURN(const ViewEntry* entry, vkb_.Get(name));
  return entry->definition;
}

Result<ViewState> EveSystem::GetViewState(const std::string& name) const {
  EVE_ASSIGN_OR_RETURN(const ViewEntry* entry, vkb_.Get(name));
  return entry->state;
}

Result<Relation> EveSystem::GetViewExtent(const std::string& name) const {
  EVE_ASSIGN_OR_RETURN(const ViewEntry* entry, vkb_.Get(name));
  if (entry->state == ViewState::kDead) {
    return Status::FailedPrecondition("view " + name + " is dead");
  }
  if (!entry->materialized) {
    return Status::FailedPrecondition("view " + name + " is not materialized");
  }
  // Set semantics for consumers; the stored extent is a bag of derivations.
  return entry->extent.Distinct();
}

Result<const ViewEntry*> EveSystem::GetViewEntry(const std::string& name) const {
  return vkb_.Get(name);
}

Result<ChangeReport> EveSystem::NotifySchemaChange(const SchemaChange& change) {
  ChangeReport report;
  report.change = SchemaChangeToString(change);
  if (options_.ranker != nullptr &&
      !options_.synchronizer.use_delta_enumeration) {
    return Status::InvalidArgument(
        "an adoption ranker requires the delta enumeration pipeline "
        "(synchronizer.use_delta_enumeration)");
  }

  // 1. Affected views.  Site resolution uses the space's cached name map,
  // rebuilt only after relation-level changes instead of rescanning every
  // source on every notification.
  const auto site_of = space_.RelationSiteMap();
  const std::vector<std::string> candidates =
      vkb_.ViewsReferencing(ChangedRelation(change), *site_of);

  // 2-3. Synchronize against the PRE-change MKB and rank.  The per-view
  // work is read-only and independent (the MKB memos are mutex-populated),
  // so it runs under ParallelFor into fixed outcome slots; the serial
  // assembly below walks the slots in candidate order, which keeps the
  // report byte-identical to the serial loop regardless of thread count.
  ViewSynchronizer synchronizer(mkb_, options_.synchronizer);
  QcModel model(options_.qc, options_.cost, options_.workload);
  // The selective policy decides skip / cap / full per (change, view) pair
  // BEFORE any enumeration.  In exhaustive mode Decide returns kFull
  // unconditionally, so the shared synchronizer path below is the seed's.
  const PolicyEngine policy_engine(mkb_, options_.policy,
                                   options_.synchronizer);
  struct Outcome {
    ViewSynchronizationReport view_report;
    bool dead = false;
    ViewDefinition chosen;  ///< The adopted definition (affected && !dead).
    PolicyAction action = PolicyAction::kFull;
    int64_t considered = 0;  ///< Enumeration work spent on this view.
  };
  std::vector<Outcome> outcomes(candidates.size());

  const auto synchronize_one = [&](int64_t index) -> Status {
    const std::string& view_name = candidates[index];
    Outcome& out = outcomes[index];
    EVE_ASSIGN_OR_RETURN(const ViewEntry* entry, vkb_.Get(view_name));
    ViewSynchronizationReport& view_report = out.view_report;
    view_report.view_name = view_name;

    const PolicyDecision decision =
        policy_engine.Decide(entry->definition, change);
    out.action = decision.action;
    view_report.policy_action = decision.action;
    if (decision.action == PolicyAction::kSkipUnaffected) {
      view_report.affected = false;
      return Status::OK();
    }
    if (decision.action == PolicyAction::kSkipDead) {
      view_report.affected = true;
      view_report.resulting_state = ViewState::kDead;
      out.dead = true;
      return Status::OK();
    }

    // Delta pipeline (default): candidates stay as (base, op-log) pairs
    // through scoring; only the ranked output and the adopted definition
    // ever materialize.  The eager branch is the retained oracle and
    // produces the identical report (tested).
    bool affected = false;
    bool dead = false;
    bool truncated = false;
    std::string truncation_reason;
    ViewDefinition first_legal;
    ViewDefinition ranker_choice;
    if (options_.synchronizer.use_delta_enumeration) {
      // A cap decision tightens the strategy set / result cap for this one
      // pair; the per-pair synchronizer is cheap (it only captures options).
      CandidateSynchronizationResult sync;
      if (decision.action == PolicyAction::kCap) {
        ViewSynchronizer capped(mkb_, decision.options);
        EVE_ASSIGN_OR_RETURN(sync,
                             capped.SynchronizeCandidates(entry->definition,
                                                          change, ExecCtx()));
      } else {
        EVE_ASSIGN_OR_RETURN(sync, synchronizer.SynchronizeCandidates(
                                       entry->definition, change, ExecCtx()));
      }
      affected = sync.affected;
      truncated = sync.truncated;
      truncation_reason = std::move(sync.truncation_reason);
      out.considered = sync.candidates_considered;
      // A truncated empty result proves nothing: the view may well have
      // rewritings the budget never reached, so death is only declared
      // from a COMPLETE enumeration (checked below).
      dead = sync.affected && sync.candidates.empty() && !truncated;
      if (!dead && sync.affected && !sync.candidates.empty()) {
        if (options_.adopt_first_legal) {
          first_legal = sync.candidates.front().Definition();
        }
        if (options_.ranker != nullptr) {
          // Stable argmax of the plugin's scores decides adoption; the QC
          // ranking below is still computed and reported unchanged.
          EVE_ASSIGN_OR_RETURN(
              const std::vector<double> scores,
              options_.ranker->Score(entry->definition, sync.candidates,
                                     mkb_));
          size_t pick = 0;
          for (size_t s = 1; s < scores.size(); ++s) {
            if (scores[s] > scores[pick]) pick = s;
          }
          ranker_choice = sync.candidates[pick].Definition();
        }
        EVE_ASSIGN_OR_RETURN(view_report.ranking,
                             model.RankCandidates(entry->definition,
                                                  std::move(sync.candidates),
                                                  mkb_));
      }
    } else {
      EVE_ASSIGN_OR_RETURN(SynchronizationResult sync,
                           synchronizer.Synchronize(entry->definition, change));
      affected = sync.affected;
      dead = sync.affected && sync.rewritings.empty();
      if (!dead && sync.affected) {
        if (options_.adopt_first_legal) {
          first_legal = sync.rewritings.front().definition;
        }
        EVE_ASSIGN_OR_RETURN(
            view_report.ranking,
            model.Rank(entry->definition, std::move(sync.rewritings), mkb_));
      }
    }
    if (affected && truncated && view_report.ranking.empty() &&
        first_legal.name.empty()) {
      // Neither adoption nor death can be decided for this view; fail the
      // whole change BEFORE any state mutation (steps 4-5 have not run).
      return Status::ResourceExhausted(
          "synchronization of view " + view_name +
          " was cut off before any legal rewriting was found (" +
          truncation_reason + "); raise the budget/deadline and renotify");
    }

    view_report.affected = affected;
    view_report.truncated = truncated;
    if (!affected) return Status::OK();
    if (dead) {
      view_report.resulting_state = ViewState::kDead;
      out.dead = true;
      return Status::OK();
    }
    view_report.resulting_state = ViewState::kAlive;
    if (options_.adopt_first_legal) {
      out.chosen = std::move(first_legal);
    } else if (!ranker_choice.name.empty()) {
      out.chosen = std::move(ranker_choice);
    } else {
      out.chosen = view_report.ranking.front().rewriting.definition;
    }
    view_report.adopted = PrintViewCompact(out.chosen);
    return Status::OK();
  };

  // Determinism guards: governed runs share budget/deadline state across
  // views in notification order, and armed fault sites fire on exact hit
  // counts -- both must see the serial order.  Nested parallel sections
  // stay serial as everywhere (ranking's inner ParallelFor does the same).
  int workers = options_.synchronize_threads > 0 ? options_.synchronize_threads
                                                 : DefaultThreadCount();
  if (candidates.size() < 2 || ExecCtx().limited() ||
      FaultInjection::Instance().enabled() || InParallelRegion()) {
    workers = 1;
  }
  // Among concurrent failures the lowest candidate index wins, so the
  // reported error matches the serial loop's.
  EVE_RETURN_IF_ERROR(ParallelForStatus(
      static_cast<int64_t>(candidates.size()), workers, synchronize_one));

  struct Pending {
    std::string view;
    ViewDefinition new_def;
  };
  std::vector<Pending> adoptions;
  std::vector<std::string> deaths;
  for (size_t i = 0; i < outcomes.size(); ++i) {
    Outcome& out = outcomes[i];
    ++policy_stats_.decisions;
    switch (out.action) {
      case PolicyAction::kFull:
        ++policy_stats_.full;
        break;
      case PolicyAction::kCap:
        ++policy_stats_.capped;
        break;
      case PolicyAction::kSkipUnaffected:
        ++policy_stats_.skipped_unaffected;
        break;
      case PolicyAction::kSkipDead:
        ++policy_stats_.skipped_dead;
        break;
    }
    policy_stats_.candidates_considered += out.considered;
    policy_stats_.candidates_ranked +=
        static_cast<int64_t>(out.view_report.ranking.size());
    if (out.view_report.affected) {
      if (out.dead) {
        deaths.push_back(candidates[i]);
      } else {
        adoptions.push_back(Pending{candidates[i], std::move(out.chosen)});
      }
    }
    report.views.push_back(std::move(out.view_report));
  }

  // 4. Apply the change to space + MKB.  Every prepared plan may reference
  // restructured relations, so the plan cache starts a fresh epoch.
  // Last cancellation/deadline poll before the commit point: steps 4-5
  // mutate space, MKB, and VKB, and must run to completion once started
  // (rematerialization failures below are therefore not suppressed either).
  EVE_RETURN_IF_ERROR(ExecCtx().CheckNow());
  EVE_ASSIGN_OR_RETURN(report.mkb_constraints_dropped,
                       space_.ApplySchemaChange(change, &mkb_));
  plan_cache_.Clear();

  // 5. Adopt rewritings and rematerialize; record deaths.
  for (const std::string& view_name : deaths) {
    EVE_RETURN_IF_ERROR(vkb_.MarkDead(view_name, report.change));
  }
  for (Pending& p : adoptions) {
    EVE_RETURN_IF_ERROR(
        vkb_.ReplaceDefinition(p.view, std::move(p.new_def), report.change));
    if (options_.materialize) {
      EVE_RETURN_IF_ERROR(Materialize(p.view));
    }
  }
  // Publish the post-change epoch.  Readers pinned to the pre-change epoch
  // keep serving the OLD space and view definitions (graceful degradation
  // during evolutions); a failed publish leaves them on that old epoch and
  // marks the publisher stale, never tears the committed change.
  (void)PublishSnapshot();
  return report;
}

Result<MaintenanceCounters> EveSystem::NotifyDataUpdate(
    const DataUpdate& update) {
  MaintenanceCounters total;
  ViewMaintainer maintainer(space_, options_.maintainer);

  // For inserts: apply to the space first, then maintain (the maintainer
  // joins the delta against the *other* relations only, so order is safe);
  // for deletes: maintain first so semantics match either way, then apply.
  if (update.kind == UpdateKind::kInsert) {
    EVE_RETURN_IF_ERROR(space_.ApplyDataUpdate(update));
  }
  for (const std::string& view_name : vkb_.ViewNames()) {
    EVE_ASSIGN_OR_RETURN(ViewEntry * entry, vkb_.GetMutable(view_name));
    if (entry->state != ViewState::kAlive || !entry->materialized) continue;
    EVE_ASSIGN_OR_RETURN(MaintenanceCounters counters,
                         maintainer.ProcessUpdate(entry->definition, update,
                                                  &entry->extent, ExecCtx()));
    total += counters;
  }
  if (update.kind == UpdateKind::kDelete) {
    EVE_RETURN_IF_ERROR(space_.ApplyDataUpdate(update));
  }
  (void)PublishSnapshot();
  return total;
}

}  // namespace eve
