#include "expr/selectivity.h"

#include <unordered_set>

namespace eve {

Result<double> MeasureSelectivity(const Relation& rel,
                                  const std::string& rel_name,
                                  const Conjunction& conjunction) {
  if (conjunction.IsTrue()) return 1.0;
  if (rel.empty()) return 0.0;
  Binding binding;
  for (int i = 0; i < rel.schema().size(); ++i) {
    EVE_RETURN_IF_ERROR(
        binding.Register(RelAttr{rel_name, rel.schema().attribute(i).name}, i));
  }
  EVE_ASSIGN_OR_RETURN(std::vector<BoundClause> bound,
                       BindAll(conjunction, binding));
  // One mask kernel pass per clause over the contiguous columns.
  std::vector<uint8_t> mask(static_cast<size_t>(rel.cardinality()), 1);
  for (const BoundClause& bc : bound) AndClauseMask(bc, rel, mask.data());
  int64_t hits = 0;
  for (const uint8_t pass : mask) hits += pass;
  return static_cast<double>(hits) / static_cast<double>(rel.cardinality());
}

double EstimateEqJoinSelectivity(const Relation& rel, int column,
                                 const std::vector<int64_t>* rows) {
  std::unordered_set<Value, ValueHash> distinct;
  const ColumnSegment& col = rel.Segment(column);
  if (rows == nullptr) {
    for (int64_t row = 0; row < rel.cardinality(); ++row) {
      distinct.insert(col.ValueAt(row));
    }
  } else {
    for (int64_t row : *rows) distinct.insert(col.ValueAt(row));
  }
  if (distinct.empty()) return 1.0;
  return 1.0 / static_cast<double>(distinct.size());
}

}  // namespace eve
