#include "expr/selectivity.h"

#include <unordered_set>

namespace eve {

Result<double> MeasureSelectivity(const Relation& rel,
                                  const std::string& rel_name,
                                  const Conjunction& conjunction) {
  if (conjunction.IsTrue()) return 1.0;
  if (rel.empty()) return 0.0;
  Binding binding;
  for (int i = 0; i < rel.schema().size(); ++i) {
    EVE_RETURN_IF_ERROR(
        binding.Register(RelAttr{rel_name, rel.schema().attribute(i).name}, i));
  }
  EVE_ASSIGN_OR_RETURN(std::vector<BoundClause> bound,
                       BindAll(conjunction, binding));
  int64_t hits = 0;
  for (const Tuple& t : rel.tuples()) {
    if (EvalAll(bound, t)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(rel.cardinality());
}

double EstimateEqJoinSelectivity(const Relation& rel, int column,
                                 const std::vector<int64_t>* rows) {
  std::unordered_set<Value, ValueHash> distinct;
  if (rows == nullptr) {
    for (const Tuple& t : rel.tuples()) distinct.insert(t.at(column));
  } else {
    for (int64_t row : *rows) distinct.insert(rel.tuple(row).at(column));
  }
  if (distinct.empty()) return 1.0;
  return 1.0 / static_cast<double>(distinct.size());
}

}  // namespace eve
