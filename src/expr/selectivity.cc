#include "expr/selectivity.h"

namespace eve {

Result<double> MeasureSelectivity(const Relation& rel,
                                  const std::string& rel_name,
                                  const Conjunction& conjunction) {
  if (conjunction.IsTrue()) return 1.0;
  if (rel.empty()) return 0.0;
  Binding binding;
  for (int i = 0; i < rel.schema().size(); ++i) {
    EVE_RETURN_IF_ERROR(
        binding.Register(RelAttr{rel_name, rel.schema().attribute(i).name}, i));
  }
  EVE_ASSIGN_OR_RETURN(std::vector<BoundClause> bound,
                       BindAll(conjunction, binding));
  int64_t hits = 0;
  for (const Tuple& t : rel.tuples()) {
    if (EvalAll(bound, t)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(rel.cardinality());
}

}  // namespace eve
