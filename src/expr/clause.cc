#include "expr/clause.h"

#include <algorithm>
#include <set>

#include "common/str_util.h"

namespace eve {

PrimitiveClause PrimitiveClause::AttrAttr(RelAttr lhs, CompOp op, RelAttr rhs) {
  PrimitiveClause c;
  c.lhs = std::move(lhs);
  c.op = op;
  c.rhs = std::move(rhs);
  return c;
}

PrimitiveClause PrimitiveClause::AttrConst(RelAttr lhs, CompOp op, Value rhs) {
  PrimitiveClause c;
  c.lhs = std::move(lhs);
  c.op = op;
  c.rhs = std::move(rhs);
  return c;
}

std::vector<RelAttr> PrimitiveClause::Attributes() const {
  std::vector<RelAttr> out{lhs};
  if (rhs_is_attr()) out.push_back(rhs_attr());
  return out;
}

bool PrimitiveClause::References(const std::string& relation) const {
  if (lhs.relation == relation) return true;
  return rhs_is_attr() && rhs_attr().relation == relation;
}

bool PrimitiveClause::IsJoinClause() const {
  return rhs_is_attr() && rhs_attr().relation != lhs.relation;
}

PrimitiveClause PrimitiveClause::Substitute(
    const std::map<RelAttr, RelAttr>& map) const {
  PrimitiveClause out = *this;
  if (const auto it = map.find(out.lhs); it != map.end()) out.lhs = it->second;
  if (out.rhs_is_attr()) {
    if (const auto it = map.find(out.rhs_attr()); it != map.end()) {
      out.rhs = it->second;
    }
  }
  return out;
}

PrimitiveClause PrimitiveClause::RenameRelations(
    const std::map<std::string, std::string>& rel_map) const {
  PrimitiveClause out = *this;
  if (const auto it = rel_map.find(out.lhs.relation); it != rel_map.end()) {
    out.lhs.relation = it->second;
  }
  if (out.rhs_is_attr()) {
    RelAttr r = out.rhs_attr();
    if (const auto it = rel_map.find(r.relation); it != rel_map.end()) {
      r.relation = it->second;
      out.rhs = r;
    }
  }
  return out;
}

bool PrimitiveClause::operator==(const PrimitiveClause& o) const {
  if (!(lhs == o.lhs) || op != o.op || rhs_is_attr() != o.rhs_is_attr()) {
    return false;
  }
  if (rhs_is_attr()) return rhs_attr() == o.rhs_attr();
  return rhs_value() == o.rhs_value();
}

std::string PrimitiveClause::ToString() const {
  const std::string rhs_text =
      rhs_is_attr() ? rhs_attr().ToString() : rhs_value().ToString();
  return lhs.ToString() + " " + std::string(CompOpToString(op)) + " " + rhs_text;
}

std::vector<RelAttr> Conjunction::Attributes() const {
  std::set<RelAttr> set;
  for (const PrimitiveClause& c : clauses_) {
    for (const RelAttr& a : c.Attributes()) set.insert(a);
  }
  return {set.begin(), set.end()};
}

std::vector<std::string> Conjunction::Relations() const {
  std::set<std::string> set;
  for (const RelAttr& a : Attributes()) {
    if (!a.relation.empty()) set.insert(a.relation);
  }
  return {set.begin(), set.end()};
}

Conjunction Conjunction::Substitute(const std::map<RelAttr, RelAttr>& map) const {
  std::vector<PrimitiveClause> out;
  out.reserve(clauses_.size());
  for (const PrimitiveClause& c : clauses_) out.push_back(c.Substitute(map));
  return Conjunction(std::move(out));
}

Conjunction Conjunction::RenameRelations(
    const std::map<std::string, std::string>& rel_map) const {
  std::vector<PrimitiveClause> out;
  out.reserve(clauses_.size());
  for (const PrimitiveClause& c : clauses_) {
    out.push_back(c.RenameRelations(rel_map));
  }
  return Conjunction(std::move(out));
}

std::string Conjunction::ToString() const {
  if (clauses_.empty()) return "TRUE";
  return JoinMapped(clauses_, " AND ",
                    [](const PrimitiveClause& c) { return c.ToString(); });
}

}  // namespace eve
