#include "expr/comp_op.h"

#include <cmath>

namespace eve {

namespace {

// NaN is treated like NULL in predicates: every comparison involving it is
// false -- including `<>`, which true IEEE semantics would make true --
// mirroring SQL's unknown-as-false rule one line above.  The total order
// used for set semantics still places NaN at the ends of the number line
// (see Value::Compare).
inline bool IsNaN(const Value& v) {
  return v.type() == DataType::kDouble && std::isnan(v.AsDouble());
}

}  // namespace

std::string_view CompOpToString(CompOp op) {
  switch (op) {
    case CompOp::kLess:
      return "<";
    case CompOp::kLessEqual:
      return "<=";
    case CompOp::kEqual:
      return "=";
    case CompOp::kGreaterEqual:
      return ">=";
    case CompOp::kGreater:
      return ">";
    case CompOp::kNotEqual:
      return "<>";
  }
  return "?";
}

std::optional<CompOp> CompOpFromString(std::string_view text) {
  if (text == "<") return CompOp::kLess;
  if (text == "<=") return CompOp::kLessEqual;
  if (text == "=") return CompOp::kEqual;
  if (text == ">=") return CompOp::kGreaterEqual;
  if (text == ">") return CompOp::kGreater;
  if (text == "<>" || text == "!=") return CompOp::kNotEqual;
  return std::nullopt;
}

CompOp FlipCompOp(CompOp op) {
  switch (op) {
    case CompOp::kLess:
      return CompOp::kGreater;
    case CompOp::kLessEqual:
      return CompOp::kGreaterEqual;
    case CompOp::kEqual:
      return CompOp::kEqual;
    case CompOp::kGreaterEqual:
      return CompOp::kLessEqual;
    case CompOp::kGreater:
      return CompOp::kLess;
    case CompOp::kNotEqual:
      return CompOp::kNotEqual;
  }
  return op;
}

bool EvalCompOp(CompOp op, const Value& lhs, const Value& rhs) {
  if (lhs.is_null() || rhs.is_null()) return false;
  if (!lhs.ComparableWith(rhs)) return false;
  if (IsNaN(lhs) || IsNaN(rhs)) return false;
  const auto c = lhs.Compare(rhs);
  switch (op) {
    case CompOp::kLess:
      return c == std::strong_ordering::less;
    case CompOp::kLessEqual:
      return c != std::strong_ordering::greater;
    case CompOp::kEqual:
      return c == std::strong_ordering::equal;
    case CompOp::kGreaterEqual:
      return c != std::strong_ordering::less;
    case CompOp::kGreater:
      return c == std::strong_ordering::greater;
    case CompOp::kNotEqual:
      return c != std::strong_ordering::equal;
  }
  return false;
}

}  // namespace eve
