// Comparison operators of primitive clauses (paper §3.1: theta in
// {<, <=, =, >=, >}; we additionally support <> as a natural extension).

#ifndef EVE_EXPR_COMP_OP_H_
#define EVE_EXPR_COMP_OP_H_

#include <optional>
#include <string>
#include <string_view>

#include "types/value.h"

namespace eve {

/// The comparison operator of a primitive clause.
enum class CompOp {
  kLess,
  kLessEqual,
  kEqual,
  kGreaterEqual,
  kGreater,
  kNotEqual,
};

/// "<", "<=", "=", ">=", ">", "<>".
std::string_view CompOpToString(CompOp op);

/// Parses an operator token; nullopt if not an operator.
std::optional<CompOp> CompOpFromString(std::string_view text);

/// The mirrored operator: a op b  <=>  b op' a.
CompOp FlipCompOp(CompOp op);

/// Applies the operator.  Comparisons involving NULL are false (SQL
/// semantics); incomparable types (number vs string) are false; comparisons
/// involving NaN are false like NULL, even `<>` (SQL-style unknown-as-false,
/// not IEEE, which would make NaN <> x true).
bool EvalCompOp(CompOp op, const Value& lhs, const Value& rhs);

}  // namespace eve

#endif  // EVE_EXPR_COMP_OP_H_
