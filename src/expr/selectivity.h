// Selectivity measurement for conditions over concrete relations.
//
// The analytic model (paper §6.1) assumes known local selectivities sigma
// and join selectivities js; this helper measures them from data so tests
// can validate the analytic model against executed workloads.

#ifndef EVE_EXPR_SELECTIVITY_H_
#define EVE_EXPR_SELECTIVITY_H_

#include "common/result.h"
#include "expr/clause.h"
#include "expr/eval.h"
#include "storage/relation.h"

namespace eve {

/// Fraction of tuples of `rel` satisfying `conjunction` (clauses must
/// reference only `rel_name`'s attributes).  Returns 1.0 for an empty
/// conjunction and 0.0 for an empty relation.
Result<double> MeasureSelectivity(const Relation& rel,
                                  const std::string& rel_name,
                                  const Conjunction& conjunction);

/// Textbook equi-join selectivity estimate for an equality predicate on
/// `column` of `rel`: 1 / V(column) with V the number of distinct values in
/// the column among `rows` (all rows when `rows` is null).  Returns 1.0 for
/// an empty input.  The executor's greedy join orderer uses this to estimate
/// intermediate result sizes.
double EstimateEqJoinSelectivity(const Relation& rel, int column,
                                 const std::vector<int64_t>* rows = nullptr);

}  // namespace eve

#endif  // EVE_EXPR_SELECTIVITY_H_
