// PrimitiveClause: the atomic predicate of E-SQL WHERE conditions and MISD
// join/PC constraints (paper §3.1):
//     <attr> theta <attr>     or     <attr> theta <value>
// Conjunction: an AND of primitive clauses.

#ifndef EVE_EXPR_CLAUSE_H_
#define EVE_EXPR_CLAUSE_H_

#include <map>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "catalog/names.h"
#include "expr/comp_op.h"
#include "types/value.h"

namespace eve {

/// One primitive clause.  `rhs` is either a second attribute reference or a
/// constant.
struct PrimitiveClause {
  RelAttr lhs;
  CompOp op = CompOp::kEqual;
  std::variant<RelAttr, Value> rhs;

  /// attr-op-attr clause.
  static PrimitiveClause AttrAttr(RelAttr lhs, CompOp op, RelAttr rhs);
  /// attr-op-constant clause.
  static PrimitiveClause AttrConst(RelAttr lhs, CompOp op, Value rhs);

  bool rhs_is_attr() const { return std::holds_alternative<RelAttr>(rhs); }
  const RelAttr& rhs_attr() const { return std::get<RelAttr>(rhs); }
  const Value& rhs_value() const { return std::get<Value>(rhs); }

  /// All attribute references in the clause (1 or 2).
  std::vector<RelAttr> Attributes() const;

  /// True iff the clause references the given relation (by name/alias).
  bool References(const std::string& relation) const;

  /// True iff it is a join clause (both sides attributes of different
  /// relations).
  bool IsJoinClause() const;

  /// Returns a copy with every attribute reference rewritten through `map`
  /// (old RelAttr -> new RelAttr); references not in the map are kept.
  PrimitiveClause Substitute(const std::map<RelAttr, RelAttr>& map) const;

  /// Returns a copy with relation names/aliases renamed per `rel_map`.
  PrimitiveClause RenameRelations(
      const std::map<std::string, std::string>& rel_map) const;

  bool operator==(const PrimitiveClause& o) const;

  /// "R.A <= S.B" / "R.A > 10".
  std::string ToString() const;
};

/// A conjunction of primitive clauses (the only condition form in the
/// paper's language).  The empty conjunction is TRUE.
class Conjunction {
 public:
  Conjunction() = default;
  explicit Conjunction(std::vector<PrimitiveClause> clauses)
      : clauses_(std::move(clauses)) {}

  const std::vector<PrimitiveClause>& clauses() const { return clauses_; }
  bool IsTrue() const { return clauses_.empty(); }
  int size() const { return static_cast<int>(clauses_.size()); }

  void Add(PrimitiveClause clause) { clauses_.push_back(std::move(clause)); }

  /// Union of referenced attributes (deduplicated, sorted).
  std::vector<RelAttr> Attributes() const;

  /// All relations referenced (deduplicated, sorted).
  std::vector<std::string> Relations() const;

  Conjunction Substitute(const std::map<RelAttr, RelAttr>& map) const;
  Conjunction RenameRelations(
      const std::map<std::string, std::string>& rel_map) const;

  bool operator==(const Conjunction& o) const = default;

  /// "C1 AND C2 AND ..."; "TRUE" when empty.
  std::string ToString() const;

 private:
  std::vector<PrimitiveClause> clauses_;
};

}  // namespace eve

#endif  // EVE_EXPR_CLAUSE_H_
