#include "expr/eval.h"

#include "storage/column_kernel.h"
#include "storage/relation.h"

namespace eve {

Status Binding::Register(const RelAttr& attr, int column) {
  const auto [it, inserted] = columns_.emplace(attr, column);
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("binding already has " + attr.ToString());
  }
  return Status::OK();
}

Result<int> Binding::Resolve(const RelAttr& attr) const {
  const auto resolved = TryResolve(attr);
  if (!resolved.has_value()) {
    return Status::NotFound("unresolved attribute reference " + attr.ToString());
  }
  return *resolved;
}

std::optional<int> Binding::TryResolve(const RelAttr& attr) const {
  const auto it = columns_.find(attr);
  if (it != columns_.end()) return it->second;
  if (attr.relation.empty()) {
    // Unqualified: unique attribute name across all registered references.
    std::optional<int> found;
    for (const auto& [key, col] : columns_) {
      if (key.attribute == attr.attribute) {
        if (found.has_value()) return std::nullopt;  // Ambiguous.
        found = col;
      }
    }
    return found;
  }
  return std::nullopt;
}

bool BoundClause::Eval(const Tuple& t) const {
  const Value& lhs = t.at(lhs_column);
  const Value& rhs = rhs_column >= 0 ? t.at(rhs_column) : rhs_value;
  return EvalCompOp(op, lhs, rhs);
}

Result<BoundClause> Bind(const PrimitiveClause& clause, const Binding& binding) {
  BoundClause out;
  EVE_ASSIGN_OR_RETURN(out.lhs_column, binding.Resolve(clause.lhs));
  out.op = clause.op;
  if (clause.rhs_is_attr()) {
    EVE_ASSIGN_OR_RETURN(out.rhs_column, binding.Resolve(clause.rhs_attr()));
  } else {
    out.rhs_value = clause.rhs_value();
  }
  return out;
}

Result<std::vector<BoundClause>> BindAll(const Conjunction& conjunction,
                                         const Binding& binding) {
  std::vector<BoundClause> out;
  out.reserve(conjunction.clauses().size());
  for (const PrimitiveClause& c : conjunction.clauses()) {
    EVE_ASSIGN_OR_RETURN(BoundClause bound, Bind(c, binding));
    out.push_back(bound);
  }
  return out;
}

bool EvalAll(const std::vector<BoundClause>& clauses, const Tuple& t) {
  for (const BoundClause& c : clauses) {
    if (!c.Eval(t)) return false;
  }
  return true;
}

void AndClauseMask(const BoundClause& clause, const Relation& rel,
                   uint8_t* mask) {
  if (clause.rhs_column >= 0) {
    AndCompareColumns(clause.op, rel.Segment(clause.lhs_column),
                      rel.Segment(clause.rhs_column), mask);
  } else {
    AndCompareColumnConst(clause.op, rel.Segment(clause.lhs_column),
                          clause.rhs_value, mask);
  }
}

Result<bool> EvalConjunction(const Conjunction& conjunction,
                             const Binding& binding, const Tuple& t) {
  EVE_ASSIGN_OR_RETURN(std::vector<BoundClause> bound,
                       BindAll(conjunction, binding));
  return EvalAll(bound, t);
}

}  // namespace eve
