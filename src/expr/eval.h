// Evaluation of primitive clauses and conjunctions over tuples.
//
// A Binding maps RelAttr references to column indexes of a (possibly joined)
// tuple; it is how the executor and the maintenance simulator resolve
// attribute references before evaluating conditions.

#ifndef EVE_EXPR_EVAL_H_
#define EVE_EXPR_EVAL_H_

#include <map>
#include <optional>
#include <vector>

#include "common/result.h"
#include "expr/clause.h"
#include "storage/tuple.h"

namespace eve {

/// Maps attribute references to column positions of a tuple layout.
class Binding {
 public:
  Binding() = default;

  /// Registers `attr` at column `column`.  Later registrations of the same
  /// reference are rejected.
  Status Register(const RelAttr& attr, int column);

  /// Column of `attr`.  Unqualified references (empty relation) resolve if
  /// exactly one registered reference has that attribute name.
  Result<int> Resolve(const RelAttr& attr) const;

  /// Non-failing variant of Resolve.
  std::optional<int> TryResolve(const RelAttr& attr) const;

  int size() const { return static_cast<int>(columns_.size()); }

 private:
  std::map<RelAttr, int> columns_;
};

/// A clause with pre-resolved column indexes, ready for fast evaluation.
struct BoundClause {
  int lhs_column = -1;
  CompOp op = CompOp::kEqual;
  /// Exactly one of rhs_column / rhs_value is active.
  int rhs_column = -1;
  Value rhs_value;

  bool Eval(const Tuple& t) const;
};

/// Resolves a clause against a binding.
Result<BoundClause> Bind(const PrimitiveClause& clause, const Binding& binding);

/// Resolves a conjunction against a binding.
Result<std::vector<BoundClause>> BindAll(const Conjunction& conjunction,
                                         const Binding& binding);

/// True iff every bound clause holds on `t`.
bool EvalAll(const std::vector<BoundClause>& clauses, const Tuple& t);

class Relation;

/// ANDs `clause`'s result on every row of `rel` into `mask` (length
/// rel.cardinality()): one compare-kernel pass over the contiguous
/// column(s), see storage/column_kernel.h.  `clause` columns must be local
/// to `rel`.  Shared by selection pushdown and selectivity measurement.
void AndClauseMask(const BoundClause& clause, const Relation& rel,
                   uint8_t* mask);

/// One-shot evaluation (binds then evaluates); convenient for tests.
Result<bool> EvalConjunction(const Conjunction& conjunction,
                             const Binding& binding, const Tuple& t);

}  // namespace eve

#endif  // EVE_EXPR_EVAL_H_
