// Tuple: a row of Values.  Width must match the owning relation's schema.

#ifndef EVE_STORAGE_TUPLE_H_
#define EVE_STORAGE_TUPLE_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "types/value.h"

namespace eve {

/// FNV-1a parameters of Tuple::Hash.  The columnar hash kernels
/// (storage/column_kernel.h) and the cached hash column
/// (Relation::ComputeTupleHashes) mix with the same scheme, so
/// hashes[i] == TupleAt(i).Hash() holds by construction.
inline constexpr size_t kTupleHashBasis = 0xcbf29ce484222325ULL;
inline constexpr size_t kTupleHashPrime = 0x100000001b3ULL;

/// A row.  Tuples are plain value containers; schema conformance is checked
/// at insertion into a Relation.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}
  Tuple(std::initializer_list<Value> values) : values_(values) {}

  int size() const { return static_cast<int>(values_.size()); }
  const Value& at(int i) const { return values_[i]; }
  Value& at(int i) { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  void Append(Value v) { values_.push_back(std::move(v)); }

  /// Projection onto the given column indexes (in order).
  Tuple Project(const std::vector<int>& indexes) const;

  /// Concatenation (for join results).
  Tuple Concat(const Tuple& other) const;

  bool operator==(const Tuple& o) const;
  bool operator<(const Tuple& o) const;

  size_t Hash() const;

  /// "(1, 'x', 2.5)".
  std::string ToString() const;

 private:
  std::vector<Value> values_;
};

struct TupleHash {
  size_t operator()(const Tuple& t) const { return t.Hash(); }
};

}  // namespace eve

#endif  // EVE_STORAGE_TUPLE_H_
