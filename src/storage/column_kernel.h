// Columnar compare / hash kernels: tight loops over contiguous Value
// columns (Relation stores one vector<Value> per attribute).
//
// Every kernel is mask-oriented: it ANDs its per-row comparison result into
// a caller-owned byte mask, so a conjunction of clauses is evaluated one
// clause at a time over the whole column -- the operator dispatch and the
// column pointers are hoisted out of the row loop, and the loop body is a
// branch-light compare over 16-byte scalars the compiler can vectorize.
//
// Fast path: when a column is tag-uniform INT64 (Relation tracks this per
// column, see Relation::ColumnAllInt64) and the other side is numeric, the
// compare skips EvalCompOp's NULL / comparability / NaN checks entirely and
// reduces to a branch-free integer (or int-vs-double) comparison.  The
// generic path calls EvalCompOp per row and therefore matches predicate
// semantics exactly (NULL and NaN compare false, incomparable types
// compare false).

#ifndef EVE_STORAGE_COLUMN_KERNEL_H_
#define EVE_STORAGE_COLUMN_KERNEL_H_

#include <cstdint>

#include "expr/comp_op.h"
#include "storage/tuple.h"
#include "types/value.h"

namespace eve {

/// mask[i] &= EvalCompOp(op, col[i], rhs) for i in [0, n).
/// `col_all_int64` enables the tag-free numeric fast path; it must only be
/// true when every col[i] has tag INT64.
void AndCompareColumnConst(CompOp op, const Value* col, int64_t n,
                           const Value& rhs, bool col_all_int64,
                           uint8_t* mask);

/// mask[i] &= EvalCompOp(op, lhs[i], rhs[i]) for i in [0, n).
/// `all_int64` must only be true when both columns are tag-uniform INT64.
void AndCompareColumns(CompOp op, const Value* lhs, const Value* rhs,
                       int64_t n, bool all_int64, uint8_t* mask);

/// Gathered variant for the executor's residual filtering over candidate
/// row-id arrays: mask[i] &= EvalCompOp(op, lcol[lrows[i]], RHS(i)) where
/// RHS(i) is rcol[rrows[i]] when rcol != nullptr, else *rhs_const.
/// `all_int64` must only be true when every gathered element of `lcol` --
/// and, in the column-column case, of `rcol` -- has tag INT64; the
/// constant's type is checked here, so the const-RHS caller passes the
/// LHS flag alone.
void AndCompareGather(CompOp op, const Value* lcol, const int64_t* lrows,
                      const Value* rcol, const int64_t* rrows,
                      const Value* rhs_const, int64_t n, bool all_int64,
                      uint8_t* mask);

/// One FNV-1a step per row with the value's hash: acc[i] = (acc[i] ^
/// col[i].Hash()) * kTupleHashPrime.  Seeding acc with kTupleHashBasis
/// (storage/tuple.h) and running every column left to right reproduces
/// Tuple::Hash exactly, one contiguous column scan at a time.
void MixHashColumn(const Value* col, int64_t n, size_t* acc);

/// Gathered variant for the executor's fused-distinct projection:
/// acc[i] = (acc[i] ^ col[rows[i]].Hash()) * prime.
void MixHashColumnGather(const Value* col, const int64_t* rows, int64_t n,
                         size_t* acc);

}  // namespace eve

#endif  // EVE_STORAGE_COLUMN_KERNEL_H_
