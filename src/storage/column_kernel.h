// Columnar compare / hash kernels over typed packed column segments
// (storage/column_segment.h; Relation stores one ColumnSegment per
// attribute).
//
// Every compare kernel is mask-oriented: it ANDs its per-row comparison
// result into a caller-owned byte mask, so a conjunction of clauses is
// evaluated one clause at a time over the whole column -- the operator
// dispatch, the encoding dispatch, and the column pointers are all hoisted
// out of the row loop.
//
// Fast paths by encoding:
//   * kInt64 vs numeric constant / kInt64: a branch-free loop over raw
//     int64 words the compiler can vectorize -- no tags, no EvalCompOp.
//   * kString equality vs a same-pool string: a branch-free word-compare
//     loop (the packed word is (content_hash << 32 | id); equal words iff
//     equal strings within one pool).
//   * kTagged tag-uniform INT64: the legacy branch-free loop over Values.
//
// Exception sidecars are handled by iterating the maximal packed runs
// between the (sorted) exception rows branch-free and evaluating the few
// exception rows through EvalCompOp / Value::Hash.  Exception rows are
// NEVER speculatively compared as words and patched afterwards: the mask
// AND-fold is destructive, so a wrong 0 could not be recovered.
//
// The generic fallback calls EvalCompOp per row and therefore matches
// predicate semantics exactly (NULL and NaN compare false, incomparable
// types compare false).

#ifndef EVE_STORAGE_COLUMN_KERNEL_H_
#define EVE_STORAGE_COLUMN_KERNEL_H_

#include <cstdint>

#include "expr/comp_op.h"
#include "storage/column_segment.h"
#include "storage/tuple.h"
#include "types/value.h"

namespace eve {

/// mask[i] &= EvalCompOp(op, col[i], rhs) for i in [0, col.size()).
void AndCompareColumnConst(CompOp op, const ColumnSegment& col,
                           const Value& rhs, uint8_t* mask);

/// mask[i] &= EvalCompOp(op, lhs[i], rhs[i]); the segments must have equal
/// size.
void AndCompareColumns(CompOp op, const ColumnSegment& lhs,
                       const ColumnSegment& rhs, uint8_t* mask);

/// Gathered variant for the executor's residual filtering over candidate
/// row-id arrays: mask[i] &= EvalCompOp(op, lcol[lrows[i]], RHS(i)) where
/// RHS(i) is (*rcol)[rrows[i]] when rcol != nullptr, else *rhs_const.
void AndCompareGather(CompOp op, const ColumnSegment& lcol,
                      const int64_t* lrows, const ColumnSegment* rcol,
                      const int64_t* rrows, const Value* rhs_const, int64_t n,
                      uint8_t* mask);

/// out[i] = col[i].Hash() for i in [0, col.size()) -- the HashIndex build's
/// first pass, without materializing a Value per row on packed segments.
void HashColumn(const ColumnSegment& col, size_t* out);

/// One FNV-1a step per row with the value's hash: acc[i] = (acc[i] ^
/// col[i].Hash()) * kTupleHashPrime.  Seeding acc with kTupleHashBasis
/// (storage/tuple.h) and running every column left to right reproduces
/// Tuple::Hash exactly, one contiguous column scan at a time.
void MixHashColumn(const ColumnSegment& col, size_t* acc);

/// Gathered variant for the executor's fused-distinct projection:
/// acc[i] = (acc[i] ^ col[rows[i]].Hash()) * prime.
void MixHashColumnGather(const ColumnSegment& col, const int64_t* rows,
                         int64_t n, size_t* acc);

}  // namespace eve

#endif  // EVE_STORAGE_COLUMN_KERNEL_H_
