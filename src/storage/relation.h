// Relation: an in-memory table (schema + tuples).  This is the storage unit
// hosted by information sources and the result type of the query executor.
//
// Relations use bag semantics by default; Distinct() derives the set-
// semantics version that the paper's extent comparisons require
// ("duplicates removed first", §5.3).

#ifndef EVE_STORAGE_RELATION_H_
#define EVE_STORAGE_RELATION_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/schema.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/tuple.h"

namespace eve {

class HashIndex;

/// An in-memory relation instance.
class Relation {
 public:
  Relation() = default;
  Relation(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  const Schema& schema() const { return schema_; }

  int64_t cardinality() const { return static_cast<int64_t>(tuples_.size()); }
  bool empty() const { return tuples_.empty(); }
  const std::vector<Tuple>& tuples() const { return tuples_; }
  const Tuple& tuple(int64_t i) const { return tuples_[i]; }

  /// Appends a tuple after checking arity and type conformance.
  Status Insert(Tuple t);

  /// Appends without checks; for internal operators that construct
  /// schema-conforming tuples by construction.
  void InsertUnchecked(Tuple t) {
    InvalidateIndexes();
    tuples_.push_back(std::move(t));
  }

  /// Removes (one occurrence of) each tuple equal to `t`; returns the number
  /// of removed tuples (0 or 1 with `all_occurrences` false).
  int64_t Erase(const Tuple& t, bool all_occurrences = false);

  void Clear() {
    InvalidateIndexes();
    tuples_.clear();
  }

  /// Cached equality index on `column`, built on first use and dropped by
  /// any mutation (Insert / InsertUnchecked / Erase / Clear).  Copies of the
  /// relation share the already-built (immutable) indexes.  Not thread-safe:
  /// concurrent first-use builds on the same instance would race.
  const HashIndex& Index(int column) const;

  /// True iff some tuple equals `t`.
  bool ContainsTuple(const Tuple& t) const;

  /// Set-semantics copy: duplicates removed, input order preserved.
  Relation Distinct() const;

  /// Projection onto named attributes; fails on unknown names.
  Result<Relation> ProjectByName(const std::vector<std::string>& names) const;

  /// Number of distinct tuples.
  int64_t DistinctCount() const;

  /// Tuple width in bytes (sum of attribute sizes): s_R in the cost model.
  int TupleBytes() const { return schema_.TupleBytes(); }

  /// Sorted-by-tuple rendering for stable golden tests.
  std::string ToString(int64_t max_rows = 20) const;

 private:
  void InvalidateIndexes() {
    if (!index_cache_.empty()) index_cache_.clear();
  }

  std::string name_;
  Schema schema_;
  std::vector<Tuple> tuples_;
  /// Lazily built per-column equality indexes (see Index()).  Indexes store
  /// row ids only, so copied relations can keep sharing them.
  mutable std::unordered_map<int, std::shared_ptr<const HashIndex>> index_cache_;
};

/// Set operations under set semantics (inputs deduplicated first).  Schemas
/// must have equal arity; attribute names are taken from `a`.
Result<Relation> SetUnion(const Relation& a, const Relation& b);
Result<Relation> SetIntersect(const Relation& a, const Relation& b);
Result<Relation> SetDifference(const Relation& a, const Relation& b);

/// True iff the distinct tuple sets are equal.
bool SetEquals(const Relation& a, const Relation& b);

}  // namespace eve

#endif  // EVE_STORAGE_RELATION_H_
