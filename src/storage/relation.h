// Relation: an in-memory table (schema + tuples).  This is the storage unit
// hosted by information sources and the result type of the query executor.
//
// Storage is columnar and typed: one ColumnSegment per attribute
// (storage/column_segment.h).  Tag-uniform INT64 columns are packed
// vector<int64_t> segments, uniform interned-string columns pack to
// (hash, id) word segments (dictionary encoding for free), and mixed
// columns fall back to the tagged vector<Value> layout -- with a compact
// exception sidecar in between, so one stray NULL does not demote a packed
// column.  The hot consumers (hash-index builds, dedup hashing, the
// prepared executor's batch probes / residual filters / per-column
// gathers) read the packed words branch-free through the kernels in
// storage/column_kernel.h.  The row-oriented API survives as an adapter
// (TupleAt / AddTuple / CopyTuples materialize rows on demand) so callers
// migrate incrementally; per-column access goes through Segment / ValueAt.
//
// Relations use bag semantics by default; Distinct() derives the set-
// semantics version that the paper's extent comparisons require
// ("duplicates removed first", §5.3).
//
// Concurrency: the tuple store itself is single-writer (mutations are not
// synchronized), but the lazily built per-column index cache and the
// tuple-hash column are guarded by a mutex, so any number of threads may
// execute read-only queries (Index / TupleHashes / Distinct / SetEquals)
// against the same unchanging relation concurrently.  WarmIndexes() can
// pre-build the indexes a prepared plan needs so parallel executions never
// contend on first use.
//
// Segments are held by shared_ptr and copy-on-write: copies, projections,
// and snapshots (serve/snapshot.h) share the immutable segment storage,
// and a mutation clones only the segments some other owner still holds
// (`MutCol`).  The use_count check is race-free under the single-writer
// contract because new shares of a segment are only ever handed out by
// the owning writer thread (snapshot capture, Relation copies); readers
// hold refs obtained before the mutation began.
//
// Every relation carries a process-unique identity stamp (assigned at
// construction and on copy/move, `identity()`) plus a cheap per-instance
// mutation counter (`version()`).  Prepared query plans snapshot the
// (pointer, identity, version) triple and revalidate it before reuse, so a
// stale plan over mutated -- or destroyed-and-rebuilt-at-the-same-address
// -- data replans instead of reading dropped caches.

#ifndef EVE_STORAGE_RELATION_H_
#define EVE_STORAGE_RELATION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/schema.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/column_segment.h"
#include "storage/tuple.h"

namespace eve {

class HashIndex;

/// An in-memory relation instance (typed columnar tuple store).
class Relation {
 public:
  Relation() = default;
  Relation(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {
    columns_.reserve(static_cast<size_t>(schema_.size()));
    for (int c = 0; c < schema_.size(); ++c) {
      columns_.push_back(std::make_shared<ColumnSegment>());
    }
  }

  // Copies share the already-built immutable caches (indexes store row ids
  // only, so they stay valid for the copied column store); each copy gets a
  // fresh identity stamp because it is a distinct object.  The cache mutex
  // is per-instance and never copied.
  Relation(const Relation& other);
  Relation& operator=(const Relation& other);
  Relation(Relation&& other) noexcept;
  Relation& operator=(Relation&& other) noexcept;

  /// Adopts ready-made columns (all of equal length, one per schema
  /// attribute) without any row materialization -- each column is scanned
  /// once to pick its segment encoding.  Column values are not type-checked
  /// against the schema (as InsertUnchecked); sizes are.
  static Relation FromColumns(std::string name, Schema schema,
                              std::vector<std::vector<Value>> columns);

  /// Adopts ready-made segments (all of equal length, one per schema
  /// attribute) -- the zero-rescan result path of the executor's gathers.
  static Relation FromSegments(std::string name, Schema schema,
                               std::vector<ColumnSegment> columns);

  /// Adopts already-shared segments without copying their storage (the
  /// projection path).  The new relation co-owns the segments; a later
  /// mutation of either owner clones first (MutCol).
  static Relation FromSharedSegments(
      std::string name, Schema schema,
      std::vector<std::shared_ptr<ColumnSegment>> columns);

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  const Schema& schema() const { return schema_; }

  /// Replaces the schema without touching the stored columns (attribute
  /// renames); arities must match.  Counts as a mutation, so cached
  /// indexes, hash columns, and prepared plans are invalidated.
  void ReplaceSchema(Schema schema);

  /// Widens the relation by one attribute backed by an all-NULL column
  /// (schema evolution's add-attribute back-fill); in place, no copies of
  /// the existing columns.  Counts as a mutation.
  void AddNullColumn(const Attribute& attribute);

  int64_t cardinality() const { return rows_; }
  bool empty() const { return rows_ == 0; }
  /// Number of columns (schema arity).
  int width() const { return static_cast<int>(columns_.size()); }

  /// The typed column segment of attribute `c`.
  const ColumnSegment& Segment(int c) const { return *columns_[c]; }
  /// Shared handle on the segment of attribute `c` (snapshot capture and
  /// zero-copy projections); keeps the storage alive across a later
  /// mutation of this relation, which clones rather than edits in place.
  std::shared_ptr<const ColumnSegment> SegmentShared(int c) const {
    return columns_[static_cast<size_t>(c)];
  }
  /// Row `row` of column `col` as a full Value (reconstructed on demand
  /// from the packed word on packed segments).
  Value ValueAt(int64_t row, int col) const {
    return columns_[col]->ValueAt(row);
  }

  /// True iff every value in column `c` has tag INT64 (no NULLs, doubles,
  /// or strings); the historic promotion signal, now derived from the
  /// segment encoding.
  bool ColumnAllInt64(int c) const { return columns_[c]->all_int64(); }

  /// Row-adapter: materializes row `row` as a Tuple (one allocation).
  Tuple TupleAt(int64_t row) const;

  /// Row-adapter: materializes every row (for shuffles, sorts, and golden
  /// comparisons in tests).
  std::vector<Tuple> CopyTuples() const;

  /// `prefix` concatenated with row `row` of this relation, in one
  /// allocation (the join-materialization shape of the maintenance
  /// simulator and the reference executor).
  Tuple ConcatRow(const Tuple& prefix, int64_t row) const;

  /// Process-unique object-identity stamp: fresh per construction, copy,
  /// and move (a moved-from relation is restamped too, since its columns
  /// were stolen).  Together with version() it lets prepared plans detect
  /// a relation that was destroyed and rebuilt at the same address.
  uint64_t identity() const { return identity_.load(std::memory_order_acquire); }

  /// Mutation counter of this instance; bumped by every AddTuple / Insert /
  /// Erase / EraseBatch / Clear.  Two observations with equal (identity,
  /// version) saw identical data.  Stamps are atomic so a concurrent plan
  /// revalidation reads a consistent value, but a reader racing a mutation
  /// may see either stamp -- observing the tuple store itself still
  /// requires the single-writer contract above.
  uint64_t version() const { return version_.load(std::memory_order_acquire); }

  /// Appends a tuple after checking arity and type conformance.
  Status Insert(Tuple t);

  /// Appends without checks; for internal operators that construct
  /// schema-conforming tuples by construction.
  void AddTuple(Tuple t);

  /// Historic name of AddTuple, kept so call sites migrate incrementally.
  void InsertUnchecked(Tuple t) { AddTuple(std::move(t)); }

  /// Removes (one occurrence of) each tuple equal to `t`; returns the number
  /// of removed tuples (0 or 1 with `all_occurrences` false).
  int64_t Erase(const Tuple& t, bool all_occurrences = false);

  /// Removes one occurrence per victim (first matching row in scan order,
  /// exactly as repeated single Erase calls would) in ONE compaction pass:
  /// victims are hash-bucketed, matching rows are tombstoned during a
  /// single scan against the fresh tuple-hash column, and every column
  /// compacts once.  Returns the number of removed rows; a batch that
  /// matches nothing is a no-op (no version bump).  The maintenance delete
  /// sweeps call this instead of O(victims) full scans.
  int64_t EraseBatch(const std::vector<Tuple>& victims);

  void Clear();

  /// True iff row `row` of this relation equals row `other_row` of `other`
  /// column by column (arities must match).
  bool RowEquals(int64_t row, const Relation& other, int64_t other_row) const;

  /// True iff row `row` equals tuple `t` (arities must match).
  bool RowEqualsTuple(int64_t row, const Tuple& t) const;

  /// Cached equality index on `column`, built on first use and dropped by
  /// any mutation (Insert / AddTuple / Erase / Clear).  Copies of the
  /// relation share the already-built (immutable) indexes.  Thread-safe:
  /// concurrent first-use builds are serialized by the cache mutex.
  const HashIndex& Index(int column) const;

  /// As Index(), but returns the shared handle so a prepared plan or a
  /// snapshot can pin the index past a later mutation of this relation
  /// (mutations drop the cache; the shared_ptr keeps the built index
  /// alive for whoever captured it).
  std::shared_ptr<const HashIndex> IndexShared(int column) const;

  /// Pre-builds the indexes on `columns` (deduplicated) so later concurrent
  /// Index() calls are pure cache hits.  Out-of-range columns are ignored.
  void WarmIndexes(const std::vector<int>& columns) const;

  /// Cached per-row tuple hashes (hashes[i] == TupleAt(i).Hash()), built on
  /// first use and dropped by any mutation.  The shared_ptr keeps the
  /// column alive across a concurrent invalidation.  Thread-safe.
  std::shared_ptr<const std::vector<size_t>> TupleHashes() const;

  /// Uncached hash-column computation (column-wise FNV mixing; what
  /// TupleHashes builds and caches).
  std::vector<size_t> ComputeTupleHashes() const;

  /// True iff some tuple equals `t`.
  bool ContainsTuple(const Tuple& t) const;

  /// Set-semantics copy: duplicates removed, input order preserved.
  Relation Distinct() const;

  /// Projection onto named attributes; fails on unknown names.  Columnar:
  /// each projected column is one segment copy, encoding preserved.
  Result<Relation> ProjectByName(const std::vector<std::string>& names) const;

  /// Number of distinct tuples.
  int64_t DistinctCount() const;

  /// Tuple width in bytes (sum of attribute sizes): s_R in the cost model.
  int TupleBytes() const { return schema_.TupleBytes(); }

  /// Sorted-by-tuple rendering for stable golden tests.
  std::string ToString(int64_t max_rows = 20) const;

  /// Appends the `rows` of `src` (same arity) as one contiguous gather per
  /// column (packed sources gather word-by-word); a single mutation stamp
  /// for the whole batch.
  void AppendGathered(const Relation& src, const std::vector<int64_t>& rows);

 private:
  static uint64_t NextIdentity();

  // Mutations are single-writer (class comment), so the version bump is a
  // load+store (no read-modify-write needed) and the cache clear is
  // skipped entirely unless a cache was actually built -- result
  // materialization inserts row by row and must not pay a lock or an
  // atomic RMW per tuple.
  void MarkMutated() {
    version_.store(version_.load(std::memory_order_relaxed) + 1,
                   std::memory_order_release);
    if (caches_present_.load(std::memory_order_acquire)) DropCaches();
  }

  void DropCaches();

  /// Mutable access to column `c`, cloning first when the segment is
  /// shared with a copy, projection, or snapshot (copy-on-write).  The
  /// use_count probe is sound because shares are only handed out from the
  /// writer thread (see the concurrency comment above).
  ColumnSegment& MutCol(size_t c) {
    std::shared_ptr<ColumnSegment>& col = columns_[c];
    if (col.use_count() > 1) col = std::make_shared<ColumnSegment>(*col);
    return *col;
  }

  std::string name_;
  Schema schema_;
  /// One typed column segment per attribute, all of length rows_; held by
  /// shared_ptr so copies/snapshots share storage (copy-on-write via
  /// MutCol).  Pointers are never null.
  std::vector<std::shared_ptr<ColumnSegment>> columns_;
  int64_t rows_ = 0;
  std::atomic<uint64_t> identity_{NextIdentity()};
  std::atomic<uint64_t> version_{0};
  /// Guards index_cache_ and hash_cache_ (not the tuple store).
  mutable std::mutex cache_mutex_;
  /// True iff index_cache_ or hash_cache_ holds anything; lets MarkMutated
  /// skip the lock on cache-free relations.
  mutable std::atomic<bool> caches_present_{false};
  /// Lazily built per-column equality indexes (see Index()).  Indexes store
  /// row ids only, so copied relations can keep sharing them.
  mutable std::unordered_map<int, std::shared_ptr<const HashIndex>> index_cache_;
  /// Lazily built per-row tuple hashes (see TupleHashes()).
  mutable std::shared_ptr<const std::vector<size_t>> hash_cache_;
};

/// Set operations under set semantics (inputs deduplicated first).  Schemas
/// must have equal arity; attribute names are taken from `a`.
Result<Relation> SetUnion(const Relation& a, const Relation& b);
Result<Relation> SetIntersect(const Relation& a, const Relation& b);
Result<Relation> SetDifference(const Relation& a, const Relation& b);

/// True iff the distinct tuple sets are equal.  Uses the cached tuple-hash
/// columns of both inputs, so repeated extent comparisons against
/// unchanged relations skip re-hashing entirely.
bool SetEquals(const Relation& a, const Relation& b);

}  // namespace eve

#endif  // EVE_STORAGE_RELATION_H_
