// Relation: an in-memory table (schema + tuples).  This is the storage unit
// hosted by information sources and the result type of the query executor.
//
// Relations use bag semantics by default; Distinct() derives the set-
// semantics version that the paper's extent comparisons require
// ("duplicates removed first", §5.3).
//
// Concurrency: the tuple store itself is single-writer (mutations are not
// synchronized), but the lazily built per-column index cache and the
// tuple-hash column are guarded by a mutex, so any number of threads may
// execute read-only queries (Index / TupleHashes / Distinct / SetEquals)
// against the same unchanging relation concurrently.  WarmIndexes() can
// pre-build the indexes a prepared plan needs so parallel executions never
// contend on first use.
//
// Every relation carries a process-unique identity stamp (assigned at
// construction and on copy/move, `identity()`) plus a cheap per-instance
// mutation counter (`version()`).  Prepared query plans snapshot the
// (pointer, identity, version) triple and revalidate it before reuse, so a
// stale plan over mutated -- or destroyed-and-rebuilt-at-the-same-address
// -- data replans instead of reading dropped caches.

#ifndef EVE_STORAGE_RELATION_H_
#define EVE_STORAGE_RELATION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/schema.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/tuple.h"

namespace eve {

class HashIndex;

/// An in-memory relation instance.
class Relation {
 public:
  Relation() = default;
  Relation(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  // Copies share the already-built immutable caches (indexes store row ids
  // only, so they stay valid for the copied tuple vector); each copy gets a
  // fresh identity stamp because it is a distinct object.  The cache mutex
  // is per-instance and never copied.
  Relation(const Relation& other);
  Relation& operator=(const Relation& other);
  Relation(Relation&& other) noexcept;
  Relation& operator=(Relation&& other) noexcept;

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  const Schema& schema() const { return schema_; }

  int64_t cardinality() const { return static_cast<int64_t>(tuples_.size()); }
  bool empty() const { return tuples_.empty(); }
  const std::vector<Tuple>& tuples() const { return tuples_; }
  const Tuple& tuple(int64_t i) const { return tuples_[i]; }

  /// Process-unique object-identity stamp: fresh per construction, copy,
  /// and move (a moved-from relation is restamped too, since its tuples
  /// were stolen).  Together with version() it lets prepared plans detect
  /// a relation that was destroyed and rebuilt at the same address.
  uint64_t identity() const { return identity_.load(std::memory_order_acquire); }

  /// Mutation counter of this instance; bumped by every Insert /
  /// InsertUnchecked / Erase / Clear.  Two observations with equal
  /// (identity, version) saw identical data.  Stamps are atomic so a
  /// concurrent plan revalidation reads a consistent value, but a reader
  /// racing a mutation may see either stamp -- observing the tuple store
  /// itself still requires the single-writer contract above.
  uint64_t version() const { return version_.load(std::memory_order_acquire); }

  /// Appends a tuple after checking arity and type conformance.
  Status Insert(Tuple t);

  /// Appends without checks; for internal operators that construct
  /// schema-conforming tuples by construction.
  void InsertUnchecked(Tuple t) {
    MarkMutated();
    tuples_.push_back(std::move(t));
  }

  /// Removes (one occurrence of) each tuple equal to `t`; returns the number
  /// of removed tuples (0 or 1 with `all_occurrences` false).
  int64_t Erase(const Tuple& t, bool all_occurrences = false);

  void Clear() {
    MarkMutated();
    tuples_.clear();
  }

  /// Cached equality index on `column`, built on first use and dropped by
  /// any mutation (Insert / InsertUnchecked / Erase / Clear).  Copies of the
  /// relation share the already-built (immutable) indexes.  Thread-safe:
  /// concurrent first-use builds are serialized by the cache mutex.
  const HashIndex& Index(int column) const;

  /// Pre-builds the indexes on `columns` (deduplicated) so later concurrent
  /// Index() calls are pure cache hits.  Out-of-range columns are ignored.
  void WarmIndexes(const std::vector<int>& columns) const;

  /// Cached per-row tuple hashes (hashes[i] == tuple(i).Hash()), built on
  /// first use and dropped by any mutation.  The shared_ptr keeps the
  /// column alive across a concurrent invalidation.  Thread-safe.
  std::shared_ptr<const std::vector<size_t>> TupleHashes() const;

  /// True iff some tuple equals `t`.
  bool ContainsTuple(const Tuple& t) const;

  /// Set-semantics copy: duplicates removed, input order preserved.
  Relation Distinct() const;

  /// Projection onto named attributes; fails on unknown names.
  Result<Relation> ProjectByName(const std::vector<std::string>& names) const;

  /// Number of distinct tuples.
  int64_t DistinctCount() const;

  /// Tuple width in bytes (sum of attribute sizes): s_R in the cost model.
  int TupleBytes() const { return schema_.TupleBytes(); }

  /// Sorted-by-tuple rendering for stable golden tests.
  std::string ToString(int64_t max_rows = 20) const;

 private:
  static uint64_t NextIdentity();

  // Mutations are single-writer (class comment), so the version bump is a
  // load+store (no read-modify-write needed) and the cache clear is
  // skipped entirely unless a cache was actually built -- result
  // materialization inserts row by row and must not pay a lock or an
  // atomic RMW per tuple.
  void MarkMutated() {
    version_.store(version_.load(std::memory_order_relaxed) + 1,
                   std::memory_order_release);
    if (caches_present_.load(std::memory_order_acquire)) DropCaches();
  }

  void DropCaches();

  std::string name_;
  Schema schema_;
  std::vector<Tuple> tuples_;
  std::atomic<uint64_t> identity_{NextIdentity()};
  std::atomic<uint64_t> version_{0};
  /// Guards index_cache_ and hash_cache_ (not the tuple store).
  mutable std::mutex cache_mutex_;
  /// True iff index_cache_ or hash_cache_ holds anything; lets MarkMutated
  /// skip the lock on cache-free relations.
  mutable std::atomic<bool> caches_present_{false};
  /// Lazily built per-column equality indexes (see Index()).  Indexes store
  /// row ids only, so copied relations can keep sharing them.
  mutable std::unordered_map<int, std::shared_ptr<const HashIndex>> index_cache_;
  /// Lazily built per-row tuple hashes (see TupleHashes()).
  mutable std::shared_ptr<const std::vector<size_t>> hash_cache_;
};

/// Set operations under set semantics (inputs deduplicated first).  Schemas
/// must have equal arity; attribute names are taken from `a`.
Result<Relation> SetUnion(const Relation& a, const Relation& b);
Result<Relation> SetIntersect(const Relation& a, const Relation& b);
Result<Relation> SetDifference(const Relation& a, const Relation& b);

/// True iff the distinct tuple sets are equal.  Uses the cached tuple-hash
/// columns of both inputs, so repeated extent comparisons against
/// unchanged relations skip re-hashing entirely.
bool SetEquals(const Relation& a, const Relation& b);

}  // namespace eve

#endif  // EVE_STORAGE_RELATION_H_
