// RowDedupTable: an open-addressing hash table over row ids for the dedup
// hot paths (Relation::Distinct / DistinctCount / SetEquals and the
// executor's fused distinct projection).
//
// It replaces the node-based `unordered_map<size_t, vector<int64_t>>`
// bucket maps: one flat allocation up front, linear probing, and no
// per-distinct-row node or vector allocations.  The table stores only
// (hash, row id); equality of candidate rows is confirmed through a
// caller-supplied predicate, so hash collisions stay correct and the table
// never touches tuple storage itself.

#ifndef EVE_STORAGE_ROW_DEDUP_H_
#define EVE_STORAGE_ROW_DEDUP_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace eve {

/// Flat hash set of (hash, row id) entries with caller-side equality.
class RowDedupTable {
 public:
  /// Sizes the table for `expected` inserts (load factor <= 0.5).
  explicit RowDedupTable(size_t expected) {
    size_t capacity = 16;
    while (capacity < expected * 2) capacity <<= 1;
    slots_.assign(capacity, kEmpty);
    hashes_.resize(capacity);
    mask_ = capacity - 1;
  }

  /// Row id of a recorded row with equal hash for which `equal(row)` holds,
  /// or -1 if none.
  template <typename EqualFn>
  int64_t Find(size_t hash, EqualFn&& equal) const {
    for (size_t slot = hash & mask_;; slot = (slot + 1) & mask_) {
      const int64_t row = slots_[slot];
      if (row == kEmpty) return -1;
      if (hashes_[slot] == hash && equal(row)) return row;
    }
  }

  /// Records (hash, row) unless a row with equal hash satisfying
  /// `equal(existing)` is already present.  Returns the existing row id, or
  /// -1 when `row` was inserted as a new distinct representative.
  template <typename EqualFn>
  int64_t InsertIfAbsent(size_t hash, int64_t row, EqualFn&& equal) {
    size_t slot = hash & mask_;
    for (;; slot = (slot + 1) & mask_) {
      const int64_t existing = slots_[slot];
      if (existing == kEmpty) break;
      if (hashes_[slot] == hash && equal(existing)) return existing;
    }
    slots_[slot] = row;
    hashes_[slot] = hash;
    if (++size_ * 2 > slots_.size()) Grow();
    return -1;
  }

  size_t size() const { return size_; }

 private:
  static constexpr int64_t kEmpty = -1;

  void Grow() {
    std::vector<int64_t> old_slots = std::move(slots_);
    std::vector<size_t> old_hashes = std::move(hashes_);
    slots_.assign(old_slots.size() * 2, kEmpty);
    hashes_.resize(slots_.size());
    mask_ = slots_.size() - 1;
    for (size_t i = 0; i < old_slots.size(); ++i) {
      if (old_slots[i] == kEmpty) continue;
      size_t slot = old_hashes[i] & mask_;
      while (slots_[slot] != kEmpty) slot = (slot + 1) & mask_;
      slots_[slot] = old_slots[i];
      hashes_[slot] = old_hashes[i];
    }
  }

  std::vector<int64_t> slots_;  ///< Row ids; kEmpty marks a free slot.
  std::vector<size_t> hashes_;  ///< Full hash per occupied slot.
  size_t mask_ = 0;
  size_t size_ = 0;
};

}  // namespace eve

#endif  // EVE_STORAGE_ROW_DEDUP_H_
