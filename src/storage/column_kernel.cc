#include "storage/column_kernel.h"

#include <cmath>

namespace eve {

namespace {

// Instantiates `body` with the comparator for `op`, hoisting the operator
// switch out of the row loop.
template <typename Body>
inline void DispatchOp(CompOp op, Body&& body) {
  switch (op) {
    case CompOp::kLess:
      body([](auto a, auto b) { return a < b; });
      return;
    case CompOp::kLessEqual:
      body([](auto a, auto b) { return a <= b; });
      return;
    case CompOp::kEqual:
      body([](auto a, auto b) { return a == b; });
      return;
    case CompOp::kGreaterEqual:
      body([](auto a, auto b) { return a >= b; });
      return;
    case CompOp::kGreater:
      body([](auto a, auto b) { return a > b; });
      return;
    case CompOp::kNotEqual:
      body([](auto a, auto b) { return a != b; });
      return;
  }
}

}  // namespace

void AndCompareColumnConst(CompOp op, const Value* col, int64_t n,
                           const Value& rhs, bool col_all_int64,
                           uint8_t* mask) {
  if (col_all_int64 && rhs.type() == DataType::kInt64) {
    const int64_t r = rhs.AsInt();
    DispatchOp(op, [&](auto cmp) {
      for (int64_t i = 0; i < n; ++i) {
        mask[i] &= static_cast<uint8_t>(cmp(col[i].AsInt(), r));
      }
    });
    return;
  }
  if (col_all_int64 && rhs.type() == DataType::kDouble &&
      !std::isnan(rhs.AsDouble())) {
    const double r = rhs.AsDouble();
    DispatchOp(op, [&](auto cmp) {
      for (int64_t i = 0; i < n; ++i) {
        mask[i] &=
            static_cast<uint8_t>(cmp(static_cast<double>(col[i].AsInt()), r));
      }
    });
    return;
  }
  for (int64_t i = 0; i < n; ++i) {
    mask[i] &= static_cast<uint8_t>(EvalCompOp(op, col[i], rhs));
  }
}

void AndCompareColumns(CompOp op, const Value* lhs, const Value* rhs,
                       int64_t n, bool all_int64, uint8_t* mask) {
  if (all_int64) {
    DispatchOp(op, [&](auto cmp) {
      for (int64_t i = 0; i < n; ++i) {
        mask[i] &= static_cast<uint8_t>(cmp(lhs[i].AsInt(), rhs[i].AsInt()));
      }
    });
    return;
  }
  for (int64_t i = 0; i < n; ++i) {
    mask[i] &= static_cast<uint8_t>(EvalCompOp(op, lhs[i], rhs[i]));
  }
}

void AndCompareGather(CompOp op, const Value* lcol, const int64_t* lrows,
                      const Value* rcol, const int64_t* rrows,
                      const Value* rhs_const, int64_t n, bool all_int64,
                      uint8_t* mask) {
  if (rcol != nullptr) {
    if (all_int64) {
      DispatchOp(op, [&](auto cmp) {
        for (int64_t i = 0; i < n; ++i) {
          mask[i] &= static_cast<uint8_t>(
              cmp(lcol[lrows[i]].AsInt(), rcol[rrows[i]].AsInt()));
        }
      });
      return;
    }
    for (int64_t i = 0; i < n; ++i) {
      mask[i] &=
          static_cast<uint8_t>(EvalCompOp(op, lcol[lrows[i]], rcol[rrows[i]]));
    }
    return;
  }
  if (all_int64 && rhs_const->type() == DataType::kInt64) {
    const int64_t r = rhs_const->AsInt();
    DispatchOp(op, [&](auto cmp) {
      for (int64_t i = 0; i < n; ++i) {
        mask[i] &= static_cast<uint8_t>(cmp(lcol[lrows[i]].AsInt(), r));
      }
    });
    return;
  }
  for (int64_t i = 0; i < n; ++i) {
    mask[i] &= static_cast<uint8_t>(EvalCompOp(op, lcol[lrows[i]], *rhs_const));
  }
}

void MixHashColumn(const Value* col, int64_t n, size_t* acc) {
  for (int64_t i = 0; i < n; ++i) {
    acc[i] = (acc[i] ^ col[i].Hash()) * kTupleHashPrime;
  }
}

void MixHashColumnGather(const Value* col, const int64_t* rows, int64_t n,
                         size_t* acc) {
  for (int64_t i = 0; i < n; ++i) {
    acc[i] = (acc[i] ^ col[rows[i]].Hash()) * kTupleHashPrime;
  }
}

}  // namespace eve
