#include "storage/column_kernel.h"

#include <cmath>
#include <cstring>

// The packed int64-vs-constant run loop is hand-vectorized where the build
// ISA has 64-bit SIMD compares and mask-to-byte moves (AVX-512 F+BW+VL;
// see EVE_NATIVE_KERNELS in CMakeLists.txt).  Baseline x86-64 has neither,
// so the compiler's scalar loop is what the fallback costs.
#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512VL__)
#include <immintrin.h>
#define EVE_KERNEL_AVX512 1
#endif

namespace eve {

namespace {

// Instantiates `body` with the comparator for `op`, hoisting the operator
// switch out of the row loop.
template <typename Body>
inline void DispatchOp(CompOp op, Body&& body) {
  switch (op) {
    case CompOp::kLess:
      body([](auto a, auto b) { return a < b; });
      return;
    case CompOp::kLessEqual:
      body([](auto a, auto b) { return a <= b; });
      return;
    case CompOp::kEqual:
      body([](auto a, auto b) { return a == b; });
      return;
    case CompOp::kGreaterEqual:
      body([](auto a, auto b) { return a >= b; });
      return;
    case CompOp::kGreater:
      body([](auto a, auto b) { return a > b; });
      return;
    case CompOp::kNotEqual:
      body([](auto a, auto b) { return a != b; });
      return;
  }
}

// Calls packed(begin, end) for each maximal exception-free row range of
// `col` and exc(row, value) for each exception row, ascending.  The packed
// calls may read col.words() directly.
template <typename PackedFn, typename ExcFn>
inline void ForEachRun(const ColumnSegment& col, PackedFn&& packed,
                       ExcFn&& exc) {
  const auto& rows = col.exception_rows();
  const auto& vals = col.exception_values();
  int64_t begin = 0;
  for (size_t k = 0; k < rows.size(); ++k) {
    if (rows[k] > begin) packed(begin, rows[k]);
    exc(rows[k], vals[k]);
    begin = rows[k] + 1;
  }
  if (begin < col.size()) packed(begin, col.size());
}

// Two-column variant: packed(begin, end) covers ranges exception-free in
// BOTH segments; exc(row) fires for rows carried by either sidecar.
template <typename PackedFn, typename ExcFn>
inline void ForEachRun2(const ColumnSegment& a, const ColumnSegment& b,
                        PackedFn&& packed, ExcFn&& exc) {
  const auto& ra = a.exception_rows();
  const auto& rb = b.exception_rows();
  size_t ia = 0;
  size_t ib = 0;
  int64_t begin = 0;
  while (ia < ra.size() || ib < rb.size()) {
    int64_t r;
    if (ib >= rb.size() || (ia < ra.size() && ra[ia] <= rb[ib])) {
      r = ra[ia];
    } else {
      r = rb[ib];
    }
    if (r > begin) packed(begin, r);
    exc(r);
    if (ia < ra.size() && ra[ia] == r) ++ia;
    if (ib < rb.size() && rb[ib] == r) ++ib;
    begin = r + 1;
  }
  if (begin < a.size()) packed(begin, a.size());
}

inline void ZeroRun(uint8_t* mask, int64_t begin, int64_t end) {
  std::memset(mask + begin, 0, static_cast<size_t>(end - begin));
}

inline Value UnpackStringWord(int64_t word, uint32_t pool) {
  const uint64_t w = static_cast<uint64_t>(word);
  return Value::FromInterned(static_cast<uint32_t>(w & 0xFFFFFFFFu), pool,
                             static_cast<uint32_t>(w >> 32));
}

inline size_t HashStringWord(int64_t word) {
  return value_hash::HashStringContent(
      static_cast<uint32_t>(static_cast<uint64_t>(word) >> 32));
}

// A STRING rhs of col's pool can word-compare for equality ops; every
// other op needs real string ordering.
inline bool StringEqualityOp(CompOp op) {
  return op == CompOp::kEqual || op == CompOp::kNotEqual;
}

#ifdef EVE_KERNEL_AVX512

// mask[i] &= (w[i] PRED r) over [begin, end), 16 rows per step: two 8-lane
// compares fold into one 16-bit k-mask, which expands to 0/1 bytes and
// ANDs into the mask in one 128-bit op.
template <int kPred>
inline void AndWordsConstAvx512(const int64_t* w, int64_t begin, int64_t end,
                                int64_t rhs, uint8_t* mask) {
  const __m512i r = _mm512_set1_epi64(rhs);
  const __m128i ones = _mm_set1_epi8(1);
  int64_t i = begin;
  for (; i + 16 <= end; i += 16) {
    const __m512i a0 = _mm512_loadu_si512(w + i);
    const __m512i a1 = _mm512_loadu_si512(w + i + 8);
    const __mmask8 k0 = _mm512_cmp_epi64_mask(a0, r, kPred);
    const __mmask8 k1 = _mm512_cmp_epi64_mask(a1, r, kPred);
    const __mmask16 k = _mm512_kunpackb(k1, k0);
    const __m128i bytes = _mm_maskz_mov_epi8(k, ones);
    const __m128i m =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(mask + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(mask + i),
                     _mm_and_si128(m, bytes));
  }
  for (; i < end; ++i) {
    bool t;
    if constexpr (kPred == _MM_CMPINT_LT) t = w[i] < rhs;
    if constexpr (kPred == _MM_CMPINT_LE) t = w[i] <= rhs;
    if constexpr (kPred == _MM_CMPINT_EQ) t = w[i] == rhs;
    if constexpr (kPred == _MM_CMPINT_NLT) t = w[i] >= rhs;
    if constexpr (kPred == _MM_CMPINT_NLE) t = w[i] > rhs;
    if constexpr (kPred == _MM_CMPINT_NE) t = w[i] != rhs;
    mask[i] &= static_cast<uint8_t>(t);
  }
}

#endif  // EVE_KERNEL_AVX512

// mask[i] &= (w[i] op r) over [begin, end): the innermost loop of integer
// selection pushdown.  SIMD when compiled in, the scalar fold otherwise.
inline void AndWordsConst(CompOp op, const int64_t* w, int64_t begin,
                          int64_t end, int64_t rhs, uint8_t* mask) {
#ifdef EVE_KERNEL_AVX512
  switch (op) {
    case CompOp::kLess:
      AndWordsConstAvx512<_MM_CMPINT_LT>(w, begin, end, rhs, mask);
      return;
    case CompOp::kLessEqual:
      AndWordsConstAvx512<_MM_CMPINT_LE>(w, begin, end, rhs, mask);
      return;
    case CompOp::kEqual:
      AndWordsConstAvx512<_MM_CMPINT_EQ>(w, begin, end, rhs, mask);
      return;
    case CompOp::kGreaterEqual:
      AndWordsConstAvx512<_MM_CMPINT_NLT>(w, begin, end, rhs, mask);
      return;
    case CompOp::kGreater:
      AndWordsConstAvx512<_MM_CMPINT_NLE>(w, begin, end, rhs, mask);
      return;
    case CompOp::kNotEqual:
      AndWordsConstAvx512<_MM_CMPINT_NE>(w, begin, end, rhs, mask);
      return;
  }
#else
  DispatchOp(op, [&](auto cmp) {
    for (int64_t i = begin; i < end; ++i) {
      mask[i] &= static_cast<uint8_t>(cmp(w[i], rhs));
    }
  });
#endif
}

}  // namespace

void AndCompareColumnConst(CompOp op, const ColumnSegment& col,
                           const Value& rhs, uint8_t* mask) {
  const int64_t n = col.size();
  switch (col.encoding()) {
    case ColumnSegment::Encoding::kInt64: {
      const int64_t* w = col.words();
      if (rhs.type() == DataType::kInt64) {
        const int64_t r = rhs.AsInt();
        ForEachRun(
            col,
            [&](int64_t b, int64_t e) { AndWordsConst(op, w, b, e, r, mask); },
            [&](int64_t row, const Value& v) {
              mask[row] &= static_cast<uint8_t>(EvalCompOp(op, v, rhs));
            });
        return;
      }
      if (rhs.type() == DataType::kDouble && !std::isnan(rhs.AsDouble())) {
        const double r = rhs.AsDouble();
        DispatchOp(op, [&](auto cmp) {
          ForEachRun(
              col,
              [&](int64_t b, int64_t e) {
                for (int64_t i = b; i < e; ++i) {
                  mask[i] &=
                      static_cast<uint8_t>(cmp(static_cast<double>(w[i]), r));
                }
              },
              [&](int64_t row, const Value& v) {
                mask[row] &= static_cast<uint8_t>(EvalCompOp(op, v, rhs));
              });
        });
        return;
      }
      // NULL, NaN, or a string rhs: false against every packed int row.
      ForEachRun(
          col, [&](int64_t b, int64_t e) { ZeroRun(mask, b, e); },
          [&](int64_t row, const Value& v) {
            mask[row] &= static_cast<uint8_t>(EvalCompOp(op, v, rhs));
          });
      return;
    }
    case ColumnSegment::Encoding::kString: {
      const int64_t* w = col.words();
      if (rhs.type() == DataType::kString) {
        if (rhs.string_pool_index() == col.pool() && StringEqualityOp(op)) {
          const int64_t r = ColumnSegment::StringWord(rhs);
          DispatchOp(op, [&](auto cmp) {
            ForEachRun(
                col,
                [&](int64_t b, int64_t e) {
                  for (int64_t i = b; i < e; ++i) {
                    mask[i] &= static_cast<uint8_t>(cmp(w[i], r));
                  }
                },
                [&](int64_t row, const Value& v) {
                  mask[row] &= static_cast<uint8_t>(EvalCompOp(op, v, rhs));
                });
          });
          return;
        }
        // Ordered / cross-pool string compare: per row, but still skipping
        // the sidecar lookup on packed rows.
        const uint32_t pool = col.pool();
        ForEachRun(
            col,
            [&](int64_t b, int64_t e) {
              for (int64_t i = b; i < e; ++i) {
                mask[i] &= static_cast<uint8_t>(
                    EvalCompOp(op, UnpackStringWord(w[i], pool), rhs));
              }
            },
            [&](int64_t row, const Value& v) {
              mask[row] &= static_cast<uint8_t>(EvalCompOp(op, v, rhs));
            });
        return;
      }
      // Numeric or NULL rhs: false against every packed string row.
      ForEachRun(
          col, [&](int64_t b, int64_t e) { ZeroRun(mask, b, e); },
          [&](int64_t row, const Value& v) {
            mask[row] &= static_cast<uint8_t>(EvalCompOp(op, v, rhs));
          });
      return;
    }
    case ColumnSegment::Encoding::kTagged: {
      const Value* col_v = col.tagged();
      if (col.tagged_all_int64() && rhs.type() == DataType::kInt64) {
        const int64_t r = rhs.AsInt();
        DispatchOp(op, [&](auto cmp) {
          for (int64_t i = 0; i < n; ++i) {
            mask[i] &= static_cast<uint8_t>(cmp(col_v[i].AsInt(), r));
          }
        });
        return;
      }
      if (col.tagged_all_int64() && rhs.type() == DataType::kDouble &&
          !std::isnan(rhs.AsDouble())) {
        const double r = rhs.AsDouble();
        DispatchOp(op, [&](auto cmp) {
          for (int64_t i = 0; i < n; ++i) {
            mask[i] &= static_cast<uint8_t>(
                cmp(static_cast<double>(col_v[i].AsInt()), r));
          }
        });
        return;
      }
      for (int64_t i = 0; i < n; ++i) {
        mask[i] &= static_cast<uint8_t>(EvalCompOp(op, col_v[i], rhs));
      }
      return;
    }
  }
}

void AndCompareColumns(CompOp op, const ColumnSegment& lhs,
                       const ColumnSegment& rhs, uint8_t* mask) {
  const int64_t n = lhs.size();
  const auto generic_row = [&](int64_t row) {
    mask[row] &= static_cast<uint8_t>(
        EvalCompOp(op, lhs.ValueAt(row), rhs.ValueAt(row)));
  };
  if (lhs.encoding() == ColumnSegment::Encoding::kInt64 &&
      rhs.encoding() == ColumnSegment::Encoding::kInt64) {
    const int64_t* lw = lhs.words();
    const int64_t* rw = rhs.words();
    DispatchOp(op, [&](auto cmp) {
      ForEachRun2(
          lhs, rhs,
          [&](int64_t b, int64_t e) {
            for (int64_t i = b; i < e; ++i) {
              mask[i] &= static_cast<uint8_t>(cmp(lw[i], rw[i]));
            }
          },
          generic_row);
    });
    return;
  }
  if (lhs.encoding() == ColumnSegment::Encoding::kString &&
      rhs.encoding() == ColumnSegment::Encoding::kString &&
      lhs.pool() == rhs.pool() && StringEqualityOp(op)) {
    const int64_t* lw = lhs.words();
    const int64_t* rw = rhs.words();
    DispatchOp(op, [&](auto cmp) {
      ForEachRun2(
          lhs, rhs,
          [&](int64_t b, int64_t e) {
            for (int64_t i = b; i < e; ++i) {
              mask[i] &= static_cast<uint8_t>(cmp(lw[i], rw[i]));
            }
          },
          generic_row);
    });
    return;
  }
  if (lhs.packed() && rhs.packed() && lhs.encoding() != rhs.encoding()) {
    // Packed int vs packed string rows are never comparable; only the
    // sidecar rows can hold cross-type surprises.
    ForEachRun2(
        lhs, rhs, [&](int64_t b, int64_t e) { ZeroRun(mask, b, e); },
        generic_row);
    return;
  }
  if (lhs.encoding() == ColumnSegment::Encoding::kInt64 &&
      rhs.tagged_all_int64()) {
    const int64_t* lw = lhs.words();
    const Value* rv = rhs.tagged();
    DispatchOp(op, [&](auto cmp) {
      ForEachRun(
          lhs,
          [&](int64_t b, int64_t e) {
            for (int64_t i = b; i < e; ++i) {
              mask[i] &= static_cast<uint8_t>(cmp(lw[i], rv[i].AsInt()));
            }
          },
          [&](int64_t row, const Value&) { generic_row(row); });
    });
    return;
  }
  if (rhs.encoding() == ColumnSegment::Encoding::kInt64 &&
      lhs.tagged_all_int64()) {
    const Value* lv = lhs.tagged();
    const int64_t* rw = rhs.words();
    DispatchOp(op, [&](auto cmp) {
      ForEachRun(
          rhs,
          [&](int64_t b, int64_t e) {
            for (int64_t i = b; i < e; ++i) {
              mask[i] &= static_cast<uint8_t>(cmp(lv[i].AsInt(), rw[i]));
            }
          },
          [&](int64_t row, const Value&) { generic_row(row); });
    });
    return;
  }
  if (lhs.tagged_all_int64() && rhs.tagged_all_int64()) {
    const Value* lv = lhs.tagged();
    const Value* rv = rhs.tagged();
    DispatchOp(op, [&](auto cmp) {
      for (int64_t i = 0; i < n; ++i) {
        mask[i] &= static_cast<uint8_t>(cmp(lv[i].AsInt(), rv[i].AsInt()));
      }
    });
    return;
  }
  if (lhs.encoding() == ColumnSegment::Encoding::kTagged &&
      rhs.encoding() == ColumnSegment::Encoding::kTagged) {
    const Value* lv = lhs.tagged();
    const Value* rv = rhs.tagged();
    for (int64_t i = 0; i < n; ++i) {
      mask[i] &= static_cast<uint8_t>(EvalCompOp(op, lv[i], rv[i]));
    }
    return;
  }
  for (int64_t i = 0; i < n; ++i) generic_row(i);
}

void AndCompareGather(CompOp op, const ColumnSegment& lcol,
                      const int64_t* lrows, const ColumnSegment* rcol,
                      const int64_t* rrows, const Value* rhs_const, int64_t n,
                      uint8_t* mask) {
  if (rcol != nullptr) {
    const bool both_int =
        lcol.encoding() == ColumnSegment::Encoding::kInt64 &&
        rcol->encoding() == ColumnSegment::Encoding::kInt64 &&
        !lcol.has_exceptions() && !rcol->has_exceptions();
    if (both_int) {
      const int64_t* lw = lcol.words();
      const int64_t* rw = rcol->words();
      DispatchOp(op, [&](auto cmp) {
        for (int64_t i = 0; i < n; ++i) {
          mask[i] &= static_cast<uint8_t>(cmp(lw[lrows[i]], rw[rrows[i]]));
        }
      });
      return;
    }
    const bool both_same_pool_strings =
        lcol.encoding() == ColumnSegment::Encoding::kString &&
        rcol->encoding() == ColumnSegment::Encoding::kString &&
        lcol.pool() == rcol->pool() && !lcol.has_exceptions() &&
        !rcol->has_exceptions() && StringEqualityOp(op);
    if (both_same_pool_strings) {
      const int64_t* lw = lcol.words();
      const int64_t* rw = rcol->words();
      DispatchOp(op, [&](auto cmp) {
        for (int64_t i = 0; i < n; ++i) {
          mask[i] &= static_cast<uint8_t>(cmp(lw[lrows[i]], rw[rrows[i]]));
        }
      });
      return;
    }
    if (lcol.tagged_all_int64() && rcol->tagged_all_int64()) {
      const Value* lv = lcol.tagged();
      const Value* rv = rcol->tagged();
      DispatchOp(op, [&](auto cmp) {
        for (int64_t i = 0; i < n; ++i) {
          mask[i] &= static_cast<uint8_t>(
              cmp(lv[lrows[i]].AsInt(), rv[rrows[i]].AsInt()));
        }
      });
      return;
    }
    for (int64_t i = 0; i < n; ++i) {
      mask[i] &= static_cast<uint8_t>(
          EvalCompOp(op, lcol.ValueAt(lrows[i]), rcol->ValueAt(rrows[i])));
    }
    return;
  }
  if (lcol.encoding() == ColumnSegment::Encoding::kInt64 &&
      !lcol.has_exceptions() && rhs_const->type() == DataType::kInt64) {
    const int64_t* w = lcol.words();
    const int64_t r = rhs_const->AsInt();
    DispatchOp(op, [&](auto cmp) {
      for (int64_t i = 0; i < n; ++i) {
        mask[i] &= static_cast<uint8_t>(cmp(w[lrows[i]], r));
      }
    });
    return;
  }
  if (lcol.encoding() == ColumnSegment::Encoding::kString &&
      !lcol.has_exceptions() && rhs_const->type() == DataType::kString &&
      rhs_const->string_pool_index() == lcol.pool() && StringEqualityOp(op)) {
    const int64_t* w = lcol.words();
    const int64_t r = ColumnSegment::StringWord(*rhs_const);
    DispatchOp(op, [&](auto cmp) {
      for (int64_t i = 0; i < n; ++i) {
        mask[i] &= static_cast<uint8_t>(cmp(w[lrows[i]], r));
      }
    });
    return;
  }
  if (lcol.tagged_all_int64() && rhs_const->type() == DataType::kInt64) {
    const Value* lv = lcol.tagged();
    const int64_t r = rhs_const->AsInt();
    DispatchOp(op, [&](auto cmp) {
      for (int64_t i = 0; i < n; ++i) {
        mask[i] &= static_cast<uint8_t>(cmp(lv[lrows[i]].AsInt(), r));
      }
    });
    return;
  }
  for (int64_t i = 0; i < n; ++i) {
    mask[i] &= static_cast<uint8_t>(
        EvalCompOp(op, lcol.ValueAt(lrows[i]), *rhs_const));
  }
}

namespace {

// Shared shape of HashColumn / MixHashColumn: store(i, hash) receives every
// row's value hash in one pass, packed rows without Value materialization.
template <typename StoreFn>
inline void ForEachRowHash(const ColumnSegment& col, StoreFn&& store) {
  switch (col.encoding()) {
    case ColumnSegment::Encoding::kInt64: {
      const int64_t* w = col.words();
      ForEachRun(
          col,
          [&](int64_t b, int64_t e) {
            for (int64_t i = b; i < e; ++i) {
              store(i, value_hash::HashInt64(w[i]));
            }
          },
          [&](int64_t row, const Value& v) { store(row, v.Hash()); });
      return;
    }
    case ColumnSegment::Encoding::kString: {
      const int64_t* w = col.words();
      ForEachRun(
          col,
          [&](int64_t b, int64_t e) {
            for (int64_t i = b; i < e; ++i) store(i, HashStringWord(w[i]));
          },
          [&](int64_t row, const Value& v) { store(row, v.Hash()); });
      return;
    }
    case ColumnSegment::Encoding::kTagged: {
      const Value* tv = col.tagged();
      const int64_t n = col.size();
      for (int64_t i = 0; i < n; ++i) store(i, tv[i].Hash());
      return;
    }
  }
}

}  // namespace

void HashColumn(const ColumnSegment& col, size_t* out) {
  ForEachRowHash(col, [&](int64_t i, size_t h) { out[i] = h; });
}

void MixHashColumn(const ColumnSegment& col, size_t* acc) {
  ForEachRowHash(col, [&](int64_t i, size_t h) {
    acc[i] = (acc[i] ^ h) * kTupleHashPrime;
  });
}

void MixHashColumnGather(const ColumnSegment& col, const int64_t* rows,
                         int64_t n, size_t* acc) {
  switch (col.encoding()) {
    case ColumnSegment::Encoding::kInt64:
      if (!col.has_exceptions()) {
        const int64_t* w = col.words();
        for (int64_t i = 0; i < n; ++i) {
          acc[i] = (acc[i] ^ value_hash::HashInt64(w[rows[i]])) *
                   kTupleHashPrime;
        }
        return;
      }
      break;
    case ColumnSegment::Encoding::kString:
      if (!col.has_exceptions()) {
        const int64_t* w = col.words();
        for (int64_t i = 0; i < n; ++i) {
          acc[i] = (acc[i] ^ HashStringWord(w[rows[i]])) * kTupleHashPrime;
        }
        return;
      }
      break;
    case ColumnSegment::Encoding::kTagged: {
      const Value* tv = col.tagged();
      for (int64_t i = 0; i < n; ++i) {
        acc[i] = (acc[i] ^ tv[rows[i]].Hash()) * kTupleHashPrime;
      }
      return;
    }
  }
  for (int64_t i = 0; i < n; ++i) {
    acc[i] = (acc[i] ^ col.ValueAt(rows[i]).Hash()) * kTupleHashPrime;
  }
}

}  // namespace eve
