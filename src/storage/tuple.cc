#include "storage/tuple.h"

#include "common/str_util.h"

namespace eve {

Tuple Tuple::Project(const std::vector<int>& indexes) const {
  std::vector<Value> out;
  out.reserve(indexes.size());
  for (int i : indexes) out.push_back(values_[i]);
  return Tuple(std::move(out));
}

Tuple Tuple::Concat(const Tuple& other) const {
  std::vector<Value> out = values_;
  out.insert(out.end(), other.values_.begin(), other.values_.end());
  return Tuple(std::move(out));
}

bool Tuple::operator==(const Tuple& o) const {
  if (values_.size() != o.values_.size()) return false;
  for (size_t i = 0; i < values_.size(); ++i) {
    if (!(values_[i] == o.values_[i])) return false;
  }
  return true;
}

bool Tuple::operator<(const Tuple& o) const {
  const size_t n = std::min(values_.size(), o.values_.size());
  for (size_t i = 0; i < n; ++i) {
    const auto c = values_[i].Compare(o.values_[i]);
    if (c == std::strong_ordering::less) return true;
    if (c == std::strong_ordering::greater) return false;
  }
  return values_.size() < o.values_.size();
}

size_t Tuple::Hash() const {
  size_t h = kTupleHashBasis;
  for (const Value& v : values_) {
    h ^= v.Hash();
    h *= kTupleHashPrime;
  }
  return h;
}

std::string Tuple::ToString() const {
  return "(" +
         JoinMapped(values_, ", ", [](const Value& v) { return v.ToString(); }) +
         ")";
}

}  // namespace eve
