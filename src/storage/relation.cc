#include "storage/relation.h"

#include <algorithm>
#include <unordered_set>

#include "common/str_util.h"
#include "storage/hash_index.h"

namespace eve {

namespace {

// Numeric INT values may be stored where DOUBLE is declared and vice versa;
// comparisons promote, so only string/number mismatches are errors.
bool TypeConforms(DataType declared, DataType actual) {
  if (actual == DataType::kNull) return true;
  if (declared == actual) return true;
  const bool declared_num =
      declared == DataType::kInt64 || declared == DataType::kDouble;
  const bool actual_num =
      actual == DataType::kInt64 || actual == DataType::kDouble;
  return declared_num && actual_num;
}

}  // namespace

Status Relation::Insert(Tuple t) {
  if (t.size() != schema_.size()) {
    return Status::InvalidArgument(StrFormat(
        "tuple arity %d does not match schema arity %d of relation %s",
        t.size(), schema_.size(), name_.c_str()));
  }
  for (int i = 0; i < t.size(); ++i) {
    if (!TypeConforms(schema_.attribute(i).type, t.at(i).type())) {
      return Status::InvalidArgument(StrFormat(
          "value %s does not conform to attribute %s of type %s",
          t.at(i).ToString().c_str(), schema_.attribute(i).name.c_str(),
          std::string(DataTypeName(schema_.attribute(i).type)).c_str()));
    }
  }
  InvalidateIndexes();
  tuples_.push_back(std::move(t));
  return Status::OK();
}

int64_t Relation::Erase(const Tuple& t, bool all_occurrences) {
  int64_t removed = 0;
  for (auto it = tuples_.begin(); it != tuples_.end();) {
    if (*it == t) {
      it = tuples_.erase(it);
      ++removed;
      if (!all_occurrences) break;
    } else {
      ++it;
    }
  }
  if (removed > 0) InvalidateIndexes();
  return removed;
}

const HashIndex& Relation::Index(int column) const {
  auto it = index_cache_.find(column);
  if (it == index_cache_.end()) {
    it = index_cache_
             .emplace(column, std::make_shared<const HashIndex>(*this, column))
             .first;
  }
  return *it->second;
}

bool Relation::ContainsTuple(const Tuple& t) const {
  return std::any_of(tuples_.begin(), tuples_.end(),
                     [&](const Tuple& u) { return u == t; });
}

Relation Relation::Distinct() const {
  Relation out(name_, schema_);
  std::unordered_set<Tuple, TupleHash> seen;
  for (const Tuple& t : tuples_) {
    if (seen.insert(t).second) out.InsertUnchecked(t);
  }
  return out;
}

Result<Relation> Relation::ProjectByName(
    const std::vector<std::string>& names) const {
  std::vector<int> indexes;
  std::vector<Attribute> attrs;
  for (const std::string& n : names) {
    const auto idx = schema_.IndexOf(n);
    if (!idx.has_value()) {
      return Status::NotFound("attribute " + n + " not in relation " + name_);
    }
    indexes.push_back(*idx);
    attrs.push_back(schema_.attribute(*idx));
  }
  Relation out(name_, Schema(std::move(attrs)));
  for (const Tuple& t : tuples_) out.InsertUnchecked(t.Project(indexes));
  return out;
}

int64_t Relation::DistinctCount() const {
  std::unordered_set<Tuple, TupleHash> seen(tuples_.begin(), tuples_.end());
  return static_cast<int64_t>(seen.size());
}

std::string Relation::ToString(int64_t max_rows) const {
  std::string out = name_ + schema_.ToString() + " [" +
                    StrFormat("%lld", static_cast<long long>(cardinality())) +
                    " tuples]\n";
  std::vector<Tuple> sorted = tuples_;
  std::sort(sorted.begin(), sorted.end());
  int64_t shown = 0;
  for (const Tuple& t : sorted) {
    if (shown++ >= max_rows) {
      out += "  ...\n";
      break;
    }
    out += "  " + t.ToString() + "\n";
  }
  return out;
}

namespace {

Status CheckUnionCompatible(const Relation& a, const Relation& b) {
  if (a.schema().size() != b.schema().size()) {
    return Status::InvalidArgument(StrFormat(
        "set operation on relations of different arity (%d vs %d)",
        a.schema().size(), b.schema().size()));
  }
  return Status::OK();
}

}  // namespace

Result<Relation> SetUnion(const Relation& a, const Relation& b) {
  EVE_RETURN_IF_ERROR(CheckUnionCompatible(a, b));
  Relation out(a.name(), a.schema());
  std::unordered_set<Tuple, TupleHash> seen;
  for (const Relation* r : {&a, &b}) {
    for (const Tuple& t : r->tuples()) {
      if (seen.insert(t).second) out.InsertUnchecked(t);
    }
  }
  return out;
}

Result<Relation> SetIntersect(const Relation& a, const Relation& b) {
  EVE_RETURN_IF_ERROR(CheckUnionCompatible(a, b));
  std::unordered_set<Tuple, TupleHash> in_b(b.tuples().begin(),
                                            b.tuples().end());
  Relation out(a.name(), a.schema());
  std::unordered_set<Tuple, TupleHash> emitted;
  for (const Tuple& t : a.tuples()) {
    if (in_b.count(t) > 0 && emitted.insert(t).second) out.InsertUnchecked(t);
  }
  return out;
}

Result<Relation> SetDifference(const Relation& a, const Relation& b) {
  EVE_RETURN_IF_ERROR(CheckUnionCompatible(a, b));
  std::unordered_set<Tuple, TupleHash> in_b(b.tuples().begin(),
                                            b.tuples().end());
  Relation out(a.name(), a.schema());
  std::unordered_set<Tuple, TupleHash> emitted;
  for (const Tuple& t : a.tuples()) {
    if (in_b.count(t) == 0 && emitted.insert(t).second) out.InsertUnchecked(t);
  }
  return out;
}

bool SetEquals(const Relation& a, const Relation& b) {
  if (a.schema().size() != b.schema().size()) return false;
  std::unordered_set<Tuple, TupleHash> sa(a.tuples().begin(), a.tuples().end());
  std::unordered_set<Tuple, TupleHash> sb(b.tuples().begin(), b.tuples().end());
  return sa == sb;
}

}  // namespace eve
