#include "storage/relation.h"

#include <algorithm>
#include <atomic>

#include "common/check.h"
#include "common/str_util.h"
#include "storage/column_kernel.h"
#include "storage/hash_index.h"
#include "storage/row_dedup.h"

namespace eve {

namespace {

// Numeric INT values may be stored where DOUBLE is declared and vice versa;
// comparisons promote, so only string/number mismatches are errors.
bool TypeConforms(DataType declared, DataType actual) {
  if (actual == DataType::kNull) return true;
  if (declared == actual) return true;
  const bool declared_num =
      declared == DataType::kInt64 || declared == DataType::kDouble;
  const bool actual_num =
      actual == DataType::kInt64 || actual == DataType::kDouble;
  return declared_num && actual_num;
}

// Records row `i` of `rel` as a distinct representative unless an equal row
// is already present; true iff the row was new.  The shared primitive of
// every hashed dedup path below (flat table, see storage/row_dedup.h);
// equality confirms through columnar row compares.
bool InsertIfDistinct(RowDedupTable& table, size_t hash, const Relation& rel,
                      int64_t i) {
  return table.InsertIfAbsent(hash, i, [&](int64_t j) {
           return rel.RowEquals(j, rel, i);
         }) < 0;
}

}  // namespace

uint64_t Relation::NextIdentity() {
  // Process-unique stamps: a relation rebuilt at the same address with the
  // same mutation count still gets a different identity, so prepared-plan
  // revalidation cannot be fooled by address reuse.
  static std::atomic<uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

void Relation::DropCaches() {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  index_cache_.clear();
  hash_cache_.reset();
  caches_present_.store(false, std::memory_order_release);
}

Relation::Relation(const Relation& other)
    : name_(other.name_),
      schema_(other.schema_),
      columns_(other.columns_),
      rows_(other.rows_) {
  std::lock_guard<std::mutex> lock(other.cache_mutex_);
  index_cache_ = other.index_cache_;
  hash_cache_ = other.hash_cache_;
  caches_present_.store(other.caches_present_.load(std::memory_order_acquire),
                        std::memory_order_release);
}

Relation& Relation::operator=(const Relation& other) {
  if (this == &other) return *this;
  name_ = other.name_;
  schema_ = other.schema_;
  columns_ = other.columns_;
  rows_ = other.rows_;
  identity_ = NextIdentity();
  version_ = 0;
  std::unordered_map<int, std::shared_ptr<const HashIndex>> indexes;
  std::shared_ptr<const std::vector<size_t>> hashes;
  {
    std::lock_guard<std::mutex> lock(other.cache_mutex_);
    indexes = other.index_cache_;
    hashes = other.hash_cache_;
  }
  std::lock_guard<std::mutex> lock(cache_mutex_);
  index_cache_ = std::move(indexes);
  hash_cache_ = std::move(hashes);
  caches_present_.store(!index_cache_.empty() || hash_cache_ != nullptr,
                        std::memory_order_release);
  return *this;
}

Relation::Relation(Relation&& other) noexcept
    : name_(std::move(other.name_)),
      schema_(std::move(other.schema_)),
      columns_(std::move(other.columns_)),
      rows_(other.rows_) {
  other.rows_ = 0;
  std::lock_guard<std::mutex> lock(other.cache_mutex_);
  index_cache_ = std::move(other.index_cache_);
  hash_cache_ = std::move(other.hash_cache_);
  caches_present_.store(!index_cache_.empty() || hash_cache_ != nullptr,
                        std::memory_order_release);
  other.caches_present_.store(false, std::memory_order_release);
  // The source's columns were stolen: restamp it so stale plans notice.
  other.identity_ = NextIdentity();
  other.version_ = 0;
}

Relation& Relation::operator=(Relation&& other) noexcept {
  if (this == &other) return *this;
  name_ = std::move(other.name_);
  schema_ = std::move(other.schema_);
  columns_ = std::move(other.columns_);
  rows_ = other.rows_;
  other.rows_ = 0;
  identity_ = NextIdentity();
  version_ = 0;
  std::unordered_map<int, std::shared_ptr<const HashIndex>> indexes;
  std::shared_ptr<const std::vector<size_t>> hashes;
  {
    std::lock_guard<std::mutex> lock(other.cache_mutex_);
    indexes = std::move(other.index_cache_);
    hashes = std::move(other.hash_cache_);
    other.caches_present_.store(false, std::memory_order_release);
    other.identity_ = NextIdentity();
    other.version_ = 0;
  }
  std::lock_guard<std::mutex> lock(cache_mutex_);
  index_cache_ = std::move(indexes);
  hash_cache_ = std::move(hashes);
  caches_present_.store(!index_cache_.empty() || hash_cache_ != nullptr,
                        std::memory_order_release);
  return *this;
}

Relation Relation::FromColumns(std::string name, Schema schema,
                               std::vector<std::vector<Value>> columns) {
  std::vector<ColumnSegment> segments;
  segments.reserve(columns.size());
  for (std::vector<Value>& col : columns) {
    segments.push_back(ColumnSegment::FromValues(std::move(col)));
  }
  return FromSegments(std::move(name), std::move(schema),
                      std::move(segments));
}

Relation Relation::FromSegments(std::string name, Schema schema,
                                std::vector<ColumnSegment> columns) {
  std::vector<std::shared_ptr<ColumnSegment>> shared;
  shared.reserve(columns.size());
  for (ColumnSegment& col : columns) {
    shared.push_back(std::make_shared<ColumnSegment>(std::move(col)));
  }
  return FromSharedSegments(std::move(name), std::move(schema),
                            std::move(shared));
}

Relation Relation::FromSharedSegments(
    std::string name, Schema schema,
    std::vector<std::shared_ptr<ColumnSegment>> columns) {
  EVE_CHECK(static_cast<int>(columns.size()) == schema.size());
  Relation out(std::move(name), std::move(schema));
  const int64_t rows = columns.empty() ? 0 : columns[0]->size();
  for (const std::shared_ptr<ColumnSegment>& col : columns) {
    EVE_CHECK(col != nullptr && col->size() == rows);
  }
  out.columns_ = std::move(columns);
  out.rows_ = rows;
  return out;
}

Tuple Relation::TupleAt(int64_t row) const {
  std::vector<Value> values;
  values.reserve(columns_.size());
  for (const auto& col : columns_) values.push_back(col->ValueAt(row));
  return Tuple(std::move(values));
}

std::vector<Tuple> Relation::CopyTuples() const {
  std::vector<Tuple> out;
  out.reserve(static_cast<size_t>(rows_));
  for (int64_t row = 0; row < rows_; ++row) out.push_back(TupleAt(row));
  return out;
}

Tuple Relation::ConcatRow(const Tuple& prefix, int64_t row) const {
  std::vector<Value> values;
  values.reserve(prefix.values().size() + columns_.size());
  values.insert(values.end(), prefix.values().begin(), prefix.values().end());
  for (const auto& col : columns_) values.push_back(col->ValueAt(row));
  return Tuple(std::move(values));
}

void Relation::ReplaceSchema(Schema schema) {
  EVE_CHECK(schema.size() == schema_.size());
  MarkMutated();
  schema_ = std::move(schema);
}

void Relation::AddNullColumn(const Attribute& attribute) {
  MarkMutated();
  std::vector<Attribute> attrs = schema_.attributes();
  attrs.push_back(attribute);
  schema_ = Schema(std::move(attrs));
  // An all-NULL back-fill is a tagged segment (NULLs break tag uniformity;
  // vacuously uniform only while empty, as before).
  columns_.push_back(std::make_shared<ColumnSegment>(
      ColumnSegment::TaggedFromValues(
          std::vector<Value>(static_cast<size_t>(rows_)))));
}

Status Relation::Insert(Tuple t) {
  if (t.size() != schema_.size()) {
    return Status::InvalidArgument(StrFormat(
        "tuple arity %d does not match schema arity %d of relation %s",
        t.size(), schema_.size(), name_.c_str()));
  }
  for (int i = 0; i < t.size(); ++i) {
    if (!TypeConforms(schema_.attribute(i).type, t.at(i).type())) {
      return Status::InvalidArgument(StrFormat(
          "value %s does not conform to attribute %s of type %s",
          t.at(i).ToString().c_str(), schema_.attribute(i).name.c_str(),
          std::string(DataTypeName(schema_.attribute(i).type)).c_str()));
    }
  }
  AddTuple(std::move(t));
  return Status::OK();
}

void Relation::AddTuple(Tuple t) {
  // A hard check, not an assert: in a Release build a short tuple would
  // otherwise read past its value vector while splitting into columns.
  EVE_CHECK(t.size() == static_cast<int>(columns_.size()));
  MarkMutated();
  for (size_t c = 0; c < columns_.size(); ++c) {
    MutCol(c).Append(t.at(static_cast<int>(c)));
  }
  ++rows_;
}

int64_t Relation::Erase(const Tuple& t, bool all_occurrences) {
  // Pass 1: collect the doomed rows in scan order (first match only unless
  // `all_occurrences`).
  std::vector<int64_t> doomed;
  for (int64_t row = 0; row < rows_; ++row) {
    if (!RowEqualsTuple(row, t)) continue;
    doomed.push_back(row);
    if (!all_occurrences) break;
  }
  if (doomed.empty()) return 0;
  MarkMutated();
  // Pass 2: one stable compaction per column segment.
  for (size_t c = 0; c < columns_.size(); ++c) MutCol(c).EraseRows(doomed);
  rows_ -= static_cast<int64_t>(doomed.size());
  return static_cast<int64_t>(doomed.size());
}

int64_t Relation::EraseBatch(const std::vector<Tuple>& victims) {
  if (victims.empty() || rows_ == 0) return 0;
  // Bucket the victims by tuple hash.  Equal victims stay separate entries:
  // the scan below consumes the first non-exhausted equal entry per
  // matching row, which removes exactly the first count(v) occurrences of
  // each distinct victim in row order -- the same multiset repeated single
  // Erase calls would remove, in one pass.
  struct Want {
    const Tuple* tuple;
    bool used;
  };
  std::unordered_map<size_t, std::vector<Want>> wanted;
  wanted.reserve(victims.size());
  size_t eligible = 0;
  for (const Tuple& t : victims) {
    if (t.size() != static_cast<int>(columns_.size())) continue;
    wanted[t.Hash()].push_back(Want{&t, false});
    ++eligible;
  }
  if (eligible == 0) return 0;
  // One hash column for the whole scan; computed fresh rather than through
  // TupleHashes() so a no-op batch leaves the caches untouched.
  const std::vector<size_t> hashes = ComputeTupleHashes();
  std::vector<int64_t> doomed;
  size_t remaining = eligible;
  for (int64_t row = 0; row < rows_ && remaining > 0; ++row) {
    const auto it = wanted.find(hashes[static_cast<size_t>(row)]);
    if (it == wanted.end()) continue;
    for (Want& w : it->second) {
      if (w.used || !RowEqualsTuple(row, *w.tuple)) continue;
      w.used = true;
      --remaining;
      doomed.push_back(row);
      break;
    }
  }
  if (doomed.empty()) return 0;  // No version bump for a no-op batch.
  MarkMutated();
  for (size_t c = 0; c < columns_.size(); ++c) MutCol(c).EraseRows(doomed);
  rows_ -= static_cast<int64_t>(doomed.size());
  return static_cast<int64_t>(doomed.size());
}

void Relation::Clear() {
  MarkMutated();
  for (std::shared_ptr<ColumnSegment>& col : columns_) {
    // A shared segment is dropped, not cloned-then-cleared: Clear resets
    // to the pristine state, which a fresh segment already is.
    if (col.use_count() > 1) {
      col = std::make_shared<ColumnSegment>();
    } else {
      col->Clear();
    }
  }
  rows_ = 0;
}

bool Relation::RowEquals(int64_t row, const Relation& other,
                         int64_t other_row) const {
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (!columns_[c]->RowEqualsRow(row, *other.columns_[c], other_row)) {
      return false;
    }
  }
  return true;
}

bool Relation::RowEqualsTuple(int64_t row, const Tuple& t) const {
  if (t.size() != static_cast<int>(columns_.size())) return false;
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (!columns_[c]->RowEqualsValue(row, t.at(static_cast<int>(c)))) {
      return false;
    }
  }
  return true;
}

const HashIndex& Relation::Index(int column) const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  auto it = index_cache_.find(column);
  if (it == index_cache_.end()) {
    it = index_cache_
             .emplace(column, std::make_shared<const HashIndex>(*this, column))
             .first;
    caches_present_.store(true, std::memory_order_release);
  }
  return *it->second;
}

std::shared_ptr<const HashIndex> Relation::IndexShared(int column) const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  auto it = index_cache_.find(column);
  if (it == index_cache_.end()) {
    it = index_cache_
             .emplace(column, std::make_shared<const HashIndex>(*this, column))
             .first;
    caches_present_.store(true, std::memory_order_release);
  }
  return it->second;
}

void Relation::WarmIndexes(const std::vector<int>& columns) const {
  for (const int column : columns) {
    if (column < 0 || column >= schema_.size()) continue;
    (void)Index(column);
  }
}

std::vector<size_t> Relation::ComputeTupleHashes() const {
  // Column-wise FNV mixing: seeding with Tuple::Hash's offset basis and
  // folding the columns left to right makes hashes[i] == TupleAt(i).Hash(),
  // with every pass a contiguous column scan (packed words hash without
  // materializing Values).
  std::vector<size_t> hashes(static_cast<size_t>(rows_), kTupleHashBasis);
  for (const auto& col : columns_) {
    MixHashColumn(*col, hashes.data());
  }
  return hashes;
}

std::shared_ptr<const std::vector<size_t>> Relation::TupleHashes() const {
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    if (hash_cache_ != nullptr) return hash_cache_;
  }
  // Hash outside the lock; concurrent first calls may both compute, the
  // first to store wins and the results are identical anyway.
  auto hashes = std::make_shared<std::vector<size_t>>(ComputeTupleHashes());
  std::lock_guard<std::mutex> lock(cache_mutex_);
  if (hash_cache_ == nullptr) {
    hash_cache_ = std::move(hashes);
    caches_present_.store(true, std::memory_order_release);
  }
  return hash_cache_;
}

bool Relation::ContainsTuple(const Tuple& t) const {
  for (int64_t row = 0; row < rows_; ++row) {
    if (RowEqualsTuple(row, t)) return true;
  }
  return false;
}

void Relation::AppendGathered(const Relation& src,
                              const std::vector<int64_t>& rows) {
  // Self-gather would reallocate the column under the source reference.
  EVE_CHECK(&src != this);
  MarkMutated();
  for (size_t c = 0; c < columns_.size(); ++c) {
    // MutCol clones first when this column is shared -- including shared
    // with `src` itself, so the gather never reallocates under its source.
    MutCol(c).AppendGathered(*src.columns_[c], rows.data(), rows.size());
  }
  rows_ += static_cast<int64_t>(rows.size());
}

Relation Relation::Distinct() const {
  const auto hashes = TupleHashes();
  RowDedupTable table(static_cast<size_t>(rows_));
  std::vector<int64_t> keep;
  for (int64_t i = 0; i < rows_; ++i) {
    if (InsertIfDistinct(table, (*hashes)[i], *this, i)) keep.push_back(i);
  }
  Relation out(name_, schema_);
  out.AppendGathered(*this, keep);
  return out;
}

Result<Relation> Relation::ProjectByName(
    const std::vector<std::string>& names) const {
  std::vector<Attribute> attrs;
  std::vector<std::shared_ptr<ColumnSegment>> cols;
  for (const std::string& n : names) {
    const auto idx = schema_.IndexOf(n);
    if (!idx.has_value()) {
      return Status::NotFound("attribute " + n + " not in relation " + name_);
    }
    attrs.push_back(schema_.attribute(*idx));
    cols.push_back(columns_[*idx]);  // Shared, zero-copy (CoW on mutation).
  }
  return FromSharedSegments(name_, Schema(std::move(attrs)), std::move(cols));
}

int64_t Relation::DistinctCount() const {
  const auto hashes = TupleHashes();
  RowDedupTable table(static_cast<size_t>(rows_));
  int64_t distinct = 0;
  for (int64_t i = 0; i < rows_; ++i) {
    if (InsertIfDistinct(table, (*hashes)[i], *this, i)) ++distinct;
  }
  return distinct;
}

std::string Relation::ToString(int64_t max_rows) const {
  std::string out = name_ + schema_.ToString() + " [" +
                    StrFormat("%lld", static_cast<long long>(cardinality())) +
                    " tuples]\n";
  std::vector<Tuple> sorted = CopyTuples();
  std::sort(sorted.begin(), sorted.end());
  int64_t shown = 0;
  for (const Tuple& t : sorted) {
    if (shown++ >= max_rows) {
      out += "  ...\n";
      break;
    }
    out += "  " + t.ToString() + "\n";
  }
  return out;
}

namespace {

Status CheckUnionCompatible(const Relation& a, const Relation& b) {
  if (a.schema().size() != b.schema().size()) {
    return Status::InvalidArgument(StrFormat(
        "set operation on relations of different arity (%d vs %d)",
        a.schema().size(), b.schema().size()));
  }
  return Status::OK();
}

}  // namespace

Result<Relation> SetUnion(const Relation& a, const Relation& b) {
  EVE_RETURN_IF_ERROR(CheckUnionCompatible(a, b));
  const auto ha = a.TupleHashes();
  const auto hb = b.TupleHashes();
  // Dedup across both inputs in one table: rows of `a` keep their ids, rows
  // of `b` are offset by |a|; the keep lists then gather column-wise.
  const int64_t na = a.cardinality();
  RowDedupTable seen(static_cast<size_t>(na + b.cardinality()));
  std::vector<int64_t> keep_a;
  std::vector<int64_t> keep_b;
  const auto row_of = [&](int64_t id) -> std::pair<const Relation*, int64_t> {
    return id < na ? std::make_pair(&a, id) : std::make_pair(&b, id - na);
  };
  const auto add_distinct = [&](const Relation& r, int64_t id_offset,
                                const std::vector<size_t>& hashes,
                                std::vector<int64_t>& keep) {
    for (int64_t i = 0; i < r.cardinality(); ++i) {
      if (seen.InsertIfAbsent(hashes[i], id_offset + i, [&](int64_t j) {
            const auto [rel, row] = row_of(j);
            return rel->RowEquals(row, r, i);
          }) < 0) {
        keep.push_back(i);
      }
    }
  };
  add_distinct(a, 0, *ha, keep_a);
  add_distinct(b, na, *hb, keep_b);
  Relation out(a.name(), a.schema());
  out.AppendGathered(a, keep_a);
  out.AppendGathered(b, keep_b);
  return out;
}

namespace {

// Shared skeleton of SetIntersect / SetDifference: the distinct rows of `a`
// that are (present=true) or are not (present=false) in `b`.
Relation FilterByMembership(const Relation& a, const Relation& b,
                            bool want_present) {
  const auto ha = a.TupleHashes();
  const auto hb = b.TupleHashes();
  RowDedupTable in_b(static_cast<size_t>(b.cardinality()));
  for (int64_t i = 0; i < b.cardinality(); ++i) {
    InsertIfDistinct(in_b, (*hb)[i], b, i);
  }
  RowDedupTable emitted(static_cast<size_t>(a.cardinality()));
  std::vector<int64_t> keep;
  for (int64_t i = 0; i < a.cardinality(); ++i) {
    const bool present = in_b.Find((*ha)[i], [&](int64_t j) {
                           return b.RowEquals(j, a, i);
                         }) >= 0;
    if (present == want_present && InsertIfDistinct(emitted, (*ha)[i], a, i)) {
      keep.push_back(i);
    }
  }
  Relation out(a.name(), a.schema());
  out.AppendGathered(a, keep);
  return out;
}

}  // namespace

Result<Relation> SetIntersect(const Relation& a, const Relation& b) {
  EVE_RETURN_IF_ERROR(CheckUnionCompatible(a, b));
  return FilterByMembership(a, b, /*want_present=*/true);
}

Result<Relation> SetDifference(const Relation& a, const Relation& b) {
  EVE_RETURN_IF_ERROR(CheckUnionCompatible(a, b));
  return FilterByMembership(a, b, /*want_present=*/false);
}

bool SetEquals(const Relation& a, const Relation& b) {
  if (a.schema().size() != b.schema().size()) return false;
  const auto ha = a.TupleHashes();
  const auto hb = b.TupleHashes();

  // Distinct representatives of `a` in a flat table keyed by cached hash.
  RowDedupTable table_a(static_cast<size_t>(a.cardinality()));
  int64_t distinct_a = 0;
  for (int64_t i = 0; i < a.cardinality(); ++i) {
    if (InsertIfDistinct(table_a, (*ha)[i], a, i)) ++distinct_a;
  }

  // b ⊆ a, counting b's distinct tuples along the way: equal distinct
  // counts plus containment imply set equality.
  RowDedupTable table_b(static_cast<size_t>(b.cardinality()));
  int64_t distinct_b = 0;
  for (int64_t i = 0; i < b.cardinality(); ++i) {
    if (!InsertIfDistinct(table_b, (*hb)[i], b, i)) continue;
    ++distinct_b;
    const int64_t in_a = table_a.Find((*hb)[i], [&](int64_t j) {
      return a.RowEquals(j, b, i);
    });
    if (in_a < 0) return false;
  }
  return distinct_a == distinct_b;
}

}  // namespace eve
