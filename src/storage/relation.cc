#include "storage/relation.h"

#include <algorithm>
#include <atomic>

#include "common/str_util.h"
#include "storage/hash_index.h"
#include "storage/row_dedup.h"

namespace eve {

namespace {

// Numeric INT values may be stored where DOUBLE is declared and vice versa;
// comparisons promote, so only string/number mismatches are errors.
bool TypeConforms(DataType declared, DataType actual) {
  if (actual == DataType::kNull) return true;
  if (declared == actual) return true;
  const bool declared_num =
      declared == DataType::kInt64 || declared == DataType::kDouble;
  const bool actual_num =
      actual == DataType::kInt64 || actual == DataType::kDouble;
  return declared_num && actual_num;
}

// Records row `i` of `tuples` as a distinct representative unless an equal
// tuple is already present; true iff the row was new.  The shared primitive
// of every hashed dedup path below (flat table, see storage/row_dedup.h).
bool InsertIfDistinct(RowDedupTable& table, size_t hash,
                      const std::vector<Tuple>& tuples, int64_t i) {
  return table.InsertIfAbsent(hash, i, [&](int64_t j) {
           return tuples[j] == tuples[i];
         }) < 0;
}

}  // namespace

uint64_t Relation::NextIdentity() {
  // Process-unique stamps: a relation rebuilt at the same address with the
  // same mutation count still gets a different identity, so prepared-plan
  // revalidation cannot be fooled by address reuse.
  static std::atomic<uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

void Relation::DropCaches() {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  index_cache_.clear();
  hash_cache_.reset();
  caches_present_.store(false, std::memory_order_release);
}

Relation::Relation(const Relation& other)
    : name_(other.name_),
      schema_(other.schema_),
      tuples_(other.tuples_) {
  std::lock_guard<std::mutex> lock(other.cache_mutex_);
  index_cache_ = other.index_cache_;
  hash_cache_ = other.hash_cache_;
  caches_present_.store(other.caches_present_.load(std::memory_order_acquire),
                        std::memory_order_release);
}

Relation& Relation::operator=(const Relation& other) {
  if (this == &other) return *this;
  name_ = other.name_;
  schema_ = other.schema_;
  tuples_ = other.tuples_;
  identity_ = NextIdentity();
  version_ = 0;
  std::unordered_map<int, std::shared_ptr<const HashIndex>> indexes;
  std::shared_ptr<const std::vector<size_t>> hashes;
  {
    std::lock_guard<std::mutex> lock(other.cache_mutex_);
    indexes = other.index_cache_;
    hashes = other.hash_cache_;
  }
  std::lock_guard<std::mutex> lock(cache_mutex_);
  index_cache_ = std::move(indexes);
  hash_cache_ = std::move(hashes);
  caches_present_.store(!index_cache_.empty() || hash_cache_ != nullptr,
                        std::memory_order_release);
  return *this;
}

Relation::Relation(Relation&& other) noexcept
    : name_(std::move(other.name_)),
      schema_(std::move(other.schema_)),
      tuples_(std::move(other.tuples_)) {
  std::lock_guard<std::mutex> lock(other.cache_mutex_);
  index_cache_ = std::move(other.index_cache_);
  hash_cache_ = std::move(other.hash_cache_);
  caches_present_.store(!index_cache_.empty() || hash_cache_ != nullptr,
                        std::memory_order_release);
  other.caches_present_.store(false, std::memory_order_release);
  // The source's tuples were stolen: restamp it so stale plans notice.
  other.identity_ = NextIdentity();
  other.version_ = 0;
}

Relation& Relation::operator=(Relation&& other) noexcept {
  if (this == &other) return *this;
  name_ = std::move(other.name_);
  schema_ = std::move(other.schema_);
  tuples_ = std::move(other.tuples_);
  identity_ = NextIdentity();
  version_ = 0;
  std::unordered_map<int, std::shared_ptr<const HashIndex>> indexes;
  std::shared_ptr<const std::vector<size_t>> hashes;
  {
    std::lock_guard<std::mutex> lock(other.cache_mutex_);
    indexes = std::move(other.index_cache_);
    hashes = std::move(other.hash_cache_);
    other.caches_present_.store(false, std::memory_order_release);
    other.identity_ = NextIdentity();
    other.version_ = 0;
  }
  std::lock_guard<std::mutex> lock(cache_mutex_);
  index_cache_ = std::move(indexes);
  hash_cache_ = std::move(hashes);
  caches_present_.store(!index_cache_.empty() || hash_cache_ != nullptr,
                        std::memory_order_release);
  return *this;
}

Status Relation::Insert(Tuple t) {
  if (t.size() != schema_.size()) {
    return Status::InvalidArgument(StrFormat(
        "tuple arity %d does not match schema arity %d of relation %s",
        t.size(), schema_.size(), name_.c_str()));
  }
  for (int i = 0; i < t.size(); ++i) {
    if (!TypeConforms(schema_.attribute(i).type, t.at(i).type())) {
      return Status::InvalidArgument(StrFormat(
          "value %s does not conform to attribute %s of type %s",
          t.at(i).ToString().c_str(), schema_.attribute(i).name.c_str(),
          std::string(DataTypeName(schema_.attribute(i).type)).c_str()));
    }
  }
  MarkMutated();
  tuples_.push_back(std::move(t));
  return Status::OK();
}

int64_t Relation::Erase(const Tuple& t, bool all_occurrences) {
  int64_t removed = 0;
  for (auto it = tuples_.begin(); it != tuples_.end();) {
    if (*it == t) {
      it = tuples_.erase(it);
      ++removed;
      if (!all_occurrences) break;
    } else {
      ++it;
    }
  }
  if (removed > 0) MarkMutated();
  return removed;
}

const HashIndex& Relation::Index(int column) const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  auto it = index_cache_.find(column);
  if (it == index_cache_.end()) {
    it = index_cache_
             .emplace(column, std::make_shared<const HashIndex>(*this, column))
             .first;
    caches_present_.store(true, std::memory_order_release);
  }
  return *it->second;
}

void Relation::WarmIndexes(const std::vector<int>& columns) const {
  for (const int column : columns) {
    if (column < 0 || column >= schema_.size()) continue;
    (void)Index(column);
  }
}

std::shared_ptr<const std::vector<size_t>> Relation::TupleHashes() const {
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    if (hash_cache_ != nullptr) return hash_cache_;
  }
  // Hash outside the lock; concurrent first calls may both compute, the
  // first to store wins and the results are identical anyway.
  auto hashes = std::make_shared<std::vector<size_t>>();
  hashes->reserve(tuples_.size());
  for (const Tuple& t : tuples_) hashes->push_back(t.Hash());
  std::lock_guard<std::mutex> lock(cache_mutex_);
  if (hash_cache_ == nullptr) {
    hash_cache_ = std::move(hashes);
    caches_present_.store(true, std::memory_order_release);
  }
  return hash_cache_;
}

bool Relation::ContainsTuple(const Tuple& t) const {
  return std::any_of(tuples_.begin(), tuples_.end(),
                     [&](const Tuple& u) { return u == t; });
}

Relation Relation::Distinct() const {
  Relation out(name_, schema_);
  const auto hashes = TupleHashes();
  RowDedupTable table(tuples_.size());
  for (int64_t i = 0; i < static_cast<int64_t>(tuples_.size()); ++i) {
    if (InsertIfDistinct(table, (*hashes)[i], tuples_, i)) {
      out.InsertUnchecked(tuples_[i]);
    }
  }
  return out;
}

Result<Relation> Relation::ProjectByName(
    const std::vector<std::string>& names) const {
  std::vector<int> indexes;
  std::vector<Attribute> attrs;
  for (const std::string& n : names) {
    const auto idx = schema_.IndexOf(n);
    if (!idx.has_value()) {
      return Status::NotFound("attribute " + n + " not in relation " + name_);
    }
    indexes.push_back(*idx);
    attrs.push_back(schema_.attribute(*idx));
  }
  Relation out(name_, Schema(std::move(attrs)));
  for (const Tuple& t : tuples_) out.InsertUnchecked(t.Project(indexes));
  return out;
}

int64_t Relation::DistinctCount() const {
  const auto hashes = TupleHashes();
  RowDedupTable table(tuples_.size());
  int64_t distinct = 0;
  for (int64_t i = 0; i < static_cast<int64_t>(tuples_.size()); ++i) {
    if (InsertIfDistinct(table, (*hashes)[i], tuples_, i)) ++distinct;
  }
  return distinct;
}

std::string Relation::ToString(int64_t max_rows) const {
  std::string out = name_ + schema_.ToString() + " [" +
                    StrFormat("%lld", static_cast<long long>(cardinality())) +
                    " tuples]\n";
  std::vector<Tuple> sorted = tuples_;
  std::sort(sorted.begin(), sorted.end());
  int64_t shown = 0;
  for (const Tuple& t : sorted) {
    if (shown++ >= max_rows) {
      out += "  ...\n";
      break;
    }
    out += "  " + t.ToString() + "\n";
  }
  return out;
}

namespace {

Status CheckUnionCompatible(const Relation& a, const Relation& b) {
  if (a.schema().size() != b.schema().size()) {
    return Status::InvalidArgument(StrFormat(
        "set operation on relations of different arity (%d vs %d)",
        a.schema().size(), b.schema().size()));
  }
  return Status::OK();
}

}  // namespace

Result<Relation> SetUnion(const Relation& a, const Relation& b) {
  EVE_RETURN_IF_ERROR(CheckUnionCompatible(a, b));
  Relation out(a.name(), a.schema());
  const auto ha = a.TupleHashes();
  const auto hb = b.TupleHashes();
  // Dedup against the rows already emitted into `out` (no tuple copies
  // beyond the one the result owns).
  RowDedupTable seen(a.tuples().size() + b.tuples().size());
  const auto add_distinct = [&](const Relation& r,
                                const std::vector<size_t>& hashes) {
    for (int64_t i = 0; i < r.cardinality(); ++i) {
      const Tuple& t = r.tuple(i);
      if (seen.InsertIfAbsent(hashes[i], out.cardinality(), [&](int64_t j) {
            return out.tuple(j) == t;
          }) < 0) {
        out.InsertUnchecked(t);
      }
    }
  };
  add_distinct(a, *ha);
  add_distinct(b, *hb);
  return out;
}

Result<Relation> SetIntersect(const Relation& a, const Relation& b) {
  EVE_RETURN_IF_ERROR(CheckUnionCompatible(a, b));
  const auto ha = a.TupleHashes();
  const auto hb = b.TupleHashes();
  RowDedupTable in_b(b.tuples().size());
  for (int64_t i = 0; i < b.cardinality(); ++i) {
    InsertIfDistinct(in_b, (*hb)[i], b.tuples(), i);
  }
  Relation out(a.name(), a.schema());
  RowDedupTable emitted(a.tuples().size());
  for (int64_t i = 0; i < a.cardinality(); ++i) {
    const Tuple& t = a.tuple(i);
    const bool present = in_b.Find((*ha)[i], [&](int64_t j) {
                           return b.tuple(j) == t;
                         }) >= 0;
    if (present && InsertIfDistinct(emitted, (*ha)[i], a.tuples(), i)) {
      out.InsertUnchecked(t);
    }
  }
  return out;
}

Result<Relation> SetDifference(const Relation& a, const Relation& b) {
  EVE_RETURN_IF_ERROR(CheckUnionCompatible(a, b));
  const auto ha = a.TupleHashes();
  const auto hb = b.TupleHashes();
  RowDedupTable in_b(b.tuples().size());
  for (int64_t i = 0; i < b.cardinality(); ++i) {
    InsertIfDistinct(in_b, (*hb)[i], b.tuples(), i);
  }
  Relation out(a.name(), a.schema());
  RowDedupTable emitted(a.tuples().size());
  for (int64_t i = 0; i < a.cardinality(); ++i) {
    const Tuple& t = a.tuple(i);
    const bool present = in_b.Find((*ha)[i], [&](int64_t j) {
                           return b.tuple(j) == t;
                         }) >= 0;
    if (!present && InsertIfDistinct(emitted, (*ha)[i], a.tuples(), i)) {
      out.InsertUnchecked(t);
    }
  }
  return out;
}

bool SetEquals(const Relation& a, const Relation& b) {
  if (a.schema().size() != b.schema().size()) return false;
  const auto ha = a.TupleHashes();
  const auto hb = b.TupleHashes();

  // Distinct representatives of `a` in a flat table keyed by cached hash.
  RowDedupTable table_a(a.tuples().size());
  int64_t distinct_a = 0;
  for (int64_t i = 0; i < a.cardinality(); ++i) {
    if (InsertIfDistinct(table_a, (*ha)[i], a.tuples(), i)) ++distinct_a;
  }

  // b ⊆ a, counting b's distinct tuples along the way: equal distinct
  // counts plus containment imply set equality.
  RowDedupTable table_b(b.tuples().size());
  int64_t distinct_b = 0;
  for (int64_t i = 0; i < b.cardinality(); ++i) {
    if (!InsertIfDistinct(table_b, (*hb)[i], b.tuples(), i)) continue;
    ++distinct_b;
    const int64_t in_a = table_a.Find((*hb)[i], [&](int64_t j) {
      return a.tuple(j) == b.tuple(i);
    });
    if (in_a < 0) return false;
  }
  return distinct_a == distinct_b;
}

}  // namespace eve
