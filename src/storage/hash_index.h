// HashIndex: an equality index on one column of a Relation.  Used by the
// executor's hash joins and by the maintenance simulator to model
// index-assisted delta joins (paper Appendix A assumes an index on every
// join attribute).
//
// Layout: a flat open-addressing table (linear probing, load factor <= 0.5,
// same scheme as RowDedupTable) instead of the former node-based
// unordered_map<Value, vector<int64_t>>.  Each slot stores the full key
// hash, the key Value (16-byte scalar; keeps the index self-contained so
// relation copies can share it), and either the single matching row id
// inline -- the common case for key-like join columns, zero extra
// allocations -- or an offset into one contiguous row-id arena for
// duplicate keys.  The build is two passes over the column (count, then
// place), so the whole index is exactly two allocations regardless of the
// key distribution, and rows within a key keep ascending row order (the
// same order the bucket vectors used to have).

#ifndef EVE_STORAGE_HASH_INDEX_H_
#define EVE_STORAGE_HASH_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "storage/relation.h"
#include "types/value.h"

namespace eve {

/// Maps a key value to the row ids of matching tuples.
class HashIndex {
 public:
  /// A borrowed, contiguous run of row ids; valid for the index's lifetime.
  struct RowRange {
    const int64_t* first = nullptr;
    size_t count = 0;

    const int64_t* begin() const { return first; }
    const int64_t* end() const { return first + count; }
    size_t size() const { return count; }
    bool empty() const { return count == 0; }
  };

  /// Builds an index over column `column` of `relation`.  The relation must
  /// not be mutated while the index is in use (the index itself stays valid
  /// if the relation is destroyed -- keys are stored inline).
  HashIndex(const Relation& relation, int column);

  /// Row ids whose key equals `key` (empty range if none).
  RowRange Lookup(const Value& key) const;

  /// Number of distinct keys.
  int64_t DistinctKeys() const { return keys_; }

  int column() const { return column_; }

 private:
  struct Slot {
    size_t hash = 0;
    Value key;             ///< NULL for empty slots; `count` disambiguates.
    int64_t row_or_offset = 0;  ///< Row id (count == 1) or arena offset.
    int64_t count = 0;          ///< 0 = empty slot.
  };

  int column_;
  int64_t keys_ = 0;
  size_t mask_ = 0;
  std::vector<Slot> slots_;
  std::vector<int64_t> rows_;  ///< Arena for keys with more than one row.
};

}  // namespace eve

#endif  // EVE_STORAGE_HASH_INDEX_H_
