// HashIndex: an equality index on one column of a Relation.  Used by the
// executor's hash joins and by the maintenance simulator to model
// index-assisted delta joins (paper Appendix A assumes an index on every
// join attribute).

#ifndef EVE_STORAGE_HASH_INDEX_H_
#define EVE_STORAGE_HASH_INDEX_H_

#include <unordered_map>
#include <vector>

#include "storage/relation.h"
#include "types/value.h"

namespace eve {

/// Maps a key value to the row ids of matching tuples.
class HashIndex {
 public:
  /// Builds an index over column `column` of `relation`.  The relation must
  /// outlive the index and not be mutated while the index is in use.
  HashIndex(const Relation& relation, int column);

  /// Row ids whose key equals `key` (empty vector if none).
  const std::vector<int64_t>& Lookup(const Value& key) const;

  /// Number of distinct keys.
  int64_t DistinctKeys() const { return static_cast<int64_t>(map_.size()); }

  int column() const { return column_; }

 private:
  int column_;
  std::unordered_map<Value, std::vector<int64_t>, ValueHash> map_;
  std::vector<int64_t> empty_;
};

}  // namespace eve

#endif  // EVE_STORAGE_HASH_INDEX_H_
