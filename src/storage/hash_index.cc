#include "storage/hash_index.h"

#include "storage/column_kernel.h"

namespace eve {

HashIndex::HashIndex(const Relation& relation, int column) : column_(column) {
  const int64_t n = relation.cardinality();
  if (n == 0) return;

  size_t capacity = 16;
  while (capacity < static_cast<size_t>(n) * 2) capacity <<= 1;
  slots_.resize(capacity);
  mask_ = capacity - 1;

  // Both passes read the key column segment; packed segments hash without
  // materializing a Value per row.
  const ColumnSegment& keys = relation.Segment(column);

  // Pass 1: count rows per key.  The per-row hash is computed in one
  // branch-free column sweep and cached so pass 2 probes without
  // re-hashing.
  std::vector<size_t> hashes(static_cast<size_t>(n));
  HashColumn(keys, hashes.data());
  for (int64_t row = 0; row < n; ++row) {
    const size_t h = hashes[static_cast<size_t>(row)];
    const Value v = keys.ValueAt(row);
    for (size_t slot = h & mask_;; slot = (slot + 1) & mask_) {
      Slot& s = slots_[slot];
      if (s.count == 0) {
        s.hash = h;
        s.key = v;
        s.row_or_offset = row;  // Inline storage for single-row keys.
        s.count = 1;
        ++keys_;
        break;
      }
      if (s.hash == h && s.key == v) {
        ++s.count;
        break;
      }
    }
  }

  // Assign arena offsets for duplicate keys (single-row keys stay inline
  // and never touch the arena).
  int64_t total = 0;
  std::vector<int64_t> cursor(capacity, 0);
  for (size_t slot = 0; slot < capacity; ++slot) {
    Slot& s = slots_[slot];
    if (s.count > 1) {
      s.row_or_offset = total;
      cursor[slot] = total;
      total += s.count;
    }
  }
  if (total == 0) return;
  rows_.resize(static_cast<size_t>(total));

  // Pass 2: place duplicate-key rows, preserving ascending row order within
  // each key (the iteration order the old bucket vectors provided).
  for (int64_t row = 0; row < n; ++row) {
    const size_t h = hashes[static_cast<size_t>(row)];
    const Value v = keys.ValueAt(row);
    for (size_t slot = h & mask_;; slot = (slot + 1) & mask_) {
      Slot& s = slots_[slot];
      if (s.hash == h && s.key == v) {
        if (s.count > 1) rows_[static_cast<size_t>(cursor[slot]++)] = row;
        break;
      }
    }
  }
}

HashIndex::RowRange HashIndex::Lookup(const Value& key) const {
  if (slots_.empty()) return RowRange{};
  const size_t h = key.Hash();
  for (size_t slot = h & mask_;; slot = (slot + 1) & mask_) {
    const Slot& s = slots_[slot];
    if (s.count == 0) return RowRange{};
    if (s.hash == h && s.key == key) {
      if (s.count == 1) return RowRange{&s.row_or_offset, 1};
      return RowRange{rows_.data() + s.row_or_offset,
                      static_cast<size_t>(s.count)};
    }
  }
}

}  // namespace eve
