#include "storage/hash_index.h"

namespace eve {

HashIndex::HashIndex(const Relation& relation, int column) : column_(column) {
  for (int64_t row = 0; row < relation.cardinality(); ++row) {
    map_[relation.tuple(row).at(column)].push_back(row);
  }
}

const std::vector<int64_t>& HashIndex::Lookup(const Value& key) const {
  const auto it = map_.find(key);
  return it == map_.end() ? empty_ : it->second;
}

}  // namespace eve
