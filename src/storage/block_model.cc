#include "storage/block_model.h"

#include "common/check.h"

namespace eve {

int64_t CeilDiv(int64_t a, int64_t b) {
  EVE_CHECK(a >= 0 && b > 0);
  return (a + b - 1) / b;
}

int64_t BlockModel::BlockingFactor(int64_t tuple_bytes) const {
  EVE_CHECK(tuple_bytes > 0);
  const int64_t bfr = block_bytes / tuple_bytes;
  return bfr > 0 ? bfr : 1;
}

int64_t BlockModel::ScanIos(int64_t cardinality, int64_t tuple_bytes) const {
  return CeilDiv(cardinality, BlockingFactor(tuple_bytes));
}

int64_t BlockModel::ClusteredFetchIos(int64_t tuples_matched,
                                      int64_t tuple_bytes) const {
  return CeilDiv(tuples_matched, BlockingFactor(tuple_bytes));
}

int64_t BlockModel::BlocksForBytes(int64_t total_bytes) const {
  return CeilDiv(total_bytes, block_bytes);
}

}  // namespace eve
