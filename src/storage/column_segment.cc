#include "storage/column_segment.h"

#include <utility>

namespace eve {

namespace {

/// Removes the (sorted, unique, in-range) positions in `doomed` from `v`
/// in one stable pass.
template <typename T>
void CompactVector(std::vector<T>& v, const std::vector<int64_t>& doomed) {
  size_t di = 0;
  size_t out = 0;
  for (size_t i = 0; i < v.size(); ++i) {
    if (di < doomed.size() && static_cast<int64_t>(i) == doomed[di]) {
      ++di;
      continue;
    }
    if (out != i) v[out] = std::move(v[i]);
    ++out;
  }
  v.resize(out);
}

}  // namespace

ColumnSegment ColumnSegment::FromValues(std::vector<Value> values) {
  const int64_t n = static_cast<int64_t>(values.size());
  ColumnSegment seg;
  if (n == 0) return seg;

  // One scan decides the encoding.  Strings pack against the FIRST string's
  // pool; minority-pool strings ride in the exception sidecar like any
  // other stray value (the same graceful degradation Append gives).
  int64_t ints = 0;
  int64_t strs = 0;
  uint32_t pool = 0;
  bool pool_set = false;
  for (const Value& v : values) {
    if (v.type() == DataType::kInt64) {
      ++ints;
    } else if (v.type() == DataType::kString) {
      if (!pool_set) {
        pool = v.string_pool_index();
        pool_set = true;
      }
      if (v.string_pool_index() == pool) ++strs;
    }
  }

  const int64_t max_exc = MaxExceptions(n);
  if (ints > 0 && ints >= strs && n - ints <= max_exc) {
    seg.enc_ = Encoding::kInt64;
    seg.words_.reserve(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      const Value& v = values[static_cast<size_t>(i)];
      if (v.type() == DataType::kInt64) {
        seg.words_.push_back(v.AsInt());
      } else {
        seg.exc_rows_.push_back(i);
        seg.exc_vals_.push_back(v);
        seg.words_.push_back(0);
      }
    }
    seg.size_ = n;
    return seg;
  }
  if (pool_set && n - strs <= max_exc) {
    seg.enc_ = Encoding::kString;
    seg.pool_ = pool;
    seg.words_.reserve(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      const Value& v = values[static_cast<size_t>(i)];
      if (v.type() == DataType::kString && v.string_pool_index() == pool) {
        seg.words_.push_back(StringWord(v));
      } else {
        seg.exc_rows_.push_back(i);
        seg.exc_vals_.push_back(v);
        seg.words_.push_back(0);
      }
    }
    seg.size_ = n;
    return seg;
  }
  return TaggedFromValues(std::move(values));
}

ColumnSegment ColumnSegment::TaggedFromValues(std::vector<Value> values) {
  ColumnSegment seg;
  seg.enc_ = Encoding::kTagged;
  seg.tagged_all_int64_ = true;
  for (const Value& v : values) {
    if (v.type() != DataType::kInt64) {
      seg.tagged_all_int64_ = false;
      break;
    }
  }
  seg.size_ = static_cast<int64_t>(values.size());
  seg.tagged_ = std::move(values);
  return seg;
}

void ColumnSegment::InitFrom(const Value& v) {
  switch (v.type()) {
    case DataType::kInt64:
      enc_ = Encoding::kInt64;
      words_.push_back(v.AsInt());
      break;
    case DataType::kString:
      enc_ = Encoding::kString;
      pool_ = v.string_pool_index();
      words_.push_back(StringWord(v));
      break;
    default:
      enc_ = Encoding::kTagged;
      tagged_all_int64_ = false;
      tagged_.push_back(v);
      break;
  }
  size_ = 1;
}

void ColumnSegment::Append(const Value& v) {
  if (pristine()) {
    InitFrom(v);
    return;
  }
  switch (enc_) {
    case Encoding::kInt64:
      if (v.type() == DataType::kInt64) {
        words_.push_back(v.AsInt());
        ++size_;
        return;
      }
      AppendException(v);
      return;
    case Encoding::kString:
      if (v.type() == DataType::kString && v.string_pool_index() == pool_) {
        words_.push_back(StringWord(v));
        ++size_;
        return;
      }
      AppendException(v);
      return;
    case Encoding::kTagged:
      tagged_.push_back(v);
      tagged_all_int64_ =
          tagged_all_int64_ && v.type() == DataType::kInt64;
      ++size_;
      return;
  }
}

void ColumnSegment::AppendException(const Value& v) {
  if (static_cast<int64_t>(exc_rows_.size()) + 1 > MaxExceptions(size_ + 1)) {
    Demote();
    Append(v);
    return;
  }
  exc_rows_.push_back(size_);
  exc_vals_.push_back(v);
  words_.push_back(0);
  ++size_;
}

void ColumnSegment::Demote() {
  std::vector<Value> t;
  t.reserve(static_cast<size_t>(size_));
  for (int64_t i = 0; i < size_; ++i) t.push_back(ValueAt(i));
  tagged_ = std::move(t);
  words_.clear();
  words_.shrink_to_fit();
  exc_rows_.clear();
  exc_vals_.clear();
  enc_ = Encoding::kTagged;
  tagged_all_int64_ = false;
  pool_ = 0;
}

void ColumnSegment::AdoptEncodingOf(const ColumnSegment& src) {
  enc_ = src.enc_;
  pool_ = src.pool_;
  // An empty tagged target is vacuously all-int64; appends AND it down.
  tagged_all_int64_ = enc_ == Encoding::kTagged;
}

void ColumnSegment::AppendGathered(const ColumnSegment& src,
                                   const int64_t* rows, size_t n) {
  if (n == 0) return;
  if (pristine()) AdoptEncodingOf(src);
  if (enc_ == Encoding::kTagged && src.enc_ == Encoding::kTagged) {
    tagged_.reserve(tagged_.size() + n);
    const Value* tv = src.tagged_.data();
    for (size_t i = 0; i < n; ++i) {
      const Value& v = tv[rows[i]];
      tagged_.push_back(v);
      tagged_all_int64_ =
          tagged_all_int64_ && v.type() == DataType::kInt64;
    }
    size_ += static_cast<int64_t>(n);
    return;
  }
  if (enc_ == src.enc_ && packed() &&
      (enc_ != Encoding::kString || pool_ == src.pool_)) {
    if (!src.has_exceptions()) {
      const int64_t* w = src.words();
      words_.reserve(words_.size() + n);
      for (size_t i = 0; i < n; ++i) words_.push_back(w[rows[i]]);
      size_ += static_cast<int64_t>(n);
      return;
    }
    for (size_t i = 0; i < n; ++i) {
      if (enc_ != src.enc_) {
        // A sidecar overflow demoted us mid-gather; finish generically.
        for (; i < n; ++i) Append(src.ValueAt(rows[i]));
        return;
      }
      if (const Value* e = src.FindException(rows[i])) {
        Append(*e);
      } else {
        words_.push_back(src.words()[rows[i]]);
        ++size_;
      }
    }
    return;
  }
  for (size_t i = 0; i < n; ++i) Append(src.ValueAt(rows[i]));
}

void ColumnSegment::EraseRows(const std::vector<int64_t>& doomed) {
  if (doomed.empty()) return;
  if (enc_ == Encoding::kTagged) {
    CompactVector(tagged_, doomed);
    size_ -= static_cast<int64_t>(doomed.size());
    // tagged_all_int64_ stays conservative, like the old per-column flag.
    return;
  }
  if (!exc_rows_.empty()) {
    std::vector<int64_t> new_rows;
    std::vector<Value> new_vals;
    new_rows.reserve(exc_rows_.size());
    new_vals.reserve(exc_vals_.size());
    size_t di = 0;
    for (size_t k = 0; k < exc_rows_.size(); ++k) {
      const int64_t r = exc_rows_[k];
      while (di < doomed.size() && doomed[di] < r) ++di;
      if (di < doomed.size() && doomed[di] == r) continue;  // Row dies.
      // di doomed rows sit strictly below r; the survivor shifts by them.
      new_rows.push_back(r - static_cast<int64_t>(di));
      new_vals.push_back(exc_vals_[k]);
    }
    exc_rows_ = std::move(new_rows);
    exc_vals_ = std::move(new_vals);
  }
  CompactVector(words_, doomed);
  size_ -= static_cast<int64_t>(doomed.size());
  if (size_ == 0) Clear();
}

void ColumnSegment::Clear() {
  enc_ = Encoding::kInt64;
  tagged_all_int64_ = false;
  pool_ = 0;
  size_ = 0;
  words_.clear();
  tagged_.clear();
  exc_rows_.clear();
  exc_vals_.clear();
}

void ColumnSegment::Reserve(int64_t n) {
  if (enc_ == Encoding::kTagged) {
    tagged_.reserve(static_cast<size_t>(n));
  } else {
    words_.reserve(static_cast<size_t>(n));
  }
}

bool ColumnSegment::RowEqualsValue(int64_t row, const Value& v) const {
  if (enc_ == Encoding::kTagged) {
    return tagged_[static_cast<size_t>(row)] == v;
  }
  if (!exc_rows_.empty()) {
    if (const Value* e = FindException(row)) return *e == v;
  }
  const int64_t w = words_[static_cast<size_t>(row)];
  if (enc_ == Encoding::kInt64) {
    if (v.type() == DataType::kInt64) return w == v.AsInt();
    return Value(w) == v;  // INT 3 == DOUBLE 3.0 and the like.
  }
  if (v.type() == DataType::kString && v.string_pool_index() == pool_) {
    return w == StringWord(v);
  }
  return UnpackString(w) == v;
}

bool ColumnSegment::RowEqualsRow(int64_t row, const ColumnSegment& other,
                                 int64_t other_row) const {
  if (enc_ == other.enc_ && packed() &&
      (enc_ != Encoding::kString || pool_ == other.pool_)) {
    const Value* e1 =
        exc_rows_.empty() ? nullptr : FindException(row);
    const Value* e2 =
        other.exc_rows_.empty() ? nullptr : other.FindException(other_row);
    if (e1 == nullptr && e2 == nullptr) {
      return words_[static_cast<size_t>(row)] ==
             other.words_[static_cast<size_t>(other_row)];
    }
  }
  return ValueAt(row) == other.ValueAt(other_row);
}

}  // namespace eve
