// BlockModel: the disk-page abstraction behind the I/O cost factor
// (paper §6.4 and Appendix A).  Relations are stored in blocks of
// `block_bytes`; the blocking factor bfr_R = floor(block_bytes / s_R) is the
// number of tuples per block, and a full scan of R costs
// ceil(|R| / bfr_R) I/Os (paper Eq. 32).

#ifndef EVE_STORAGE_BLOCK_MODEL_H_
#define EVE_STORAGE_BLOCK_MODEL_H_

#include <cstdint>

namespace eve {

/// Parameters of the physical block layout.
struct BlockModel {
  /// K, the number of bytes per physical block.  The paper's experiments use
  /// bfr = 10 with s = 100 bytes, i.e. 1000-byte blocks.
  int64_t block_bytes = 1000;

  /// Blocking factor for tuples of `tuple_bytes` bytes (>= 1).
  int64_t BlockingFactor(int64_t tuple_bytes) const;

  /// ceil(cardinality / bfr): I/Os for a full sequential scan (Eq. 32).
  int64_t ScanIos(int64_t cardinality, int64_t tuple_bytes) const;

  /// ceil(tuples_matched / bfr): I/Os to fetch `tuples_matched` tuples that
  /// are clustered on the lookup key.
  int64_t ClusteredFetchIos(int64_t tuples_matched, int64_t tuple_bytes) const;

  /// Blocks needed to materialize `total_bytes` of data.
  int64_t BlocksForBytes(int64_t total_bytes) const;
};

/// ceil(a / b) for non-negative a and positive b.
int64_t CeilDiv(int64_t a, int64_t b);

}  // namespace eve

#endif  // EVE_STORAGE_BLOCK_MODEL_H_
