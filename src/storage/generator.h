// Synthetic data generation with controllable statistics.
//
// The paper's experiments are parameterized by relation cardinality |R|,
// tuple size s, local selectivity sigma, and join selectivity js.  The
// generator produces relations whose *actual* statistics match these
// parameters, so that analytic-model predictions can be validated against
// executed queries (tests/integration) and the maintenance simulator.
//
// It also builds containment chains (R1 subset of R2 subset of ...) used to
// realize PC constraints exactly, as in Experiment 4's S1..S5 chain.

#ifndef EVE_STORAGE_GENERATOR_H_
#define EVE_STORAGE_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "storage/relation.h"

namespace eve {

/// Options for generating one relation.
struct GeneratorOptions {
  /// Number of tuples.
  int64_t cardinality = 400;
  /// Number of INT attributes (named A, B, C, ... or per `attribute_names`).
  int num_attributes = 2;
  /// Optional explicit attribute names; must match num_attributes if set.
  std::vector<std::string> attribute_names;
  /// Per-attribute byte width (uniform), to make s_R = num_attributes * width.
  int attribute_bytes = 50;
  /// Join-attribute domain size D: equality joins on attributes drawn
  /// uniformly from [0, D) have selectivity ~= 1/D.
  int64_t key_domain = 200;
  /// Values of non-key attributes are drawn from [0, value_domain).
  int64_t value_domain = 1000;
};

/// Generates a relation per the options.  Attribute 0 is the join key.
Relation GenerateRelation(const std::string& name, const GeneratorOptions& opts,
                          Random* rng);

/// Generates a chain of relations with identical schemas such that
/// result[0] is a subset of result[1] is a subset of ... ; `cards` must be
/// non-decreasing.  Mirrors Experiment 4's S1 .. S5 containment chain.
Result<std::vector<Relation>> GenerateContainmentChain(
    const std::vector<std::string>& names, const std::vector<int64_t>& cards,
    const GeneratorOptions& opts, Random* rng);

/// Measured equality-join selectivity between a.col and b.col:
/// |a JOIN b| / (|a| * |b|).  Returns 0 for empty inputs.
double MeasureJoinSelectivity(const Relation& a, int col_a, const Relation& b,
                              int col_b);

}  // namespace eve

#endif  // EVE_STORAGE_GENERATOR_H_
