// ColumnSegment: one attribute's values in a typed, packed layout.
//
// Relation stores one segment per attribute.  A segment holds its rows in
// one of three encodings:
//
//   * kInt64  -- packed vector<int64_t> of the raw integer payloads
//                (8 bytes/row instead of a 16-byte tagged Value).
//   * kString -- packed vector<int64_t> of string words over ONE interned
//                StringPool (the pool index lives in the segment header):
//                word = (content_hash << 32) | interned id.  Equality
//                within the segment is a full-word integer compare (equal
//                ids imply equal words, distinct ids differ in the low 32
//                bits) and the value hash needs only the high half --
//                dictionary encoding for free, no pool access on the hot
//                paths.
//   * kTagged -- plain vector<Value>, the legacy layout kept as the
//                fallback for genuinely mixed columns.
//
// Packed segments degrade gracefully instead of demoting on the first
// stray value: a compact exception sidecar (sorted row ids + their full
// Values) carries NULLs, doubles-in-int-columns, and cross-pool strings,
// with a zero placeholder in the packed word array.  The branch-free
// kernels in storage/column_kernel.h iterate the runs between exception
// rows and patch the exceptions generically, so a column with one NULL in
// a million rows still scans at packed speed.  When exceptions exceed
// MaxExceptions (~1/8 of the rows) the segment demotes to kTagged.
//
// Encoding decisions are automatic: an empty segment adopts the encoding
// of its first appended value (the promotion signal that used to be the
// per-column ColumnAllInt64 flag), FromValues scans a ready-made column
// once, and TaggedFromValues forces the legacy layout (baseline benches
// and differential tests).  all_int64() preserves the historic flag
// semantics: true iff every stored value has tag INT64 (vacuously true
// while empty).

#ifndef EVE_STORAGE_COLUMN_SEGMENT_H_
#define EVE_STORAGE_COLUMN_SEGMENT_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "types/value.h"

namespace eve {

/// One attribute's value column in a typed packed layout (see file
/// comment).  Copyable; copies are independent.
class ColumnSegment {
 public:
  enum class Encoding : uint8_t {
    kInt64,   ///< words() holds raw int64 payloads.
    kString,  ///< words() holds (content_hash << 32 | id) over pool().
    kTagged,  ///< tagged() holds full Values.
  };

  ColumnSegment() = default;

  /// Adopts a ready-made column, choosing the best encoding in one scan:
  /// packed when the uniform values dominate (exceptions under
  /// MaxExceptions), tagged otherwise.
  static ColumnSegment FromValues(std::vector<Value> values);

  /// Adopts a ready-made column in the legacy tagged layout regardless of
  /// content (differential tests and the tagged-baseline benchmarks).
  /// Tag-uniform INT64 content is still detected so the tagged fast-path
  /// kernels run exactly as they did before packed segments existed.
  static ColumnSegment TaggedFromValues(std::vector<Value> values);

  int64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  Encoding encoding() const { return enc_; }
  bool packed() const { return enc_ != Encoding::kTagged; }

  /// True iff every stored value has tag INT64 (vacuously true while
  /// empty): the historic ColumnAllInt64 promotion flag.
  bool all_int64() const {
    return enc_ == Encoding::kInt64 ? exc_rows_.empty()
                                    : (enc_ == Encoding::kTagged &&
                                       tagged_all_int64_);
  }

  /// True iff this is a tagged segment whose every value has tag INT64
  /// (the legacy uniform layout; enables the old tagged fast paths).
  bool tagged_all_int64() const {
    return enc_ == Encoding::kTagged && tagged_all_int64_;
  }

  bool has_exceptions() const { return !exc_rows_.empty(); }

  /// Pool of a kString segment's packed words (meaningless otherwise).
  uint32_t pool() const { return pool_; }

  /// The word a kString segment packs for `v` (which must be a STRING of
  /// this segment's pool).
  static int64_t StringWord(const Value& v) {
    return static_cast<int64_t>(
        (static_cast<uint64_t>(v.string_content_hash()) << 32) |
        v.string_id());
  }

  /// Row `row` as a full Value (reconstructed from the packed word, the
  /// exception sidecar, or the tagged store).
  Value ValueAt(int64_t row) const {
    switch (enc_) {
      case Encoding::kInt64:
        if (!exc_rows_.empty()) {
          if (const Value* e = FindException(row)) return *e;
        }
        return Value(words_[static_cast<size_t>(row)]);
      case Encoding::kString:
        if (!exc_rows_.empty()) {
          if (const Value* e = FindException(row)) return *e;
        }
        return UnpackString(words_[static_cast<size_t>(row)]);
      case Encoding::kTagged:
        return tagged_[static_cast<size_t>(row)];
    }
    return Value();
  }

  /// The sidecar Value stored at `row`, or nullptr when `row` holds a
  /// packed word (kernels patch exceptions through this).
  const Value* FindException(int64_t row) const {
    const auto it = std::lower_bound(exc_rows_.begin(), exc_rows_.end(), row);
    if (it == exc_rows_.end() || *it != row) return nullptr;
    return &exc_vals_[static_cast<size_t>(it - exc_rows_.begin())];
  }

  /// Appends one value, promoting an empty segment to the value's natural
  /// encoding, routing mismatches into the exception sidecar, and demoting
  /// to kTagged past MaxExceptions.
  void Append(const Value& v);

  /// Appends `n` gathered rows of `src` (any encodings); packed sources
  /// gather word-by-word into a packed target.
  void AppendGathered(const ColumnSegment& src, const int64_t* rows,
                      size_t n);

  /// Removes the rows listed in `doomed` (sorted ascending, in range,
  /// duplicate-free) in one stable compaction pass; packing and the
  /// exception sidecar are preserved (a segment whose last exceptions die
  /// becomes fully packed again).
  void EraseRows(const std::vector<int64_t>& doomed);

  /// Drops all rows and resets to the pristine empty state (encoding is
  /// re-chosen by the next append).
  void Clear();

  void Reserve(int64_t n);

  /// Value equality of row `row` against `v` / against a row of another
  /// segment; same-encoding packed segments compare words directly.
  bool RowEqualsValue(int64_t row, const Value& v) const;
  bool RowEqualsRow(int64_t row, const ColumnSegment& other,
                    int64_t other_row) const;

  /// Raw views for the kernels in storage/column_kernel.h.  words() is
  /// valid for packed encodings (exception rows hold a placeholder);
  /// tagged() for kTagged.
  const int64_t* words() const { return words_.data(); }
  const Value* tagged() const { return tagged_.data(); }
  const std::vector<int64_t>& exception_rows() const { return exc_rows_; }
  const std::vector<Value>& exception_values() const { return exc_vals_; }

  /// Sidecar capacity before a packed segment of `size` rows demotes.
  static int64_t MaxExceptions(int64_t size) { return size / 8 + 4; }

 private:
  Value UnpackString(int64_t word) const {
    const uint64_t w = static_cast<uint64_t>(word);
    return Value::FromInterned(static_cast<uint32_t>(w & 0xFFFFFFFFu), pool_,
                               static_cast<uint32_t>(w >> 32));
  }

  /// True while nothing was ever appended (encoding still undecided).
  bool pristine() const {
    return size_ == 0 && enc_ == Encoding::kInt64 && exc_rows_.empty();
  }

  /// Chooses the encoding from the first appended value.
  void InitFrom(const Value& v);

  /// Adopts `src`'s encoding (gather into a pristine target).
  void AdoptEncodingOf(const ColumnSegment& src);

  /// Appends `v` into the sidecar of a packed segment (placeholder word),
  /// demoting first when the sidecar is full.
  void AppendException(const Value& v);

  /// Rewrites a packed segment as kTagged (sidecar folded back in).
  void Demote();

  Encoding enc_ = Encoding::kInt64;
  /// kTagged only: every value has tag INT64 (the legacy uniform layout).
  bool tagged_all_int64_ = false;
  uint32_t pool_ = 0;  ///< kString only: pool of the packed words.
  int64_t size_ = 0;
  std::vector<int64_t> words_;   ///< Packed payloads (kInt64 / kString).
  std::vector<Value> tagged_;    ///< Full values (kTagged).
  std::vector<int64_t> exc_rows_;  ///< Sorted rows carried by the sidecar.
  std::vector<Value> exc_vals_;    ///< Their values, parallel to exc_rows_.
};

}  // namespace eve

#endif  // EVE_STORAGE_COLUMN_SEGMENT_H_
