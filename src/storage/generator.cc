#include "storage/generator.h"

#include <unordered_set>

#include "common/check.h"
#include "common/str_util.h"
#include "storage/hash_index.h"

namespace eve {

namespace {

Schema MakeSchema(const GeneratorOptions& opts) {
  std::vector<Attribute> attrs;
  for (int i = 0; i < opts.num_attributes; ++i) {
    std::string name;
    if (!opts.attribute_names.empty()) {
      name = opts.attribute_names[i];
    } else {
      // A, B, ..., Z, A1, B1, ...
      name = std::string(1, static_cast<char>('A' + i % 26));
      if (i >= 26) name += StrFormat("%d", i / 26);
    }
    attrs.push_back(Attribute::Make(name, DataType::kInt64, opts.attribute_bytes));
  }
  return Schema(std::move(attrs));
}

Tuple MakeRandomTuple(const GeneratorOptions& opts, Random* rng) {
  Tuple t;
  for (int i = 0; i < opts.num_attributes; ++i) {
    const int64_t domain = i == 0 ? opts.key_domain : opts.value_domain;
    t.Append(Value(static_cast<int64_t>(rng->Uniform(static_cast<uint64_t>(domain)))));
  }
  return t;
}

}  // namespace

Relation GenerateRelation(const std::string& name, const GeneratorOptions& opts,
                          Random* rng) {
  EVE_CHECK(opts.num_attributes > 0);
  EVE_CHECK(opts.attribute_names.empty() ||
            static_cast<int>(opts.attribute_names.size()) == opts.num_attributes);
  Relation rel(name, MakeSchema(opts));
  // Distinct tuples: extent comparisons use set semantics, so generated
  // relations should not shrink when deduplicated.
  std::unordered_set<Tuple, TupleHash> seen;
  int64_t attempts = 0;
  while (rel.cardinality() < opts.cardinality) {
    Tuple t = MakeRandomTuple(opts, rng);
    // Give up on uniqueness if the domain is too small to supply enough
    // distinct tuples; duplicates are then accepted.
    if (seen.insert(t).second || ++attempts > opts.cardinality * 100) {
      rel.InsertUnchecked(std::move(t));
    }
  }
  return rel;
}

Result<std::vector<Relation>> GenerateContainmentChain(
    const std::vector<std::string>& names, const std::vector<int64_t>& cards,
    const GeneratorOptions& opts, Random* rng) {
  if (names.size() != cards.size() || names.empty()) {
    return Status::InvalidArgument(
        "containment chain needs equally many names and cardinalities");
  }
  for (size_t i = 1; i < cards.size(); ++i) {
    if (cards[i] < cards[i - 1]) {
      return Status::InvalidArgument(
          "containment chain cardinalities must be non-decreasing");
    }
  }
  // Generate the largest relation, then take prefixes (after a shuffle) so
  // that each smaller relation is a strict subset of the next.
  GeneratorOptions big = opts;
  big.cardinality = cards.back();
  Relation largest = GenerateRelation(names.back(), big, rng);
  std::vector<Tuple> pool = largest.CopyTuples();
  rng->Shuffle(&pool);

  std::vector<Relation> out;
  for (size_t i = 0; i < names.size(); ++i) {
    Relation r(names[i], largest.schema());
    for (int64_t j = 0; j < cards[i]; ++j) r.InsertUnchecked(pool[j]);
    out.push_back(std::move(r));
  }
  return out;
}

double MeasureJoinSelectivity(const Relation& a, int col_a, const Relation& b,
                              int col_b) {
  if (a.empty() || b.empty()) return 0.0;
  HashIndex index(b, col_b);
  int64_t matches = 0;
  const ColumnSegment& keys = a.Segment(col_a);
  for (int64_t row = 0; row < a.cardinality(); ++row) {
    matches += static_cast<int64_t>(index.Lookup(keys.ValueAt(row)).size());
  }
  return static_cast<double>(matches) /
         (static_cast<double>(a.cardinality()) *
          static_cast<double>(b.cardinality()));
}

}  // namespace eve
