// Incremental view maintenance simulator: executes Algorithm 1 of the paper
// on real tuples.
//
// On a data update at relation R(1,0), the maintainer builds a delta of the
// inserted/deleted tuple, ships it site by site (origin site first, other
// sites in FROM order), joins it with each site's local view relations
// (applying the view's local selection conditions), and finally applies the
// accumulated delta to the materialized view extent.  All messages, bytes
// and I/Os are counted, so the analytic cost model of qc/cost_model.h can
// be validated against observed costs -- the validation the paper lists as
// future work (§8).

#ifndef EVE_MAINTENANCE_MAINTAINER_H_
#define EVE_MAINTENANCE_MAINTAINER_H_

#include <chrono>
#include <string>
#include <vector>

#include "common/exec_context.h"
#include "common/result.h"
#include "esql/ast.h"
#include "qc/cost_model.h"
#include "synch/partial.h"
#include "space/data_update.h"
#include "space/information_space.h"
#include "storage/block_model.h"
#include "storage/relation.h"

namespace eve {

/// Observed (simulated) maintenance costs of one update.
struct MaintenanceCounters {
  int64_t messages = 0;
  int64_t bytes = 0;
  int64_t ios = 0;
  /// Net change applied to the materialized extent.
  int64_t tuples_added = 0;
  int64_t tuples_removed = 0;

  MaintenanceCounters& operator+=(const MaintenanceCounters& o);
  std::string ToString() const;
};

/// Options of the maintenance simulator (mirrors CostModelOptions so that
/// model and simulation are comparable).
struct MaintainerOptions {
  BlockModel block;
  /// Count the update notification as a message (matches the analytic
  /// model's count_notification_message).
  bool count_notification_message = true;
  /// Join I/O accounting: the per-site "optimizer" charges the cheaper of a
  /// full scan and clustered index lookups per delta tuple.
  IoBoundPolicy io_policy = IoBoundPolicy::kLower;
  /// Recompute retries transient (Internal) execution failures up to this
  /// many total attempts; deterministic failures and governance errors
  /// never retry.
  int max_recompute_attempts = 3;
  /// Sleep before the first retry; doubles per further attempt.  Zero
  /// disables the sleep (retries still happen).
  std::chrono::microseconds recompute_retry_backoff{100};
};

class PlanCache;

/// The view maintainer.
class ViewMaintainer {
 public:
  /// With a non-null `plan_cache`, Recompute plans through it (prepared
  /// plans amortized across rematerializations; the cache revalidates
  /// against relation versions).  The cache must outlive the maintainer.
  ViewMaintainer(const InformationSpace& space, MaintainerOptions options = {},
                 PlanCache* plan_cache = nullptr)
      : space_(space), options_(options), plan_cache_(plan_cache) {}

  /// Processes one data update against `view`, updating `extent` (the
  /// materialized view extent, set semantics) in place.  The update must
  /// already have been applied to the information space for inserts, or not
  /// yet removed for deletes; the maintainer only evaluates joins against
  /// the *other* relations, so either order works for them.
  ///
  /// `ctx` governs the delta join: every intermediate delta tuple charges
  /// the row budget, and deadline/cancellation are polled at the usual
  /// amortized stride.
  Result<MaintenanceCounters> ProcessUpdate(
      const ViewDefinition& view, const DataUpdate& update, Relation* extent,
      const ExecContext& ctx = ExecContext::Unlimited()) const;

  /// Recomputes the extent from scratch (for initialization and as a test
  /// oracle against incremental maintenance).  Transient (Internal)
  /// execution failures are retried up to
  /// MaintainerOptions::max_recompute_attempts times with doubling backoff;
  /// governance failures (deadline, budget, cancellation) fail immediately
  /// and are re-checked between attempts so a retry loop can never outlive
  /// its deadline.
  Result<Relation> Recompute(
      const ViewDefinition& view,
      const ExecContext& ctx = ExecContext::Unlimited()) const;

  /// Candidate-consuming variant: recomputes the extent a (base, delta)
  /// rewriting candidate would materialize, using the candidate's lazy
  /// one-shot definition.  Lets what-if evaluation of a rewriting (e.g.
  /// measuring real extents for MeasureQuality) run without adopting it.
  Result<Relation> Recompute(
      const RewriteCandidate& candidate,
      const ExecContext& ctx = ExecContext::Unlimited()) const;

 private:
  const InformationSpace& space_;
  MaintainerOptions options_;
  PlanCache* plan_cache_ = nullptr;
};

}  // namespace eve

#endif  // EVE_MAINTENANCE_MAINTAINER_H_
