#include "maintenance/maintainer.h"

#include <algorithm>
#include <map>
#include <set>
#include <thread>

#include "algebra/executor.h"
#include "common/fault_injection.h"
#include "common/str_util.h"
#include "expr/eval.h"
#include "plan/plan_cache.h"
#include "storage/hash_index.h"

namespace eve {

MaintenanceCounters& MaintenanceCounters::operator+=(
    const MaintenanceCounters& o) {
  messages += o.messages;
  bytes += o.bytes;
  ios += o.ios;
  tuples_added += o.tuples_added;
  tuples_removed += o.tuples_removed;
  return *this;
}

std::string MaintenanceCounters::ToString() const {
  return StrFormat("messages=%lld bytes=%lld ios=%lld (+%lld/-%lld tuples)",
                   static_cast<long long>(messages),
                   static_cast<long long>(bytes), static_cast<long long>(ios),
                   static_cast<long long>(tuples_added),
                   static_cast<long long>(tuples_removed));
}

namespace {

// A FROM item resolved against the space.
struct Resolved {
  const FromItem* item;
  RelationId id;
  const Relation* relation;
};

}  // namespace

Result<Relation> ViewMaintainer::Recompute(const ViewDefinition& view,
                                           const ExecContext& ctx) const {
  // Bag semantics: the materialized extent keeps one row per derivation so
  // that incremental deletes stay correct (the counting approach); readers
  // use Distinct() for set-level comparisons.
  ExecOptions opts;
  opts.distinct = false;
  auto run_once = [&]() -> Result<Relation> {
    EVE_RETURN_IF_ERROR(FaultInjection::Probe("maintainer.recompute"));
    if (plan_cache_ != nullptr) {
      return plan_cache_->Execute(view, space_, opts, ctx);
    }
    return ExecuteView(view, space_, opts, ctx);
  };
  Result<Relation> result = run_once();
  // Bounded retry with doubling backoff, for transient (Internal) faults
  // only: governance errors, invalid views, etc. are deterministic and
  // retrying them would just burn the deadline.
  std::chrono::microseconds backoff = options_.recompute_retry_backoff;
  for (int attempt = 1; attempt < std::max(1, options_.max_recompute_attempts);
       ++attempt) {
    if (result.ok() || result.status().code() != StatusCode::kInternal) break;
    if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
    backoff *= 2;
    // The backoff sleep may have crossed the deadline; never start an
    // attempt a governed caller no longer wants.
    EVE_RETURN_IF_ERROR(ctx.CheckNow());
    result = run_once();
  }
  return result;
}

Result<Relation> ViewMaintainer::Recompute(const RewriteCandidate& candidate,
                                           const ExecContext& ctx) const {
  // Materializes into a local instead of the candidate's lazy cache, so
  // concurrent what-if sweeps over one shared candidate stay race-free
  // (Definition()'s cache is not synchronized).
  if (candidate.ops.empty()) return Recompute(*candidate.base, ctx);
  return Recompute(candidate.base->Apply(candidate.ops), ctx);
}

Result<MaintenanceCounters> ViewMaintainer::ProcessUpdate(
    const ViewDefinition& view, const DataUpdate& update, Relation* extent,
    const ExecContext& ctx) const {
  MaintenanceCounters counters;
  EVE_RETURN_IF_ERROR(view.Validate());
  // Before any state mutation: a fault or governance stop here leaves the
  // extent untouched, so the caller can recover by re-notifying.
  EVE_FAULT_POINT("maintainer.update");
  ExecGovernor gov(ctx);

  // Resolve FROM items and locate the updated relation within the view.
  std::vector<Resolved> resolved;
  int updated_pos = -1;
  for (const FromItem& f : view.from_items) {
    Resolved r;
    r.item = &f;
    if (!f.site.empty()) {
      r.id = RelationId{f.site, f.relation};
    } else {
      EVE_ASSIGN_OR_RETURN(std::string site, space_.SiteOf(f.relation));
      r.id = RelationId{site, f.relation};
    }
    EVE_ASSIGN_OR_RETURN(r.relation, space_.Resolve(r.id.site, r.id.relation));
    if (r.id == update.relation) {
      if (updated_pos >= 0) {
        return Status::Unimplemented(
            "incremental maintenance of self-joins over the updated relation");
      }
      updated_pos = static_cast<int>(resolved.size());
    }
    resolved.push_back(std::move(r));
  }
  if (updated_pos < 0) return counters;  // View does not reference it.

  const Resolved& origin = resolved[updated_pos];
  if (update.tuple.size() != origin.relation->schema().size()) {
    return Status::InvalidArgument(
        "update tuple arity does not match relation " +
        update.relation.ToString());
  }

  // Update notification: the updated tuple travels to the view site.
  counters.bytes += origin.relation->TupleBytes();
  if (options_.count_notification_message) counters.messages += 1;

  // Delta layout starts with the updated relation's columns.
  Binding binding;
  {
    const Schema& s = origin.relation->schema();
    for (int i = 0; i < s.size(); ++i) {
      EVE_RETURN_IF_ERROR(
          binding.Register(RelAttr{origin.item->name(), s.attribute(i).name}, i));
    }
  }
  std::vector<Tuple> working{update.tuple};
  int64_t width = origin.relation->TupleBytes();
  std::set<std::string> bound{origin.item->name()};

  // Track which WHERE clauses have been applied.
  std::vector<bool> applied(view.where.size(), false);
  auto apply_evaluable = [&]() -> Status {
    for (size_t ci = 0; ci < view.where.size(); ++ci) {
      if (applied[ci]) continue;
      bool evaluable = true;
      for (const RelAttr& a : view.where[ci].clause.Attributes()) {
        if (bound.count(a.relation) == 0) evaluable = false;
      }
      if (!evaluable) continue;
      EVE_ASSIGN_OR_RETURN(BoundClause bc, Bind(view.where[ci].clause, binding));
      std::vector<Tuple> filtered;
      for (Tuple& t : working) {
        if (bc.Eval(t)) filtered.push_back(std::move(t));
      }
      working = std::move(filtered);
      applied[ci] = true;
    }
    return Status::OK();
  };
  // The origin's local conditions filter the delta before it travels.
  EVE_RETURN_IF_ERROR(apply_evaluable());

  // Visit order: origin site first, then other sites by first appearance.
  std::vector<std::string> site_order{origin.id.site};
  for (const Resolved& r : resolved) {
    if (std::find(site_order.begin(), site_order.end(), r.id.site) ==
        site_order.end()) {
      site_order.push_back(r.id.site);
    }
  }

  for (const std::string& site : site_order) {
    std::vector<const Resolved*> site_rels;
    for (size_t i = 0; i < resolved.size(); ++i) {
      if (static_cast<int>(i) != updated_pos && resolved[i].id.site == site) {
        site_rels.push_back(&resolved[i]);
      }
    }
    if (site_rels.empty()) continue;

    counters.messages += 2;  // Single-site query with delta + answer.
    counters.bytes += static_cast<int64_t>(working.size()) * width;

    for (const Resolved* r : site_rels) {
      const Relation& rel = *r->relation;
      const int offset = binding.size();
      const Schema& s = rel.schema();
      for (int i = 0; i < s.size(); ++i) {
        EVE_RETURN_IF_ERROR(binding.Register(
            RelAttr{r->item->name(), s.attribute(i).name}, offset + i));
      }
      bound.insert(r->item->name());

      // Find an equality join clause usable as the probe key.
      int probe_col = -1;
      int build_col = -1;  // Column inside rel.
      size_t key_clause = view.where.size();
      for (size_t ci = 0; ci < view.where.size(); ++ci) {
        if (applied[ci]) continue;
        const PrimitiveClause& c = view.where[ci].clause;
        if (c.op != CompOp::kEqual || !c.rhs_is_attr()) continue;
        const bool lhs_here = c.lhs.relation == r->item->name();
        const bool rhs_here = c.rhs_attr().relation == r->item->name();
        if (lhs_here == rhs_here) continue;
        const RelAttr& here = lhs_here ? c.lhs : c.rhs_attr();
        const RelAttr& there = lhs_here ? c.rhs_attr() : c.lhs;
        if (bound.count(there.relation) == 0) continue;
        const auto there_col = binding.TryResolve(there);
        const auto here_idx = s.IndexOf(here.attribute);
        if (!there_col.has_value() || !here_idx.has_value()) continue;
        probe_col = *there_col;
        build_col = *here_idx;
        key_clause = ci;
        break;
      }

      const int64_t scan_ios =
          options_.block.ScanIos(rel.cardinality(), rel.TupleBytes());
      std::vector<Tuple> next;
      if (probe_col >= 0) {
        // Cached on the relation: updates to *other* relations leave this
        // index valid, so steady-state maintenance never rebuilds it.
        const HashIndex& index = rel.Index(build_col);
        int64_t probe_ios = 0;
        const int64_t bfr = options_.block.BlockingFactor(rel.TupleBytes());
        for (const Tuple& t : working) {
          const auto& rows = index.Lookup(t.at(probe_col));
          const int64_t matched = static_cast<int64_t>(rows.size());
          switch (options_.io_policy) {
            case IoBoundPolicy::kLower:
              probe_ios += std::max<int64_t>(1, CeilDiv(matched, bfr));
              break;
            case IoBoundPolicy::kUpper:
              probe_ios += std::max<int64_t>(1, matched);
              break;
          }
          for (int64_t row : rows) next.push_back(rel.ConcatRow(t, row));
        }
        counters.ios += working.empty() ? 0 : std::min(scan_ios, probe_ios);
        applied[key_clause] = true;
      } else {
        // No usable equality clause: the site scans the relation.
        counters.ios += working.empty() ? 0 : scan_ios;
        for (const Tuple& t : working) {
          for (int64_t row = 0; row < rel.cardinality(); ++row) {
            next.push_back(rel.ConcatRow(t, row));
          }
        }
      }
      working = std::move(next);
      width += rel.TupleBytes();
      EVE_RETURN_IF_ERROR(gov.Charge(static_cast<int64_t>(working.size()) + 1));
      EVE_RETURN_IF_ERROR(apply_evaluable());
    }
    counters.bytes += static_cast<int64_t>(working.size()) * width;
  }

  // Final governance poll BEFORE mutating the extent: past this point the
  // update applies atomically (all delta tuples or none).
  EVE_RETURN_IF_ERROR(gov.Flush());

  // Project the delta onto the view interface and apply it to the extent.
  std::vector<int> out_cols;
  for (const SelectItem& s : view.select_items) {
    EVE_ASSIGN_OR_RETURN(const int col, binding.Resolve(s.source));
    out_cols.push_back(col);
  }
  if (update.kind == UpdateKind::kInsert) {
    for (const Tuple& t : working) {
      extent->InsertUnchecked(t.Project(out_cols));
      counters.tuples_added += 1;
    }
  } else if (!working.empty()) {
    // Delete sweep: project every victim first, then erase them in ONE
    // batched pass (hash-bucketed scan + one compaction per column)
    // instead of a full extent scan per victim.
    std::vector<Tuple> victims;
    victims.reserve(working.size());
    for (const Tuple& t : working) victims.push_back(t.Project(out_cols));
    counters.tuples_removed += extent->EraseBatch(victims);
  }
  return counters;
}

}  // namespace eve
