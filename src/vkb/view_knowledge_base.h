// ViewKnowledgeBase (VKB): the registry of views defined over the
// information space, their materialized extents, and their evolution
// history (paper Fig. 1, "View Knowledge Base" + "View Space").

#ifndef EVE_VKB_VIEW_KNOWLEDGE_BASE_H_
#define EVE_VKB_VIEW_KNOWLEDGE_BASE_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "catalog/names.h"
#include "common/result.h"
#include "esql/ast.h"
#include "storage/relation.h"

namespace eve {

/// Life-cycle states of a view under evolution (Experiment 1, Fig. 12).
enum class ViewState {
  kAlive,     ///< Definition valid against the current information space.
  kAffected,  ///< A capability change invalidated it; awaiting synchronization.
  kDead,      ///< No legal rewriting existed; the view is deceased.
};

std::string_view ViewStateToString(ViewState state);

/// One step in a view's evolution history.
struct EvolutionRecord {
  std::string trigger;      ///< The schema change that forced the rewrite.
  std::string old_version;  ///< Compact E-SQL of the replaced definition.
  std::string new_version;  ///< Compact E-SQL of the adopted rewriting
                            ///< (empty when the view died).
};

/// A registered view: definition, materialized extent, state, and history.
struct ViewEntry {
  ViewDefinition definition;
  Relation extent;          ///< Materialized extent (may be empty if never
                            ///< materialized).
  bool materialized = false;
  ViewState state = ViewState::kAlive;
  std::vector<EvolutionRecord> history;
};

/// The view registry.
class ViewKnowledgeBase {
 public:
  /// Registers a validated view definition.  Fails on duplicate names.
  Status Define(ViewDefinition definition);

  /// Removes a view.
  Status Drop(const std::string& name);

  Result<const ViewEntry*> Get(const std::string& name) const;
  Result<ViewEntry*> GetMutable(const std::string& name);

  bool Has(const std::string& name) const { return views_.count(name) > 0; }

  /// Sorted names of all registered views.
  std::vector<std::string> ViewNames() const;

  /// Views whose definition references relation `id` (by FROM item, with
  /// sites resolved through `site_of`: a map from bare relation name to
  /// site).  Used by the view synchronizer to find affected views.
  std::vector<std::string> ViewsReferencing(
      const RelationId& id,
      const std::map<std::string, std::string>& site_of) const;

  /// Stores a freshly computed extent for `name`.
  Status SetExtent(const std::string& name, Relation extent);

  /// Replaces the definition after a synchronization step and logs history.
  Status ReplaceDefinition(const std::string& name, ViewDefinition new_def,
                           const std::string& trigger);

  /// Marks a view dead, logging the terminal history record.
  Status MarkDead(const std::string& name, const std::string& trigger);

 private:
  std::map<std::string, ViewEntry> views_;
};

}  // namespace eve

#endif  // EVE_VKB_VIEW_KNOWLEDGE_BASE_H_
