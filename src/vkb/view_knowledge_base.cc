#include "vkb/view_knowledge_base.h"

#include "esql/printer.h"

namespace eve {

std::string_view ViewStateToString(ViewState state) {
  switch (state) {
    case ViewState::kAlive:
      return "alive";
    case ViewState::kAffected:
      return "affected";
    case ViewState::kDead:
      return "dead";
  }
  return "?";
}

Status ViewKnowledgeBase::Define(ViewDefinition definition) {
  EVE_RETURN_IF_ERROR(definition.Validate());
  const std::string name = definition.name;
  if (views_.count(name) > 0) {
    return Status::AlreadyExists("view " + name + " already defined");
  }
  ViewEntry entry;
  entry.definition = std::move(definition);
  views_.emplace(name, std::move(entry));
  return Status::OK();
}

Status ViewKnowledgeBase::Drop(const std::string& name) {
  if (views_.erase(name) == 0) {
    return Status::NotFound("view " + name + " not defined");
  }
  return Status::OK();
}

Result<const ViewEntry*> ViewKnowledgeBase::Get(const std::string& name) const {
  const auto it = views_.find(name);
  if (it == views_.end()) return Status::NotFound("view " + name + " not defined");
  return &it->second;
}

Result<ViewEntry*> ViewKnowledgeBase::GetMutable(const std::string& name) {
  const auto it = views_.find(name);
  if (it == views_.end()) return Status::NotFound("view " + name + " not defined");
  return &it->second;
}

std::vector<std::string> ViewKnowledgeBase::ViewNames() const {
  std::vector<std::string> out;
  out.reserve(views_.size());
  for (const auto& [name, entry] : views_) out.push_back(name);
  return out;
}

std::vector<std::string> ViewKnowledgeBase::ViewsReferencing(
    const RelationId& id,
    const std::map<std::string, std::string>& site_of) const {
  std::vector<std::string> out;
  for (const auto& [name, entry] : views_) {
    if (entry.state == ViewState::kDead) continue;
    for (const FromItem& f : entry.definition.from_items) {
      if (f.relation != id.relation) continue;
      std::string site = f.site;
      if (site.empty()) {
        const auto it = site_of.find(f.relation);
        if (it != site_of.end()) site = it->second;
      }
      if (site.empty() || site == id.site) {
        out.push_back(name);
        break;
      }
    }
  }
  return out;
}

Status ViewKnowledgeBase::SetExtent(const std::string& name, Relation extent) {
  EVE_ASSIGN_OR_RETURN(ViewEntry * entry, GetMutable(name));
  entry->extent = std::move(extent);
  entry->materialized = true;
  return Status::OK();
}

Status ViewKnowledgeBase::ReplaceDefinition(const std::string& name,
                                            ViewDefinition new_def,
                                            const std::string& trigger) {
  EVE_RETURN_IF_ERROR(new_def.Validate());
  EVE_ASSIGN_OR_RETURN(ViewEntry * entry, GetMutable(name));
  EvolutionRecord record;
  record.trigger = trigger;
  record.old_version = PrintViewCompact(entry->definition);
  record.new_version = PrintViewCompact(new_def);
  entry->history.push_back(std::move(record));
  entry->definition = std::move(new_def);
  entry->state = ViewState::kAlive;
  entry->materialized = false;  // Extent must be recomputed.
  return Status::OK();
}

Status ViewKnowledgeBase::MarkDead(const std::string& name,
                                   const std::string& trigger) {
  EVE_ASSIGN_OR_RETURN(ViewEntry * entry, GetMutable(name));
  EvolutionRecord record;
  record.trigger = trigger;
  record.old_version = PrintViewCompact(entry->definition);
  entry->history.push_back(std::move(record));
  entry->state = ViewState::kDead;
  return Status::OK();
}

}  // namespace eve
