#include "misd/constraints.h"

#include <algorithm>

#include "common/check.h"
#include "common/str_util.h"

namespace eve {

std::string TypeConstraint::ToString() const {
  return StrFormat("TC(%s.%s : %s)", relation.ToString().c_str(),
                   attribute.c_str(), std::string(DataTypeName(type)).c_str());
}

bool JoinConstraint::Connects(const RelationId& a, const RelationId& b) const {
  return (left == a && right == b) || (left == b && right == a);
}

const RelationId& JoinConstraint::Other(const RelationId& r) const {
  EVE_CHECK(Involves(r));
  return left == r ? right : left;
}

std::string JoinConstraint::ToString() const {
  return StrFormat("JC(%s, %s: %s)", left.ToString().c_str(),
                   right.ToString().c_str(), condition.ToString().c_str());
}

std::string_view PcRelationTypeToString(PcRelationType type) {
  switch (type) {
    case PcRelationType::kSubset:
      return "subset";
    case PcRelationType::kEquivalent:
      return "equivalent";
    case PcRelationType::kSuperset:
      return "superset";
    case PcRelationType::kIncomparable:
      return "incomparable";
  }
  return "?";
}

PcRelationType FlipPcRelationType(PcRelationType type) {
  switch (type) {
    case PcRelationType::kSubset:
      return PcRelationType::kSuperset;
    case PcRelationType::kEquivalent:
      return PcRelationType::kEquivalent;
    case PcRelationType::kSuperset:
      return PcRelationType::kSubset;
    case PcRelationType::kIncomparable:
      return PcRelationType::kIncomparable;
  }
  return type;
}

Status PcConstraint::Validate() const {
  if (left.attributes.empty()) {
    return Status::InvalidArgument("PC constraint has empty projection list");
  }
  if (left.attributes.size() != right.attributes.size()) {
    return Status::InvalidArgument(
        "PC constraint projection lists differ in arity");
  }
  if (left.selectivity <= 0.0 || left.selectivity > 1.0 ||
      right.selectivity <= 0.0 || right.selectivity > 1.0) {
    return Status::InvalidArgument(
        "PC constraint selectivities must be in (0, 1]");
  }
  if (!left.HasSelection() && left.selectivity != 1.0) {
    return Status::InvalidArgument(
        "PC side without selection must have selectivity 1");
  }
  if (!right.HasSelection() && right.selectivity != 1.0) {
    return Status::InvalidArgument(
        "PC side without selection must have selectivity 1");
  }
  return Status::OK();
}

std::optional<std::string> PcConstraint::MapLeftToRight(
    const std::string& left_attribute) const {
  const auto it = std::find(left.attributes.begin(), left.attributes.end(),
                            left_attribute);
  if (it == left.attributes.end()) return std::nullopt;
  return right.attributes[static_cast<size_t>(it - left.attributes.begin())];
}

std::optional<std::string> PcConstraint::MapRightToLeft(
    const std::string& right_attribute) const {
  const auto it = std::find(right.attributes.begin(), right.attributes.end(),
                            right_attribute);
  if (it == right.attributes.end()) return std::nullopt;
  return left.attributes[static_cast<size_t>(it - right.attributes.begin())];
}

PcConstraint PcConstraint::Flipped() const {
  PcConstraint out;
  out.left = right;
  out.right = left;
  out.type = FlipPcRelationType(type);
  return out;
}

std::string PcConstraint::ToString() const {
  auto side = [](const PcSide& s) {
    std::string text = "pi_{" + Join(s.attributes, ",") + "}(";
    if (s.HasSelection()) {
      text += "sigma_{" + s.selection.ToString() + "}(";
    }
    text += s.relation.ToString();
    if (s.HasSelection()) text += ")";
    text += ")";
    return text;
  };
  const char* rel = type == PcRelationType::kSubset        ? "SUBSETEQ"
                    : type == PcRelationType::kSuperset    ? "SUPSETEQ"
                    : type == PcRelationType::kIncomparable ? "RELATED"
                                                            : "EQUIV";
  return "PC(" + side(left) + " " + rel + " " + side(right) + ")";
}

PcConstraint MakeProjectionPc(RelationId left, RelationId right,
                              std::vector<std::string> attributes,
                              PcRelationType type) {
  PcConstraint pc;
  pc.left.relation = std::move(left);
  pc.left.attributes = attributes;
  pc.right.relation = std::move(right);
  pc.right.attributes = std::move(attributes);
  pc.type = type;
  return pc;
}

}  // namespace eve
