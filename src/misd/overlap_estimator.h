// Estimation of overlapping relation extents from PC constraints
// (paper §5.4.3, Figs. 9 and 10).
//
// Given a PC constraint between a dropped relation R1 and a replacement R2,
// the size of |pi(R1) ∩ pi(R2)| is derived from the constraint's shape:
// whether each side carries a selection condition ("no/no", "no/yes",
// "yes/no", "yes/yes") and the asserted set relation (subset / equivalent /
// superset) -- twelve cases in total.  Seven cases are exact; the other
// five only admit a minimal bound (marked inexact, the asterisked subsets
// in Fig. 9).

#ifndef EVE_MISD_OVERLAP_ESTIMATOR_H_
#define EVE_MISD_OVERLAP_ESTIMATOR_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "misd/constraints.h"
#include "misd/mkb.h"

namespace eve {

/// An estimated overlap size.
struct OverlapEstimate {
  /// Estimated |R1 ∩~ R2| in tuples (a minimal value when !exact).
  double size = 0.0;
  /// True iff the PC constraint determines the overlap exactly.
  bool exact = true;

  std::string ToString() const;
};

/// Estimates |pi(R1) ∩ pi(R2)| from a source->target PC edge and the two
/// full-relation cardinalities (paper Fig. 10).  The edge's selectivities
/// stand in for the sigma_R1 / sigma_R2 statistics.
OverlapEstimate EstimateIntersection(const PcEdge& edge, int64_t source_card,
                                     int64_t target_card);

/// Convenience: looks up cardinalities in the MKB statistics store.
Result<OverlapEstimate> EstimateIntersection(const MetaKnowledgeBase& mkb,
                                             const PcEdge& edge);

}  // namespace eve

#endif  // EVE_MISD_OVERLAP_ESTIMATOR_H_
