// Database statistics assumed known by the analytic model (paper §6.1):
// relation cardinalities, tuple/attribute sizes, local selectivities, and
// the (global, constant) join selectivity js.

#ifndef EVE_MISD_STATISTICS_H_
#define EVE_MISD_STATISTICS_H_

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "catalog/names.h"
#include "common/result.h"

namespace eve {

/// Per-relation statistics.
struct RelationStats {
  /// |R|, the number of tuples.
  int64_t cardinality = 0;
  /// s_R, the tuple width in bytes (sum of attribute sizes).
  int64_t tuple_bytes = 0;
  /// sigma, the selectivity of this relation's local condition in a view
  /// (the paper assumes one equality-based local condition per relation,
  /// §6.1 assumption 4).  1.0 means "no local condition".
  double local_selectivity = 1.0;
};

/// The statistics store of the Meta Knowledge Base.
class StatisticsStore {
 public:
  /// js: constant join selectivity for any two relations (§6.1 assumption 3).
  double join_selectivity() const { return join_selectivity_; }
  void set_join_selectivity(double js) { join_selectivity_ = js; }

  /// Registers or overwrites the statistics of a relation.
  void Set(const RelationId& relation, RelationStats stats);

  /// Statistics of `relation`; NotFound if never registered.
  Result<RelationStats> Get(const RelationId& relation) const;

  bool Has(const RelationId& relation) const;

  void Remove(const RelationId& relation);

  /// Renames the key (schema change change-relation-name).
  Status Rename(const RelationId& from, const RelationId& to);

 private:
  std::unordered_map<RelationId, RelationStats, RelationIdHash> stats_;
  double join_selectivity_ = 0.005;  // Paper Table 1 default.
};

}  // namespace eve

#endif  // EVE_MISD_STATISTICS_H_
