// MetaKnowledgeBase (MKB): the registry of information-source capabilities
// and inter-source semantic constraints (paper §3.2 and Fig. 1).
//
// The MKB stores, per registered relation, its schema (the capability
// description IS.R(A1..An), Eq. 3, with type constraints implied by the
// schema) plus statistics, and globally the JC and PC constraints.  The
// view synchronizer queries it to discover replacements; the MKB Evolver
// role of Fig. 1 is covered by ApplySchemaChange-style mutators that keep
// the constraint set consistent when sources change capabilities.

#ifndef EVE_MISD_MKB_H_
#define EVE_MISD_MKB_H_

#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "catalog/names.h"
#include "catalog/schema.h"
#include "common/exec_context.h"
#include "common/result.h"
#include "misd/constraints.h"
#include "misd/statistics.h"

namespace eve {

/// Counters describing the behavior of the MKB's derived-state memos under
/// mutation (see MetaKnowledgeBase::set_selective_invalidation).  Snapshot
/// via MetaKnowledgeBase::memo_stats(); all counters are cumulative.
struct MkbMemoStats {
  /// Closure (PcEdgesFromTransitive) memo hits / misses.
  int64_t closure_hits = 0;
  int64_t closure_misses = 0;
  /// Memo entries (all three caches) that survived a mutation because the
  /// mutated relation set did not intersect their touched set, vs entries
  /// dropped by the delta-aware sweep.
  int64_t memo_survivals = 0;
  int64_t selective_drops = 0;
  /// Closure-cache-only split of the above (the survival fraction of the
  /// enumeration hot path, reported by the evolution-stream harness).
  int64_t closure_survivals = 0;
  int64_t closure_drops = 0;
  /// Full-flush invalidations (selective invalidation disabled).
  int64_t full_flushes = 0;
};

/// A PC-derived replacement edge, normalized so that `source` is the
/// relation being replaced and `target` the candidate replacement.
struct PcEdge {
  /// Rendering of the underlying constraint (for provenance; edges are
  /// self-contained so rewritings survive later MKB evolution).
  std::string constraint_text;
  RelationId source;
  RelationId target;
  /// Extent relation of source fragment vs target fragment, read
  /// source-to-target (kSubset: source fragment ⊆ target fragment).
  PcRelationType type = PcRelationType::kEquivalent;
  /// Attribute mapping source attr -> target attr (positional).
  std::map<std::string, std::string> attribute_map;
  /// Selectivities of the source-side / target-side selections.
  double source_selectivity = 1.0;
  double target_selectivity = 1.0;
  /// Selection conditions (bare relation names).
  Conjunction source_selection;
  Conjunction target_selection;
  /// Derivation depth: 1 for a direct constraint, k for an edge composed
  /// of k chained constraints by the transitive closure.  Feeds the policy
  /// layer's PC-hop-depth candidate feature.
  int hops = 1;
};

/// The Meta Knowledge Base.
class MetaKnowledgeBase {
 public:
  // --- Capability registration -------------------------------------------

  /// Registers relation `id` with schema `schema`.  Fails if already known.
  Status RegisterRelation(const RelationId& id, const Schema& schema);

  /// Unregisters a relation and drops every constraint touching it.
  /// Before dropping, the consistency checker installs *bridge* PC
  /// constraints between the surviving endpoints of constraint pairs that
  /// met at the disappearing relation (see BridgeConstraintsThrough), so
  /// replacement knowledge survives the deletion -- this is what lets a
  /// once-replaced view evolve again (paper Experiment 1, Fig. 12).
  /// Returns the number of dropped constraints.
  Result<int> UnregisterRelation(const RelationId& id);

  /// Removes attribute `attr` from the registered schema and drops every
  /// constraint referencing it (after installing bridges, as above).
  /// Returns the number of dropped constraints.
  Result<int> RemoveAttribute(const RelationId& id, const std::string& attr);

  /// Adds an attribute to a registered schema.
  Status AddAttribute(const RelationId& id, const Attribute& attribute);

  /// Renames a relation, rewriting constraints in place.
  Status RenameRelation(const RelationId& from, const std::string& new_name);

  /// Renames an attribute, rewriting schema and constraints in place.
  Status RenameAttribute(const RelationId& id, const std::string& from,
                         const std::string& to);

  bool HasRelation(const RelationId& id) const;
  Result<Schema> GetSchema(const RelationId& id) const;

  /// All registered relations (sorted by id).
  std::vector<RelationId> Relations() const;

  /// Resolves a bare relation name to its RelationId.  Fails if unknown or
  /// ambiguous across sites.
  Result<RelationId> ResolveName(const std::string& relation_name) const;

  // --- Constraints ---------------------------------------------------------

  Status AddJoinConstraint(JoinConstraint jc);
  Status AddPcConstraint(PcConstraint pc);

  const std::vector<JoinConstraint>& join_constraints() const {
    return join_constraints_;
  }
  const std::vector<PcConstraint>& pc_constraints() const {
    return pc_constraints_;
  }

  /// Join constraints connecting `a` and `b` (either orientation), in
  /// store order.  Memoized per normalized pair (the CVS pair search probes
  /// every target pair of a wide fan-out, which made the former full-store
  /// scan quadratic in practice); a constraint mutation touching `a` or `b`
  /// invalidates the entry (every mutation, with selective invalidation
  /// off), and the returned pointers follow the same validity rule as the
  /// closure memo: valid until the next non-const MKB call.
  std::vector<const JoinConstraint*> FindJoinConstraints(
      const RelationId& a, const RelationId& b) const;

  /// All PC edges with `source` as the replaced relation (both stored
  /// orientations are normalized into source->target edges).
  std::vector<PcEdge> PcEdgesFrom(const RelationId& source) const;

  /// PC edges derived by composing up to `max_hops` constraints through
  /// intermediate relations (e.g. S1 ⊆ S2 and S2 ⊆ S3 imply S1 ⊆ S3).
  /// Composition is conservative: it requires the intermediate fragments to
  /// be unselected, composes attribute maps positionally, and combines set
  /// relations only when compatible (equivalent is neutral; subset chains
  /// stay subset, superset chains stay superset; mixing is not derivable).
  /// Direct (1-hop) edges are included.  Results are deduplicated, keeping
  /// the shortest derivation per (target, type, attribute map).
  ///
  /// The closure is memoized per (source, max_hops); a mutation touching a
  /// relation the closure reached invalidates the entry -- unrelated
  /// mutations leave it warm (see set_selective_invalidation; with the
  /// flag off, any mutation flushes everything).  The returned reference is
  /// valid until the next non-const MKB call.  The synchronizer queries the
  /// same closure up to three times per FROM item per partial
  /// (replace-relation, join-in, cvs-pair), so this memo is the dominant
  /// saving of the rewriting-enumeration hot path.
  ///
  /// Thread-safe against other const calls (the memo maps are mutex-
  /// guarded, mirroring the Relation cache pattern), so extent-replay
  /// drivers may synchronize independent views against one MKB from
  /// ParallelFor workers.  The single-writer caveat applies as everywhere:
  /// mutating the MKB concurrently with readers requires external
  /// synchronization, since a mutation invalidates memo references a
  /// reader may still hold.
  const std::vector<PcEdge>& PcEdgesFromTransitive(const RelationId& source,
                                                   int max_hops = 4) const;

  /// Governed variant of PcEdgesFromTransitive: a memo hit is returned
  /// as-is (free); a miss runs the closure search charging one row-budget
  /// work unit per expanded/composed edge against `ctx` and honoring its
  /// deadline and cancellation.  A governance failure caches nothing, so
  /// the memo never holds a partial closure.  The returned pointer follows
  /// the same validity rule as PcEdgesFromTransitive's reference.
  Result<const std::vector<PcEdge>*> PcEdgesFromTransitiveGoverned(
      const RelationId& source, int max_hops, const ExecContext& ctx) const;

  /// The same closure computed without any memoization, rebuilding the
  /// adjacency lists by scanning the constraint store per node (the seed's
  /// behavior).  Kept as the benchmark baseline and the equivalence oracle
  /// for the memoized path.
  std::vector<PcEdge> PcEdgesFromTransitiveUncached(const RelationId& source,
                                                    int max_hops = 4) const;

  /// Type constraints implied by the registered schemas.
  std::vector<TypeConstraint> TypeConstraints() const;

  // --- Statistics ----------------------------------------------------------

  StatisticsStore& stats() { return stats_; }
  const StatisticsStore& stats() const { return stats_; }

  /// Registers schema and statistics in one call (convenience).
  Status RegisterRelationWithStats(const RelationId& id, const Schema& schema,
                                   int64_t cardinality,
                                   double local_selectivity = 1.0);

  /// Human-readable dump (for examples and debugging).
  std::string ToString() const;

  // --- Derived-memo invalidation policy ------------------------------------

  /// Delta-aware invalidation (the default): every mutator computes the set
  /// of relations it touches and drops only the memo entries whose touched
  /// set intersects it, keeping closures warm across unrelated changes --
  /// the difference between O(stream) and O(stream^2) closure work on long
  /// evolution streams.  Off restores the seed's drop-everything behavior,
  /// kept as the equivalence oracle (both modes answer every query
  /// identically; only the amount of recomputation differs).
  void set_selective_invalidation(bool on) { selective_invalidation_ = on; }
  bool selective_invalidation() const { return selective_invalidation_; }

  /// Snapshot of the memo behavior counters.
  MkbMemoStats memo_stats() const;

 private:
  static PcEdge MakeEdge(const PcConstraint& pc, bool flipped);

  // Installs PC constraints composing each pair of soon-to-be-dropped
  // constraints that meet at `through` (optionally only those referencing
  // `attr` of it).  Sound compositions keep their containment direction;
  // Y superset X subset Z pairs degrade to kIncomparable ("same information
  // type, unknown containment").
  void BridgeConstraintsThrough(const RelationId& through,
                                const std::string* attr);

  // Memoized normalized adjacency (PcEdgesFrom) for the closure search.
  // Requires memo_mu_ held.
  const std::vector<PcEdge>& AdjacencyForLocked(const RelationId& source) const;

  // Delta-aware invalidation: drops the adjacency/closure entries whose
  // touched relation set intersects `pc_mutated` and the JC-pair entries
  // whose pair intersects `jc_mutated`.  An entry's touched set is derived
  // from its contents -- {key source} + every cached edge target -- which
  // is sound because any constraint the closure search ever examined
  // involves a relation that ended up in that set (see mkb.cc).  With
  // selective invalidation disabled, any non-empty mutation set degrades to
  // the seed's full flush.  Counts survivals/drops into memo_stats_.
  void InvalidateTouching(const std::vector<RelationId>& pc_mutated,
                          const std::vector<RelationId>& jc_mutated);

  // The relations whose PC memo entries a mutation of `id`'s constraint set
  // can affect: {id} + the targets of every current PC edge at `id`.
  // Covers the bridge constraints UnregisterRelation/RemoveAttribute
  // install between pairs of those targets.  Call BEFORE mutating.
  std::vector<RelationId> PcNeighborhood(const RelationId& id) const;

  std::map<RelationId, Schema> schemas_;
  std::vector<JoinConstraint> join_constraints_;
  std::vector<PcConstraint> pc_constraints_;
  StatisticsStore stats_;
  bool selective_invalidation_ = true;

  // Lazily built derived state (std::map nodes are stable, so returned
  // references survive unrelated insertions AND selective drops of other
  // entries).  Guarded by memo_mu_ so concurrent const readers may populate
  // the memos; mutators still follow the single-writer contract (see
  // PcEdgesFromTransitive).  The JC-pair cache stores constraint COPIES:
  // the backing join_constraints_ vector reallocates on insert and
  // compacts on erase, so surviving entries must not point into it; the
  // copies in stable map nodes extend the returned pointers' validity to
  // "until the entry is dropped", which subsumes the documented
  // next-non-const-call rule.
  mutable std::mutex memo_mu_;
  mutable std::map<RelationId, std::vector<PcEdge>> adjacency_cache_;
  mutable std::map<std::pair<RelationId, int>, std::vector<PcEdge>>
      closure_cache_;
  mutable std::map<std::pair<RelationId, RelationId>,
                   std::vector<JoinConstraint>>
      jc_pair_cache_;
  mutable MkbMemoStats memo_stats_;
};

}  // namespace eve

#endif  // EVE_MISD_MKB_H_
