#include "misd/statistics.h"

namespace eve {

void StatisticsStore::Set(const RelationId& relation, RelationStats stats) {
  stats_[relation] = stats;
}

Result<RelationStats> StatisticsStore::Get(const RelationId& relation) const {
  const auto it = stats_.find(relation);
  if (it == stats_.end()) {
    return Status::NotFound("no statistics for relation " + relation.ToString());
  }
  return it->second;
}

bool StatisticsStore::Has(const RelationId& relation) const {
  return stats_.count(relation) > 0;
}

void StatisticsStore::Remove(const RelationId& relation) {
  stats_.erase(relation);
}

Status StatisticsStore::Rename(const RelationId& from, const RelationId& to) {
  const auto it = stats_.find(from);
  if (it == stats_.end()) {
    return Status::NotFound("no statistics for relation " + from.ToString());
  }
  RelationStats stats = it->second;
  stats_.erase(it);
  stats_[to] = stats;
  return Status::OK();
}

}  // namespace eve
