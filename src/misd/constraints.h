// MISD constraints (paper §3.2, Fig. 4):
//   * Type-integrity constraints  TC_{R.A} : attribute A of R has a type.
//   * Join constraints            JC_{R1,R2}: a meaningful way to join.
//   * Partial/Complete constraints PC_{R1,R2}:
//       pi_{A..}(sigma_{C1}(R1))  REL  pi_{B..}(sigma_{C2}(R2)),
//     REL in {subset, equivalent, superset}, attribute lists positionally
//     aligned (Eq. 5).  PC constraints drive replacement discovery and
//     extent-overlap estimation.

#ifndef EVE_MISD_CONSTRAINTS_H_
#define EVE_MISD_CONSTRAINTS_H_

#include <optional>
#include <string>
#include <vector>

#include "catalog/names.h"
#include "common/result.h"
#include "expr/clause.h"
#include "types/data_type.h"

namespace eve {

/// TC_{R.A}: declares the type of an attribute (paper Fig. 4, row 1).
struct TypeConstraint {
  RelationId relation;
  std::string attribute;
  DataType type = DataType::kInt64;

  std::string ToString() const;
};

/// JC_{R1,R2}: a conjunction of primitive clauses under which joining the
/// two relations is meaningful (paper Eq. 4).  Clause attribute references
/// use the bare relation names of `left` and `right`.
struct JoinConstraint {
  RelationId left;
  RelationId right;
  Conjunction condition;

  /// True iff the constraint connects `a` and `b` (in either order).
  bool Connects(const RelationId& a, const RelationId& b) const;

  /// True iff either endpoint is `r`.
  bool Involves(const RelationId& r) const { return left == r || right == r; }

  /// The endpoint that is not `r` (requires Involves(r)).
  const RelationId& Other(const RelationId& r) const;

  std::string ToString() const;
};

/// The set relation asserted by a PC constraint, read left-to-right.
///
/// kIncomparable extends the paper's three relations: it records that the
/// two fragments carry the same *type* of information (they both contained
/// a common, since-deleted fragment) without a known containment
/// direction.  The MKB consistency checker installs such constraints when
/// it bridges around deleted capabilities; replacements through them are
/// legal only under VE '~'.
enum class PcRelationType {
  kSubset,        ///< left fragment is contained in right fragment.
  kEquivalent,    ///< fragments are equal.
  kSuperset,      ///< left fragment contains right fragment.
  kIncomparable,  ///< same information type, unknown containment.
};

std::string_view PcRelationTypeToString(PcRelationType type);
PcRelationType FlipPcRelationType(PcRelationType type);

/// One side of a PC constraint: a projected, selected fragment.
struct PcSide {
  RelationId relation;
  /// Projection list; aligned positionally with the other side.
  std::vector<std::string> attributes;
  /// Selection condition (bare relation name in references); empty = TRUE.
  Conjunction selection;
  /// The selectivity of `selection`; 1.0 when the condition is TRUE.  The
  /// paper assumes these are known statistics (§5.4.3).
  double selectivity = 1.0;

  bool HasSelection() const { return !selection.IsTrue(); }
};

/// PC_{R1,R2} (paper Eq. 5).
struct PcConstraint {
  PcSide left;
  PcSide right;
  PcRelationType type = PcRelationType::kEquivalent;

  /// Validates equal projection arity and positive arity.
  Status Validate() const;

  /// The attribute of `right` aligned with `left_attribute`, if projected.
  std::optional<std::string> MapLeftToRight(const std::string& left_attribute) const;
  std::optional<std::string> MapRightToLeft(const std::string& right_attribute) const;

  /// The same constraint with sides (and relation direction) swapped.
  PcConstraint Flipped() const;

  std::string ToString() const;
};

/// Convenience builders for the common whole-relation cases.

/// pi_attrs(R1) REL pi_attrs(R2), no selections, identical attribute names.
PcConstraint MakeProjectionPc(RelationId left, RelationId right,
                              std::vector<std::string> attributes,
                              PcRelationType type);

}  // namespace eve

#endif  // EVE_MISD_CONSTRAINTS_H_
