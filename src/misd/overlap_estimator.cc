#include "misd/overlap_estimator.h"

#include <algorithm>

#include "common/str_util.h"

namespace eve {

std::string OverlapEstimate::ToString() const {
  return StrFormat("%s%s", exact ? "" : ">= ", FormatDouble(size).c_str());
}

OverlapEstimate EstimateIntersection(const PcEdge& edge, int64_t source_card,
                                     int64_t target_card) {
  // Fragment sizes: |sigma(R1)| = sigma_R1 * |R1| etc.; without a selection
  // the fragment is the whole (projected) relation.
  const bool sel_src = !edge.source_selection.IsTrue();
  const bool sel_dst = !edge.target_selection.IsTrue();
  const double frag_src =
      (sel_src ? edge.source_selectivity : 1.0) * static_cast<double>(source_card);
  const double frag_dst =
      (sel_dst ? edge.target_selectivity : 1.0) * static_cast<double>(target_card);

  OverlapEstimate out;
  switch (edge.type) {
    case PcRelationType::kEquivalent:
      // frag_src = frag_dst.  Exact iff neither side is selected: then the
      // whole relations coincide on the projection.  With a selection on
      // either side, tuples outside the fragments may or may not overlap,
      // so the fragment size is only a minimal bound -- except that a
      // selection on exactly one side still pins the *other* side's whole
      // relation inside the overlap (Fig. 10 rows 2-3, column '=').
      if (!sel_src && !sel_dst) {
        out.size = static_cast<double>(std::min(source_card, target_card));
        out.exact = true;
      } else if (sel_src != sel_dst) {
        // E.g. "no/yes": R1 = sigma(R2) means all of R1 lies inside R2.
        out.size = sel_dst ? static_cast<double>(source_card)
                           : static_cast<double>(target_card);
        out.exact = true;
      } else {
        out.size = std::min(frag_src, frag_dst);
        out.exact = false;
      }
      break;
    case PcRelationType::kSubset:
      // frag_src ⊆ frag_dst ⊆ R2.  If the source side is unselected, all of
      // R1 is inside R2: exact |R1|.  Otherwise only sigma_R1*|R1| is known
      // to be shared (minimal bound).
      if (!sel_src) {
        out.size = static_cast<double>(source_card);
        out.exact = true;
      } else {
        out.size = frag_src;
        out.exact = false;
      }
      break;
    case PcRelationType::kSuperset:
      // frag_src ⊇ frag_dst: symmetric to the subset case.
      if (!sel_dst) {
        out.size = static_cast<double>(target_card);
        out.exact = true;
      } else {
        out.size = frag_dst;
        out.exact = false;
      }
      break;
    case PcRelationType::kIncomparable:
      // Same information type, no containment knowledge: the paper's
      // convention for missing overlap knowledge is a zero estimate
      // (§5.4.3, last paragraph).
      out.size = 0.0;
      out.exact = false;
      break;
  }
  (void)frag_src;
  return out;
}

Result<OverlapEstimate> EstimateIntersection(const MetaKnowledgeBase& mkb,
                                             const PcEdge& edge) {
  EVE_ASSIGN_OR_RETURN(RelationStats src, mkb.stats().Get(edge.source));
  EVE_ASSIGN_OR_RETURN(RelationStats dst, mkb.stats().Get(edge.target));
  return EstimateIntersection(edge, src.cardinality, dst.cardinality);
}

}  // namespace eve
