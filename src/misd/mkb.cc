#include "misd/mkb.h"

#include <algorithm>
#include <optional>
#include <set>
#include <unordered_set>

#include "common/fault_injection.h"
#include "common/hashing.h"
#include "common/str_util.h"

namespace eve {

namespace {

// True when `m` (a small mutation set) contains `id`.
bool Touches(const std::vector<RelationId>& m, const RelationId& id) {
  return std::find(m.begin(), m.end(), id) != m.end();
}

// True when the mutation set intersects the touched set of a cached edge
// list keyed by `source`: {source} + every edge target.  The soundness
// argument lives on InvalidateTouching's declaration.
bool TouchesEdges(const std::vector<RelationId>& m, const RelationId& source,
                  const std::vector<PcEdge>& edges) {
  if (Touches(m, source)) return true;
  for (const PcEdge& e : edges) {
    if (Touches(m, e.target)) return true;
  }
  return false;
}

}  // namespace

void MetaKnowledgeBase::InvalidateTouching(
    const std::vector<RelationId>& pc_mutated,
    const std::vector<RelationId>& jc_mutated) {
  std::lock_guard<std::mutex> lock(memo_mu_);
  if (!selective_invalidation_) {
    // The oracle mode reproduces the seed exactly: every mutator flushes
    // everything, even ones (RegisterRelation, AddAttribute) that cannot
    // affect any derived entry.
    adjacency_cache_.clear();
    closure_cache_.clear();
    jc_pair_cache_.clear();
    ++memo_stats_.full_flushes;
    return;
  }
  if (!pc_mutated.empty()) {
    for (auto it = adjacency_cache_.begin(); it != adjacency_cache_.end();) {
      if (TouchesEdges(pc_mutated, it->first, it->second)) {
        it = adjacency_cache_.erase(it);
        ++memo_stats_.selective_drops;
      } else {
        ++memo_stats_.memo_survivals;
        ++it;
      }
    }
    for (auto it = closure_cache_.begin(); it != closure_cache_.end();) {
      if (TouchesEdges(pc_mutated, it->first.first, it->second)) {
        it = closure_cache_.erase(it);
        ++memo_stats_.selective_drops;
        ++memo_stats_.closure_drops;
      } else {
        ++memo_stats_.memo_survivals;
        ++memo_stats_.closure_survivals;
        ++it;
      }
    }
  }
  if (!jc_mutated.empty()) {
    for (auto it = jc_pair_cache_.begin(); it != jc_pair_cache_.end();) {
      if (Touches(jc_mutated, it->first.first) ||
          Touches(jc_mutated, it->first.second)) {
        it = jc_pair_cache_.erase(it);
        ++memo_stats_.selective_drops;
      } else {
        ++memo_stats_.memo_survivals;
        ++it;
      }
    }
  }
}

std::vector<RelationId> MetaKnowledgeBase::PcNeighborhood(
    const RelationId& id) const {
  std::vector<RelationId> out{id};
  for (const PcEdge& e : PcEdgesFrom(id)) {
    if (!Touches(out, e.target)) out.push_back(e.target);
  }
  return out;
}

MkbMemoStats MetaKnowledgeBase::memo_stats() const {
  std::lock_guard<std::mutex> lock(memo_mu_);
  return memo_stats_;
}

Status MetaKnowledgeBase::RegisterRelation(const RelationId& id,
                                           const Schema& schema) {
  if (schemas_.count(id) > 0) {
    return Status::AlreadyExists("relation " + id.ToString() +
                                 " already registered in MKB");
  }
  if (schema.size() == 0) {
    return Status::InvalidArgument("relation " + id.ToString() +
                                   " must have at least one attribute");
  }
  // A freshly registered relation cannot be referenced by any constraint
  // yet, so no derived memo entry can depend on it: nothing to drop.
  InvalidateTouching({}, {});
  schemas_.emplace(id, schema);
  return Status::OK();
}

namespace {

// Composes the set-relation types of two chained PC edges; nullopt when the
// combination admits no containment conclusion (subset followed by
// superset).  Incomparability is absorbing.
std::optional<PcRelationType> ComposePcType(PcRelationType a, PcRelationType b) {
  if (a == PcRelationType::kIncomparable || b == PcRelationType::kIncomparable) {
    return PcRelationType::kIncomparable;
  }
  if (a == PcRelationType::kEquivalent) return b;
  if (b == PcRelationType::kEquivalent) return a;
  if (a == b) return a;
  return std::nullopt;
}

bool PcTouches(const PcConstraint& pc, const RelationId& id) {
  return pc.left.relation == id || pc.right.relation == id;
}

bool PcReferencesAttr(const PcConstraint& pc, const RelationId& id,
                      const std::string& attr) {
  auto side_refs = [&](const PcSide& side) {
    if (!(side.relation == id)) return false;
    if (std::find(side.attributes.begin(), side.attributes.end(), attr) !=
        side.attributes.end()) {
      return true;
    }
    for (const RelAttr& a : side.selection.Attributes()) {
      if (a.attribute == attr) return true;
    }
    return false;
  };
  return side_refs(pc.left) || side_refs(pc.right);
}

bool JcReferencesAttr(const JoinConstraint& jc, const RelationId& id,
                      const std::string& attr) {
  if (!jc.Involves(id)) return false;
  for (const RelAttr& a : jc.condition.Attributes()) {
    if (a.attribute == attr &&
        (a.relation == id.relation || a.relation.empty())) {
      return true;
    }
  }
  return false;
}

}  // namespace

Result<int> MetaKnowledgeBase::UnregisterRelation(const RelationId& id) {
  if (schemas_.count(id) == 0) {
    return Status::NotFound("relation " + id.ToString() + " not in MKB");
  }
  // Dropping id's constraints and installing bridges between its PC
  // partners touches id and every one of those partners.
  InvalidateTouching(PcNeighborhood(id), {id});
  BridgeConstraintsThrough(id, /*attr=*/nullptr);
  schemas_.erase(id);
  int dropped = 0;
  std::erase_if(join_constraints_, [&](const JoinConstraint& jc) {
    const bool hit = jc.Involves(id);
    dropped += hit ? 1 : 0;
    return hit;
  });
  std::erase_if(pc_constraints_, [&](const PcConstraint& pc) {
    const bool hit = PcTouches(pc, id);
    dropped += hit ? 1 : 0;
    return hit;
  });
  stats_.Remove(id);
  return dropped;
}

Result<int> MetaKnowledgeBase::RemoveAttribute(const RelationId& id,
                                               const std::string& attr) {
  const auto it = schemas_.find(id);
  if (it == schemas_.end()) {
    return Status::NotFound("relation " + id.ToString() + " not in MKB");
  }
  const auto idx = it->second.IndexOf(attr);
  if (!idx.has_value()) {
    return Status::NotFound("attribute " + attr + " not in relation " +
                            id.ToString());
  }
  std::vector<Attribute> attrs = it->second.attributes();
  attrs.erase(attrs.begin() + *idx);
  if (attrs.empty()) {
    return Status::FailedPrecondition(
        "removing the last attribute of " + id.ToString() +
        "; use UnregisterRelation instead");
  }
  // Conservative superset of the attr-doomed constraints' endpoints.
  InvalidateTouching(PcNeighborhood(id), {id});
  BridgeConstraintsThrough(id, &attr);
  it->second = Schema(std::move(attrs));

  int dropped = 0;
  std::erase_if(join_constraints_, [&](const JoinConstraint& jc) {
    const bool hit = JcReferencesAttr(jc, id, attr);
    dropped += hit ? 1 : 0;
    return hit;
  });
  std::erase_if(pc_constraints_, [&](const PcConstraint& pc) {
    const bool hit = PcReferencesAttr(pc, id, attr);
    dropped += hit ? 1 : 0;
    return hit;
  });
  return dropped;
}

Status MetaKnowledgeBase::AddAttribute(const RelationId& id,
                                       const Attribute& attribute) {
  const auto it = schemas_.find(id);
  if (it == schemas_.end()) {
    return Status::NotFound("relation " + id.ToString() + " not in MKB");
  }
  if (it->second.Contains(attribute.name)) {
    return Status::AlreadyExists("attribute " + attribute.name +
                                 " already in relation " + id.ToString());
  }
  std::vector<Attribute> attrs = it->second.attributes();
  attrs.push_back(attribute);
  // Adding an attribute changes no constraint, and the derived memos read
  // only the constraint stores: every entry stays warm.  (The full-flush
  // oracle still flushes here, matching the seed.)
  InvalidateTouching({}, {});
  it->second = Schema(std::move(attrs));
  return Status::OK();
}

Status MetaKnowledgeBase::RenameRelation(const RelationId& from,
                                         const std::string& new_name) {
  const auto it = schemas_.find(from);
  if (it == schemas_.end()) {
    return Status::NotFound("relation " + from.ToString() + " not in MKB");
  }
  const RelationId to{from.site, new_name};
  if (schemas_.count(to) > 0) {
    return Status::AlreadyExists("relation " + to.ToString() +
                                 " already registered in MKB");
  }
  // Constraints involving `from` are rewritten in place; nothing can
  // reference `to` yet, but it joins the set for symmetry.
  InvalidateTouching({from, to}, {from, to});
  Schema schema = it->second;
  schemas_.erase(it);
  schemas_.emplace(to, std::move(schema));

  const std::map<std::string, std::string> rel_map{{from.relation, new_name}};
  for (JoinConstraint& jc : join_constraints_) {
    if (jc.left == from) jc.left = to;
    if (jc.right == from) jc.right = to;
    jc.condition = jc.condition.RenameRelations(rel_map);
  }
  for (PcConstraint& pc : pc_constraints_) {
    for (PcSide* side : {&pc.left, &pc.right}) {
      if (side->relation == from) {
        side->relation = to;
        side->selection = side->selection.RenameRelations(rel_map);
      }
    }
  }
  if (stats_.Has(from)) {
    EVE_RETURN_IF_ERROR(stats_.Rename(from, to));
  }
  return Status::OK();
}

Status MetaKnowledgeBase::RenameAttribute(const RelationId& id,
                                          const std::string& from,
                                          const std::string& to) {
  const auto it = schemas_.find(id);
  if (it == schemas_.end()) {
    return Status::NotFound("relation " + id.ToString() + " not in MKB");
  }
  const auto idx = it->second.IndexOf(from);
  if (!idx.has_value()) {
    return Status::NotFound("attribute " + from + " not in relation " +
                            id.ToString());
  }
  if (it->second.Contains(to)) {
    return Status::AlreadyExists("attribute " + to + " already in relation " +
                                 id.ToString());
  }
  // Only constraints involving id are rewritten; cached edges not touching
  // id cannot mention the attribute (attribute maps pair SOURCE and TARGET
  // attrs, and id is neither for a surviving entry).
  InvalidateTouching({id}, {id});
  std::vector<Attribute> attrs = it->second.attributes();
  attrs[*idx].name = to;
  it->second = Schema(std::move(attrs));

  const std::map<RelAttr, RelAttr> attr_map{
      {RelAttr{id.relation, from}, RelAttr{id.relation, to}}};
  for (JoinConstraint& jc : join_constraints_) {
    if (jc.Involves(id)) jc.condition = jc.condition.Substitute(attr_map);
  }
  for (PcConstraint& pc : pc_constraints_) {
    for (PcSide* side : {&pc.left, &pc.right}) {
      if (side->relation == id) {
        for (std::string& a : side->attributes) {
          if (a == from) a = to;
        }
        side->selection = side->selection.Substitute(attr_map);
      }
    }
  }
  return Status::OK();
}

void MetaKnowledgeBase::BridgeConstraintsThrough(const RelationId& through,
                                                 const std::string* attr) {
  // Normalized edges from the disappearing capability that are about to be
  // dropped: every PC constraint touching `through` (for a relation
  // deletion) or touching `through`.`attr` (for an attribute deletion).
  std::vector<PcEdge> doomed;
  for (const PcEdge& edge : PcEdgesFrom(through)) {
    if (attr != nullptr && edge.attribute_map.count(*attr) == 0) {
      // Selection conditions referencing the attribute also doom the
      // constraint; treat those conservatively as not bridgeable.
      continue;
    }
    // Bridging through a selected source fragment is unsound.
    if (!edge.source_selection.IsTrue()) continue;
    doomed.push_back(edge);
  }
  if (doomed.size() < 2) return;

  // Existing-constraint fingerprints, to avoid duplicates.
  std::set<std::string> existing;
  for (const PcConstraint& pc : pc_constraints_) existing.insert(pc.ToString());

  std::vector<PcConstraint> bridges;
  for (size_t i = 0; i < doomed.size(); ++i) {
    for (size_t j = 0; j < doomed.size(); ++j) {
      if (i == j) continue;
      const PcEdge& e1 = doomed[i];  // through -> Y
      const PcEdge& e2 = doomed[j];  // through -> Z
      if (e1.target == e2.target) continue;
      // Y REL Z with REL = flip(e1.type) o e2.type (incomparable fallback).
      const auto type =
          ComposePcType(FlipPcRelationType(e1.type), e2.type)
              .value_or(PcRelationType::kIncomparable);
      PcConstraint bridge;
      bridge.type = type;
      bridge.left.relation = e1.target;
      bridge.right.relation = e2.target;
      for (const auto& [x_attr, y_attr] : e1.attribute_map) {
        const auto z_it = e2.attribute_map.find(x_attr);
        if (z_it == e2.attribute_map.end()) continue;
        bridge.left.attributes.push_back(y_attr);
        bridge.right.attributes.push_back(z_it->second);
      }
      if (bridge.left.attributes.empty()) continue;
      bridge.left.selection = e1.target_selection;
      bridge.left.selectivity = e1.target_selectivity;
      bridge.right.selection = e2.target_selection;
      bridge.right.selectivity = e2.target_selectivity;
      if (existing.insert(bridge.ToString()).second) {
        bridges.push_back(std::move(bridge));
      }
    }
  }
  for (PcConstraint& bridge : bridges) {
    pc_constraints_.push_back(std::move(bridge));
  }
}

bool MetaKnowledgeBase::HasRelation(const RelationId& id) const {
  return schemas_.count(id) > 0;
}

Result<Schema> MetaKnowledgeBase::GetSchema(const RelationId& id) const {
  const auto it = schemas_.find(id);
  if (it == schemas_.end()) {
    return Status::NotFound("relation " + id.ToString() + " not in MKB");
  }
  return it->second;
}

std::vector<RelationId> MetaKnowledgeBase::Relations() const {
  std::vector<RelationId> out;
  out.reserve(schemas_.size());
  for (const auto& [id, schema] : schemas_) out.push_back(id);
  return out;
}

Result<RelationId> MetaKnowledgeBase::ResolveName(
    const std::string& relation_name) const {
  const RelationId* found = nullptr;
  for (const auto& [id, schema] : schemas_) {
    if (id.relation == relation_name) {
      if (found != nullptr) {
        return Status::FailedPrecondition("relation name " + relation_name +
                                          " is ambiguous across sites");
      }
      found = &id;
    }
  }
  if (found == nullptr) {
    return Status::NotFound("relation " + relation_name + " not in MKB");
  }
  return *found;
}

Status MetaKnowledgeBase::AddJoinConstraint(JoinConstraint jc) {
  if (!HasRelation(jc.left) || !HasRelation(jc.right)) {
    return Status::NotFound("join constraint references unregistered relation: " +
                            jc.ToString());
  }
  if (jc.condition.IsTrue()) {
    return Status::InvalidArgument(
        "join constraint must have at least one clause");
  }
  // The PC-derived memos never read join constraints: only the JC-pair
  // entries for the new endpoints can change.
  InvalidateTouching({}, {jc.left, jc.right});
  join_constraints_.push_back(std::move(jc));
  return Status::OK();
}

Status MetaKnowledgeBase::AddPcConstraint(PcConstraint pc) {
  EVE_RETURN_IF_ERROR(pc.Validate());
  if (!HasRelation(pc.left.relation) || !HasRelation(pc.right.relation)) {
    return Status::NotFound("PC constraint references unregistered relation: " +
                            pc.ToString());
  }
  // Every projected attribute must exist in the registered schema.
  for (const PcSide* side : {&pc.left, &pc.right}) {
    EVE_ASSIGN_OR_RETURN(Schema schema, GetSchema(side->relation));
    for (const std::string& a : side->attributes) {
      if (!schema.Contains(a)) {
        return Status::NotFound("PC constraint projects unknown attribute " +
                                side->relation.ToString() + "." + a);
      }
    }
  }
  // A new PC edge between these endpoints can extend any closure that
  // reached either of them; join constraints are untouched.
  InvalidateTouching({pc.left.relation, pc.right.relation}, {});
  pc_constraints_.push_back(std::move(pc));
  return Status::OK();
}

std::vector<const JoinConstraint*> MetaKnowledgeBase::FindJoinConstraints(
    const RelationId& a, const RelationId& b) const {
  // Normalized pair key: Connects() is symmetric, so both orientations
  // share one memo entry (and the store-order result is identical).  The
  // entry holds copies in a stable map node, so the returned pointers
  // survive both store reallocation and selective drops of other entries.
  const std::pair<RelationId, RelationId> key =
      a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  std::lock_guard<std::mutex> lock(memo_mu_);
  auto it = jc_pair_cache_.find(key);
  if (it == jc_pair_cache_.end()) {
    std::vector<JoinConstraint> found;
    for (const JoinConstraint& jc : join_constraints_) {
      if (jc.Connects(a, b)) found.push_back(jc);
    }
    it = jc_pair_cache_.emplace(key, std::move(found)).first;
  }
  std::vector<const JoinConstraint*> out;
  out.reserve(it->second.size());
  for (const JoinConstraint& jc : it->second) out.push_back(&jc);
  return out;
}

PcEdge MetaKnowledgeBase::MakeEdge(const PcConstraint& pc, bool flipped) {
  const PcSide& src = flipped ? pc.right : pc.left;
  const PcSide& dst = flipped ? pc.left : pc.right;
  PcEdge edge;
  edge.constraint_text = pc.ToString();
  edge.source = src.relation;
  edge.target = dst.relation;
  edge.type = flipped ? FlipPcRelationType(pc.type) : pc.type;
  for (size_t i = 0; i < src.attributes.size(); ++i) {
    edge.attribute_map[src.attributes[i]] = dst.attributes[i];
  }
  edge.source_selectivity = src.selectivity;
  edge.target_selectivity = dst.selectivity;
  edge.source_selection = src.selection;
  edge.target_selection = dst.selection;
  return edge;
}

std::vector<PcEdge> MetaKnowledgeBase::PcEdgesFrom(
    const RelationId& source) const {
  std::vector<PcEdge> out;
  for (const PcConstraint& pc : pc_constraints_) {
    if (pc.left.relation == source && !(pc.right.relation == source)) {
      out.push_back(MakeEdge(pc, /*flipped=*/false));
    } else if (pc.right.relation == source && !(pc.left.relation == source)) {
      out.push_back(MakeEdge(pc, /*flipped=*/true));
    }
  }
  return out;
}

namespace {

// Structural dedup key of a derived edge: target + type + attribute map.
// Replaces the seed's string-rendered keys; equality stays exact (hash
// collisions fall back to the structural comparison of the unordered_set).
struct EdgeSignature {
  RelationId target;
  PcRelationType type;
  std::map<std::string, std::string> attribute_map;

  bool operator==(const EdgeSignature& o) const = default;
};

struct EdgeSignatureHash {
  size_t operator()(const EdgeSignature& k) const {
    size_t h = HashOf(k.target.site);
    h = HashCombine(h, HashOf(k.target.relation));
    h = HashCombine(h, static_cast<size_t>(k.type));
    for (const auto& [from, to] : k.attribute_map) {
      h = HashCombine(h, HashOf(from));
      h = HashCombine(h, HashOf(to));
    }
    return h;
  }
};

}  // namespace

const std::vector<PcEdge>& MetaKnowledgeBase::AdjacencyForLocked(
    const RelationId& source) const {
  auto it = adjacency_cache_.find(source);
  if (it == adjacency_cache_.end()) {
    it = adjacency_cache_.emplace(source, PcEdgesFrom(source)).first;
  }
  return it->second;
}

namespace {

// Breadth-first closure over `adjacency` (a callable RelationId -> edge
// list); shortest derivation wins the structural dedup because the search
// is breadth-first.  A non-null `gov` charges one work unit per expanded
// frontier edge and per composed edge, bounding pathological closures under
// a governed context (the error aborts the search; callers must not cache
// the partial result).
template <typename AdjacencyFn>
Result<std::vector<PcEdge>> ComputeClosure(const RelationId& source,
                                           int max_hops,
                                           AdjacencyFn&& adjacency,
                                           ExecGovernor* gov) {
  std::vector<PcEdge> result;
  std::unordered_set<EdgeSignature, EdgeSignatureHash> seen;

  // Frontier of derived edges source -> X, expanded breadth-first.
  std::vector<PcEdge> frontier = adjacency(source);
  for (int hop = 1; hop <= max_hops && !frontier.empty(); ++hop) {
    std::vector<PcEdge> next;
    for (const PcEdge& edge : frontier) {
      if (gov != nullptr) {
        EVE_RETURN_IF_ERROR(gov->Charge());
      }
      if (seen.insert(EdgeSignature{edge.target, edge.type, edge.attribute_map})
              .second) {
        result.push_back(edge);
      }
      if (hop == max_hops) continue;
      // The intermediate fragment must be unselected for a sound join of
      // the two constraints.
      if (!edge.target_selection.IsTrue()) continue;
      for (const PcEdge& ext : adjacency(edge.target)) {
        if (ext.target == source || ext.target == edge.target) continue;
        if (!ext.source_selection.IsTrue()) continue;
        const auto type = ComposePcType(edge.type, ext.type);
        if (!type.has_value()) continue;
        PcEdge composed;
        composed.constraint_text =
            edge.constraint_text + " o " + ext.constraint_text;
        composed.source = source;
        composed.target = ext.target;
        composed.type = *type;
        for (const auto& [from, mid] : edge.attribute_map) {
          const auto it = ext.attribute_map.find(mid);
          if (it != ext.attribute_map.end()) {
            composed.attribute_map[from] = it->second;
          }
        }
        if (composed.attribute_map.empty()) continue;
        composed.source_selectivity = edge.source_selectivity;
        composed.target_selectivity = ext.target_selectivity;
        composed.source_selection = edge.source_selection;
        composed.target_selection = ext.target_selection;
        composed.hops = edge.hops + ext.hops;
        if (gov != nullptr) {
          EVE_RETURN_IF_ERROR(gov->Charge());
        }
        next.push_back(std::move(composed));
      }
    }
    frontier = std::move(next);
  }
  return result;
}

}  // namespace

const std::vector<PcEdge>& MetaKnowledgeBase::PcEdgesFromTransitive(
    const RelationId& source, int max_hops) const {
  // One lock spans lookup and (on a miss) the closure computation: concurrent
  // readers serialize only on cold misses, and the returned reference stays
  // valid because map nodes are stable and only mutators (single-writer)
  // invalidate.  Holding the lock through ComputeClosure also covers the
  // AdjacencyForLocked memo the closure search populates.
  std::lock_guard<std::mutex> lock(memo_mu_);
  const auto cache_key = std::make_pair(source, max_hops);
  if (const auto hit = closure_cache_.find(cache_key);
      hit != closure_cache_.end()) {
    ++memo_stats_.closure_hits;
    return hit->second;
  }
  ++memo_stats_.closure_misses;
  std::vector<PcEdge> result =
      ComputeClosure(
          source, max_hops,
          [this](const RelationId& id) -> const std::vector<PcEdge>& {
            return AdjacencyForLocked(id);
          },
          /*gov=*/nullptr)
          .value();  // Ungoverned closure cannot fail.
  return closure_cache_.emplace(cache_key, std::move(result)).first->second;
}

Result<const std::vector<PcEdge>*>
MetaKnowledgeBase::PcEdgesFromTransitiveGoverned(const RelationId& source,
                                                 int max_hops,
                                                 const ExecContext& ctx) const {
  EVE_FAULT_POINT("mkb.closure");
  std::lock_guard<std::mutex> lock(memo_mu_);
  const auto cache_key = std::make_pair(source, max_hops);
  if (const auto hit = closure_cache_.find(cache_key);
      hit != closure_cache_.end()) {
    ++memo_stats_.closure_hits;
    return &hit->second;
  }
  ++memo_stats_.closure_misses;
  ExecGovernor gov(ctx);
  EVE_ASSIGN_OR_RETURN(
      std::vector<PcEdge> result,
      ComputeClosure(
          source, max_hops,
          [this](const RelationId& id) -> const std::vector<PcEdge>& {
            return AdjacencyForLocked(id);
          },
          &gov));
  EVE_RETURN_IF_ERROR(gov.Flush());
  const std::vector<PcEdge>* memoized =
      &closure_cache_.emplace(cache_key, std::move(result)).first->second;
  return memoized;
}

std::vector<PcEdge> MetaKnowledgeBase::PcEdgesFromTransitiveUncached(
    const RelationId& source, int max_hops) const {
  return ComputeClosure(
             source, max_hops,
             [this](const RelationId& id) { return PcEdgesFrom(id); },
             /*gov=*/nullptr)
      .value();
}

std::vector<TypeConstraint> MetaKnowledgeBase::TypeConstraints() const {
  std::vector<TypeConstraint> out;
  for (const auto& [id, schema] : schemas_) {
    for (const Attribute& a : schema.attributes()) {
      out.push_back(TypeConstraint{id, a.name, a.type});
    }
  }
  return out;
}

std::string MetaKnowledgeBase::ToString() const {
  std::string out = "MKB {\n";
  for (const auto& [id, schema] : schemas_) {
    out += "  " + id.ToString() + schema.ToString();
    if (stats_.Has(id)) {
      const RelationStats s = stats_.Get(id).value();
      out += StrFormat("  |R|=%lld s=%lldB sigma=%s",
                       static_cast<long long>(s.cardinality),
                       static_cast<long long>(s.tuple_bytes),
                       FormatDouble(s.local_selectivity).c_str());
    }
    out += "\n";
  }
  for (const JoinConstraint& jc : join_constraints_) out += "  " + jc.ToString() + "\n";
  for (const PcConstraint& pc : pc_constraints_) out += "  " + pc.ToString() + "\n";
  out += StrFormat("  js=%s\n}", FormatDouble(stats_.join_selectivity()).c_str());
  return out;
}

Status MetaKnowledgeBase::RegisterRelationWithStats(const RelationId& id,
                                                    const Schema& schema,
                                                    int64_t cardinality,
                                                    double local_selectivity) {
  EVE_RETURN_IF_ERROR(RegisterRelation(id, schema));
  RelationStats stats;
  stats.cardinality = cardinality;
  stats.tuple_bytes = schema.TupleBytes();
  stats.local_selectivity = local_selectivity;
  stats_.Set(id, stats);
  return Status::OK();
}

}  // namespace eve
