// InformationSource: one autonomous site hosting relations.  Sources accept
// schema changes and data updates; the space-level wrapper forwards
// notifications to EVE (paper Fig. 1: ISs + wrappers).

#ifndef EVE_SPACE_INFORMATION_SOURCE_H_
#define EVE_SPACE_INFORMATION_SOURCE_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "space/data_update.h"
#include "storage/relation.h"

namespace eve {

/// One information source (site).
class InformationSource {
 public:
  explicit InformationSource(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Adds a relation (schema + data).  Fails on duplicate names.
  Status AddRelation(Relation relation);

  /// Drops a relation.
  Status DropRelation(const std::string& relation);

  /// Renames a relation.
  Status RenameRelation(const std::string& from, const std::string& to);

  /// Drops an attribute (column) from a relation, projecting the data.
  Status DropAttribute(const std::string& relation, const std::string& attribute);

  /// Adds an attribute with NULL values for existing tuples.
  Status AddAttribute(const std::string& relation, const Attribute& attribute);

  /// Renames an attribute.
  Status RenameAttribute(const std::string& relation, const std::string& from,
                         const std::string& to);

  /// Applies a data update (insert or delete).
  Status Apply(const DataUpdate& update);

  bool HasRelation(const std::string& relation) const;
  Result<const Relation*> GetRelation(const std::string& relation) const;
  Result<Relation*> GetMutableRelation(const std::string& relation);

  /// Relation names hosted here (sorted).
  std::vector<std::string> RelationNames() const;

 private:
  std::string name_;
  std::map<std::string, Relation> relations_;
};

}  // namespace eve

#endif  // EVE_SPACE_INFORMATION_SOURCE_H_
