#include "space/information_source.h"

namespace eve {

Status InformationSource::AddRelation(Relation relation) {
  if (relation.name().empty()) {
    return Status::InvalidArgument("relation must be named");
  }
  const std::string name = relation.name();
  const auto [it, inserted] = relations_.emplace(name, std::move(relation));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("relation " + name + " already at source " +
                                 name_);
  }
  return Status::OK();
}

Status InformationSource::DropRelation(const std::string& relation) {
  if (relations_.erase(relation) == 0) {
    return Status::NotFound("relation " + relation + " not at source " + name_);
  }
  return Status::OK();
}

Status InformationSource::RenameRelation(const std::string& from,
                                         const std::string& to) {
  const auto it = relations_.find(from);
  if (it == relations_.end()) {
    return Status::NotFound("relation " + from + " not at source " + name_);
  }
  if (relations_.count(to) > 0) {
    return Status::AlreadyExists("relation " + to + " already at source " +
                                 name_);
  }
  Relation rel = std::move(it->second);
  relations_.erase(it);
  rel.set_name(to);
  relations_.emplace(to, std::move(rel));
  return Status::OK();
}

Status InformationSource::DropAttribute(const std::string& relation,
                                        const std::string& attribute) {
  EVE_ASSIGN_OR_RETURN(Relation * rel, GetMutableRelation(relation));
  std::vector<std::string> keep;
  for (const Attribute& a : rel->schema().attributes()) {
    if (a.name != attribute) keep.push_back(a.name);
  }
  if (keep.size() == rel->schema().attributes().size()) {
    return Status::NotFound("attribute " + attribute + " not in relation " +
                            relation);
  }
  if (keep.empty()) {
    return Status::FailedPrecondition("cannot drop the last attribute of " +
                                      relation);
  }
  EVE_ASSIGN_OR_RETURN(Relation projected, rel->ProjectByName(keep));
  projected.set_name(relation);
  *rel = std::move(projected);
  return Status::OK();
}

Status InformationSource::AddAttribute(const std::string& relation,
                                       const Attribute& attribute) {
  EVE_ASSIGN_OR_RETURN(Relation * rel, GetMutableRelation(relation));
  if (rel->schema().Contains(attribute.name)) {
    return Status::AlreadyExists("attribute " + attribute.name +
                                 " already in relation " + relation);
  }
  // In-place columnar widen: existing columns untouched, the new
  // attribute back-fills with one NULL column.
  rel->AddNullColumn(attribute);
  return Status::OK();
}

Status InformationSource::RenameAttribute(const std::string& relation,
                                          const std::string& from,
                                          const std::string& to) {
  EVE_ASSIGN_OR_RETURN(Relation * rel, GetMutableRelation(relation));
  const auto idx = rel->schema().IndexOf(from);
  if (!idx.has_value()) {
    return Status::NotFound("attribute " + from + " not in relation " + relation);
  }
  if (rel->schema().Contains(to)) {
    return Status::AlreadyExists("attribute " + to + " already in relation " +
                                 relation);
  }
  std::vector<Attribute> attrs = rel->schema().attributes();
  attrs[*idx].name = to;
  // Only metadata changes: the columns stay in place.
  rel->ReplaceSchema(Schema(std::move(attrs)));
  return Status::OK();
}

Status InformationSource::Apply(const DataUpdate& update) {
  EVE_ASSIGN_OR_RETURN(Relation * rel, GetMutableRelation(update.relation.relation));
  if (update.kind == UpdateKind::kInsert) {
    return rel->Insert(update.tuple);
  }
  if (rel->Erase(update.tuple) == 0) {
    return Status::NotFound("tuple to delete not found in " +
                            update.relation.ToString());
  }
  return Status::OK();
}

bool InformationSource::HasRelation(const std::string& relation) const {
  return relations_.count(relation) > 0;
}

Result<const Relation*> InformationSource::GetRelation(
    const std::string& relation) const {
  const auto it = relations_.find(relation);
  if (it == relations_.end()) {
    return Status::NotFound("relation " + relation + " not at source " + name_);
  }
  return &it->second;
}

Result<Relation*> InformationSource::GetMutableRelation(
    const std::string& relation) {
  const auto it = relations_.find(relation);
  if (it == relations_.end()) {
    return Status::NotFound("relation " + relation + " not at source " + name_);
  }
  return &it->second;
}

std::vector<std::string> InformationSource::RelationNames() const {
  std::vector<std::string> out;
  out.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) out.push_back(name);
  return out;
}

}  // namespace eve
