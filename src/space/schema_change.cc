#include "space/schema_change.h"

namespace eve {

const RelationId& ChangedRelation(const SchemaChange& change) {
  return std::visit([](const auto& c) -> const RelationId& { return c.relation; },
                    change);
}

namespace {

struct Printer {
  std::string operator()(const DeleteAttribute& c) const {
    return "delete-attribute " + c.relation.ToString() + "." + c.attribute;
  }
  std::string operator()(const AddAttribute& c) const {
    return "add-attribute " + c.relation.ToString() + "." + c.attribute.name;
  }
  std::string operator()(const RenameAttribute& c) const {
    return "change-attribute-name " + c.relation.ToString() + "." + c.from +
           " -> " + c.to;
  }
  std::string operator()(const DeleteRelation& c) const {
    return "delete-relation " + c.relation.ToString();
  }
  std::string operator()(const AddRelation& c) const {
    return "add-relation " + c.relation.ToString() + c.schema.ToString();
  }
  std::string operator()(const RenameRelation& c) const {
    return "change-relation-name " + c.relation.ToString() + " -> " + c.new_name;
  }
};

}  // namespace

std::string SchemaChangeToString(const SchemaChange& change) {
  return std::visit(Printer{}, change);
}

}  // namespace eve
