// InformationSpace: the collection of all registered information sources.
// It implements RelationProvider for the executor, applies schema changes
// and data updates to the hosting source, and keeps the MKB consistent with
// capability changes (the "MKB Evolver" of paper Fig. 1).

#ifndef EVE_SPACE_INFORMATION_SPACE_H_
#define EVE_SPACE_INFORMATION_SPACE_H_

#include <map>
#include <string>
#include <vector>

#include "algebra/provider.h"
#include "common/result.h"
#include "misd/mkb.h"
#include "space/data_update.h"
#include "space/information_source.h"
#include "space/schema_change.h"

namespace eve {

/// The multi-site information space.
class InformationSpace : public RelationProvider {
 public:
  /// Creates (or returns) the source named `site`.
  InformationSource& AddSource(const std::string& site);

  /// Registers a relation at `site` and (if `mkb` is non-null) records its
  /// capability description and statistics in the MKB.
  Status AddRelation(const std::string& site, Relation relation,
                     MetaKnowledgeBase* mkb = nullptr,
                     double local_selectivity = 1.0);

  /// Applies a capability change to the hosting source and, when `mkb` is
  /// non-null, evolves the MKB (dropping constraints that reference deleted
  /// capabilities).  Returns the number of MKB constraints dropped.
  Result<int> ApplySchemaChange(const SchemaChange& change,
                                MetaKnowledgeBase* mkb = nullptr);

  /// Applies a data update to the hosting source.
  Status ApplyDataUpdate(const DataUpdate& update);

  /// The site hosting `relation` (bare name).  Fails if absent/ambiguous.
  Result<std::string> SiteOf(const std::string& relation) const;

  bool HasSource(const std::string& site) const;
  Result<const InformationSource*> GetSource(const std::string& site) const;
  Result<InformationSource*> GetMutableSource(const std::string& site);

  /// Sorted site names.
  std::vector<std::string> SiteNames() const;

  // RelationProvider:
  Result<const Relation*> Resolve(const std::string& site,
                                  const std::string& relation) const override;

 private:
  std::map<std::string, InformationSource> sources_;
};

}  // namespace eve

#endif  // EVE_SPACE_INFORMATION_SPACE_H_
