// InformationSpace: the collection of all registered information sources.
// It implements RelationProvider for the executor, applies schema changes
// and data updates to the hosting source, and keeps the MKB consistent with
// capability changes (the "MKB Evolver" of paper Fig. 1).

#ifndef EVE_SPACE_INFORMATION_SPACE_H_
#define EVE_SPACE_INFORMATION_SPACE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "algebra/provider.h"
#include "common/result.h"
#include "misd/mkb.h"
#include "space/data_update.h"
#include "space/information_source.h"
#include "space/schema_change.h"

namespace eve {

/// The multi-site information space.
class InformationSpace : public RelationProvider {
 public:
  /// Creates (or returns) the source named `site`.
  InformationSource& AddSource(const std::string& site);

  /// Registers a relation at `site` and (if `mkb` is non-null) records its
  /// capability description and statistics in the MKB.
  Status AddRelation(const std::string& site, Relation relation,
                     MetaKnowledgeBase* mkb = nullptr,
                     double local_selectivity = 1.0);

  /// Applies a capability change to the hosting source and, when `mkb` is
  /// non-null, evolves the MKB (dropping constraints that reference deleted
  /// capabilities).  Returns the number of MKB constraints dropped.
  Result<int> ApplySchemaChange(const SchemaChange& change,
                                MetaKnowledgeBase* mkb = nullptr);

  /// Applies a data update to the hosting source.
  Status ApplyDataUpdate(const DataUpdate& update);

  /// The site hosting `relation` (bare name).  Fails if absent/ambiguous.
  Result<std::string> SiteOf(const std::string& relation) const;

  /// Bare relation name -> hosting site for every relation in the space,
  /// in site order (a later site wins a duplicate name, mirroring the
  /// historical per-change rescan).  Cached against NameVersion(): rebuilt
  /// only after a mutation that can change the name shape, so a long
  /// evolution stream pays one rebuild per add/drop/rename-relation instead
  /// of one full rescan per change of any kind.  The returned snapshot is
  /// immutable and safe to hold across later mutations.
  std::shared_ptr<const std::map<std::string, std::string>> RelationSiteMap()
      const;

  /// Monotonic stamp of the space's name shape (which relations exist
  /// where).  Bumped by AddSource/AddRelation and by ApplySchemaChange for
  /// relation-level changes; attribute-level changes and data updates keep
  /// it (and the site-map cache) intact.
  uint64_t NameVersion() const { return name_version_; }

  bool HasSource(const std::string& site) const;
  Result<const InformationSource*> GetSource(const std::string& site) const;
  Result<InformationSource*> GetMutableSource(const std::string& site);

  /// Sorted site names.
  std::vector<std::string> SiteNames() const;

  // RelationProvider:
  Result<const Relation*> Resolve(const std::string& site,
                                  const std::string& relation) const override;

 private:
  std::map<std::string, InformationSource> sources_;
  uint64_t name_version_ = 1;
  // Lazily built site map, valid while site_map_version_ == name_version_.
  // The mutex only guards the cache slot: mutators follow the space's
  // single-writer contract, but concurrent const readers may race to
  // (re)build the map.
  mutable std::mutex site_map_mu_;
  mutable std::shared_ptr<const std::map<std::string, std::string>> site_map_;
  mutable uint64_t site_map_version_ = 0;
};

}  // namespace eve

#endif  // EVE_SPACE_INFORMATION_SPACE_H_
