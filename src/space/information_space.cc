#include "space/information_space.h"

namespace eve {

InformationSource& InformationSpace::AddSource(const std::string& site) {
  const auto it = sources_.find(site);
  if (it != sources_.end()) return it->second;
  ++name_version_;
  return sources_.emplace(site, InformationSource(site)).first->second;
}

Status InformationSpace::AddRelation(const std::string& site, Relation relation,
                                     MetaKnowledgeBase* mkb,
                                     double local_selectivity) {
  // Bare relation names must be space-unique so that unqualified FROM items
  // resolve deterministically.
  for (const auto& [other_site, source] : sources_) {
    if (source.HasRelation(relation.name())) {
      return Status::AlreadyExists("relation " + relation.name() +
                                   " already exists at site " + other_site);
    }
  }
  InformationSource& source = AddSource(site);
  const RelationId id{site, relation.name()};
  const Schema schema = relation.schema();
  const int64_t card = relation.cardinality();
  EVE_RETURN_IF_ERROR(source.AddRelation(std::move(relation)));
  ++name_version_;
  if (mkb != nullptr) {
    EVE_RETURN_IF_ERROR(
        mkb->RegisterRelationWithStats(id, schema, card, local_selectivity));
  }
  return Status::OK();
}

namespace {

struct ChangeApplier {
  InformationSpace* space;
  MetaKnowledgeBase* mkb;

  Result<int> operator()(const DeleteAttribute& c) const {
    EVE_ASSIGN_OR_RETURN(InformationSource * src,
                         space->GetMutableSource(c.relation.site));
    EVE_RETURN_IF_ERROR(src->DropAttribute(c.relation.relation, c.attribute));
    if (mkb != nullptr) return mkb->RemoveAttribute(c.relation, c.attribute);
    return 0;
  }
  Result<int> operator()(const AddAttribute& c) const {
    EVE_ASSIGN_OR_RETURN(InformationSource * src,
                         space->GetMutableSource(c.relation.site));
    EVE_RETURN_IF_ERROR(src->AddAttribute(c.relation.relation, c.attribute));
    if (mkb != nullptr) {
      EVE_RETURN_IF_ERROR(mkb->AddAttribute(c.relation, c.attribute));
    }
    return 0;
  }
  Result<int> operator()(const RenameAttribute& c) const {
    EVE_ASSIGN_OR_RETURN(InformationSource * src,
                         space->GetMutableSource(c.relation.site));
    EVE_RETURN_IF_ERROR(src->RenameAttribute(c.relation.relation, c.from, c.to));
    if (mkb != nullptr) {
      EVE_RETURN_IF_ERROR(mkb->RenameAttribute(c.relation, c.from, c.to));
    }
    return 0;
  }
  Result<int> operator()(const DeleteRelation& c) const {
    EVE_ASSIGN_OR_RETURN(InformationSource * src,
                         space->GetMutableSource(c.relation.site));
    EVE_RETURN_IF_ERROR(src->DropRelation(c.relation.relation));
    if (mkb != nullptr) return mkb->UnregisterRelation(c.relation);
    return 0;
  }
  Result<int> operator()(const AddRelation& c) const {
    Relation rel(c.relation.relation, c.schema);
    EVE_RETURN_IF_ERROR(space->AddRelation(c.relation.site, std::move(rel), mkb));
    return 0;
  }
  Result<int> operator()(const RenameRelation& c) const {
    EVE_ASSIGN_OR_RETURN(InformationSource * src,
                         space->GetMutableSource(c.relation.site));
    EVE_RETURN_IF_ERROR(src->RenameRelation(c.relation.relation, c.new_name));
    if (mkb != nullptr) {
      EVE_RETURN_IF_ERROR(mkb->RenameRelation(c.relation, c.new_name));
    }
    return 0;
  }
};

}  // namespace

Result<int> InformationSpace::ApplySchemaChange(const SchemaChange& change,
                                                MetaKnowledgeBase* mkb) {
  EVE_ASSIGN_OR_RETURN(int dropped,
                       std::visit(ChangeApplier{this, mkb}, change));
  // Only relation-level changes alter which names live where (AddRelation
  // bumps inside AddSource/AddRelation already, but a second bump is
  // harmless -- the stamp is monotonic, not dense).
  if (std::holds_alternative<DeleteRelation>(change) ||
      std::holds_alternative<RenameRelation>(change)) {
    ++name_version_;
  }
  return dropped;
}

Status InformationSpace::ApplyDataUpdate(const DataUpdate& update) {
  EVE_ASSIGN_OR_RETURN(InformationSource * src,
                       GetMutableSource(update.relation.site));
  return src->Apply(update);
}

std::shared_ptr<const std::map<std::string, std::string>>
InformationSpace::RelationSiteMap() const {
  std::lock_guard<std::mutex> lock(site_map_mu_);
  if (site_map_ == nullptr || site_map_version_ != name_version_) {
    auto fresh = std::make_shared<std::map<std::string, std::string>>();
    for (const auto& [site, source] : sources_) {
      for (const std::string& rel : source.RelationNames()) {
        (*fresh)[rel] = site;
      }
    }
    site_map_ = std::move(fresh);
    site_map_version_ = name_version_;
  }
  return site_map_;
}

Result<std::string> InformationSpace::SiteOf(const std::string& relation) const {
  const std::string* found = nullptr;
  for (const auto& [site, source] : sources_) {
    if (source.HasRelation(relation)) {
      if (found != nullptr) {
        return Status::FailedPrecondition("relation name " + relation +
                                          " is ambiguous across sites");
      }
      found = &site;
    }
  }
  if (found == nullptr) {
    return Status::NotFound("relation " + relation + " not in any source");
  }
  return *found;
}

bool InformationSpace::HasSource(const std::string& site) const {
  return sources_.count(site) > 0;
}

Result<const InformationSource*> InformationSpace::GetSource(
    const std::string& site) const {
  const auto it = sources_.find(site);
  if (it == sources_.end()) {
    return Status::NotFound("no information source named " + site);
  }
  return &it->second;
}

Result<InformationSource*> InformationSpace::GetMutableSource(
    const std::string& site) {
  const auto it = sources_.find(site);
  if (it == sources_.end()) {
    return Status::NotFound("no information source named " + site);
  }
  return &it->second;
}

std::vector<std::string> InformationSpace::SiteNames() const {
  std::vector<std::string> out;
  out.reserve(sources_.size());
  for (const auto& [site, source] : sources_) out.push_back(site);
  return out;
}

Result<const Relation*> InformationSpace::Resolve(
    const std::string& site, const std::string& relation) const {
  if (!site.empty()) {
    EVE_ASSIGN_OR_RETURN(const InformationSource* src, GetSource(site));
    return src->GetRelation(relation);
  }
  EVE_ASSIGN_OR_RETURN(std::string host, SiteOf(relation));
  EVE_ASSIGN_OR_RETURN(const InformationSource* src, GetSource(host));
  return src->GetRelation(relation);
}

}  // namespace eve
