// Data-content updates at information sources (inserts/deletes of tuples,
// paper §6.1).  Updates trigger incremental view maintenance; the workload
// models of §6.6 generate streams of them.

#ifndef EVE_SPACE_DATA_UPDATE_H_
#define EVE_SPACE_DATA_UPDATE_H_

#include <string>

#include "catalog/names.h"
#include "storage/tuple.h"

namespace eve {

/// The kind of a data update.
enum class UpdateKind { kInsert, kDelete };

/// One tuple-level update at a source relation.
struct DataUpdate {
  UpdateKind kind = UpdateKind::kInsert;
  RelationId relation;
  Tuple tuple;

  std::string ToString() const {
    return std::string(kind == UpdateKind::kInsert ? "INSERT " : "DELETE ") +
           relation.ToString() + " " + tuple.ToString();
  }
};

}  // namespace eve

#endif  // EVE_SPACE_DATA_UPDATE_H_
