// Capability (schema) changes of information sources (paper §3.3):
// delete-attribute, add-attribute, change-attribute-name, delete-relation,
// add-relation, change-relation-name.

#ifndef EVE_SPACE_SCHEMA_CHANGE_H_
#define EVE_SPACE_SCHEMA_CHANGE_H_

#include <string>
#include <variant>

#include "catalog/names.h"
#include "catalog/schema.h"

namespace eve {

/// delete-attribute IS.R.A
struct DeleteAttribute {
  RelationId relation;
  std::string attribute;
};

/// add-attribute IS.R.A
struct AddAttribute {
  RelationId relation;
  Attribute attribute;
};

/// change-attribute-name IS.R.A -> IS.R.B
struct RenameAttribute {
  RelationId relation;
  std::string from;
  std::string to;
};

/// delete-relation IS.R
struct DeleteRelation {
  RelationId relation;
};

/// add-relation IS.R(A1..An)
struct AddRelation {
  RelationId relation;
  Schema schema;
};

/// change-relation-name IS.R -> IS.S
struct RenameRelation {
  RelationId relation;
  std::string new_name;
};

/// A capability change: one of the six supported kinds.
using SchemaChange =
    std::variant<DeleteAttribute, AddAttribute, RenameAttribute, DeleteRelation,
                 AddRelation, RenameRelation>;

/// The relation a change applies to.
const RelationId& ChangedRelation(const SchemaChange& change);

/// "delete-attribute IS1.R.A" etc.
std::string SchemaChangeToString(const SchemaChange& change);

}  // namespace eve

#endif  // EVE_SPACE_SCHEMA_CHANGE_H_
