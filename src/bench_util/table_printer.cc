#include "bench_util/table_printer.h"

#include <algorithm>

#include "common/check.h"
#include "common/str_util.h"

namespace eve {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  EVE_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t i = 0; i < row.size(); ++i) {
      line += row[i];
      line += std::string(widths[i] - row[i].size() + 2, ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };
  std::string out = render_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  out += std::string(total > 2 ? total - 2 : total, '-') + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string RenderSeries(const std::string& title,
                         const std::vector<std::string>& x_labels,
                         const std::vector<double>& y_values, int bar_width) {
  EVE_CHECK(x_labels.size() == y_values.size());
  std::string out = title + "\n";
  double max_y = 0.0;
  size_t label_width = 0;
  for (double y : y_values) max_y = std::max(max_y, y);
  for (const std::string& x : x_labels) {
    label_width = std::max(label_width, x.size());
  }
  for (size_t i = 0; i < x_labels.size(); ++i) {
    const int bars =
        max_y <= 0.0
            ? 0
            : static_cast<int>(y_values[i] / max_y * bar_width + 0.5);
    out += StrFormat("  %-*s %12s |%s\n", static_cast<int>(label_width),
                     x_labels[i].c_str(), FormatDouble(y_values[i], 2).c_str(),
                     std::string(bars, '#').c_str());
  }
  return out;
}

std::string Banner(const std::string& title) {
  const std::string bar(title.size() + 8, '=');
  return bar + "\n==  " + title + "  ==\n" + bar + "\n";
}

}  // namespace eve
