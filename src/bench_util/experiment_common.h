// Shared setup for the paper's experiments: the uniform cost-model inputs
// of Table 1 and the distribution-averaged cost sweeps behind Figs. 13/14
// and Tables 5/6.
//
// The Sweep* helpers evaluate the analytic cost model over a whole
// distribution grid, across threads (common/parallel.h): the model is pure,
// so results are indexed exactly like the input list and the drivers'
// stdout is byte-identical regardless of thread count.

#ifndef EVE_BENCH_UTIL_EXPERIMENT_COMMON_H_
#define EVE_BENCH_UTIL_EXPERIMENT_COMMON_H_

#include <vector>

#include "common/exec_context.h"
#include "qc/cost_model.h"
#include "qc/workload.h"

namespace eve {

/// The uniform system parameters of paper Table 1.
struct UniformParams {
  int num_relations = 6;         ///< n
  int64_t cardinality = 400;     ///< |R_i|
  int64_t tuple_bytes = 100;     ///< s_{R_i}
  double local_selectivity = 0.5;  ///< sigma
  double join_selectivity = 0.005;  ///< js
  int64_t blocking_factor = 10;  ///< bfr (block size = bfr * tuple_bytes)
};

/// Builds a uniform cost input placing `distribution[i]` relations at site
/// IS{i+1}; relation join order is site-major (matching the paper's
/// maintenance process, Fig. 11).
ViewCostInput MakeUniformInput(const std::vector<int>& distribution,
                               const UniformParams& params);

/// Cost-model options matching `params` (block size bfr * tuple size).
CostModelOptions MakeUniformOptions(const UniformParams& params,
                                    IoBoundPolicy policy = IoBoundPolicy::kLower);

/// Average per-update cost factors over all origin relations being updated
/// with equal likelihood per SITE (i.e., each site generates one update,
/// distributed evenly over its relations) -- the averaging behind Table 6.
Result<CostFactors> SiteAveragedUpdateCost(const ViewCostInput& input,
                                           const CostModelOptions& options);

/// Average per-update cost over updates originating at the FIRST site only,
/// distributed evenly over that site's relations (Experiment 3).
Result<CostFactors> FirstSiteUpdateCost(const ViewCostInput& input,
                                        const CostModelOptions& options);

/// Thread count for a driver's scenario sweep: the first `--threads=N`
/// argument, else the EVE_BENCH_THREADS environment variable, else
/// DefaultThreadCount().  Values below 1 fall back to 1.
int SweepThreads(int argc, char** argv);

/// Exit code of an experiment driver whose deadline expired (the timeout(1)
/// convention), so harness scripts can tell "cut off" from "failed".
inline constexpr int kDeadlineExitCode = 124;

/// Installs and returns the process-wide experiment governance context.
/// The deadline comes from the first `--deadline_ms=N` argument, else the
/// EVE_DEADLINE_MS environment variable; without either the context is
/// ExecContext::Unlimited() and every driver behaves exactly as before
/// (stdout byte-identical).  First call parses; later calls return the
/// installed context regardless of arguments.
const ExecContext& ExperimentContext(int argc, char** argv);

/// The installed context (Unlimited until the argv overload ran).
const ExecContext& ExperimentContext();

/// Terminates the process with kDeadlineExitCode -- message on stderr only,
/// never stdout -- when `status` is a governance stop (deadline, budget, or
/// cancellation).  Any other status, including OK, just returns.
void ExitIfDeadline(const Status& status);

/// SiteAveragedUpdateCost(MakeUniformInput(d, params), options) for every
/// distribution `d`, evaluated across `threads` workers; result i belongs
/// to distributions[i].  `ctx` governs the sweep (deadline/cancellation
/// polled per grid point, first failure cancels the remaining work).
Result<std::vector<CostFactors>> SweepSiteAveragedUpdateCost(
    const std::vector<std::vector<int>>& distributions,
    const UniformParams& params, const CostModelOptions& options, int threads,
    const ExecContext& ctx = ExecContext::Unlimited());

/// FirstSiteUpdateCost over every distribution (Experiment 3 sweep).
Result<std::vector<CostFactors>> SweepFirstSiteUpdateCost(
    const std::vector<std::vector<int>>& distributions,
    const UniformParams& params, const CostModelOptions& options, int threads,
    const ExecContext& ctx = ExecContext::Unlimited());

/// ComputeWorkloadCost over every distribution (Experiment 5 sweeps).
Result<std::vector<WorkloadCost>> SweepWorkloadCost(
    const std::vector<std::vector<int>>& distributions,
    const UniformParams& params, const WorkloadOptions& workload,
    const CostModelOptions& options, int threads,
    const ExecContext& ctx = ExecContext::Unlimited());

}  // namespace eve

#endif  // EVE_BENCH_UTIL_EXPERIMENT_COMMON_H_
