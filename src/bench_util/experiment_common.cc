#include "bench_util/experiment_common.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <utility>

#include "common/check.h"
#include "common/parallel.h"
#include "common/str_util.h"

namespace eve {

namespace {

// Evaluates `eval(i)` for every distribution index across `threads`
// workers, collecting per-index values; the first failure (lowest index
// kept) cancels the remaining grid points, and `ctx` is polled before each
// point so a sweep never outlives its deadline by more than one point.
template <typename T, typename Eval>
Result<std::vector<T>> SweepImpl(size_t n, int threads, const Eval& eval,
                                 const ExecContext& ctx) {
  std::vector<T> out(n);
  EVE_RETURN_IF_ERROR(ParallelForStatus(
      static_cast<int64_t>(n), threads,
      [&](int64_t i) -> Status {
        EVE_ASSIGN_OR_RETURN(out[i], eval(i));
        return Status::OK();
      },
      ctx));
  return out;
}

// Installed by ExperimentContext(argc, argv); process lifetime.
const ExecContext* g_experiment_ctx = nullptr;

}  // namespace

ViewCostInput MakeUniformInput(const std::vector<int>& distribution,
                               const UniformParams& params) {
  int total = 0;
  for (int k : distribution) total += k;
  EVE_CHECK_MSG(total == params.num_relations,
                "distribution must place every relation");
  ViewCostInput input;
  input.join_selectivity = params.join_selectivity;
  int rel_index = 0;
  for (size_t site = 0; site < distribution.size(); ++site) {
    for (int k = 0; k < distribution[site]; ++k) {
      CostRelation rel;
      rel.id = RelationId{StrFormat("IS%d", static_cast<int>(site) + 1),
                          StrFormat("R%d", ++rel_index)};
      rel.cardinality = params.cardinality;
      rel.tuple_bytes = params.tuple_bytes;
      rel.local_selectivity = params.local_selectivity;
      input.relations.push_back(std::move(rel));
    }
  }
  return input;
}

CostModelOptions MakeUniformOptions(const UniformParams& params,
                                    IoBoundPolicy policy) {
  CostModelOptions options;
  options.io_policy = policy;
  options.block.block_bytes = params.blocking_factor * params.tuple_bytes;
  return options;
}

Result<CostFactors> SiteAveragedUpdateCost(const ViewCostInput& input,
                                           const CostModelOptions& options) {
  // Each site generates one update, spread evenly over its relations.
  std::map<std::string, int> per_site;
  for (const CostRelation& r : input.relations) per_site[r.id.site] += 1;
  CostFactors total;
  for (size_t i = 0; i < input.relations.size(); ++i) {
    EVE_ASSIGN_OR_RETURN(CostFactors cf, SingleUpdateCost(input, i, options));
    total += cf * (1.0 / per_site[input.relations[i].id.site]);
  }
  const double sites = static_cast<double>(per_site.size());
  return total * (1.0 / sites);
}

Result<CostFactors> FirstSiteUpdateCost(const ViewCostInput& input,
                                        const CostModelOptions& options) {
  if (input.relations.empty()) {
    return Status::InvalidArgument("empty cost input");
  }
  const std::string& first_site = input.relations.front().id.site;
  CostFactors total;
  int count = 0;
  for (size_t i = 0; i < input.relations.size(); ++i) {
    if (input.relations[i].id.site != first_site) continue;
    EVE_ASSIGN_OR_RETURN(CostFactors cf, SingleUpdateCost(input, i, options));
    total += cf;
    ++count;
  }
  return total * (1.0 / count);
}

int SweepThreads(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      const int parsed = std::atoi(argv[i] + 10);
      return parsed > 0 ? parsed : 1;
    }
  }
  if (const char* env = std::getenv("EVE_BENCH_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  return DefaultThreadCount();
}

const ExecContext& ExperimentContext() {
  return g_experiment_ctx != nullptr ? *g_experiment_ctx
                                     : ExecContext::Unlimited();
}

const ExecContext& ExperimentContext(int argc, char** argv) {
  if (g_experiment_ctx == nullptr) {
    long long ms = 0;
    for (int i = 1; i < argc; ++i) {
      if (std::strncmp(argv[i], "--deadline_ms=", 14) == 0) {
        ms = std::atoll(argv[i] + 14);
        break;
      }
    }
    if (ms <= 0) {
      if (const char* env = std::getenv("EVE_DEADLINE_MS")) ms = std::atoll(env);
    }
    if (ms > 0) {
      // Leaked on purpose: governed code may hold the reference until exit.
      auto* ctx = new ExecContext();
      ctx->WithDeadlineAfter(std::chrono::milliseconds(ms));
      g_experiment_ctx = ctx;
    } else {
      g_experiment_ctx = &ExecContext::Unlimited();
    }
  }
  return *g_experiment_ctx;
}

void ExitIfDeadline(const Status& status) {
  switch (status.code()) {
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kResourceExhausted:
    case StatusCode::kCancelled:
      // stderr only: a cut-off run must not perturb the stdout tables.
      std::fprintf(stderr, "experiment cut off: %s\n",
                   status.ToString().c_str());
      std::exit(kDeadlineExitCode);
    default:
      return;
  }
}

Result<std::vector<CostFactors>> SweepSiteAveragedUpdateCost(
    const std::vector<std::vector<int>>& distributions,
    const UniformParams& params, const CostModelOptions& options, int threads,
    const ExecContext& ctx) {
  return SweepImpl<CostFactors>(
      distributions.size(), threads,
      [&](int64_t i) {
        return SiteAveragedUpdateCost(
            MakeUniformInput(distributions[i], params), options);
      },
      ctx);
}

Result<std::vector<CostFactors>> SweepFirstSiteUpdateCost(
    const std::vector<std::vector<int>>& distributions,
    const UniformParams& params, const CostModelOptions& options, int threads,
    const ExecContext& ctx) {
  return SweepImpl<CostFactors>(
      distributions.size(), threads,
      [&](int64_t i) {
        return FirstSiteUpdateCost(MakeUniformInput(distributions[i], params),
                                   options);
      },
      ctx);
}

Result<std::vector<WorkloadCost>> SweepWorkloadCost(
    const std::vector<std::vector<int>>& distributions,
    const UniformParams& params, const WorkloadOptions& workload,
    const CostModelOptions& options, int threads, const ExecContext& ctx) {
  return SweepImpl<WorkloadCost>(
      distributions.size(), threads,
      [&](int64_t i) {
        return ComputeWorkloadCost(MakeUniformInput(distributions[i], params),
                                   workload, options);
      },
      ctx);
}

}  // namespace eve
