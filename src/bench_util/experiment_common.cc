#include "bench_util/experiment_common.h"

#include <map>

#include "common/check.h"
#include "common/str_util.h"

namespace eve {

ViewCostInput MakeUniformInput(const std::vector<int>& distribution,
                               const UniformParams& params) {
  int total = 0;
  for (int k : distribution) total += k;
  EVE_CHECK_MSG(total == params.num_relations,
                "distribution must place every relation");
  ViewCostInput input;
  input.join_selectivity = params.join_selectivity;
  int rel_index = 0;
  for (size_t site = 0; site < distribution.size(); ++site) {
    for (int k = 0; k < distribution[site]; ++k) {
      CostRelation rel;
      rel.id = RelationId{StrFormat("IS%d", static_cast<int>(site) + 1),
                          StrFormat("R%d", ++rel_index)};
      rel.cardinality = params.cardinality;
      rel.tuple_bytes = params.tuple_bytes;
      rel.local_selectivity = params.local_selectivity;
      input.relations.push_back(std::move(rel));
    }
  }
  return input;
}

CostModelOptions MakeUniformOptions(const UniformParams& params,
                                    IoBoundPolicy policy) {
  CostModelOptions options;
  options.io_policy = policy;
  options.block.block_bytes = params.blocking_factor * params.tuple_bytes;
  return options;
}

Result<CostFactors> SiteAveragedUpdateCost(const ViewCostInput& input,
                                           const CostModelOptions& options) {
  // Each site generates one update, spread evenly over its relations.
  std::map<std::string, int> per_site;
  for (const CostRelation& r : input.relations) per_site[r.id.site] += 1;
  CostFactors total;
  for (size_t i = 0; i < input.relations.size(); ++i) {
    EVE_ASSIGN_OR_RETURN(CostFactors cf, SingleUpdateCost(input, i, options));
    total += cf * (1.0 / per_site[input.relations[i].id.site]);
  }
  const double sites = static_cast<double>(per_site.size());
  return total * (1.0 / sites);
}

Result<CostFactors> FirstSiteUpdateCost(const ViewCostInput& input,
                                        const CostModelOptions& options) {
  if (input.relations.empty()) {
    return Status::InvalidArgument("empty cost input");
  }
  const std::string& first_site = input.relations.front().id.site;
  CostFactors total;
  int count = 0;
  for (size_t i = 0; i < input.relations.size(); ++i) {
    if (input.relations[i].id.site != first_site) continue;
    EVE_ASSIGN_OR_RETURN(CostFactors cf, SingleUpdateCost(input, i, options));
    total += cf;
    ++count;
  }
  return total * (1.0 / count);
}

}  // namespace eve
