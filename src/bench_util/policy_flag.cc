#include "bench_util/policy_flag.h"

#include <cstdlib>
#include <cstring>
#include <string>

namespace eve {

Result<std::optional<EvolutionPolicy>> PolicyFromFlags(int argc, char** argv) {
  static constexpr char kPrefix[] = "--policy=";
  std::string name;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kPrefix, sizeof(kPrefix) - 1) == 0) {
      name = argv[i] + sizeof(kPrefix) - 1;
      break;
    }
  }
  if (name.empty()) {
    const char* env = std::getenv("EVE_POLICY");
    if (env != nullptr) name = env;
  }
  if (name.empty()) return std::optional<EvolutionPolicy>();
  EVE_ASSIGN_OR_RETURN(EvolutionPolicy policy, PolicyPresetByName(name));
  return std::optional<EvolutionPolicy>(std::move(policy));
}

}  // namespace eve
