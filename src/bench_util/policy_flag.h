// The --policy / EVE_POLICY driver convention (the policy analogue of
// experiment_common.h's --deadline_ms / EVE_DEADLINE_MS): experiment and
// replay drivers accept an EvolutionPolicy preset by name, and behave
// EXACTLY as before -- stdout byte-identical -- when neither the flag nor
// the environment variable is set.

#ifndef EVE_BENCH_UTIL_POLICY_FLAG_H_
#define EVE_BENCH_UTIL_POLICY_FLAG_H_

#include <optional>

#include "common/result.h"
#include "policy/evolution_policy.h"

namespace eve {

/// Resolves the driver's policy preset: the first `--policy=NAME` argument
/// wins, else the EVE_POLICY environment variable; with neither set the
/// result is an empty optional and the caller must not change behavior.
/// An unknown preset name is an InvalidArgument error (drivers should exit
/// 2 with the message on stderr).
Result<std::optional<EvolutionPolicy>> PolicyFromFlags(int argc, char** argv);

}  // namespace eve

#endif  // EVE_BENCH_UTIL_POLICY_FLAG_H_
