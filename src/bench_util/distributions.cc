#include "bench_util/distributions.h"

#include <algorithm>
#include <map>

#include "common/str_util.h"

namespace eve {

namespace {

void Recurse(int remaining, int parts, std::vector<int>* current,
             std::vector<std::vector<int>>* out) {
  if (parts == 1) {
    if (remaining >= 1) {
      current->push_back(remaining);
      out->push_back(*current);
      current->pop_back();
    }
    return;
  }
  for (int first = 1; first <= remaining - (parts - 1); ++first) {
    current->push_back(first);
    Recurse(remaining - first, parts - 1, current, out);
    current->pop_back();
  }
}

}  // namespace

std::vector<std::vector<int>> Compositions(int total, int parts) {
  std::vector<std::vector<int>> out;
  if (total < parts || parts <= 0) return out;
  std::vector<int> current;
  Recurse(total, parts, &current, &out);
  return out;
}

std::string DistributionLabel(const std::vector<int>& distribution) {
  return "(" +
         JoinMapped(distribution, ",",
                    [](int k) { return StrFormat("%d", k); }) +
         ")";
}

std::vector<DistributionGroup> GroupedCompositions(int total, int parts) {
  std::map<std::vector<int>, std::vector<std::vector<int>>> by_multiset;
  for (const std::vector<int>& comp : Compositions(total, parts)) {
    std::vector<int> key = comp;
    std::sort(key.begin(), key.end());
    by_multiset[key].push_back(comp);
  }
  std::vector<DistributionGroup> out;
  for (auto& [key, members] : by_multiset) {
    DistributionGroup group;
    group.label =
        JoinMapped(key, "/", [](int k) { return StrFormat("%d", k); });
    group.members = std::move(members);
    out.push_back(std::move(group));
  }
  return out;
}

}  // namespace eve
