#include "bench_util/scenario.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <utility>

#include "common/random.h"
#include "storage/generator.h"

namespace eve {
namespace {

// --- Naming ------------------------------------------------------------------
// Sites: one "Hub" (facts + churn) and one "Mirror{r}" per replica rank.
// Relations: fact "F{f}", churn "C{i}", dimension replica "D{f}_{r}",
// snowflake replica "S{f}_{r}".  Rename toggles append "x" to a relation
// name and "r" to an attribute name.

std::string FactName(int f) { return "F" + std::to_string(f); }
std::string ChurnName(int i) { return "C" + std::to_string(i); }
std::string ReplicaName(int f, int r) {
  return "D" + std::to_string(f) + "_" + std::to_string(r);
}
std::string SnowName(int f, int r) {
  return "S" + std::to_string(f) + "_" + std::to_string(r);
}
std::string MirrorName(int f, int p) {
  return "P" + std::to_string(f) + "_" + std::to_string(p);
}
std::string MirrorSite(int r) { return "Mirror" + std::to_string(r); }

std::vector<std::string> DimensionAttrs(const ScenarioOptions& o) {
  std::vector<std::string> attrs = {"K"};
  for (int v = 0; v < o.dimension_value_attrs; ++v) {
    attrs.push_back("V" + std::to_string(v));
  }
  return attrs;
}

Schema DimensionSchema(const ScenarioOptions& o) {
  std::vector<Attribute> attrs;
  for (const std::string& a : DimensionAttrs(o)) {
    attrs.push_back(Attribute::Make(a, DataType::kInt64, 50));
  }
  return Schema(std::move(attrs));
}

GeneratorOptions DimensionGen(const ScenarioOptions& o) {
  GeneratorOptions gen;
  gen.cardinality = o.dimension_rows;
  gen.num_attributes = 1 + o.dimension_value_attrs;
  gen.attribute_names = DimensionAttrs(o);
  gen.key_domain = std::max<int64_t>(16, o.dimension_rows / 2);
  return gen;
}

constexpr int64_t kFactValueDomain = 1000;

}  // namespace

std::string ScenarioEvent::ToString() const {
  struct Visitor {
    std::string operator()(const SchemaChange& c) const {
      return SchemaChangeToString(c);
    }
    std::string operator()(const DataUpdate& u) const { return u.ToString(); }
    std::string operator()(const PcConstraint& pc) const {
      return "relink " + pc.ToString();
    }
  };
  return std::visit(Visitor{}, op);
}

Result<std::unique_ptr<EveSystem>> BuildScenarioSystem(
    const ScenarioOptions& options, EveOptions eve_options) {
  auto system = std::make_unique<EveSystem>(std::move(eve_options));
  EveSystem::SnapshotBatch batch(*system);
  Random rng(options.seed);

  // Facts and churn relations live at the hub.
  for (int f = 0; f < options.families; ++f) {
    GeneratorOptions gen;
    gen.cardinality = options.fact_rows;
    gen.num_attributes = 3;
    gen.attribute_names = {"K", "M0", "M1"};
    gen.key_domain = std::max<int64_t>(16, options.dimension_rows / 2);
    EVE_RETURN_IF_ERROR(system->RegisterRelation(
        "Hub", GenerateRelation(FactName(f), gen, &rng)));
  }
  for (int c = 0; c < options.churn_relations; ++c) {
    GeneratorOptions gen;
    gen.cardinality = options.churn_rows;
    gen.num_attributes = 3;
    gen.attribute_names = {"K", "X0", "X1"};
    EVE_RETURN_IF_ERROR(system->RegisterRelation(
        "Hub", GenerateRelation(ChurnName(c), gen, &rng)));
  }

  // Replica chains: identical content at every rank (copies share column
  // storage), PC-equivalent rank r <-> r+1, and a fact JC per rank so the
  // join-in / CVS strategies have material.
  const std::vector<std::string> dim_attrs = DimensionAttrs(options);
  for (int f = 0; f < options.families; ++f) {
    const Relation base =
        GenerateRelation(ReplicaName(f, 0), DimensionGen(options), &rng);
    for (int r = 0; r < options.replicas_per_family; ++r) {
      Relation replica = base;
      replica.set_name(ReplicaName(f, r));
      EVE_RETURN_IF_ERROR(
          system->RegisterRelation(MirrorSite(r), std::move(replica)));
    }
    for (int r = 0; r + 1 < options.replicas_per_family; ++r) {
      EVE_RETURN_IF_ERROR(system->AddPcConstraint(MakeProjectionPc(
          RelationId{MirrorSite(r), ReplicaName(f, r)},
          RelationId{MirrorSite(r + 1), ReplicaName(f, r + 1)}, dim_attrs,
          PcRelationType::kEquivalent)));
    }
    for (int r = 0; r < options.replicas_per_family; ++r) {
      EVE_RETURN_IF_ERROR(system->DeclareConstraint(
          "JOIN CONSTRAINT " + FactName(f) + ", " + ReplicaName(f, r) +
          " ON " + FactName(f) + ".K = " + ReplicaName(f, r) + ".K"));
    }
    if (options.snowflake) {
      // A second-level chain hung off the family tail deepens the closure
      // every replacement search walks; no view references it.
      const Relation sbase =
          GenerateRelation(SnowName(f, 0), DimensionGen(options), &rng);
      for (int r = 0; r < options.snowflake_replicas; ++r) {
        Relation replica = sbase;
        replica.set_name(SnowName(f, r));
        EVE_RETURN_IF_ERROR(system->RegisterRelation(
            MirrorSite(r % options.replicas_per_family), std::move(replica)));
      }
      EVE_RETURN_IF_ERROR(system->AddPcConstraint(MakeProjectionPc(
          RelationId{MirrorSite(options.replicas_per_family - 1),
                     ReplicaName(f, options.replicas_per_family - 1)},
          RelationId{MirrorSite(0), SnowName(f, 0)}, dim_attrs,
          PcRelationType::kIncomparable)));
      for (int r = 0; r + 1 < options.snowflake_replicas; ++r) {
        EVE_RETURN_IF_ERROR(system->AddPcConstraint(MakeProjectionPc(
            RelationId{MirrorSite(r % options.replicas_per_family),
                       SnowName(f, r)},
            RelationId{MirrorSite((r + 1) % options.replicas_per_family),
                       SnowName(f, r + 1)},
            dim_attrs, PcRelationType::kEquivalent)));
      }
    }
    // Partial-coverage subset mirrors: each carries K plus one value
    // attribute, linked kSuperset FROM every replica (1 hop, so they stay
    // reachable from whichever replica a view migrated to), with JCs on K
    // between opposite-coverage mirrors and against every replica.  Views
    // never adopt them -- a subset extent ranks below an exact equivalent
    // -- but on a replica deletion the CVS pair strategy must consider
    // every complementary (mirror, mirror) and (mirror, replica) join.
    for (int p = 0; p < options.partial_mirrors; ++p) {
      std::vector<std::string> mirror_attrs = {"K"};
      if (p % 2 == 0) {
        mirror_attrs.push_back("V0");
      } else if (options.dimension_value_attrs >= 2) {
        mirror_attrs.push_back("V1");
      }
      GeneratorOptions gen;
      gen.cardinality = std::max<int64_t>(1, options.dimension_rows / 2);
      gen.num_attributes = static_cast<int>(mirror_attrs.size());
      gen.attribute_names = mirror_attrs;
      gen.key_domain = std::max<int64_t>(16, options.dimension_rows / 2);
      const std::string site = MirrorSite(p % options.replicas_per_family);
      EVE_RETURN_IF_ERROR(system->RegisterRelation(
          site, GenerateRelation(MirrorName(f, p), gen, &rng)));
      for (int r = 0; r < options.replicas_per_family; ++r) {
        EVE_RETURN_IF_ERROR(system->AddPcConstraint(MakeProjectionPc(
            RelationId{MirrorSite(r), ReplicaName(f, r)},
            RelationId{site, MirrorName(f, p)}, mirror_attrs,
            PcRelationType::kSuperset)));
      }
      for (int q = 0; q < p; ++q) {
        if (q % 2 == p % 2) continue;  // Same coverage: no pair material.
        EVE_RETURN_IF_ERROR(system->DeclareConstraint(
            "JOIN CONSTRAINT " + MirrorName(f, q) + ", " + MirrorName(f, p) +
            " ON " + MirrorName(f, q) + ".K = " + MirrorName(f, p) + ".K"));
      }
      for (int r = 0; r < options.replicas_per_family; ++r) {
        EVE_RETURN_IF_ERROR(system->DeclareConstraint(
            "JOIN CONSTRAINT " + MirrorName(f, p) + ", " + ReplicaName(f, r) +
            " ON " + MirrorName(f, p) + ".K = " + ReplicaName(f, r) + ".K"));
      }
    }
  }

  // Views: round-robin over families; odd indexes join the family fact.
  for (int v = 0; v < options.views; ++v) {
    const int f = v % options.families;
    const std::string dim = ReplicaName(f, 0);
    std::string ddl;
    if (v % 2 == 0) {
      ddl = "CREATE VIEW V" + std::to_string(v) + " AS SELECT " + dim +
            ".K (AD=true, AR=true), " + dim + ".V0 (AD=true, AR=true) FROM " +
            dim + " (RR=true)";
    } else {
      ddl = "CREATE VIEW V" + std::to_string(v) + " AS SELECT " + FactName(f) +
            ".M0 (AD=true, AR=true), " + dim + ".V0 (AD=true, AR=true) FROM " +
            FactName(f) + " (RR=true), " + dim + " (RR=true) WHERE (" +
            FactName(f) + ".K = " + dim + ".K) (CR=true)";
    }
    EVE_RETURN_IF_ERROR(system->DefineView(ddl));
  }
  return system;
}

namespace {

// The generator's simulation of the space's name shape.  Only names and
// liveness are tracked -- enough to guarantee every emitted event is
// applicable when replayed in order.
struct SlotState {
  std::string name;  ///< Replica names are stable (re-adds restore them).
  bool alive = true;
  bool v0_renamed = false;     ///< Projected attribute V0 toggled to V0r.
  bool vattr_renamed = false;  ///< Last value attribute toggled to name + "r".

  /// The slot's current attribute names, rename toggles applied.
  std::vector<std::string> CurrentAttrs(const ScenarioOptions& o) const {
    std::vector<std::string> attrs = DimensionAttrs(o);
    if (v0_renamed) attrs[1] += "r";
    if (vattr_renamed && o.dimension_value_attrs >= 2) attrs.back() += "r";
    return attrs;
  }
};

struct FamilyState {
  std::vector<SlotState> replicas;
  std::vector<int> pending_readd;   ///< Deleted, awaiting add-relation.
  std::vector<int> pending_relink;  ///< Re-added, awaiting the PC re-link.

  int AliveCount() const {
    int n = 0;
    for (const SlotState& s : replicas) n += s.alive ? 1 : 0;
    return n;
  }
  int LowestAlive() const {
    for (size_t i = 0; i < replicas.size(); ++i) {
      if (replicas[i].alive) return static_cast<int>(i);
    }
    return -1;
  }
  /// A uniformly random alive slot: views migrate to an unknown replica
  /// when their host dies, so uniform targeting keeps hitting whichever
  /// replica they currently reference.
  int RandomAlive(Random& rng) const {
    std::vector<int> alive;
    for (size_t i = 0; i < replicas.size(); ++i) {
      if (replicas[i].alive) alive.push_back(static_cast<int>(i));
    }
    if (alive.empty()) return -1;
    return alive[rng.Uniform(alive.size())];
  }
};

struct ChurnState {
  std::string base;
  bool renamed = false;
  bool attr_renamed = false;  ///< X0 <-> X0r.
  bool extra_attr = false;    ///< Transient attribute E present.
  std::string CurrentName() const { return renamed ? base + "x" : base; }
};

}  // namespace

std::vector<ScenarioEvent> GenerateEventStream(const ScenarioOptions& options,
                                               int num_events, uint64_t seed) {
  Random rng(seed);
  std::vector<FamilyState> families(
      static_cast<size_t>(std::max(options.families, 0)));
  for (int f = 0; f < options.families; ++f) {
    for (int r = 0; r < options.replicas_per_family; ++r) {
      families[f].replicas.push_back(SlotState{ReplicaName(f, r)});
    }
  }
  std::vector<ChurnState> churn(options.churn_relations);
  for (int c = 0; c < options.churn_relations; ++c) {
    churn[c].base = ChurnName(c);
  }
  // Tuples the stream itself inserted into each fact (eligible for delete).
  std::vector<std::vector<Tuple>> fact_inserted(options.families);
  const std::string last_vattr =
      "V" + std::to_string(options.dimension_value_attrs - 1);
  const int64_t key_domain = std::max<int64_t>(16, options.dimension_rows / 2);

  std::vector<ScenarioEvent> out;
  out.reserve(static_cast<size_t>(num_events));

  const auto fact_insert = [&]() -> ScenarioEvent {
    const int f = static_cast<int>(rng.Uniform(options.families));
    Tuple t{Value(rng.UniformInt(0, key_domain - 1)),
            Value(rng.UniformInt(0, kFactValueDomain - 1)),
            Value(rng.UniformInt(0, kFactValueDomain - 1))};
    fact_inserted[f].push_back(t);
    return ScenarioEvent{DataUpdate{UpdateKind::kInsert,
                                    RelationId{"Hub", FactName(f)},
                                    std::move(t)}};
  };

  while (static_cast<int>(out.size()) < num_events) {
    const double r = rng.UniformDouble();
    if (r < 0.28) {
      // Fact insert: maintenance traffic, no MKB interaction.
      out.push_back(fact_insert());
    } else if (r < 0.50 && !churn.empty()) {
      // Churn attribute rename toggle: invalidation with no affected views.
      ChurnState& c = churn[rng.Uniform(churn.size())];
      const std::string from = c.attr_renamed ? "X0r" : "X0";
      const std::string to = c.attr_renamed ? "X0" : "X0r";
      c.attr_renamed = !c.attr_renamed;
      out.push_back(ScenarioEvent{SchemaChange(
          RenameAttribute{RelationId{"Hub", c.CurrentName()}, from, to})});
    } else if (r < 0.64 && !churn.empty()) {
      // Churn add/delete-attribute toggle.
      ChurnState& c = churn[rng.Uniform(churn.size())];
      const RelationId id{"Hub", c.CurrentName()};
      if (c.extra_attr) {
        out.push_back(ScenarioEvent{SchemaChange(DeleteAttribute{id, "E"})});
      } else {
        out.push_back(ScenarioEvent{SchemaChange(
            AddAttribute{id, Attribute::Make("E", DataType::kInt64, 50)})});
      }
      c.extra_attr = !c.extra_attr;
    } else if (r < 0.74 && !churn.empty()) {
      // Churn relation rename toggle.
      ChurnState& c = churn[rng.Uniform(churn.size())];
      const std::string from = c.CurrentName();
      c.renamed = !c.renamed;
      out.push_back(ScenarioEvent{SchemaChange(
          RenameRelation{RelationId{"Hub", from}, c.CurrentName()})});
    } else if (r < 0.82) {
      // Replica value-attribute rename toggle: selective drops confined to
      // the family's chain component; referencing views are untouched (they
      // never project the last value attribute).  Needs >= 2 value
      // attributes, else this toggle would collide with the V0 one below.
      if (options.dimension_value_attrs < 2) {
        out.push_back(fact_insert());
        continue;
      }
      FamilyState& fam = families[rng.Uniform(families.size())];
      const int slot = fam.RandomAlive(rng);
      if (slot < 0) continue;
      SlotState& s = fam.replicas[slot];
      const std::string from = s.vattr_renamed ? last_vattr + "r" : last_vattr;
      const std::string to = s.vattr_renamed ? last_vattr : last_vattr + "r";
      s.vattr_renamed = !s.vattr_renamed;
      out.push_back(ScenarioEvent{SchemaChange(RenameAttribute{
          RelationId{MirrorSite(slot), s.name}, from, to})});
    } else if (r < 0.88) {
      // Projected-attribute rename toggle on a replica views reference: a
      // transparent synchronization (rename-through, full enumerate + rank)
      // of every view projecting it -- the RenameIsTransparent lifecycle.
      FamilyState& fam = families[rng.Uniform(families.size())];
      const int slot = fam.RandomAlive(rng);
      if (slot < 0) continue;
      SlotState& s = fam.replicas[slot];
      const std::string from = s.v0_renamed ? "V0r" : "V0";
      const std::string to = s.v0_renamed ? "V0" : "V0r";
      s.v0_renamed = !s.v0_renamed;
      out.push_back(ScenarioEvent{SchemaChange(RenameAttribute{
          RelationId{MirrorSite(slot), s.name}, from, to})});
    } else if (r < 0.92) {
      // Replica deletion: replacement discovery through the PC closure for
      // every referencing view.  Keep >= 2 replicas alive so views survive.
      FamilyState& fam = families[rng.Uniform(families.size())];
      if (fam.AliveCount() <= 2) {
        out.push_back(fact_insert());
        continue;
      }
      const int slot = fam.RandomAlive(rng);
      SlotState& s = fam.replicas[slot];
      s.alive = false;
      // A pending re-link for this slot (from an earlier delete/re-add
      // round) is now moot -- the slot is dead again.
      std::erase(fam.pending_relink, slot);
      fam.pending_readd.push_back(slot);
      out.push_back(ScenarioEvent{SchemaChange(
          DeleteRelation{RelationId{MirrorSite(slot), s.name}})});
    } else if (r < 0.96) {
      // Repair: re-add one deleted replica (empty, original name), then on a
      // later repair tick re-link it as a SUBSET of a surviving replica --
      // vacuously true of an empty extent, and it keeps long streams from
      // exhausting the chains.
      bool emitted = false;
      for (FamilyState& fam : families) {
        if (!fam.pending_relink.empty()) {
          const int slot = fam.pending_relink.front();
          fam.pending_relink.erase(fam.pending_relink.begin());
          const int target = fam.LowestAlive();
          if (target >= 0 && target != slot) {
            // Declared full equivalence (positionally aligned, each side
            // under its current attribute names) so the re-added replica is
            // a first-class replacement host again.  The re-add is empty --
            // the equivalence is an MISD assertion about information type,
            // exactly the trust the paper places in declared constraints.
            PcConstraint pc;
            pc.left.relation =
                RelationId{MirrorSite(slot), fam.replicas[slot].name};
            pc.left.attributes = fam.replicas[slot].CurrentAttrs(options);
            pc.right.relation =
                RelationId{MirrorSite(target), fam.replicas[target].name};
            pc.right.attributes = fam.replicas[target].CurrentAttrs(options);
            pc.type = PcRelationType::kEquivalent;
            out.push_back(ScenarioEvent{std::move(pc)});
            emitted = true;
          }
          break;
        }
        if (!fam.pending_readd.empty()) {
          const int slot = fam.pending_readd.front();
          fam.pending_readd.erase(fam.pending_readd.begin());
          SlotState& s = fam.replicas[slot];
          s.alive = true;
          s.v0_renamed = false;
          s.vattr_renamed = false;
          out.push_back(ScenarioEvent{SchemaChange(AddRelation{
              RelationId{MirrorSite(slot), s.name}, DimensionSchema(options)})});
          fam.pending_relink.push_back(slot);
          emitted = true;
          break;
        }
      }
      if (!emitted) out.push_back(fact_insert());
    } else {
      // Fact delete of a tuple the stream inserted earlier.
      const int f = static_cast<int>(rng.Uniform(options.families));
      if (fact_inserted[f].empty()) {
        out.push_back(fact_insert());
        continue;
      }
      Tuple t = std::move(fact_inserted[f].back());
      fact_inserted[f].pop_back();
      out.push_back(ScenarioEvent{DataUpdate{
          UpdateKind::kDelete, RelationId{"Hub", FactName(f)}, std::move(t)}});
    }
  }
  return out;
}

std::string ReplayResult::CurvesCsv() const {
  std::ostringstream os;
  os << "event,kind,alive_views,affected,mean_qc,mean_cost,replaceability,"
        "closure_hits,closure_misses,survivals,drops,full_flushes,micros\n";
  for (const ReplaySample& s : samples) {
    os << s.event_index << ',' << s.kind << ',' << s.alive_views << ','
       << s.affected_views << ',' << s.mean_adopted_qc << ','
       << s.mean_adopted_cost << ',' << s.mean_replaceability << ','
       << s.memo.closure_hits << ','
       << s.memo.closure_misses << ',' << s.memo.memo_survivals << ','
       << s.memo.selective_drops << ',' << s.memo.full_flushes << ','
       << s.micros << '\n';
  }
  return os.str();
}

namespace {

// Reachable replacement edges over every FROM relation of `def`: the
// redundancy that decides whether the view survives its next capability
// change.  Relations the MKB cannot resolve contribute nothing.
int64_t ViewReplaceability(const EveSystem& system, const ViewDefinition& def,
                           int hops) {
  int64_t edges = 0;
  for (const FromItem& item : def.from_items) {
    Result<RelationId> id =
        item.site.empty()
            ? system.mkb().ResolveName(item.relation)
            : Result<RelationId>(RelationId{item.site, item.relation});
    if (!id.ok()) continue;
    edges += static_cast<int64_t>(
        system.mkb().PcEdgesFromTransitive(*id, hops).size());
  }
  return edges;
}

}  // namespace

Result<ReplayResult> ReplayScenario(EveSystem& system,
                                    const std::vector<ScenarioEvent>& events,
                                    const ReplayOptions& options) {
  using Clock = std::chrono::steady_clock;
  ReplayResult out;
  out.alive_views = 0;
  std::vector<std::string> alive_names;
  for (const std::string& name : system.vkb().ViewNames()) {
    EVE_ASSIGN_OR_RETURN(ViewState state, system.GetViewState(name));
    if (state == ViewState::kAlive) {
      ++out.alive_views;
      alive_names.push_back(name);
    }
  }
  const int stride = options.sample_stride < 1 ? 1 : options.sample_stride;

  for (size_t i = 0; i < events.size(); ++i) {
    ReplaySample sample;
    sample.event_index = static_cast<int>(i);
    const auto start = Clock::now();

    if (const auto* change = std::get_if<SchemaChange>(&events[i].op)) {
      sample.kind = 's';
      auto report_or = system.NotifySchemaChange(*change);
      if (!report_or.ok()) {
        return Status(report_or.status().code(),
                      "event " + std::to_string(i) + " (" +
                          events[i].ToString() +
                          "): " + report_or.status().message());
      }
      ChangeReport report = std::move(*report_or);
      ++out.schema_changes;
      double qc_sum = 0, cost_sum = 0;
      int adopted = 0;
      for (const ViewSynchronizationReport& view : report.views) {
        if (!view.affected) continue;
        ++sample.affected_views;
        if (view.resulting_state == ViewState::kDead) {
          --out.alive_views;
          ++out.dead_views;
          std::erase(alive_names, view.view_name);
        } else if (!view.ranking.empty()) {
          qc_sum += view.ranking.front().qc;
          cost_sum += view.ranking.front().weighted_cost;
          ++adopted;
        }
      }
      if (adopted > 0) {
        sample.mean_adopted_qc = qc_sum / adopted;
        sample.mean_adopted_cost = cost_sum / adopted;
        out.adopted_qc_sum += qc_sum;
        out.adoptions += adopted;
      }
    } else if (const auto* update = std::get_if<DataUpdate>(&events[i].op)) {
      sample.kind = 'd';
      const Status status = system.NotifyDataUpdate(*update).status();
      if (!status.ok()) {
        return Status(status.code(), "event " + std::to_string(i) + " (" +
                                         events[i].ToString() +
                                         "): " + status.message());
      }
      ++out.data_updates;
    } else {
      sample.kind = 'c';
      const Status status =
          system.AddPcConstraint(std::get<PcConstraint>(events[i].op));
      if (!status.ok()) {
        return Status(status.code(), "event " + std::to_string(i) + " (" +
                                         events[i].ToString() +
                                         "): " + status.message());
      }
      ++out.relinks;
    }

    // The monitoring sweep: every live view's replaceability, recomputed
    // after every event inside the timed window.  This is where the two
    // invalidation modes diverge -- selective drops leave all but the
    // mutated relation's closures memoized, full flush recomputes them all.
    if (options.track_replaceability && !alive_names.empty()) {
      int64_t edges = 0;
      for (const std::string& name : alive_names) {
        EVE_ASSIGN_OR_RETURN(ViewDefinition def,
                             system.GetViewDefinition(name));
        edges += ViewReplaceability(system, def, options.replaceability_hops);
      }
      sample.mean_replaceability =
          static_cast<double>(edges) / static_cast<double>(alive_names.size());
    }

    sample.micros = std::chrono::duration<double, std::micro>(Clock::now() -
                                                              start)
                        .count();
    out.total_micros += sample.micros;
    ++out.events_applied;
    if (i % static_cast<size_t>(stride) == 0 || i + 1 == events.size()) {
      sample.alive_views = out.alive_views;
      sample.memo = system.mkb().memo_stats();
      out.samples.push_back(std::move(sample));
    }
  }
  out.final_memo = system.mkb().memo_stats();
  out.final_policy = system.policy_stats();
  return out;
}

}  // namespace eve
