// Evolution-stream scenario engine: seeded generation of star/snowflake
// information spaces and long streams of interleaved capability changes and
// data updates, plus a replay driver that records survival / quality / cost
// curves and MKB memo statistics over the stream.
//
// The spaces follow the paper's replication idiom (Experiment 4's S1..S5
// containment chain, generalized): each "family" is a chain of PC-equivalent
// dimension replicas spread over mirror sites, joined to a hub fact
// relation.  Views reference the chain head, so deleting a replica forces
// replacement discovery through the transitive PC closure -- exactly the
// workload the delta-aware memo invalidation (misd/mkb.h) accelerates.
//
// Everything is deterministic: the same ScenarioOptions and seed produce
// the same space, the same stream, and (modulo wall-clock fields) the same
// replay curves, on any thread count.

#ifndef EVE_BENCH_UTIL_SCENARIO_H_
#define EVE_BENCH_UTIL_SCENARIO_H_

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "eve/eve_system.h"
#include "misd/constraints.h"
#include "space/data_update.h"
#include "space/schema_change.h"

namespace eve {

/// Shape of a generated evolution scenario.
struct ScenarioOptions {
  uint64_t seed = 42;
  /// Dimension families; each is a PC-equivalent replica chain + one fact.
  int families = 6;
  /// Replicas per family chain (>= 2; views reference replica 0).
  int replicas_per_family = 6;
  /// Hub relations that no view references; their churn exercises the
  /// invalidation path without any synchronization work.
  int churn_relations = 6;
  /// Views, assigned round-robin over families; odd indexes join the fact.
  int views = 32;
  int64_t dimension_rows = 512;
  int64_t fact_rows = 512;
  int64_t churn_rows = 32;
  /// Value attributes per dimension replica beyond the join key K.
  int dimension_value_attrs = 2;
  /// Snowflake: hang a second-level replica chain off each family's chain
  /// tail (deepens the PC closure without adding views).
  bool snowflake = false;
  int snowflake_replicas = 3;
  /// Partial-coverage subset mirrors per family (the paper's S1..S5
  /// containment idiom): relation "P{f}_{p}" carries the join key K plus
  /// ONE value attribute (V0 for even p, V1 for odd p), is declared a
  /// kSuperset target of every chain replica (replica contains mirror),
  /// and joins every opposite-coverage mirror and every replica on K.
  /// Mirrors are never churned; a subset extent ranks below the
  /// exact-equivalent replicas on quality, though cost normalization can
  /// still let a cheap half-size mirror (or CVS pair of mirrors) win
  /// adoption under exhaustive enumeration. Their pairwise join
  /// constraints are exactly the complementary-coverage material the CVS
  /// pair strategy fans out over on a replica deletion -- the enumeration
  /// work the policy layer's cap decision prunes (bench/policy_curve.cc).
  int partial_mirrors = 0;
};

/// One replayable event: a capability change, a data update, or a PC
/// re-link (issued after a deleted replica is re-added, declaring the empty
/// re-add a subset of a surviving replica -- vacuously true, and it keeps
/// the closure graph growing over long streams).
struct ScenarioEvent {
  std::variant<SchemaChange, DataUpdate, PcConstraint> op;

  std::string ToString() const;
};

/// Builds the EveSystem for `options`: registers every relation (with
/// generated data), declares the PC chains and fact JCs, defines the views,
/// and publishes ONE snapshot for the whole bulk load
/// (EveSystem::SnapshotBatch).  `eve_options.materialize` is honored;
/// benchmarks typically pass false.
Result<std::unique_ptr<EveSystem>> BuildScenarioSystem(
    const ScenarioOptions& options, EveOptions eve_options = {});

/// Generates a deterministic stream of `num_events` events for the space
/// that BuildScenarioSystem(options) produces.  The generator simulates the
/// space's name shape (alive relations, toggled names/attributes), so every
/// event is applicable when replayed in order; which views each event
/// affects is emergent.  Mix: mostly fact inserts and churn-relation
/// attribute/rename toggles, periodic replica renames (transparent
/// synchronization of the referencing views) and replica deletions
/// (replacement discovery through the PC closure), plus re-add/re-link
/// repairs so long streams never exhaust a family.
std::vector<ScenarioEvent> GenerateEventStream(const ScenarioOptions& options,
                                               int num_events, uint64_t seed);

/// One point of the replay curves.
struct ReplaySample {
  int event_index = 0;
  char kind = '?';  ///< 's'chema change / 'd'ata update / 'c'onstraint.
  int alive_views = 0;
  /// Views the event affected (synchronized); 0 for non-schema events.
  int affected_views = 0;
  /// Mean QC (Eq. 26) of the rewritings adopted at this event; 0 when none.
  double mean_adopted_qc = 0;
  /// Mean workload-weighted cost (Eq. 24) of the adopted rewritings.
  double mean_adopted_cost = 0;
  /// Mean replaceability of the live views: reachable PC-closure edges
  /// summed over each view's FROM relations (see ReplayOptions).
  double mean_replaceability = 0;
  /// Cumulative MKB memo statistics as of after this event.
  MkbMemoStats memo;
  double micros = 0;  ///< Wall time of this event.
};

struct ReplayOptions {
  /// Record a ReplaySample every `sample_stride` events (1 = every event).
  int sample_stride = 1;
  /// After every event, recompute each live view's replaceability: the
  /// number of transitively PC-reachable replacement edges over its FROM
  /// relations (the paper's redundancy that decides survival).  This is the
  /// steady closure consumer of a monitored warehouse; with delta-aware
  /// invalidation the queries are memo hits except for the relations the
  /// event touched, while full-flush mode recomputes every closure after
  /// every capability change -- the O(stream) vs O(stream^2) gap
  /// BM_EvolutionStream measures.
  bool track_replaceability = true;
  /// Hop bound for the replaceability closure (matches the synchronizer's
  /// max_pc_hops by default).
  int replaceability_hops = 4;
};

/// Outcome of replaying a stream.
struct ReplayResult {
  std::vector<ReplaySample> samples;
  int events_applied = 0;
  int schema_changes = 0;
  int data_updates = 0;
  int relinks = 0;
  int alive_views = 0;
  int dead_views = 0;
  double total_micros = 0;
  MkbMemoStats final_memo;
  /// Cumulative policy-layer counters over the stream (skip/cap/full
  /// decisions and enumeration work; see policy/policy.h).  The ablation
  /// driver's savings metric.
  PolicyStats final_policy;
  /// Sum / count of the top-adopted QC (Eq. 26) across every adoption in
  /// the stream -- the quality side of the policy curve.
  double adopted_qc_sum = 0;
  int64_t adoptions = 0;

  double MeanAdoptedQc() const {
    return adoptions > 0 ? adopted_qc_sum / static_cast<double>(adoptions) : 0;
  }

  /// The curves as CSV (header + one row per sample).
  std::string CurvesCsv() const;
};

/// Replays `events` against `system` in order, collecting curves.  Fails
/// fast on the first hard error (a governed ResourceExhausted stop included
/// -- replay is meant to run ungoverned).
Result<ReplayResult> ReplayScenario(EveSystem& system,
                                    const std::vector<ScenarioEvent>& events,
                                    const ReplayOptions& options = {});

}  // namespace eve

#endif  // EVE_BENCH_UTIL_SCENARIO_H_
