#include "bench_util/bench_json.h"

#include <fstream>

#include "common/str_util.h"

namespace eve {

namespace {

// Minimal JSON string escaping (names are benchmark identifiers, but be
// safe about quotes/backslashes/control characters).
std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string BenchRecordsToJson(const std::vector<BenchRecord>& records) {
  std::string out = "{\n  \"benchmarks\": [\n";
  for (size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    out += StrFormat(
        "    {\"name\": \"%s\", \"ns_per_op\": %.3f, \"iterations\": %lld, "
        "\"threads\": %d}%s\n",
        EscapeJson(r.name).c_str(), r.ns_per_op,
        static_cast<long long>(r.iterations), r.threads,
        i + 1 < records.size() ? "," : "");
  }
  out += "  ]\n}\n";
  return out;
}

Status WriteBenchJson(const std::string& path,
                      const std::vector<BenchRecord>& records) {
  std::ofstream file(path, std::ios::trunc);
  if (!file.is_open()) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  file << BenchRecordsToJson(records);
  file.close();
  if (!file) {
    return Status::Internal("failed writing " + path);
  }
  return Status::OK();
}

}  // namespace eve
