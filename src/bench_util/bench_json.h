// Machine-readable benchmark output: a flat JSON file mapping benchmark
// names to ns/op (plus iteration counts), written next to the working
// directory as BENCH_micro.json so the perf trajectory is tracked across
// PRs.  Format documented in bench/README.md.

#ifndef EVE_BENCH_UTIL_BENCH_JSON_H_
#define EVE_BENCH_UTIL_BENCH_JSON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace eve {

/// One benchmark result.
struct BenchRecord {
  std::string name;       ///< e.g. "BM_ExecuteJoinView/4096".
  double ns_per_op = 0;   ///< Adjusted real time per iteration, nanoseconds.
  int64_t iterations = 0;
  int threads = 1;        ///< Concurrent benchmark threads (->Threads(n)).
};

/// Serializes `records` as the BENCH_micro.json document (see
/// bench/README.md for the schema).
std::string BenchRecordsToJson(const std::vector<BenchRecord>& records);

/// Writes the JSON document to `path` (overwriting).
Status WriteBenchJson(const std::string& path,
                      const std::vector<BenchRecord>& records);

}  // namespace eve

#endif  // EVE_BENCH_UTIL_BENCH_JSON_H_
