// ASCII table/series rendering for the experiment harness.  Every bench
// binary prints the rows/series of its paper table or figure through these
// helpers so the outputs are uniform and diffable.

#ifndef EVE_BENCH_UTIL_TABLE_PRINTER_H_
#define EVE_BENCH_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace eve {

/// A simple fixed-width ASCII table.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds a row; must have as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Renders the table with a header underline.
  std::string Render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders an x/y series as an aligned two-column block plus a coarse ASCII
/// bar chart (for figure-style outputs).
std::string RenderSeries(const std::string& title,
                         const std::vector<std::string>& x_labels,
                         const std::vector<double>& y_values,
                         int bar_width = 40);

/// Prints a section banner.
std::string Banner(const std::string& title);

}  // namespace eve

#endif  // EVE_BENCH_UTIL_TABLE_PRINTER_H_
