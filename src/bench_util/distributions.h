// Enumeration of relation distributions across information sources
// (paper Table 2): the compositions of n relations into m ordered positive
// parts, e.g. n=6, m=2 -> (1,5), (2,4), (3,3), (4,2), (5,1).

#ifndef EVE_BENCH_UTIL_DISTRIBUTIONS_H_
#define EVE_BENCH_UTIL_DISTRIBUTIONS_H_

#include <string>
#include <vector>

namespace eve {

/// All ordered compositions of `total` into `parts` positive integers,
/// in lexicographic order (matches Table 2 row order).
std::vector<std::vector<int>> Compositions(int total, int parts);

/// "(1,5)" style label.
std::string DistributionLabel(const std::vector<int>& distribution);

/// Groups compositions by their sorted multiset, keyed by the sorted
/// ascending label, e.g. "(1,5)" covers (1,5) and (5,1) -- Experiment 3
/// groups cases this way.
struct DistributionGroup {
  std::string label;  ///< Sorted-ascending label, e.g. "1/5".
  std::vector<std::vector<int>> members;
};
std::vector<DistributionGroup> GroupedCompositions(int total, int parts);

}  // namespace eve

#endif  // EVE_BENCH_UTIL_DISTRIBUTIONS_H_
