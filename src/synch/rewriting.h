// Rewriting: one candidate replacement definition for an affected view,
// together with the provenance the QC-Model needs to score it (which
// relations were substituted via which PC edges, what was dropped, and the
// estimated extent relationship).

#ifndef EVE_SYNCH_REWRITING_H_
#define EVE_SYNCH_REWRITING_H_

#include <map>
#include <string>
#include <vector>

#include "catalog/names.h"
#include "esql/ast.h"
#include "misd/mkb.h"
#include "synch/extent_relationship.h"

namespace eve {

/// One relation substitution performed by the synchronizer.
struct ReplacementRecord {
  RelationId replaced;     ///< The relation that disappeared (or lost an attr).
  RelationId replacement;  ///< The substitute relation.
  /// View-level FROM names: which FROM item of the original view was
  /// replaced and under which name the substitute appears in the rewriting.
  /// Needed to disambiguate self-joins (one relation, several aliases).
  std::string replaced_from_name;
  std::string replacement_from_name;
  /// The (self-contained) PC edge that licensed the substitution, oriented
  /// replaced -> replacement.
  PcEdge edge;
  /// True when the substitution joined `replacement` into the view next to
  /// the surviving `replaced` relation (attribute-level substitution),
  /// false when it replaced the FROM item outright.
  bool joined_in = false;
};

/// A candidate rewriting of a view.
struct Rewriting {
  ViewDefinition definition;

  /// Estimated relationship of the new extent to the old one.
  ExtentRel extent_relation = ExtentRel::kUnknown;
  /// True when the relationship follows from exact PC knowledge.
  bool extent_exact = false;

  /// Substitutions performed (empty for pure-drop rewritings).
  std::vector<ReplacementRecord> replacements;
  /// Reference renames caused by change-attribute-name /
  /// change-relation-name.  Renames preserve the referenced information
  /// exactly, so the legality checker admits them without requiring the
  /// replaceable flags.  Keys/values are view-level references
  /// ("fromName.attr" / FROM names).
  std::map<RelAttr, RelAttr> renamed_attributes;
  std::map<std::string, std::string> renamed_relations;
  /// Output names of SELECT items dropped relative to the original view.
  std::vector<std::string> dropped_attributes;
  /// Rendered WHERE clauses dropped relative to the original view.
  std::vector<std::string> dropped_conditions;

  /// Strategy tag: "rename", "drop", "replace-relation", "join-in",
  /// "cvs-pair", optionally suffixed by "+drop".
  std::string strategy;
  /// Human-readable derivation notes.
  std::vector<std::string> notes;

  /// Compact description for reports.
  std::string Summary() const;
};

/// Result of synchronizing one view against one capability change.
struct SynchronizationResult {
  /// False when the view does not reference the changed capability (the
  /// rewritings vector is then empty and the view stays untouched).
  bool affected = false;
  /// Legal rewritings, unranked (the QC-Model orders them).  Empty with
  /// affected == true AND truncated == false means the view cannot be
  /// preserved (it is dead).
  std::vector<Rewriting> rewritings;
  /// True when a governed enumeration stopped early (candidate budget or
  /// deadline of the ExecContext): `rewritings` holds the legal best-so-far
  /// candidates -- the paper's quality/cost trade-off as a degradation
  /// mode, not an error.  An empty truncated result proves nothing about
  /// view death.
  bool truncated = false;
  /// Human-readable cause when truncated (e.g. the budget status message).
  std::string truncation_reason;
  /// Enumeration work: candidates derived and offered to the legality /
  /// dedup / cap sinks.  Delta pipeline only; the eager oracle reports 0.
  int64_t candidates_considered = 0;
};

}  // namespace eve

#endif  // EVE_SYNCH_REWRITING_H_
