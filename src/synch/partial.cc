#include "synch/partial.h"

#include <algorithm>

#include "common/str_util.h"

namespace eve {

namespace {

// Strategy tags joined with '+', deduplicated preserving first-seen order
// (identical to the eager pipeline's ToRewriting).
std::string JoinStrategies(const std::vector<std::string>& strategies) {
  std::vector<std::string> tags;
  for (const std::string& s : strategies) {
    if (std::find(tags.begin(), tags.end(), s) == tags.end()) tags.push_back(s);
  }
  return Join(tags, "+");
}

}  // namespace

ReplacementRecord CandidateReplacement::Materialize() const {
  ReplacementRecord record;
  record.replaced = replaced;
  record.replacement = replacement;
  record.replaced_from_name = replaced_from_name;
  record.replacement_from_name = replacement_from_name;
  record.edge = *edge;
  if (!reduced_map.empty()) record.edge.attribute_map = reduced_map;
  record.joined_in = joined_in;
  return record;
}

const ViewDefinition& RewriteCandidate::Definition() const {
  if (materialized_ == nullptr) {
    if (ops.empty()) {
      materialized_ = base;  // Identity candidate: share the base outright.
    } else {
      materialized_ = std::make_shared<const ViewDefinition>(base->Apply(ops));
    }
  }
  return *materialized_;
}

namespace {

// One materialization, bypassing the cache when it is cold so conversion
// never pays a second deep copy on top of Apply().
ViewDefinition MaterializeOnce(
    const std::shared_ptr<const ViewDefinition>& cached,
    const std::shared_ptr<const ViewDefinition>& base,
    std::span<const RewriteDelta> ops) {
  if (cached != nullptr) return *cached;
  if (ops.empty()) return *base;
  return base->Apply(ops);
}

}  // namespace

namespace {

std::vector<ReplacementRecord> MaterializeReplacements(
    const std::vector<CandidateReplacement>& replacements) {
  std::vector<ReplacementRecord> out;
  out.reserve(replacements.size());
  for (const CandidateReplacement& r : replacements) {
    out.push_back(r.Materialize());
  }
  return out;
}

}  // namespace

Rewriting RewriteCandidate::ToRewriting() const& {
  Rewriting out;
  out.definition = MaterializeOnce(materialized_, base, ops);
  out.extent_relation = extent_relation;
  out.extent_exact = extent_exact;
  out.replacements = MaterializeReplacements(replacements);
  out.renamed_attributes = renamed_attributes;
  out.renamed_relations = renamed_relations;
  out.dropped_attributes = dropped_attributes;
  out.dropped_conditions = dropped_conditions;
  out.notes = notes;
  out.strategy = JoinStrategies(strategies);
  return out;
}

Rewriting RewriteCandidate::ToRewriting() && {
  return std::move(*this).ToRewriting(MaterializeOnce(materialized_, base, ops));
}

Rewriting RewriteCandidate::ToRewriting(ViewDefinition definition) && {
  Rewriting out;
  out.definition = std::move(definition);
  out.extent_relation = extent_relation;
  out.extent_exact = extent_exact;
  out.replacements = MaterializeReplacements(replacements);
  out.renamed_attributes = std::move(renamed_attributes);
  out.renamed_relations = std::move(renamed_relations);
  out.dropped_attributes = std::move(dropped_attributes);
  out.dropped_conditions = std::move(dropped_conditions);
  out.notes = std::move(notes);
  out.strategy = JoinStrategies(strategies);
  return out;
}

}  // namespace eve
