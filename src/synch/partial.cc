#include "synch/partial.h"

#include <algorithm>

#include "common/str_util.h"

namespace eve {

namespace {

// Strategy tags joined with '+', deduplicated preserving first-seen order
// (identical to the eager pipeline's ToRewriting).
std::string JoinStrategies(const std::vector<std::string>& strategies) {
  std::vector<std::string> tags;
  for (const std::string& s : strategies) {
    if (std::find(tags.begin(), tags.end(), s) == tags.end()) tags.push_back(s);
  }
  return Join(tags, "+");
}

}  // namespace

NoteTemplate NoteTemplate::AttributeRenamed(std::string from, std::string to) {
  NoteTemplate n;
  n.kind = Kind::kAttributeRenamed;
  n.a = std::move(from);
  n.b = std::move(to);
  return n;
}

NoteTemplate NoteTemplate::RelationRenamed(RelationId old_id,
                                           std::string new_name) {
  NoteTemplate n;
  n.kind = Kind::kRelationRenamed;
  n.id = std::move(old_id);
  n.a = std::move(new_name);
  return n;
}

NoteTemplate NoteTemplate::DroppedAttributeRefs(std::string from_name,
                                                std::string attr) {
  NoteTemplate n;
  n.kind = Kind::kDroppedAttributeRefs;
  n.a = std::move(from_name);
  n.b = std::move(attr);
  return n;
}

NoteTemplate NoteTemplate::DroppedRelation(std::string from_name) {
  NoteTemplate n;
  n.kind = Kind::kDroppedRelation;
  n.a = std::move(from_name);
  return n;
}

NoteTemplate NoteTemplate::DroppedUnreferenced(std::string from_name) {
  NoteTemplate n;
  n.kind = Kind::kDroppedUnreferenced;
  n.a = std::move(from_name);
  return n;
}

NoteTemplate NoteTemplate::PcFragmentCondition(std::string new_name) {
  NoteTemplate n;
  n.kind = Kind::kPcFragmentCondition;
  n.a = std::move(new_name);
  return n;
}

NoteTemplate NoteTemplate::ReplacedRelation(const PcEdge* edge) {
  NoteTemplate n;
  n.kind = Kind::kReplacedRelation;
  n.edge = edge;
  return n;
}

NoteTemplate NoteTemplate::JoinInRecovered(std::string from_name,
                                           std::string attr, const PcEdge* edge,
                                           const JoinConstraint* jc) {
  NoteTemplate n;
  n.kind = Kind::kJoinInRecovered;
  n.a = std::move(from_name);
  n.b = std::move(attr);
  n.edge = edge;
  n.jc = jc;
  return n;
}

NoteTemplate NoteTemplate::CvsPairReplaced(std::string from_name,
                                           const PcEdge* e1, const PcEdge* e2) {
  NoteTemplate n;
  n.kind = Kind::kCvsPairReplaced;
  n.a = std::move(from_name);
  n.edge = e1;
  n.edge2 = e2;
  return n;
}

std::string NoteTemplate::Render() const {
  switch (kind) {
    case Kind::kAttributeRenamed:
      return "attribute " + a + " renamed to " + b;
    case Kind::kRelationRenamed:
      return "relation " + id.ToString() + " renamed to " + a;
    case Kind::kDroppedAttributeRefs:
      return "dropped references to deleted attribute " + a + "." + b;
    case Kind::kDroppedRelation:
      return "dropped deleted relation " + a;
    case Kind::kDroppedUnreferenced:
      return "dropped now-unreferenced relation " + a;
    case Kind::kPcFragmentCondition:
      return "added PC fragment condition on " + a;
    case Kind::kReplacedRelation:
      return "replaced " + edge->source.ToString() + " by " +
             edge->target.ToString();
    case Kind::kJoinInRecovered:
      return "recovered " + a + "." + b + " from " + edge->target.ToString() +
             " via " + jc->ToString();
    case Kind::kCvsPairReplaced:
      return "replaced " + a + " by join of " + edge->target.ToString() +
             " and " + edge2->target.ToString();
  }
  return {};
}

ReplacementRecord CandidateReplacement::Materialize() const {
  ReplacementRecord record;
  record.replaced = replaced;
  record.replacement = replacement;
  record.replaced_from_name = replaced_from_name;
  record.replacement_from_name = replacement_from_name;
  record.edge = *edge;
  if (!reduced_map.empty()) record.edge.attribute_map = reduced_map;
  record.joined_in = joined_in;
  return record;
}

const ViewDefinition& RewriteCandidate::Definition() const {
  if (materialized_ == nullptr) {
    if (ops.empty()) {
      materialized_ = base;  // Identity candidate: share the base outright.
    } else {
      materialized_ = std::make_shared<const ViewDefinition>(base->Apply(ops));
    }
  }
  return *materialized_;
}

namespace {

// One materialization, bypassing the cache when it is cold so conversion
// never pays a second deep copy on top of Apply().
ViewDefinition MaterializeOnce(
    const std::shared_ptr<const ViewDefinition>& cached,
    const std::shared_ptr<const ViewDefinition>& base,
    std::span<const RewriteDelta> ops) {
  if (cached != nullptr) return *cached;
  if (ops.empty()) return *base;
  return base->Apply(ops);
}

}  // namespace

namespace {

std::vector<ReplacementRecord> MaterializeReplacements(
    const std::vector<CandidateReplacement>& replacements) {
  std::vector<ReplacementRecord> out;
  out.reserve(replacements.size());
  for (const CandidateReplacement& r : replacements) {
    out.push_back(r.Materialize());
  }
  return out;
}

// Renders the surviving candidate's note templates; the only place note
// strings are ever built on the delta pipeline.
std::vector<std::string> RenderNotes(const std::vector<NoteTemplate>& notes) {
  std::vector<std::string> out;
  out.reserve(notes.size());
  for (const NoteTemplate& n : notes) out.push_back(n.Render());
  return out;
}

}  // namespace

Rewriting RewriteCandidate::ToRewriting() const& {
  Rewriting out;
  out.definition = MaterializeOnce(materialized_, base, ops);
  out.extent_relation = extent_relation;
  out.extent_exact = extent_exact;
  out.replacements = MaterializeReplacements(replacements);
  out.renamed_attributes = renamed_attributes;
  out.renamed_relations = renamed_relations;
  out.dropped_attributes = dropped_attributes;
  out.dropped_conditions = dropped_conditions;
  out.notes = RenderNotes(notes);
  out.strategy = JoinStrategies(strategies);
  return out;
}

Rewriting RewriteCandidate::ToRewriting() && {
  return std::move(*this).ToRewriting(MaterializeOnce(materialized_, base, ops));
}

Rewriting RewriteCandidate::ToRewriting(ViewDefinition definition) && {
  Rewriting out;
  out.definition = std::move(definition);
  out.extent_relation = extent_relation;
  out.extent_exact = extent_exact;
  out.replacements = MaterializeReplacements(replacements);
  out.renamed_attributes = std::move(renamed_attributes);
  out.renamed_relations = std::move(renamed_relations);
  out.dropped_attributes = std::move(dropped_attributes);
  out.dropped_conditions = std::move(dropped_conditions);
  out.notes = RenderNotes(notes);
  out.strategy = JoinStrategies(strategies);
  return out;
}

}  // namespace eve
