// LegalityChecker: decides whether a rewriting is a *legal* rewriting of an
// original view under its E-SQL evolution preferences (paper §3.3, §4).
//
// A rewriting is legal iff:
//   1. every indispensable (AD=false) SELECT item of the original view is
//      preserved -- either verbatim or, when AR=true, substituted through a
//      recorded replacement;
//   2. every indispensable (CD=false) WHERE clause is preserved -- verbatim
//      or, when CR=true, rewritten through a recorded replacement;
//   3. every indispensable (RD=false) FROM item is present -- verbatim or,
//      when RR=true, substituted;
//   4. the estimated extent relationship satisfies the view's VE parameter;
//   5. the rewriting is structurally valid (ViewDefinition::Validate).
//
// The synchronizer constructs rewritings that are legal by construction;
// the checker is the independent oracle used before results are returned
// and in property tests.

#ifndef EVE_SYNCH_LEGALITY_H_
#define EVE_SYNCH_LEGALITY_H_

#include <map>
#include <vector>

#include "common/status.h"
#include "esql/ast.h"
#include "esql/view_delta.h"
#include "synch/partial.h"
#include "synch/rewriting.h"

namespace eve {

/// The provenance a legality decision needs, detached from the rewriting's
/// materialized definition so the check can run over a (base, delta)
/// candidate before -- and instead of -- materialization.  All pointers are
/// non-owning and must outlive the call.
struct CandidateFacts {
  ExtentRel extent_relation = ExtentRel::kUnknown;
  const std::vector<CandidateReplacement>* replacements = nullptr;
  const std::map<RelAttr, RelAttr>* renamed_attributes = nullptr;
  const std::map<std::string, std::string>* renamed_relations = nullptr;
};

/// Returns OK iff the candidate described by (view, facts) is a legal
/// rewriting of `original`.  This is the single implementation; the
/// Rewriting overload wraps the materialized definition in an identity
/// overlay and delegates here.
Status CheckLegality(const ViewDefinition& original, const DeltaView& view,
                     const CandidateFacts& facts);

/// Returns OK iff `rewriting` is a legal rewriting of `original`.
/// On failure the status message names the violated requirement.
Status CheckLegality(const ViewDefinition& original, const Rewriting& rewriting);

}  // namespace eve

#endif  // EVE_SYNCH_LEGALITY_H_
