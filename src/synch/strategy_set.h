// StrategySet: the synchronizer's optional rewriting strategies as an
// enum-bitmask.  The rename and drop strategies are always available (they
// are the baseline semantics of the paper's SVS algorithm); the set governs
// the three discovery strategies that fan out through the MKB's PC closure.
//
// The policy layer (policy/policy.h) addresses cap decisions as per-pair
// strategy subsets, which is why this is a first-class value type instead
// of three independent bools.

#ifndef EVE_SYNCH_STRATEGY_SET_H_
#define EVE_SYNCH_STRATEGY_SET_H_

#include <cstdint>
#include <string>

namespace eve {

/// The optional rewriting strategies (paper §3.3; see synchronizer.h).
enum class Strategy : uint8_t {
  /// Whole-relation substitution through PC edges.
  kReplaceRelation = 1u << 0,
  /// Attribute recovery by joining a PC-related relation (needs a JC).
  kJoinIn = 1u << 1,
  /// Complex substitution replacing one relation by a two-way join.
  kCvsPair = 1u << 2,
};

/// A set of Strategy values.  Value type, order-independent, cheap to copy.
class StrategySet {
 public:
  constexpr StrategySet() = default;
  constexpr explicit StrategySet(Strategy s)
      : bits_(static_cast<uint8_t>(s)) {}

  /// Every strategy enabled (the seed default).
  static constexpr StrategySet All() {
    return StrategySet(static_cast<uint8_t>(Strategy::kReplaceRelation) |
                       static_cast<uint8_t>(Strategy::kJoinIn) |
                       static_cast<uint8_t>(Strategy::kCvsPair));
  }
  static constexpr StrategySet None() { return StrategySet(); }

  constexpr StrategySet With(Strategy s) const {
    return StrategySet(static_cast<uint8_t>(bits_ | static_cast<uint8_t>(s)));
  }
  constexpr StrategySet Without(Strategy s) const {
    return StrategySet(static_cast<uint8_t>(bits_ & ~static_cast<uint8_t>(s)));
  }
  constexpr bool Has(Strategy s) const {
    return (bits_ & static_cast<uint8_t>(s)) != 0;
  }
  constexpr bool empty() const { return bits_ == 0; }

  constexpr friend bool operator==(StrategySet a, StrategySet b) {
    return a.bits_ == b.bits_;
  }
  constexpr friend bool operator!=(StrategySet a, StrategySet b) {
    return a.bits_ != b.bits_;
  }

  /// "replace-relation|join-in|cvs-pair" in fixed order; "none" when empty.
  std::string ToString() const {
    if (empty()) return "none";
    std::string out;
    auto add = [&out](const char* name) {
      if (!out.empty()) out += '|';
      out += name;
    };
    if (Has(Strategy::kReplaceRelation)) add("replace-relation");
    if (Has(Strategy::kJoinIn)) add("join-in");
    if (Has(Strategy::kCvsPair)) add("cvs-pair");
    return out;
  }

 private:
  constexpr explicit StrategySet(uint8_t bits) : bits_(bits) {}
  uint8_t bits_ = 0;
};

}  // namespace eve

#endif  // EVE_SYNCH_STRATEGY_SET_H_
