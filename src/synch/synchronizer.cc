// Copy-on-write rewriting enumeration (the default pipeline).
//
// Candidates are (shared base, RewriteDelta op log) pairs -- see
// synch/partial.h -- so deriving a strategy candidate copies a handful of
// ops and provenance strings instead of the whole ViewDefinition, and
// candidates pruned by legality, structural deduplication, or the result
// cap are never materialized at all.  The legality check and the
// structural hash both run over the compiled DeltaView overlay.
//
// Every strategy mirrors the eager implementation
// (synchronizer_eager.cc) op for op: drops are recorded in descending
// component order, substitutions override items in place, and appended
// FROM items / conditions keep their append order, so the materialized
// survivors are byte-identical to the eager oracle's output (asserted by
// the corpus equivalence tests).

#include "synch/synchronizer.h"

#include <algorithm>
#include <optional>
#include <set>
#include <unordered_map>
#include <utility>

#include "common/fault_injection.h"
#include "common/str_util.h"
#include "synch/legality.h"
#include "synch/partial.h"

namespace eve {

namespace {

// A partially synchronized candidate: the (base, ops) candidate plus its
// compiled overlay.  The overlay borrows the op log's storage, so every
// copy/move re-Syncs it against the new owner's log (a pointer repoint --
// the op contents are identical).
struct Partial {
  RewriteCandidate cand;
  DeltaView view;

  explicit Partial(std::shared_ptr<const ViewDefinition> base) : view(*base) {
    cand.base = std::move(base);
  }

  Partial(const Partial& o) : cand(o.cand), view(o.view) {
    // Strategy derivation appends a handful of ops right after copying;
    // reserving once here avoids the variant-moving growth reallocations.
    cand.ops.reserve(cand.ops.size() + 8);
    view.Sync(cand.ops);
  }
  // Moves steal the op log's buffer, so the overlay's borrowed pointer
  // stays valid and no re-Sync is needed.
  Partial(Partial&&) noexcept = default;
  Partial& operator=(Partial&&) noexcept = default;
  Partial& operator=(const Partial& o) {
    cand = o.cand;
    view = o.view;
    view.Sync(cand.ops);
    return *this;
  }

  void Push(RewriteDelta d) {
    cand.ops.push_back(std::move(d));
    view.Sync(cand.ops);
  }

  // In-place op construction: payload-carrying ops are built directly in
  // the log slot (one item copy total, no variant move chain).  The op is
  // invisible to the overlay until Commit().
  RewriteDelta& StartOp(RewriteDelta::Kind kind, int32_t id) {
    cand.ops.push_back(RewriteDelta{kind, id, std::monostate{}});
    return cand.ops.back();
  }
  void Commit() { view.Sync(cand.ops); }

  void Compose(ExtentRel r, bool r_exact) { cand.Compose(r, r_exact); }
};

std::string FreshFromName(const DeltaView& view, const std::string& base) {
  if (view.FindFrom(base) == nullptr) return base;
  for (int i = 2;; ++i) {
    const std::string candidate = StrFormat("%s_%d", base.c_str(), i);
    if (view.FindFrom(candidate) == nullptr) return candidate;
  }
}

// References (SELECT items / WHERE clauses) of `from_name` within `view`,
// by stable delta id.  Ids are monotone in effective position, so ordering
// by id reproduces the eager pipeline's index ordering exactly.
struct References {
  std::vector<int32_t> select_ids;  ///< Items sourced from it.
  std::vector<int32_t> where_ids;   ///< Clauses touching it.
  std::set<std::string> attributes;  ///< Attribute names used.
};

References CollectReferences(const DeltaView& view,
                             const std::string& from_name) {
  References out;
  for (int i = 0; i < view.select_size(); ++i) {
    const SelectItem& s = view.select(i);
    if (s.source.relation == from_name) {
      out.select_ids.push_back(view.select_id(i));
      out.attributes.insert(s.source.attribute);
    }
  }
  for (int i = 0; i < view.where_size(); ++i) {
    const ConditionItem& c = view.where(i);
    if (c.clause.References(from_name)) {
      out.where_ids.push_back(view.where_id(i));
      for (const RelAttr& a : c.clause.Attributes()) {
        if (a.relation == from_name) out.attributes.insert(a.attribute);
      }
    }
  }
  return out;
}

// Removes the SELECT items / WHERE clauses with the given ids, recording
// drops in descending order (the eager pipeline erased from the back) and
// extent contributions.  A dropped local or join condition widens the
// extent (superset); a dropped SELECT item leaves the extent on the common
// attributes untouched.
void ApplyDrops(Partial* p, std::vector<int32_t> select_ids,
                std::vector<int32_t> where_ids) {
  std::sort(select_ids.rbegin(), select_ids.rend());
  for (const int32_t id : select_ids) {
    p->cand.dropped_attributes.push_back(p->view.select_by_id(id).name());
    p->Push(RewriteDelta::DropSelect(id));
  }
  std::sort(where_ids.rbegin(), where_ids.rend());
  for (const int32_t id : where_ids) {
    p->cand.dropped_conditions.push_back(
        p->view.where_by_id(id).clause.ToString());
    p->Push(RewriteDelta::DropCondition(id));
    p->Compose(ExtentRel::kSuperset, /*exact=*/true);
  }
}

// Live component ids, snapshotted so edit loops never re-walk a dirty
// overlay per access.
std::vector<int32_t> LiveSelectIds(const DeltaView& view) {
  std::vector<int32_t> ids(view.select_size());
  for (int i = 0; i < view.select_size(); ++i) ids[i] = view.select_id(i);
  return ids;
}

std::vector<int32_t> LiveWhereIds(const DeltaView& view) {
  std::vector<int32_t> ids(view.where_size());
  for (int i = 0; i < view.where_size(); ++i) ids[i] = view.where_id(i);
  return ids;
}

// Rewrites surviving references through `subst`: SELECT items found in the
// map get their exposed name pinned and their source swapped; every WHERE
// clause is substituted (a no-op substitution appends no op).  Mirrors the
// eager post-drop substitution loops.  Set ops never change liveness, so
// iterating by position while pushing is safe and Reindex-free.
void SubstituteAll(Partial* p, const std::map<RelAttr, RelAttr>& subst) {
  const int select_n = p->view.select_size();
  for (int i = 0; i < select_n; ++i) {
    const SelectItem& s = p->view.select(i);
    const auto it = subst.find(s.source);
    if (it == subst.end()) continue;
    // Copy before StartOp: an overlay reference may resolve into the op
    // log, which StartOp's push_back can reallocate.
    SelectItem ns = s;
    // Keep the exposed interface name stable across the substitution.
    if (ns.output_name.empty()) ns.output_name = ns.source.attribute;
    ns.source = it->second;
    RewriteDelta& op =
        p->StartOp(RewriteDelta::Kind::kSetSelect, p->view.select_id(i));
    op.payload.emplace<SelectItem>(std::move(ns));
    p->Commit();
  }
  const int where_n = p->view.where_size();
  for (int i = 0; i < where_n; ++i) {
    const ConditionItem& c = p->view.where(i);
    // Substitute only clauses that actually reference a substituted
    // attribute; untouched clauses stay shared with the base.
    const bool touched =
        subst.count(c.clause.lhs) > 0 ||
        (c.clause.rhs_is_attr() && subst.count(c.clause.rhs_attr()) > 0);
    if (!touched) continue;
    ConditionItem nc = c;  // Copy before StartOp (see above).
    nc.clause = nc.clause.Substitute(subst);
    RewriteDelta& op =
        p->StartOp(RewriteDelta::Kind::kSetCondition, p->view.where_id(i));
    op.payload.emplace<ConditionItem>(std::move(nc));
    p->Commit();
  }
}

}  // namespace

namespace {

// Enumeration output: the surviving partials with their compiled overlays,
// so consumers can materialize straight from the overlay (Synchronize) or
// strip it (SynchronizeCandidates).
struct PartialSet {
  bool affected = false;
  std::vector<Partial> partials;
  // Set when a governed enumeration stopped early (candidate budget or
  // deadline): `partials` holds the legal best-so-far candidates.
  bool truncated = false;
  std::string truncation_reason;
  int64_t candidates_considered = 0;
};

}  // namespace

class ViewSynchronizer::Impl {
 public:
  Impl(const MetaKnowledgeBase& mkb, const SynchronizerOptions& options,
       const ViewDefinition& view, const SchemaChange& change,
       const ExecContext& ctx)
      : mkb_(mkb),
        options_(options),
        original_(std::make_shared<const ViewDefinition>(view)),
        change_(change),
        ctx_(ctx) {}

  Result<PartialSet> Run() {
    EVE_FAULT_POINT("synch.run");
    PartialSet result;
    EVE_RETURN_IF_ERROR(original_->Validate());

    const RelationId& changed = ChangedRelation(change_);
    const std::vector<std::string> affected_names = AffectedFromNames(changed);

    if (std::holds_alternative<AddAttribute>(change_) ||
        std::holds_alternative<AddRelation>(change_)) {
      return result;  // Additions never invalidate existing views.
    }

    const DeltaView original_view(*original_);

    if (const auto* ra = std::get_if<RenameAttribute>(&change_)) {
      bool uses = false;
      for (const std::string& fn : affected_names) {
        const References refs = CollectReferences(original_view, fn);
        uses = uses || refs.attributes.count(ra->from) > 0;
      }
      if (!uses) return result;
      std::vector<Partial> partials;
      partials.push_back(RenameAttributeCandidate(*ra, affected_names));
      return Finish(/*affected=*/true, std::move(partials));
    }

    if (const auto* rr = std::get_if<RenameRelation>(&change_)) {
      if (affected_names.empty()) return result;
      std::vector<Partial> partials;
      partials.push_back(RenameRelationCandidate(*rr, affected_names));
      return Finish(/*affected=*/true, std::move(partials));
    }

    std::optional<std::string> deleted_attr;
    if (const auto* da = std::get_if<DeleteAttribute>(&change_)) {
      deleted_attr = da->attribute;
    }

    // delete-attribute / delete-relation: fold strategies over the affected
    // FROM items.
    std::vector<std::string> to_fix;
    for (const std::string& fn : affected_names) {
      if (deleted_attr.has_value()) {
        const References refs = CollectReferences(original_view, fn);
        if (refs.attributes.count(*deleted_attr) > 0) to_fix.push_back(fn);
      } else {
        to_fix.push_back(fn);
      }
    }
    if (to_fix.empty()) return result;

    std::vector<Partial> partials;
    partials.emplace_back(original_);
    const size_t rounds = to_fix.size();
    for (size_t fi = 0; fi < rounds && !partials.empty(); ++fi) {
      // Governance: a budget/deadline stop mid-fold abandons the remaining
      // rounds; Finish() then reports whatever was fully resolved so far
      // (unresolved partials fail legality or are dropped) with the
      // truncated flag set.  A hard error (cancellation, injected fault)
      // propagates from Finish() instead.
      if (StopRequested()) break;
      // The last fold round streams straight into the legality / dedup /
      // cap sink (unless drop-subset enumeration still needs the full
      // candidate set): enumeration stops the moment the cap is full.
      if (fi + 1 == rounds && !options_.enumerate_drop_subsets) {
        FinishSink sink(*this);
        for (const Partial& p : partials) {
          if (sink.full()) break;
          ResolveItem(p, to_fix[fi], deleted_attr, &sink);
        }
        EVE_RETURN_IF_ERROR(hard_error_);
        result.affected = true;
        result.partials = sink.Take();
        result.truncated = truncated_;
        result.truncation_reason = truncation_reason_;
        result.candidates_considered = considered_;
        return result;
      }
      std::vector<Partial> next;
      CollectSink collect{this, &next};
      for (const Partial& p : partials) {
        if (collect.full()) break;
        ResolveItem(p, to_fix[fi], deleted_attr, &collect);
      }
      partials = std::move(next);
    }
    if (options_.enumerate_drop_subsets) EnumerateDropSubsets(&partials);
    return Finish(/*affected=*/true, std::move(partials));
  }

 private:
  // ---------------------------------------------------------------------
  // Affectedness & renames
  // ---------------------------------------------------------------------

  std::vector<std::string> AffectedFromNames(const RelationId& changed) const {
    std::vector<std::string> out;
    for (const FromItem& f : original_->from_items) {
      if (f.relation != changed.relation) continue;
      if (!f.site.empty() && f.site != changed.site) continue;
      out.push_back(f.name());
    }
    return out;
  }

  Partial RenameAttributeCandidate(
      const RenameAttribute& ra,
      const std::vector<std::string>& from_names) const {
    Partial p(original_);
    std::map<RelAttr, RelAttr> subst;
    for (const std::string& fn : from_names) {
      subst[RelAttr{fn, ra.from}] = RelAttr{fn, ra.to};
    }
    SubstituteAll(&p, subst);
    p.cand.strategies.push_back("rename");
    p.cand.notes.push_back(NoteTemplate::AttributeRenamed(ra.from, ra.to));
    p.cand.renamed_attributes = std::move(subst);
    return p;
  }

  Partial RenameRelationCandidate(
      const RenameRelation& rr,
      const std::vector<std::string>& from_names) const {
    Partial p(original_);
    std::map<std::string, std::string> rel_map;
    for (int i = 0; i < p.view.from_size(); ++i) {
      const FromItem& f = p.view.from(i);
      if (f.relation != rr.relation.relation) continue;
      if (!f.site.empty() && f.site != rr.relation.site) continue;
      const std::string old_name = f.name();
      // Copy before StartOp: an overlay reference may resolve into the op
      // log, which StartOp's push_back can reallocate.
      FromItem nf = f;
      nf.relation = rr.new_name;
      if (f.alias.empty()) rel_map[old_name] = rr.new_name;
      RewriteDelta& op =
          p.StartOp(RewriteDelta::Kind::kReplaceFrom, p.view.from_id(i));
      op.payload.emplace<FromItem>(std::move(nf));
      p.Commit();
    }
    for (const int32_t id : LiveSelectIds(p.view)) {
      const SelectItem& s = p.view.select_by_id(id);
      const auto it = rel_map.find(s.source.relation);
      if (it == rel_map.end()) continue;
      SelectItem ns = s;  // Copy before StartOp (see above).
      ns.source.relation = it->second;
      RewriteDelta& op = p.StartOp(RewriteDelta::Kind::kSetSelect, id);
      op.payload.emplace<SelectItem>(std::move(ns));
      p.Commit();
    }
    for (const int32_t id : LiveWhereIds(p.view)) {
      const ConditionItem& c = p.view.where_by_id(id);
      PrimitiveClause renamed = c.clause.RenameRelations(rel_map);
      if (renamed == c.clause) continue;
      ConditionItem nc = c;  // Copy before StartOp (see above).
      nc.clause = std::move(renamed);
      RewriteDelta& op = p.StartOp(RewriteDelta::Kind::kSetCondition, id);
      op.payload.emplace<ConditionItem>(std::move(nc));
      p.Commit();
    }
    (void)from_names;
    p.cand.strategies.push_back("rename");
    p.cand.notes.push_back(
        NoteTemplate::RelationRenamed(rr.relation, rr.new_name));
    p.cand.renamed_relations = std::move(rel_map);
    return p;
  }

  // ---------------------------------------------------------------------
  // Per-item resolution
  // ---------------------------------------------------------------------

  template <typename Sink>
  void ResolveItem(const Partial& base, const std::string& from_name,
                   const std::optional<std::string>& attr, Sink* out) const {
    auto append = [out](std::optional<Partial> p) {
      if (p.has_value()) out->Offer(std::move(*p));
    };

    // Collected once per (partial, FROM item); every strategy below reads
    // the same reference set instead of re-scanning the overlay.
    const References refs = CollectReferences(base.view, from_name);

    if (attr.has_value()) {
      append(DropStrategyForAttribute(base, from_name, *attr));
      if (options_.strategies.Has(Strategy::kJoinIn) && !out->full()) {
        JoinInStrategies(base, from_name, *attr, out);
      }
    } else {
      append(DropStrategyForRelation(base, from_name, refs));
    }
    if (options_.strategies.Has(Strategy::kReplaceRelation) && !out->full()) {
      ReplaceRelationStrategies(base, from_name, out);
    }
    if (options_.strategies.Has(Strategy::kCvsPair) && !out->full()) {
      CvsPairStrategies(base, from_name, refs, out);
    }
  }

  // --- Drop strategies ---------------------------------------------------

  // delete-attribute: drop exactly the references to from_name.attr.  All
  // eligibility checks run over the parent's overlay; the child candidate
  // is only derived once the strategy is known to apply.
  std::optional<Partial> DropStrategyForAttribute(const Partial& base,
                                                  const std::string& from_name,
                                                  const std::string& attr) const {
    const DeltaView& v = base.view;
    std::vector<int32_t> sel;
    std::vector<int32_t> whe;
    const RelAttr target{from_name, attr};
    for (int i = 0; i < v.select_size(); ++i) {
      const SelectItem& s = v.select(i);
      if (s.source == target) {
        if (!s.dispensable) return std::nullopt;
        sel.push_back(v.select_id(i));
      }
    }
    for (int i = 0; i < v.where_size(); ++i) {
      const ConditionItem& c = v.where(i);
      bool touches = false;
      for (const RelAttr& a : c.clause.Attributes()) {
        if (a == target) touches = true;
      }
      if (touches) {
        if (!c.dispensable) return std::nullopt;
        whe.push_back(v.where_id(i));
      }
    }
    if (sel.empty() && whe.empty()) return std::nullopt;
    if (sel.size() >= static_cast<size_t>(v.select_size())) {
      return std::nullopt;  // Would drop every output attribute.
    }
    Partial p = base;
    ApplyDrops(&p, std::move(sel), std::move(whe));
    MaybeDropUnusedFrom(&p, from_name);
    p.cand.strategies.push_back("drop");
    p.cand.notes.push_back(
        NoteTemplate::DroppedAttributeRefs(from_name, attr));
    return p;
  }

  // delete-relation: drop the FROM item with everything it feeds.
  std::optional<Partial> DropStrategyForRelation(
      const Partial& base, const std::string& from_name,
      const References& refs) const {
    const DeltaView& v = base.view;
    const FromItem* item = v.FindFrom(from_name);
    if (item == nullptr || !item->dispensable) return std::nullopt;
    for (const int32_t id : refs.select_ids) {
      if (!v.select_by_id(id).dispensable) return std::nullopt;
    }
    for (const int32_t id : refs.where_ids) {
      if (!v.where_by_id(id).dispensable) return std::nullopt;
    }
    if (refs.select_ids.size() >= static_cast<size_t>(v.select_size())) {
      return std::nullopt;  // Would drop every output attribute.
    }
    if (v.from_size() <= 1) return std::nullopt;
    Partial p = base;
    ApplyDrops(&p, refs.select_ids, refs.where_ids);
    p.Push(RewriteDelta::DropFrom(FromIdOf(p.view, from_name)));
    // Removing a (joined) relation widens the extent on common attributes.
    p.Compose(ExtentRel::kSuperset, /*exact=*/true);
    p.cand.strategies.push_back("drop");
    p.cand.notes.push_back(NoteTemplate::DroppedRelation(from_name));
    return p;
  }

  static int32_t FromIdOf(const DeltaView& view, const std::string& name) {
    for (int i = 0; i < view.from_size(); ++i) {
      if (view.from(i).name() == name) return view.from_id(i);
    }
    return -1;
  }

  // Drops the FROM item if nothing references it anymore and it is
  // dispensable; a dangling dispensable relation only multiplies tuples.
  void MaybeDropUnusedFrom(Partial* p, const std::string& from_name) const {
    if (p->view.RelationIsUsed(from_name)) return;
    const FromItem* item = p->view.FindFrom(from_name);
    if (item == nullptr || !item->dispensable) return;
    if (p->view.from_size() <= 1) return;
    p->Push(RewriteDelta::DropFrom(FromIdOf(p->view, from_name)));
    p->cand.notes.push_back(NoteTemplate::DroppedUnreferenced(from_name));
    p->Compose(ExtentRel::kSuperset, /*exact=*/true);
  }

  // --- Whole-relation replacement -----------------------------------------

  Result<RelationId> ResolveFromId(const FromItem& item) const {
    if (!item.site.empty()) return RelationId{item.site, item.relation};
    return mkb_.ResolveName(item.relation);
  }

  template <typename Sink>
  void ReplaceRelationStrategies(const Partial& base,
                                 const std::string& from_name,
                                 Sink* out) const {
    const FromItem* item = base.view.FindFrom(from_name);
    if (item == nullptr || !item->replaceable) return;
    const auto id = ResolveFromId(*item);
    if (!id.ok()) return;
    const std::vector<PcEdge>* edges = TransitiveEdges(id.value());
    if (edges == nullptr) return;
    for (const PcEdge& edge : *edges) {
      if (out->full()) return;
      if (edge.target == ChangedRelation(change_)) continue;
      auto p = TryReplaceRelation(base, from_name, edge);
      if (p.has_value()) out->Offer(std::move(*p));
    }
  }

  std::optional<Partial> TryReplaceRelation(const Partial& base,
                                            const std::string& from_name,
                                            const PcEdge& edge) const {
    const DeltaView& v = base.view;
    const std::string new_name = FreshFromName(v, edge.target.relation);

    // Map / drop SELECT items sourced from the replaced relation.
    std::map<RelAttr, RelAttr> subst;
    std::vector<int32_t> dropped_sel;
    bool anything_mapped = false;
    for (int i = 0; i < v.select_size(); ++i) {
      const SelectItem& s = v.select(i);
      if (s.source.relation != from_name) continue;
      const auto mapped = edge.attribute_map.find(s.source.attribute);
      if (mapped != edge.attribute_map.end() && s.replaceable) {
        subst[s.source] = RelAttr{new_name, mapped->second};
        anything_mapped = true;
      } else if (s.dispensable) {
        dropped_sel.push_back(v.select_id(i));
      } else {
        return std::nullopt;  // Indispensable and not substitutable.
      }
    }

    // Map / drop WHERE clauses touching the replaced relation.
    std::vector<int32_t> dropped_whe;
    for (int i = 0; i < v.where_size(); ++i) {
      const ConditionItem& c = v.where(i);
      if (!c.clause.References(from_name)) continue;
      bool mappable = c.replaceable;
      for (const RelAttr& a : c.clause.Attributes()) {
        if (a.relation == from_name &&
            edge.attribute_map.count(a.attribute) == 0) {
          mappable = false;
        }
      }
      if (mappable) {
        for (const RelAttr& a : c.clause.Attributes()) {
          if (a.relation == from_name) {
            subst[a] = RelAttr{new_name, edge.attribute_map.at(a.attribute)};
          }
        }
        anything_mapped = true;
      } else if (c.dispensable) {
        dropped_whe.push_back(v.where_id(i));
      } else {
        return std::nullopt;
      }
    }
    if (!anything_mapped) return std::nullopt;  // Degenerate: plain drop.

    Partial p = base;
    ApplyDrops(&p, std::move(dropped_sel), std::move(dropped_whe));
    // Rewrite surviving references.
    SubstituteAll(&p, subst);

    // Swap the FROM item (position preserved).
    {
      const int32_t fid = FromIdOf(p.view, from_name);
      // Copy before StartOp: the overlay read may resolve into the op
      // log, which StartOp's push_back can reallocate.
      FromItem nf = p.view.from_by_id(fid);
      nf.site = edge.target.site;
      nf.relation = edge.target.relation;
      nf.alias = new_name == edge.target.relation ? "" : new_name;
      RewriteDelta& op = p.StartOp(RewriteDelta::Kind::kReplaceFrom, fid);
      op.payload.emplace<FromItem>(std::move(nf));
      p.Commit();
    }

    // Optionally pin the replacement to the constrained fragment.
    const bool target_selected = !edge.target_selection.IsTrue();
    bool applied_selection = false;
    if (target_selected && options_.apply_target_selection) {
      const std::map<std::string, std::string> rel_map{
          {edge.target.relation, new_name}};
      const Conjunction renamed = edge.target_selection.RenameRelations(rel_map);
      for (const PrimitiveClause& clause : renamed.clauses()) {
        RewriteDelta& op = p.StartOp(RewriteDelta::Kind::kAddCondition, -1);
        op.payload.emplace<ConditionItem>().clause = clause;
        p.Commit();
      }
      applied_selection = true;
      p.cand.notes.push_back(NoteTemplate::PcFragmentCondition(new_name));
    }

    p.Compose(ReplacementExtentRel(edge, applied_selection),
              ReplacementExtentExact(edge, applied_selection));

    CandidateReplacement record;
    record.replaced = edge.source;
    record.replacement = edge.target;
    record.replaced_from_name = from_name;
    record.replacement_from_name = new_name;
    record.edge = &edge;
    record.joined_in = false;
    p.cand.replacements.push_back(std::move(record));
    p.cand.strategies.push_back("replace-relation");
    p.cand.notes.push_back(NoteTemplate::ReplacedRelation(&edge));
    return p;
  }

  // Extent relationship of a whole-relation replacement (see Fig. 9/10).
  static ExtentRel ReplacementExtentRel(const PcEdge& edge,
                                        bool applied_selection) {
    const bool src_sel = !edge.source_selection.IsTrue();
    const bool dst_sel = !edge.target_selection.IsTrue();
    if (src_sel) return ExtentRel::kUnknown;  // Only a fragment of R is known.
    if (edge.type == PcRelationType::kIncomparable) return ExtentRel::kUnknown;
    // R (whole) relates to the target fragment per the edge type.
    if (!dst_sel || applied_selection) {
      switch (edge.type) {
        case PcRelationType::kSubset:
          return ExtentRel::kSuperset;  // New view uses a bigger relation.
        case PcRelationType::kEquivalent:
          return ExtentRel::kEqual;
        case PcRelationType::kSuperset:
          return ExtentRel::kSubset;
        case PcRelationType::kIncomparable:
          return ExtentRel::kUnknown;
      }
    }
    // Target fragment selected but the view uses all of R2: R rel sigma(R2)
    // and sigma(R2) subseteq R2.
    switch (edge.type) {
      case PcRelationType::kSubset:
      case PcRelationType::kEquivalent:
        return ExtentRel::kSuperset;
      case PcRelationType::kSuperset:
      case PcRelationType::kIncomparable:
        return ExtentRel::kUnknown;
    }
    return ExtentRel::kUnknown;
  }

  static bool ReplacementExtentExact(const PcEdge& edge, bool applied_selection) {
    if (edge.type == PcRelationType::kIncomparable) return false;
    const bool src_sel = !edge.source_selection.IsTrue();
    if (src_sel) return false;
    const bool dst_sel = !edge.target_selection.IsTrue();
    if (!dst_sel || applied_selection) return true;
    return edge.type != PcRelationType::kSuperset;
  }

  // --- Join-in replacement (attribute-level) -------------------------------

  template <typename Sink>
  void JoinInStrategies(const Partial& base, const std::string& from_name,
                        const std::string& attr, Sink* out) const {
    const FromItem* item = base.view.FindFrom(from_name);
    if (item == nullptr) return;
    const auto id = ResolveFromId(*item);
    if (!id.ok()) return;

    // Every SELECT item losing the attribute must be replaceable; clauses
    // must be replaceable or dispensable (checked in TryJoinIn).
    const std::vector<PcEdge>* edges = TransitiveEdges(id.value());
    if (edges == nullptr) return;
    for (const PcEdge& edge : *edges) {
      if (out->full()) return;
      if (edge.attribute_map.count(attr) == 0) continue;
      if (edge.target == id.value()) continue;
      const auto jcs = mkb_.FindJoinConstraints(id.value(), edge.target);
      for (const JoinConstraint* jc : jcs) {
        if (out->full()) return;
        auto p = TryJoinIn(base, from_name, attr, edge, *jc);
        if (p.has_value()) out->Offer(std::move(*p));
      }
    }
  }

  std::optional<Partial> TryJoinIn(const Partial& base,
                                   const std::string& from_name,
                                   const std::string& attr, const PcEdge& edge,
                                   const JoinConstraint& jc) const {
    // The join constraint must not itself use the deleted attribute.
    for (const RelAttr& a : jc.condition.Attributes()) {
      if (a.relation == edge.source.relation && a.attribute == attr) {
        return std::nullopt;
      }
    }
    const DeltaView& v = base.view;
    const std::string new_name = FreshFromName(v, edge.target.relation);
    const RelAttr lost{from_name, attr};
    const RelAttr found{new_name, edge.attribute_map.at(attr)};

    // Planned edits, applied only once the whole scan has succeeded.
    std::vector<std::pair<int32_t, SelectItem>> set_sel;
    std::vector<std::pair<int32_t, ConditionItem>> set_whe;
    std::vector<int32_t> dropped_whe;

    bool anything = false;
    for (int i = 0; i < v.select_size(); ++i) {
      const SelectItem& s = v.select(i);
      if (s.source == lost) {
        if (!s.replaceable) return std::nullopt;
        SelectItem ns = s;
        if (ns.output_name.empty()) ns.output_name = ns.source.attribute;
        ns.source = found;
        set_sel.emplace_back(v.select_id(i), std::move(ns));
        anything = true;
      }
    }
    const std::map<RelAttr, RelAttr> subst{{lost, found}};
    for (int i = 0; i < v.where_size(); ++i) {
      const ConditionItem& c = v.where(i);
      bool touches = false;
      for (const RelAttr& a : c.clause.Attributes()) {
        if (a == lost) touches = true;
      }
      if (!touches) continue;
      if (c.replaceable) {
        ConditionItem nc = c;
        nc.clause = nc.clause.Substitute(subst);
        set_whe.emplace_back(v.where_id(i), std::move(nc));
        anything = true;
      } else if (c.dispensable) {
        dropped_whe.push_back(v.where_id(i));
      } else {
        return std::nullopt;
      }
    }
    if (!anything) return std::nullopt;

    Partial p = base;
    for (auto& [sid, item] : set_sel) {
      RewriteDelta& op = p.StartOp(RewriteDelta::Kind::kSetSelect, sid);
      op.payload.emplace<SelectItem>(std::move(item));
      p.Commit();
    }
    for (auto& [wid, item] : set_whe) {
      RewriteDelta& op = p.StartOp(RewriteDelta::Kind::kSetCondition, wid);
      op.payload.emplace<ConditionItem>(std::move(item));
      p.Commit();
    }
    ApplyDrops(&p, {}, std::move(dropped_whe));

    // Join the auxiliary relation in via the JC.
    {
      RewriteDelta& op = p.StartOp(RewriteDelta::Kind::kAddFrom, -1);
      FromItem& aux = op.payload.emplace<FromItem>();
      aux.site = edge.target.site;
      aux.relation = edge.target.relation;
      aux.alias = new_name == edge.target.relation ? "" : new_name;
      aux.dispensable = false;
      aux.replaceable = true;
      p.Commit();
    }

    const std::map<std::string, std::string> rel_map{
        {edge.source.relation, from_name}, {edge.target.relation, new_name}};
    const Conjunction renamed_jc = jc.condition.RenameRelations(rel_map);
    for (const PrimitiveClause& clause : renamed_jc.clauses()) {
      RewriteDelta& op = p.StartOp(RewriteDelta::Kind::kAddCondition, -1);
      ConditionItem& ci = op.payload.emplace<ConditionItem>();
      ci.clause = clause;
      ci.replaceable = true;
      p.Commit();
    }

    // Extent estimate: with the lost fragment contained in the target
    // fragment, every surviving tuple recovers its attribute -> equal (but
    // inexact, as value-level agreement rests on the JC being key-based).
    switch (edge.type) {
      case PcRelationType::kSubset:
      case PcRelationType::kEquivalent:
        p.Compose(ExtentRel::kEqual, /*exact=*/false);
        break;
      case PcRelationType::kSuperset:
        p.Compose(ExtentRel::kSubset, /*exact=*/false);
        break;
      case PcRelationType::kIncomparable:
        p.Compose(ExtentRel::kUnknown, /*exact=*/false);
        break;
    }

    CandidateReplacement record;
    record.replaced = edge.source;
    record.replacement = edge.target;
    record.replaced_from_name = from_name;
    record.replacement_from_name = new_name;
    record.edge = &edge;
    record.joined_in = true;
    p.cand.replacements.push_back(std::move(record));
    p.cand.strategies.push_back("join-in");
    p.cand.notes.push_back(
        NoteTemplate::JoinInRecovered(from_name, attr, &edge, &jc));
    return p;
  }

  // --- Complex (CVS-style) pair substitution -------------------------------

  template <typename Sink>
  void CvsPairStrategies(const Partial& base, const std::string& from_name,
                         const References& refs, Sink* out) const {
    const FromItem* item = base.view.FindFrom(from_name);
    if (item == nullptr || !item->replaceable) return;
    const auto id = ResolveFromId(*item);
    if (!id.ok()) return;
    const std::vector<PcEdge>* edges_ptr = TransitiveEdges(id.value());
    if (edges_ptr == nullptr) return;
    const std::vector<PcEdge>& edges = *edges_ptr;

    // Per-edge coverage of the referenced attributes as bitsets, so the
    // quadratic pair loop rejects non-viable pairs (TryCvsPair's
    // used1/used2-empty cases) before any JC lookup or candidate
    // derivation.  Views referencing more than 64 attributes of one FROM
    // item skip the precheck and fall back to per-pair evaluation.
    const bool precheck = refs.attributes.size() <= 64;
    std::vector<uint64_t> covered;
    if (precheck) {
      covered.resize(edges.size(), 0);
      for (size_t i = 0; i < edges.size(); ++i) {
        uint64_t bits = 0;
        uint64_t bit = 1;
        for (const std::string& a : refs.attributes) {
          if (edges[i].attribute_map.count(a) > 0) bits |= bit;
          bit <<= 1;
        }
        covered[i] = bits;
      }
    }

    for (size_t i = 0; i < edges.size(); ++i) {
      for (size_t j = 0; j < edges.size(); ++j) {
        if (out->full()) return;
        if (i == j) continue;
        const PcEdge& e1 = edges[i];
        const PcEdge& e2 = edges[j];
        if (e1.target == e2.target) continue;
        if (precheck) {
          // used1 = referenced attrs e1 maps; used2 = referenced attrs
          // only e2 maps (merged prefers e1).  Either empty means
          // TryCvsPair returns nullopt for every JC -- skip the pair.
          const uint64_t used1 = covered[i];
          const uint64_t used2 = covered[j] & ~covered[i];
          if (used1 == 0 || used2 == 0) continue;
        }
        if (e1.target == ChangedRelation(change_) ||
            e2.target == ChangedRelation(change_)) {
          continue;
        }
        const auto jcs = mkb_.FindJoinConstraints(e1.target, e2.target);
        for (const JoinConstraint* jc : jcs) {
          if (out->full()) return;
          auto p = TryCvsPair(base, from_name, refs, e1, e2, *jc);
          if (p.has_value()) out->Offer(std::move(*p));
        }
      }
    }
  }

  std::optional<Partial> TryCvsPair(const Partial& base,
                                    const std::string& from_name,
                                    const References& refs, const PcEdge& e1,
                                    const PcEdge& e2,
                                    const JoinConstraint& jc) const {
    const DeltaView& v = base.view;
    const std::string name1 = FreshFromName(v, e1.target.relation);
    // Reserve name1 before computing name2 (relations could share names
    // only across sites; FreshFromName needs the updated def, so fake it).
    const std::string name2 =
        e2.target.relation == name1
            ? FreshFromName(v, e2.target.relation + "_b")
            : FreshFromName(v, e2.target.relation);

    // Per-attribute target choice: prefer e1, fall back to e2.  The records
    // carry reduced maps so the legality oracle sees a consistent picture.
    std::map<std::string, RelAttr> merged;
    std::map<std::string, std::string> used1;
    std::map<std::string, std::string> used2;
    for (const std::string& a : refs.attributes) {
      if (const auto it = e1.attribute_map.find(a); it != e1.attribute_map.end()) {
        merged[a] = RelAttr{name1, it->second};
        used1[a] = it->second;
      } else if (const auto it2 = e2.attribute_map.find(a);
                 it2 != e2.attribute_map.end()) {
        merged[a] = RelAttr{name2, it2->second};
        used2[a] = it2->second;
      }
    }
    if (used1.empty() || used2.empty()) {
      return std::nullopt;  // One relation suffices: not a pair substitution.
    }

    std::map<RelAttr, RelAttr> subst;
    std::vector<int32_t> dropped_sel;
    for (int i = 0; i < v.select_size(); ++i) {
      const SelectItem& s = v.select(i);
      if (s.source.relation != from_name) continue;
      const auto it = merged.find(s.source.attribute);
      if (it != merged.end() && s.replaceable) {
        subst[s.source] = it->second;
      } else if (s.dispensable) {
        dropped_sel.push_back(v.select_id(i));
      } else {
        return std::nullopt;
      }
    }
    std::vector<int32_t> dropped_whe;
    for (int i = 0; i < v.where_size(); ++i) {
      const ConditionItem& c = v.where(i);
      if (!c.clause.References(from_name)) continue;
      bool mappable = c.replaceable;
      for (const RelAttr& a : c.clause.Attributes()) {
        if (a.relation == from_name && merged.count(a.attribute) == 0) {
          mappable = false;
        }
      }
      if (mappable) {
        for (const RelAttr& a : c.clause.Attributes()) {
          if (a.relation == from_name) subst[a] = merged.at(a.attribute);
        }
      } else if (c.dispensable) {
        dropped_whe.push_back(v.where_id(i));
      } else {
        return std::nullopt;
      }
    }

    Partial p = base;
    ApplyDrops(&p, std::move(dropped_sel), std::move(dropped_whe));
    SubstituteAll(&p, subst);

    // Replace the FROM item by the first target; append the second.
    {
      const int32_t fid = FromIdOf(p.view, from_name);
      FromItem nf = p.view.from_by_id(fid);  // Copy before StartOp.
      nf.site = e1.target.site;
      nf.relation = e1.target.relation;
      nf.alias = name1 == e1.target.relation ? "" : name1;
      RewriteDelta& op = p.StartOp(RewriteDelta::Kind::kReplaceFrom, fid);
      op.payload.emplace<FromItem>(std::move(nf));
      p.Commit();
    }
    {
      RewriteDelta& op = p.StartOp(RewriteDelta::Kind::kAddFrom, -1);
      FromItem& second = op.payload.emplace<FromItem>();
      second.site = e2.target.site;
      second.relation = e2.target.relation;
      second.alias = name2 == e2.target.relation ? "" : name2;
      second.replaceable = true;
      p.Commit();
    }

    const std::map<std::string, std::string> rel_map{
        {e1.target.relation, name1}, {e2.target.relation, name2}};
    const Conjunction renamed_jc = jc.condition.RenameRelations(rel_map);
    for (const PrimitiveClause& clause : renamed_jc.clauses()) {
      RewriteDelta& op = p.StartOp(RewriteDelta::Kind::kAddCondition, -1);
      ConditionItem& ci = op.payload.emplace<ConditionItem>();
      ci.clause = clause;
      ci.replaceable = true;
      p.Commit();
    }

    const bool both_equivalent = e1.type == PcRelationType::kEquivalent &&
                                 e2.type == PcRelationType::kEquivalent &&
                                 e1.source_selection.IsTrue() &&
                                 e2.source_selection.IsTrue() &&
                                 e1.target_selection.IsTrue() &&
                                 e2.target_selection.IsTrue();
    p.Compose(both_equivalent ? ExtentRel::kEqual : ExtentRel::kUnknown,
              /*exact=*/false);

    for (const auto& [edge, used, nm] :
         {std::tuple<const PcEdge*, std::map<std::string, std::string>*,
                     const std::string*>{&e1, &used1, &name1},
          {&e2, &used2, &name2}}) {
      CandidateReplacement record;
      record.replaced = edge->source;
      record.replacement = edge->target;
      record.replaced_from_name = from_name;
      record.replacement_from_name = *nm;
      record.edge = edge;
      record.reduced_map = std::move(*used);
      record.joined_in = false;
      p.cand.replacements.push_back(std::move(record));
    }
    p.cand.strategies.push_back("cvs-pair");
    p.cand.notes.push_back(NoteTemplate::CvsPairReplaced(from_name, &e1, &e2));
    return p;
  }

  // --- Post-processing ------------------------------------------------------

  void EnumerateDropSubsets(std::vector<Partial>* partials) const {
    std::vector<Partial> extra;
    for (const Partial& p : *partials) {
      std::vector<int32_t> droppable;
      for (int i = 0; i < p.view.select_size(); ++i) {
        if (p.view.select(i).dispensable) {
          droppable.push_back(p.view.select_id(i));
        }
      }
      const int n = static_cast<int>(droppable.size());
      if (n == 0 || n > 10) continue;
      const size_t select_count = static_cast<size_t>(p.view.select_size());
      for (int mask = 1; mask < (1 << n); ++mask) {
        std::vector<int32_t> to_drop;
        for (int b = 0; b < n; ++b) {
          if (mask & (1 << b)) to_drop.push_back(droppable[b]);
        }
        if (to_drop.size() >= select_count) continue;
        std::sort(to_drop.rbegin(), to_drop.rend());
        Partial variant = p;
        for (const int32_t id : to_drop) {
          variant.cand.dropped_attributes.push_back(
              variant.view.select_by_id(id).name());
          variant.Push(RewriteDelta::DropSelect(id));
        }
        variant.cand.strategies.push_back("drop-subset");
        extra.push_back(std::move(variant));
      }
    }
    partials->insert(partials->end(), std::make_move_iterator(extra.begin()),
                     std::make_move_iterator(extra.end()));
  }

  // ---------------------------------------------------------------------
  // Governance
  // ---------------------------------------------------------------------
  //
  // Degradation policy: a candidate-budget or deadline stop during
  // enumeration is NOT an error -- the enumeration returns the legal
  // best-so-far candidates with PartialSet::truncated set (the caller may
  // still adopt the best rewriting found in time).  Cancellation and
  // injected faults are hard errors and propagate as non-OK Status.
  // The flags are mutable because sinks and strategies run under const
  // methods; one Impl is single-threaded by construction.

  // True once enumeration must stop (soft truncation or hard error).
  bool StopRequested() const { return truncated_ || !hard_error_.ok(); }

  // Routes a governance/fault failure: deadline + budget exhaustion become
  // truncation, everything else (cancellation, injected faults) the first
  // hard error.
  void HandleGovernance(Status s) const {
    if (s.ok()) return;
    if (s.code() == StatusCode::kDeadlineExceeded ||
        s.code() == StatusCode::kResourceExhausted) {
      if (!truncated_) {
        truncated_ = true;
        truncation_reason_ = s.message();
      }
      return;
    }
    if (hard_error_.ok()) hard_error_ = std::move(s);
  }

  // Charges one derived candidate against the budget and polls
  // deadline/cancellation.  False means the candidate must be discarded
  // and enumeration stops (StopRequested() is now true).
  bool AdmitCandidate() const {
    if (StopRequested()) return false;
    ++considered_;
    if (!ctx_.limited()) return true;
    Status s = ctx_.ConsumeCandidates(1);
    if (s.ok()) s = ctx_.CheckNow();
    if (s.ok()) return true;
    HandleGovernance(std::move(s));
    return false;
  }

  // Governed MKB closure lookup; nullptr means the strategy must bail
  // (StopRequested() tells the caller why via Finish()).
  const std::vector<PcEdge>* TransitiveEdges(const RelationId& id) const {
    Result<const std::vector<PcEdge>*> edges =
        mkb_.PcEdgesFromTransitiveGoverned(id, options_.max_pc_hops, ctx_);
    if (edges.ok()) return edges.value();
    HandleGovernance(edges.status());
    return nullptr;
  }

  // Accumulates candidates of an intermediate fold round; full only when
  // governance stops the enumeration.
  struct CollectSink {
    const Impl* impl;
    std::vector<Partial>* out;
    void Offer(Partial p) {
      if (!impl->AdmitCandidate()) return;
      out->push_back(std::move(p));
    }
    bool full() const { return impl->StopRequested(); }
  };

  // Streaming legality / structural-dedup / cap sink: candidates are
  // checked over their compiled overlays as the strategies produce them --
  // pruned candidates are never rendered or materialized -- and once the
  // result cap is full, full() stops the enumeration loops outright, so a
  // wide fan-out never derives candidates the cap would discard anyway.
  // (Processing order equals enumeration order, so the kept set is exactly
  // what the batch formulation kept.)
  class FinishSink {
   public:
    explicit FinishSink(const Impl& impl) : impl_(impl) {}

    void Offer(Partial p) {
      if (full()) return;
      if (Status injected = FaultInjection::Probe("synch.finish");
          !injected.ok()) {
        impl_.HandleGovernance(std::move(injected));
        return;
      }
      if (!impl_.AdmitCandidate()) return;
      CandidateFacts facts;
      facts.extent_relation = p.cand.extent_relation;
      facts.replacements = &p.cand.replacements;
      facts.renamed_attributes = &p.cand.renamed_attributes;
      facts.renamed_relations = &p.cand.renamed_relations;
      if (!CheckLegality(*impl_.original_, p.view, facts).ok()) return;
      const size_t hash = p.view.StructuralHash();
      std::vector<size_t>& bucket = buckets_[hash];
      const bool duplicate =
          std::any_of(bucket.begin(), bucket.end(), [&](size_t i) {
            return kept_[i].view.StructurallyEquals(p.view);
          });
      if (duplicate) return;
      bucket.push_back(kept_.size());
      kept_.push_back(std::move(p));
    }

    bool full() const {
      return static_cast<int>(kept_.size()) >= impl_.options_.max_rewritings ||
             impl_.StopRequested();
    }

    std::vector<Partial> Take() { return std::move(kept_); }

   private:
    const Impl& impl_;
    std::vector<Partial> kept_;
    std::unordered_map<size_t, std::vector<size_t>> buckets_;
  };

  Result<PartialSet> Finish(bool affected,
                            std::vector<Partial> partials) const {
    PartialSet result;
    result.affected = affected;
    FinishSink sink(*this);
    for (Partial& p : partials) {
      if (sink.full()) break;
      sink.Offer(std::move(p));
    }
    EVE_RETURN_IF_ERROR(hard_error_);
    result.partials = sink.Take();
    result.truncated = truncated_;
    result.truncation_reason = truncation_reason_;
    result.candidates_considered = considered_;
    return result;
  }

  const MetaKnowledgeBase& mkb_;
  const SynchronizerOptions& options_;
  std::shared_ptr<const ViewDefinition> original_;
  const SchemaChange& change_;
  const ExecContext& ctx_;
  // Governance outcome; mutable so the const enumeration path can record
  // it (see the Governance section above).
  mutable Status hard_error_;
  mutable bool truncated_ = false;
  mutable std::string truncation_reason_;
  // Enumeration-work counter: candidates offered to the sinks.
  mutable int64_t considered_ = 0;
};

ViewSynchronizer::ViewSynchronizer(const MetaKnowledgeBase& mkb,
                                   SynchronizerOptions options)
    : mkb_(mkb), options_(options) {}

Result<SynchronizationResult> ViewSynchronizer::Synchronize(
    const ViewDefinition& view, const SchemaChange& change,
    const ExecContext& ctx) const {
  if (!options_.use_delta_enumeration) {
    // The eager oracle is the ungoverned equivalence baseline; ctx is
    // intentionally not threaded through it.
    return internal::SynchronizeEager(mkb_, options_, view, change);
  }
  EVE_ASSIGN_OR_RETURN(PartialSet set,
                       Impl(mkb_, options_, view, change, ctx).Run());
  SynchronizationResult result;
  result.affected = set.affected;
  result.truncated = set.truncated;
  result.truncation_reason = std::move(set.truncation_reason);
  result.candidates_considered = set.candidates_considered;
  result.rewritings.reserve(set.partials.size());
  for (Partial& p : set.partials) {
    // Survivors materialize once, straight from the compiled overlay.
    result.rewritings.push_back(
        std::move(p.cand).ToRewriting(p.view.Materialize()));
  }
  return result;
}

Result<CandidateSynchronizationResult> ViewSynchronizer::SynchronizeCandidates(
    const ViewDefinition& view, const SchemaChange& change,
    const ExecContext& ctx) const {
  EVE_ASSIGN_OR_RETURN(PartialSet set,
                       Impl(mkb_, options_, view, change, ctx).Run());
  CandidateSynchronizationResult result;
  result.affected = set.affected;
  result.truncated = set.truncated;
  result.truncation_reason = std::move(set.truncation_reason);
  result.candidates_considered = set.candidates_considered;
  result.candidates.reserve(set.partials.size());
  for (Partial& p : set.partials) {
    result.candidates.push_back(std::move(p.cand));
  }
  return result;
}

}  // namespace eve
