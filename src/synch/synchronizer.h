// ViewSynchronizer: generates the legal rewritings of a view affected by a
// capability change (paper §3.3; algorithms SVS [LNR97b] and, in spirit,
// CVS [NLR98]).
//
// The synchronizer must be given the PRE-change MKB: the constraints that
// mention the disappearing capability are exactly what licenses its
// replacement.  (EVE applies the change to the space/MKB only after
// synchronization; see eve/eve_system.h.)
//
// Strategies, in increasing sophistication:
//   * rename            -- pure reference rewriting for rename changes;
//   * drop              -- remove dispensable components that referenced the
//                          deleted capability;
//   * replace-relation  -- substitute the whole FROM item through a PC edge
//                          covering all attributes the view still needs;
//   * join-in           -- keep the relation (attribute deletions only) and
//                          join a PC-related relation to recover the lost
//                          attribute through a JC;
//   * cvs-pair          -- substitute one FROM item by a *join of two*
//                          PC-related relations whose mappings jointly cover
//                          the needed attributes (complex substitution).
//
// Every returned rewriting passes CheckLegality against the original view.

#ifndef EVE_SYNCH_SYNCHRONIZER_H_
#define EVE_SYNCH_SYNCHRONIZER_H_

#include <string>
#include <vector>

#include "common/exec_context.h"
#include "common/result.h"
#include "esql/ast.h"
#include "misd/mkb.h"
#include "space/schema_change.h"
#include "synch/partial.h"
#include "synch/rewriting.h"
#include "synch/strategy_set.h"

namespace eve {

/// Knobs for the rewriting search.
struct SynchronizerOptions {
  /// The enabled discovery strategies (replace-relation, join-in, cvs-pair)
  /// as an enum-bitmask; rename and drop are always available.  The policy
  /// layer's cap decisions tighten this per (change, view) pair.
  StrategySet strategies = StrategySet::All();
  /// Additionally enumerate rewritings that drop each subset of the
  /// dispensable SELECT items (the full "spectrum" of paper footnote 2).
  /// Off by default: those rewritings are dominated in information
  /// preservation.
  bool enumerate_drop_subsets = false;
  /// Add the PC target-side selection to the rewritten view so the
  /// replacement uses exactly the constrained fragment (tightens the extent
  /// relationship).
  bool apply_target_selection = true;
  /// Hard cap on returned rewritings.
  int max_rewritings = 256;
  /// Replacement discovery follows chains of up to this many PC constraints
  /// (transitively derived edges; 1 = direct constraints only).
  int max_pc_hops = 4;
  /// Enumerate candidates as a shared base + RewriteDelta op log
  /// (copy-on-write; see synch/partial.h) instead of deep-copying the whole
  /// ViewDefinition per strategy candidate.  Off falls back to the seed's
  /// eager implementation, retained as the equivalence oracle -- both paths
  /// produce byte-identical SynchronizationResults (tested).
  bool use_delta_enumeration = true;
};

/// The view synchronizer.
class ViewSynchronizer {
 public:
  /// `mkb` must outlive the synchronizer and reflect the PRE-change state.
  explicit ViewSynchronizer(const MetaKnowledgeBase& mkb,
                            SynchronizerOptions options = {});

  /// Generates the legal rewritings of `view` under `change`.  With
  /// use_delta_enumeration (the default) this materializes the surviving
  /// candidates of SynchronizeCandidates; otherwise it runs the eager
  /// oracle.
  ///
  /// Governance (`ctx`): each derived candidate charges one unit of the
  /// candidate budget, and MKB closure misses charge the row budget.  When
  /// the candidate budget or the deadline runs out mid-enumeration the call
  /// still SUCCEEDS, returning the legal best-so-far rewritings with
  /// `truncated` set (graceful degradation); cancellation and injected
  /// faults surface as hard errors.  The eager oracle path ignores `ctx`
  /// (it exists as the ungoverned equivalence baseline).
  Result<SynchronizationResult> Synchronize(
      const ViewDefinition& view, const SchemaChange& change,
      const ExecContext& ctx = ExecContext::Unlimited()) const;

  /// Delta-native API: generates the legal rewriting candidates of `view`
  /// under `change` as (base, op-log) pairs, leaving materialization to the
  /// consumer (it is lazy and one-shot per candidate).  Candidates are
  /// already legality-checked, deduplicated, and capped -- converting each
  /// with RewriteCandidate::ToRewriting yields exactly Synchronize()'s
  /// result.  Governance semantics match Synchronize().
  Result<CandidateSynchronizationResult> SynchronizeCandidates(
      const ViewDefinition& view, const SchemaChange& change,
      const ExecContext& ctx = ExecContext::Unlimited()) const;

 private:
  class Impl;
  const MetaKnowledgeBase& mkb_;
  SynchronizerOptions options_;
};

namespace internal {

/// The seed's eager (deep-copy-per-candidate) synchronizer, kept verbatim
/// as the equivalence oracle for the delta pipeline.  Reached through
/// SynchronizerOptions::use_delta_enumeration = false.
Result<SynchronizationResult> SynchronizeEager(const MetaKnowledgeBase& mkb,
                                               const SynchronizerOptions& options,
                                               const ViewDefinition& view,
                                               const SchemaChange& change);

}  // namespace internal

}  // namespace eve

#endif  // EVE_SYNCH_SYNCHRONIZER_H_
