// RewriteCandidate: the copy-on-write successor of the synchronizer's old
// eagerly-copied `Partial`.
//
// A candidate is a shared immutable base definition (`shared_ptr<const
// ViewDefinition>`, one allocation per Synchronize call) plus the compact
// `RewriteDelta` op log that derives it, together with the provenance the
// legality checker and the QC-Model need (extent relationship, replacement
// records, rename maps, dropped components, strategy tags).  Copying a
// candidate copies the op log and provenance only; the base is shared by
// every candidate of one enumeration.
//
// Materialization is lazy and one-shot: `Definition()` builds the full
// `ViewDefinition` on first use and caches it, so candidates pruned by
// legality, deduplication, or the result cap never pay the deep copy.
// `View()` compiles the (base, ops) overlay for delta-native queries
// (legality, structural hashing, quality / cost estimation) without any
// materialization at all.

#ifndef EVE_SYNCH_PARTIAL_H_
#define EVE_SYNCH_PARTIAL_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "esql/view_delta.h"
#include "synch/extent_relationship.h"
#include "synch/rewriting.h"

namespace eve {

/// One substitution performed on a candidate, in lean (borrowing) form: the
/// licensing PC edge stays in the MKB's memoized closure storage instead of
/// being deep-copied (constraint text, selections, and attribute map) into
/// every candidate of a wide fan-out.  Materializing the candidate copies
/// the edge into a self-contained ReplacementRecord, applying the reduced
/// attribute map when one was recorded (CVS pair substitutions use only
/// part of each edge's map).
///
/// Lifetime: `edge` follows the MKB memo rule -- valid until the next
/// non-const MetaKnowledgeBase call.  Candidates must be materialized (or
/// dropped) before the MKB is mutated; the EVE system ranks and adopts
/// rewritings before applying the change to the MKB, which satisfies this
/// by construction.
struct CandidateReplacement {
  RelationId replaced;
  RelationId replacement;
  std::string replaced_from_name;
  std::string replacement_from_name;
  const PcEdge* edge = nullptr;
  /// Non-empty for CVS pairs: the per-attribute subset of edge's map this
  /// substitution actually used.
  std::map<std::string, std::string> reduced_map;
  bool joined_in = false;

  const std::map<std::string, std::string>& attribute_map() const {
    return reduced_map.empty() ? edge->attribute_map : reduced_map;
  }

  /// The self-contained record (deep-copies the edge).
  ReplacementRecord Materialize() const;
};

/// A provenance note in unrendered form: the strategy that produced it plus
/// the handful of values the note interpolates.  Enumeration used to build
/// the full note string per derived candidate; since most candidates are
/// pruned by legality, deduplication, or the result cap, those
/// concatenations were pure waste.  Render() produces the string -- byte
/// for byte the one the eager pipeline emits -- and only runs for
/// candidates that survive to a Rewriting (ToRewriting).
///
/// Lifetime: `edge`, `edge2`, and `jc` follow the same MKB memo rule as
/// CandidateReplacement::edge -- valid until the next non-const
/// MetaKnowledgeBase call, which the rank-then-adopt order satisfies by
/// construction.
struct NoteTemplate {
  enum class Kind {
    kAttributeRenamed,      ///< "attribute <a> renamed to <b>"
    kRelationRenamed,       ///< "relation <id> renamed to <a>"
    kDroppedAttributeRefs,  ///< "dropped references to deleted attribute <a>.<b>"
    kDroppedRelation,       ///< "dropped deleted relation <a>"
    kDroppedUnreferenced,   ///< "dropped now-unreferenced relation <a>"
    kPcFragmentCondition,   ///< "added PC fragment condition on <a>"
    kReplacedRelation,      ///< "replaced <edge.source> by <edge.target>"
    kJoinInRecovered,       ///< "recovered <a>.<b> from <edge.target> via <jc>"
    kCvsPairReplaced,  ///< "replaced <a> by join of <edge.target> and <edge2.target>"
  };

  Kind kind = Kind::kAttributeRenamed;
  std::string a;  ///< First interpolated name (SSO-sized in practice).
  std::string b;  ///< Second interpolated name, when the note has one.
  RelationId id;  ///< Pre-rename identity (kRelationRenamed only).
  const PcEdge* edge = nullptr;
  const PcEdge* edge2 = nullptr;  ///< Second edge of a CVS pair.
  const JoinConstraint* jc = nullptr;

  static NoteTemplate AttributeRenamed(std::string from, std::string to);
  static NoteTemplate RelationRenamed(RelationId old_id, std::string new_name);
  static NoteTemplate DroppedAttributeRefs(std::string from_name,
                                           std::string attr);
  static NoteTemplate DroppedRelation(std::string from_name);
  static NoteTemplate DroppedUnreferenced(std::string from_name);
  static NoteTemplate PcFragmentCondition(std::string new_name);
  static NoteTemplate ReplacedRelation(const PcEdge* edge);
  static NoteTemplate JoinInRecovered(std::string from_name, std::string attr,
                                      const PcEdge* edge,
                                      const JoinConstraint* jc);
  static NoteTemplate CvsPairReplaced(std::string from_name, const PcEdge* e1,
                                      const PcEdge* e2);

  /// The human-readable note, identical to the eager pipeline's string.
  std::string Render() const;
};

/// One (base, delta) rewriting candidate with provenance.
struct RewriteCandidate {
  std::shared_ptr<const ViewDefinition> base;
  std::vector<RewriteDelta> ops;

  ExtentRel extent_relation = ExtentRel::kEqual;
  bool extent_exact = true;
  std::vector<CandidateReplacement> replacements;
  std::map<RelAttr, RelAttr> renamed_attributes;
  std::map<std::string, std::string> renamed_relations;
  std::vector<std::string> dropped_attributes;
  std::vector<std::string> dropped_conditions;
  std::vector<NoteTemplate> notes;      ///< Rendered only in ToRewriting.
  std::vector<std::string> strategies;  ///< Raw tags; joined + deduped later.

  /// Lattice composition of one more transformation (as the old Partial).
  void Compose(ExtentRel r, bool r_exact) {
    extent_relation = ComposeExtentRel(extent_relation, r);
    extent_exact = extent_exact && r_exact;
  }

  /// Compiles the read-only overlay over (base, ops).  O(|base| + |ops|),
  /// no item deep copies.
  DeltaView View() const { return DeltaView(*base, ops); }

  /// The materialized definition; built on first call and cached (one-shot
  /// lazy materialization).  Not thread-safe with itself on the same
  /// candidate.
  const ViewDefinition& Definition() const;

  /// Converts to the public Rewriting (materialized definition + provenance,
  /// strategy tags joined with '+' and deduplicated in first-seen order,
  /// exactly as the eager pipeline produced them).
  Rewriting ToRewriting() const&;
  Rewriting ToRewriting() &&;

  /// Conversion with an externally materialized definition (e.g. from an
  /// already-compiled overlay), skipping the Apply replay.
  Rewriting ToRewriting(ViewDefinition definition) &&;

 private:
  mutable std::shared_ptr<const ViewDefinition> materialized_;
};

/// Result of the delta-native synchronization API: like
/// SynchronizationResult, but candidates stay unmaterialized.
struct CandidateSynchronizationResult {
  bool affected = false;
  std::vector<RewriteCandidate> candidates;
  /// Best-so-far degradation marker; see SynchronizationResult::truncated.
  bool truncated = false;
  std::string truncation_reason;
  /// Enumeration work: candidates the strategies derived and offered to the
  /// legality / dedup / cap sinks (counted whether or not they survived).
  /// The policy layer's savings metric.  Delta pipeline only; the eager
  /// oracle reports 0.
  int64_t candidates_considered = 0;
};

}  // namespace eve

#endif  // EVE_SYNCH_PARTIAL_H_
