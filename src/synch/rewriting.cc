#include "synch/rewriting.h"

#include "common/str_util.h"
#include "esql/printer.h"

namespace eve {

std::string Rewriting::Summary() const {
  std::string out = "[" + strategy + ", extent " +
                    std::string(ExtentRelToString(extent_relation)) +
                    (extent_exact ? "" : " (approx)") + "] " +
                    PrintViewCompact(definition);
  for (const ReplacementRecord& r : replacements) {
    out += StrFormat("\n    replaced %s by %s%s via %s",
                     r.replaced.ToString().c_str(),
                     r.replacement.ToString().c_str(),
                     r.joined_in ? " (joined in)" : "",
                     r.edge.constraint_text.c_str());
  }
  if (!dropped_attributes.empty()) {
    out += "\n    dropped attributes: " + Join(dropped_attributes, ", ");
  }
  if (!dropped_conditions.empty()) {
    out += "\n    dropped conditions: " + Join(dropped_conditions, ", ");
  }
  return out;
}

}  // namespace eve
