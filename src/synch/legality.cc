#include "synch/legality.h"

#include <map>
#include <set>
#include <string_view>
#include <unordered_map>

#include "common/str_util.h"

namespace eve {

namespace {

const std::map<RelAttr, RelAttr> kNoAttrMap;
const std::map<std::string, std::string> kNoRelMap;
const std::vector<CandidateReplacement> kNoReplacements;

// Uniform read adapter over a materialized ViewDefinition, so the templated
// legality core compiles to the same direct field accesses the pre-delta
// implementation had.  DeltaView natively satisfies the same interface.
struct DefReader {
  const ViewDefinition* def;

  const std::string& name() const { return def->name; }
  ViewExtent ve() const { return def->ve; }
  int where_size() const { return static_cast<int>(def->where.size()); }
  const ConditionItem& where(int i) const { return def->where[i]; }
  int from_size() const { return static_cast<int>(def->from_items.size()); }
  const FromItem& from(int i) const { return def->from_items[i]; }
  const FromItem* FindFrom(const std::string& n) const {
    return def->FindFrom(n);
  }
  const SelectItem* FindSelect(const std::string& n) const {
    return def->FindSelect(n);
  }
  int select_size() const { return static_cast<int>(def->select_items.size()); }
  const SelectItem& select(int i) const { return def->select_items[i]; }
  Status Validate() const { return def->Validate(); }
};

// The rename substitution map: renames preserve identity exactly, so they
// never require replaceable flags.  Relation renames expand to one entry
// per referenced attribute of the renamed FROM item.
std::map<RelAttr, RelAttr> RenameMap(
    const ViewDefinition& original,
    const std::map<RelAttr, RelAttr>& renamed_attributes,
    const std::map<std::string, std::string>& renamed_relations) {
  std::map<RelAttr, RelAttr> out = renamed_attributes;
  if (renamed_relations.empty()) return out;
  auto add = [&](const RelAttr& a) {
    const auto it = renamed_relations.find(a.relation);
    if (it == renamed_relations.end()) return;
    RelAttr renamed = a;
    renamed.relation = it->second;
    // An attribute rename may chain with the relation rename.
    const auto attr_it = renamed_attributes.find(a);
    if (attr_it != renamed_attributes.end()) {
      renamed.attribute = attr_it->second.attribute;
    }
    out[a] = renamed;
  };
  for (const SelectItem& s : original.select_items) add(s.source);
  for (const ConditionItem& c : original.where) {
    for (const RelAttr& a : c.clause.Attributes()) add(a);
  }
  return out;
}

// The attribute substitution map implied by the candidate's replacement
// records: old "fromName.attr" -> new "fromName.attr".
template <typename View>
std::map<RelAttr, RelAttr> SubstitutionMap(
    const ViewDefinition& original, const View& view,
    const std::vector<CandidateReplacement>& replacements) {
  std::map<RelAttr, RelAttr> out;
  for (const CandidateReplacement& rec : replacements) {
    // The FROM name of the replaced relation in the original view: prefer
    // the explicitly recorded name (required for self-joins), fall back to
    // scanning by relation identity.
    std::string old_name = rec.replaced_from_name;
    if (old_name.empty()) {
      for (const FromItem& f : original.from_items) {
        if (f.relation == rec.replaced.relation &&
            (f.site.empty() || f.site == rec.replaced.site)) {
          old_name = f.name();
          break;
        }
      }
    }
    // The FROM name of the replacement in the candidate.
    std::string new_name = rec.replacement_from_name;
    if (new_name.empty()) {
      for (int i = 0; i < view.from_size(); ++i) {
        const FromItem& f = view.from(i);
        if (f.relation == rec.replacement.relation &&
            (f.site.empty() || f.site == rec.replacement.site)) {
          new_name = f.name();
          break;
        }
      }
    }
    if (old_name.empty() || new_name.empty()) continue;
    for (const auto& [from_attr, to_attr] : rec.attribute_map()) {
      out[RelAttr{old_name, from_attr}] = RelAttr{new_name, to_attr};
    }
  }
  return out;
}

template <typename View>
Status CheckLegalityImpl(const ViewDefinition& original, const View& view,
                         const CandidateFacts& facts) {
  const std::vector<CandidateReplacement>& replacements =
      facts.replacements != nullptr ? *facts.replacements : kNoReplacements;
  const std::map<RelAttr, RelAttr>& renamed_attributes =
      facts.renamed_attributes != nullptr ? *facts.renamed_attributes
                                          : kNoAttrMap;
  const std::map<std::string, std::string>& renamed_relations =
      facts.renamed_relations != nullptr ? *facts.renamed_relations
                                         : kNoRelMap;

  EVE_RETURN_IF_ERROR(view.Validate());
  if (view.name() != original.name) {
    return Status::FailedPrecondition("rewriting renames the view");
  }
  if (view.ve() != original.ve) {
    return Status::FailedPrecondition("rewriting changes the VE parameter");
  }

  const std::map<RelAttr, RelAttr> renames =
      RenameMap(original, renamed_attributes, renamed_relations);
  const std::map<RelAttr, RelAttr> subst =
      SubstitutionMap(original, view, replacements);

  // 1. Indispensable SELECT items.  The candidate's SELECT list is probed
  // once per original item, so index it up front instead of rescanning
  // (FindSelect is O(|view|); enumeration legality-checks every candidate).
  // emplace keeps the first occurrence per name, matching FindSelect's
  // first-match scan order.
  std::unordered_map<std::string_view, const SelectItem*> select_index;
  select_index.reserve(static_cast<size_t>(view.select_size()));
  for (int i = 0; i < view.select_size(); ++i) {
    const SelectItem& s = view.select(i);
    select_index.emplace(std::string_view(s.name()), &s);
  }
  for (const SelectItem& s : original.select_items) {
    const auto kept_it = select_index.find(std::string_view(s.name()));
    const SelectItem* kept =
        kept_it != select_index.end() ? kept_it->second : nullptr;
    if (kept == nullptr) {
      if (!s.dispensable) {
        return Status::FailedPrecondition("indispensable attribute " +
                                          s.name() + " not preserved");
      }
      continue;
    }
    // Preserved verbatim or through a rename: fine for any flags.
    if (kept->source == s.source) continue;
    if (const auto rn = renames.find(s.source);
        rn != renames.end() && rn->second == kept->source) {
      continue;
    }
    // Otherwise it must be a recorded replacement of a replaceable item.
    const auto it = subst.find(s.source);
    const bool substituted = it != subst.end() && it->second == kept->source;
    if (!substituted) {
      return Status::FailedPrecondition(
          "attribute " + s.name() +
          " maps to an unrelated source in the rewriting");
    }
    if (!s.replaceable) {
      return Status::FailedPrecondition("non-replaceable attribute " +
                                        s.name() + " was substituted");
    }
  }

  // 2. Indispensable WHERE clauses.
  for (const ConditionItem& c : original.where) {
    const PrimitiveClause renamed = c.clause.Substitute(renames);
    const PrimitiveClause rewritten = c.clause.Substitute(subst);
    bool preserved = false;
    for (int i = 0; i < view.where_size(); ++i) {
      const ConditionItem& nc = view.where(i);
      if (nc.clause == c.clause || nc.clause == renamed) {
        preserved = true;
        break;
      }
      if (nc.clause == rewritten) {
        preserved = true;
        if (!c.replaceable) {
          return Status::FailedPrecondition("non-replaceable condition (" +
                                            c.clause.ToString() +
                                            ") was substituted");
        }
        break;
      }
    }
    if (!preserved && !c.dispensable) {
      return Status::FailedPrecondition("indispensable condition (" +
                                        c.clause.ToString() +
                                        ") not preserved");
    }
  }

  // 3. Indispensable FROM items.
  std::set<std::string> replaced_names;
  for (const CandidateReplacement& rec : replacements) {
    if (rec.joined_in) continue;
    if (!rec.replaced_from_name.empty()) {
      replaced_names.insert(rec.replaced_from_name);
      continue;
    }
    for (const FromItem& f : original.from_items) {
      if (f.relation == rec.replaced.relation) replaced_names.insert(f.name());
    }
  }
  for (const FromItem& f : original.from_items) {
    // A renamed FROM item counts as present under its new name.
    if (const auto rn = renamed_relations.find(f.name());
        rn != renamed_relations.end() && view.FindFrom(rn->second) != nullptr) {
      continue;
    }
    const bool present = view.FindFrom(f.name()) != nullptr ||
                         [&] {
                           // Renamed relation may appear under a new name but
                           // same site+relation id? Treat identical relation
                           // ids as present.
                           for (int i = 0; i < view.from_size(); ++i) {
                             const FromItem& nf = view.from(i);
                             if (nf.relation == f.relation &&
                                 nf.site == f.site) {
                               return true;
                             }
                           }
                           return false;
                         }();
    if (present) continue;
    if (replaced_names.count(f.name()) > 0) {
      if (!f.replaceable) {
        return Status::FailedPrecondition("non-replaceable relation " +
                                          f.name() + " was substituted");
      }
      continue;
    }
    if (!f.dispensable) {
      return Status::FailedPrecondition("indispensable relation " + f.name() +
                                        " not preserved");
    }
  }

  // 4. VE discipline.
  if (!SatisfiesViewExtent(facts.extent_relation, original.ve)) {
    return Status::FailedPrecondition(StrFormat(
        "extent relationship '%s' violates VE '%s'",
        std::string(ExtentRelToString(facts.extent_relation)).c_str(),
        std::string(ViewExtentToString(original.ve)).c_str()));
  }
  return Status::OK();
}

}  // namespace

Status CheckLegality(const ViewDefinition& original, const DeltaView& view,
                     const CandidateFacts& facts) {
  return CheckLegalityImpl(original, view, facts);
}

Status CheckLegality(const ViewDefinition& original,
                     const Rewriting& rewriting) {
  // Wrap the self-contained records in the lean borrowing form (the edge
  // pointers reference the records themselves, so no MKB lifetime applies).
  std::vector<CandidateReplacement> replacements;
  replacements.reserve(rewriting.replacements.size());
  for (const ReplacementRecord& rec : rewriting.replacements) {
    CandidateReplacement lean;
    lean.replaced = rec.replaced;
    lean.replacement = rec.replacement;
    lean.replaced_from_name = rec.replaced_from_name;
    lean.replacement_from_name = rec.replacement_from_name;
    lean.edge = &rec.edge;
    lean.joined_in = rec.joined_in;
    replacements.push_back(std::move(lean));
  }
  CandidateFacts facts;
  facts.extent_relation = rewriting.extent_relation;
  facts.replacements = &replacements;
  facts.renamed_attributes = &rewriting.renamed_attributes;
  facts.renamed_relations = &rewriting.renamed_relations;
  return CheckLegalityImpl(original, DefReader{&rewriting.definition}, facts);
}

}  // namespace eve
