#include "synch/legality.h"

#include <map>
#include <set>

#include "common/str_util.h"

namespace eve {

namespace {

// The rename substitution map: renames preserve identity exactly, so they
// never require replaceable flags.  Relation renames expand to one entry
// per referenced attribute of the renamed FROM item.
std::map<RelAttr, RelAttr> RenameMap(const ViewDefinition& original,
                                     const Rewriting& rewriting) {
  std::map<RelAttr, RelAttr> out = rewriting.renamed_attributes;
  if (rewriting.renamed_relations.empty()) return out;
  auto add = [&](const RelAttr& a) {
    const auto it = rewriting.renamed_relations.find(a.relation);
    if (it == rewriting.renamed_relations.end()) return;
    RelAttr renamed = a;
    renamed.relation = it->second;
    // An attribute rename may chain with the relation rename.
    const auto attr_it = rewriting.renamed_attributes.find(a);
    if (attr_it != rewriting.renamed_attributes.end()) {
      renamed.attribute = attr_it->second.attribute;
    }
    out[a] = renamed;
  };
  for (const SelectItem& s : original.select_items) add(s.source);
  for (const ConditionItem& c : original.where) {
    for (const RelAttr& a : c.clause.Attributes()) add(a);
  }
  return out;
}

// The attribute substitution map implied by the rewriting's replacement
// records: old "fromName.attr" -> new "fromName.attr".
std::map<RelAttr, RelAttr> SubstitutionMap(const ViewDefinition& original,
                                           const Rewriting& rewriting) {
  std::map<RelAttr, RelAttr> out;
  for (const ReplacementRecord& rec : rewriting.replacements) {
    // The FROM name of the replaced relation in the original view: prefer
    // the explicitly recorded name (required for self-joins), fall back to
    // scanning by relation identity.
    std::string old_name = rec.replaced_from_name;
    if (old_name.empty()) {
      for (const FromItem& f : original.from_items) {
        if (f.relation == rec.replaced.relation &&
            (f.site.empty() || f.site == rec.replaced.site)) {
          old_name = f.name();
          break;
        }
      }
    }
    // The FROM name of the replacement in the rewriting.
    std::string new_name = rec.replacement_from_name;
    if (new_name.empty()) {
      for (const FromItem& f : rewriting.definition.from_items) {
        if (f.relation == rec.replacement.relation &&
            (f.site.empty() || f.site == rec.replacement.site)) {
          new_name = f.name();
          break;
        }
      }
    }
    if (old_name.empty() || new_name.empty()) continue;
    for (const auto& [from_attr, to_attr] : rec.edge.attribute_map) {
      out[RelAttr{old_name, from_attr}] = RelAttr{new_name, to_attr};
    }
  }
  return out;
}

}  // namespace

Status CheckLegality(const ViewDefinition& original, const Rewriting& rewriting) {
  EVE_RETURN_IF_ERROR(rewriting.definition.Validate());
  if (rewriting.definition.name != original.name) {
    return Status::FailedPrecondition("rewriting renames the view");
  }
  if (rewriting.definition.ve != original.ve) {
    return Status::FailedPrecondition("rewriting changes the VE parameter");
  }

  const std::map<RelAttr, RelAttr> renames = RenameMap(original, rewriting);
  const std::map<RelAttr, RelAttr> subst = SubstitutionMap(original, rewriting);

  // 1. Indispensable SELECT items.
  for (const SelectItem& s : original.select_items) {
    const SelectItem* kept = rewriting.definition.FindSelect(s.name());
    if (kept == nullptr) {
      if (!s.dispensable) {
        return Status::FailedPrecondition(
            "indispensable attribute " + s.name() + " not preserved");
      }
      continue;
    }
    // Preserved verbatim or through a rename: fine for any flags.
    if (kept->source == s.source) continue;
    if (const auto rn = renames.find(s.source);
        rn != renames.end() && rn->second == kept->source) {
      continue;
    }
    // Otherwise it must be a recorded replacement of a replaceable item.
    const auto it = subst.find(s.source);
    const bool substituted = it != subst.end() && it->second == kept->source;
    if (!substituted) {
      return Status::FailedPrecondition(
          "attribute " + s.name() +
          " maps to an unrelated source in the rewriting");
    }
    if (!s.replaceable) {
      return Status::FailedPrecondition(
          "non-replaceable attribute " + s.name() + " was substituted");
    }
  }

  // 2. Indispensable WHERE clauses.
  for (const ConditionItem& c : original.where) {
    const PrimitiveClause renamed = c.clause.Substitute(renames);
    const PrimitiveClause rewritten = c.clause.Substitute(subst);
    bool preserved = false;
    for (const ConditionItem& nc : rewriting.definition.where) {
      if (nc.clause == c.clause || nc.clause == renamed) {
        preserved = true;
        break;
      }
      if (nc.clause == rewritten) {
        preserved = true;
        if (!c.replaceable) {
          return Status::FailedPrecondition(
              "non-replaceable condition (" + c.clause.ToString() +
              ") was substituted");
        }
        break;
      }
    }
    if (!preserved && !c.dispensable) {
      return Status::FailedPrecondition("indispensable condition (" +
                                        c.clause.ToString() +
                                        ") not preserved");
    }
  }

  // 3. Indispensable FROM items.
  std::set<std::string> replaced_names;
  for (const ReplacementRecord& rec : rewriting.replacements) {
    if (rec.joined_in) continue;
    if (!rec.replaced_from_name.empty()) {
      replaced_names.insert(rec.replaced_from_name);
      continue;
    }
    for (const FromItem& f : original.from_items) {
      if (f.relation == rec.replaced.relation) replaced_names.insert(f.name());
    }
  }
  for (const FromItem& f : original.from_items) {
    // A renamed FROM item counts as present under its new name.
    if (const auto rn = rewriting.renamed_relations.find(f.name());
        rn != rewriting.renamed_relations.end() &&
        rewriting.definition.FindFrom(rn->second) != nullptr) {
      continue;
    }
    const bool present = rewriting.definition.FindFrom(f.name()) != nullptr ||
                         [&] {
                           // Renamed relation may appear under a new name but
                           // same site+relation id? Treat identical relation
                           // ids as present.
                           for (const FromItem& nf :
                                rewriting.definition.from_items) {
                             if (nf.relation == f.relation &&
                                 nf.site == f.site) {
                               return true;
                             }
                           }
                           return false;
                         }();
    if (present) continue;
    if (replaced_names.count(f.name()) > 0) {
      if (!f.replaceable) {
        return Status::FailedPrecondition("non-replaceable relation " +
                                          f.name() + " was substituted");
      }
      continue;
    }
    if (!f.dispensable) {
      return Status::FailedPrecondition("indispensable relation " + f.name() +
                                        " not preserved");
    }
  }

  // 4. VE discipline.
  if (!SatisfiesViewExtent(rewriting.extent_relation, original.ve)) {
    return Status::FailedPrecondition(
        StrFormat("extent relationship '%s' violates VE '%s'",
                  std::string(ExtentRelToString(rewriting.extent_relation)).c_str(),
                  std::string(ViewExtentToString(original.ve)).c_str()));
  }
  return Status::OK();
}

}  // namespace eve
