#include "synch/extent_relationship.h"

namespace eve {

std::string_view ExtentRelToString(ExtentRel rel) {
  switch (rel) {
    case ExtentRel::kEqual:
      return "equal";
    case ExtentRel::kSubset:
      return "subset";
    case ExtentRel::kSuperset:
      return "superset";
    case ExtentRel::kUnknown:
      return "approximate";
  }
  return "?";
}

ExtentRel ComposeExtentRel(ExtentRel a, ExtentRel b) {
  if (a == ExtentRel::kEqual) return b;
  if (b == ExtentRel::kEqual) return a;
  if (a == b) return a;
  return ExtentRel::kUnknown;
}

bool SatisfiesViewExtent(ExtentRel rel, ViewExtent ve) {
  switch (ve) {
    case ViewExtent::kApproximate:
      return true;
    case ViewExtent::kEqual:
      return rel == ExtentRel::kEqual;
    case ViewExtent::kSuperset:
      return rel == ExtentRel::kEqual || rel == ExtentRel::kSuperset;
    case ViewExtent::kSubset:
      return rel == ExtentRel::kEqual || rel == ExtentRel::kSubset;
  }
  return false;
}

}  // namespace eve
