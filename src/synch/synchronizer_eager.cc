// The seed's eager synchronizer implementation, kept verbatim as the
// equivalence oracle for the copy-on-write delta pipeline (synchronizer.cc).
// Every strategy here deep-copies the working `Partial` -- including its
// whole ViewDefinition -- once per candidate; the delta pipeline must
// produce byte-identical SynchronizationResults (asserted by the corpus
// equivalence tests), so treat this file as frozen.

#include "synch/synchronizer.h"

#include <algorithm>
#include <optional>
#include <set>
#include <unordered_map>

#include "common/str_util.h"
#include "synch/legality.h"

namespace eve {

namespace {

// A partially synchronized view: the working definition plus accumulated
// provenance.  Strategies transform partials; for changes affecting several
// FROM items the partials are folded item by item.
struct Partial {
  ViewDefinition def;
  ExtentRel rel = ExtentRel::kEqual;
  bool exact = true;
  std::vector<ReplacementRecord> replacements;
  std::vector<std::string> dropped_attributes;
  std::vector<std::string> dropped_conditions;
  std::vector<std::string> notes;
  std::vector<std::string> strategies;

  void Compose(ExtentRel r, bool r_exact) {
    rel = ComposeExtentRel(rel, r);
    exact = exact && r_exact;
  }
};

Rewriting ToRewriting(Partial p) {
  Rewriting out;
  out.definition = std::move(p.def);
  out.extent_relation = p.rel;
  out.extent_exact = p.exact;
  out.replacements = std::move(p.replacements);
  out.dropped_attributes = std::move(p.dropped_attributes);
  out.dropped_conditions = std::move(p.dropped_conditions);
  out.notes = std::move(p.notes);
  // Deduplicate strategy tags, preserving order.
  std::vector<std::string> tags;
  for (std::string& s : p.strategies) {
    if (std::find(tags.begin(), tags.end(), s) == tags.end()) {
      tags.push_back(std::move(s));
    }
  }
  out.strategy = Join(tags, "+");
  return out;
}

std::string FreshFromName(const ViewDefinition& def, const std::string& base) {
  if (def.FindFrom(base) == nullptr) return base;
  for (int i = 2;; ++i) {
    const std::string candidate = StrFormat("%s_%d", base.c_str(), i);
    if (def.FindFrom(candidate) == nullptr) return candidate;
  }
}

// References (SELECT items / WHERE clauses) of `from_name` within `def`.
struct References {
  std::vector<int> select_indexes;                 // Items sourced from it.
  std::vector<int> where_indexes;                  // Clauses touching it.
  std::set<std::string> attributes;                // Attribute names used.
};

References CollectReferences(const ViewDefinition& def,
                             const std::string& from_name) {
  References out;
  for (size_t i = 0; i < def.select_items.size(); ++i) {
    if (def.select_items[i].source.relation == from_name) {
      out.select_indexes.push_back(static_cast<int>(i));
      out.attributes.insert(def.select_items[i].source.attribute);
    }
  }
  for (size_t i = 0; i < def.where.size(); ++i) {
    if (def.where[i].clause.References(from_name)) {
      out.where_indexes.push_back(static_cast<int>(i));
      for (const RelAttr& a : def.where[i].clause.Attributes()) {
        if (a.relation == from_name) out.attributes.insert(a.attribute);
      }
    }
  }
  return out;
}

// Removes the SELECT items / WHERE clauses at the given indexes, recording
// drops and extent contributions.  A dropped local condition or join
// condition widens the extent (superset); a dropped SELECT item leaves the
// extent on the common attributes untouched.
void ApplyDrops(Partial* p, const std::vector<int>& select_indexes,
                const std::vector<int>& where_indexes) {
  // Erase from the back so indexes stay valid.
  std::vector<int> sel = select_indexes;
  std::sort(sel.rbegin(), sel.rend());
  for (int i : sel) {
    p->dropped_attributes.push_back(p->def.select_items[i].name());
    p->def.select_items.erase(p->def.select_items.begin() + i);
  }
  std::vector<int> whe = where_indexes;
  std::sort(whe.rbegin(), whe.rend());
  for (int i : whe) {
    p->dropped_conditions.push_back(p->def.where[i].clause.ToString());
    p->def.where.erase(p->def.where.begin() + i);
    p->Compose(ExtentRel::kSuperset, /*exact=*/true);
  }
}

class EagerImpl {
 public:
  EagerImpl(const MetaKnowledgeBase& mkb, const SynchronizerOptions& options,
       const ViewDefinition& view, const SchemaChange& change)
      : mkb_(mkb), options_(options), original_(view), change_(change) {}

  Result<SynchronizationResult> Run() {
    SynchronizationResult result;
    EVE_RETURN_IF_ERROR(original_.Validate());

    const RelationId& changed = ChangedRelation(change_);
    const std::vector<std::string> affected_names = AffectedFromNames(changed);

    if (std::holds_alternative<AddAttribute>(change_) ||
        std::holds_alternative<AddRelation>(change_)) {
      return result;  // Additions never invalidate existing views.
    }

    if (const auto* ra = std::get_if<RenameAttribute>(&change_)) {
      bool uses = false;
      for (const std::string& fn : affected_names) {
        const References refs = CollectReferences(original_, fn);
        uses = uses || refs.attributes.count(ra->from) > 0;
      }
      if (!uses) return result;
      result.affected = true;
      result.rewritings.push_back(RenameAttributeRewriting(*ra, affected_names));
      return Finish(std::move(result));
    }

    if (const auto* rr = std::get_if<RenameRelation>(&change_)) {
      if (affected_names.empty()) return result;
      result.affected = true;
      result.rewritings.push_back(RenameRelationRewriting(*rr, affected_names));
      return Finish(std::move(result));
    }

    std::optional<std::string> deleted_attr;
    if (const auto* da = std::get_if<DeleteAttribute>(&change_)) {
      deleted_attr = da->attribute;
    }

    // delete-attribute / delete-relation: fold strategies over the affected
    // FROM items.
    std::vector<std::string> to_fix;
    for (const std::string& fn : affected_names) {
      if (deleted_attr.has_value()) {
        const References refs = CollectReferences(original_, fn);
        if (refs.attributes.count(*deleted_attr) > 0) to_fix.push_back(fn);
      } else {
        to_fix.push_back(fn);
      }
    }
    if (to_fix.empty()) return result;
    result.affected = true;

    Partial seed;
    seed.def = original_;
    std::vector<Partial> partials{std::move(seed)};
    for (const std::string& fn : to_fix) {
      std::vector<Partial> next;
      for (const Partial& p : partials) {
        std::vector<Partial> fixed = ResolveItem(p, fn, deleted_attr);
        next.insert(next.end(), std::make_move_iterator(fixed.begin()),
                    std::make_move_iterator(fixed.end()));
      }
      partials = std::move(next);
      if (partials.empty()) break;
    }
    for (Partial& p : partials) {
      result.rewritings.push_back(ToRewriting(std::move(p)));
    }
    if (options_.enumerate_drop_subsets) EnumerateDropSubsets(&result);
    return Finish(std::move(result));
  }

 private:
  // ---------------------------------------------------------------------
  // Affectedness & renames
  // ---------------------------------------------------------------------

  std::vector<std::string> AffectedFromNames(const RelationId& changed) const {
    std::vector<std::string> out;
    for (const FromItem& f : original_.from_items) {
      if (f.relation != changed.relation) continue;
      if (!f.site.empty() && f.site != changed.site) continue;
      out.push_back(f.name());
    }
    return out;
  }

  Rewriting RenameAttributeRewriting(
      const RenameAttribute& ra,
      const std::vector<std::string>& from_names) const {
    Partial p;
    p.def = original_;
    std::map<RelAttr, RelAttr> subst;
    for (const std::string& fn : from_names) {
      subst[RelAttr{fn, ra.from}] = RelAttr{fn, ra.to};
    }
    for (SelectItem& s : p.def.select_items) {
      const auto it = subst.find(s.source);
      if (it != subst.end()) {
        // Keep the exposed interface name stable across the rename.
        if (s.output_name.empty()) s.output_name = s.source.attribute;
        s.source = it->second;
      }
    }
    for (ConditionItem& c : p.def.where) c.clause = c.clause.Substitute(subst);
    p.strategies.push_back("rename");
    p.notes.push_back("attribute " + ra.from + " renamed to " + ra.to);
    Rewriting out = ToRewriting(std::move(p));
    out.renamed_attributes = subst;
    return out;
  }

  Rewriting RenameRelationRewriting(
      const RenameRelation& rr,
      const std::vector<std::string>& from_names) const {
    Partial p;
    p.def = original_;
    std::map<std::string, std::string> rel_map;
    for (FromItem& f : p.def.from_items) {
      if (f.relation != rr.relation.relation) continue;
      if (!f.site.empty() && f.site != rr.relation.site) continue;
      const std::string old_name = f.name();
      f.relation = rr.new_name;
      if (f.alias.empty()) rel_map[old_name] = rr.new_name;
    }
    for (SelectItem& s : p.def.select_items) {
      const auto it = rel_map.find(s.source.relation);
      if (it != rel_map.end()) s.source.relation = it->second;
    }
    for (ConditionItem& c : p.def.where) {
      c.clause = c.clause.RenameRelations(rel_map);
    }
    (void)from_names;
    p.strategies.push_back("rename");
    p.notes.push_back("relation " + rr.relation.ToString() + " renamed to " +
                      rr.new_name);
    Rewriting out = ToRewriting(std::move(p));
    out.renamed_relations = rel_map;
    return out;
  }

  // ---------------------------------------------------------------------
  // Per-item resolution
  // ---------------------------------------------------------------------

  std::vector<Partial> ResolveItem(const Partial& base,
                                   const std::string& from_name,
                                   const std::optional<std::string>& attr) const {
    std::vector<Partial> out;
    auto append = [&out](std::optional<Partial> p) {
      if (p.has_value()) out.push_back(std::move(*p));
    };
    auto extend = [&out](std::vector<Partial> ps) {
      out.insert(out.end(), std::make_move_iterator(ps.begin()),
                 std::make_move_iterator(ps.end()));
    };

    // Collected once per (partial, FROM item); every strategy below reads
    // the same reference set instead of re-scanning the definition.
    const References refs = CollectReferences(base.def, from_name);

    if (attr.has_value()) {
      append(DropStrategyForAttribute(base, from_name, *attr));
      if (options_.strategies.Has(Strategy::kJoinIn)) {
        extend(JoinInStrategies(base, from_name, *attr));
      }
    } else {
      append(DropStrategyForRelation(base, from_name, refs));
    }
    if (options_.strategies.Has(Strategy::kReplaceRelation)) {
      extend(ReplaceRelationStrategies(base, from_name));
    }
    if (options_.strategies.Has(Strategy::kCvsPair)) {
      extend(CvsPairStrategies(base, from_name, refs));
    }
    return out;
  }

  // --- Drop strategies ---------------------------------------------------

  // delete-attribute: drop exactly the references to from_name.attr.
  std::optional<Partial> DropStrategyForAttribute(const Partial& base,
                                                  const std::string& from_name,
                                                  const std::string& attr) const {
    Partial p = base;
    std::vector<int> sel;
    std::vector<int> whe;
    const RelAttr target{from_name, attr};
    for (size_t i = 0; i < p.def.select_items.size(); ++i) {
      if (p.def.select_items[i].source == target) {
        if (!p.def.select_items[i].dispensable) return std::nullopt;
        sel.push_back(static_cast<int>(i));
      }
    }
    for (size_t i = 0; i < p.def.where.size(); ++i) {
      bool touches = false;
      for (const RelAttr& a : p.def.where[i].clause.Attributes()) {
        if (a == target) touches = true;
      }
      if (touches) {
        if (!p.def.where[i].dispensable) return std::nullopt;
        whe.push_back(static_cast<int>(i));
      }
    }
    if (sel.empty() && whe.empty()) return std::nullopt;
    ApplyDrops(&p, sel, whe);
    if (p.def.select_items.empty()) return std::nullopt;
    MaybeDropUnusedFrom(&p, from_name);
    p.strategies.push_back("drop");
    p.notes.push_back("dropped references to deleted attribute " + from_name +
                      "." + attr);
    return p;
  }

  // delete-relation: drop the FROM item with everything it feeds.
  std::optional<Partial> DropStrategyForRelation(
      const Partial& base, const std::string& from_name,
      const References& refs) const {
    const FromItem* item = base.def.FindFrom(from_name);
    if (item == nullptr || !item->dispensable) return std::nullopt;
    Partial p = base;
    for (int i : refs.select_indexes) {
      if (!p.def.select_items[i].dispensable) return std::nullopt;
    }
    for (int i : refs.where_indexes) {
      if (!p.def.where[i].dispensable) return std::nullopt;
    }
    if (refs.select_indexes.size() >= p.def.select_items.size()) {
      return std::nullopt;  // Would drop every output attribute.
    }
    if (p.def.from_items.size() <= 1) return std::nullopt;
    ApplyDrops(&p, refs.select_indexes, refs.where_indexes);
    std::erase_if(p.def.from_items,
                  [&](const FromItem& f) { return f.name() == from_name; });
    // Removing a (joined) relation widens the extent on common attributes.
    p.Compose(ExtentRel::kSuperset, /*exact=*/true);
    p.strategies.push_back("drop");
    p.notes.push_back("dropped deleted relation " + from_name);
    return p;
  }

  // Drops the FROM item if nothing references it anymore and it is
  // dispensable; a dangling dispensable relation only multiplies tuples.
  void MaybeDropUnusedFrom(Partial* p, const std::string& from_name) const {
    if (p->def.RelationIsUsed(from_name)) return;
    const FromItem* item = p->def.FindFrom(from_name);
    if (item == nullptr || !item->dispensable) return;
    if (p->def.from_items.size() <= 1) return;
    std::erase_if(p->def.from_items,
                  [&](const FromItem& f) { return f.name() == from_name; });
    p->notes.push_back("dropped now-unreferenced relation " + from_name);
    p->Compose(ExtentRel::kSuperset, /*exact=*/true);
  }

  // --- Whole-relation replacement -----------------------------------------

  Result<RelationId> ResolveFromId(const FromItem& item) const {
    if (!item.site.empty()) return RelationId{item.site, item.relation};
    return mkb_.ResolveName(item.relation);
  }

  std::vector<Partial> ReplaceRelationStrategies(
      const Partial& base, const std::string& from_name) const {
    std::vector<Partial> out;
    const FromItem* item = base.def.FindFrom(from_name);
    if (item == nullptr || !item->replaceable) return out;
    const auto id = ResolveFromId(*item);
    if (!id.ok()) return out;
    for (const PcEdge& edge : mkb_.PcEdgesFromTransitive(id.value(), options_.max_pc_hops)) {
      if (edge.target == ChangedRelation(change_)) continue;
      auto p = TryReplaceRelation(base, from_name, edge);
      if (p.has_value()) out.push_back(std::move(*p));
    }
    return out;
  }

  std::optional<Partial> TryReplaceRelation(const Partial& base,
                                            const std::string& from_name,
                                            const PcEdge& edge) const {
    Partial p = base;
    const std::string new_name = FreshFromName(p.def, edge.target.relation);

    // Map / drop SELECT items sourced from the replaced relation.
    std::map<RelAttr, RelAttr> subst;
    std::vector<int> dropped_sel;
    bool anything_mapped = false;
    for (size_t i = 0; i < p.def.select_items.size(); ++i) {
      SelectItem& s = p.def.select_items[i];
      if (s.source.relation != from_name) continue;
      const auto mapped = edge.attribute_map.find(s.source.attribute);
      if (mapped != edge.attribute_map.end() && s.replaceable) {
        subst[s.source] = RelAttr{new_name, mapped->second};
        anything_mapped = true;
      } else if (s.dispensable) {
        dropped_sel.push_back(static_cast<int>(i));
      } else {
        return std::nullopt;  // Indispensable and not substitutable.
      }
    }

    // Map / drop WHERE clauses touching the replaced relation.
    std::vector<int> dropped_whe;
    for (size_t i = 0; i < p.def.where.size(); ++i) {
      ConditionItem& c = p.def.where[i];
      if (!c.clause.References(from_name)) continue;
      bool mappable = c.replaceable;
      for (const RelAttr& a : c.clause.Attributes()) {
        if (a.relation == from_name &&
            edge.attribute_map.count(a.attribute) == 0) {
          mappable = false;
        }
      }
      if (mappable) {
        for (const RelAttr& a : c.clause.Attributes()) {
          if (a.relation == from_name) {
            subst[a] = RelAttr{new_name, edge.attribute_map.at(a.attribute)};
          }
        }
        anything_mapped = true;
      } else if (c.dispensable) {
        dropped_whe.push_back(static_cast<int>(i));
      } else {
        return std::nullopt;
      }
    }
    if (!anything_mapped) return std::nullopt;  // Degenerate: plain drop.

    ApplyDrops(&p, dropped_sel, dropped_whe);
    // Rewrite surviving references.
    for (SelectItem& s : p.def.select_items) {
      const auto it = subst.find(s.source);
      if (it != subst.end()) {
        if (s.output_name.empty()) s.output_name = s.source.attribute;
        s.source = it->second;
      }
    }
    for (ConditionItem& c : p.def.where) c.clause = c.clause.Substitute(subst);

    // Swap the FROM item.
    for (FromItem& f : p.def.from_items) {
      if (f.name() == from_name) {
        f.site = edge.target.site;
        f.relation = edge.target.relation;
        f.alias = new_name == edge.target.relation ? "" : new_name;
        break;
      }
    }

    // Optionally pin the replacement to the constrained fragment.
    const bool target_selected = !edge.target_selection.IsTrue();
    bool applied_selection = false;
    if (target_selected && options_.apply_target_selection) {
      const std::map<std::string, std::string> rel_map{
          {edge.target.relation, new_name}};
      const Conjunction renamed = edge.target_selection.RenameRelations(rel_map);
      for (const PrimitiveClause& clause : renamed.clauses()) {
        ConditionItem ci;
        ci.clause = clause;
        p.def.where.push_back(std::move(ci));
      }
      applied_selection = true;
      p.notes.push_back("added PC fragment condition on " + new_name);
    }

    p.Compose(ReplacementExtentRel(edge, applied_selection),
              ReplacementExtentExact(edge, applied_selection));

    ReplacementRecord record;
    record.replaced = edge.source;
    record.replacement = edge.target;
    record.replaced_from_name = from_name;
    record.replacement_from_name = new_name;
    record.edge = edge;
    record.joined_in = false;
    p.replacements.push_back(std::move(record));
    p.strategies.push_back("replace-relation");
    p.notes.push_back("replaced " + edge.source.ToString() + " by " +
                      edge.target.ToString());
    return p;
  }

  // Extent relationship of a whole-relation replacement (see Fig. 9/10).
  static ExtentRel ReplacementExtentRel(const PcEdge& edge,
                                        bool applied_selection) {
    const bool src_sel = !edge.source_selection.IsTrue();
    const bool dst_sel = !edge.target_selection.IsTrue();
    if (src_sel) return ExtentRel::kUnknown;  // Only a fragment of R is known.
    if (edge.type == PcRelationType::kIncomparable) return ExtentRel::kUnknown;
    // R (whole) relates to the target fragment per the edge type.
    if (!dst_sel || applied_selection) {
      switch (edge.type) {
        case PcRelationType::kSubset:
          return ExtentRel::kSuperset;  // New view uses a bigger relation.
        case PcRelationType::kEquivalent:
          return ExtentRel::kEqual;
        case PcRelationType::kSuperset:
          return ExtentRel::kSubset;
        case PcRelationType::kIncomparable:
          return ExtentRel::kUnknown;
      }
    }
    // Target fragment selected but the view uses all of R2: R rel sigma(R2)
    // and sigma(R2) subseteq R2.
    switch (edge.type) {
      case PcRelationType::kSubset:
      case PcRelationType::kEquivalent:
        return ExtentRel::kSuperset;
      case PcRelationType::kSuperset:
      case PcRelationType::kIncomparable:
        return ExtentRel::kUnknown;
    }
    return ExtentRel::kUnknown;
  }

  static bool ReplacementExtentExact(const PcEdge& edge, bool applied_selection) {
    if (edge.type == PcRelationType::kIncomparable) return false;
    const bool src_sel = !edge.source_selection.IsTrue();
    if (src_sel) return false;
    const bool dst_sel = !edge.target_selection.IsTrue();
    if (!dst_sel || applied_selection) return true;
    return edge.type != PcRelationType::kSuperset;
  }

  // --- Join-in replacement (attribute-level) -------------------------------

  std::vector<Partial> JoinInStrategies(const Partial& base,
                                        const std::string& from_name,
                                        const std::string& attr) const {
    std::vector<Partial> out;
    const FromItem* item = base.def.FindFrom(from_name);
    if (item == nullptr) return out;
    const auto id = ResolveFromId(*item);
    if (!id.ok()) return out;

    // Every SELECT item losing the attribute must be replaceable; clauses
    // must be replaceable or dispensable (checked in TryJoinIn).
    for (const PcEdge& edge : mkb_.PcEdgesFromTransitive(id.value(), options_.max_pc_hops)) {
      if (edge.attribute_map.count(attr) == 0) continue;
      if (edge.target == id.value()) continue;
      const auto jcs = mkb_.FindJoinConstraints(id.value(), edge.target);
      for (const JoinConstraint* jc : jcs) {
        auto p = TryJoinIn(base, from_name, attr, edge, *jc);
        if (p.has_value()) out.push_back(std::move(*p));
      }
    }
    return out;
  }

  std::optional<Partial> TryJoinIn(const Partial& base,
                                   const std::string& from_name,
                                   const std::string& attr, const PcEdge& edge,
                                   const JoinConstraint& jc) const {
    // The join constraint must not itself use the deleted attribute.
    for (const RelAttr& a : jc.condition.Attributes()) {
      if (a.relation == edge.source.relation && a.attribute == attr) {
        return std::nullopt;
      }
    }
    Partial p = base;
    const std::string new_name = FreshFromName(p.def, edge.target.relation);
    const RelAttr lost{from_name, attr};
    const RelAttr found{new_name, edge.attribute_map.at(attr)};

    bool anything = false;
    for (SelectItem& s : p.def.select_items) {
      if (s.source == lost) {
        if (!s.replaceable) return std::nullopt;
        if (s.output_name.empty()) s.output_name = s.source.attribute;
        s.source = found;
        anything = true;
      }
    }
    std::vector<int> dropped_whe;
    const std::map<RelAttr, RelAttr> subst{{lost, found}};
    for (size_t i = 0; i < p.def.where.size(); ++i) {
      ConditionItem& c = p.def.where[i];
      bool touches = false;
      for (const RelAttr& a : c.clause.Attributes()) {
        if (a == lost) touches = true;
      }
      if (!touches) continue;
      if (c.replaceable) {
        c.clause = c.clause.Substitute(subst);
        anything = true;
      } else if (c.dispensable) {
        dropped_whe.push_back(static_cast<int>(i));
      } else {
        return std::nullopt;
      }
    }
    if (!anything) return std::nullopt;
    ApplyDrops(&p, {}, dropped_whe);

    // Join the auxiliary relation in via the JC.
    FromItem aux;
    aux.site = edge.target.site;
    aux.relation = edge.target.relation;
    aux.alias = new_name == edge.target.relation ? "" : new_name;
    aux.dispensable = false;
    aux.replaceable = true;
    p.def.from_items.push_back(std::move(aux));

    const std::map<std::string, std::string> rel_map{
        {edge.source.relation, from_name}, {edge.target.relation, new_name}};
    const Conjunction renamed_jc = jc.condition.RenameRelations(rel_map);
    for (const PrimitiveClause& clause : renamed_jc.clauses()) {
      ConditionItem ci;
      ci.clause = clause;
      ci.replaceable = true;
      p.def.where.push_back(std::move(ci));
    }

    // Extent estimate: with the lost fragment contained in the target
    // fragment, every surviving tuple recovers its attribute -> equal (but
    // inexact, as value-level agreement rests on the JC being key-based).
    switch (edge.type) {
      case PcRelationType::kSubset:
      case PcRelationType::kEquivalent:
        p.Compose(ExtentRel::kEqual, /*exact=*/false);
        break;
      case PcRelationType::kSuperset:
        p.Compose(ExtentRel::kSubset, /*exact=*/false);
        break;
      case PcRelationType::kIncomparable:
        p.Compose(ExtentRel::kUnknown, /*exact=*/false);
        break;
    }

    ReplacementRecord record;
    record.replaced = edge.source;
    record.replacement = edge.target;
    record.replaced_from_name = from_name;
    record.replacement_from_name = new_name;
    record.edge = edge;
    record.joined_in = true;
    p.replacements.push_back(std::move(record));
    p.strategies.push_back("join-in");
    p.notes.push_back("recovered " + from_name + "." + attr + " from " +
                      edge.target.ToString() + " via " + jc.ToString());
    return p;
  }

  // --- Complex (CVS-style) pair substitution -------------------------------

  std::vector<Partial> CvsPairStrategies(const Partial& base,
                                         const std::string& from_name,
                                         const References& refs) const {
    std::vector<Partial> out;
    const FromItem* item = base.def.FindFrom(from_name);
    if (item == nullptr || !item->replaceable) return out;
    const auto id = ResolveFromId(*item);
    if (!id.ok()) return out;
    const std::vector<PcEdge>& edges =
        mkb_.PcEdgesFromTransitive(id.value(), options_.max_pc_hops);
    for (size_t i = 0; i < edges.size(); ++i) {
      for (size_t j = 0; j < edges.size(); ++j) {
        if (i == j) continue;
        const PcEdge& e1 = edges[i];
        const PcEdge& e2 = edges[j];
        if (e1.target == e2.target) continue;
        if (e1.target == ChangedRelation(change_) ||
            e2.target == ChangedRelation(change_)) {
          continue;
        }
        const auto jcs = mkb_.FindJoinConstraints(e1.target, e2.target);
        for (const JoinConstraint* jc : jcs) {
          auto p = TryCvsPair(base, from_name, refs, e1, e2, *jc);
          if (p.has_value()) out.push_back(std::move(*p));
        }
      }
    }
    return out;
  }

  std::optional<Partial> TryCvsPair(const Partial& base,
                                    const std::string& from_name,
                                    const References& refs, const PcEdge& e1,
                                    const PcEdge& e2,
                                    const JoinConstraint& jc) const {
    Partial p = base;
    const std::string name1 = FreshFromName(p.def, e1.target.relation);
    // Reserve name1 before computing name2 (relations could share names
    // only across sites; FreshFromName needs the updated def, so fake it).
    const std::string name2 =
        e2.target.relation == name1
            ? FreshFromName(p.def, e2.target.relation + "_b")
            : FreshFromName(p.def, e2.target.relation);

    // Per-attribute target choice: prefer e1, fall back to e2.  The records
    // carry reduced maps so the legality oracle sees a consistent picture.
    std::map<std::string, RelAttr> merged;
    std::map<std::string, std::string> used1;
    std::map<std::string, std::string> used2;
    for (const std::string& a : refs.attributes) {
      if (const auto it = e1.attribute_map.find(a); it != e1.attribute_map.end()) {
        merged[a] = RelAttr{name1, it->second};
        used1[a] = it->second;
      } else if (const auto it2 = e2.attribute_map.find(a);
                 it2 != e2.attribute_map.end()) {
        merged[a] = RelAttr{name2, it2->second};
        used2[a] = it2->second;
      }
    }
    if (used1.empty() || used2.empty()) {
      return std::nullopt;  // One relation suffices: not a pair substitution.
    }

    std::map<RelAttr, RelAttr> subst;
    std::vector<int> dropped_sel;
    for (size_t i = 0; i < p.def.select_items.size(); ++i) {
      SelectItem& s = p.def.select_items[i];
      if (s.source.relation != from_name) continue;
      const auto it = merged.find(s.source.attribute);
      if (it != merged.end() && s.replaceable) {
        subst[s.source] = it->second;
      } else if (s.dispensable) {
        dropped_sel.push_back(static_cast<int>(i));
      } else {
        return std::nullopt;
      }
    }
    std::vector<int> dropped_whe;
    for (size_t i = 0; i < p.def.where.size(); ++i) {
      ConditionItem& c = p.def.where[i];
      if (!c.clause.References(from_name)) continue;
      bool mappable = c.replaceable;
      for (const RelAttr& a : c.clause.Attributes()) {
        if (a.relation == from_name && merged.count(a.attribute) == 0) {
          mappable = false;
        }
      }
      if (mappable) {
        for (const RelAttr& a : c.clause.Attributes()) {
          if (a.relation == from_name) subst[a] = merged.at(a.attribute);
        }
      } else if (c.dispensable) {
        dropped_whe.push_back(static_cast<int>(i));
      } else {
        return std::nullopt;
      }
    }
    ApplyDrops(&p, dropped_sel, dropped_whe);
    for (SelectItem& s : p.def.select_items) {
      const auto it = subst.find(s.source);
      if (it != subst.end()) {
        if (s.output_name.empty()) s.output_name = s.source.attribute;
        s.source = it->second;
      }
    }
    for (ConditionItem& c : p.def.where) c.clause = c.clause.Substitute(subst);

    // Replace the FROM item by the first target; append the second.
    for (FromItem& f : p.def.from_items) {
      if (f.name() == from_name) {
        f.site = e1.target.site;
        f.relation = e1.target.relation;
        f.alias = name1 == e1.target.relation ? "" : name1;
        break;
      }
    }
    FromItem second;
    second.site = e2.target.site;
    second.relation = e2.target.relation;
    second.alias = name2 == e2.target.relation ? "" : name2;
    second.replaceable = true;
    p.def.from_items.push_back(std::move(second));

    const std::map<std::string, std::string> rel_map{
        {e1.target.relation, name1}, {e2.target.relation, name2}};
    const Conjunction renamed_jc = jc.condition.RenameRelations(rel_map);
    for (const PrimitiveClause& clause : renamed_jc.clauses()) {
      ConditionItem ci;
      ci.clause = clause;
      ci.replaceable = true;
      p.def.where.push_back(std::move(ci));
    }

    const bool both_equivalent = e1.type == PcRelationType::kEquivalent &&
                                 e2.type == PcRelationType::kEquivalent &&
                                 e1.source_selection.IsTrue() &&
                                 e2.source_selection.IsTrue() &&
                                 e1.target_selection.IsTrue() &&
                                 e2.target_selection.IsTrue();
    p.Compose(both_equivalent ? ExtentRel::kEqual : ExtentRel::kUnknown,
              /*exact=*/false);

    for (const auto& [edge, used, nm] :
         {std::tuple<const PcEdge*, const std::map<std::string, std::string>*,
                     const std::string*>{&e1, &used1, &name1},
          {&e2, &used2, &name2}}) {
      ReplacementRecord record;
      record.replaced = edge->source;
      record.replacement = edge->target;
      record.replaced_from_name = from_name;
      record.replacement_from_name = *nm;
      record.edge = *edge;
      record.edge.attribute_map =
          std::map<std::string, std::string>(used->begin(), used->end());
      record.joined_in = false;
      p.replacements.push_back(std::move(record));
    }
    p.strategies.push_back("cvs-pair");
    p.notes.push_back("replaced " + from_name + " by join of " +
                      e1.target.ToString() + " and " + e2.target.ToString());
    return p;
  }

  // --- Post-processing ------------------------------------------------------

  void EnumerateDropSubsets(SynchronizationResult* result) const {
    std::vector<Rewriting> extra;
    for (const Rewriting& rw : result->rewritings) {
      std::vector<int> droppable;
      for (size_t i = 0; i < rw.definition.select_items.size(); ++i) {
        if (rw.definition.select_items[i].dispensable) {
          droppable.push_back(static_cast<int>(i));
        }
      }
      const int n = static_cast<int>(droppable.size());
      if (n == 0 || n > 10) continue;
      for (int mask = 1; mask < (1 << n); ++mask) {
        Rewriting variant = rw;
        std::vector<int> to_drop;
        for (int b = 0; b < n; ++b) {
          if (mask & (1 << b)) to_drop.push_back(droppable[b]);
        }
        if (to_drop.size() >= rw.definition.select_items.size()) continue;
        std::sort(to_drop.rbegin(), to_drop.rend());
        for (int i : to_drop) {
          variant.dropped_attributes.push_back(
              variant.definition.select_items[i].name());
          variant.definition.select_items.erase(
              variant.definition.select_items.begin() + i);
        }
        variant.strategy += "+drop-subset";
        extra.push_back(std::move(variant));
      }
    }
    result->rewritings.insert(result->rewritings.end(),
                              std::make_move_iterator(extra.begin()),
                              std::make_move_iterator(extra.end()));
  }

  Result<SynchronizationResult> Finish(SynchronizationResult result) const {
    // Keep only legal rewritings, dedupe structurally, cap.  Candidates are
    // bucketed by StructuralHash and compared with StructurallyEqual inside
    // a bucket, so dedup needs no string rendering and survives hash
    // collisions.
    std::vector<Rewriting> kept;
    std::unordered_map<size_t, std::vector<size_t>> buckets;
    for (Rewriting& rw : result.rewritings) {
      if (!CheckLegality(original_, rw).ok()) continue;
      const size_t hash = StructuralHash(rw.definition);
      std::vector<size_t>& bucket = buckets[hash];
      const bool duplicate =
          std::any_of(bucket.begin(), bucket.end(), [&](size_t i) {
            return StructurallyEqual(kept[i].definition, rw.definition);
          });
      if (duplicate) continue;
      bucket.push_back(kept.size());
      kept.push_back(std::move(rw));
      if (static_cast<int>(kept.size()) >= options_.max_rewritings) break;
    }
    result.rewritings = std::move(kept);
    return result;
  }

  const MetaKnowledgeBase& mkb_;
  const SynchronizerOptions& options_;
  const ViewDefinition& original_;
  const SchemaChange& change_;
};

}  // namespace

namespace internal {

Result<SynchronizationResult> SynchronizeEager(const MetaKnowledgeBase& mkb,
                                               const SynchronizerOptions& options,
                                               const ViewDefinition& view,
                                               const SchemaChange& change) {
  return EagerImpl(mkb, options, view, change).Run();
}

}  // namespace internal

}  // namespace eve
