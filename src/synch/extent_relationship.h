// The extent-relationship lattice used by the legality checker.
//
// A rewriting's extent relates to the original view extent (on the common
// subset of attributes) as equal, subset, superset, or unknown/approximate.
// Component transformations (dropping conditions, PC-based substitutions)
// each contribute a relationship; composition over the lattice yields the
// relationship of the whole rewriting, which is then checked against the
// view's VE evolution parameter (paper §5.4.2 and Fig. 8).

#ifndef EVE_SYNCH_EXTENT_RELATIONSHIP_H_
#define EVE_SYNCH_EXTENT_RELATIONSHIP_H_

#include <string_view>

#include "esql/ast.h"

namespace eve {

/// Relationship of the NEW extent to the OLD extent (common attributes).
enum class ExtentRel {
  kEqual,     ///< new = old
  kSubset,    ///< new ⊆ old
  kSuperset,  ///< new ⊇ old
  kUnknown,   ///< incomparable / approximate (Fig. 8(d))
};

std::string_view ExtentRelToString(ExtentRel rel);

/// Lattice composition: the relationship resulting from applying two
/// transformations in sequence.  kEqual is the identity; kSubset and
/// kSuperset absorb themselves and kEqual; mixing kSubset with kSuperset,
/// or anything with kUnknown, yields kUnknown.
ExtentRel ComposeExtentRel(ExtentRel a, ExtentRel b);

/// True iff a rewriting with relationship `rel` is admissible under the
/// view's VE parameter (paper Fig. 3):
///   VE '='        requires kEqual;
///   VE 'superset' requires kEqual or kSuperset;
///   VE 'subset'   requires kEqual or kSubset;
///   VE '~'        admits anything.
bool SatisfiesViewExtent(ExtentRel rel, ViewExtent ve);

}  // namespace eve

#endif  // EVE_SYNCH_EXTENT_RELATIONSHIP_H_
