#include "serve/snapshot.h"

#include "space/information_space.h"
#include "vkb/view_knowledge_base.h"

namespace eve {

namespace {

uint64_t NextEpoch() {
  // Process-unique, never 0: 0 is RelationProvider's "live space" value.
  static std::atomic<uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

SystemSnapshot::SystemSnapshot() : epoch_(NextEpoch()) {}

std::shared_ptr<SystemSnapshot> SystemSnapshot::Capture(
    const InformationSpace& space, const ViewKnowledgeBase* vkb) {
  auto snap = std::shared_ptr<SystemSnapshot>(new SystemSnapshot());
  for (const std::string& site : space.SiteNames()) {
    const auto source = space.GetSource(site);
    if (!source.ok()) continue;  // Racing drop; sites are capture-best-effort.
    for (const std::string& name : source.value()->RelationNames()) {
      const auto rel = source.value()->GetRelation(name);
      if (!rel.ok()) continue;
      RelationSnapshot rs;
      rs.site = site;
      rs.name = name;
      rs.source_identity = rel.value()->identity();
      rs.source_version = rel.value()->version();
      // The copy shares column segments and already-built index/hash
      // caches (CoW); later mutations of the live relation clone instead
      // of touching this frozen copy.
      rs.relation = std::make_shared<const Relation>(*rel.value());
      const size_t idx = snap->relations_.size();
      snap->relations_.push_back(std::move(rs));
      snap->by_site_[site][name] = idx;
      const auto [it, inserted] = snap->by_name_.emplace(name, idx);
      if (!inserted) it->second = kAmbiguous;
    }
  }
  if (vkb != nullptr) {
    for (const std::string& name : vkb->ViewNames()) {
      const auto entry = vkb->Get(name);
      if (!entry.ok() || entry.value()->state != ViewState::kAlive) continue;
      snap->views_.emplace(name, entry.value()->definition);
    }
  }
  return snap;
}

Result<const Relation*> SystemSnapshot::Resolve(
    const std::string& site, const std::string& relation) const {
  // Error spellings mirror InformationSpace::Resolve so callers cannot
  // tell the two providers apart.
  if (!site.empty()) {
    const auto sit = by_site_.find(site);
    if (sit == by_site_.end()) {
      return Status::NotFound("no information source named " + site);
    }
    const auto rit = sit->second.find(relation);
    if (rit == sit->second.end()) {
      return Status::NotFound("relation " + relation + " not at source " +
                              site);
    }
    return relations_[rit->second].relation.get();
  }
  const auto it = by_name_.find(relation);
  if (it == by_name_.end()) {
    return Status::NotFound("relation " + relation + " not in any source");
  }
  if (it->second == kAmbiguous) {
    return Status::FailedPrecondition("relation name " + relation +
                                      " is ambiguous across sites");
  }
  return relations_[it->second].relation.get();
}

Result<ViewDefinition> SystemSnapshot::View(const std::string& name) const {
  const auto it = views_.find(name);
  if (it == views_.end()) {
    return Status::NotFound("view " + name + " not alive in epoch " +
                            std::to_string(epoch_));
  }
  return it->second;
}

void SnapshotPublisher::Publish(std::shared_ptr<SystemSnapshot> snapshot) {
  // Single-publisher: sequence_ needs no RMW ordering games, the swap's
  // release pairs with readers' acquire loads.
  const uint64_t seq = sequence_.load(std::memory_order_relaxed) + 1;
  snapshot->sequence_ = seq;
#if defined(__SANITIZE_THREAD__)
  {
    std::lock_guard<std::mutex> lock(current_mu_);
    current_ = std::shared_ptr<const SystemSnapshot>(std::move(snapshot));
  }
#else
  current_.store(std::shared_ptr<const SystemSnapshot>(std::move(snapshot)),
                 std::memory_order_release);
#endif
  sequence_.store(seq, std::memory_order_release);
  stale_.store(false, std::memory_order_release);
}

}  // namespace eve
