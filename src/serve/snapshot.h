// Epoch-based snapshot publication (ROADMAP item 1, serving half 1).
//
// A SystemSnapshot is an immutable, self-contained copy of the information
// space (and the alive view definitions) at one instant: one frozen
// Relation per (site, relation), sharing the live relations' column
// segments and already-built index/hash caches through the storage layer's
// copy-on-write handles -- capture is O(total columns), not O(data).  The
// snapshot implements RelationProvider, so prepared plans, PlanCache, and
// ExecutePrepared run against it unchanged; because nothing can mutate it,
// the whole read path is lock-free after planning (plans capture their
// hash-join indexes at prepare time, plan/prepared_view.h).
//
// The SnapshotPublisher holds the current snapshot in an atomic
// shared_ptr.  Readers pin an epoch with Current() (wait-free, one atomic
// load + refcount); the single mutator thread captures the next epoch off
// to the side and swaps it in with Publish().  Old epochs stay alive for
// exactly as long as some reader still holds them.
//
// Epoch identity vs publication sequence: epoch() is process-unique
// (PlanCache keys its fast path on it -- see RelationProvider::
// SnapshotEpoch), while sequence() is publisher-local and increments by
// one per Publish, so a serving watchdog can measure how many swaps a
// pinned reader has fallen behind (serve/frontend.h).
//
// Failure semantics: when snapshot capture/swap fails (fault site
// `eve.snapshot_swap` in eve/eve_system.cc), the mutation that triggered
// it stays committed and the OLD epoch keeps serving; the publisher is
// marked stale and the next successful Publish clears the flag.  Readers
// degrade to slightly outdated answers instead of errors.

#ifndef EVE_SERVE_SNAPSHOT_H_
#define EVE_SERVE_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "algebra/provider.h"
#include "common/result.h"
#include "esql/ast.h"
#include "storage/relation.h"

namespace eve {

class InformationSpace;
class ViewKnowledgeBase;

/// One relation frozen at capture time.  The Relation copy shares the
/// source's column segments and prewarmed index/hash caches (CoW), and is
/// never mutated again, so any number of threads may scan and probe it
/// without synchronization.
struct RelationSnapshot {
  std::string site;
  std::string name;
  std::shared_ptr<const Relation> relation;
  uint64_t source_identity = 0;  ///< identity() of the live source relation.
  uint64_t source_version = 0;   ///< version() of the live source relation.
};

/// An immutable copy of the information space at one epoch.
class SystemSnapshot : public RelationProvider {
 public:
  /// Captures the current state of `space` (and, when non-null, the alive
  /// view definitions of `vkb`).  Must run on the mutator thread (the
  /// single-writer contract of Relation); the result is safe to share.
  static std::shared_ptr<SystemSnapshot> Capture(const InformationSpace& space,
                                                 const ViewKnowledgeBase* vkb);

  /// Process-unique epoch id (never 0; never reused within a process).
  uint64_t epoch() const { return epoch_; }

  /// Publisher-local publication number (0 until published; then the
  /// number of Publish calls up to and including this snapshot).
  uint64_t sequence() const { return sequence_; }

  // RelationProvider: mirrors InformationSpace::Resolve, including the
  // bare-name ambiguity contract.
  Result<const Relation*> Resolve(const std::string& site,
                                  const std::string& relation) const override;
  uint64_t SnapshotEpoch() const override { return epoch_; }

  /// The definition a view had at capture time (alive views only): during
  /// an evolution, readers pinned to this epoch keep querying the OLD
  /// definition until the new epoch is published.
  Result<ViewDefinition> View(const std::string& name) const;

  const std::vector<RelationSnapshot>& relations() const { return relations_; }

 private:
  friend class SnapshotPublisher;

  SystemSnapshot();

  uint64_t epoch_;
  uint64_t sequence_ = 0;
  std::vector<RelationSnapshot> relations_;
  /// site -> (name -> index into relations_).
  std::map<std::string, std::map<std::string, size_t>> by_site_;
  /// bare name -> index, or kAmbiguous when hosted by several sites.
  std::map<std::string, size_t> by_name_;
  /// Alive view definitions at capture time.
  std::map<std::string, ViewDefinition> views_;

  static constexpr size_t kAmbiguous = static_cast<size_t>(-1);
};

/// The atomically swapped current-snapshot slot (single publisher, many
/// pinning readers).
///
/// The slot is a std::atomic<std::shared_ptr> -- except under TSan, where
/// it degrades to a mutex-guarded shared_ptr with identical semantics:
/// GCC 12's _Sp_atomic implements the atomic shared_ptr with a lock bit
/// spliced into the refcount pointer, and that spinlock carries no TSan
/// annotations (libstdc++ added them in GCC 13), so every Publish/Current
/// pair reports a false data race the sanitizer cannot see through.
class SnapshotPublisher {
 public:
  SnapshotPublisher() = default;
  SnapshotPublisher(const SnapshotPublisher&) = delete;
  SnapshotPublisher& operator=(const SnapshotPublisher&) = delete;

  /// Atomically installs `snapshot` as the current epoch, stamping its
  /// publication sequence, and clears the stale flag.  Single-publisher.
  void Publish(std::shared_ptr<SystemSnapshot> snapshot);

  /// The current epoch, or nullptr before the first Publish.  Wait-free
  /// (one atomic load + refcount); the returned pointer pins the epoch for
  /// as long as it is held.
  std::shared_ptr<const SystemSnapshot> Current() const {
#if defined(__SANITIZE_THREAD__)
    std::lock_guard<std::mutex> lock(current_mu_);
    return current_;
#else
    return current_.load(std::memory_order_acquire);
#endif
  }

  /// Sequence number of the latest published epoch (0 before the first).
  /// The serving watchdog compares this against a pinned snapshot's
  /// sequence() to measure reader lag without dereferencing anything.
  uint64_t CurrentSequence() const {
    return sequence_.load(std::memory_order_acquire);
  }

  /// True when the latest mutation failed to publish its epoch, so
  /// Current() is known to be behind the live space.  Cleared by the next
  /// successful Publish.
  bool stale() const { return stale_.load(std::memory_order_acquire); }
  void MarkStale() { stale_.store(true, std::memory_order_release); }

 private:
#if defined(__SANITIZE_THREAD__)
  mutable std::mutex current_mu_;
  std::shared_ptr<const SystemSnapshot> current_;
#else
  std::atomic<std::shared_ptr<const SystemSnapshot>> current_{nullptr};
#endif
  std::atomic<uint64_t> sequence_{0};
  std::atomic<bool> stale_{false};
};

}  // namespace eve

#endif  // EVE_SERVE_SNAPSHOT_H_
