// ServingFrontEnd: the concurrent E-SQL serving layer over a shared
// EveSystem (ROADMAP item 1, serving half 2).
//
// Request path:
//
//   Submit ──EVE_FAULT_POINT(serve.admit)──> bounded admission queue
//     │  (queue past high-water, or closed: kUnavailable + retry-after)
//     v
//   worker pool (options.workers threads)
//     │ pin current epoch  <- snapshots().Current(), wait-free
//     │ watchdog lag check <- fail requests pinned > max_epoch_lag swaps
//     │                       behind the publisher with kUnavailable
//     │ parse / resolve view against the PINNED epoch
//     v
//   PlanCache::Execute against the pinned SystemSnapshot, governed by an
//   ExecContext carrying the request deadline and the watchdog's cancel
//   token ──EVE_FAULT_POINT(serve.execute)──> bounded retry with
//   exponential backoff on kInternal (the plan-quarantine path already
//   evicted the suspect plan).
//
// Degradation semantics (docs/SERVING.md):
//   * overload        -> shed at admission, kUnavailable, client retries;
//   * evolution       -> readers keep serving the epoch they pinned; the
//                        watchdog converts "pinned too far behind" into
//                        kUnavailable instead of letting stale reads block
//                        the system or serve arbitrarily old data;
//   * kInternal       -> retried max_retries times with doubling backoff
//                        (each retry replans via the quarantine path);
//   * kUnavailable    -> NEVER quarantines a plan and is never retried
//                        server-side; it is the client's signal to back
//                        off and resubmit.
//
// All members are thread-safe.  Shutdown() closes admission, drains the
// queue, and joins the workers; queued requests still complete.

#ifndef EVE_SERVE_FRONTEND_H_
#define EVE_SERVE_FRONTEND_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/bounded_queue.h"
#include "common/exec_context.h"
#include "common/result.h"
#include "eve/eve_system.h"
#include "plan/plan_cache.h"

namespace eve {

/// Tuning knobs of a ServingFrontEnd.
struct ServingOptions {
  /// Worker threads executing admitted requests.
  int workers = 4;
  /// Hard bound of the admission queue; TryPush past it is impossible.
  size_t queue_capacity = 256;
  /// Shed new requests once the queue holds this many (0 = 3/4 capacity).
  size_t high_water = 0;
  /// Per-request deadline applied when the request carries none (0 = no
  /// deadline).
  std::chrono::nanoseconds default_deadline{0};
  /// Extra attempts after a kInternal execution failure (each one replans
  /// through the PlanCache quarantine path).
  int max_retries = 2;
  /// First retry delay; doubles per retry (common/backoff.h).
  std::chrono::nanoseconds initial_backoff = std::chrono::microseconds(100);
  std::chrono::nanoseconds max_backoff = std::chrono::milliseconds(10);
  /// Retry-after hint returned with shed requests.
  std::chrono::nanoseconds retry_after = std::chrono::milliseconds(1);
  /// Watchdog: fail a request whose pinned epoch has fallen more than this
  /// many publications behind the publisher, instead of blocking on it.
  uint64_t max_epoch_lag = 8;
  /// Watchdog scan period.
  std::chrono::nanoseconds watchdog_period = std::chrono::microseconds(500);
  /// Plan/execution options for served queries.
  ExecOptions exec;
};

/// Outcome of one served request.
struct ServeResult {
  Status status;
  Relation relation;  ///< Valid iff status.ok().
  uint64_t epoch = 0;     ///< Epoch the request was served from (0 = none).
  uint64_t sequence = 0;  ///< Publication sequence of that epoch.
  int attempts = 0;       ///< Execution attempts (>1 means retried).
  /// With kUnavailable: how long the client should wait before retrying.
  std::chrono::nanoseconds retry_after{0};
};

/// Monotonic serving counters (telemetry; all approximate under races only
/// in their relative interleaving, each counter itself is exact).
struct ServingStats {
  int64_t admitted = 0;
  int64_t shed = 0;            ///< Rejected at admission (high-water/closed).
  int64_t completed = 0;       ///< Requests finished OK.
  int64_t failed = 0;          ///< Requests finished with an error.
  int64_t retries = 0;         ///< Extra execution attempts after kInternal.
  int64_t watchdog_kills = 0;  ///< Requests failed for pinning a lagged epoch.
};

class ServingFrontEnd {
 public:
  /// `system` must outlive the front end.  Workers (and the watchdog)
  /// start immediately.
  explicit ServingFrontEnd(EveSystem& system, ServingOptions options = {});
  ~ServingFrontEnd();

  ServingFrontEnd(const ServingFrontEnd&) = delete;
  ServingFrontEnd& operator=(const ServingFrontEnd&) = delete;

  /// Submits an ad-hoc E-SQL query ("CREATE VIEW q AS SELECT ...").  The
  /// future resolves when a worker finishes (or immediately with
  /// kUnavailable when shed at admission).
  std::future<ServeResult> Submit(std::string esql);

  /// Submits a query of a named view, resolved against the epoch the
  /// serving worker pins (so mid-evolution readers see the OLD definition
  /// until the new epoch publishes).
  std::future<ServeResult> SubmitView(std::string view_name);

  /// Synchronous conveniences.
  ServeResult Query(std::string esql) { return Submit(std::move(esql)).get(); }
  ServeResult QueryView(std::string view_name) {
    return SubmitView(std::move(view_name)).get();
  }

  /// Closes admission, drains already-admitted requests, joins workers.
  /// Idempotent; also run by the destructor.
  void Shutdown();

  ServingStats stats() const;
  /// The front end's own plan cache (per-epoch stats observability).
  const PlanCache& plan_cache() const { return plan_cache_; }
  size_t queue_depth() const { return queue_.size(); }

 private:
  struct Request {
    std::string esql;       ///< Ad-hoc query text (empty for view requests).
    std::string view_name;  ///< Named-view request (empty for ad-hoc).
    bool has_deadline = false;
    ExecContext::Clock::time_point deadline{};
    std::promise<ServeResult> done;
  };

  /// One request in execution, visible to the watchdog.
  struct InFlight {
    uint64_t pinned_sequence = 0;
    CancelToken cancel;
    std::atomic<bool> watchdog_fired{false};
  };

  std::future<ServeResult> Enqueue(Request request);
  void WorkerLoop();
  void WatchdogLoop();
  ServeResult Process(Request& request);
  /// One execution attempt against a freshly pinned epoch.
  ServeResult ExecuteOnce(const Request& request);

  EveSystem& system_;
  const ServingOptions options_;
  const size_t high_water_;
  PlanCache plan_cache_;
  BoundedQueue<std::unique_ptr<Request>> queue_;
  std::vector<std::thread> workers_;
  std::thread watchdog_;
  std::atomic<bool> stopping_{false};

  mutable std::mutex inflight_mu_;
  std::vector<std::shared_ptr<InFlight>> inflight_;

  mutable std::mutex stats_mu_;
  ServingStats stats_;
};

}  // namespace eve

#endif  // EVE_SERVE_FRONTEND_H_
