#include "serve/frontend.h"

#include <algorithm>
#include <utility>

#include "common/backoff.h"
#include "common/fault_injection.h"
#include "esql/parser.h"

namespace eve {

namespace {

/// Runs the admission fault site; a non-OK return is the injected fault.
Status AdmitFaultPoint() {
  EVE_FAULT_POINT("serve.admit");
  return Status::OK();
}

/// Runs the execution fault site (before any snapshot is pinned, so an
/// injected failure has no partial effects to undo; a kInternal injection
/// exercises the retry-with-backoff path end to end).
Status ExecuteFaultPoint() {
  EVE_FAULT_POINT("serve.execute");
  return Status::OK();
}

}  // namespace

ServingFrontEnd::ServingFrontEnd(EveSystem& system, ServingOptions options)
    : system_(system),
      options_(options),
      high_water_(options.high_water != 0
                      ? options.high_water
                      : std::max<size_t>(1, options.queue_capacity * 3 / 4)),
      queue_(options.queue_capacity) {
  const int workers = std::max(1, options_.workers);
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  watchdog_ = std::thread([this] { WatchdogLoop(); });
}

ServingFrontEnd::~ServingFrontEnd() { Shutdown(); }

void ServingFrontEnd::Shutdown() {
  // Close admission first: new Submits shed with kUnavailable while the
  // workers drain what was already admitted (Pop returns the queued items
  // before signalling closed-and-drained).
  if (stopping_.exchange(true)) {
    // A concurrent/second Shutdown: the first caller joins the threads.
    return;
  }
  queue_.Close();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  if (watchdog_.joinable()) watchdog_.join();
}

std::future<ServeResult> ServingFrontEnd::Submit(std::string esql) {
  Request request;
  request.esql = std::move(esql);
  return Enqueue(std::move(request));
}

std::future<ServeResult> ServingFrontEnd::SubmitView(std::string view_name) {
  Request request;
  request.view_name = std::move(view_name);
  return Enqueue(std::move(request));
}

std::future<ServeResult> ServingFrontEnd::Enqueue(Request request) {
  std::future<ServeResult> future = request.done.get_future();
  const auto reject = [&](Status status,
                          std::chrono::nanoseconds retry_after) {
    ServeResult result;
    result.status = std::move(status);
    result.retry_after = retry_after;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.shed;
    }
    request.done.set_value(std::move(result));
    return std::move(future);
  };

  if (const Status faulted = AdmitFaultPoint(); !faulted.ok()) {
    return reject(faulted, options_.retry_after);
  }
  if (stopping_.load(std::memory_order_acquire)) {
    return reject(Status::Unavailable("serving front end is shutting down"),
                  options_.retry_after);
  }
  // Load shedding: past high-water the queue is considered overloaded and
  // the client is told to back off, long before the hard capacity bound.
  if (queue_.size() >= high_water_) {
    return reject(
        Status::Unavailable("admission queue past high-water; retry later"),
        options_.retry_after);
  }
  // The deadline starts at admission, so time spent queued counts against
  // it -- an overloaded system fails requests instead of serving them
  // arbitrarily late.
  if (options_.default_deadline.count() > 0) {
    request.has_deadline = true;
    request.deadline = ExecContext::Clock::now() + options_.default_deadline;
  }
  auto boxed = std::make_unique<Request>(std::move(request));
  if (!queue_.TryPush(std::move(boxed))) {
    // Raced to full/closed between the high-water probe and the push.
    // TryPush does not consume on failure, so the promise is still ours.
    ServeResult result;
    result.status = Status::Unavailable("admission queue full; retry later");
    result.retry_after = options_.retry_after;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.shed;
    }
    boxed->done.set_value(std::move(result));
    return future;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.admitted;
  }
  return future;
}

void ServingFrontEnd::WorkerLoop() {
  while (true) {
    std::optional<std::unique_ptr<Request>> item = queue_.Pop();
    if (!item.has_value()) return;  // Closed and drained.
    Request& request = **item;
    request.done.set_value(Process(request));
  }
}

ServeResult ServingFrontEnd::Process(Request& request) {
  ExponentialBackoff backoff(options_.initial_backoff, options_.max_backoff);
  ServeResult result;
  int attempts = 0;
  while (true) {
    result = ExecuteOnce(request);
    ++attempts;
    // Only kInternal is retried: it may implicate the cached plan, which
    // PlanCache::Execute already quarantined, so the retry replans from
    // scratch.  Governance errors blame the caller's limits and
    // kUnavailable is the client's retry, not ours.
    if (result.status.code() != StatusCode::kInternal ||
        attempts > options_.max_retries ||
        stopping_.load(std::memory_order_acquire)) {
      break;
    }
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.retries;
    }
    std::this_thread::sleep_for(backoff.Next());
  }
  result.attempts = attempts;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (result.status.ok()) {
      ++stats_.completed;
    } else {
      ++stats_.failed;
    }
  }
  return result;
}

ServeResult ServingFrontEnd::ExecuteOnce(const Request& request) {
  ServeResult result;
  if (const Status faulted = ExecuteFaultPoint(); !faulted.ok()) {
    result.status = faulted;
    return result;
  }

  // Pin the current epoch: one wait-free atomic load; everything below
  // reads only this immutable snapshot.
  const std::shared_ptr<const SystemSnapshot> snap =
      system_.snapshots().Current();
  if (snap == nullptr) {
    result.status = Status::Unavailable("no epoch published yet");
    result.retry_after = options_.retry_after;
    return result;
  }
  result.epoch = snap->epoch();
  result.sequence = snap->sequence();

  // Pre-check the lag so a request admitted during a burst of evolutions
  // fails fast instead of executing against an ancient epoch.
  const uint64_t published = system_.snapshots().CurrentSequence();
  if (published - snap->sequence() > options_.max_epoch_lag) {
    result.status = Status::Unavailable(
        "pinned epoch lags the publisher; resubmit against a fresh epoch");
    result.retry_after = options_.retry_after;
    return result;
  }

  // Register with the watchdog for the duration of the execution.
  auto inflight = std::make_shared<InFlight>();
  inflight->pinned_sequence = snap->sequence();
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    inflight_.push_back(inflight);
  }

  ExecContext ctx;
  ctx.WithCancelToken(&inflight->cancel);
  if (request.has_deadline) ctx.WithDeadline(request.deadline);

  Result<Relation> executed = [&]() -> Result<Relation> {
    ViewDefinition def;
    if (!request.view_name.empty()) {
      EVE_ASSIGN_OR_RETURN(def, snap->View(request.view_name));
    } else {
      EVE_ASSIGN_OR_RETURN(def, ParseViewDefinition(request.esql));
    }
    return plan_cache_.Execute(def, *snap, options_.exec, ctx);
  }();

  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    inflight_.erase(std::find(inflight_.begin(), inflight_.end(), inflight));
  }

  if (executed.ok()) {
    result.relation = std::move(executed).value();
    return result;
  }
  if (executed.status().code() == StatusCode::kCancelled &&
      inflight->watchdog_fired.load(std::memory_order_acquire)) {
    // The watchdog cancelled us for pinning an epoch too far behind:
    // surface it as the retryable degradation signal, not a caller error.
    result.status = Status::Unavailable(
        "request pinned an epoch more than " +
        std::to_string(options_.max_epoch_lag) +
        " publications behind; resubmit against a fresh epoch");
    result.retry_after = options_.retry_after;
    return result;
  }
  result.status = executed.status();
  return result;
}

void ServingFrontEnd::WatchdogLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(options_.watchdog_period);
    const uint64_t published = system_.snapshots().CurrentSequence();
    std::lock_guard<std::mutex> lock(inflight_mu_);
    for (const std::shared_ptr<InFlight>& f : inflight_) {
      if (f->watchdog_fired.load(std::memory_order_relaxed)) continue;
      if (published - f->pinned_sequence <= options_.max_epoch_lag) continue;
      f->watchdog_fired.store(true, std::memory_order_release);
      f->cancel.Cancel();
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      ++stats_.watchdog_kills;
    }
  }
}

ServingStats ServingFrontEnd::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace eve
