// The analytic view-maintenance cost model (paper §6).
//
// For one data update originating at one of the view's base relations, the
// model propagates a delta relation site by site (the maintenance process
// of Fig. 11 / Algorithm 1) and accounts:
//   CF_M   -- messages exchanged (§6.2): one update notification plus a
//             query/answer round trip per visited site; the origin site is
//             visited only if it hosts further view relations,
//   CF_T   -- bytes transferred (Eq. 21/22): the delta starts as one tuple
//             of the updated relation's width; joining the relations of a
//             site multiplies its cardinality by sigma*js*|R| per relation
//             and widens each tuple by the relation's tuple size,
//   CF_IO  -- I/Os at the sources (Eq. 32/33): per join, the cheaper of a
//             full scan and an index-assisted fetch.  Eq. 33 brackets the
//             index cost between ceil(js|R|/bfr) lookups per delta tuple
//             (lower) and js|R| tuple fetches (upper); both bounds are
//             implemented (IoBoundPolicy).  The paper's Experiments 2/5
//             match the lower bound, Experiment 4 the upper bound.
//
// Cost(V) = CF_M * cost_M + CF_T * cost_T + CF_IO * cost_IO   (Eq. 24).

#ifndef EVE_QC_COST_MODEL_H_
#define EVE_QC_COST_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/names.h"
#include "common/result.h"
#include "esql/ast.h"
#include "esql/view_delta.h"
#include "misd/mkb.h"
#include "qc/parameters.h"
#include "storage/block_model.h"

namespace eve {

/// Which Eq. 33 bound the index-assisted join I/O estimate uses.
enum class IoBoundPolicy {
  kLower,  ///< ceil(js*|R| / bfr) block fetches per delta tuple (clustered).
  kUpper,  ///< js*|R| tuple fetches per delta tuple (unclustered).
};

/// Options of the analytic cost model.
struct CostModelOptions {
  IoBoundPolicy io_policy = IoBoundPolicy::kLower;
  /// Count the update notification as a message (the paper's experiments
  /// do; the closed formula of §6.2 does not).
  bool count_notification_message = true;
  /// Block layout for the I/O estimate (paper: 1000-byte blocks -> bfr 10).
  BlockModel block;
};

/// One base relation of a view, as the cost model sees it.
struct CostRelation {
  RelationId id;
  int64_t cardinality = 0;
  int64_t tuple_bytes = 100;
  /// Selectivity of the view's local condition on this relation (1.0 when
  /// the view has none).
  double local_selectivity = 1.0;
};

/// The cost-model input: the view's base relations in join order with their
/// site assignment (CostRelation::id.site) and the space-wide join
/// selectivity js (§6.1 assumption 3).
struct ViewCostInput {
  std::vector<CostRelation> relations;
  double join_selectivity = 0.005;

  /// Number of distinct sites.
  int SiteCount() const;
};

/// Cost factors of one data update (or totals over a workload).
struct CostFactors {
  double messages = 0;
  double bytes = 0;
  double ios = 0;

  /// Eq. 24 with the unit prices of `p`.
  double Weighted(const QcParameters& p) const {
    return messages * p.cost_message + bytes * p.cost_transfer +
           ios * p.cost_io;
  }

  CostFactors& operator+=(const CostFactors& o);
  CostFactors operator*(double k) const;

  std::string ToString() const;
};

/// Cost factors of a single data update originating at
/// `input.relations[updated_index]` (paper §6.1-6.4).
Result<CostFactors> SingleUpdateCost(const ViewCostInput& input,
                                     size_t updated_index,
                                     const CostModelOptions& options = {});

/// Builds the cost-model input of a view definition from MKB statistics:
/// each FROM item is resolved to its relation id, cardinality and width are
/// read from the statistics store, and the local selectivity is the
/// relation's registered selectivity when the view places at least one
/// local condition on it (1.0 otherwise).
Result<ViewCostInput> BuildCostInput(const ViewDefinition& view,
                                     const MetaKnowledgeBase& mkb);

/// Delta-native variant over a compiled (base, delta) overlay
/// (esql/view_delta.h), so candidate scoring never materializes the view.
Result<ViewCostInput> BuildCostInput(const DeltaView& view,
                                     const MetaKnowledgeBase& mkb);

/// The closed-form message count of §6.2 (excludes the notification):
/// 0 / 2 / 2(m-1) / 2m depending on m and n1.
int64_t MessagesClosedForm(int num_sites, int relations_at_origin_besides_updated);

}  // namespace eve

#endif  // EVE_QC_COST_MODEL_H_
