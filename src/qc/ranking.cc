#include "qc/ranking.h"

#include <algorithm>
#include <numeric>

#include "common/parallel.h"
#include "common/str_util.h"
#include "esql/printer.h"

namespace eve {

std::vector<double> NormalizeCosts(const std::vector<double>& costs) {
  std::vector<double> out(costs.size(), 0.0);
  if (costs.empty()) return out;
  const auto [min_it, max_it] = std::minmax_element(costs.begin(), costs.end());
  const double lo = *min_it;
  const double hi = *max_it;
  if (hi - lo <= 0.0) return out;
  for (size_t i = 0; i < costs.size(); ++i) {
    out[i] = (costs[i] - lo) / (hi - lo);
  }
  return out;
}

QcModel::QcModel(QcParameters params, CostModelOptions cost_options,
                 WorkloadOptions workload)
    : params_(params), cost_options_(cost_options), workload_(workload) {}

namespace {

// Eq. 25/26 normalization + ordering over already-scored rewritings
// (shared by the materialized and the delta-native entry points).
std::vector<RankedRewriting> FinishRanking(std::vector<RankedRewriting> out,
                                           const QcParameters& params) {
  std::vector<double> costs;
  costs.reserve(out.size());
  for (const RankedRewriting& r : out) costs.push_back(r.weighted_cost);
  const std::vector<double> normalized = NormalizeCosts(costs);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i].normalized_cost = normalized[i];
    out[i].qc = 1.0 - (params.rho_quality * out[i].quality.dd +
                       params.rho_cost * out[i].normalized_cost);
  }

  // Rank by descending QC; break ties by lower divergence, then input order.
  std::vector<size_t> order(out.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (out[a].qc != out[b].qc) return out[a].qc > out[b].qc;
    return out[a].quality.dd < out[b].quality.dd;
  });
  std::vector<RankedRewriting> sorted;
  sorted.reserve(out.size());
  for (size_t i = 0; i < order.size(); ++i) {
    out[order[i]].rank = static_cast<int>(i) + 1;
    sorted.push_back(std::move(out[order[i]]));
  }
  return sorted;
}

}  // namespace

Result<std::vector<RankedRewriting>> QcModel::Rank(
    const ViewDefinition& original, std::vector<Rewriting> rewritings,
    const MetaKnowledgeBase& mkb) const {
  EVE_RETURN_IF_ERROR(params_.Validate());
  std::vector<RankedRewriting> out;
  out.reserve(rewritings.size());
  for (Rewriting& rw : rewritings) {
    RankedRewriting ranked;
    EVE_ASSIGN_OR_RETURN(ranked.quality,
                         EstimateQuality(original, rw, mkb, params_));
    EVE_ASSIGN_OR_RETURN(ViewCostInput input,
                         BuildCostInput(rw.definition, mkb));
    EVE_ASSIGN_OR_RETURN(ranked.cost,
                         ComputeWorkloadCost(input, workload_, cost_options_));
    ranked.weighted_cost = ranked.cost.Weighted(params_);
    ranked.rewriting = std::move(rw);
    out.push_back(std::move(ranked));
  }
  return FinishRanking(std::move(out), params_);
}

Result<std::vector<RankedRewriting>> QcModel::RankCandidates(
    const ViewDefinition& original, std::vector<RewriteCandidate> candidates,
    const MetaKnowledgeBase& mkb, int threads) const {
  EVE_RETURN_IF_ERROR(params_.Validate());
  const int64_t n = static_cast<int64_t>(candidates.size());
  // Candidate scores are independent (the MKB memos the scorers share are
  // internally synchronized), so wide fan-outs -- up to the synchronizer's
  // 256-candidate cap per view -- score under ParallelFor.  An explicit
  // `threads` wins; the default engages extra workers only when the set is
  // wide enough to amortize thread startup AND this call is not already
  // running inside a parallel sweep (the experiment drivers ParallelFor
  // their scenario loops; nesting would oversubscribe the machine).
  constexpr int64_t kParallelThreshold = 32;
  const int workers =
      threads > 0
          ? threads
          : (n >= kParallelThreshold && !InParallelRegion()
                 ? DefaultThreadCount()
                 : 1);
  std::vector<RankedRewriting> out(candidates.size());
  std::vector<Status> statuses(candidates.size(), Status::OK());
  ParallelFor(n, workers, [&](int64_t i) {
    RewriteCandidate& c = candidates[i];
    RankedRewriting& ranked = out[i];
    // Score over the compiled overlay; materialize once for the result.
    const DeltaView view = c.View();
    auto quality = EstimateQuality(original, c, view, mkb, params_);
    if (!quality.ok()) {
      statuses[i] = quality.status();
      return;
    }
    ranked.quality = std::move(quality).value();
    auto input = BuildCostInput(view, mkb);
    if (!input.ok()) {
      statuses[i] = input.status();
      return;
    }
    auto cost = ComputeWorkloadCost(*input, workload_, cost_options_);
    if (!cost.ok()) {
      statuses[i] = cost.status();
      return;
    }
    ranked.cost = std::move(cost).value();
    ranked.weighted_cost = ranked.cost.Weighted(params_);
    ranked.rewriting = std::move(c).ToRewriting(view.Materialize());
  });
  // First failure in candidate order wins, independent of scheduling.
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return FinishRanking(std::move(out), params_);
}

std::string QcModel::FormatRanking(const std::vector<RankedRewriting>& ranking) {
  std::string out;
  out += StrFormat("%-5s %-8s %-8s %-10s %-9s %-8s  %s\n", "rank", "DD_attr",
                   "DD_ext", "Cost", "Cost*", "QC", "rewriting");
  for (const RankedRewriting& r : ranking) {
    out += StrFormat("%-5d %-8s %-8s %-10s %-9s %-8s  %s\n", r.rank,
                     FormatDouble(r.quality.dd_attr, 4).c_str(),
                     FormatDouble(r.quality.dd_ext, 4).c_str(),
                     FormatDouble(r.weighted_cost, 1).c_str(),
                     FormatDouble(r.normalized_cost, 4).c_str(),
                     FormatDouble(r.qc, 5).c_str(),
                     PrintViewCompact(r.rewriting.definition).c_str());
  }
  return out;
}

}  // namespace eve
