// The trade-off parameters of the QC-Model, with the paper's defaults.
//
//   w1, w2        -- interface weights for dispensable attributes
//                    (Fig. 6: category C1 = replaceable, C2 = non-replaceable;
//                    defaults (0.7, 0.3), §5.2)
//   rho_d1, rho_d2 -- extent divergence trade-off between lost tuples (D1)
//                    and surplus tuples (D2) (Eq. 15; defaults (0.5, 0.5))
//   rho_attr, rho_ext -- interface vs extent weight in the total degree of
//                    divergence (Eq. 20; Experiment 4 uses (0.7, 0.3))
//   cost_message, cost_transfer, cost_io -- unit prices of Eq. 24
//                    (Experiment 4 uses (0.1, 0.7, 0.2))
//   rho_quality, rho_cost -- the final quality/cost trade-off (Eq. 26;
//                    Experiment 4 case 1 uses (0.9, 0.1))

#ifndef EVE_QC_PARAMETERS_H_
#define EVE_QC_PARAMETERS_H_

#include "common/status.h"

namespace eve {

/// All user-tunable weights of the QC-Model.
struct QcParameters {
  // Interface preservation (Fig. 6).
  double w1 = 0.7;
  double w2 = 0.3;
  // Extent divergence (Eq. 15).
  double rho_d1 = 0.5;
  double rho_d2 = 0.5;
  // Total degree of divergence (Eq. 20).
  double rho_attr = 0.7;
  double rho_ext = 0.3;
  // Unit costs (Eq. 24).
  double cost_message = 0.1;
  double cost_transfer = 0.7;
  double cost_io = 0.2;
  // Overall efficiency (Eq. 26).
  double rho_quality = 0.9;
  double rho_cost = 0.1;

  /// Checks ranges and the three sum-to-one constraints
  /// (rho_d1 + rho_d2 = 1, rho_attr + rho_ext = 1, rho_quality + rho_cost = 1).
  Status Validate() const;
};

}  // namespace eve

#endif  // EVE_QC_PARAMETERS_H_
