#include "qc/cost_model.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/str_util.h"

namespace eve {

int ViewCostInput::SiteCount() const {
  std::set<std::string> sites;
  for (const CostRelation& r : relations) sites.insert(r.id.site);
  return static_cast<int>(sites.size());
}

CostFactors& CostFactors::operator+=(const CostFactors& o) {
  messages += o.messages;
  bytes += o.bytes;
  ios += o.ios;
  return *this;
}

CostFactors CostFactors::operator*(double k) const {
  return CostFactors{messages * k, bytes * k, ios * k};
}

std::string CostFactors::ToString() const {
  return StrFormat("CF_M=%s CF_T=%s CF_IO=%s", FormatDouble(messages).c_str(),
                   FormatDouble(bytes).c_str(), FormatDouble(ios).c_str());
}

int64_t MessagesClosedForm(int num_sites,
                           int relations_at_origin_besides_updated) {
  const int m = num_sites;
  const int n1 = relations_at_origin_besides_updated;
  if (m <= 1) return n1 == 0 ? 0 : 2;
  return n1 == 0 ? 2 * (m - 1) : 2 * m;
}

Result<CostFactors> SingleUpdateCost(const ViewCostInput& input,
                                     size_t updated_index,
                                     const CostModelOptions& options) {
  if (updated_index >= input.relations.size()) {
    return Status::OutOfRange("updated relation index out of range");
  }
  if (input.join_selectivity <= 0.0) {
    return Status::InvalidArgument("join selectivity must be positive");
  }
  const CostRelation& updated = input.relations[updated_index];
  const double js = input.join_selectivity;

  // Visit order: the origin site first, then the remaining sites in order
  // of first appearance; within a site, relations in input order, excluding
  // the updated relation itself (paper Fig. 11).
  std::vector<std::string> site_order{updated.id.site};
  for (const CostRelation& r : input.relations) {
    if (std::find(site_order.begin(), site_order.end(), r.id.site) ==
        site_order.end()) {
      site_order.push_back(r.id.site);
    }
  }

  CostFactors cf;
  double card = 1.0;                                        // Delta cardinality.
  double width = static_cast<double>(updated.tuple_bytes);  // Delta width.
  // Delta cardinality for the I/O bound: the local optimizer sees every
  // matching tuple before selections are applied (no sigma damping); this
  // is the js^{i-1} * prod |R_j| factor of Eq. 33.
  double io_delta = 1.0;

  cf.bytes += width;  // Update notification (first term of Eq. 21).
  if (options.count_notification_message) cf.messages += 1;

  for (const std::string& site : site_order) {
    std::vector<const CostRelation*> rels;
    for (size_t i = 0; i < input.relations.size(); ++i) {
      if (i != updated_index && input.relations[i].id.site == site) {
        rels.push_back(&input.relations[i]);
      }
    }
    if (rels.empty()) continue;  // Origin site with n_i == 0: no query.

    cf.messages += 2;          // Single-site query + answer.
    cf.bytes += card * width;  // Delta shipped to the site.

    for (const CostRelation* r : rels) {
      // I/O of joining the incoming delta with r (Eq. 33): the cheaper of a
      // full scan and an index-assisted fetch of the matching tuples.
      const double scan =
          static_cast<double>(options.block.ScanIos(r->cardinality, r->tuple_bytes));
      double indexed = 0.0;
      switch (options.io_policy) {
        case IoBoundPolicy::kLower: {
          // Matching tuples are clustered: ceil(js|R|/bfr) blocks per probe.
          const double matched = js * static_cast<double>(r->cardinality);
          const int64_t blocks = CeilDiv(
              static_cast<int64_t>(std::ceil(matched)),
              options.block.BlockingFactor(r->tuple_bytes));
          indexed = io_delta * static_cast<double>(std::max<int64_t>(blocks, 1));
          break;
        }
        case IoBoundPolicy::kUpper:
          // One I/O per matching tuple (unclustered index).
          indexed = io_delta * js * static_cast<double>(r->cardinality);
          break;
      }
      cf.ios += std::min(scan, indexed);

      io_delta *= js * static_cast<double>(r->cardinality);
      card *= r->local_selectivity * js * static_cast<double>(r->cardinality);
      width += static_cast<double>(r->tuple_bytes);
    }
    cf.bytes += card * width;  // Result shipped back to the view site.
  }
  return cf;
}

namespace {

inline int FromSize(const ViewDefinition& v) {
  return static_cast<int>(v.from_items.size());
}
inline const FromItem& FromAt(const ViewDefinition& v, int i) {
  return v.from_items[i];
}
inline int FromSize(const DeltaView& v) { return v.from_size(); }
inline const FromItem& FromAt(const DeltaView& v, int i) { return v.from(i); }

// One implementation for the materialized definition and the compiled
// (base, delta) overlay; both read FROM items and local conjunctions only.
template <typename View>
Result<ViewCostInput> BuildCostInputImpl(const View& view,
                                         const MetaKnowledgeBase& mkb) {
  ViewCostInput input;
  input.join_selectivity = mkb.stats().join_selectivity();
  for (int i = 0; i < FromSize(view); ++i) {
    const FromItem& f = FromAt(view, i);
    RelationId id;
    if (!f.site.empty()) {
      id = RelationId{f.site, f.relation};
    } else {
      EVE_ASSIGN_OR_RETURN(id, mkb.ResolveName(f.relation));
    }
    EVE_ASSIGN_OR_RETURN(RelationStats stats, mkb.stats().Get(id));
    CostRelation rel;
    rel.id = id;
    rel.cardinality = stats.cardinality;
    rel.tuple_bytes = stats.tuple_bytes;
    rel.local_selectivity =
        view.LocalConjunction(f.name()).IsTrue() ? 1.0 : stats.local_selectivity;
    input.relations.push_back(std::move(rel));
  }
  return input;
}

}  // namespace

Result<ViewCostInput> BuildCostInput(const ViewDefinition& view,
                                     const MetaKnowledgeBase& mkb) {
  return BuildCostInputImpl(view, mkb);
}

Result<ViewCostInput> BuildCostInput(const DeltaView& view,
                                     const MetaKnowledgeBase& mkb) {
  return BuildCostInputImpl(view, mkb);
}

}  // namespace eve
