#include "qc/parameters.h"

#include <cmath>

#include "common/str_util.h"

namespace eve {

namespace {

Status CheckUnit(const char* name, double v) {
  if (v < 0.0 || v > 1.0 || std::isnan(v)) {
    return Status::InvalidArgument(
        StrFormat("parameter %s must be in [0, 1], got %f", name, v));
  }
  return Status::OK();
}

Status CheckPair(const char* a_name, double a, const char* b_name, double b) {
  EVE_RETURN_IF_ERROR(CheckUnit(a_name, a));
  EVE_RETURN_IF_ERROR(CheckUnit(b_name, b));
  if (std::fabs(a + b - 1.0) > 1e-9) {
    return Status::InvalidArgument(StrFormat(
        "parameters %s + %s must sum to 1, got %f", a_name, b_name, a + b));
  }
  return Status::OK();
}

}  // namespace

Status QcParameters::Validate() const {
  EVE_RETURN_IF_ERROR(CheckUnit("w1", w1));
  EVE_RETURN_IF_ERROR(CheckUnit("w2", w2));
  EVE_RETURN_IF_ERROR(CheckPair("rho_d1", rho_d1, "rho_d2", rho_d2));
  EVE_RETURN_IF_ERROR(CheckPair("rho_attr", rho_attr, "rho_ext", rho_ext));
  EVE_RETURN_IF_ERROR(
      CheckPair("rho_quality", rho_quality, "rho_cost", rho_cost));
  for (const auto& [name, v] : {std::pair<const char*, double>{"cost_message", cost_message},
                                {"cost_transfer", cost_transfer},
                                {"cost_io", cost_io}}) {
    if (v < 0.0 || std::isnan(v)) {
      return Status::InvalidArgument(
          StrFormat("unit price %s must be non-negative", name));
    }
  }
  return Status::OK();
}

}  // namespace eve
