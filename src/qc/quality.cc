#include "qc/quality.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "algebra/common_subset.h"
#include "common/str_util.h"
#include "misd/overlap_estimator.h"

namespace eve {

std::string QualityBreakdown::ToString() const {
  return StrFormat(
      "DD_attr=%s DD_ext=%s (D1=%s, D2=%s) DD=%s%s",
      FormatDouble(dd_attr, 4).c_str(), FormatDouble(dd_ext, 4).c_str(),
      FormatDouble(dd_ext_d1, 4).c_str(), FormatDouble(dd_ext_d2, 4).c_str(),
      FormatDouble(dd, 4).c_str(), exact ? "" : " (approx)");
}

double InterfaceQuality(const ViewDefinition& view, const QcParameters& params) {
  double q = 0.0;
  for (const SelectItem& s : view.select_items) {
    if (!s.dispensable) continue;  // Categories C3/C4 carry no weight.
    q += s.replaceable ? params.w1 : params.w2;
  }
  return q;
}

namespace {

// Uniform FROM-item access over a materialized definition or a compiled
// (base, delta) overlay, so the size/overlap estimators below have exactly
// one implementation for both.
inline int FromSize(const ViewDefinition& v) {
  return static_cast<int>(v.from_items.size());
}
inline const FromItem& FromAt(const ViewDefinition& v, int i) {
  return v.from_items[i];
}
inline int FromSize(const DeltaView& v) { return v.from_size(); }
inline const FromItem& FromAt(const DeltaView& v, int i) { return v.from(i); }

// Q_Vi: dispensable attributes of the ORIGINAL view still exposed by the
// rewriting, weighted by their original category.  `View` is ViewDefinition
// or DeltaView (both expose FindSelect).
template <typename View>
double RewritingInterfaceQuality(const ViewDefinition& original,
                                 const View& rewriting,
                                 const QcParameters& params) {
  double q = 0.0;
  for (const SelectItem& s : original.select_items) {
    if (!s.dispensable) continue;
    if (rewriting.FindSelect(s.name()) != nullptr) {
      q += s.replaceable ? params.w1 : params.w2;
    }
  }
  return q;
}

double DdAttr(double q_original, double q_rewriting) {
  if (q_original <= 0.0) return 0.0;
  const double dd = (q_original - q_rewriting) / q_original;
  return std::clamp(dd, 0.0, 1.0);
}

void FillTotals(QualityBreakdown* q, const QcParameters& params) {
  q->dd_attr = DdAttr(q->q_original, q->q_rewriting);
  q->dd_ext = params.rho_d1 * q->dd_ext_d1 + params.rho_d2 * q->dd_ext_d2;
  q->dd = params.rho_attr * q->dd_attr + params.rho_ext * q->dd_ext;
}

template <typename View>
Result<double> EstimateViewSizeImpl(const View& view,
                                    const MetaKnowledgeBase& mkb) {
  double size = 1.0;
  const double js = mkb.stats().join_selectivity();
  int m = 0;
  for (int i = 0; i < FromSize(view); ++i) {
    const FromItem& f = FromAt(view, i);
    RelationId id;
    if (!f.site.empty()) {
      id = RelationId{f.site, f.relation};
    } else {
      EVE_ASSIGN_OR_RETURN(id, mkb.ResolveName(f.relation));
    }
    EVE_ASSIGN_OR_RETURN(RelationStats stats, mkb.stats().Get(id));
    size *= static_cast<double>(stats.cardinality);
    if (!view.LocalConjunction(f.name()).IsTrue()) {
      size *= stats.local_selectivity;
    }
    ++m;
  }
  for (int i = 1; i < m; ++i) size *= js;
  return size;
}

}  // namespace

Result<double> EstimateViewSize(const ViewDefinition& view,
                                const MetaKnowledgeBase& mkb) {
  return EstimateViewSizeImpl(view, mkb);
}

Result<double> EstimateViewSize(const DeltaView& view,
                                const MetaKnowledgeBase& mkb) {
  return EstimateViewSizeImpl(view, mkb);
}

namespace {

// Estimated |V cap~ Vi|: the new view's size with each replaced relation's
// cardinality swapped for the PC-estimated overlap |R cap R'| (§5.4.3:
// "the size of the overlap is computed by the size of the overlap between
// the original and replacing relations, joined with any other relation
// that appears in the view query").
// Uniform edge access for the overlap loop: self-contained records embed
// the edge, lean candidate records borrow it.  The intersection estimator
// reads only the edge's type / selectivities / selections, which a CVS
// pair's reduced attribute map never changes, so both record forms produce
// identical estimates.
inline const PcEdge& EdgeOf(const ReplacementRecord& rec) { return rec.edge; }
inline const PcEdge& EdgeOf(const CandidateReplacement& rec) {
  return *rec.edge;
}

template <typename View, typename Record>
Result<std::pair<double, bool>> EstimateOverlapSize(
    const View& rewritten, const std::vector<Record>& replacements,
    const MetaKnowledgeBase& mkb) {
  // Replacement overlap per replacement-relation id.
  std::map<RelationId, OverlapEstimate> overlap_of;
  bool exact = true;
  for (const Record& rec : replacements) {
    EVE_ASSIGN_OR_RETURN(OverlapEstimate est,
                         EstimateIntersection(mkb, EdgeOf(rec)));
    exact = exact && est.exact;
    overlap_of[rec.replacement] = est;
  }

  const double js = mkb.stats().join_selectivity();
  double size = 1.0;
  int m = 0;
  for (int i = 0; i < FromSize(rewritten); ++i) {
    const FromItem& f = FromAt(rewritten, i);
    RelationId id;
    if (!f.site.empty()) {
      id = RelationId{f.site, f.relation};
    } else {
      EVE_ASSIGN_OR_RETURN(id, mkb.ResolveName(f.relation));
    }
    const auto it = overlap_of.find(id);
    if (it != overlap_of.end()) {
      size *= it->second.size;
    } else {
      EVE_ASSIGN_OR_RETURN(RelationStats stats, mkb.stats().Get(id));
      size *= static_cast<double>(stats.cardinality);
    }
    if (!rewritten.LocalConjunction(f.name()).IsTrue()) {
      EVE_ASSIGN_OR_RETURN(RelationStats stats, mkb.stats().Get(id));
      size *= stats.local_selectivity;
    }
    ++m;
  }
  for (int i = 1; i < m; ++i) size *= js;
  return std::make_pair(size, exact);
}

double SafeRatio(double num, double den) {
  if (den <= 0.0) return 0.0;
  return std::clamp(num / den, 0.0, 1.0);
}

// The shared estimation core (paper Eqs. 13-17): `view` is the rewriting's
// materialized definition or its compiled overlay, provenance is passed
// alongside so both entry points compute bit-identical numbers.
template <typename View, typename Record>
Result<QualityBreakdown> EstimateQualityImpl(
    const ViewDefinition& original, const View& view, ExtentRel extent_relation,
    bool extent_exact, const std::vector<Record>& replacements,
    const MetaKnowledgeBase& mkb, const QcParameters& params) {
  EVE_RETURN_IF_ERROR(params.Validate());
  QualityBreakdown q;
  q.q_original = InterfaceQuality(original, params);
  q.q_rewriting = RewritingInterfaceQuality(original, view, params);

  // Extent divergence.  The known extent relationship short-circuits the
  // expensive overlap estimation (paper Eqs. 16/17: for subset/superset
  // rewritings only one term needs computing, from sizes alone).
  EVE_ASSIGN_OR_RETURN(const double size_old, EstimateViewSize(original, mkb));
  EVE_ASSIGN_OR_RETURN(const double size_new, EstimateViewSizeImpl(view, mkb));
  q.exact = extent_exact;
  switch (extent_relation) {
    case ExtentRel::kEqual:
      q.dd_ext_d1 = 0.0;
      q.dd_ext_d2 = 0.0;
      break;
    case ExtentRel::kSubset:
      // All new tuples are old ones: |V cap Vi| = |Vi| (Eq. 16).
      q.dd_ext_d1 = 1.0 - SafeRatio(size_new, size_old);
      q.dd_ext_d2 = 0.0;
      break;
    case ExtentRel::kSuperset:
      // All old tuples survive: |V cap Vi| = |V| (Eq. 17).
      q.dd_ext_d1 = 0.0;
      q.dd_ext_d2 = 1.0 - SafeRatio(size_old, size_new);
      break;
    case ExtentRel::kUnknown: {
      EVE_ASSIGN_OR_RETURN(const auto overlap,
                           EstimateOverlapSize(view, replacements, mkb));
      q.exact = q.exact && overlap.second;
      q.dd_ext_d1 = 1.0 - SafeRatio(overlap.first, size_old);
      q.dd_ext_d2 = 1.0 - SafeRatio(overlap.first, size_new);
      break;
    }
  }
  FillTotals(&q, params);
  return q;
}

}  // namespace

Result<QualityBreakdown> EstimateQuality(const ViewDefinition& original,
                                         const Rewriting& rewriting,
                                         const MetaKnowledgeBase& mkb,
                                         const QcParameters& params) {
  return EstimateQualityImpl(original, rewriting.definition,
                             rewriting.extent_relation, rewriting.extent_exact,
                             rewriting.replacements, mkb, params);
}

Result<QualityBreakdown> EstimateQuality(const ViewDefinition& original,
                                         const RewriteCandidate& candidate,
                                         const DeltaView& view,
                                         const MetaKnowledgeBase& mkb,
                                         const QcParameters& params) {
  return EstimateQualityImpl(original, view, candidate.extent_relation,
                             candidate.extent_exact, candidate.replacements,
                             mkb, params);
}

Result<QualityBreakdown> MeasureQuality(const ViewDefinition& original,
                                        const Rewriting& rewriting,
                                        const Relation& old_extent,
                                        const Relation& new_extent,
                                        const QcParameters& params) {
  EVE_RETURN_IF_ERROR(params.Validate());
  QualityBreakdown q;
  q.q_original = InterfaceQuality(original, params);
  q.q_rewriting =
      RewritingInterfaceQuality(original, rewriting.definition, params);

  if (CommonAttributes(old_extent, new_extent).empty()) {
    // Disjoint interfaces: complete extent divergence.
    q.dd_ext_d1 = 1.0;
    q.dd_ext_d2 = 1.0;
  } else {
    EVE_ASSIGN_OR_RETURN(CommonSubsetCounts counts,
                         CountCommonSubset(old_extent, new_extent));
    q.dd_ext_d1 =
        counts.a_projected == 0
            ? 0.0
            : 1.0 - static_cast<double>(counts.intersection) /
                        static_cast<double>(counts.a_projected);
    q.dd_ext_d2 =
        counts.b_projected == 0
            ? 0.0
            : 1.0 - static_cast<double>(counts.intersection) /
                        static_cast<double>(counts.b_projected);
  }
  FillTotals(&q, params);
  return q;
}

}  // namespace eve
