// The quality side of the QC-Model: the Degree of Divergence DD (paper §5).
//
//   DD_attr (§5.4.1): interface divergence.  Dispensable attributes of the
//     original view fall into category C1 (replaceable, weight w1) or C2
//     (non-replaceable, weight w2); Q_V = |A1|w1 + |A2|w2 and
//     DD_attr = (Q_V - Q_Vi) / Q_V (0 when Q_V = 0).
//
//   DD_ext (§5.4.2, Eqs. 13-17): extent divergence.
//     D1 = |V \~ Vi| / |V^(Vi)|    (lost tuples, relative to the old view)
//     D2 = |Vi \~ V| / |Vi^(V)|    (surplus tuples, relative to the new view)
//     DD_ext = rho_d1 * D1 + rho_d2 * D2.
//
//   DD = rho_attr * DD_attr + rho_ext * DD_ext   (Eq. 20).
//
// Two computation paths are provided:
//   * EstimateQuality -- from MKB statistics, PC-constraint overlap
//     estimation (§5.4.3, Figs. 9/10) and the rewriting's provenance; this
//     is what the paper's experiments use;
//   * MeasureQuality  -- from materialized extents, using the Fig.-7
//     common-subset operators (the ground truth the estimator approximates).

#ifndef EVE_QC_QUALITY_H_
#define EVE_QC_QUALITY_H_

#include <string>

#include "common/result.h"
#include "esql/ast.h"
#include "esql/view_delta.h"
#include "misd/mkb.h"
#include "qc/parameters.h"
#include "storage/relation.h"
#include "synch/partial.h"
#include "synch/rewriting.h"

namespace eve {

/// The quality measures of one rewriting.
struct QualityBreakdown {
  double q_original = 0;   ///< Q_V (Eq. 12 applied to the original view).
  double q_rewriting = 0;  ///< Q_Vi.
  double dd_attr = 0;      ///< Interface divergence.
  double dd_ext_d1 = 0;    ///< Lost-tuple divergence D1.
  double dd_ext_d2 = 0;    ///< Surplus-tuple divergence D2.
  double dd_ext = 0;       ///< rho_d1 * D1 + rho_d2 * D2.
  double dd = 0;           ///< Total degree of divergence (Eq. 20).
  /// True when every extent quantity involved was exact (estimation path
  /// only; the measured path is always exact).
  bool exact = true;

  std::string ToString() const;
};

/// Q_V of Eq. 12: the weighted count of dispensable attributes.
double InterfaceQuality(const ViewDefinition& view, const QcParameters& params);

/// Estimates the quality of `rewriting` against `original` from MKB
/// statistics and the rewriting's provenance (no data access).
Result<QualityBreakdown> EstimateQuality(const ViewDefinition& original,
                                         const Rewriting& rewriting,
                                         const MetaKnowledgeBase& mkb,
                                         const QcParameters& params);

/// Delta-native variant: scores a (base, delta) candidate directly over its
/// compiled overlay, so quality estimation never forces materialization.
/// `view` must be `candidate`'s compiled overlay (candidate.View()).
/// Produces bit-identical numbers to scoring the materialized rewriting.
Result<QualityBreakdown> EstimateQuality(const ViewDefinition& original,
                                         const RewriteCandidate& candidate,
                                         const DeltaView& view,
                                         const MetaKnowledgeBase& mkb,
                                         const QcParameters& params);

/// Computes the quality from materialized extents (ground truth).
/// `old_extent` / `new_extent` must carry the views' interface schemas.
Result<QualityBreakdown> MeasureQuality(const ViewDefinition& original,
                                        const Rewriting& rewriting,
                                        const Relation& old_extent,
                                        const Relation& new_extent,
                                        const QcParameters& params);

/// Estimated extent size of a view: js^(m-1) * prod |R_i| * prod sigma_i,
/// with sigma_i applied only for relations the view locally restricts
/// (§5.4.3, "the size of a view can be estimated by looking at its view
/// definition").
Result<double> EstimateViewSize(const ViewDefinition& view,
                                const MetaKnowledgeBase& mkb);

/// Delta-native variant over a compiled (base, delta) overlay.
Result<double> EstimateViewSize(const DeltaView& view,
                                const MetaKnowledgeBase& mkb);

}  // namespace eve

#endif  // EVE_QC_QUALITY_H_
