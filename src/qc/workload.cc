#include "qc/workload.h"

#include <map>

namespace eve {

std::string_view WorkloadModelToString(WorkloadModel model) {
  switch (model) {
    case WorkloadModel::kM1ProportionalToSize:
      return "M1 (updates proportional to relation size)";
    case WorkloadModel::kM2PerRelation:
      return "M2 (constant updates per relation)";
    case WorkloadModel::kM3PerSite:
      return "M3 (constant updates per site)";
    case WorkloadModel::kM4FixedPerView:
      return "M4 (constant updates per view)";
  }
  return "?";
}

Result<WorkloadCost> ComputeWorkloadCost(const ViewCostInput& input,
                                         const WorkloadOptions& workload,
                                         const CostModelOptions& options) {
  if (input.relations.empty()) {
    return Status::InvalidArgument("cost input has no relations");
  }
  // Updates per relation (as origin), per the chosen model.
  std::vector<double> updates(input.relations.size(), 0.0);
  switch (workload.model) {
    case WorkloadModel::kM1ProportionalToSize:
      for (size_t i = 0; i < input.relations.size(); ++i) {
        updates[i] = workload.updates_per_tuple *
                     static_cast<double>(input.relations[i].cardinality);
      }
      break;
    case WorkloadModel::kM2PerRelation:
      for (double& u : updates) u = workload.updates_per_relation;
      break;
    case WorkloadModel::kM3PerSite: {
      std::map<std::string, int> per_site;
      for (const CostRelation& r : input.relations) per_site[r.id.site] += 1;
      for (size_t i = 0; i < input.relations.size(); ++i) {
        updates[i] = workload.updates_per_site /
                     static_cast<double>(per_site[input.relations[i].id.site]);
      }
      break;
    }
    case WorkloadModel::kM4FixedPerView:
      for (double& u : updates) {
        u = workload.updates_per_view /
            static_cast<double>(input.relations.size());
      }
      break;
  }

  WorkloadCost total;
  for (size_t i = 0; i < input.relations.size(); ++i) {
    if (updates[i] <= 0.0) continue;
    EVE_ASSIGN_OR_RETURN(CostFactors per_update,
                         SingleUpdateCost(input, i, options));
    total.factors += per_update * updates[i];
    total.updates += updates[i];
  }
  return total;
}

}  // namespace eve
