// Workload models for long-term view maintenance cost (paper §6.6):
//   M1 -- updates proportional to relation size (p percent of tuples),
//   M2 -- a constant number of updates per relation,
//   M3 -- a constant number of updates per information source,
//   M4 -- a constant number of updates per view rewriting.
// Each model turns per-update cost factors into a per-time-unit total.

#ifndef EVE_QC_WORKLOAD_H_
#define EVE_QC_WORKLOAD_H_

#include <string>

#include "common/result.h"
#include "qc/cost_model.h"

namespace eve {

/// The four workload models of §6.6.
enum class WorkloadModel {
  kM1ProportionalToSize,
  kM2PerRelation,
  kM3PerSite,
  kM4FixedPerView,
};

std::string_view WorkloadModelToString(WorkloadModel model);

/// Parameters of the workload models.
struct WorkloadOptions {
  WorkloadModel model = WorkloadModel::kM4FixedPerView;
  /// M1: updates per tuple per time unit (Experiment 5 uses 1/100).
  double updates_per_tuple = 0.01;
  /// M2: updates per relation per time unit.
  double updates_per_relation = 1.0;
  /// M3: updates per site per time unit (Experiment 5 / Table 6 uses 10).
  double updates_per_site = 10.0;
  /// M4: updates per view per time unit (1.0 reduces to single-update cost).
  double updates_per_view = 1.0;
};

/// The workload-weighted maintenance cost of a view rewriting.
struct WorkloadCost {
  /// Accumulated cost factors over one time unit.
  CostFactors factors;
  /// Total number of updates in the time unit.
  double updates = 0;

  /// Eq. 24 applied to the accumulated factors.
  double Weighted(const QcParameters& p) const { return factors.Weighted(p); }
};

/// Computes the per-time-unit maintenance cost of the view described by
/// `input` under the given workload model.  M3 distributes a site's updates
/// evenly over its relations; M4 distributes over all relations.
Result<WorkloadCost> ComputeWorkloadCost(const ViewCostInput& input,
                                         const WorkloadOptions& workload,
                                         const CostModelOptions& options = {});

}  // namespace eve

#endif  // EVE_QC_WORKLOAD_H_
