// Ranking of legal rewritings by the QC-Model (paper §6.7):
//
//   COST*(Vi) = (COST(Vi) - min_j COST(Vj)) / (max_j COST(Vj) - min_j ...)
//                                                            (Eq. 25)
//   QC(Vi)    = 1 - (rho_quality * DD(Vi) + rho_cost * COST*(Vi))   (Eq. 26)
//
// A QC of 1 is a perfect rewriting (full preservation at zero weighted
// cost); 0 preserves nothing.  Rewritings are ranked by descending QC.

#ifndef EVE_QC_RANKING_H_
#define EVE_QC_RANKING_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "esql/ast.h"
#include "misd/mkb.h"
#include "qc/cost_model.h"
#include "qc/parameters.h"
#include "qc/quality.h"
#include "qc/workload.h"
#include "synch/rewriting.h"

namespace eve {

/// One scored rewriting.
struct RankedRewriting {
  Rewriting rewriting;
  QualityBreakdown quality;
  WorkloadCost cost;
  double weighted_cost = 0;    ///< Eq. 24 over the workload.
  double normalized_cost = 0;  ///< Eq. 25 across the candidate set.
  double qc = 0;               ///< Eq. 26.
  int rank = 0;                ///< 1-based, after sorting by descending QC.
};

/// Normalizes a vector of costs per Eq. 25 (all zeros when max == min).
std::vector<double> NormalizeCosts(const std::vector<double>& costs);

/// The integrated QC-Model: quality estimation + workload-weighted cost +
/// normalization + ranking.
class QcModel {
 public:
  QcModel(QcParameters params, CostModelOptions cost_options,
          WorkloadOptions workload);

  const QcParameters& params() const { return params_; }

  /// Scores and ranks `rewritings` of `original` using MKB statistics.
  /// The returned vector is sorted by rank (best first).
  Result<std::vector<RankedRewriting>> Rank(
      const ViewDefinition& original, std::vector<Rewriting> rewritings,
      const MetaKnowledgeBase& mkb) const;

  /// Delta-native ranking: quality and cost are computed over each
  /// candidate's compiled (base, delta) overlay -- no materialization on
  /// the scoring path -- and each candidate is materialized exactly once
  /// into the returned RankedRewriting.  Produces the same ranking, scores,
  /// and definitions as Rank() over the materialized rewritings (tested).
  ///
  /// Per-candidate scoring is independent and runs under ParallelFor:
  /// `threads` > 0 forces that worker count, 0 picks DefaultThreadCount()
  /// for wide candidate sets and stays serial for narrow ones.  Output is
  /// deterministic regardless of the thread count (each index is scored
  /// exactly once into its slot; normalization and ordering run serially
  /// afterwards).
  Result<std::vector<RankedRewriting>> RankCandidates(
      const ViewDefinition& original, std::vector<RewriteCandidate> candidates,
      const MetaKnowledgeBase& mkb, int threads = 0) const;

  /// Renders a ranking as an ASCII table (used by reports and examples).
  static std::string FormatRanking(const std::vector<RankedRewriting>& ranking);

 private:
  QcParameters params_;
  CostModelOptions cost_options_;
  WorkloadOptions workload_;
};

}  // namespace eve

#endif  // EVE_QC_RANKING_H_
