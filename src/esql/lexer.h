// Hand-written lexer for E-SQL.  Supports SQL-style comments ("-- ..."),
// single- and double-quoted strings, and the comparison operators of
// primitive clauses.

#ifndef EVE_ESQL_LEXER_H_
#define EVE_ESQL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "esql/token.h"

namespace eve {

/// Lexes `text` into a token stream terminated by a kEnd token.  Fails on
/// unterminated strings or bytes that cannot begin any token.
Result<std::vector<Token>> Lex(const std::string& text);

}  // namespace eve

#endif  // EVE_ESQL_LEXER_H_
