#include "esql/constraint_parser.h"

#include <cstdlib>

#include "common/str_util.h"
#include "esql/lexer.h"

namespace eve {

namespace {

class ConstraintParser {
 public:
  ConstraintParser(std::vector<Token> tokens, const MetaKnowledgeBase& mkb)
      : tokens_(std::move(tokens)), mkb_(mkb) {}

  Result<ParsedConstraint> Parse() {
    if (CheckKeyword("JOIN")) {
      Consume();
      EVE_RETURN_IF_ERROR(ExpectKeyword("CONSTRAINT"));
      EVE_ASSIGN_OR_RETURN(JoinConstraint jc, ParseJoin());
      EVE_RETURN_IF_ERROR(ExpectEnd());
      return ParsedConstraint(std::move(jc));
    }
    if (CheckKeyword("PC")) {
      Consume();
      EVE_RETURN_IF_ERROR(ExpectKeyword("CONSTRAINT"));
      EVE_ASSIGN_OR_RETURN(PcConstraint pc, ParsePc());
      EVE_RETURN_IF_ERROR(ExpectEnd());
      return ParsedConstraint(std::move(pc));
    }
    return Error("expected JOIN CONSTRAINT or PC CONSTRAINT");
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Consume() {
    return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_];
  }
  bool Check(TokenType t) const { return Peek().Is(t); }
  bool CheckKeyword(std::string_view kw) const { return Peek().IsKeyword(kw); }
  bool ConsumeIf(TokenType t) {
    if (!Check(t)) return false;
    Consume();
    return true;
  }

  Status Error(const std::string& message) const {
    const Token& t = Peek();
    return Status::ParseError(StrFormat("%s at line %d column %d",
                                        message.c_str(), t.line, t.column));
  }

  Status ExpectKeyword(std::string_view kw) {
    if (!CheckKeyword(kw)) {
      return Error(StrFormat("expected %s", std::string(kw).c_str()));
    }
    Consume();
    return Status::OK();
  }

  Status ExpectEnd() {
    ConsumeIf(TokenType::kSemicolon);
    if (!Check(TokenType::kEnd)) {
      return Error("unexpected trailing input '" + Peek().text + "'");
    }
    return Status::OK();
  }

  // [site '.'] relation, resolved through the MKB when unqualified.
  Result<RelationId> ParseRelRef() {
    if (!Check(TokenType::kIdent)) return Error("expected a relation name");
    std::string first = Consume().text;
    if (ConsumeIf(TokenType::kDot)) {
      if (!Check(TokenType::kIdent)) return Error("expected a relation name");
      return RelationId{std::move(first), Consume().text};
    }
    return mkb_.ResolveName(first);
  }

  // A primitive clause; both sides may reference either relation by its
  // bare name.
  Result<PrimitiveClause> ParseClause() {
    EVE_ASSIGN_OR_RETURN(RelAttr lhs, ParseAttrRef());
    if (!Check(TokenType::kOperator)) {
      return Error("expected a comparison operator");
    }
    const auto op = CompOpFromString(Peek().text);
    if (!op.has_value()) {
      return Error("invalid comparison operator '" + Peek().text + "'");
    }
    Consume();
    // RHS: attribute or literal.
    if (Check(TokenType::kIdent)) {
      EVE_ASSIGN_OR_RETURN(RelAttr rhs, ParseAttrRef());
      return PrimitiveClause::AttrAttr(std::move(lhs), *op, std::move(rhs));
    }
    if (Check(TokenType::kInt)) {
      return PrimitiveClause::AttrConst(
          std::move(lhs), *op,
          Value(static_cast<int64_t>(
              std::strtoll(Consume().text.c_str(), nullptr, 10))));
    }
    if (Check(TokenType::kFloat)) {
      return PrimitiveClause::AttrConst(
          std::move(lhs), *op, Value(std::strtod(Consume().text.c_str(), nullptr)));
    }
    if (Check(TokenType::kString)) {
      return PrimitiveClause::AttrConst(std::move(lhs), *op,
                                        Value(Consume().text));
    }
    return Error("expected an attribute reference or literal");
  }

  Result<RelAttr> ParseAttrRef() {
    if (!Check(TokenType::kIdent)) return Error("expected an attribute reference");
    std::string first = Consume().text;
    if (ConsumeIf(TokenType::kDot)) {
      if (!Check(TokenType::kIdent)) return Error("expected an attribute name");
      return RelAttr{std::move(first), Consume().text};
    }
    return RelAttr{"", std::move(first)};
  }

  Result<Conjunction> ParseConjunction() {
    Conjunction out;
    while (true) {
      const bool paren = ConsumeIf(TokenType::kLParen);
      EVE_ASSIGN_OR_RETURN(PrimitiveClause clause, ParseClause());
      if (paren && !ConsumeIf(TokenType::kRParen)) return Error("expected ')'");
      out.Add(std::move(clause));
      if (!CheckKeyword("AND")) break;
      Consume();
    }
    return out;
  }

  Result<JoinConstraint> ParseJoin() {
    JoinConstraint jc;
    EVE_ASSIGN_OR_RETURN(jc.left, ParseRelRef());
    if (!ConsumeIf(TokenType::kComma)) return Error("expected ','");
    EVE_ASSIGN_OR_RETURN(jc.right, ParseRelRef());
    EVE_RETURN_IF_ERROR(ExpectKeyword("ON"));
    EVE_ASSIGN_OR_RETURN(jc.condition, ParseConjunction());
    return jc;
  }

  Result<PcSide> ParsePcSide() {
    PcSide side;
    EVE_ASSIGN_OR_RETURN(side.relation, ParseRelRef());
    if (!ConsumeIf(TokenType::kLParen)) {
      return Error("expected '(' before the projection list");
    }
    while (true) {
      if (!Check(TokenType::kIdent)) return Error("expected an attribute name");
      side.attributes.push_back(Consume().text);
      if (!ConsumeIf(TokenType::kComma)) break;
    }
    if (!ConsumeIf(TokenType::kRParen)) return Error("expected ')'");
    if (CheckKeyword("WHERE")) {
      Consume();
      EVE_ASSIGN_OR_RETURN(side.selection, ParseConjunction());
      side.selectivity = 0.5;  // Default until SELECTIVITY overrides it.
    }
    if (CheckKeyword("SELECTIVITY")) {
      Consume();
      if (!Check(TokenType::kFloat) && !Check(TokenType::kInt)) {
        return Error("expected a number after SELECTIVITY");
      }
      side.selectivity = std::strtod(Consume().text.c_str(), nullptr);
      if (side.selection.IsTrue()) {
        return Error("SELECTIVITY requires a WHERE condition on this side");
      }
    }
    return side;
  }

  Result<PcConstraint> ParsePc() {
    PcConstraint pc;
    EVE_ASSIGN_OR_RETURN(pc.left, ParsePcSide());
    if (CheckKeyword("SUBSET")) {
      pc.type = PcRelationType::kSubset;
    } else if (CheckKeyword("EQUIVALENT")) {
      pc.type = PcRelationType::kEquivalent;
    } else if (CheckKeyword("SUPERSET")) {
      pc.type = PcRelationType::kSuperset;
    } else if (CheckKeyword("INCOMPARABLE")) {
      pc.type = PcRelationType::kIncomparable;
    } else {
      return Error("expected SUBSET, EQUIVALENT, SUPERSET or INCOMPARABLE");
    }
    Consume();
    EVE_ASSIGN_OR_RETURN(pc.right, ParsePcSide());
    EVE_RETURN_IF_ERROR(pc.Validate());
    return pc;
  }

  std::vector<Token> tokens_;
  const MetaKnowledgeBase& mkb_;
  size_t pos_ = 0;
};

}  // namespace

Result<ParsedConstraint> ParseConstraint(const std::string& text,
                                         const MetaKnowledgeBase& mkb) {
  EVE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  return ConstraintParser(std::move(tokens), mkb).Parse();
}

Status DeclareConstraint(const std::string& text, MetaKnowledgeBase* mkb) {
  EVE_ASSIGN_OR_RETURN(ParsedConstraint parsed, ParseConstraint(text, *mkb));
  if (auto* jc = std::get_if<JoinConstraint>(&parsed)) {
    return mkb->AddJoinConstraint(std::move(*jc));
  }
  return mkb->AddPcConstraint(std::move(std::get<PcConstraint>(parsed)));
}

}  // namespace eve
