#include "esql/lexer.h"

#include <cctype>

#include "common/str_util.h"

namespace eve {

bool Token::IsKeyword(std::string_view kw) const {
  return type == TokenType::kIdent && EqualsIgnoreCase(text, kw);
}

std::string_view TokenTypeName(TokenType type) {
  switch (type) {
    case TokenType::kEnd:
      return "end of input";
    case TokenType::kIdent:
      return "identifier";
    case TokenType::kInt:
      return "integer";
    case TokenType::kFloat:
      return "number";
    case TokenType::kString:
      return "string";
    case TokenType::kLParen:
      return "'('";
    case TokenType::kRParen:
      return "')'";
    case TokenType::kComma:
      return "','";
    case TokenType::kDot:
      return "'.'";
    case TokenType::kSemicolon:
      return "';'";
    case TokenType::kStar:
      return "'*'";
    case TokenType::kOperator:
      return "operator";
  }
  return "token";
}

namespace {

class LexerImpl {
 public:
  explicit LexerImpl(const std::string& text) : text_(text) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    while (true) {
      SkipWhitespaceAndComments();
      if (AtEnd()) break;
      EVE_ASSIGN_OR_RETURN(Token tok, NextToken());
      out.push_back(std::move(tok));
    }
    out.push_back(Token{TokenType::kEnd, "", line_, column_});
    return out;
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }
  char Advance() {
    const char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void SkipWhitespaceAndComments() {
    while (!AtEnd()) {
      const char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '-' && Peek(1) == '-') {
        while (!AtEnd() && Peek() != '\n') Advance();
      } else {
        break;
      }
    }
  }

  Token Make(TokenType type, std::string text, int line, int column) {
    return Token{type, std::move(text), line, column};
  }

  Result<Token> NextToken() {
    const int line = line_;
    const int column = column_;
    const char c = Peek();

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string text;
      while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                          Peek() == '_' || Peek() == '-')) {
        // Allow '-' inside identifiers for names like Asia-Customer, but not
        // a trailing '-' (so "R --comment" still lexes).
        if (Peek() == '-' &&
            !(std::isalnum(static_cast<unsigned char>(Peek(1))) || Peek(1) == '_')) {
          break;
        }
        text += Advance();
      }
      return Make(TokenType::kIdent, std::move(text), line, column);
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string text;
      bool is_float = false;
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        text += Advance();
      }
      if (Peek() == '.' && std::isdigit(static_cast<unsigned char>(Peek(1)))) {
        is_float = true;
        text += Advance();
        while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
          text += Advance();
        }
      }
      return Make(is_float ? TokenType::kFloat : TokenType::kInt,
                  std::move(text), line, column);
    }

    if (c == '\'' || c == '"') {
      const char quote = Advance();
      std::string text;
      while (!AtEnd() && Peek() != quote) text += Advance();
      if (AtEnd()) {
        return Status::ParseError(
            StrFormat("unterminated string literal at line %d column %d", line,
                      column));
      }
      Advance();  // Closing quote.
      return Make(TokenType::kString, std::move(text), line, column);
    }

    switch (c) {
      case '(':
        Advance();
        return Make(TokenType::kLParen, "(", line, column);
      case ')':
        Advance();
        return Make(TokenType::kRParen, ")", line, column);
      case ',':
        Advance();
        return Make(TokenType::kComma, ",", line, column);
      case '.':
        Advance();
        return Make(TokenType::kDot, ".", line, column);
      case ';':
        Advance();
        return Make(TokenType::kSemicolon, ";", line, column);
      case '*':
        Advance();
        return Make(TokenType::kStar, "*", line, column);
      case '~':
        Advance();
        return Make(TokenType::kOperator, "~", line, column);
      case '=':
        Advance();
        return Make(TokenType::kOperator, "=", line, column);
      case '<': {
        Advance();
        if (Peek() == '=') {
          Advance();
          return Make(TokenType::kOperator, "<=", line, column);
        }
        if (Peek() == '>') {
          Advance();
          return Make(TokenType::kOperator, "<>", line, column);
        }
        return Make(TokenType::kOperator, "<", line, column);
      }
      case '>': {
        Advance();
        if (Peek() == '=') {
          Advance();
          return Make(TokenType::kOperator, ">=", line, column);
        }
        return Make(TokenType::kOperator, ">", line, column);
      }
      case '!': {
        if (Peek(1) == '=') {
          Advance();
          Advance();
          return Make(TokenType::kOperator, "<>", line, column);
        }
        break;
      }
      default:
        break;
    }
    return Status::ParseError(StrFormat(
        "unexpected character '%c' at line %d column %d", c, line, column));
  }

  const std::string& text_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

Result<std::vector<Token>> Lex(const std::string& text) {
  return LexerImpl(text).Run();
}

}  // namespace eve
