#include "esql/ast.h"

#include <set>

#include "common/hashing.h"
#include "common/str_util.h"

namespace eve {

std::string_view ViewExtentToString(ViewExtent ve) {
  switch (ve) {
    case ViewExtent::kApproximate:
      return "~";
    case ViewExtent::kEqual:
      return "=";
    case ViewExtent::kSuperset:
      return "superset";
    case ViewExtent::kSubset:
      return "subset";
  }
  return "?";
}

std::optional<ViewExtent> ViewExtentFromString(std::string_view text) {
  if (text == "~" || EqualsIgnoreCase(text, "any") ||
      EqualsIgnoreCase(text, "approx") || EqualsIgnoreCase(text, "approximate") ||
      text == "≈" /* ≈ */) {
    return ViewExtent::kApproximate;
  }
  if (text == "=" || EqualsIgnoreCase(text, "equal") || text == "≡" /* ≡ */) {
    return ViewExtent::kEqual;
  }
  if (text == ">=" || EqualsIgnoreCase(text, "superset") ||
      text == "⊇" /* ⊇ */) {
    return ViewExtent::kSuperset;
  }
  if (text == "<=" || EqualsIgnoreCase(text, "subset") ||
      text == "⊆" /* ⊆ */) {
    return ViewExtent::kSubset;
  }
  return std::nullopt;
}

const FromItem* ViewDefinition::FindFrom(const std::string& name_arg) const {
  for (const FromItem& f : from_items) {
    if (f.name() == name_arg) return &f;
  }
  return nullptr;
}

FromItem* ViewDefinition::FindFrom(const std::string& name_arg) {
  for (FromItem& f : from_items) {
    if (f.name() == name_arg) return &f;
  }
  return nullptr;
}

const SelectItem* ViewDefinition::FindSelect(const std::string& output) const {
  for (const SelectItem& s : select_items) {
    if (s.name() == output) return &s;
  }
  return nullptr;
}

bool ViewDefinition::RelationIsUsed(const std::string& rel_name) const {
  for (const SelectItem& s : select_items) {
    if (s.source.relation == rel_name) return true;
  }
  for (const ConditionItem& c : where) {
    if (c.clause.References(rel_name)) return true;
  }
  return false;
}

std::vector<std::string> ViewDefinition::InterfaceNames() const {
  std::vector<std::string> out;
  out.reserve(select_items.size());
  for (const SelectItem& s : select_items) out.push_back(s.name());
  return out;
}

Conjunction ViewDefinition::WhereConjunction() const {
  Conjunction out;
  for (const ConditionItem& c : where) out.Add(c.clause);
  return out;
}

std::vector<PrimitiveClause> ViewDefinition::JoinClauses() const {
  std::vector<PrimitiveClause> out;
  for (const ConditionItem& c : where) {
    if (c.clause.IsJoinClause()) out.push_back(c.clause);
  }
  return out;
}

Conjunction ViewDefinition::LocalConjunction(const std::string& rel_name) const {
  Conjunction out;
  for (const ConditionItem& c : where) {
    if (!c.clause.IsJoinClause() && c.clause.lhs.relation == rel_name) {
      out.Add(c.clause);
    }
  }
  return out;
}

Status ViewDefinition::Validate() const {
  namespace vs = view_structure_internal;
  if (name.empty()) return Status::InvalidArgument("view has no name");
  if (select_items.empty()) {
    return Status::InvalidArgument("view " + name + " selects no attributes");
  }
  if (from_items.empty()) {
    return Status::InvalidArgument("view " + name + " has no FROM items");
  }
  std::set<std::string> from_names;
  for (const FromItem& f : from_items) {
    EVE_RETURN_IF_ERROR(vs::ValidateFrom(name, f, &from_names));
  }
  std::set<std::string> out_names;
  for (const SelectItem& s : select_items) {
    EVE_RETURN_IF_ERROR(vs::ValidateSelect(name, s, from_names, &out_names));
  }
  for (const ConditionItem& c : where) {
    EVE_RETURN_IF_ERROR(vs::ValidateCondition(name, c, from_names));
  }
  return Status::OK();
}

namespace {

size_t HashClause(const PrimitiveClause& c) {
  size_t h = HashOf(c.lhs.relation);
  h = HashCombine(h, HashOf(c.lhs.attribute));
  h = HashCombine(h, static_cast<size_t>(c.op));
  if (c.rhs_is_attr()) {
    h = HashCombine(h, HashOf(c.rhs_attr().relation));
    h = HashCombine(h, HashOf(c.rhs_attr().attribute));
  } else {
    h = HashCombine(h, c.rhs_value().Hash());
  }
  return h;
}

}  // namespace

namespace view_structure_internal {

Status ValidateFrom(const std::string& view_name, const FromItem& f,
                    std::set<std::string>* from_names) {
  if (f.relation.empty()) {
    return Status::InvalidArgument("view " + view_name +
                                   " has an unnamed FROM item");
  }
  if (!from_names->insert(f.name()).second) {
    return Status::InvalidArgument("view " + view_name +
                                   ": duplicate FROM name " + f.name());
  }
  return Status::OK();
}

Status ValidateSelect(const std::string& view_name, const SelectItem& s,
                      const std::set<std::string>& from_names,
                      std::set<std::string>* out_names) {
  if (s.source.relation.empty() || s.source.attribute.empty()) {
    return Status::InvalidArgument(
        "view " + view_name + ": SELECT items must be relation-qualified");
  }
  if (from_names.count(s.source.relation) == 0) {
    return Status::InvalidArgument("view " + view_name +
                                   ": SELECT references " +
                                   s.source.ToString() +
                                   " but no such FROM item exists");
  }
  if (!out_names->insert(s.name()).second) {
    return Status::InvalidArgument("view " + view_name +
                                   ": duplicate output attribute " + s.name());
  }
  return Status::OK();
}

Status ValidateCondition(const std::string& view_name, const ConditionItem& c,
                         const std::set<std::string>& from_names) {
  for (const RelAttr& a : c.clause.Attributes()) {
    if (a.relation.empty()) {
      return Status::InvalidArgument(
          "view " + view_name + ": WHERE references unqualified attribute " +
          a.ToString());
    }
    if (from_names.count(a.relation) == 0) {
      return Status::InvalidArgument("view " + view_name +
                                     ": WHERE references " + a.ToString() +
                                     " but no such FROM item exists");
    }
  }
  return Status::OK();
}

size_t SeedHash(const ViewDefinition& view) {
  size_t h = HashOf(view.name);
  return HashCombine(h, static_cast<size_t>(view.ve));
}

size_t CombineSelect(size_t h, const SelectItem& s) {
  h = HashCombine(h, HashOf(s.source.relation));
  h = HashCombine(h, HashOf(s.source.attribute));
  h = HashCombine(h, HashOf(s.name()));  // Normalized output name.
  h = HashCombine(h, HashOf(s.dispensable));
  return HashCombine(h, HashOf(s.replaceable));
}

size_t CombineFrom(size_t h, const FromItem& f) {
  h = HashCombine(h, HashOf(f.site));
  h = HashCombine(h, HashOf(f.relation));
  h = HashCombine(h, HashOf(f.name()));  // Normalized alias.
  h = HashCombine(h, HashOf(f.dispensable));
  return HashCombine(h, HashOf(f.replaceable));
}

size_t CombineCondition(size_t h, const ConditionItem& c) {
  h = HashCombine(h, HashClause(c.clause));
  h = HashCombine(h, HashOf(c.dispensable));
  return HashCombine(h, HashOf(c.replaceable));
}

bool SelectEqual(const SelectItem& x, const SelectItem& y) {
  return x.source == y.source && x.name() == y.name() &&
         x.dispensable == y.dispensable && x.replaceable == y.replaceable;
}

bool FromEqual(const FromItem& x, const FromItem& y) {
  return x.site == y.site && x.relation == y.relation && x.name() == y.name() &&
         x.dispensable == y.dispensable && x.replaceable == y.replaceable;
}

bool ConditionEqual(const ConditionItem& x, const ConditionItem& y) {
  return x.clause == y.clause && x.dispensable == y.dispensable &&
         x.replaceable == y.replaceable;
}

}  // namespace view_structure_internal

size_t StructuralHash(const ViewDefinition& view) {
  namespace vs = view_structure_internal;
  size_t h = vs::SeedHash(view);
  for (const SelectItem& s : view.select_items) h = vs::CombineSelect(h, s);
  for (const FromItem& f : view.from_items) h = vs::CombineFrom(h, f);
  for (const ConditionItem& c : view.where) h = vs::CombineCondition(h, c);
  return h;
}

bool StructurallyEqual(const ViewDefinition& a, const ViewDefinition& b) {
  namespace vs = view_structure_internal;
  if (a.name != b.name || a.ve != b.ve ||
      a.select_items.size() != b.select_items.size() ||
      a.from_items.size() != b.from_items.size() ||
      a.where.size() != b.where.size()) {
    return false;
  }
  for (size_t i = 0; i < a.select_items.size(); ++i) {
    if (!vs::SelectEqual(a.select_items[i], b.select_items[i])) return false;
  }
  for (size_t i = 0; i < a.from_items.size(); ++i) {
    if (!vs::FromEqual(a.from_items[i], b.from_items[i])) return false;
  }
  for (size_t i = 0; i < a.where.size(); ++i) {
    if (!vs::ConditionEqual(a.where[i], b.where[i])) return false;
  }
  return true;
}

}  // namespace eve
