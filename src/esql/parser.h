// Recursive-descent parser for E-SQL view definitions (paper Fig. 2).
//
// Accepted grammar (keywords case-insensitive):
//
//   view        := CREATE VIEW name [ '(' VE '=' ve_value ')' ] AS
//                  SELECT select_item (',' select_item)*
//                  FROM from_item (',' from_item)*
//                  [ WHERE condition (AND condition)* ] [';']
//   select_item := attr_ref [ AS ident ] [ params ]
//   attr_ref    := ident [ '.' ident ]
//   from_item   := ident [ '.' ident ] [ ident ] [ params ]   -- [site.]rel [alias]
//   condition   := clause [ params ] | '(' clause ')' [ params ]
//   clause      := operand comp_op operand
//   operand     := attr_ref | literal
//   params      := '(' ident '=' param_value (',' ident '=' param_value)* ')'
//
// Parameter names: AD, AR (select), RD, RR (from), CD, CR (where),
// VE (view).  Boolean values: true/false.  VE values: ~ / any / approx,
// = / equal, >= / superset, <= / subset (unicode set symbols also accepted).

#ifndef EVE_ESQL_PARSER_H_
#define EVE_ESQL_PARSER_H_

#include <string>

#include "common/result.h"
#include "esql/ast.h"

namespace eve {

/// Parses one CREATE VIEW statement.  The returned definition has been
/// structurally validated (ViewDefinition::Validate).
Result<ViewDefinition> ParseViewDefinition(const std::string& text);

}  // namespace eve

#endif  // EVE_ESQL_PARSER_H_
