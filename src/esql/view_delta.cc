#include "esql/view_delta.h"

#include <set>

namespace eve {

DeltaView::DeltaView(const ViewDefinition& base) : base_(&base) {
  sel_.base_n = static_cast<int32_t>(base.select_items.size());
  sel_.slots.resize(sel_.base_n);
  where_.base_n = static_cast<int32_t>(base.where.size());
  where_.slots.resize(where_.base_n);
  from_.base_n = static_cast<int32_t>(base.from_items.size());
  from_.slots.resize(from_.base_n);
}

DeltaView::DeltaView(const ViewDefinition& base,
                     std::span<const RewriteDelta> ops)
    : DeltaView(base) {
  Sync(ops);
}

void DeltaView::Sync(std::span<const RewriteDelta> ops) {
  ops_ = ops.data();
  for (size_t i = applied_; i < ops.size(); ++i) ApplyOne(i);
  applied_ = ops.size();
}

void DeltaView::ApplyOne(size_t op_index) {
  const RewriteDelta& d = ops_[op_index];
  const int32_t owned = static_cast<int32_t>(op_index);
  // Only drops and appends change which ids are live; in-place overrides
  // (Set/Replace) keep the position index valid, so they skip the Reindex.
  switch (d.kind) {
    case RewriteDelta::Kind::kDropSelect:
      sel_.slots[d.id].dropped = true;
      dirty_ = true;
      break;
    case RewriteDelta::Kind::kSetSelect:
      sel_.slots[d.id].owned = owned;
      break;
    case RewriteDelta::Kind::kDropCondition:
      where_.slots[d.id].dropped = true;
      dirty_ = true;
      break;
    case RewriteDelta::Kind::kSetCondition:
      where_.slots[d.id].owned = owned;
      break;
    case RewriteDelta::Kind::kAddCondition:
      where_.slots.push_back(Slot{owned, false});
      dirty_ = true;
      break;
    case RewriteDelta::Kind::kDropFrom:
      from_.slots[d.id].dropped = true;
      dirty_ = true;
      break;
    case RewriteDelta::Kind::kReplaceFrom:
      from_.slots[d.id].owned = owned;
      break;
    case RewriteDelta::Kind::kAddFrom:
      from_.slots.push_back(Slot{owned, false});
      dirty_ = true;
      break;
  }
}

void DeltaView::Reindex() const {
  if (!dirty_) return;
  live_sel_.clear();
  live_where_.clear();
  live_from_.clear();
  for (size_t i = 0; i < sel_.slots.size(); ++i) {
    if (!sel_.slots[i].dropped) live_sel_.push_back(static_cast<int32_t>(i));
  }
  for (size_t i = 0; i < where_.slots.size(); ++i) {
    if (!where_.slots[i].dropped) {
      live_where_.push_back(static_cast<int32_t>(i));
    }
  }
  for (size_t i = 0; i < from_.slots.size(); ++i) {
    if (!from_.slots[i].dropped) live_from_.push_back(static_cast<int32_t>(i));
  }
  dirty_ = false;
}

int DeltaView::select_size() const {
  Reindex();
  return static_cast<int>(live_sel_.size());
}
const SelectItem& DeltaView::select(int pos) const {
  Reindex();
  return sel_.at(live_sel_[pos], base_->select_items, ops_);
}
int32_t DeltaView::select_id(int pos) const {
  Reindex();
  return live_sel_[pos];
}

int DeltaView::from_size() const {
  Reindex();
  return static_cast<int>(live_from_.size());
}
const FromItem& DeltaView::from(int pos) const {
  Reindex();
  return from_.at(live_from_[pos], base_->from_items, ops_);
}
int32_t DeltaView::from_id(int pos) const {
  Reindex();
  return live_from_[pos];
}

int DeltaView::where_size() const {
  Reindex();
  return static_cast<int>(live_where_.size());
}
const ConditionItem& DeltaView::where(int pos) const {
  Reindex();
  return where_.at(live_where_[pos], base_->where, ops_);
}
int32_t DeltaView::where_id(int pos) const {
  Reindex();
  return live_where_[pos];
}

const SelectItem& DeltaView::select_by_id(int32_t id) const {
  return sel_.at(id, base_->select_items, ops_);
}
const ConditionItem& DeltaView::where_by_id(int32_t id) const {
  return where_.at(id, base_->where, ops_);
}
const FromItem& DeltaView::from_by_id(int32_t id) const {
  return from_.at(id, base_->from_items, ops_);
}

const FromItem* DeltaView::FindFrom(const std::string& name) const {
  Reindex();
  for (const int32_t id : live_from_) {
    const FromItem& f = from_.at(id, base_->from_items, ops_);
    if (f.name() == name) return &f;
  }
  return nullptr;
}

const SelectItem* DeltaView::FindSelect(const std::string& output) const {
  Reindex();
  for (const int32_t id : live_sel_) {
    const SelectItem& s = sel_.at(id, base_->select_items, ops_);
    if (s.name() == output) return &s;
  }
  return nullptr;
}

bool DeltaView::RelationIsUsed(const std::string& rel_name) const {
  Reindex();
  for (const int32_t id : live_sel_) {
    if (sel_.at(id, base_->select_items, ops_).source.relation == rel_name) {
      return true;
    }
  }
  for (const int32_t id : live_where_) {
    if (where_.at(id, base_->where, ops_).clause.References(rel_name)) {
      return true;
    }
  }
  return false;
}

Conjunction DeltaView::LocalConjunction(const std::string& rel_name) const {
  Reindex();
  Conjunction out;
  for (const int32_t id : live_where_) {
    const PrimitiveClause& c = where_.at(id, base_->where, ops_).clause;
    if (!c.IsJoinClause() && c.lhs.relation == rel_name) out.Add(c);
  }
  return out;
}

Status DeltaView::Validate() const {
  // The per-component steps are shared with ViewDefinition::Validate
  // (view_structure_internal), so a candidate is accepted or rejected
  // exactly as its materialization would be -- without building it.
  namespace vs = view_structure_internal;
  Reindex();
  const std::string& name = base_->name;
  if (name.empty()) return Status::InvalidArgument("view has no name");
  if (live_sel_.empty()) {
    return Status::InvalidArgument("view " + name + " selects no attributes");
  }
  if (live_from_.empty()) {
    return Status::InvalidArgument("view " + name + " has no FROM items");
  }
  std::set<std::string> from_names;
  for (const int32_t id : live_from_) {
    EVE_RETURN_IF_ERROR(vs::ValidateFrom(
        name, from_.at(id, base_->from_items, ops_), &from_names));
  }
  std::set<std::string> out_names;
  for (const int32_t id : live_sel_) {
    EVE_RETURN_IF_ERROR(vs::ValidateSelect(
        name, sel_.at(id, base_->select_items, ops_), from_names, &out_names));
  }
  for (const int32_t id : live_where_) {
    EVE_RETURN_IF_ERROR(vs::ValidateCondition(
        name, where_.at(id, base_->where, ops_), from_names));
  }
  return Status::OK();
}

ViewDefinition DeltaView::Materialize() const {
  Reindex();
  ViewDefinition out;
  out.name = base_->name;
  out.ve = base_->ve;
  out.select_items.reserve(live_sel_.size());
  for (const int32_t id : live_sel_) {
    out.select_items.push_back(sel_.at(id, base_->select_items, ops_));
  }
  out.from_items.reserve(live_from_.size());
  for (const int32_t id : live_from_) {
    out.from_items.push_back(from_.at(id, base_->from_items, ops_));
  }
  out.where.reserve(live_where_.size());
  for (const int32_t id : live_where_) {
    out.where.push_back(where_.at(id, base_->where, ops_));
  }
  return out;
}

size_t DeltaView::StructuralHash() const {
  namespace vs = view_structure_internal;
  Reindex();
  size_t h = vs::SeedHash(*base_);  // Name and VE are never delta-edited.
  for (const int32_t id : live_sel_) {
    h = vs::CombineSelect(h, sel_.at(id, base_->select_items, ops_));
  }
  for (const int32_t id : live_from_) {
    h = vs::CombineFrom(h, from_.at(id, base_->from_items, ops_));
  }
  for (const int32_t id : live_where_) {
    h = vs::CombineCondition(h, where_.at(id, base_->where, ops_));
  }
  return h;
}

bool DeltaView::StructurallyEquals(const ViewDefinition& def) const {
  namespace vs = view_structure_internal;
  Reindex();
  if (base_->name != def.name || base_->ve != def.ve ||
      live_sel_.size() != def.select_items.size() ||
      live_from_.size() != def.from_items.size() ||
      live_where_.size() != def.where.size()) {
    return false;
  }
  for (size_t i = 0; i < live_sel_.size(); ++i) {
    if (!vs::SelectEqual(sel_.at(live_sel_[i], base_->select_items, ops_),
                         def.select_items[i])) {
      return false;
    }
  }
  for (size_t i = 0; i < live_from_.size(); ++i) {
    if (!vs::FromEqual(from_.at(live_from_[i], base_->from_items, ops_),
                       def.from_items[i])) {
      return false;
    }
  }
  for (size_t i = 0; i < live_where_.size(); ++i) {
    if (!vs::ConditionEqual(where_.at(live_where_[i], base_->where, ops_),
                            def.where[i])) {
      return false;
    }
  }
  return true;
}

bool DeltaView::StructurallyEquals(const DeltaView& other) const {
  namespace vs = view_structure_internal;
  Reindex();
  other.Reindex();
  if (base_->name != other.base_->name || base_->ve != other.base_->ve ||
      live_sel_.size() != other.live_sel_.size() ||
      live_from_.size() != other.live_from_.size() ||
      live_where_.size() != other.live_where_.size()) {
    return false;
  }
  for (size_t i = 0; i < live_sel_.size(); ++i) {
    if (!vs::SelectEqual(sel_.at(live_sel_[i], base_->select_items, ops_),
                         other.sel_.at(other.live_sel_[i],
                                       other.base_->select_items,
                                       other.ops_))) {
      return false;
    }
  }
  for (size_t i = 0; i < live_from_.size(); ++i) {
    if (!vs::FromEqual(from_.at(live_from_[i], base_->from_items, ops_),
                       other.from_.at(other.live_from_[i],
                                      other.base_->from_items, other.ops_))) {
      return false;
    }
  }
  for (size_t i = 0; i < live_where_.size(); ++i) {
    if (!vs::ConditionEqual(where_.at(live_where_[i], base_->where, ops_),
                            other.where_.at(other.live_where_[i],
                                            other.base_->where, other.ops_))) {
      return false;
    }
  }
  return true;
}

ViewDefinition ViewDefinition::Apply(std::span<const RewriteDelta> ops) const {
  return DeltaView(*this, ops).Materialize();
}

}  // namespace eve
