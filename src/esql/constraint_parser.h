// Text syntax for MISD constraint declarations, complementing E-SQL view
// definitions.  Lets information spaces be described declaratively (used by
// EveSystem::DeclareConstraint and the examples).
//
// Grammar (keywords case-insensitive; [site.]rel resolves bare names
// through the MKB):
//
//   join_constraint := JOIN CONSTRAINT rel_ref ',' rel_ref
//                      ON clause (AND clause)* [';']
//   pc_constraint   := PC CONSTRAINT pc_side rel_op pc_side [';']
//   pc_side         := rel_ref '(' ident (',' ident)* ')'
//                      [ WHERE clause (AND clause)* ]
//                      [ SELECTIVITY number ]
//   rel_op          := SUBSET | EQUIVALENT | SUPERSET | INCOMPARABLE
//
// Examples:
//   JOIN CONSTRAINT Customer, FlightRes ON Customer.Name = FlightRes.PName
//   PC CONSTRAINT Customer (Name, Phone) SUBSET Archive (Name, Tel)
//   PC CONSTRAINT Orders (Id) WHERE Orders.Year >= 2020 SELECTIVITY 0.25
//      EQUIVALENT RecentOrders (Id)

#ifndef EVE_ESQL_CONSTRAINT_PARSER_H_
#define EVE_ESQL_CONSTRAINT_PARSER_H_

#include <string>
#include <variant>

#include "common/result.h"
#include "misd/constraints.h"
#include "misd/mkb.h"

namespace eve {

/// A parsed constraint declaration.
using ParsedConstraint = std::variant<JoinConstraint, PcConstraint>;

/// Parses one constraint declaration.  Bare relation names are resolved
/// against `mkb` (must be unambiguous); site-qualified names ("IS1.R") are
/// taken verbatim.
Result<ParsedConstraint> ParseConstraint(const std::string& text,
                                         const MetaKnowledgeBase& mkb);

/// Parses and installs the constraint into `mkb` in one step.
Status DeclareConstraint(const std::string& text, MetaKnowledgeBase* mkb);

}  // namespace eve

#endif  // EVE_ESQL_CONSTRAINT_PARSER_H_
