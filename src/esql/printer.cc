#include "esql/printer.h"

#include "common/str_util.h"

namespace eve {

namespace {

std::string BoolParam(const char* name, bool value) {
  return StrFormat("%s = %s", name, value ? "true" : "false");
}

std::string SelectParams(const SelectItem& s, bool include_defaults) {
  std::vector<std::string> parts;
  if (s.dispensable || include_defaults) parts.push_back(BoolParam("AD", s.dispensable));
  if (s.replaceable || include_defaults) parts.push_back(BoolParam("AR", s.replaceable));
  return parts.empty() ? "" : " (" + Join(parts, ", ") + ")";
}

std::string FromParams(const FromItem& f, bool include_defaults) {
  std::vector<std::string> parts;
  if (f.dispensable || include_defaults) parts.push_back(BoolParam("RD", f.dispensable));
  if (f.replaceable || include_defaults) parts.push_back(BoolParam("RR", f.replaceable));
  return parts.empty() ? "" : " (" + Join(parts, ", ") + ")";
}

std::string CondParams(const ConditionItem& c, bool include_defaults) {
  std::vector<std::string> parts;
  if (c.dispensable || include_defaults) parts.push_back(BoolParam("CD", c.dispensable));
  if (c.replaceable || include_defaults) parts.push_back(BoolParam("CR", c.replaceable));
  return parts.empty() ? "" : " (" + Join(parts, ", ") + ")";
}

}  // namespace

std::string PrintView(const ViewDefinition& view, const PrintOptions& options) {
  const char* sep = options.multiline ? "\n" : " ";
  const char* indent = options.multiline ? "       " : "";
  std::string out = "CREATE VIEW " + view.name;
  if (view.ve != ViewExtent::kApproximate || options.include_default_params) {
    out += StrFormat(" (VE = %s)", std::string(ViewExtentToString(view.ve)).c_str());
  }
  out += " AS";
  out += sep;
  out += "SELECT ";
  out += JoinMapped(view.select_items, std::string(",") + sep + indent,
                    [&](const SelectItem& s) {
                      std::string item = s.source.ToString();
                      if (!s.output_name.empty() &&
                          s.output_name != s.source.attribute) {
                        item += " AS " + s.output_name;
                      }
                      return item + SelectParams(s, options.include_default_params);
                    });
  out += sep;
  out += "FROM ";
  out += JoinMapped(view.from_items, std::string(",") + sep + indent,
                    [&](const FromItem& f) {
                      std::string item =
                          f.site.empty() ? f.relation : f.site + "." + f.relation;
                      if (!f.alias.empty() && f.alias != f.relation) {
                        item += " " + f.alias;
                      }
                      return item + FromParams(f, options.include_default_params);
                    });
  if (!view.where.empty()) {
    out += sep;
    out += "WHERE ";
    out += JoinMapped(view.where, std::string(" AND") + sep + indent,
                      [&](const ConditionItem& c) {
                        return "(" + c.clause.ToString() + ")" +
                               CondParams(c, options.include_default_params);
                      });
  }
  return out;
}

std::string PrintViewCompact(const ViewDefinition& view) {
  PrintOptions opts;
  opts.multiline = false;
  return PrintView(view, opts);
}

}  // namespace eve
