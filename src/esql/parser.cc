#include "esql/parser.h"

#include <cstdlib>

#include "common/str_util.h"
#include "esql/lexer.h"

namespace eve {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ViewDefinition> Parse() {
    ViewDefinition view;
    EVE_RETURN_IF_ERROR(ExpectKeyword("CREATE"));
    EVE_RETURN_IF_ERROR(ExpectKeyword("VIEW"));
    EVE_ASSIGN_OR_RETURN(view.name, ExpectIdent("view name"));

    // Optional (VE = ...) parameter list after the view name.
    if (Check(TokenType::kLParen)) {
      EVE_ASSIGN_OR_RETURN(ParamList params, ParseParams());
      for (const Param& p : params) {
        if (EqualsIgnoreCase(p.name, "VE")) {
          const auto ve = ViewExtentFromString(p.value);
          if (!ve.has_value()) {
            return Error("invalid VE value '" + p.value + "'");
          }
          view.ve = *ve;
        } else {
          return Error("unknown view parameter '" + p.name + "' (expected VE)");
        }
      }
    }

    EVE_RETURN_IF_ERROR(ExpectKeyword("AS"));
    EVE_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    while (true) {
      EVE_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
      view.select_items.push_back(std::move(item));
      if (!ConsumeIf(TokenType::kComma)) break;
    }

    EVE_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    while (true) {
      EVE_ASSIGN_OR_RETURN(FromItem item, ParseFromItem());
      view.from_items.push_back(std::move(item));
      if (!ConsumeIf(TokenType::kComma)) break;
    }

    if (CheckKeyword("WHERE")) {
      Consume();
      while (true) {
        EVE_ASSIGN_OR_RETURN(ConditionItem item, ParseCondition());
        view.where.push_back(std::move(item));
        if (!CheckKeyword("AND")) break;
        Consume();
      }
    }

    ConsumeIf(TokenType::kSemicolon);
    if (!Check(TokenType::kEnd)) {
      return Error("unexpected trailing input '" + Peek().text + "'");
    }
    // Resolve unqualified attribute references when unambiguous.
    EVE_RETURN_IF_ERROR(QualifyReferences(&view));
    EVE_RETURN_IF_ERROR(view.Validate());
    return view;
  }

 private:
  struct Param {
    std::string name;
    std::string value;
  };
  using ParamList = std::vector<Param>;

  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Consume() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool Check(TokenType t) const { return Peek().Is(t); }
  bool CheckKeyword(std::string_view kw) const { return Peek().IsKeyword(kw); }
  bool ConsumeIf(TokenType t) {
    if (!Check(t)) return false;
    Consume();
    return true;
  }

  Status Error(const std::string& message) const {
    const Token& t = Peek();
    return Status::ParseError(StrFormat("%s at line %d column %d",
                                        message.c_str(), t.line, t.column));
  }

  Status ExpectKeyword(std::string_view kw) {
    if (!CheckKeyword(kw)) {
      return Error(StrFormat("expected %s, found '%s'",
                             std::string(kw).c_str(), Peek().text.c_str()));
    }
    Consume();
    return Status::OK();
  }

  Result<std::string> ExpectIdent(std::string_view what) {
    if (!Check(TokenType::kIdent)) {
      return Error(StrFormat("expected %s, found %s",
                             std::string(what).c_str(),
                             std::string(TokenTypeName(Peek().type)).c_str()));
    }
    return Consume().text;
  }

  // Is the identifier a reserved keyword that terminates a clause list?
  static bool IsReserved(const Token& t) {
    for (const char* kw : {"SELECT", "FROM", "WHERE", "AND", "AS", "CREATE",
                           "VIEW"}) {
      if (t.IsKeyword(kw)) return true;
    }
    return false;
  }

  Result<ParamList> ParseParams() {
    ParamList out;
    EVE_RETURN_IF_ERROR(Expect(TokenType::kLParen));
    while (true) {
      EVE_ASSIGN_OR_RETURN(std::string pname, ExpectIdent("parameter name"));
      if (!(Check(TokenType::kOperator) && Peek().text == "=")) {
        return Error("expected '=' after parameter " + pname);
      }
      Consume();
      // Value: identifier (true/false/subset/...), operator (~ = <= >=),
      // or string literal.
      std::string value;
      if (Check(TokenType::kIdent) || Check(TokenType::kOperator) ||
          Check(TokenType::kString) || Check(TokenType::kInt) ||
          Check(TokenType::kFloat)) {
        value = Consume().text;
      } else {
        return Error("expected a value for parameter " + pname);
      }
      out.push_back(Param{std::move(pname), std::move(value)});
      if (!ConsumeIf(TokenType::kComma)) break;
    }
    EVE_RETURN_IF_ERROR(Expect(TokenType::kRParen));
    return out;
  }

  Status Expect(TokenType t) {
    if (!Check(t)) {
      return Error(StrFormat("expected %s, found '%s'",
                             std::string(TokenTypeName(t)).c_str(),
                             Peek().text.c_str()));
    }
    Consume();
    return Status::OK();
  }

  static Result<bool> ParseBool(const Param& p) {
    if (EqualsIgnoreCase(p.value, "true")) return true;
    if (EqualsIgnoreCase(p.value, "false")) return false;
    return Status::ParseError("parameter " + p.name +
                              " expects true/false, got '" + p.value + "'");
  }

  Result<RelAttr> ParseAttrRef() {
    EVE_ASSIGN_OR_RETURN(std::string first, ExpectIdent("attribute reference"));
    if (ConsumeIf(TokenType::kDot)) {
      EVE_ASSIGN_OR_RETURN(std::string second, ExpectIdent("attribute name"));
      return RelAttr{std::move(first), std::move(second)};
    }
    return RelAttr{"", std::move(first)};
  }

  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    EVE_ASSIGN_OR_RETURN(item.source, ParseAttrRef());
    if (CheckKeyword("AS")) {
      Consume();
      EVE_ASSIGN_OR_RETURN(item.output_name, ExpectIdent("output name"));
    }
    if (Check(TokenType::kLParen)) {
      EVE_ASSIGN_OR_RETURN(ParamList params, ParseParams());
      for (const Param& p : params) {
        if (EqualsIgnoreCase(p.name, "AD")) {
          EVE_ASSIGN_OR_RETURN(item.dispensable, ParseBool(p));
        } else if (EqualsIgnoreCase(p.name, "AR")) {
          EVE_ASSIGN_OR_RETURN(item.replaceable, ParseBool(p));
        } else {
          return Error("unknown SELECT parameter '" + p.name +
                       "' (expected AD or AR)");
        }
      }
    }
    return item;
  }

  Result<FromItem> ParseFromItem() {
    FromItem item;
    EVE_ASSIGN_OR_RETURN(std::string first, ExpectIdent("relation name"));
    if (ConsumeIf(TokenType::kDot)) {
      item.site = std::move(first);
      EVE_ASSIGN_OR_RETURN(item.relation, ExpectIdent("relation name"));
    } else {
      item.relation = std::move(first);
    }
    // Optional alias: a non-reserved identifier.
    if (Check(TokenType::kIdent) && !IsReserved(Peek())) {
      item.alias = Consume().text;
    }
    if (Check(TokenType::kLParen)) {
      EVE_ASSIGN_OR_RETURN(ParamList params, ParseParams());
      for (const Param& p : params) {
        if (EqualsIgnoreCase(p.name, "RD")) {
          EVE_ASSIGN_OR_RETURN(item.dispensable, ParseBool(p));
        } else if (EqualsIgnoreCase(p.name, "RR")) {
          EVE_ASSIGN_OR_RETURN(item.replaceable, ParseBool(p));
        } else {
          return Error("unknown FROM parameter '" + p.name +
                       "' (expected RD or RR)");
        }
      }
    }
    return item;
  }

  // Distinguish "(clause) (params)" from a bare clause.  After '(' a clause
  // follows; after its ')' an optional params list may follow.
  Result<ConditionItem> ParseCondition() {
    ConditionItem item;
    const bool parenthesized = ConsumeIf(TokenType::kLParen);
    EVE_ASSIGN_OR_RETURN(item.clause, ParseClause());
    if (parenthesized) {
      EVE_RETURN_IF_ERROR(Expect(TokenType::kRParen));
    }
    if (Check(TokenType::kLParen) && LooksLikeParams()) {
      EVE_ASSIGN_OR_RETURN(ParamList params, ParseParams());
      for (const Param& p : params) {
        if (EqualsIgnoreCase(p.name, "CD")) {
          EVE_ASSIGN_OR_RETURN(item.dispensable, ParseBool(p));
        } else if (EqualsIgnoreCase(p.name, "CR")) {
          EVE_ASSIGN_OR_RETURN(item.replaceable, ParseBool(p));
        } else {
          return Error("unknown WHERE parameter '" + p.name +
                       "' (expected CD or CR)");
        }
      }
    }
    return item;
  }

  // A '(' starts a params list (rather than a parenthesized clause) when the
  // pattern is: '(' IDENT '=' (IDENT|literal) and the identifier is one of
  // the evolution parameter names.
  bool LooksLikeParams() const {
    if (!Peek(0).Is(TokenType::kLParen) || !Peek(1).Is(TokenType::kIdent)) {
      return false;
    }
    const std::string& name = Peek(1).text;
    for (const char* p : {"CD", "CR", "AD", "AR", "RD", "RR", "VE"}) {
      if (EqualsIgnoreCase(name, p)) {
        return Peek(2).Is(TokenType::kOperator) && Peek(2).text == "=";
      }
    }
    return false;
  }

  Result<PrimitiveClause> ParseClause() {
    // LHS must be an attribute reference (paper: primitive clauses are
    // attr-op-attr or attr-op-value; we normalize value-op-attr by flipping).
    EVE_ASSIGN_OR_RETURN(Operand lhs, ParseOperand());
    if (!Check(TokenType::kOperator)) {
      return Error("expected comparison operator");
    }
    const auto op = CompOpFromString(Peek().text);
    if (!op.has_value()) {
      return Error("invalid comparison operator '" + Peek().text + "'");
    }
    Consume();
    EVE_ASSIGN_OR_RETURN(Operand rhs, ParseOperand());

    if (lhs.is_attr && rhs.is_attr) {
      return PrimitiveClause::AttrAttr(lhs.attr, *op, rhs.attr);
    }
    if (lhs.is_attr) {
      return PrimitiveClause::AttrConst(lhs.attr, *op, rhs.value);
    }
    if (rhs.is_attr) {
      return PrimitiveClause::AttrConst(rhs.attr, FlipCompOp(*op), lhs.value);
    }
    return Error("a primitive clause must reference at least one attribute");
  }

  struct Operand {
    bool is_attr = false;
    RelAttr attr;
    Value value;
  };

  Result<Operand> ParseOperand() {
    Operand out;
    if (Check(TokenType::kIdent)) {
      out.is_attr = true;
      EVE_ASSIGN_OR_RETURN(out.attr, ParseAttrRef());
      return out;
    }
    if (Check(TokenType::kInt)) {
      out.value = Value(static_cast<int64_t>(std::strtoll(
          Consume().text.c_str(), nullptr, 10)));
      return out;
    }
    if (Check(TokenType::kFloat)) {
      out.value = Value(std::strtod(Consume().text.c_str(), nullptr));
      return out;
    }
    if (Check(TokenType::kString)) {
      out.value = Value(Consume().text);
      return out;
    }
    return Error("expected an attribute reference or literal");
  }

  // Gives unqualified SELECT/WHERE references their relation part when the
  // view has exactly one FROM item; ambiguous references are left for
  // Validate() to reject.
  Status QualifyReferences(ViewDefinition* view) const {
    if (view->from_items.size() != 1) return Status::OK();
    const std::string& only = view->from_items[0].name();
    for (SelectItem& s : view->select_items) {
      if (s.source.relation.empty()) s.source.relation = only;
    }
    for (ConditionItem& c : view->where) {
      if (c.clause.lhs.relation.empty()) c.clause.lhs.relation = only;
      if (c.clause.rhs_is_attr() && c.clause.rhs_attr().relation.empty()) {
        RelAttr r = c.clause.rhs_attr();
        r.relation = only;
        c.clause.rhs = r;
      }
    }
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<ViewDefinition> ParseViewDefinition(const std::string& text) {
  EVE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  return Parser(std::move(tokens)).Parse();
}

}  // namespace eve
