// Tokens of the E-SQL lexer.

#ifndef EVE_ESQL_TOKEN_H_
#define EVE_ESQL_TOKEN_H_

#include <string>
#include <string_view>

namespace eve {

enum class TokenType {
  kEnd,
  kIdent,    ///< Bare identifier or keyword (keywords resolved by parser).
  kInt,      ///< Integer literal.
  kFloat,    ///< Floating-point literal.
  kString,   ///< Quoted string literal ('...' or "...").
  kLParen,
  kRParen,
  kComma,
  kDot,
  kSemicolon,
  kStar,
  kOperator,  ///< One of < <= = >= > <> != ~
};

/// A lexed token with its 1-based source position (for parse errors).
struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;    ///< Raw text (unquoted for strings).
  int line = 1;
  int column = 1;

  bool Is(TokenType t) const { return type == t; }
  /// Case-insensitive keyword match on identifier tokens.
  bool IsKeyword(std::string_view kw) const;
};

std::string_view TokenTypeName(TokenType type);

}  // namespace eve

#endif  // EVE_ESQL_TOKEN_H_
