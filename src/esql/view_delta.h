// Copy-on-write view editing: RewriteDelta + DeltaView.
//
// The rewriting enumeration (synch/synchronizer.h) derives hundreds of
// candidate view definitions from one base view, and most candidates differ
// from their parent by a handful of dropped or substituted components.
// Eagerly deep-copying the `ViewDefinition` per candidate made the
// representation the dominant cost of the search (ROADMAP; cf. Chirkova &
// Genesereth on reformulation-space representations).  Instead, a candidate
// is now a shared immutable base plus an ordered log of `RewriteDelta` ops,
// and `DeltaView` is the compiled overlay that answers ViewDefinition-style
// queries over (base, ops) without materializing anything.
//
// Stable ids.  Every component of the effective view has a stable id that
// never shifts as ops are applied:
//   * ids [0, base_n)  name the base's items by their base index;
//   * ids >= base_n    name appended items in append order.
// Drops hide an id (the slot stays), Set/Replace override the payload in
// place (position preserved), Add allocates the next id.  This mirrors
// exactly what the eager strategies did with erase / in-place mutation /
// push_back, so the effective item order -- and therefore the materialized
// definition -- is byte-identical to the eager result.
//
// Storage.  The overlay owns no payloads: overridden and appended items
// live solely in the op log, and slots store the index of the defining op.
// Copying an overlay therefore copies a few flat int vectors, never a
// string.  The caller keeps the op log alive and re-Sync()s the overlay
// whenever the log's storage may have moved (push_back growth, container
// copy); `Sync` also folds in any ops appended since the last call.
//
// StructuralHash(DeltaView) walks the live overlay with the same per-item
// hash steps as StructuralHash(ViewDefinition) (see ast.h), so deduplication
// buckets candidates without rendering or rebuilding an AST; the hash of a
// DeltaView always equals the hash of its Materialize() result.
//
// `ViewDefinition::Apply(ops)` (declared in ast.h, defined here) is the
// one-shot materialization used for candidates that survive legality,
// deduplication, and the result cap.

#ifndef EVE_ESQL_VIEW_DELTA_H_
#define EVE_ESQL_VIEW_DELTA_H_

#include <cstdint>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"
#include "esql/ast.h"
#include "expr/clause.h"

namespace eve {

/// One copy-on-write edit of a view definition.  Ops reference components
/// by stable id (see file comment); payload-carrying ops own their payload
/// (it is the only copy anywhere -- overlays point back into the log).
struct RewriteDelta {
  enum class Kind : uint8_t {
    kDropSelect,     ///< Hide SELECT item `id`.
    kSetSelect,      ///< Override SELECT item `id` with the payload.
    kDropCondition,  ///< Hide WHERE item `id`.
    kSetCondition,   ///< Override WHERE item `id` with the payload.
    kAddCondition,   ///< Append a WHERE item (allocates the next id).
    kDropFrom,       ///< Hide FROM item `id`.
    kReplaceFrom,    ///< Override FROM item `id` in place (position kept).
    kAddFrom,        ///< Append a FROM item (allocates the next id).
  };

  Kind kind;
  int32_t id = -1;  ///< Target id; -1 for appends.
  std::variant<std::monostate, SelectItem, ConditionItem, FromItem> payload;

  static RewriteDelta DropSelect(int32_t id) {
    return RewriteDelta{Kind::kDropSelect, id, std::monostate{}};
  }
  static RewriteDelta SetSelect(int32_t id, SelectItem item) {
    return RewriteDelta{Kind::kSetSelect, id, std::move(item)};
  }
  static RewriteDelta DropCondition(int32_t id) {
    return RewriteDelta{Kind::kDropCondition, id, std::monostate{}};
  }
  static RewriteDelta SetCondition(int32_t id, ConditionItem item) {
    return RewriteDelta{Kind::kSetCondition, id, std::move(item)};
  }
  static RewriteDelta AddCondition(ConditionItem item) {
    return RewriteDelta{Kind::kAddCondition, -1, std::move(item)};
  }
  static RewriteDelta DropFrom(int32_t id) {
    return RewriteDelta{Kind::kDropFrom, id, std::monostate{}};
  }
  static RewriteDelta ReplaceFrom(int32_t id, FromItem item) {
    return RewriteDelta{Kind::kReplaceFrom, id, std::move(item)};
  }
  static RewriteDelta AddFrom(FromItem item) {
    return RewriteDelta{Kind::kAddFrom, -1, std::move(item)};
  }
};

/// The compiled overlay of (base, ops): a read-only ViewDefinition facade.
/// Construction from a base alone is the identity overlay (every read
/// delegates to the base); Sync() folds in the op log.
///
/// Both the base and the op log are borrowed: they must outlive the
/// overlay, and after any operation that may move the log's storage the
/// caller must Sync() again before reading.  Reads are not thread-safe
/// with concurrent Sync calls (single-builder discipline, like the eager
/// code it replaces).
class DeltaView {
 public:
  explicit DeltaView(const ViewDefinition& base);
  DeltaView(const ViewDefinition& base, std::span<const RewriteDelta> ops);

  /// Re-points the overlay at `ops` and applies ops[applied..) for any ops
  /// appended since the last Sync.  The prefix ops[0, applied) must be
  /// value-identical to what was applied before (true whenever the same
  /// log only grew or was copied verbatim).
  void Sync(std::span<const RewriteDelta> ops);

  const ViewDefinition& base() const { return *base_; }
  const std::string& name() const { return base_->name; }
  ViewExtent ve() const { return base_->ve; }

  // --- Effective (live) components, in materialization order -------------
  int select_size() const;
  const SelectItem& select(int pos) const;
  int32_t select_id(int pos) const;

  int from_size() const;
  const FromItem& from(int pos) const;
  int32_t from_id(int pos) const;

  int where_size() const;
  const ConditionItem& where(int pos) const;
  int32_t where_id(int pos) const;

  /// Direct id-based access (dropped items remain addressable until
  /// materialization; callers that iterate live positions never see them).
  const SelectItem& select_by_id(int32_t id) const;
  const ConditionItem& where_by_id(int32_t id) const;
  const FromItem& from_by_id(int32_t id) const;

  // --- ViewDefinition-equivalent queries ---------------------------------
  const FromItem* FindFrom(const std::string& name) const;
  const SelectItem* FindSelect(const std::string& output) const;
  bool RelationIsUsed(const std::string& name) const;
  Conjunction LocalConjunction(const std::string& name) const;
  Status Validate() const;

  /// Deep-copies the effective view (the candidate's one-shot
  /// materialization).  Equal to base().Apply(ops) for the synced op log.
  ViewDefinition Materialize() const;

  /// Equals StructuralHash(Materialize()) without materializing.
  size_t StructuralHash() const;

  /// Equals StructurallyEqual(Materialize(), def) without materializing.
  bool StructurallyEquals(const ViewDefinition& def) const;
  bool StructurallyEquals(const DeltaView& other) const;

 private:
  struct Slot {
    int32_t owned = -1;  ///< Defining op index in the log; -1 = base item.
    bool dropped = false;
  };

  template <typename T>
  struct Section {
    std::vector<Slot> slots;  ///< Base items first, then appends.
    int32_t base_n = 0;

    const T& at(int32_t id, const std::vector<T>& base_items,
                const RewriteDelta* ops) const {
      const Slot& s = slots[id];
      return s.owned >= 0 ? std::get<T>(ops[s.owned].payload) : base_items[id];
    }
  };

  void ApplyOne(size_t op_index);
  void Reindex() const;  ///< Rebuilds the live-position vectors if dirty.

  const ViewDefinition* base_;
  const RewriteDelta* ops_ = nullptr;  ///< Borrowed log storage.
  size_t applied_ = 0;                 ///< Ops folded into the slots so far.
  Section<SelectItem> sel_;
  Section<ConditionItem> where_;
  Section<FromItem> from_;
  /// Live slot ids in effective order, rebuilt lazily after edits.
  mutable std::vector<int32_t> live_sel_, live_where_, live_from_;
  mutable bool dirty_ = true;
};

}  // namespace eve

#endif  // EVE_ESQL_VIEW_DELTA_H_
