// Canonical E-SQL rendering of a ViewDefinition.  Printing then re-parsing
// yields a structurally identical definition (round-trip property, tested).

#ifndef EVE_ESQL_PRINTER_H_
#define EVE_ESQL_PRINTER_H_

#include <string>

#include "esql/ast.h"

namespace eve {

/// Options controlling the rendered form.
struct PrintOptions {
  /// Emit evolution parameters even when they hold default values.
  bool include_default_params = false;
  /// Break SELECT/FROM/WHERE onto separate lines.
  bool multiline = true;
};

/// Renders `view` as an E-SQL CREATE VIEW statement.
std::string PrintView(const ViewDefinition& view, const PrintOptions& options = {});

/// One-line compact form used in reports and examples.
std::string PrintViewCompact(const ViewDefinition& view);

}  // namespace eve

#endif  // EVE_ESQL_PRINTER_H_
