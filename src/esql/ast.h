// The E-SQL abstract syntax tree (paper §3.1, Figs. 2-3).
//
// E-SQL extends SELECT-FROM-WHERE with evolution preferences:
//   * per SELECT item:   AD (attribute-dispensable), AR (attribute-replaceable)
//   * per FROM item:     RD (relation-dispensable),  RR (relation-replaceable)
//   * per WHERE clause:  CD (condition-dispensable), CR (condition-replaceable)
//   * per view:          VE (view-extent discipline: ~, =, superset, subset)
// All boolean parameters default to false (indispensable / non-replaceable);
// VE defaults to "don't care" (~ / approximate), per Fig. 3.

#ifndef EVE_ESQL_AST_H_
#define EVE_ESQL_AST_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/names.h"
#include "common/result.h"
#include "common/status.h"
#include "expr/clause.h"

namespace eve {

/// The view-extent evolution parameter VE (paper Fig. 3).
enum class ViewExtent {
  kApproximate,  ///< '~'  no restriction on the new extent
  kEqual,        ///< '='  new extent must equal the old extent
  kSuperset,     ///< 'superset' new extent must contain the old extent
  kSubset,       ///< 'subset'   new extent must be contained in the old
};

/// Canonical spelling: "~", "=", "superset", "subset".
std::string_view ViewExtentToString(ViewExtent ve);

/// Accepts ASCII and unicode spellings (~, any, approx; =, equal; >=,
/// superset; <=, subset).
std::optional<ViewExtent> ViewExtentFromString(std::string_view text);

/// One SELECT entry: a source attribute, its exposed name, and AD/AR.
struct SelectItem {
  RelAttr source;           ///< e.g. R.A (relation part = FROM item name).
  std::string output_name;  ///< Exposed name B_i; defaults to the attribute.
  bool dispensable = false;  ///< AD.
  bool replaceable = false;  ///< AR.

  const std::string& name() const {
    return output_name.empty() ? source.attribute : output_name;
  }

  bool operator==(const SelectItem& o) const = default;
};

/// One FROM entry: a relation (optionally site-qualified and aliased) and
/// RD/RR.
struct FromItem {
  std::string site;      ///< Optional; empty means "resolve via the space".
  std::string relation;  ///< Relation name at the site.
  std::string alias;     ///< Query-local name; empty means `relation`.
  bool dispensable = false;  ///< RD.
  bool replaceable = false;  ///< RR.

  /// The name by which SELECT/WHERE reference this relation.
  const std::string& name() const { return alias.empty() ? relation : alias; }

  bool operator==(const FromItem& o) const = default;
};

/// One WHERE conjunct: a primitive clause and CD/CR.
struct ConditionItem {
  PrimitiveClause clause;
  bool dispensable = false;  ///< CD.
  bool replaceable = false;  ///< CR.

  bool operator==(const ConditionItem& o) const = default;
};

/// A complete E-SQL view definition.
struct ViewDefinition {
  std::string name;
  ViewExtent ve = ViewExtent::kApproximate;
  std::vector<SelectItem> select_items;
  std::vector<FromItem> from_items;
  std::vector<ConditionItem> where;

  /// The FROM item referenced as `name` (alias or relation), or nullptr.
  const FromItem* FindFrom(const std::string& name) const;
  FromItem* FindFrom(const std::string& name);

  /// The SELECT item exposed as `output` name, or nullptr.
  const SelectItem* FindSelect(const std::string& output) const;

  /// True iff any SELECT item or WHERE clause references FROM item `name`.
  bool RelationIsUsed(const std::string& name) const;

  /// Output (interface) attribute names in SELECT order.
  std::vector<std::string> InterfaceNames() const;

  /// The WHERE conjunction without evolution parameters.
  Conjunction WhereConjunction() const;

  /// Join clauses (attr-op-attr across two FROM items) in the WHERE clause.
  std::vector<PrimitiveClause> JoinClauses() const;

  /// Local (single-relation) clauses restricted to FROM item `name`.
  Conjunction LocalConjunction(const std::string& name) const;

  /// Structural well-formedness: every referenced relation name matches a
  /// FROM item, output names are unique, at least one SELECT and FROM item.
  Status Validate() const;

  bool operator==(const ViewDefinition& o) const = default;
};

/// Structural hash of a view definition under the same normalization as the
/// canonical printed form: a default output name (empty or equal to the
/// source attribute) and a default alias (empty or equal to the relation)
/// compare equal to their explicit spellings.  Consistent with
/// StructurallyEqual; used to deduplicate rewriting candidates without
/// rendering them to strings.
size_t StructuralHash(const ViewDefinition& view);

/// Structural equality under the StructuralHash normalization.
bool StructurallyEqual(const ViewDefinition& a, const ViewDefinition& b);

}  // namespace eve

#endif  // EVE_ESQL_AST_H_
