// The E-SQL abstract syntax tree (paper §3.1, Figs. 2-3).
//
// E-SQL extends SELECT-FROM-WHERE with evolution preferences:
//   * per SELECT item:   AD (attribute-dispensable), AR (attribute-replaceable)
//   * per FROM item:     RD (relation-dispensable),  RR (relation-replaceable)
//   * per WHERE clause:  CD (condition-dispensable), CR (condition-replaceable)
//   * per view:          VE (view-extent discipline: ~, =, superset, subset)
// All boolean parameters default to false (indispensable / non-replaceable);
// VE defaults to "don't care" (~ / approximate), per Fig. 3.

#ifndef EVE_ESQL_AST_H_
#define EVE_ESQL_AST_H_

#include <optional>
#include <set>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/names.h"
#include "common/result.h"
#include "common/status.h"
#include "expr/clause.h"

namespace eve {

/// The view-extent evolution parameter VE (paper Fig. 3).
enum class ViewExtent {
  kApproximate,  ///< '~'  no restriction on the new extent
  kEqual,        ///< '='  new extent must equal the old extent
  kSuperset,     ///< 'superset' new extent must contain the old extent
  kSubset,       ///< 'subset'   new extent must be contained in the old
};

/// Canonical spelling: "~", "=", "superset", "subset".
std::string_view ViewExtentToString(ViewExtent ve);

/// Accepts ASCII and unicode spellings (~, any, approx; =, equal; >=,
/// superset; <=, subset).
std::optional<ViewExtent> ViewExtentFromString(std::string_view text);

/// One SELECT entry: a source attribute, its exposed name, and AD/AR.
struct SelectItem {
  RelAttr source;           ///< e.g. R.A (relation part = FROM item name).
  std::string output_name;  ///< Exposed name B_i; defaults to the attribute.
  bool dispensable = false;  ///< AD.
  bool replaceable = false;  ///< AR.

  const std::string& name() const {
    return output_name.empty() ? source.attribute : output_name;
  }

  bool operator==(const SelectItem& o) const = default;
};

/// One FROM entry: a relation (optionally site-qualified and aliased) and
/// RD/RR.
struct FromItem {
  std::string site;      ///< Optional; empty means "resolve via the space".
  std::string relation;  ///< Relation name at the site.
  std::string alias;     ///< Query-local name; empty means `relation`.
  bool dispensable = false;  ///< RD.
  bool replaceable = false;  ///< RR.

  /// The name by which SELECT/WHERE reference this relation.
  const std::string& name() const { return alias.empty() ? relation : alias; }

  bool operator==(const FromItem& o) const = default;
};

/// One WHERE conjunct: a primitive clause and CD/CR.
struct ConditionItem {
  PrimitiveClause clause;
  bool dispensable = false;  ///< CD.
  bool replaceable = false;  ///< CR.

  bool operator==(const ConditionItem& o) const = default;
};

struct RewriteDelta;  // esql/view_delta.h

/// A complete E-SQL view definition.
struct ViewDefinition {
  std::string name;
  ViewExtent ve = ViewExtent::kApproximate;
  std::vector<SelectItem> select_items;
  std::vector<FromItem> from_items;
  std::vector<ConditionItem> where;

  /// The FROM item referenced as `name` (alias or relation), or nullptr.
  const FromItem* FindFrom(const std::string& name) const;
  FromItem* FindFrom(const std::string& name);

  /// The SELECT item exposed as `output` name, or nullptr.
  const SelectItem* FindSelect(const std::string& output) const;

  /// True iff any SELECT item or WHERE clause references FROM item `name`.
  bool RelationIsUsed(const std::string& name) const;

  /// Output (interface) attribute names in SELECT order.
  std::vector<std::string> InterfaceNames() const;

  /// The WHERE conjunction without evolution parameters.
  Conjunction WhereConjunction() const;

  /// Join clauses (attr-op-attr across two FROM items) in the WHERE clause.
  std::vector<PrimitiveClause> JoinClauses() const;

  /// Local (single-relation) clauses restricted to FROM item `name`.
  Conjunction LocalConjunction(const std::string& name) const;

  /// Structural well-formedness: every referenced relation name matches a
  /// FROM item, output names are unique, at least one SELECT and FROM item.
  Status Validate() const;

  /// Materializes a copy of this definition with the copy-on-write op log
  /// `ops` applied in order (see esql/view_delta.h).  This definition is
  /// the immutable base; it is never modified.
  ViewDefinition Apply(std::span<const RewriteDelta> ops) const;

  bool operator==(const ViewDefinition& o) const = default;
};

/// Structural hash of a view definition under the same normalization as the
/// canonical printed form: a default output name (empty or equal to the
/// source attribute) and a default alias (empty or equal to the relation)
/// compare equal to their explicit spellings.  Consistent with
/// StructurallyEqual; used to deduplicate rewriting candidates without
/// rendering them to strings.
size_t StructuralHash(const ViewDefinition& view);

/// Structural equality under the StructuralHash normalization.
bool StructurallyEqual(const ViewDefinition& a, const ViewDefinition& b);

/// Per-component steps of StructuralHash / StructurallyEqual / Validate,
/// shared with the copy-on-write overlay (esql/view_delta.h) so hashing or
/// validating a (base, delta) candidate is guaranteed to agree with its
/// materialization.
namespace view_structure_internal {
/// One FROM item's validation step: checks the item and records its
/// query-local name in `from_names` (duplicate detection).
Status ValidateFrom(const std::string& view_name, const FromItem& f,
                    std::set<std::string>* from_names);
/// One SELECT item's validation step against the complete FROM name set;
/// records the output name in `out_names`.
Status ValidateSelect(const std::string& view_name, const SelectItem& s,
                      const std::set<std::string>& from_names,
                      std::set<std::string>* out_names);
/// One WHERE item's validation step against the complete FROM name set.
Status ValidateCondition(const std::string& view_name, const ConditionItem& c,
                         const std::set<std::string>& from_names);
size_t SeedHash(const ViewDefinition& view);
size_t CombineSelect(size_t h, const SelectItem& s);
size_t CombineFrom(size_t h, const FromItem& f);
size_t CombineCondition(size_t h, const ConditionItem& c);
bool SelectEqual(const SelectItem& a, const SelectItem& b);
bool FromEqual(const FromItem& a, const FromItem& b);
bool ConditionEqual(const ConditionItem& a, const ConditionItem& b);
}  // namespace view_structure_internal

}  // namespace eve

#endif  // EVE_ESQL_AST_H_
