// The selective rewriting policy: a decision layer that runs BEFORE
// enumeration for each (change, view) pair and classifies it as
//
//   * skip -- the change provably cannot affect the view (skip-unaffected)
//             or provably leaves it no legal rewriting (skip-dead); the
//             enumeration is bypassed and the report is exactly what full
//             enumeration would have produced;
//   * cap  -- enumerate, but with a tightened strategy subset and result
//             cap (the dominated CVS pair fan-out is pruned when an exact
//             equivalent covering replacement is known to exist);
//   * full -- enumerate with the base options (the seed behavior).
//
// All pre-checks are O(view) + memoized MKB lookups: attribute-coverage
// bitsets over the referenced attributes, reachability through the
// memoized transitive PC closure, and overlap estimates from the existing
// estimator (misd/overlap_estimator.h).
//
// Soundness of skip relies on monotonicity of the synchronizer's fold:
// the blockers of the drop strategy (an indispensable reference, a
// non-dispensable FROM item, the all-outputs guard, the single-FROM-item
// guard) can only get stricter as earlier fold rounds shrink the view, and
// the discovery strategies (replace-relation, join-in, cvs-pair) all
// enumerate the memoized PC closure of the affected FROM item -- an empty
// closure, or a non-replaceable item for the relation-level strategies,
// rules them out regardless of fold state.  tests/policy_test.cc verifies
// every skip against full enumeration (the oracle).

#ifndef EVE_POLICY_POLICY_H_
#define EVE_POLICY_POLICY_H_

#include <cstdint>
#include <string>

#include "esql/ast.h"
#include "misd/mkb.h"
#include "space/schema_change.h"
#include "synch/synchronizer.h"

namespace eve {

/// Operating mode of the policy layer.
enum class PolicyMode {
  /// Decision layer bypassed: every pair enumerates with the base options.
  /// Byte-identical to the seed's always-enumerate behavior (tested); this
  /// is the equivalence oracle for the selective modes.
  kExhaustive,
  /// Skip + cap pre-checks enabled with the base enumeration options.
  kBalanced,
  /// Skip + cap with aggressively tightened caps (for deadline-bound
  /// serving); trades rewriting spectrum breadth for latency.
  kLatencyBound,
};

std::string_view PolicyModeToString(PolicyMode mode);

/// Knobs of the decision layer (carried inside EveOptions).
struct PolicyConfig {
  PolicyMode mode = PolicyMode::kExhaustive;
  /// Cap decisions tighten max_rewritings to at most this many (never
  /// raising the base option).
  int cap_max_rewritings = 32;
  /// Additionally require the covering equivalent edge's overlap estimate
  /// to be exact before capping (Fig. 9's asterisked cases stay full).
  bool cap_requires_exact_overlap = true;
};

/// Classification of one (change, view) pair.
enum class PolicyAction : uint8_t {
  kFull = 0,
  kCap = 1,
  kSkipUnaffected = 2,
  kSkipDead = 3,
};

std::string_view PolicyActionToString(PolicyAction action);

/// The decision for one (change, view) pair.
struct PolicyDecision {
  PolicyAction action = PolicyAction::kFull;
  /// Effective enumeration options for this pair (== the base options for
  /// kFull; tightened for kCap; unused for the skip actions).
  SynchronizerOptions options;
  /// Static description of the triggering pre-check (for reports/curves).
  const char* reason = "always-enumerate";

  bool skipped() const {
    return action == PolicyAction::kSkipUnaffected ||
           action == PolicyAction::kSkipDead;
  }
};

/// Per-decision counters, accumulated by EveSystem across schema changes
/// (EveSystem::policy_stats()).
struct PolicyStats {
  int64_t decisions = 0;
  int64_t full = 0;
  int64_t capped = 0;
  int64_t skipped_unaffected = 0;
  int64_t skipped_dead = 0;
  /// Enumeration work actually spent: candidates derived and offered to
  /// the synchronizer's sinks, summed over all enumerated pairs.
  int64_t candidates_considered = 0;
  /// Candidates that survived to ranking.
  int64_t candidates_ranked = 0;

  PolicyStats& operator+=(const PolicyStats& other);
  std::string ToString() const;
};

/// The pre-enumeration decision engine.  Stateless apart from borrowed
/// references; one instance per NotifySchemaChange, shared across the
/// per-view workers (Decide is const and touches only internally
/// synchronized MKB memos).
class PolicyEngine {
 public:
  /// `mkb` must reflect the PRE-change state and outlive the engine.
  PolicyEngine(const MetaKnowledgeBase& mkb, const PolicyConfig& config,
               const SynchronizerOptions& base);

  /// Classifies (view, change).  Never returns a skip in kExhaustive mode.
  PolicyDecision Decide(const ViewDefinition& view,
                        const SchemaChange& change) const;

 private:
  const MetaKnowledgeBase& mkb_;
  PolicyConfig config_;
  SynchronizerOptions base_;
};

}  // namespace eve

#endif  // EVE_POLICY_POLICY_H_
