#include "policy/evolution_policy.h"

#include <algorithm>
#include <cctype>

#include "common/str_util.h"

namespace eve {

Status EvolutionPolicy::Validate() const {
  if (version != 1) {
    return Status::InvalidArgument(
        StrFormat("EvolutionPolicy version %d not understood by this build "
                  "(expected 1)",
                  version));
  }
  if (synchronizer.max_rewritings <= 0) {
    return Status::InvalidArgument(
        "EvolutionPolicy: synchronizer.max_rewritings must be positive");
  }
  if (synchronizer.max_pc_hops < 1) {
    return Status::InvalidArgument(
        "EvolutionPolicy: synchronizer.max_pc_hops must be >= 1");
  }
  if (policy.cap_max_rewritings <= 0) {
    return Status::InvalidArgument(
        "EvolutionPolicy: policy.cap_max_rewritings must be positive");
  }
  if (ranker != nullptr && !synchronizer.use_delta_enumeration) {
    return Status::InvalidArgument(
        "EvolutionPolicy: an adoption ranker requires the delta enumeration "
        "pipeline (synchronizer.use_delta_enumeration)");
  }
  return qc.Validate();
}

EveOptions EvolutionPolicy::ToEveOptions() const {
  EveOptions options;
  options.synchronizer = synchronizer;
  options.qc = qc;
  options.cost = cost;
  options.workload = workload;
  options.maintainer = maintainer;
  options.materialize = materialize;
  options.adopt_first_legal = adopt_first_legal;
  options.synchronize_threads = synchronize_threads;
  options.policy = policy;
  options.ranker = ranker;
  return options;
}

ServingOptions EvolutionPolicy::ToServingOptions() const { return serving; }

Status EvolutionPolicy::ApplyTo(EveSystem& system) const {
  EVE_RETURN_IF_ERROR(Validate());
  system.options() = ToEveOptions();
  system.mkb().set_selective_invalidation(selective_invalidation);
  return Status::OK();
}

EvolutionPolicy EvolutionPolicy::Exhaustive() {
  EvolutionPolicy p;
  p.name = "exhaustive";
  return p;  // All defaults: PolicyMode::kExhaustive, seed enumeration.
}

EvolutionPolicy EvolutionPolicy::Balanced() {
  EvolutionPolicy p;
  p.name = "balanced";
  p.policy.mode = PolicyMode::kBalanced;
  p.policy.cap_max_rewritings = 32;
  return p;
}

EvolutionPolicy EvolutionPolicy::LatencyBound() {
  EvolutionPolicy p;
  p.name = "latency_bound";
  p.policy.mode = PolicyMode::kLatencyBound;
  p.policy.cap_max_rewritings = 8;
  p.synchronizer.max_pc_hops = 2;
  p.synchronizer.max_rewritings = 32;
  p.serving.default_deadline = std::chrono::milliseconds(50);
  p.serving.max_epoch_lag = 4;
  return p;
}

Result<EvolutionPolicy> PolicyPresetByName(std::string_view name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(), [](char c) {
    return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  });
  if (lower == "exhaustive") return EvolutionPolicy::Exhaustive();
  if (lower == "balanced") return EvolutionPolicy::Balanced();
  if (lower == "latency_bound" || lower == "latency-bound") {
    return EvolutionPolicy::LatencyBound();
  }
  return Status::InvalidArgument(
      StrFormat("unknown policy preset \"%.*s\" (expected exhaustive, "
                "balanced, or latency_bound)",
                static_cast<int>(name.size()), name.data()));
}

Result<EvolutionPolicy> EvolutionPolicyBuilder::Build() {
  if (!weights_path_.empty()) {
    EVE_ASSIGN_OR_RETURN(LinearRanker ranker,
                         LinearRanker::FromJsonFile(weights_path_));
    policy_.ranker = std::make_shared<const LinearRanker>(std::move(ranker));
  }
  EVE_RETURN_IF_ERROR(policy_.Validate());
  return std::move(policy_);
}

}  // namespace eve
