#include "policy/ranker.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/str_util.h"
#include "qc/quality.h"
#include "qc/ranking.h"

namespace eve {

const std::vector<std::string>& CandidateFeatures::Names() {
  static const std::vector<std::string> kNames = {
      "dd",           "dd_attr",      "dd_ext",
      "q_rewriting",  "exact",        "weighted_cost",
      "estimated_size", "ops",        "drops",
      "replacements", "added_conditions", "pc_hops_max",
      "pc_hops_total", "select_size", "from_size",
      "where_size",
  };
  return kNames;
}

std::vector<double> CandidateFeatures::ToVector() const {
  return {dd,          dd_attr,        dd_ext,        q_rewriting,
          exact,       weighted_cost,  estimated_size, ops,
          drops,       replacements,   added_conditions, pc_hops_max,
          pc_hops_total, select_size,  from_size,     where_size};
}

std::string CandidateFeatures::ToString() const {
  const std::vector<double> values = ToVector();
  std::string out = "{";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += StrFormat("%s=%g", Names()[i].c_str(), values[i]);
  }
  out += "}";
  return out;
}

Result<CandidateFeatures> ExtractCandidateFeatures(
    const ViewDefinition& original, const RewriteCandidate& candidate,
    const MetaKnowledgeBase& mkb, const QcParameters& params,
    const CostModelOptions& cost_options, const WorkloadOptions& workload) {
  CandidateFeatures f;
  const DeltaView view = candidate.View();

  EVE_ASSIGN_OR_RETURN(const QualityBreakdown quality,
                       EstimateQuality(original, candidate, view, mkb, params));
  f.dd = quality.dd;
  f.dd_attr = quality.dd_attr;
  f.dd_ext = quality.dd_ext;
  f.q_rewriting = quality.q_rewriting;
  f.exact = quality.exact ? 1 : 0;

  EVE_ASSIGN_OR_RETURN(const ViewCostInput cost_input,
                       BuildCostInput(view, mkb));
  EVE_ASSIGN_OR_RETURN(const WorkloadCost cost,
                       ComputeWorkloadCost(cost_input, workload, cost_options));
  f.weighted_cost = cost.Weighted(params);
  EVE_ASSIGN_OR_RETURN(f.estimated_size, EstimateViewSize(view, mkb));

  f.ops = static_cast<double>(candidate.ops.size());
  for (const RewriteDelta& op : candidate.ops) {
    switch (op.kind) {
      case RewriteDelta::Kind::kDropSelect:
      case RewriteDelta::Kind::kDropCondition:
      case RewriteDelta::Kind::kDropFrom:
        f.drops += 1;
        break;
      case RewriteDelta::Kind::kAddCondition:
        f.added_conditions += 1;
        break;
      default:
        break;
    }
  }

  f.replacements = static_cast<double>(candidate.replacements.size());
  for (const CandidateReplacement& r : candidate.replacements) {
    if (r.edge == nullptr) continue;
    f.pc_hops_total += r.edge->hops;
    f.pc_hops_max = std::max(f.pc_hops_max, static_cast<double>(r.edge->hops));
  }

  f.select_size = view.select_size();
  f.from_size = view.from_size();
  f.where_size = view.where_size();
  return f;
}

// --- QcRanker --------------------------------------------------------------

QcRanker::QcRanker(QcParameters params, CostModelOptions cost_options,
                   WorkloadOptions workload)
    : params_(std::move(params)),
      cost_options_(std::move(cost_options)),
      workload_(std::move(workload)) {}

Result<std::vector<double>> QcRanker::Score(
    const ViewDefinition& original,
    const std::vector<RewriteCandidate>& candidates,
    const MetaKnowledgeBase& mkb) const {
  std::vector<double> dds, costs;
  dds.reserve(candidates.size());
  costs.reserve(candidates.size());
  for (const RewriteCandidate& c : candidates) {
    const DeltaView view = c.View();
    EVE_ASSIGN_OR_RETURN(const QualityBreakdown quality,
                         EstimateQuality(original, c, view, mkb, params_));
    EVE_ASSIGN_OR_RETURN(const ViewCostInput input, BuildCostInput(view, mkb));
    EVE_ASSIGN_OR_RETURN(const WorkloadCost cost,
                         ComputeWorkloadCost(input, workload_, cost_options_));
    dds.push_back(quality.dd);
    costs.push_back(cost.Weighted(params_));
  }
  const std::vector<double> normalized = NormalizeCosts(costs);
  std::vector<double> scores(candidates.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    scores[i] =
        1.0 - (params_.rho_quality * dds[i] + params_.rho_cost * normalized[i]);
  }
  return scores;
}

// --- LinearRanker ----------------------------------------------------------

LinearRanker::LinearRanker(double bias, std::map<std::string, double> weights,
                           QcParameters params, CostModelOptions cost_options,
                           WorkloadOptions workload)
    : bias_(bias),
      weights_(std::move(weights)),
      params_(std::move(params)),
      cost_options_(std::move(cost_options)),
      workload_(std::move(workload)) {}

namespace {

// A minimal parser for the flat weight object {"name": number, ...}.
// Deliberately strict: no nesting, arrays, strings, booleans, or nulls.
class FlatJsonParser {
 public:
  explicit FlatJsonParser(std::string_view text) : text_(text) {}

  Result<std::map<std::string, double>> Parse() {
    std::map<std::string, double> out;
    SkipSpace();
    if (!Consume('{')) return Error("expected '{'");
    SkipSpace();
    if (Consume('}')) {
      SkipSpace();
      return AtEnd() ? Result<std::map<std::string, double>>(std::move(out))
                     : Error("trailing characters after '}'");
    }
    while (true) {
      SkipSpace();
      std::string key;
      if (!ParseString(&key)) return Error("expected a quoted key");
      SkipSpace();
      if (!Consume(':')) return Error("expected ':'");
      SkipSpace();
      double value = 0;
      if (!ParseNumber(&value)) {
        return Error(StrFormat("expected a number for key \"%s\"",
                               key.c_str()));
      }
      if (!out.emplace(std::move(key), value).second) {
        return Error("duplicate key");
      }
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Error("expected ',' or '}'");
    }
    SkipSpace();
    if (!AtEnd()) return Error("trailing characters after '}'");
    return out;
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  void SkipSpace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    if (AtEnd() || Peek() != c) return false;
    ++pos_;
    return true;
  }
  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (!AtEnd() && Peek() != '"') {
      if (Peek() == '\\') return false;  // Escapes never appear in keys.
      out->push_back(Peek());
      ++pos_;
    }
    return Consume('"');
  }
  bool ParseNumber(double* out) {
    const size_t start = pos_;
    while (!AtEnd() &&
           (std::isdigit(static_cast<unsigned char>(Peek())) || Peek() == '-' ||
            Peek() == '+' || Peek() == '.' || Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    *out = std::strtod(token.c_str(), &end);
    return end == token.c_str() + token.size();
  }
  Status Error(const std::string& message) const {
    return Status::ParseError(
        StrFormat("ranker weights: %s at offset %zu", message.c_str(), pos_));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<LinearRanker> LinearRanker::FromJson(std::string_view json) {
  EVE_ASSIGN_OR_RETURN(auto raw, FlatJsonParser(json).Parse());
  double bias = 0;
  if (auto it = raw.find("bias"); it != raw.end()) {
    bias = it->second;
    raw.erase(it);
  }
  const std::vector<std::string>& names = CandidateFeatures::Names();
  for (const auto& [key, value] : raw) {
    (void)value;
    if (std::find(names.begin(), names.end(), key) == names.end()) {
      return Status::InvalidArgument(
          StrFormat("ranker weights: unknown feature \"%s\"", key.c_str()));
    }
  }
  return LinearRanker(bias, std::move(raw), QcParameters{}, CostModelOptions{},
                      WorkloadOptions{});
}

Result<LinearRanker> LinearRanker::FromJsonFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound(
        StrFormat("ranker weights: cannot read %s", path.c_str()));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return FromJson(buffer.str());
}

Result<std::vector<double>> LinearRanker::Score(
    const ViewDefinition& original,
    const std::vector<RewriteCandidate>& candidates,
    const MetaKnowledgeBase& mkb) const {
  std::vector<double> scores;
  scores.reserve(candidates.size());
  for (const RewriteCandidate& c : candidates) {
    EVE_ASSIGN_OR_RETURN(
        const CandidateFeatures features,
        ExtractCandidateFeatures(original, c, mkb, params_, cost_options_,
                                 workload_));
    double score = bias_;
    const std::vector<double> values = features.ToVector();
    const std::vector<std::string>& names = CandidateFeatures::Names();
    for (size_t i = 0; i < names.size(); ++i) {
      if (auto it = weights_.find(names[i]); it != weights_.end()) {
        score += it->second * values[i];
      }
    }
    scores.push_back(score);
  }
  return scores;
}

}  // namespace eve
