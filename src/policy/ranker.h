// Pluggable candidate ranking for the selective rewriting policy.
//
// The EVE system adopts the top-ranked legal rewriting after every schema
// change.  By default that ranking is the paper's QC-Model (Eq. 26);
// CandidateRanker makes the adoption choice a plugin point so a learned
// model can reorder candidates without touching the enumeration or the
// reported QC ranking.  ExtractCandidateFeatures produces the feature
// vector both rankers (and offline training) consume: the QC quality and
// cost components, the candidate's delta-op shape, and the PC-hop depth of
// the constraint edges that license its substitutions.
//
// All scoring is delta-native (candidate.View() overlays; no
// materialization) and per-candidate deterministic: a candidate's score
// depends only on (original, candidate, mkb, weights), never on the order
// or number of sibling candidates, so ranker adoption is reproducible
// across thread counts (tested).

#ifndef EVE_POLICY_RANKER_H_
#define EVE_POLICY_RANKER_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "esql/ast.h"
#include "misd/mkb.h"
#include "qc/cost_model.h"
#include "qc/parameters.h"
#include "qc/workload.h"
#include "synch/partial.h"

namespace eve {

/// The feature vector of one rewriting candidate.  Field names double as
/// the JSON weight keys of LinearRanker (see FeatureNames()).
struct CandidateFeatures {
  // Quality components (paper §5, estimated delta-natively).
  double dd = 0;           ///< Total degree of divergence (Eq. 20).
  double dd_attr = 0;      ///< Interface divergence.
  double dd_ext = 0;       ///< Extent divergence.
  double q_rewriting = 0;  ///< Interface quality Q_Vi (Eq. 12).
  double exact = 1;        ///< 1 when every extent estimate was exact.
  // Cost components (paper §6 over the configured workload).
  double weighted_cost = 0;   ///< Eq. 24 over the workload, unnormalized.
  double estimated_size = 0;  ///< Estimated extent size (tuples).
  // Delta-op shape of the candidate.
  double ops = 0;           ///< Total RewriteDelta ops.
  double drops = 0;         ///< Drop ops (select / condition / from).
  double replacements = 0;  ///< Relation substitutions performed.
  double added_conditions = 0;
  // PC derivation depth of the licensing edges.
  double pc_hops_max = 0;
  double pc_hops_total = 0;
  // Result shape.
  double select_size = 0;
  double from_size = 0;
  double where_size = 0;

  /// The canonical feature order; names match the struct fields.
  static const std::vector<std::string>& Names();

  /// Values in Names() order.
  std::vector<double> ToVector() const;

  std::string ToString() const;
};

/// Extracts the feature vector of `candidate` against `original`.
/// Delta-native: quality, cost, and size all run over candidate.View().
Result<CandidateFeatures> ExtractCandidateFeatures(
    const ViewDefinition& original, const RewriteCandidate& candidate,
    const MetaKnowledgeBase& mkb, const QcParameters& params,
    const CostModelOptions& cost_options, const WorkloadOptions& workload);

/// The adoption-ranking plugin interface.  Implementations must be
/// thread-compatible (Score is const and may run concurrently for
/// different views) and per-candidate deterministic.
class CandidateRanker {
 public:
  virtual ~CandidateRanker() = default;

  /// For reports and the policy curve.
  virtual std::string_view name() const = 0;

  /// One score per candidate, higher is better.  Adoption picks the
  /// highest score; ties break toward the lower index (stable argmax).
  virtual Result<std::vector<double>> Score(
      const ViewDefinition& original,
      const std::vector<RewriteCandidate>& candidates,
      const MetaKnowledgeBase& mkb) const = 0;
};

/// The default ranker: the paper's QC-Model (Eq. 25 cost normalization
/// across the candidate set, then Eq. 26).  Adopting its argmax is
/// equivalent to adopting the head of QcModel::RankCandidates.
class QcRanker : public CandidateRanker {
 public:
  QcRanker(QcParameters params, CostModelOptions cost_options,
           WorkloadOptions workload);

  std::string_view name() const override { return "qc"; }
  Result<std::vector<double>> Score(
      const ViewDefinition& original,
      const std::vector<RewriteCandidate>& candidates,
      const MetaKnowledgeBase& mkb) const override;

 private:
  QcParameters params_;
  CostModelOptions cost_options_;
  WorkloadOptions workload_;
};

/// A learned linear ranker: score = bias + sum_i weight[f_i] * feature_i,
/// with weights loaded from a flat JSON object keyed by feature name
/// (CandidateFeatures::Names(), plus "bias").  Unknown keys are rejected;
/// missing keys default to 0.  Feature values are used raw (training is
/// expected to bake any scaling into the weights).
class LinearRanker : public CandidateRanker {
 public:
  /// Parses `{"bias": 0.1, "dd": -1.0, ...}`.  Flat object of numbers
  /// only; rejects nesting, arrays, strings, and unknown feature names.
  static Result<LinearRanker> FromJson(std::string_view json);

  /// Reads and parses a weight file.
  static Result<LinearRanker> FromJsonFile(const std::string& path);

  LinearRanker(double bias, std::map<std::string, double> weights,
               QcParameters params, CostModelOptions cost_options,
               WorkloadOptions workload);

  std::string_view name() const override { return "linear"; }
  Result<std::vector<double>> Score(
      const ViewDefinition& original,
      const std::vector<RewriteCandidate>& candidates,
      const MetaKnowledgeBase& mkb) const override;

  double bias() const { return bias_; }
  const std::map<std::string, double>& weights() const { return weights_; }

 private:
  double bias_ = 0;
  std::map<std::string, double> weights_;
  QcParameters params_;
  CostModelOptions cost_options_;
  WorkloadOptions workload_;
};

}  // namespace eve

#endif  // EVE_POLICY_RANKER_H_
