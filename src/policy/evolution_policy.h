// EvolutionPolicy: the one versioned configuration surface of the EVE
// pipeline (ROADMAP item 1's configuration half).
//
// Before this struct existed, tuning an EVE deployment meant touching four
// disconnected knob sets: SynchronizerOptions (enumeration), QcParameters
// (ranking weights), MetaKnowledgeBase::set_selective_invalidation (memo
// retention), and ServingOptions (admission / deadlines).  EvolutionPolicy
// consolidates them behind one struct with
//   * a fluent builder (EvolutionPolicyBuilder),
//   * Validate() with actionable errors,
//   * three presets: Exhaustive() (the seed's always-enumerate behavior,
//     byte-identical and tested), Balanced() (selective skip/cap with the
//     seed's enumeration breadth), LatencyBound() (tightened caps plus
//     serving deadlines),
//   * projections onto the legacy entry points (ToEveOptions,
//     ToServingOptions, ApplyTo), which remain supported as thin aliases
//     so existing call sites compile unchanged.

#ifndef EVE_POLICY_EVOLUTION_POLICY_H_
#define EVE_POLICY_EVOLUTION_POLICY_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "eve/eve_system.h"
#include "policy/policy.h"
#include "policy/ranker.h"
#include "serve/frontend.h"

namespace eve {

/// The unified evolution-pipeline configuration.  Aggregates every knob of
/// enumeration, decision policy, ranking, maintenance, and serving; the
/// projection methods produce the per-component option structs.
struct EvolutionPolicy {
  /// Schema version of this struct (bump on incompatible change; Validate
  /// rejects versions this build does not understand).
  int version = 1;
  /// Preset name ("exhaustive", "balanced", "latency_bound", or "custom").
  std::string name = "custom";

  PolicyConfig policy;
  SynchronizerOptions synchronizer;
  QcParameters qc;
  CostModelOptions cost;
  WorkloadOptions workload;
  MaintainerOptions maintainer;
  ServingOptions serving;

  bool materialize = true;
  bool adopt_first_legal = false;
  int synchronize_threads = 0;
  /// MKB memo retention across mutations (delta-aware invalidation).
  bool selective_invalidation = true;
  /// Adoption ranker plugin; null adopts the QC-Model top pick.
  std::shared_ptr<const CandidateRanker> ranker;

  /// Checks cross-field consistency: version understood, max_rewritings
  /// positive, max_pc_hops >= 1, QC weights valid, cap_max_rewritings
  /// positive, ranker only with delta enumeration.
  Status Validate() const;

  /// Projection onto EveOptions (for EveSystem construction).
  EveOptions ToEveOptions() const;
  /// Projection onto ServingOptions (for ServingFrontEnd construction).
  ServingOptions ToServingOptions() const;
  /// Applies this policy to a live system: replaces its options and sets
  /// the MKB invalidation mode.  Validates first.
  Status ApplyTo(EveSystem& system) const;

  // --- Presets -------------------------------------------------------------

  /// The seed behavior: decision layer bypassed, every pair enumerates with
  /// the default options.  Byte-identical reports (tested).
  static EvolutionPolicy Exhaustive();
  /// Skip/cap pre-checks on, enumeration breadth unchanged, capped pairs
  /// tightened to 32 rewritings.
  static EvolutionPolicy Balanced();
  /// Balanced plus aggressively tightened enumeration (2 PC hops, 32-result
  /// cap, CVS pairs off, 8-result cap on capped pairs) and serving
  /// deadlines for deadline-bound deployments.
  static EvolutionPolicy LatencyBound();
};

/// Looks up a preset by name ("exhaustive", "balanced", "latency_bound";
/// case-insensitive).  Used by the --policy / EVE_POLICY driver flag.
Result<EvolutionPolicy> PolicyPresetByName(std::string_view name);

/// Fluent construction:
///
///   EVE_ASSIGN_OR_RETURN(EvolutionPolicy p,
///       EvolutionPolicyBuilder(EvolutionPolicy::Balanced())
///           .MaxRewritings(64)
///           .Strategies(StrategySet::All())
///           .RankerWeightsFile("weights.json")
///           .Build());
///
/// Build() validates; every setter returns *this for chaining.
class EvolutionPolicyBuilder {
 public:
  EvolutionPolicyBuilder() = default;
  explicit EvolutionPolicyBuilder(EvolutionPolicy base)
      : policy_(std::move(base)) {}

  EvolutionPolicyBuilder& Mode(PolicyMode mode) {
    policy_.policy.mode = mode;
    return *this;
  }
  EvolutionPolicyBuilder& CapMaxRewritings(int cap) {
    policy_.policy.cap_max_rewritings = cap;
    return *this;
  }
  EvolutionPolicyBuilder& MaxRewritings(int max) {
    policy_.synchronizer.max_rewritings = max;
    return *this;
  }
  EvolutionPolicyBuilder& MaxPcHops(int hops) {
    policy_.synchronizer.max_pc_hops = hops;
    return *this;
  }
  EvolutionPolicyBuilder& Strategies(StrategySet strategies) {
    policy_.synchronizer.strategies = strategies;
    return *this;
  }
  EvolutionPolicyBuilder& Qc(QcParameters params) {
    policy_.qc = params;
    return *this;
  }
  EvolutionPolicyBuilder& Workload(WorkloadOptions workload) {
    policy_.workload = workload;
    return *this;
  }
  EvolutionPolicyBuilder& Serving(ServingOptions serving) {
    policy_.serving = serving;
    return *this;
  }
  EvolutionPolicyBuilder& Materialize(bool on) {
    policy_.materialize = on;
    return *this;
  }
  EvolutionPolicyBuilder& AdoptFirstLegal(bool on) {
    policy_.adopt_first_legal = on;
    return *this;
  }
  EvolutionPolicyBuilder& SynchronizeThreads(int threads) {
    policy_.synchronize_threads = threads;
    return *this;
  }
  EvolutionPolicyBuilder& SelectiveInvalidation(bool on) {
    policy_.selective_invalidation = on;
    return *this;
  }
  EvolutionPolicyBuilder& Ranker(std::shared_ptr<const CandidateRanker> r) {
    policy_.ranker = std::move(r);
    return *this;
  }
  /// Loads a LinearRanker from a JSON weight file (policy/ranker.h).  A
  /// load failure surfaces from Build().
  EvolutionPolicyBuilder& RankerWeightsFile(std::string path) {
    weights_path_ = std::move(path);
    return *this;
  }
  EvolutionPolicyBuilder& Name(std::string name) {
    policy_.name = std::move(name);
    return *this;
  }

  /// Finalizes: loads the weight file (if any) and validates.  Moves the
  /// policy out; the builder is spent afterwards.
  Result<EvolutionPolicy> Build();

 private:
  EvolutionPolicy policy_;
  std::string weights_path_;
};

}  // namespace eve

#endif  // EVE_POLICY_EVOLUTION_POLICY_H_
