#include "policy/policy.h"

#include <algorithm>
#include <set>
#include <variant>
#include <vector>

#include "common/str_util.h"
#include "misd/overlap_estimator.h"

namespace eve {

std::string_view PolicyModeToString(PolicyMode mode) {
  switch (mode) {
    case PolicyMode::kExhaustive:
      return "exhaustive";
    case PolicyMode::kBalanced:
      return "balanced";
    case PolicyMode::kLatencyBound:
      return "latency_bound";
  }
  return "?";
}

std::string_view PolicyActionToString(PolicyAction action) {
  switch (action) {
    case PolicyAction::kFull:
      return "full";
    case PolicyAction::kCap:
      return "cap";
    case PolicyAction::kSkipUnaffected:
      return "skip-unaffected";
    case PolicyAction::kSkipDead:
      return "skip-dead";
  }
  return "?";
}

PolicyStats& PolicyStats::operator+=(const PolicyStats& other) {
  decisions += other.decisions;
  full += other.full;
  capped += other.capped;
  skipped_unaffected += other.skipped_unaffected;
  skipped_dead += other.skipped_dead;
  candidates_considered += other.candidates_considered;
  candidates_ranked += other.candidates_ranked;
  return *this;
}

std::string PolicyStats::ToString() const {
  return StrFormat(
      "policy: %lld decisions (%lld full, %lld capped, %lld skip-unaffected, "
      "%lld skip-dead), %lld candidates considered, %lld ranked",
      static_cast<long long>(decisions), static_cast<long long>(full),
      static_cast<long long>(capped),
      static_cast<long long>(skipped_unaffected),
      static_cast<long long>(skipped_dead),
      static_cast<long long>(candidates_considered),
      static_cast<long long>(candidates_ranked));
}

namespace {

// References of one FROM item within a view definition, mirroring the
// synchronizer's CollectReferences but over the plain AST (the decision
// runs before any overlay exists).
struct ItemRefs {
  std::set<std::string> attributes;
  // Blockers of the drop strategies (monotone across fold rounds; see the
  // header comment).
  bool any_indispensable_select = false;
  bool any_indispensable_where = false;
  bool all_select_replaceable = true;
  bool all_where_substitutable = true;  ///< replaceable or dispensable.
  int select_refs = 0;
};

ItemRefs CollectItemRefs(const ViewDefinition& view,
                         const std::string& from_name) {
  ItemRefs out;
  for (const SelectItem& s : view.select_items) {
    if (s.source.relation != from_name) continue;
    out.attributes.insert(s.source.attribute);
    ++out.select_refs;
    if (!s.dispensable) out.any_indispensable_select = true;
    if (!s.replaceable) out.all_select_replaceable = false;
  }
  for (const ConditionItem& c : view.where) {
    if (!c.clause.References(from_name)) continue;
    for (const RelAttr& a : c.clause.Attributes()) {
      if (a.relation == from_name) out.attributes.insert(a.attribute);
    }
    if (!c.dispensable) out.any_indispensable_where = true;
    if (!c.replaceable && !c.dispensable) out.all_where_substitutable = false;
  }
  return out;
}

// References to one specific attribute of a FROM item (delete-attribute).
struct AttrRefs {
  int select_refs = 0;
  bool referenced = false;
  bool any_indispensable = false;
};

AttrRefs CollectAttrRefs(const ViewDefinition& view,
                         const std::string& from_name,
                         const std::string& attr) {
  AttrRefs out;
  const RelAttr target{from_name, attr};
  for (const SelectItem& s : view.select_items) {
    if (s.source != target) continue;
    out.referenced = true;
    ++out.select_refs;
    if (!s.dispensable) out.any_indispensable = true;
  }
  for (const ConditionItem& c : view.where) {
    bool touches = false;
    for (const RelAttr& a : c.clause.Attributes()) {
      if (a == target) touches = true;
    }
    if (!touches) continue;
    out.referenced = true;
    if (!c.dispensable) out.any_indispensable = true;
  }
  return out;
}

}  // namespace

PolicyEngine::PolicyEngine(const MetaKnowledgeBase& mkb,
                           const PolicyConfig& config,
                           const SynchronizerOptions& base)
    : mkb_(mkb), config_(config), base_(base) {}

PolicyDecision PolicyEngine::Decide(const ViewDefinition& view,
                                    const SchemaChange& change) const {
  PolicyDecision decision;
  decision.options = base_;
  if (config_.mode == PolicyMode::kExhaustive) return decision;

  // Additions never invalidate existing views (the synchronizer returns
  // unaffected before looking at the view at all).
  if (std::holds_alternative<AddAttribute>(change) ||
      std::holds_alternative<AddRelation>(change)) {
    decision.action = PolicyAction::kSkipUnaffected;
    decision.reason = "addition";
    return decision;
  }

  const RelationId& changed = ChangedRelation(change);
  std::vector<const FromItem*> affected;
  for (const FromItem& f : view.from_items) {
    if (f.relation != changed.relation) continue;
    if (!f.site.empty() && f.site != changed.site) continue;
    affected.push_back(&f);
  }
  if (affected.empty()) {
    decision.action = PolicyAction::kSkipUnaffected;
    decision.reason = "no affected FROM item";
    return decision;
  }

  // Renames always synchronize transparently via a single candidate; the
  // only savings is the unreferenced-attribute case.
  if (const auto* ra = std::get_if<RenameAttribute>(&change)) {
    bool uses = false;
    for (const FromItem* f : affected) {
      uses = uses || CollectAttrRefs(view, f->name(), ra->from).referenced;
    }
    if (!uses) {
      decision.action = PolicyAction::kSkipUnaffected;
      decision.reason = "renamed attribute unreferenced";
    }
    return decision;
  }
  if (std::holds_alternative<RenameRelation>(change)) {
    return decision;  // kFull; a rename is one cheap candidate.
  }

  const auto* da = std::get_if<DeleteAttribute>(&change);

  // The memoized transitive-closure reachability check, shared by the
  // skip-dead and cap pre-checks.  A FROM item with an unresolvable name
  // behaves like one with an empty closure: every discovery strategy bails
  // on it (ResolveFromId fails before any edge is read).
  auto closure_of = [&](const FromItem& f) -> const std::vector<PcEdge>* {
    RelationId id;
    if (!f.site.empty()) {
      id = RelationId{f.site, f.relation};
    } else {
      auto resolved = mkb_.ResolveName(f.relation);
      if (!resolved.ok()) return nullptr;
      id = *resolved;
    }
    return &mkb_.PcEdgesFromTransitive(id, base_.max_pc_hops);
  };
  auto usable_closure_empty = [&](const FromItem& f) {
    const std::vector<PcEdge>* edges = closure_of(f);
    if (edges == nullptr || edges->empty()) return true;
    return std::all_of(edges->begin(), edges->end(), [&](const PcEdge& e) {
      return e.target == changed;
    });
  };

  if (da != nullptr) {
    // delete-attribute: affected iff some item references the attribute.
    bool referenced = false;
    bool provably_dead = false;
    for (const FromItem* f : affected) {
      const AttrRefs refs = CollectAttrRefs(view, f->name(), da->attribute);
      if (!refs.referenced) continue;
      referenced = true;
      // Drop blocked: an indispensable reference, or dropping the refs
      // would empty the SELECT list.  Both blockers are monotone.  With an
      // empty closure neither join-in nor replacement nor CVS can recover
      // the attribute, so the fold round for this item kills every partial.
      const bool drop_blocked =
          refs.any_indispensable ||
          refs.select_refs >= static_cast<int>(view.select_items.size());
      if (drop_blocked && usable_closure_empty(*f)) provably_dead = true;
    }
    if (!referenced) {
      decision.action = PolicyAction::kSkipUnaffected;
      decision.reason = "deleted attribute unreferenced";
      return decision;
    }
    if (provably_dead) {
      decision.action = PolicyAction::kSkipDead;
      decision.reason = "indispensable reference with empty PC closure";
      return decision;
    }
  } else {
    // delete-relation.
    bool provably_dead = false;
    for (const FromItem* f : affected) {
      const ItemRefs refs = CollectItemRefs(view, f->name());
      const bool drop_blocked =
          !f->dispensable || refs.any_indispensable_select ||
          refs.any_indispensable_where ||
          refs.select_refs >= static_cast<int>(view.select_items.size()) ||
          view.from_items.size() <= 1;
      // Join-in never applies to relation deletion; replace-relation and
      // CVS pairs both require a replaceable item and a non-empty closure.
      if (drop_blocked && (!f->replaceable || usable_closure_empty(*f))) {
        provably_dead = true;
      }
    }
    if (provably_dead) {
      decision.action = PolicyAction::kSkipDead;
      decision.reason = "no strategy applicable (drop blocked, closure empty)";
      return decision;
    }
  }

  // Cap pre-check: when EVERY affected item is known to admit an exact
  // equivalent whole-relation replacement covering all referenced
  // attributes, the quadratic CVS pair fan-out is dominated (a two-way
  // join can at best match the single equivalent's divergence at a higher
  // maintenance cost) and the enumeration cap can tighten.
  if (!base_.strategies.Has(Strategy::kCvsPair)) return decision;
  const bool cvs_dominated = std::all_of(
      affected.begin(), affected.end(), [&](const FromItem* f) {
        if (!f->replaceable) return false;
        const ItemRefs refs = CollectItemRefs(view, f->name());
        if (!refs.all_select_replaceable || !refs.all_where_substitutable) {
          return false;
        }
        const std::vector<PcEdge>* edges = closure_of(*f);
        if (edges == nullptr) return false;
        // Attribute-coverage bitset over the referenced attributes (the
        // same idiom as the synchronizer's CVS precheck); wider views fall
        // back to the direct set test.
        std::vector<const std::string*> attrs;
        attrs.reserve(refs.attributes.size());
        for (const std::string& a : refs.attributes) attrs.push_back(&a);
        const bool bitset = attrs.size() <= 64;
        const uint64_t full_mask =
            attrs.size() >= 64 ? ~uint64_t{0}
                               : ((uint64_t{1} << attrs.size()) - 1);
        for (const PcEdge& edge : *edges) {
          if (edge.type != PcRelationType::kEquivalent) continue;
          if (edge.target == changed) continue;
          bool covers;
          if (bitset) {
            uint64_t bits = 0;
            uint64_t bit = 1;
            for (const std::string* a : attrs) {
              if (edge.attribute_map.count(*a) > 0) bits |= bit;
              bit <<= 1;
            }
            covers = bits == full_mask;
          } else {
            covers = std::all_of(attrs.begin(), attrs.end(),
                                 [&](const std::string* a) {
                                   return edge.attribute_map.count(*a) > 0;
                                 });
          }
          if (!covers) continue;
          if (config_.cap_requires_exact_overlap) {
            const auto overlap = EstimateIntersection(mkb_, edge);
            if (!overlap.ok() || !overlap->exact) continue;
          }
          return true;
        }
        return false;
      });
  if (cvs_dominated) {
    decision.action = PolicyAction::kCap;
    decision.reason = "exact equivalent covering replacement exists";
    decision.options.strategies =
        base_.strategies.Without(Strategy::kCvsPair);
    decision.options.max_rewritings =
        std::min(base_.max_rewritings, config_.cap_max_rewritings);
  }
  return decision;
}

}  // namespace eve
