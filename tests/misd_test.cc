// MKB tests: capability registration, JC/PC constraint management, edge
// normalization, transitive derivation, and MKB evolution under schema
// changes (constraint garbage collection, renames).

#include <gtest/gtest.h>

#include "misd/mkb.h"

namespace eve {
namespace {

Schema IntSchema(const std::vector<std::string>& names) {
  std::vector<Attribute> attrs;
  for (const std::string& n : names) {
    attrs.push_back(Attribute::Make(n, DataType::kInt64, 25));
  }
  return Schema(std::move(attrs));
}

class MkbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(mkb_.RegisterRelationWithStats(RelationId{"IS1", "R"},
                                               IntSchema({"A", "B"}), 100, 0.5)
                    .ok());
    ASSERT_TRUE(mkb_.RegisterRelationWithStats(RelationId{"IS2", "S"},
                                               IntSchema({"A", "C"}), 200)
                    .ok());
  }
  MetaKnowledgeBase mkb_;
};

TEST_F(MkbTest, RegistrationAndLookup) {
  EXPECT_TRUE(mkb_.HasRelation(RelationId{"IS1", "R"}));
  EXPECT_FALSE(mkb_.HasRelation(RelationId{"IS1", "S"}));
  EXPECT_FALSE(
      mkb_.RegisterRelation(RelationId{"IS1", "R"}, IntSchema({"X"})).ok());
  const auto schema = mkb_.GetSchema(RelationId{"IS2", "S"});
  ASSERT_TRUE(schema.ok());
  EXPECT_TRUE(schema->Contains("C"));
  EXPECT_EQ(mkb_.Relations().size(), 2u);
  EXPECT_EQ(mkb_.ResolveName("S").value(), (RelationId{"IS2", "S"}));
  EXPECT_FALSE(mkb_.ResolveName("Z").ok());
}

TEST_F(MkbTest, ResolveNameDetectsAmbiguity) {
  ASSERT_TRUE(
      mkb_.RegisterRelation(RelationId{"IS3", "R"}, IntSchema({"A"})).ok());
  EXPECT_EQ(mkb_.ResolveName("R").status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(MkbTest, StatsStore) {
  const auto stats = mkb_.stats().Get(RelationId{"IS1", "R"});
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->cardinality, 100);
  EXPECT_EQ(stats->tuple_bytes, 50);
  EXPECT_DOUBLE_EQ(stats->local_selectivity, 0.5);
  EXPECT_FALSE(mkb_.stats().Get(RelationId{"ISx", "Q"}).ok());
}

TEST_F(MkbTest, JoinConstraintValidation) {
  JoinConstraint jc;
  jc.left = RelationId{"IS1", "R"};
  jc.right = RelationId{"IS2", "S"};
  EXPECT_FALSE(mkb_.AddJoinConstraint(jc).ok());  // Empty condition.
  jc.condition.Add(PrimitiveClause::AttrAttr(RelAttr{"R", "A"}, CompOp::kEqual,
                                             RelAttr{"S", "A"}));
  EXPECT_TRUE(mkb_.AddJoinConstraint(jc).ok());
  EXPECT_EQ(mkb_.FindJoinConstraints(RelationId{"IS2", "S"},
                                     RelationId{"IS1", "R"})
                .size(),
            1u);
  // Unregistered endpoint rejected.
  JoinConstraint bad = jc;
  bad.right = RelationId{"IS9", "Q"};
  EXPECT_FALSE(mkb_.AddJoinConstraint(bad).ok());
}

TEST_F(MkbTest, PcConstraintValidationAndEdges) {
  // Arity mismatch rejected.
  PcConstraint bad;
  bad.left = PcSide{RelationId{"IS1", "R"}, {"A", "B"}, {}, 1.0};
  bad.right = PcSide{RelationId{"IS2", "S"}, {"A"}, {}, 1.0};
  EXPECT_FALSE(mkb_.AddPcConstraint(bad).ok());
  // Unknown projected attribute rejected.
  PcConstraint unknown = MakeProjectionPc(RelationId{"IS1", "R"},
                                          RelationId{"IS2", "S"}, {"Z"},
                                          PcRelationType::kSubset);
  EXPECT_FALSE(mkb_.AddPcConstraint(unknown).ok());

  ASSERT_TRUE(mkb_.AddPcConstraint(MakeProjectionPc(RelationId{"IS1", "R"},
                                                    RelationId{"IS2", "S"},
                                                    {"A"},
                                                    PcRelationType::kSubset))
                  .ok());
  const auto from_r = mkb_.PcEdgesFrom(RelationId{"IS1", "R"});
  ASSERT_EQ(from_r.size(), 1u);
  EXPECT_EQ(from_r[0].target, (RelationId{"IS2", "S"}));
  EXPECT_EQ(from_r[0].type, PcRelationType::kSubset);

  // The flipped orientation is derived automatically.
  const auto from_s = mkb_.PcEdgesFrom(RelationId{"IS2", "S"});
  ASSERT_EQ(from_s.size(), 1u);
  EXPECT_EQ(from_s[0].target, (RelationId{"IS1", "R"}));
  EXPECT_EQ(from_s[0].type, PcRelationType::kSuperset);
}

TEST_F(MkbTest, TransitiveEdgesComposeTypesAndMaps) {
  ASSERT_TRUE(mkb_.RegisterRelationWithStats(RelationId{"IS3", "T"},
                                             IntSchema({"X"}), 400)
                  .ok());
  // R.A subset S.A ; S.A equivalent T.X  =>  R.A subset T.X.
  ASSERT_TRUE(mkb_.AddPcConstraint(MakeProjectionPc(RelationId{"IS1", "R"},
                                                    RelationId{"IS2", "S"},
                                                    {"A"},
                                                    PcRelationType::kSubset))
                  .ok());
  PcConstraint st;
  st.left = PcSide{RelationId{"IS2", "S"}, {"A"}, {}, 1.0};
  st.right = PcSide{RelationId{"IS3", "T"}, {"X"}, {}, 1.0};
  st.type = PcRelationType::kEquivalent;
  ASSERT_TRUE(mkb_.AddPcConstraint(st).ok());

  const auto edges = mkb_.PcEdgesFromTransitive(RelationId{"IS1", "R"}, 3);
  bool found = false;
  for (const PcEdge& e : edges) {
    if (e.target == (RelationId{"IS3", "T"})) {
      found = true;
      EXPECT_EQ(e.type, PcRelationType::kSubset);
      ASSERT_TRUE(e.attribute_map.count("A"));
      EXPECT_EQ(e.attribute_map.at("A"), "X");
    }
  }
  EXPECT_TRUE(found);
  // Depth 1 excludes the derived edge.
  const auto direct = mkb_.PcEdgesFromTransitive(RelationId{"IS1", "R"}, 1);
  for (const PcEdge& e : direct) {
    EXPECT_NE(e.target, (RelationId{"IS3", "T"}));
  }
}

TEST_F(MkbTest, TransitiveCompositionRejectsMixedDirections) {
  ASSERT_TRUE(mkb_.RegisterRelationWithStats(RelationId{"IS3", "T"},
                                             IntSchema({"A"}), 400)
                  .ok());
  // R subset S, S superset T: no containment conclusion about R vs T.
  ASSERT_TRUE(mkb_.AddPcConstraint(MakeProjectionPc(RelationId{"IS1", "R"},
                                                    RelationId{"IS2", "S"},
                                                    {"A"},
                                                    PcRelationType::kSubset))
                  .ok());
  ASSERT_TRUE(mkb_.AddPcConstraint(MakeProjectionPc(RelationId{"IS2", "S"},
                                                    RelationId{"IS3", "T"},
                                                    {"A"},
                                                    PcRelationType::kSuperset))
                  .ok());
  for (const PcEdge& e : mkb_.PcEdgesFromTransitive(RelationId{"IS1", "R"}, 4)) {
    EXPECT_NE(e.target, (RelationId{"IS3", "T"}));
  }
}

TEST_F(MkbTest, BridgingInstallsConstraintsAroundDeletedCapability) {
  // R subset S and R subset T; deleting R.A (or R) installs an
  // incomparable bridge between S.A and T.A, so the replacement knowledge
  // survives (the Experiment-1 life-span behavior).
  ASSERT_TRUE(mkb_.RegisterRelationWithStats(RelationId{"IS3", "T"},
                                             IntSchema({"A", "D"}), 400)
                  .ok());
  ASSERT_TRUE(mkb_.AddPcConstraint(MakeProjectionPc(RelationId{"IS1", "R"},
                                                    RelationId{"IS2", "S"},
                                                    {"A"},
                                                    PcRelationType::kSubset))
                  .ok());
  ASSERT_TRUE(mkb_.AddPcConstraint(MakeProjectionPc(RelationId{"IS1", "R"},
                                                    RelationId{"IS3", "T"},
                                                    {"A"},
                                                    PcRelationType::kSubset))
                  .ok());
  const auto dropped = mkb_.RemoveAttribute(RelationId{"IS1", "R"}, "A");
  ASSERT_TRUE(dropped.ok());
  EXPECT_EQ(dropped.value(), 2);

  bool bridged = false;
  for (const PcEdge& e : mkb_.PcEdgesFrom(RelationId{"IS2", "S"})) {
    if (e.target == (RelationId{"IS3", "T"})) {
      bridged = true;
      EXPECT_EQ(e.type, PcRelationType::kIncomparable);
      ASSERT_TRUE(e.attribute_map.count("A"));
      EXPECT_EQ(e.attribute_map.at("A"), "A");
    }
  }
  EXPECT_TRUE(bridged);
}

TEST_F(MkbTest, BridgingPreservesSoundDirections) {
  // S superset R (i.e. R registered as subset of S) and R equivalent T:
  // bridging through R yields S superset T -- a sound containment.
  ASSERT_TRUE(mkb_.RegisterRelationWithStats(RelationId{"IS3", "T"},
                                             IntSchema({"A"}), 400)
                  .ok());
  ASSERT_TRUE(mkb_.AddPcConstraint(MakeProjectionPc(RelationId{"IS1", "R"},
                                                    RelationId{"IS2", "S"},
                                                    {"A"},
                                                    PcRelationType::kSubset))
                  .ok());
  ASSERT_TRUE(mkb_.AddPcConstraint(MakeProjectionPc(RelationId{"IS1", "R"},
                                                    RelationId{"IS3", "T"},
                                                    {"A"},
                                                    PcRelationType::kEquivalent))
                  .ok());
  ASSERT_TRUE(mkb_.UnregisterRelation(RelationId{"IS1", "R"}).ok());
  bool found = false;
  for (const PcEdge& e : mkb_.PcEdgesFrom(RelationId{"IS2", "S"})) {
    if (e.target == (RelationId{"IS3", "T"})) {
      found = true;
      EXPECT_EQ(e.type, PcRelationType::kSuperset);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(MkbTest, UnregisterDropsTouchingConstraints) {
  ASSERT_TRUE(mkb_.AddPcConstraint(MakeProjectionPc(RelationId{"IS1", "R"},
                                                    RelationId{"IS2", "S"},
                                                    {"A"},
                                                    PcRelationType::kSubset))
                  .ok());
  JoinConstraint jc;
  jc.left = RelationId{"IS1", "R"};
  jc.right = RelationId{"IS2", "S"};
  jc.condition.Add(PrimitiveClause::AttrAttr(RelAttr{"R", "A"}, CompOp::kEqual,
                                             RelAttr{"S", "A"}));
  ASSERT_TRUE(mkb_.AddJoinConstraint(jc).ok());

  const auto dropped = mkb_.UnregisterRelation(RelationId{"IS2", "S"});
  ASSERT_TRUE(dropped.ok());
  EXPECT_EQ(dropped.value(), 2);
  EXPECT_TRUE(mkb_.pc_constraints().empty());
  EXPECT_TRUE(mkb_.join_constraints().empty());
  EXPECT_FALSE(mkb_.stats().Has(RelationId{"IS2", "S"}));
}

TEST_F(MkbTest, RemoveAttributeDropsReferencingConstraints) {
  ASSERT_TRUE(mkb_.AddPcConstraint(MakeProjectionPc(RelationId{"IS1", "R"},
                                                    RelationId{"IS2", "S"},
                                                    {"A"},
                                                    PcRelationType::kSubset))
                  .ok());
  // Removing S.C (not referenced by the PC) keeps the constraint.
  auto dropped = mkb_.RemoveAttribute(RelationId{"IS2", "S"}, "C");
  ASSERT_TRUE(dropped.ok());
  EXPECT_EQ(dropped.value(), 0);
  EXPECT_EQ(mkb_.pc_constraints().size(), 1u);
  // Removing R.A (projected by the PC) drops it.
  dropped = mkb_.RemoveAttribute(RelationId{"IS1", "R"}, "A");
  ASSERT_TRUE(dropped.ok());
  EXPECT_EQ(dropped.value(), 1);
  EXPECT_TRUE(mkb_.pc_constraints().empty());
  // The last attribute cannot be removed.
  EXPECT_FALSE(mkb_.RemoveAttribute(RelationId{"IS1", "R"}, "B").ok());
}

TEST_F(MkbTest, RenameRelationRewritesConstraints) {
  ASSERT_TRUE(mkb_.AddPcConstraint(MakeProjectionPc(RelationId{"IS1", "R"},
                                                    RelationId{"IS2", "S"},
                                                    {"A"},
                                                    PcRelationType::kSubset))
                  .ok());
  ASSERT_TRUE(mkb_.RenameRelation(RelationId{"IS1", "R"}, "R2").ok());
  EXPECT_FALSE(mkb_.HasRelation(RelationId{"IS1", "R"}));
  EXPECT_TRUE(mkb_.HasRelation(RelationId{"IS1", "R2"}));
  EXPECT_TRUE(mkb_.stats().Has(RelationId{"IS1", "R2"}));
  EXPECT_EQ(mkb_.pc_constraints()[0].left.relation, (RelationId{"IS1", "R2"}));
  // Edges follow the new identity.
  EXPECT_EQ(mkb_.PcEdgesFrom(RelationId{"IS1", "R2"}).size(), 1u);
}

TEST_F(MkbTest, RenameAttributeRewritesConstraints) {
  ASSERT_TRUE(mkb_.AddPcConstraint(MakeProjectionPc(RelationId{"IS1", "R"},
                                                    RelationId{"IS2", "S"},
                                                    {"A"},
                                                    PcRelationType::kSubset))
                  .ok());
  ASSERT_TRUE(mkb_.RenameAttribute(RelationId{"IS1", "R"}, "A", "A2").ok());
  EXPECT_EQ(mkb_.pc_constraints()[0].left.attributes[0], "A2");
  EXPECT_EQ(mkb_.pc_constraints()[0].right.attributes[0], "A");  // S side.
  const auto schema = mkb_.GetSchema(RelationId{"IS1", "R"});
  ASSERT_TRUE(schema.ok());
  EXPECT_TRUE(schema->Contains("A2"));
  EXPECT_FALSE(schema->Contains("A"));
}

TEST_F(MkbTest, TypeConstraintsFromSchemas) {
  const auto tcs = mkb_.TypeConstraints();
  EXPECT_EQ(tcs.size(), 4u);  // R(A,B) + S(A,C).
}

TEST_F(MkbTest, PcSelectivityValidation) {
  PcConstraint pc = MakeProjectionPc(RelationId{"IS1", "R"},
                                     RelationId{"IS2", "S"}, {"A"},
                                     PcRelationType::kSubset);
  pc.left.selectivity = 0.0;  // Out of range.
  EXPECT_FALSE(mkb_.AddPcConstraint(pc).ok());
  pc.left.selectivity = 0.5;  // Selectivity without a selection condition.
  EXPECT_FALSE(mkb_.AddPcConstraint(pc).ok());
}

}  // namespace
}  // namespace eve
