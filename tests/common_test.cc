// Foundation tests: Status/Result, string utilities, the deterministic PRNG,
// and the Value type system.

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/str_util.h"
#include "types/value.h"

namespace eve {
namespace {

TEST(Status, OkAndErrors) {
  const Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "OK");
  const Status err = Status::NotFound("thing is missing");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kNotFound);
  EXPECT_EQ(err.ToString(), "NotFound: thing is missing");
  const Status copy = err;  // Deep copy.
  EXPECT_EQ(copy, err);
}

TEST(Status, GovernanceCodesRoundTrip) {
  const Status deadline = Status::DeadlineExceeded("too slow");
  EXPECT_EQ(deadline.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(deadline.ToString(), "DeadlineExceeded: too slow");
  const Status cancelled = Status::Cancelled("caller gave up");
  EXPECT_EQ(cancelled.code(), StatusCode::kCancelled);
  EXPECT_EQ(cancelled.ToString(), "Cancelled: caller gave up");
  const Status exhausted = Status::ResourceExhausted("row budget");
  EXPECT_EQ(exhausted.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(exhausted.ToString(), "ResourceExhausted: row budget");
  EXPECT_EQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
            "DeadlineExceeded");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCancelled), "Cancelled");
  EXPECT_EQ(StatusCodeToString(StatusCode::kResourceExhausted),
            "ResourceExhausted");
  // The three governance codes are distinct from each other and from the
  // pre-existing failure codes, so retry/quarantine logic can dispatch.
  EXPECT_NE(deadline.code(), cancelled.code());
  EXPECT_NE(cancelled.code(), exhausted.code());
  EXPECT_NE(deadline.code(), StatusCode::kInternal);
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

Result<int> Doubled(int v) {
  EVE_ASSIGN_OR_RETURN(const int parsed, ParsePositive(v));
  return parsed * 2;
}

TEST(Result, ValueAndErrorPropagation) {
  EXPECT_EQ(Doubled(4).value(), 8);
  const auto err = Doubled(-1);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(err.value_or(7), 7);
}

TEST(Result, ValueOrRvalueOverloadMoves) {
  Result<std::string> big(std::string(4096, 'q'));
  const std::string taken = std::move(big).value_or("fb");
  EXPECT_EQ(taken.size(), 4096u);
  EXPECT_EQ(taken.front(), 'q');
  Result<std::string> bad = Status::Internal("x");
  EXPECT_EQ(std::move(bad).value_or("fb"), "fb");
  // The lvalue overload still copies and leaves the Result usable.
  const Result<std::string> keep(std::string("kept"));
  EXPECT_EQ(keep.value_or("fb"), "kept");
  EXPECT_EQ(keep.value(), "kept");
}

TEST(StrUtil, FormatJoinSplit) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Split("a,b,,c", ',').size(), 4u);
  EXPECT_TRUE(EqualsIgnoreCase("SeLeCt", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
  EXPECT_EQ(StripWhitespace("  hi \n"), "hi");
  EXPECT_TRUE(StartsWith("CREATE VIEW", "CREATE"));
}

TEST(StrUtil, FormatDoubleTrimsZeros) {
  EXPECT_EQ(FormatDouble(1.5), "1.5");
  EXPECT_EQ(FormatDouble(3.0), "3");
  EXPECT_EQ(FormatDouble(0.0375, 4), "0.0375");
  EXPECT_EQ(FormatDouble(0.25, 2), "0.25");
}

TEST(Random, DeterministicAndUniform) {
  Random a(123);
  Random b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());

  Random rng(5);
  int buckets[10] = {};
  const int n = 100000;
  for (int i = 0; i < n; ++i) buckets[rng.Uniform(10)] += 1;
  for (int count : buckets) {
    EXPECT_NEAR(count, n / 10, n / 100);  // Within 10% of uniform.
  }
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Value, TypesAndComparison) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value(3).type(), DataType::kInt64);
  EXPECT_EQ(Value(3.5).type(), DataType::kDouble);
  EXPECT_EQ(Value("x").type(), DataType::kString);
  EXPECT_EQ(Value(3), Value(3.0));  // Numeric promotion.
  EXPECT_LT(Value(2), Value(2.5));
  EXPECT_LT(Value(), Value(0));  // NULL sorts first.
  EXPECT_EQ(Value("abc").ToString(), "'abc'");
  EXPECT_EQ(Value(int64_t{42}).ToString(), "42");
}

TEST(Value, HashConsistentWithEquality) {
  EXPECT_EQ(Value(3).Hash(), Value(3.0).Hash());
  EXPECT_EQ(Value("s").Hash(), Value(std::string("s")).Hash());
}

TEST(DataTypes, ComparabilityMatrix) {
  EXPECT_TRUE(AreComparable(DataType::kInt64, DataType::kDouble));
  EXPECT_TRUE(AreComparable(DataType::kString, DataType::kString));
  EXPECT_FALSE(AreComparable(DataType::kInt64, DataType::kString));
  EXPECT_FALSE(AreComparable(DataType::kNull, DataType::kInt64));
}

}  // namespace
}  // namespace eve
