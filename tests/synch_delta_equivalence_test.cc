// Corpus equivalence: the delta-based enumeration pipeline must produce
// byte-identical SynchronizationResults to the retained eager oracle
// (synchronizer_eager.cc) on every scenario shape the experiments and the
// worked examples exercise, and the delta-native QC scoring must reproduce
// the materialized scoring bit for bit.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "esql/parser.h"
#include "esql/printer.h"
#include "eve/eve_system.h"
#include "misd/mkb.h"
#include "qc/ranking.h"
#include "synch/synchronizer.h"

namespace eve {
namespace {

ViewDefinition Parse(const std::string& text) {
  auto result = ParseViewDefinition(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.value();
}

Schema IntSchema(const std::vector<std::string>& names) {
  std::vector<Attribute> attrs;
  for (const std::string& n : names) {
    attrs.push_back(Attribute::Make(n, DataType::kInt64, 50));
  }
  return Schema(std::move(attrs));
}

void ExpectEdgesEqual(const PcEdge& a, const PcEdge& b) {
  EXPECT_EQ(a.constraint_text, b.constraint_text);
  EXPECT_EQ(a.source, b.source);
  EXPECT_EQ(a.target, b.target);
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.attribute_map, b.attribute_map);
  EXPECT_EQ(a.source_selectivity, b.source_selectivity);
  EXPECT_EQ(a.target_selectivity, b.target_selectivity);
  EXPECT_EQ(a.source_selection.ToString(), b.source_selection.ToString());
  EXPECT_EQ(a.target_selection.ToString(), b.target_selection.ToString());
}

void ExpectRewritingsEqual(const Rewriting& a, const Rewriting& b) {
  EXPECT_EQ(a.definition, b.definition)
      << PrintViewCompact(a.definition) << "\nvs\n"
      << PrintViewCompact(b.definition);
  EXPECT_EQ(a.extent_relation, b.extent_relation);
  EXPECT_EQ(a.extent_exact, b.extent_exact);
  EXPECT_EQ(a.renamed_attributes, b.renamed_attributes);
  EXPECT_EQ(a.renamed_relations, b.renamed_relations);
  EXPECT_EQ(a.dropped_attributes, b.dropped_attributes);
  EXPECT_EQ(a.dropped_conditions, b.dropped_conditions);
  EXPECT_EQ(a.strategy, b.strategy);
  EXPECT_EQ(a.notes, b.notes);
  ASSERT_EQ(a.replacements.size(), b.replacements.size());
  for (size_t i = 0; i < a.replacements.size(); ++i) {
    const ReplacementRecord& x = a.replacements[i];
    const ReplacementRecord& y = b.replacements[i];
    EXPECT_EQ(x.replaced, y.replaced);
    EXPECT_EQ(x.replacement, y.replacement);
    EXPECT_EQ(x.replaced_from_name, y.replaced_from_name);
    EXPECT_EQ(x.replacement_from_name, y.replacement_from_name);
    EXPECT_EQ(x.joined_in, y.joined_in);
    ExpectEdgesEqual(x.edge, y.edge);
  }
  EXPECT_EQ(a.Summary(), b.Summary());
}

// Runs both pipelines on (view, change) and asserts byte-identical results;
// also asserts the SynchronizeCandidates -> ToRewriting route matches.
void ExpectEquivalent(const MetaKnowledgeBase& mkb, const ViewDefinition& view,
                      const SchemaChange& change,
                      SynchronizerOptions options = {}) {
  options.use_delta_enumeration = true;
  const ViewSynchronizer delta(mkb, options);
  options.use_delta_enumeration = false;
  const ViewSynchronizer eager(mkb, options);

  const auto d = delta.Synchronize(view, change);
  const auto e = eager.Synchronize(view, change);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_EQ(d->affected, e->affected);
  ASSERT_EQ(d->rewritings.size(), e->rewritings.size());
  for (size_t i = 0; i < d->rewritings.size(); ++i) {
    SCOPED_TRACE("rewriting " + std::to_string(i));
    ExpectRewritingsEqual(d->rewritings[i], e->rewritings[i]);
  }

  const auto candidates = delta.SynchronizeCandidates(view, change);
  ASSERT_TRUE(candidates.ok());
  EXPECT_EQ(candidates->affected, e->affected);
  ASSERT_EQ(candidates->candidates.size(), e->rewritings.size());
  for (size_t i = 0; i < candidates->candidates.size(); ++i) {
    SCOPED_TRACE("candidate " + std::to_string(i));
    ExpectRewritingsEqual(candidates->candidates[i].ToRewriting(),
                          e->rewritings[i]);
  }
}

// The experiment-4/5 environment: a 2-relation view over a chain of five PC
// constraints (the shape of BM_SynchronizeView and the paper's Tables 3-5).
struct ChainEnv {
  MetaKnowledgeBase mkb;
  ViewDefinition view;

  ChainEnv() {
    const Schema abc = IntSchema({"A", "B", "C"});
    (void)mkb.RegisterRelationWithStats({"IS0", "R1"}, IntSchema({"K"}), 400,
                                        0.5);
    (void)mkb.RegisterRelationWithStats({"IS1", "R2"}, abc, 4000, 0.5);
    for (int i = 0; i < 5; ++i) {
      (void)mkb.RegisterRelationWithStats(
          {"IS" + std::to_string(i + 2), "S" + std::to_string(i + 1)}, abc,
          2000 + 1000 * i, 0.5);
    }
    auto pc = [&](RelationId a, RelationId b, PcRelationType t) {
      (void)mkb.AddPcConstraint(MakeProjectionPc(a, b, {"A", "B", "C"}, t));
    };
    pc({"IS2", "S1"}, {"IS3", "S2"}, PcRelationType::kSubset);
    pc({"IS3", "S2"}, {"IS4", "S3"}, PcRelationType::kSubset);
    pc({"IS4", "S3"}, {"IS1", "R2"}, PcRelationType::kEquivalent);
    pc({"IS4", "S3"}, {"IS5", "S4"}, PcRelationType::kSubset);
    pc({"IS5", "S4"}, {"IS6", "S5"}, PcRelationType::kSubset);
    view = Parse(
        "CREATE VIEW V AS SELECT R2.A (AR=true), R2.B (AR=true), "
        "R2.C (AR=true) FROM R1, R2 (RR=true) "
        "WHERE (R1.K = R2.A) (CR=true) AND (R2.B > 5) (CR=true)");
  }
};

TEST(DeltaEquivalence, ExperimentChainDeleteRelation) {
  ChainEnv env;
  ExpectEquivalent(env.mkb, env.view,
                   SchemaChange(DeleteRelation{RelationId{"IS1", "R2"}}));
}

TEST(DeltaEquivalence, ExperimentChainDeleteAttribute) {
  ChainEnv env;
  ExpectEquivalent(env.mkb, env.view,
                   SchemaChange(DeleteAttribute{RelationId{"IS1", "R2"}, "B"}));
}

TEST(DeltaEquivalence, ExperimentChainWithDropSubsets) {
  ChainEnv env;
  SynchronizerOptions options;
  options.enumerate_drop_subsets = true;
  ExpectEquivalent(env.mkb, env.view,
                   SchemaChange(DeleteRelation{RelationId{"IS1", "R2"}}),
                   options);
}

TEST(DeltaEquivalence, ExperimentChainStrategySubsets) {
  ChainEnv env;
  const SchemaChange change(DeleteRelation{RelationId{"IS1", "R2"}});
  for (int mask = 0; mask < 8; ++mask) {
    SCOPED_TRACE(mask);
    SynchronizerOptions options;
    options.strategies = StrategySet::None();
    if (mask & 1) options.strategies = options.strategies.With(Strategy::kReplaceRelation);
    if (mask & 2) options.strategies = options.strategies.With(Strategy::kJoinIn);
    if (mask & 4) options.strategies = options.strategies.With(Strategy::kCvsPair);
    ExpectEquivalent(env.mkb, env.view, change, options);
  }
}

TEST(DeltaEquivalence, RenameChanges) {
  ChainEnv env;
  ExpectEquivalent(
      env.mkb, env.view,
      SchemaChange(RenameAttribute{RelationId{"IS1", "R2"}, "B", "B2"}));
  ExpectEquivalent(
      env.mkb, env.view,
      SchemaChange(RenameRelation{RelationId{"IS1", "R2"}, "R2_v2"}));
  // Additions never affect views; both must report unaffected.
  ExpectEquivalent(env.mkb, env.view,
                   SchemaChange(AddAttribute{RelationId{"IS1", "R2"},
                                             Attribute::Make("D", DataType::kInt64)}));
}

// Join-in + CVS-pair environment: deleting R.B is recoverable through a JC
// to U, and deleting R outright decomposes into S1 x S2 (pair substitution).
struct JoinEnv {
  MetaKnowledgeBase mkb;

  JoinEnv() {
    (void)mkb.RegisterRelationWithStats({"IS1", "R"}, IntSchema({"K", "A", "B"}),
                                        100, 0.5);
    (void)mkb.RegisterRelationWithStats({"IS2", "U"}, IntSchema({"K", "B"}),
                                        100, 0.5);
    (void)mkb.RegisterRelationWithStats({"IS3", "S1"}, IntSchema({"K", "A"}),
                                        100, 0.5);
    (void)mkb.RegisterRelationWithStats({"IS4", "S2"}, IntSchema({"K", "B"}),
                                        100, 0.5);
    (void)mkb.AddPcConstraint(MakeProjectionPc(RelationId{"IS1", "R"},
                                               RelationId{"IS2", "U"},
                                               {"K", "B"},
                                               PcRelationType::kSubset));
    (void)mkb.AddPcConstraint(MakeProjectionPc(RelationId{"IS1", "R"},
                                               RelationId{"IS3", "S1"},
                                               {"K", "A"},
                                               PcRelationType::kEquivalent));
    (void)mkb.AddPcConstraint(MakeProjectionPc(RelationId{"IS1", "R"},
                                               RelationId{"IS4", "S2"},
                                               {"K", "B"},
                                               PcRelationType::kEquivalent));
    JoinConstraint ru;
    ru.left = RelationId{"IS1", "R"};
    ru.right = RelationId{"IS2", "U"};
    ru.condition.Add(PrimitiveClause::AttrAttr(RelAttr{"R", "K"},
                                               CompOp::kEqual,
                                               RelAttr{"U", "K"}));
    (void)mkb.AddJoinConstraint(ru);
    JoinConstraint pair;
    pair.left = RelationId{"IS3", "S1"};
    pair.right = RelationId{"IS4", "S2"};
    pair.condition.Add(PrimitiveClause::AttrAttr(RelAttr{"S1", "K"},
                                                 CompOp::kEqual,
                                                 RelAttr{"S2", "K"}));
    (void)mkb.AddJoinConstraint(pair);
  }
};

TEST(DeltaEquivalence, JoinInRecovery) {
  JoinEnv env;
  const ViewDefinition view = Parse(
      "CREATE VIEW V AS SELECT R.A, R.B (AR=true) FROM R "
      "WHERE (R.B > 3) (CR=true, CD=true)");
  ExpectEquivalent(env.mkb, view,
                   SchemaChange(DeleteAttribute{RelationId{"IS1", "R"}, "B"}));
}

TEST(DeltaEquivalence, CvsPairSubstitution) {
  JoinEnv env;
  const ViewDefinition view = Parse(
      "CREATE VIEW V AS SELECT R.A (AR=true), R.B (AR=true) FROM R (RR=true)");
  ExpectEquivalent(env.mkb, view,
                   SchemaChange(DeleteRelation{RelationId{"IS1", "R"}}));
}

TEST(DeltaEquivalence, SelfJoinFoldsOverBothAliases) {
  JoinEnv env;
  // Two aliases of the deleted relation: the fold resolves both, deriving
  // candidates whose second resolution edits appended components of the
  // first (the delta log's append-id path).
  const ViewDefinition view = Parse(
      "CREATE VIEW V AS SELECT P.A (AR=true), Q.B (AR=true, AD=true) "
      "FROM R P (RR=true), R Q (RR=true) WHERE (P.K = Q.K) (CR=true, CD=true)");
  ExpectEquivalent(env.mkb, view,
                   SchemaChange(DeleteRelation{RelationId{"IS1", "R"}}));
}

TEST(DeltaEquivalence, VeDisciplinePrunesIdentically) {
  ChainEnv env;
  ViewDefinition strict = env.view;
  strict.ve = ViewExtent::kEqual;
  ExpectEquivalent(env.mkb, strict,
                   SchemaChange(DeleteRelation{RelationId{"IS1", "R2"}}));
  strict.ve = ViewExtent::kSubset;
  ExpectEquivalent(env.mkb, strict,
                   SchemaChange(DeleteRelation{RelationId{"IS1", "R2"}}));
}

TEST(DeltaEquivalence, IndispensableKillsViewIdentically) {
  MetaKnowledgeBase mkb;
  (void)mkb.RegisterRelationWithStats({"IS1", "R"}, IntSchema({"A", "B"}), 100,
                                      0.5);
  const ViewDefinition view = Parse("CREATE VIEW V AS SELECT R.A, R.B FROM R");
  ExpectEquivalent(mkb, view,
                   SchemaChange(DeleteAttribute{RelationId{"IS1", "R"}, "A"}));
}

// Delta-native QC scoring must reproduce the materialized scoring bit for
// bit: same quality, costs, QC values, ranks, and definitions.
TEST(DeltaEquivalence, RankCandidatesMatchesRank) {
  ChainEnv env;
  const SchemaChange change(DeleteRelation{RelationId{"IS1", "R2"}});
  const ViewSynchronizer synchronizer(env.mkb);
  auto sync = synchronizer.Synchronize(env.view, change);
  auto candidates = synchronizer.SynchronizeCandidates(env.view, change);
  ASSERT_TRUE(sync.ok());
  ASSERT_TRUE(candidates.ok());

  const QcModel model(QcParameters{}, CostModelOptions{}, WorkloadOptions{});
  auto ranked = model.Rank(env.view, std::move(sync->rewritings), env.mkb);
  auto ranked_candidates =
      model.RankCandidates(env.view, std::move(candidates->candidates), env.mkb);
  ASSERT_TRUE(ranked.ok());
  ASSERT_TRUE(ranked_candidates.ok());
  ASSERT_EQ(ranked->size(), ranked_candidates->size());
  for (size_t i = 0; i < ranked->size(); ++i) {
    SCOPED_TRACE(i);
    const RankedRewriting& a = (*ranked)[i];
    const RankedRewriting& b = (*ranked_candidates)[i];
    EXPECT_EQ(a.rank, b.rank);
    EXPECT_EQ(a.qc, b.qc);
    EXPECT_EQ(a.weighted_cost, b.weighted_cost);
    EXPECT_EQ(a.normalized_cost, b.normalized_cost);
    EXPECT_EQ(a.quality.dd, b.quality.dd);
    EXPECT_EQ(a.quality.dd_attr, b.quality.dd_attr);
    EXPECT_EQ(a.quality.dd_ext, b.quality.dd_ext);
    EXPECT_EQ(a.quality.exact, b.quality.exact);
    ExpectRewritingsEqual(a.rewriting, b.rewriting);
  }
}

// End to end: the full EveSystem change report must be byte-identical under
// both pipelines (synchronization, ranking, adoption, rematerialization).
TEST(DeltaEquivalence, EveSystemReportIsByteIdentical) {
  auto build = [](bool use_delta) -> std::string {
    EveOptions options;
    options.synchronizer.use_delta_enumeration = use_delta;
    EveSystem eve(options);
    Relation r("R", IntSchema({"A", "B"}));
    (void)r.Insert(Tuple{Value(int64_t{1}), Value(int64_t{10})});
    (void)r.Insert(Tuple{Value(int64_t{2}), Value(int64_t{20})});
    Relation t("T", IntSchema({"A", "B"}));
    (void)t.Insert(Tuple{Value(int64_t{1}), Value(int64_t{10})});
    (void)t.Insert(Tuple{Value(int64_t{3}), Value(int64_t{30})});
    EXPECT_TRUE(eve.RegisterRelation("IS1", std::move(r)).ok());
    EXPECT_TRUE(eve.RegisterRelation("IS2", std::move(t)).ok());
    EXPECT_TRUE(
        eve.DeclareConstraint("PC CONSTRAINT R (A, B) EQUIVALENT T (A, B)")
            .ok());
    EXPECT_TRUE(
        eve.DefineView("CREATE VIEW V AS SELECT R.A (AR=true), "
                       "R.B (AD=true, AR=true) FROM R (RR=true)")
            .ok());
    auto report =
        eve.NotifySchemaChange(SchemaChange(DeleteRelation{RelationId{"IS1", "R"}}));
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    std::string out = report->ToString();
    auto extent = eve.GetViewExtent("V");
    EXPECT_TRUE(extent.ok());
    if (extent.ok()) out += extent->ToString();
    return out;
  };
  const std::string delta_report = build(true);
  const std::string eager_report = build(false);
  EXPECT_EQ(delta_report, eager_report);
  EXPECT_FALSE(delta_report.empty());
}

}  // namespace
}  // namespace eve
