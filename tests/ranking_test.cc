// Tests of the integrated QC-Model ranking (paper §6.7 and Experiment 4):
// normalization (Eq. 25), the QC score (Eq. 26), and the full Table 4 /
// Figure 15 reproduction through the synchronizer + quality + cost pipeline.

#include <gtest/gtest.h>

#include "esql/parser.h"
#include "esql/printer.h"
#include "misd/mkb.h"
#include "qc/ranking.h"
#include "synch/synchronizer.h"

namespace eve {
namespace {

ViewDefinition Parse(const std::string& text) {
  auto result = ParseViewDefinition(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.value();
}

TEST(NormalizeCosts, Equation25) {
  const std::vector<double> normalized =
      NormalizeCosts({842.3, 1193.3, 1544.3, 1895.3, 2246.3});
  ASSERT_EQ(normalized.size(), 5u);
  EXPECT_NEAR(normalized[0], 0.0, 1e-9);
  EXPECT_NEAR(normalized[1], 0.25, 1e-9);
  EXPECT_NEAR(normalized[2], 0.5, 1e-9);
  EXPECT_NEAR(normalized[3], 0.75, 1e-9);
  EXPECT_NEAR(normalized[4], 1.0, 1e-9);
}

TEST(NormalizeCosts, DegenerateCases) {
  EXPECT_TRUE(NormalizeCosts({}).empty());
  const auto same = NormalizeCosts({5.0, 5.0, 5.0});
  for (double v : same) EXPECT_DOUBLE_EQ(v, 0.0);
  const auto single = NormalizeCosts({3.0});
  EXPECT_DOUBLE_EQ(single[0], 0.0);
}

// The Experiment 4 environment (same as in qc_quality_test, but driven
// through the full QcModel).
class Exp4RankingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const Schema abc({Attribute::Make("A", DataType::kInt64, 34),
                      Attribute::Make("B", DataType::kInt64, 33),
                      Attribute::Make("C", DataType::kInt64, 33)});
    const Schema r1_schema({Attribute::Make("K", DataType::kInt64, 100)});
    ASSERT_TRUE(mkb_.RegisterRelationWithStats(RelationId{"IS0", "R1"},
                                               r1_schema, 400, 0.5)
                    .ok());
    ASSERT_TRUE(
        mkb_.RegisterRelationWithStats(RelationId{"IS1", "R2"}, abc, 4000, 0.5)
            .ok());
    const int64_t cards[] = {2000, 3000, 4000, 5000, 6000};
    for (int i = 0; i < 5; ++i) {
      const RelationId id{"IS" + std::to_string(i + 2),
                          "S" + std::to_string(i + 1)};
      ASSERT_TRUE(mkb_.RegisterRelationWithStats(id, abc, cards[i], 0.5).ok());
    }
    auto pc = [&](RelationId a, RelationId b, PcRelationType t) {
      ASSERT_TRUE(
          mkb_.AddPcConstraint(MakeProjectionPc(a, b, {"A", "B", "C"}, t)).ok());
    };
    pc({"IS2", "S1"}, {"IS3", "S2"}, PcRelationType::kSubset);
    pc({"IS3", "S2"}, {"IS4", "S3"}, PcRelationType::kSubset);
    pc({"IS4", "S3"}, {"IS1", "R2"}, PcRelationType::kEquivalent);
    pc({"IS4", "S3"}, {"IS5", "S4"}, PcRelationType::kSubset);
    pc({"IS5", "S4"}, {"IS6", "S5"}, PcRelationType::kSubset);
    mkb_.stats().set_join_selectivity(0.005);

    view_ = Parse(
        "CREATE VIEW V AS SELECT R2.A (AR=true), R2.B (AR=true), "
        "R2.C (AR=true) FROM R1, R2 (RR=true) "
        "WHERE (R1.K = R2.A) (CR=true) AND (R2.B > 5) (CR=true)");

    ViewSynchronizer synchronizer(mkb_);
    auto sync = synchronizer.Synchronize(
        view_, SchemaChange(DeleteRelation{RelationId{"IS1", "R2"}}));
    ASSERT_TRUE(sync.ok());
    // Keep only the single-replacement rewritings (the paper's V1..V5).
    for (Rewriting& rw : sync.value().rewritings) {
      if (rw.replacements.size() == 1) rewritings_.push_back(std::move(rw));
    }
    ASSERT_EQ(rewritings_.size(), 5u);
  }

  // Ranks with the Experiment-4 configuration: update at R1 only (the paper
  // computes the cost of a single data update), upper I/O bound, given
  // quality/cost trade-off.
  std::vector<RankedRewriting> Rank(double rho_quality, double rho_cost) {
    QcParameters params;
    params.rho_quality = rho_quality;
    params.rho_cost = rho_cost;
    CostModelOptions cost;
    cost.io_policy = IoBoundPolicy::kUpper;
    cost.block.block_bytes = 1000;
    WorkloadOptions workload;
    workload.model = WorkloadModel::kM4FixedPerView;
    workload.updates_per_view = 1.0;
    // The paper's single update originates at R1; M4 with one update spread
    // over relations would average origins.  To match the paper exactly we
    // emulate "updates at R1 only" by zeroing the replacement's share: use
    // M2 with updates only at R1 via a custom computation below.
    QcModel model(params, cost, workload);
    auto ranking = model.Rank(view_, rewritings_, mkb_);
    EXPECT_TRUE(ranking.ok()) << ranking.status().ToString();
    return ranking.value();
  }

  MetaKnowledgeBase mkb_;
  ViewDefinition view_;
  std::vector<Rewriting> rewritings_;
};

TEST_F(Exp4RankingTest, Case1QualityHeavyChoosesS3) {
  const auto ranking = Rank(0.9, 0.1);
  ASSERT_EQ(ranking.size(), 5u);
  EXPECT_EQ(ranking[0].rewriting.replacements[0].replacement.relation, "S3");
  // DD values per Table 4 (with the corrected V4/V5 entries 0.030/0.050).
  std::map<std::string, double> dd;
  for (const auto& r : ranking) {
    dd[r.rewriting.replacements[0].replacement.relation] = r.quality.dd;
  }
  EXPECT_NEAR(dd["S1"], 0.075, 1e-9);
  EXPECT_NEAR(dd["S2"], 0.0375, 1e-9);
  EXPECT_NEAR(dd["S3"], 0.0, 1e-9);
  EXPECT_NEAR(dd["S4"], 0.030, 1e-9);
  EXPECT_NEAR(dd["S5"], 0.050, 1e-9);
}

TEST_F(Exp4RankingTest, SupersetReplacementsAlwaysOrderedByCloseness) {
  // Among S3, S4, S5 (superset replacements), S3 ranks best under every
  // trade-off setting (paper's first observation on Figure 15).
  for (const auto& [q, c] : std::vector<std::pair<double, double>>{
           {0.9, 0.1}, {0.75, 0.25}, {0.5, 0.5}}) {
    const auto ranking = Rank(q, c);
    std::map<std::string, int> rank_of;
    for (const auto& r : ranking) {
      rank_of[r.rewriting.replacements[0].replacement.relation] = r.rank;
    }
    EXPECT_LT(rank_of["S3"], rank_of["S4"]);
    EXPECT_LT(rank_of["S4"], rank_of["S5"]);
  }
}

TEST_F(Exp4RankingTest, CostHeavySettingsFavorSmallReplacements) {
  // Cases 2 and 3 of Figure 15: with rho_cost >= 0.25 the smallest
  // replacement S1 wins.
  for (const auto& [q, c] :
       std::vector<std::pair<double, double>>{{0.75, 0.25}, {0.5, 0.5}}) {
    const auto ranking = Rank(q, c);
    EXPECT_EQ(ranking[0].rewriting.replacements[0].replacement.relation, "S1")
        << "rho_quality=" << q;
  }
}

TEST_F(Exp4RankingTest, QcScoresAreUnitInterval) {
  for (const auto& r : Rank(0.9, 0.1)) {
    EXPECT_GE(r.qc, 0.0);
    EXPECT_LE(r.qc, 1.0);
  }
}

TEST_F(Exp4RankingTest, RanksAreDenseAndSorted) {
  const auto ranking = Rank(0.9, 0.1);
  for (size_t i = 0; i < ranking.size(); ++i) {
    EXPECT_EQ(ranking[i].rank, static_cast<int>(i) + 1);
    if (i > 0) {
      EXPECT_GE(ranking[i - 1].qc, ranking[i].qc);
    }
  }
}

// A delete fan-out wide enough that RankCandidates' default path would go
// parallel: 12 partial-map replacement targets (6 covering each half of the
// deleted relation's attributes) with pairwise join constraints, so CVS
// pair substitutions alone yield dozens of candidates.
class ParallelRankingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto int_schema = [](const std::vector<std::string>& names) {
      std::vector<Attribute> attrs;
      for (const std::string& n : names) {
        attrs.push_back(Attribute::Make(n, DataType::kInt64, 50));
      }
      return Schema(std::move(attrs));
    };
    ASSERT_TRUE(mkb_.RegisterRelationWithStats(
                        {"IS0", "R"}, int_schema({"K", "X0", "X1", "X2", "X3"}),
                        10000, 0.5)
                    .ok());
    constexpr int kTargets = 12;
    for (int i = 0; i < kTargets; ++i) {
      const std::vector<std::string> attrs =
          i < kTargets / 2 ? std::vector<std::string>{"K", "X0", "X1"}
                           : std::vector<std::string>{"K", "X2", "X3"};
      const RelationId id{"IS" + std::to_string(i + 1),
                          "U" + std::to_string(i)};
      ASSERT_TRUE(
          mkb_.RegisterRelationWithStats(id, int_schema(attrs), 4000 + 100 * i,
                                         0.5)
              .ok());
      ASSERT_TRUE(mkb_.AddPcConstraint(
                          MakeProjectionPc(RelationId{"IS0", "R"}, id, attrs,
                                           PcRelationType::kEquivalent))
                      .ok());
    }
    for (int i = 0; i < kTargets; ++i) {
      for (int j = i + 1; j < kTargets; ++j) {
        JoinConstraint jc;
        jc.left = RelationId{"IS" + std::to_string(i + 1),
                             "U" + std::to_string(i)};
        jc.right = RelationId{"IS" + std::to_string(j + 1),
                              "U" + std::to_string(j)};
        jc.condition.Add(PrimitiveClause::AttrAttr(
            RelAttr{"U" + std::to_string(i), "K"}, CompOp::kEqual,
            RelAttr{"U" + std::to_string(j), "K"}));
        ASSERT_TRUE(mkb_.AddJoinConstraint(jc).ok());
      }
    }
    view_ = Parse(
        "CREATE VIEW W AS SELECT R.K (AR=true), R.X0 (AD=true, AR=true), "
        "R.X1 (AD=true, AR=true), R.X2 (AD=true, AR=true), "
        "R.X3 (AD=true, AR=true) FROM R (RR=true)");
  }

  MetaKnowledgeBase mkb_;
  ViewDefinition view_;
};

// Parallel ranking must be deterministic: any thread count produces the
// serial ranking bit for bit (scores, ranks, and rendered definitions).
TEST_F(ParallelRankingTest, RankCandidatesDeterministicAcrossThreadCounts) {
  const ViewSynchronizer synchronizer(mkb_);
  const SchemaChange change(DeleteRelation{RelationId{"IS0", "R"}});
  auto candidates = synchronizer.SynchronizeCandidates(view_, change);
  ASSERT_TRUE(candidates.ok());
  ASSERT_GE(candidates->candidates.size(), 32u)
      << "fixture too narrow to exercise the parallel path";

  const QcModel model(QcParameters{}, CostModelOptions{}, WorkloadOptions{});
  auto serial = model.RankCandidates(view_, candidates->candidates, mkb_,
                                     /*threads=*/1);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  for (const int threads : {2, 4}) {
    SCOPED_TRACE(threads);
    auto parallel = model.RankCandidates(view_, candidates->candidates, mkb_,
                                         threads);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    ASSERT_EQ(parallel->size(), serial->size());
    for (size_t i = 0; i < serial->size(); ++i) {
      SCOPED_TRACE(i);
      const RankedRewriting& a = (*serial)[i];
      const RankedRewriting& b = (*parallel)[i];
      EXPECT_EQ(a.rank, b.rank);
      EXPECT_EQ(a.qc, b.qc);
      EXPECT_EQ(a.weighted_cost, b.weighted_cost);
      EXPECT_EQ(a.normalized_cost, b.normalized_cost);
      EXPECT_EQ(a.quality.dd, b.quality.dd);
      EXPECT_EQ(PrintViewCompact(a.rewriting.definition),
                PrintViewCompact(b.rewriting.definition));
    }
  }
}

}  // namespace
}  // namespace eve
