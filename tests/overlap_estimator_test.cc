// Tests of the PC-based overlap estimator: all twelve Fig.-9/10 cases
// (selection shape x set relation), parameterized, plus cross-validation
// against measured intersections on engineered data.

#include <gtest/gtest.h>

#include "common/random.h"
#include "misd/overlap_estimator.h"
#include "storage/generator.h"

namespace eve {
namespace {

PcEdge MakeEdge(PcRelationType type, bool select_source, bool select_target,
                double sigma_source = 0.4, double sigma_target = 0.6) {
  PcEdge edge;
  edge.source = RelationId{"IS1", "R1"};
  edge.target = RelationId{"IS2", "R2"};
  edge.type = type;
  edge.attribute_map["A"] = "A";
  if (select_source) {
    edge.source_selection.Add(PrimitiveClause::AttrConst(
        RelAttr{"R1", "A"}, CompOp::kGreater, Value(0)));
    edge.source_selectivity = sigma_source;
  }
  if (select_target) {
    edge.target_selection.Add(PrimitiveClause::AttrConst(
        RelAttr{"R2", "A"}, CompOp::kGreater, Value(0)));
    edge.target_selectivity = sigma_target;
  }
  return edge;
}

// The twelve cases of Fig. 10, with |R1| = 1000, |R2| = 2000.
struct Fig10Case {
  PcRelationType type;
  bool sel_source;
  bool sel_target;
  double expected_size;
  bool expected_exact;
};

class Fig10Test : public ::testing::TestWithParam<Fig10Case> {};

TEST_P(Fig10Test, MatchesTable) {
  const Fig10Case c = GetParam();
  const PcEdge edge = MakeEdge(c.type, c.sel_source, c.sel_target);
  const OverlapEstimate est = EstimateIntersection(edge, 1000, 2000);
  EXPECT_DOUBLE_EQ(est.size, c.expected_size);
  EXPECT_EQ(est.exact, c.expected_exact);
}

INSTANTIATE_TEST_SUITE_P(
    AllTwelve, Fig10Test,
    ::testing::Values(
        // no/no row: all exact.
        Fig10Case{PcRelationType::kEquivalent, false, false, 1000, true},
        Fig10Case{PcRelationType::kSubset, false, false, 1000, true},
        Fig10Case{PcRelationType::kSuperset, false, false, 2000, true},
        // no/yes row: R1 rel sigma(R2); superset only bounds.
        Fig10Case{PcRelationType::kEquivalent, false, true, 1000, true},
        Fig10Case{PcRelationType::kSubset, false, true, 1000, true},
        Fig10Case{PcRelationType::kSuperset, false, true, 0.6 * 2000, false},
        // yes/no row: sigma(R1) rel R2; subset only bounds.
        Fig10Case{PcRelationType::kEquivalent, true, false, 2000, true},
        Fig10Case{PcRelationType::kSubset, true, false, 0.4 * 1000, false},
        Fig10Case{PcRelationType::kSuperset, true, false, 2000, true},
        // yes/yes row: nothing exact.
        Fig10Case{PcRelationType::kEquivalent, true, true, 0.4 * 1000, false},
        Fig10Case{PcRelationType::kSubset, true, true, 0.4 * 1000, false},
        Fig10Case{PcRelationType::kSuperset, true, true, 0.6 * 2000, false}));

TEST(OverlapEstimator, EquivalentMinTakesSmallerFragment) {
  // yes/yes equivalent: min(sigma1*|R1|, sigma2*|R2|).
  const PcEdge edge = MakeEdge(PcRelationType::kEquivalent, true, true,
                               /*sigma_source=*/0.9, /*sigma_target=*/0.1);
  const OverlapEstimate est = EstimateIntersection(edge, 1000, 2000);
  EXPECT_DOUBLE_EQ(est.size, 0.1 * 2000);
  EXPECT_FALSE(est.exact);
}

TEST(OverlapEstimator, MkbLookupPath) {
  MetaKnowledgeBase mkb;
  const Schema s({Attribute::Make("A", DataType::kInt64)});
  ASSERT_TRUE(
      mkb.RegisterRelationWithStats(RelationId{"IS1", "R1"}, s, 300).ok());
  ASSERT_TRUE(
      mkb.RegisterRelationWithStats(RelationId{"IS2", "R2"}, s, 700).ok());
  const PcEdge edge = MakeEdge(PcRelationType::kSubset, false, false);
  const auto est = EstimateIntersection(mkb, edge);
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->size, 300);
  EXPECT_TRUE(est->exact);
}

TEST(OverlapEstimator, MissingStatsFails) {
  MetaKnowledgeBase mkb;
  const PcEdge edge = MakeEdge(PcRelationType::kSubset, false, false);
  EXPECT_FALSE(EstimateIntersection(mkb, edge).ok());
}

// Cross-validation: generate R subset-of S, measure the true intersection,
// compare with the estimate for the no/no subset case.
TEST(OverlapEstimator, AgreesWithMeasuredIntersection) {
  Random rng(99);
  GeneratorOptions gen;
  gen.num_attributes = 2;
  gen.key_domain = 1 << 30;
  gen.value_domain = 1 << 30;
  const auto chain = GenerateContainmentChain({"R", "S"}, {250, 400}, gen, &rng);
  ASSERT_TRUE(chain.ok());
  const Relation& r = chain.value()[0];
  const Relation& s = chain.value()[1];

  // Measured |R cap S| (tuple-level; schemas identical).
  const auto inter = SetIntersect(r, s);
  ASSERT_TRUE(inter.ok());

  PcEdge edge;
  edge.source = RelationId{"IS1", "R"};
  edge.target = RelationId{"IS2", "S"};
  edge.type = PcRelationType::kSubset;
  edge.attribute_map["A"] = "A";
  edge.attribute_map["B"] = "B";
  const OverlapEstimate est =
      EstimateIntersection(edge, r.cardinality(), s.cardinality());
  EXPECT_TRUE(est.exact);
  EXPECT_DOUBLE_EQ(est.size, static_cast<double>(inter->cardinality()));
}

}  // namespace
}  // namespace eve
