// Storage-engine tests: tuples, relations (insert/erase/set ops), the hash
// index, the block model behind the I/O estimates, and the data generator's
// statistical guarantees.

#include <gtest/gtest.h>

#include "common/random.h"
#include "storage/block_model.h"
#include "storage/generator.h"
#include "storage/hash_index.h"
#include "storage/relation.h"

namespace eve {
namespace {

Relation TwoColumn() {
  Relation rel("R", Schema({Attribute::Make("A", DataType::kInt64),
                            Attribute::Make("B", DataType::kString, 20)}));
  return rel;
}

TEST(Tuple, ProjectAndConcat) {
  const Tuple t{Value(1), Value("x"), Value(2.5)};
  const Tuple p = t.Project({2, 0});
  EXPECT_EQ(p, (Tuple{Value(2.5), Value(1)}));
  const Tuple c = p.Concat(Tuple{Value(7)});
  EXPECT_EQ(c.size(), 3);
  EXPECT_EQ(c.at(2), Value(7));
}

TEST(Tuple, OrderingAndHashingConsistent) {
  const Tuple a{Value(1), Value(2)};
  const Tuple b{Value(1), Value(2.0)};  // INT/DOUBLE compare equal.
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  const Tuple c{Value(1), Value(3)};
  EXPECT_LT(a, c);
}

TEST(Relation, InsertChecksArityAndTypes) {
  Relation rel = TwoColumn();
  EXPECT_TRUE(rel.Insert(Tuple{Value(1), Value("a")}).ok());
  EXPECT_FALSE(rel.Insert(Tuple{Value(1)}).ok());              // Arity.
  EXPECT_FALSE(rel.Insert(Tuple{Value("x"), Value("a")}).ok());  // Type.
  EXPECT_TRUE(rel.Insert(Tuple{Value(), Value("b")}).ok());    // NULL ok.
  EXPECT_EQ(rel.cardinality(), 2);
}

TEST(Relation, EraseSingleAndAll) {
  Relation rel("R", Schema({Attribute::Make("A", DataType::kInt64)}));
  for (int v : {1, 2, 1, 1}) rel.InsertUnchecked(Tuple{Value(v)});
  EXPECT_EQ(rel.Erase(Tuple{Value(1)}), 1);
  EXPECT_EQ(rel.cardinality(), 3);
  EXPECT_EQ(rel.Erase(Tuple{Value(1)}, /*all_occurrences=*/true), 2);
  EXPECT_EQ(rel.Erase(Tuple{Value(99)}), 0);
}

TEST(Relation, DistinctAndCounts) {
  Relation rel("R", Schema({Attribute::Make("A", DataType::kInt64)}));
  for (int v : {3, 1, 3, 2, 1}) rel.InsertUnchecked(Tuple{Value(v)});
  EXPECT_EQ(rel.DistinctCount(), 3);
  const Relation d = rel.Distinct();
  EXPECT_EQ(d.cardinality(), 3);
  // Input order preserved: 3, 1, 2.
  EXPECT_EQ(d.TupleAt(0), Tuple{Value(3)});
  EXPECT_EQ(d.TupleAt(1), Tuple{Value(1)});
}

TEST(Relation, SetOperations) {
  Relation a("A", Schema({Attribute::Make("X", DataType::kInt64)}));
  Relation b("B", Schema({Attribute::Make("X", DataType::kInt64)}));
  for (int v : {1, 2, 3}) a.InsertUnchecked(Tuple{Value(v)});
  for (int v : {2, 3, 4}) b.InsertUnchecked(Tuple{Value(v)});
  EXPECT_EQ(SetUnion(a, b)->cardinality(), 4);
  EXPECT_EQ(SetIntersect(a, b)->cardinality(), 2);
  EXPECT_EQ(SetDifference(a, b)->cardinality(), 1);
  EXPECT_FALSE(SetEquals(a, b));
  EXPECT_TRUE(SetEquals(a, a));
  // Arity mismatch rejected.
  Relation c("C", Schema({Attribute::Make("X", DataType::kInt64),
                          Attribute::Make("Y", DataType::kInt64)}));
  EXPECT_FALSE(SetUnion(a, c).ok());
}

TEST(Relation, VersionChangesOnEveryMutation) {
  Relation rel("R", Schema({Attribute::Make("A", DataType::kInt64)}));
  uint64_t v = rel.version();
  rel.InsertUnchecked(Tuple{Value(1)});
  EXPECT_NE(rel.version(), v);
  v = rel.version();
  ASSERT_TRUE(rel.Insert(Tuple{Value(2)}).ok());
  EXPECT_NE(rel.version(), v);
  v = rel.version();
  EXPECT_EQ(rel.Erase(Tuple{Value(1)}), 1);
  EXPECT_NE(rel.version(), v);
  v = rel.version();
  EXPECT_EQ(rel.Erase(Tuple{Value(99)}), 0);  // No-op erase: no new stamp.
  EXPECT_EQ(rel.version(), v);
  rel.Clear();
  EXPECT_NE(rel.version(), v);

  // Copies are distinct objects with their own identity stamps; moving
  // steals the tuples, so the source is restamped too.
  const Relation copy = rel;
  EXPECT_NE(copy.identity(), rel.identity());
  const uint64_t source_identity = rel.identity();
  const Relation moved = std::move(rel);
  EXPECT_NE(moved.identity(), source_identity);
  EXPECT_NE(rel.identity(), source_identity);  // NOLINT(bugprone-use-after-move)
}

TEST(Relation, TupleHashCacheReusedAndInvalidated) {
  Relation rel("R", Schema({Attribute::Make("A", DataType::kInt64)}));
  for (int v : {3, 1, 3}) rel.InsertUnchecked(Tuple{Value(v)});
  const auto hashes = rel.TupleHashes();
  ASSERT_EQ(hashes->size(), 3u);
  EXPECT_EQ((*hashes)[0], rel.TupleAt(0).Hash());
  // Second call returns the same cached column.
  EXPECT_EQ(rel.TupleHashes().get(), hashes.get());

  // Mutation drops the cache; the old shared_ptr stays readable.
  rel.InsertUnchecked(Tuple{Value(2)});
  const auto fresh = rel.TupleHashes();
  EXPECT_NE(fresh.get(), hashes.get());
  ASSERT_EQ(fresh->size(), 4u);
  EXPECT_EQ((*fresh)[3], rel.TupleAt(3).Hash());
  EXPECT_EQ(hashes->size(), 3u);

  // The hashed paths stay correct across the mutation.
  EXPECT_EQ(rel.DistinctCount(), 3);
  EXPECT_EQ(rel.Distinct().cardinality(), 3);
  EXPECT_TRUE(SetEquals(rel, rel.Distinct()));
}

TEST(Relation, ColumnarAccessorsMatchRowAdapter) {
  Relation rel("R", Schema({Attribute::Make("A", DataType::kInt64),
                            Attribute::Make("B", DataType::kString, 20),
                            Attribute::Make("C", DataType::kDouble)}));
  rel.InsertUnchecked(Tuple{Value(1), Value("x"), Value(1.5)});
  rel.InsertUnchecked(Tuple{Value(2), Value("y"), Value(2.5)});
  rel.InsertUnchecked(Tuple{Value(3), Value("z"), Value()});
  ASSERT_EQ(rel.width(), 3);
  for (int c = 0; c < rel.width(); ++c) {
    ASSERT_EQ(rel.Segment(c).size(), 3);
    for (int64_t row = 0; row < rel.cardinality(); ++row) {
      EXPECT_EQ(rel.Segment(c).ValueAt(row), rel.TupleAt(row).at(c));
      EXPECT_EQ(rel.ValueAt(row, c), rel.TupleAt(row).at(c));
    }
  }
  const std::vector<Tuple> copies = rel.CopyTuples();
  ASSERT_EQ(copies.size(), 3u);
  EXPECT_EQ(copies[1], (Tuple{Value(2), Value("y"), Value(2.5)}));
  EXPECT_EQ(rel.ConcatRow(Tuple{Value(9)}, 0),
            (Tuple{Value(9), Value(1), Value("x"), Value(1.5)}));
}

TEST(Relation, ColumnAllInt64Tracking) {
  Relation rel("R", Schema({Attribute::Make("A", DataType::kInt64),
                            Attribute::Make("B", DataType::kDouble)}));
  EXPECT_TRUE(rel.ColumnAllInt64(0));  // Vacuously uniform while empty.
  rel.InsertUnchecked(Tuple{Value(1), Value(2.0)});
  EXPECT_TRUE(rel.ColumnAllInt64(0));
  EXPECT_FALSE(rel.ColumnAllInt64(1));
  rel.InsertUnchecked(Tuple{Value(), Value(3.0)});  // NULL breaks uniformity.
  EXPECT_FALSE(rel.ColumnAllInt64(0));
  rel.Clear();
  EXPECT_TRUE(rel.ColumnAllInt64(0));
  EXPECT_TRUE(rel.ColumnAllInt64(1));
}

TEST(Relation, FromColumnsAdoptsColumns) {
  const Schema schema({Attribute::Make("A", DataType::kInt64),
                       Attribute::Make("B", DataType::kInt64)});
  std::vector<std::vector<Value>> columns(2);
  for (int v : {5, 6, 5}) {
    columns[0].push_back(Value(v));
    columns[1].push_back(Value(v * 10));
  }
  const Relation rel = Relation::FromColumns("R", schema, std::move(columns));
  EXPECT_EQ(rel.cardinality(), 3);
  EXPECT_TRUE(rel.ColumnAllInt64(0));
  EXPECT_EQ(rel.TupleAt(2), (Tuple{Value(5), Value(50)}));
  EXPECT_EQ(rel.DistinctCount(), 2);
  EXPECT_TRUE(rel.ContainsTuple(Tuple{Value(6), Value(60)}));
}

// Interleaved appends and erases against the columnar store must keep the
// cached hash column and the per-column indexes coherent: every mutation
// drops them, every re-read rebuilds them against the current rows.
TEST(Relation, InterleavedMutationKeepsIndexAndHashesCoherent) {
  Relation rel("R", Schema({Attribute::Make("K", DataType::kInt64),
                            Attribute::Make("V", DataType::kInt64)}));
  Random rng(7);
  std::vector<Tuple> shadow;  // Row-major oracle of the expected contents.
  const auto check = [&](int step) {
    SCOPED_TRACE(step);
    ASSERT_EQ(rel.cardinality(), static_cast<int64_t>(shadow.size()));
    const auto hashes = rel.TupleHashes();
    ASSERT_EQ(hashes->size(), shadow.size());
    for (size_t i = 0; i < shadow.size(); ++i) {
      EXPECT_EQ(rel.TupleAt(static_cast<int64_t>(i)), shadow[i]);
      EXPECT_EQ((*hashes)[i], shadow[i].Hash());
    }
    // The key index reflects exactly the current rows.
    const HashIndex& index = rel.Index(0);
    for (int64_t key = 0; key < 6; ++key) {
      size_t expected = 0;
      for (const Tuple& t : shadow) {
        if (t.at(0) == Value(key)) ++expected;
      }
      EXPECT_EQ(index.Lookup(Value(key)).size(), expected) << "key " << key;
    }
  };
  for (int step = 0; step < 60; ++step) {
    const bool erase = !shadow.empty() && rng.Uniform(3) == 0;
    if (erase) {
      const Tuple victim =
          shadow[static_cast<size_t>(rng.Uniform(shadow.size()))];
      const bool all = rng.Uniform(2) == 0;
      const int64_t removed = rel.Erase(victim, all);
      int64_t expected_removed = 0;
      for (auto it = shadow.begin(); it != shadow.end();) {
        if (*it == victim && (all || expected_removed == 0)) {
          it = shadow.erase(it);
          ++expected_removed;
        } else {
          ++it;
        }
      }
      EXPECT_EQ(removed, expected_removed);
    } else {
      Tuple t{Value(static_cast<int64_t>(rng.Uniform(6))),
              Value(static_cast<int64_t>(rng.Uniform(4)))};
      shadow.push_back(t);
      rel.AddTuple(std::move(t));
    }
    if (step % 5 == 0) check(step);
  }
  check(60);
  EXPECT_EQ(rel.Distinct().cardinality(), rel.DistinctCount());
}

TEST(Relation, ProjectByName) {
  Relation rel = TwoColumn();
  ASSERT_TRUE(rel.Insert(Tuple{Value(1), Value("a")}).ok());
  const auto projected = rel.ProjectByName({"B"});
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected->schema().size(), 1);
  EXPECT_EQ(projected->TupleAt(0).at(0), Value("a"));
  EXPECT_FALSE(rel.ProjectByName({"Z"}).ok());
}

TEST(HashIndex, LookupAndDistinctKeys) {
  Relation rel("R", Schema({Attribute::Make("A", DataType::kInt64),
                            Attribute::Make("B", DataType::kInt64)}));
  for (int i = 0; i < 10; ++i) {
    rel.InsertUnchecked(Tuple{Value(i % 3), Value(i)});
  }
  HashIndex index(rel, 0);
  EXPECT_EQ(index.DistinctKeys(), 3);
  EXPECT_EQ(index.Lookup(Value(0)).size(), 4u);
  EXPECT_EQ(index.Lookup(Value(2)).size(), 3u);
  EXPECT_TRUE(index.Lookup(Value(42)).empty());
}

TEST(BlockModel, PaperParameters) {
  // bfr = 10 for 100-byte tuples in 1000-byte blocks; scanning 400 tuples
  // costs 40 I/Os (Eq. 32 with the Table-1 values).
  BlockModel block;
  EXPECT_EQ(block.BlockingFactor(100), 10);
  EXPECT_EQ(block.ScanIos(400, 100), 40);
  EXPECT_EQ(block.ScanIos(401, 100), 41);
  EXPECT_EQ(block.ClusteredFetchIos(2, 100), 1);
  EXPECT_EQ(block.ClusteredFetchIos(11, 100), 2);
  EXPECT_EQ(block.BlocksForBytes(1001), 2);
}

TEST(BlockModel, WideTuplesClampToOnePerBlock) {
  BlockModel block;
  block.block_bytes = 100;
  EXPECT_EQ(block.BlockingFactor(250), 1);
  EXPECT_EQ(block.ScanIos(5, 250), 5);
}

TEST(Generator, ProducesRequestedShape) {
  Random rng(1);
  GeneratorOptions opts;
  opts.cardinality = 500;
  opts.num_attributes = 3;
  opts.attribute_bytes = 40;
  Relation rel = GenerateRelation("R", opts, &rng);
  EXPECT_EQ(rel.cardinality(), 500);
  EXPECT_EQ(rel.schema().size(), 3);
  EXPECT_EQ(rel.TupleBytes(), 120);
  EXPECT_EQ(rel.DistinctCount(), 500);  // Distinct by construction.
}

TEST(Generator, JoinSelectivityTracksKeyDomain) {
  // With keys uniform over D values, equality-join selectivity ~ 1/D.
  Random rng(2);
  GeneratorOptions opts;
  opts.cardinality = 2000;
  opts.key_domain = 100;
  const Relation a = GenerateRelation("A", opts, &rng);
  const Relation b = GenerateRelation("B", opts, &rng);
  const double js = MeasureJoinSelectivity(a, 0, b, 0);
  EXPECT_NEAR(js, 0.01, 0.002);
}

TEST(Generator, ContainmentChainIsNested) {
  Random rng(3);
  GeneratorOptions opts;
  opts.key_domain = 1 << 30;
  opts.value_domain = 1 << 30;
  const auto chain =
      GenerateContainmentChain({"S1", "S2", "S3"}, {100, 300, 700}, opts, &rng);
  ASSERT_TRUE(chain.ok());
  ASSERT_EQ(chain->size(), 3u);
  for (size_t i = 0; i + 1 < chain->size(); ++i) {
    const auto diff = SetDifference(chain->at(i), chain->at(i + 1));
    ASSERT_TRUE(diff.ok());
    EXPECT_TRUE(diff->empty()) << "level " << i << " not contained";
  }
  EXPECT_EQ(chain->at(0).cardinality(), 100);
  EXPECT_EQ(chain->at(2).cardinality(), 700);
}

TEST(Generator, RejectsBadChainSpecs) {
  Random rng(4);
  GeneratorOptions opts;
  EXPECT_FALSE(GenerateContainmentChain({"A"}, {10, 20}, opts, &rng).ok());
  EXPECT_FALSE(GenerateContainmentChain({"A", "B"}, {20, 10}, opts, &rng).ok());
}

}  // namespace
}  // namespace eve
