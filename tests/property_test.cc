// Property-based tests across the pipeline, driven by randomized scenario
// generation:
//   P1  print/parse round-trip on random view definitions;
//   P2  every synchronizer output passes the legality oracle;
//   P3  quality measures stay in [0, 1] and a rewriting's estimated extent
//       relation is consistent with its measured extents;
//   P4  subset/superset extent claims hold on real data for exact edges;
//   P5  QC ranking is a total order with dense ranks and normalized costs.

#include <gtest/gtest.h>

#include "algebra/common_subset.h"
#include "algebra/executor.h"
#include "common/random.h"
#include "esql/parser.h"
#include "esql/printer.h"
#include "qc/quality.h"
#include "qc/ranking.h"
#include "space/information_space.h"
#include "storage/generator.h"
#include "synch/legality.h"
#include "synch/synchronizer.h"

namespace eve {
namespace {

// A randomized information space: a base relation R at IS1 (with attributes
// A..E), a partner relation P at IS2 joinable with R, and two PC-related
// replacements (one subset, one superset of R's projection).
struct Scenario {
  InformationSpace space;
  MetaKnowledgeBase mkb;
  ViewDefinition view;
};

std::unique_ptr<Scenario> MakeScenario(uint64_t seed) {
  auto s = std::make_unique<Scenario>();
  Random rng(seed);

  GeneratorOptions gen;
  gen.cardinality = 120 + static_cast<int64_t>(rng.Uniform(200));
  gen.num_attributes = 3;
  gen.attribute_names = {"A", "B", "C"};
  gen.key_domain = 40;
  gen.value_domain = 60;

  // Containment chain: Sub subset R subset Sup (projections on A, B, C).
  GeneratorOptions chain_gen = gen;
  chain_gen.key_domain = 1 << 30;
  chain_gen.value_domain = 1 << 30;
  const int64_t r_card = gen.cardinality;
  auto chain = GenerateContainmentChain(
      {"Sub", "R", "Sup"}, {r_card / 2, r_card, r_card * 2}, chain_gen, &rng);
  EXPECT_TRUE(chain.ok());
  // Re-key column A into the join domain so P joins R.
  auto rekey = [&](Relation* rel) {
    Relation out(rel->name(), rel->schema());
    for (const Tuple& t : rel->CopyTuples()) {
      Tuple u = t;
      u.at(0) = Value(t.at(0).AsInt() % 40);
      out.InsertUnchecked(std::move(u));
    }
    *rel = std::move(out);
  };
  // Keep containment: rekey is a function of the tuple, so subsets stay
  // subsets (set semantics may merge duplicates, which is fine).
  for (Relation& rel : chain.value()) rekey(&rel);

  GeneratorOptions pgen = gen;
  pgen.attribute_names = {"K", "PX", "PY"};
  Relation partner = GenerateRelation("P", pgen, &rng);

  EXPECT_TRUE(s->space.AddRelation("IS1", chain.value()[1], &s->mkb, 0.5).ok());
  EXPECT_TRUE(s->space.AddRelation("IS2", partner, &s->mkb, 0.5).ok());
  EXPECT_TRUE(s->space.AddRelation("IS3", chain.value()[0], &s->mkb, 0.5).ok());
  EXPECT_TRUE(s->space.AddRelation("IS4", chain.value()[2], &s->mkb, 0.5).ok());

  EXPECT_TRUE(s->mkb.AddPcConstraint(MakeProjectionPc(
                       RelationId{"IS1", "R"}, RelationId{"IS3", "Sub"},
                       {"A", "B", "C"}, PcRelationType::kSuperset))
                  .ok());
  EXPECT_TRUE(s->mkb.AddPcConstraint(MakeProjectionPc(
                       RelationId{"IS1", "R"}, RelationId{"IS4", "Sup"},
                       {"A", "B", "C"}, PcRelationType::kSubset))
                  .ok());

  // Randomize evolution preferences on the dispensable items.
  const bool b_disp = rng.Bernoulli(0.8);
  const std::string view_text = std::string(
      "CREATE VIEW V AS SELECT R.A (AR=true), R.B (") +
      (b_disp ? "AD=true, " : "") + "AR=true), P.PX " +
      "FROM R (RR=true), P WHERE (R.A = P.K) (CR=true)";
  auto parsed = ParseViewDefinition(view_text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  s->view = parsed.value();
  return s;
}

class ScenarioTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ScenarioTest, P2_AllRewritingsPassLegalityOracle) {
  auto s = MakeScenario(GetParam());
  SynchronizerOptions options;
  options.enumerate_drop_subsets = true;
  ViewSynchronizer synchronizer(s->mkb, options);
  const auto result = synchronizer.Synchronize(
      s->view, SchemaChange(DeleteRelation{RelationId{"IS1", "R"}}));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->affected);
  EXPECT_FALSE(result->rewritings.empty());
  for (const Rewriting& rw : result->rewritings) {
    EXPECT_TRUE(CheckLegality(s->view, rw).ok()) << rw.Summary();
  }
}

TEST_P(ScenarioTest, P3_QualityBoundsAndAgreement) {
  auto s = MakeScenario(GetParam());
  ViewSynchronizer synchronizer(s->mkb);
  const auto result = synchronizer.Synchronize(
      s->view, SchemaChange(DeleteRelation{RelationId{"IS1", "R"}}));
  ASSERT_TRUE(result.ok());
  QcParameters params;

  const auto old_extent = ExecuteView(s->view, s->space);
  ASSERT_TRUE(old_extent.ok());

  for (const Rewriting& rw : result->rewritings) {
    const auto estimated = EstimateQuality(s->view, rw, s->mkb, params);
    ASSERT_TRUE(estimated.ok()) << rw.Summary();
    for (double v :
         {estimated->dd_attr, estimated->dd_ext_d1, estimated->dd_ext_d2,
          estimated->dd_ext, estimated->dd}) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
    const auto new_extent = ExecuteView(rw.definition, s->space);
    ASSERT_TRUE(new_extent.ok()) << rw.Summary();
    const auto measured = MeasureQuality(s->view, rw, old_extent.value(),
                                         new_extent.value(), params);
    ASSERT_TRUE(measured.ok());
    EXPECT_DOUBLE_EQ(measured->dd_attr, estimated->dd_attr);
    for (double v : {measured->dd_ext_d1, measured->dd_ext_d2, measured->dd}) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST_P(ScenarioTest, P4_ExactExtentClaimsHoldOnData) {
  auto s = MakeScenario(GetParam());
  ViewSynchronizer synchronizer(s->mkb);
  const auto result = synchronizer.Synchronize(
      s->view, SchemaChange(DeleteRelation{RelationId{"IS1", "R"}}));
  ASSERT_TRUE(result.ok());
  const auto old_extent = ExecuteView(s->view, s->space);
  ASSERT_TRUE(old_extent.ok());

  for (const Rewriting& rw : result->rewritings) {
    if (!rw.extent_exact) continue;
    const auto new_extent = ExecuteView(rw.definition, s->space);
    ASSERT_TRUE(new_extent.ok());
    switch (rw.extent_relation) {
      case ExtentRel::kEqual:
        EXPECT_TRUE(
            CommonSubsetEqual(old_extent.value(), new_extent.value()).value())
            << rw.Summary();
        break;
      case ExtentRel::kSubset:
        EXPECT_TRUE(CommonSubsetContained(new_extent.value(), old_extent.value())
                        .value())
            << rw.Summary();
        break;
      case ExtentRel::kSuperset:
        EXPECT_TRUE(CommonSubsetContained(old_extent.value(), new_extent.value())
                        .value())
            << rw.Summary();
        break;
      case ExtentRel::kUnknown:
        break;
    }
  }
}

TEST_P(ScenarioTest, P5_RankingIsTotalAndNormalized) {
  auto s = MakeScenario(GetParam());
  ViewSynchronizer synchronizer(s->mkb);
  auto result = synchronizer.Synchronize(
      s->view, SchemaChange(DeleteRelation{RelationId{"IS1", "R"}}));
  ASSERT_TRUE(result.ok());
  if (result->rewritings.empty()) return;

  QcModel model(QcParameters{}, CostModelOptions{}, WorkloadOptions{});
  const auto ranking =
      model.Rank(s->view, std::move(result->rewritings), s->mkb);
  ASSERT_TRUE(ranking.ok()) << ranking.status().ToString();
  double min_norm = 1.0;
  double max_norm = 0.0;
  for (size_t i = 0; i < ranking->size(); ++i) {
    const RankedRewriting& r = ranking->at(i);
    EXPECT_EQ(r.rank, static_cast<int>(i) + 1);
    EXPECT_GE(r.qc, 0.0);
    EXPECT_LE(r.qc, 1.0);
    EXPECT_GE(r.normalized_cost, 0.0);
    EXPECT_LE(r.normalized_cost, 1.0);
    min_norm = std::min(min_norm, r.normalized_cost);
    max_norm = std::max(max_norm, r.normalized_cost);
    if (i > 0) {
      EXPECT_GE(ranking->at(i - 1).qc, r.qc);
    }
  }
  if (ranking->size() > 1) {
    EXPECT_DOUBLE_EQ(min_norm, 0.0);  // Eq. 25 pins the extremes.
    EXPECT_DOUBLE_EQ(max_norm, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScenarioTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

// P1: print/parse round-trip on randomly generated definitions.
TEST(RoundTripProperty, RandomViews) {
  Random rng(55);
  for (int round = 0; round < 50; ++round) {
    ViewDefinition view;
    view.name = "V";
    view.ve = static_cast<ViewExtent>(rng.Uniform(4));
    const int nrel = 1 + static_cast<int>(rng.Uniform(3));
    for (int r = 0; r < nrel; ++r) {
      FromItem f;
      f.relation = std::string("R") + std::to_string(r);
      if (rng.Bernoulli(0.3)) f.site = "IS" + std::to_string(r);
      if (rng.Bernoulli(0.3)) f.alias = "a" + std::to_string(r);
      f.dispensable = rng.Bernoulli(0.5);
      f.replaceable = rng.Bernoulli(0.5);
      view.from_items.push_back(std::move(f));
    }
    const int nsel = 1 + static_cast<int>(rng.Uniform(4));
    for (int i = 0; i < nsel; ++i) {
      SelectItem s;
      const FromItem& f = view.from_items[rng.Uniform(view.from_items.size())];
      s.source = RelAttr{f.name(), "C" + std::to_string(i)};
      if (rng.Bernoulli(0.4)) s.output_name = "Out" + std::to_string(i);
      s.dispensable = rng.Bernoulli(0.5);
      s.replaceable = rng.Bernoulli(0.5);
      view.select_items.push_back(std::move(s));
    }
    const int ncond = static_cast<int>(rng.Uniform(3));
    for (int i = 0; i < ncond; ++i) {
      ConditionItem c;
      const FromItem& f = view.from_items[rng.Uniform(view.from_items.size())];
      if (rng.Bernoulli(0.5)) {
        const FromItem& g =
            view.from_items[rng.Uniform(view.from_items.size())];
        c.clause = PrimitiveClause::AttrAttr(
            RelAttr{f.name(), "J" + std::to_string(i)}, CompOp::kEqual,
            RelAttr{g.name(), "K" + std::to_string(i)});
      } else {
        c.clause = PrimitiveClause::AttrConst(
            RelAttr{f.name(), "J" + std::to_string(i)},
            static_cast<CompOp>(rng.Uniform(6)),
            rng.Bernoulli(0.5)
                ? Value(static_cast<int64_t>(rng.Uniform(100)))
                : Value("lit" + std::to_string(rng.Uniform(10))));
      }
      c.dispensable = rng.Bernoulli(0.5);
      c.replaceable = rng.Bernoulli(0.5);
      view.where.push_back(std::move(c));
    }
    if (!view.Validate().ok()) continue;  // Duplicate names etc.: skip.

    const std::string printed = PrintView(view);
    const auto reparsed = ParseViewDefinition(printed);
    ASSERT_TRUE(reparsed.ok()) << printed << "\n"
                               << reparsed.status().ToString();
    EXPECT_EQ(view, reparsed.value()) << printed;
  }
}

}  // namespace
}  // namespace eve
