// End-to-end EVE system tests: the travel-agency scenario of the paper's
// introduction, full capability-change lifecycles (synchronize -> rank ->
// adopt -> rematerialize), view survival across successive changes
// (Experiment 1's life-span tree), and data-update maintenance through the
// facade.

#include <gtest/gtest.h>

#include "eve/eve_system.h"

namespace eve {
namespace {

Relation MakeRelation(const std::string& name,
                      const std::vector<std::string>& attrs,
                      const std::vector<std::vector<int>>& rows) {
  std::vector<Attribute> schema;
  for (const std::string& a : attrs) {
    schema.push_back(Attribute::Make(a, DataType::kInt64, 50));
  }
  Relation rel(name, Schema(std::move(schema)));
  for (const auto& row : rows) {
    Tuple t;
    for (int v : row) t.Append(Value(static_cast<int64_t>(v)));
    rel.InsertUnchecked(std::move(t));
  }
  return rel;
}

// Customers (id, phone) at one agency; flight reservations (id, dest) at
// another; a backup customer list at a third.  Numeric stand-ins for the
// paper's strings keep the fixtures compact.
class TravelAgencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(eve_.RegisterRelation(
                        "Agency",
                        MakeRelation("Customer", {"Name", "Phone"},
                                     {{1, 11}, {2, 22}, {3, 33}, {4, 44}}))
                    .ok());
    ASSERT_TRUE(eve_.RegisterRelation(
                        "Airline",
                        MakeRelation("FlightRes", {"PName", "Dest"},
                                     {{1, 7}, {2, 9}, {3, 7}, {5, 7}}))
                    .ok());
    ASSERT_TRUE(eve_.RegisterRelation(
                        "Backup",
                        MakeRelation("CustBackup", {"Name", "Phone"},
                                     {{1, 11}, {2, 22}, {3, 33}, {4, 44},
                                      {6, 66}}))
                    .ok());
    // Customer is contained in the backup list.
    ASSERT_TRUE(eve_.AddPcConstraint(MakeProjectionPc(
                        RelationId{"Agency", "Customer"},
                        RelationId{"Backup", "CustBackup"}, {"Name", "Phone"},
                        PcRelationType::kSubset))
                    .ok());
    ASSERT_TRUE(eve_
                    .DefineView(
                        "CREATE VIEW AsiaCustomer AS "
                        "SELECT C.Name (AR = true), C.Phone (AD=true, AR=true) "
                        "FROM Customer C (RR = true), FlightRes F "
                        "WHERE (C.Name = F.PName) (CR = true) "
                        "AND (F.Dest = 7) (CD = true)")
                    .ok());
  }
  EveSystem eve_;
};

TEST_F(TravelAgencyTest, InitialMaterialization) {
  const auto extent = eve_.GetViewExtent("AsiaCustomer");
  ASSERT_TRUE(extent.ok()) << extent.status().ToString();
  // Customers 1 and 3 have dest-7 reservations.
  EXPECT_EQ(extent->cardinality(), 2);
  EXPECT_TRUE(extent->ContainsTuple(Tuple{Value(1), Value(11)}));
  EXPECT_TRUE(extent->ContainsTuple(Tuple{Value(3), Value(33)}));
}

TEST_F(TravelAgencyTest, CustomerDeletionSurvivesViaBackup) {
  const auto report = eve_.NotifySchemaChange(
      SchemaChange(DeleteRelation{RelationId{"Agency", "Customer"}}));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->views.size(), 1u);
  EXPECT_TRUE(report->views[0].affected);
  EXPECT_EQ(report->views[0].resulting_state, ViewState::kAlive);
  EXPECT_FALSE(report->views[0].ranking.empty());

  // The adopted definition references the backup relation.
  const auto def = eve_.GetViewDefinition("AsiaCustomer");
  ASSERT_TRUE(def.ok());
  EXPECT_NE(def->FindFrom("CustBackup"), nullptr);

  // Rematerialized extent: the backup has the same joining customers, so
  // the view still answers (it is a superset-safe replacement).
  const auto extent = eve_.GetViewExtent("AsiaCustomer");
  ASSERT_TRUE(extent.ok());
  EXPECT_EQ(extent->cardinality(), 2);

  // The view's history records the evolution step.
  const auto entry = eve_.GetViewEntry("AsiaCustomer");
  ASSERT_TRUE(entry.ok());
  ASSERT_EQ((*entry)->history.size(), 1u);
  EXPECT_EQ((*entry)->history[0].trigger, "delete-relation Agency.Customer");
}

TEST_F(TravelAgencyTest, DispensableConditionDroppedWhenDestVanishes) {
  const auto report = eve_.NotifySchemaChange(SchemaChange(
      DeleteAttribute{RelationId{"Airline", "FlightRes"}, "Dest"}));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->views[0].resulting_state, ViewState::kAlive);
  const auto def = eve_.GetViewDefinition("AsiaCustomer");
  ASSERT_TRUE(def.ok());
  EXPECT_EQ(def->where.size(), 1u);  // Only the join clause remains.
  // The extent widened to every customer with any reservation.
  const auto extent = eve_.GetViewExtent("AsiaCustomer");
  ASSERT_TRUE(extent.ok());
  EXPECT_EQ(extent->cardinality(), 3);  // Customers 1, 2, 3.
}

TEST_F(TravelAgencyTest, IndispensableLossKillsView) {
  // Deleting PName (join attribute, CR=true but no replacement exists).
  const auto report = eve_.NotifySchemaChange(SchemaChange(
      DeleteAttribute{RelationId{"Airline", "FlightRes"}, "PName"}));
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->views[0].resulting_state, ViewState::kDead);
  EXPECT_EQ(eve_.GetViewState("AsiaCustomer").value(), ViewState::kDead);
  // Dead views are not synchronized again.
  const auto second = eve_.NotifySchemaChange(
      SchemaChange(DeleteRelation{RelationId{"Agency", "Customer"}}));
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->views.empty());
}

TEST_F(TravelAgencyTest, DataUpdatesMaintainMaterializedViews) {
  // New reservation for customer 4 to destination 7.
  const auto counters = eve_.NotifyDataUpdate(
      DataUpdate{UpdateKind::kInsert, RelationId{"Airline", "FlightRes"},
                 Tuple{Value(4), Value(7)}});
  ASSERT_TRUE(counters.ok()) << counters.status().ToString();
  EXPECT_EQ(counters->tuples_added, 1);
  const auto extent = eve_.GetViewExtent("AsiaCustomer");
  ASSERT_TRUE(extent.ok());
  EXPECT_EQ(extent->cardinality(), 3);
  EXPECT_TRUE(extent->ContainsTuple(Tuple{Value(4), Value(44)}));

  // Cancellation removes it again.
  const auto removal = eve_.NotifyDataUpdate(
      DataUpdate{UpdateKind::kDelete, RelationId{"Airline", "FlightRes"},
                 Tuple{Value(4), Value(7)}});
  ASSERT_TRUE(removal.ok());
  EXPECT_EQ(removal->tuples_removed, 1);
  EXPECT_EQ(eve_.GetViewExtent("AsiaCustomer")->cardinality(), 2);
}

TEST_F(TravelAgencyTest, RenameIsTransparent) {
  const auto report = eve_.NotifySchemaChange(SchemaChange(
      RenameAttribute{RelationId{"Agency", "Customer"}, "Phone", "Tel"}));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->views[0].resulting_state, ViewState::kAlive);
  const auto extent = eve_.GetViewExtent("AsiaCustomer");
  ASSERT_TRUE(extent.ok());
  EXPECT_EQ(extent->cardinality(), 2);
  // Interface unchanged for the view user.
  EXPECT_TRUE(extent->schema().Contains("Phone"));
}

// Experiment 1's life span: with w1 > w2 EVE keeps the replaceable
// attribute A (choosing S or T), so a later deletion of S still leaves T;
// the view survives two capability changes.
class SurvivalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(eve_.RegisterRelation("IS1", MakeRelation("R", {"A", "B"},
                                                          {{1, 2}, {3, 4}}))
                    .ok());
    ASSERT_TRUE(eve_.RegisterRelation("IS2", MakeRelation("S", {"A", "C"},
                                                          {{1, 5}, {3, 6}, {7, 8}}))
                    .ok());
    ASSERT_TRUE(eve_.RegisterRelation("IS3", MakeRelation("T", {"A", "D"},
                                                          {{1, 9}, {3, 0}, {7, 1}}))
                    .ok());
    ASSERT_TRUE(eve_.AddPcConstraint(MakeProjectionPc(
                        RelationId{"IS1", "R"}, RelationId{"IS2", "S"}, {"A"},
                        PcRelationType::kSubset))
                    .ok());
    ASSERT_TRUE(eve_.AddPcConstraint(MakeProjectionPc(
                        RelationId{"IS1", "R"}, RelationId{"IS3", "T"}, {"A"},
                        PcRelationType::kSubset))
                    .ok());
    ASSERT_TRUE(eve_
                    .DefineView("CREATE VIEW V0 AS "
                                "SELECT R.A (AD=true, AR=true), R.B (AD=true) "
                                "FROM R (RR=true)")
                    .ok());
  }
  EveSystem eve_;
};

TEST_F(SurvivalTest, ReplaceableChoiceSurvivesTwoChanges) {
  // Default weights w1 > w2 prefer keeping the replaceable attribute A.
  const auto first = eve_.NotifySchemaChange(
      SchemaChange(DeleteAttribute{RelationId{"IS1", "R"}, "A"}));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->views[0].resulting_state, ViewState::kAlive);
  const auto def = eve_.GetViewDefinition("V0");
  ASSERT_TRUE(def.ok());
  // The adopted rewriting keeps A from S or T (not the B-only variant).
  ASSERT_EQ(def->select_items.size(), 1u);
  EXPECT_EQ(def->select_items[0].name(), "A");
  const std::string first_host = def->from_items[0].relation;
  EXPECT_TRUE(first_host == "S" || first_host == "T");

  // Delete whichever relation was adopted: the view survives via the other.
  const std::string site = first_host == "S" ? "IS2" : "IS3";
  const auto second = eve_.NotifySchemaChange(
      SchemaChange(DeleteRelation{RelationId{site, first_host}}));
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->views[0].resulting_state, ViewState::kAlive);
  const auto def2 = eve_.GetViewDefinition("V0");
  ASSERT_TRUE(def2.ok());
  const std::string second_host = def2->from_items[0].relation;
  EXPECT_NE(second_host, first_host);
  EXPECT_TRUE(second_host == "S" || second_host == "T");
  EXPECT_EQ(eve_.GetViewState("V0").value(), ViewState::kAlive);
  EXPECT_EQ(eve_.GetViewEntry("V0").value()->history.size(), 2u);
}

TEST_F(SurvivalTest, NonReplaceablePreferenceDiesOnSecondChange) {
  // Invert the weights (w2 > w1): EVE prefers keeping the non-replaceable
  // B, i.e. adopts V3; any further change to R kills the view (Fig. 12).
  eve_.options().qc.w1 = 0.3;
  eve_.options().qc.w2 = 0.7;
  const auto first = eve_.NotifySchemaChange(
      SchemaChange(DeleteAttribute{RelationId{"IS1", "R"}, "A"}));
  ASSERT_TRUE(first.ok());
  const auto def = eve_.GetViewDefinition("V0");
  ASSERT_TRUE(def.ok());
  ASSERT_EQ(def->select_items.size(), 1u);
  EXPECT_EQ(def->select_items[0].name(), "B");

  const auto second = eve_.NotifySchemaChange(
      SchemaChange(DeleteRelation{RelationId{"IS1", "R"}}));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(eve_.GetViewState("V0").value(), ViewState::kDead);
}

TEST(EveSystemBasics, DuplicateAndInvalidDefinitions) {
  EveSystem eve;
  ASSERT_TRUE(
      eve.RegisterRelation("IS1", MakeRelation("R", {"A"}, {{1}})).ok());
  ASSERT_TRUE(eve.DefineView("CREATE VIEW V AS SELECT R.A FROM R").ok());
  EXPECT_FALSE(eve.DefineView("CREATE VIEW V AS SELECT R.A FROM R").ok());
  // A view over a missing relation fails and leaves no residue.
  EXPECT_FALSE(eve.DefineView("CREATE VIEW W AS SELECT Q.X FROM Q").ok());
  EXPECT_FALSE(eve.vkb().Has("W"));
}

TEST(EveSystemBasics, UnaffectedViewsUntouchedByChanges) {
  EveSystem eve;
  ASSERT_TRUE(
      eve.RegisterRelation("IS1", MakeRelation("R", {"A"}, {{1}})).ok());
  ASSERT_TRUE(
      eve.RegisterRelation("IS2", MakeRelation("S", {"B"}, {{2}})).ok());
  ASSERT_TRUE(eve.DefineView("CREATE VIEW V AS SELECT R.A FROM R").ok());
  const auto report = eve.NotifySchemaChange(
      SchemaChange(DeleteRelation{RelationId{"IS2", "S"}}));
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->views.empty());
  EXPECT_EQ(eve.GetViewState("V").value(), ViewState::kAlive);
}

}  // namespace
}  // namespace eve
