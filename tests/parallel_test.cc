// Tests for the parallel execution layer: ParallelFor's exactly-once
// contract, thread-count-independent sweep results (the property the
// experiment drivers rely on for identical stdout), and concurrent
// execution of one prepared plan / one plan cache from many threads.
// These tests are the payload of the ThreadSanitizer CI job.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <vector>

#include "algebra/executor.h"
#include "bench_util/distributions.h"
#include "bench_util/experiment_common.h"
#include "common/parallel.h"
#include "common/random.h"
#include "esql/parser.h"
#include "misd/mkb.h"
#include "plan/plan_cache.h"
#include "plan/planner.h"
#include "storage/generator.h"
#include "storage/hash_index.h"

namespace eve {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (const int threads : {1, 2, 3, 8}) {
    for (const int64_t n : {0, 1, 7, 100}) {
      std::vector<std::atomic<int>> counts(n);
      for (auto& c : counts) c.store(0);
      ParallelFor(n, threads, [&](int64_t i) {
        counts[i].fetch_add(1, std::memory_order_relaxed);
      });
      for (int64_t i = 0; i < n; ++i) {
        EXPECT_EQ(counts[i].load(), 1) << "threads=" << threads << " i=" << i;
      }
    }
  }
}

TEST(ParallelFor, MoreThreadsThanWork) {
  std::atomic<int> total{0};
  ParallelFor(3, 16, [&](int64_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 3);
}

TEST(ParallelFor, NegativeAndZeroCountsAreNoOps) {
  ParallelFor(0, 4, [&](int64_t) { FAIL(); });
  ParallelFor(-5, 4, [&](int64_t) { FAIL(); });
}

TEST(DefaultThreadCount, IsPositive) { EXPECT_GE(DefaultThreadCount(), 1); }

// The experiment drivers print identical tables for every thread count
// because the sweep helpers hand back results indexed like their input.
TEST(Sweep, ResultsIndependentOfThreadCount) {
  const UniformParams params;
  const CostModelOptions options = MakeUniformOptions(params);
  std::vector<std::vector<int>> dists;
  for (int m = 1; m <= params.num_relations; ++m) {
    for (std::vector<int>& d : Compositions(params.num_relations, m)) {
      dists.push_back(std::move(d));
    }
  }
  const auto serial = SweepSiteAveragedUpdateCost(dists, params, options, 1);
  ASSERT_TRUE(serial.ok());
  ASSERT_EQ(serial->size(), dists.size());
  for (const int threads : {2, 4, 7}) {
    const auto parallel =
        SweepSiteAveragedUpdateCost(dists, params, options, threads);
    ASSERT_TRUE(parallel.ok());
    ASSERT_EQ(parallel->size(), serial->size());
    for (size_t i = 0; i < serial->size(); ++i) {
      // The per-index computation is identical, so even the floating-point
      // results match bit for bit.
      EXPECT_EQ((*serial)[i].messages, (*parallel)[i].messages);
      EXPECT_EQ((*serial)[i].bytes, (*parallel)[i].bytes);
      EXPECT_EQ((*serial)[i].ios, (*parallel)[i].ios);
    }
  }

  const auto first_serial = SweepFirstSiteUpdateCost(dists, params, options, 1);
  const auto first_parallel =
      SweepFirstSiteUpdateCost(dists, params, options, 4);
  ASSERT_TRUE(first_serial.ok() && first_parallel.ok());
  for (size_t i = 0; i < first_serial->size(); ++i) {
    EXPECT_EQ((*first_serial)[i].bytes, (*first_parallel)[i].bytes);
  }

  WorkloadOptions workload;
  workload.model = WorkloadModel::kM3PerSite;
  const auto wl_serial =
      SweepWorkloadCost(dists, params, workload, options, 1);
  const auto wl_parallel =
      SweepWorkloadCost(dists, params, workload, options, 4);
  ASSERT_TRUE(wl_serial.ok() && wl_parallel.ok());
  for (size_t i = 0; i < wl_serial->size(); ++i) {
    EXPECT_EQ((*wl_serial)[i].updates, (*wl_parallel)[i].updates);
    EXPECT_EQ((*wl_serial)[i].factors.bytes, (*wl_parallel)[i].factors.bytes);
  }
}

struct JoinFixture {
  MapProvider provider;
  ViewDefinition view;

  JoinFixture() {
    Random rng(7);
    GeneratorOptions gen;
    gen.cardinality = 200;
    gen.num_attributes = 2;
    gen.key_domain = 40;
    gen.value_domain = 100;
    for (const char* name : {"R", "S", "T"}) {
      EXPECT_TRUE(provider.Add(GenerateRelation(name, gen, &rng)).ok());
    }
    view = ParseViewDefinition(
               "CREATE VIEW V AS SELECT R.A, S.B AS SB, T.B AS TB "
               "FROM R, S, T WHERE (R.A = S.A) AND (S.A = T.A) "
               "AND (R.B >= 20)")
               .value();
  }
};

std::vector<Tuple> SortedTuples(const Relation& rel) {
  std::vector<Tuple> tuples = rel.CopyTuples();
  std::sort(tuples.begin(), tuples.end());
  return tuples;
}

// One plan, many concurrent executions: every thread must get the exact
// reference result.  Under TSan this also proves the per-Relation cache
// synchronization (plans are prepared with warmed indexes, but the
// nested-loop/no-cache variant still builds scoped indexes per call).
TEST(ConcurrentExecution, SharedPreparedPlan) {
  JoinFixture fixture;
  const auto reference = ExecuteViewReference(fixture.view, fixture.provider);
  ASSERT_TRUE(reference.ok());
  const auto expected = SortedTuples(*reference);

  const auto plan = PrepareView(fixture.view, fixture.provider);
  ASSERT_TRUE(plan.ok());

  constexpr int kRounds = 16;
  std::vector<int> ok_rounds(kRounds, 0);
  ParallelFor(kRounds, 4, [&](int64_t i) {
    const auto result = ExecutePrepared(**plan);
    if (result.ok() && SortedTuples(*result) == expected) ok_rounds[i] = 1;
  });
  for (int i = 0; i < kRounds; ++i) EXPECT_EQ(ok_rounds[i], 1) << "round " << i;
}

// Concurrent first use: index builds race-free through the cache mutex
// even without an explicit warm-up.
TEST(ConcurrentExecution, ColdIndexCacheBuild) {
  Random rng(13);
  GeneratorOptions gen;
  gen.cardinality = 500;
  gen.num_attributes = 2;
  gen.key_domain = 50;
  const Relation rel = GenerateRelation("R", gen, &rng);

  std::vector<const HashIndex*> seen(8, nullptr);
  ParallelFor(8, 8, [&](int64_t i) { seen[i] = &rel.Index(i % 2); });
  for (int i = 0; i < 8; ++i) {
    ASSERT_NE(seen[i], nullptr);
    // All threads asking for the same column got the same cached instance.
    EXPECT_EQ(seen[i], seen[i % 2]);
  }
}

TEST(ConcurrentExecution, SharedPlanCache) {
  JoinFixture fixture;
  const auto reference = ExecuteViewReference(fixture.view, fixture.provider);
  ASSERT_TRUE(reference.ok());
  const auto expected = SortedTuples(*reference);

  PlanCache cache;
  constexpr int kRounds = 16;
  std::vector<int> ok_rounds(kRounds, 0);
  ParallelFor(kRounds, 4, [&](int64_t i) {
    const auto result = cache.Execute(fixture.view, fixture.provider);
    if (result.ok() && SortedTuples(*result) == expected) ok_rounds[i] = 1;
  });
  for (int i = 0; i < kRounds; ++i) EXPECT_EQ(ok_rounds[i], 1) << "round " << i;
  // Every round either hit or planned; racing first misses may plan twice,
  // but the counters must account for every round.
  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses + stats.replans, kRounds);
  EXPECT_GE(stats.hits, 1);
}

// Concurrent TupleHashes builds + hashed set comparison.
TEST(ConcurrentExecution, SharedTupleHashCache) {
  Random rng(19);
  GeneratorOptions gen;
  gen.cardinality = 300;
  gen.num_attributes = 2;
  gen.key_domain = 30;
  const Relation a = GenerateRelation("R", gen, &rng);
  const Relation b = a.Distinct();

  std::vector<int> equal(8, 0);
  ParallelFor(8, 4, [&](int64_t i) { equal[i] = SetEquals(a, b) ? 1 : 0; });
  for (int i = 0; i < 8; ++i) EXPECT_EQ(equal[i], 1);
}

// Concurrent closure queries against one const MKB: the memo maps behind
// PcEdgesFromTransitive are mutex-guarded (like the Relation caches), which
// is what lets the extent-replay drivers run synchronize rounds from
// ParallelFor workers.  Every worker must see the full closure regardless
// of who populates the memo first.
TEST(ConcurrentExecution, SharedMkbClosureMemo) {
  MetaKnowledgeBase mkb;
  const Schema ab({Attribute::Make("A", DataType::kInt64),
                   Attribute::Make("B", DataType::kInt64)});
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(mkb.RegisterRelationWithStats(
                       {"IS" + std::to_string(i), "S" + std::to_string(i)},
                       ab, 1000 + i, 0.5)
                    .ok());
  }
  for (int i = 0; i + 1 < 6; ++i) {
    ASSERT_TRUE(mkb.AddPcConstraint(MakeProjectionPc(
                       {"IS" + std::to_string(i), "S" + std::to_string(i)},
                       {"IS" + std::to_string(i + 1),
                        "S" + std::to_string(i + 1)},
                       {"A", "B"}, PcRelationType::kSubset))
                    .ok());
  }
  const MetaKnowledgeBase& shared = mkb;
  const size_t expected =
      shared.PcEdgesFromTransitiveUncached({"IS0", "S0"}, 4).size();
  ASSERT_GT(expected, 1u);  // The chain composes transitively.

  std::vector<size_t> sizes(16, 0);
  ParallelFor(16, 4, [&](int64_t i) {
    // Alternate sources so workers race on distinct and identical keys.
    const std::string n = std::to_string(i % 3);
    sizes[i] = shared.PcEdgesFromTransitive({"IS" + n, "S" + n}, 4).size();
  });
  for (int i = 0; i < 16; ++i) {
    const size_t direct =
        shared
            .PcEdgesFromTransitiveUncached(
                {"IS" + std::to_string(i % 3), "S" + std::to_string(i % 3)}, 4)
            .size();
    EXPECT_EQ(sizes[i], direct) << "worker " << i;
  }
}

}  // namespace
}  // namespace eve
